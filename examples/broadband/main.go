// Broadband: the policy question that motivated the paper — does the FCC's
// 25/3 Mbps broadband definition suffice for a multi-person household on
// simultaneous video calls (§1, §3 takeaway)?
//
// This example puts one, two, then three simultaneous 2-party calls of each
// VCA behind a 3 Mbps uplink (the FCC floor) and reports per-call quality.
package main

import (
	"fmt"
	"time"

	"vcalab"
)

func main() {
	fmt.Println("FCC broadband floor: 25 Mbps down / 3 Mbps up")
	fmt.Println("simultaneous 2-party calls sharing the 3 Mbps uplink:")
	fmt.Println()

	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.Teams, vcalab.Zoom} {
		prof := mk()
		fmt.Printf("%s:\n", prof.Name)
		for nCalls := 1; nCalls <= 3; nCalls++ {
			perCall, freezeRatio := run(mk, nCalls)
			verdict := "ok"
			if freezeRatio > 0.02 {
				verdict = "degraded"
			}
			fmt.Printf("  %d call(s): %.2f Mbps per call upstream, %.1f%% freezes -> %s\n",
				nCalls, perCall, 100*freezeRatio, verdict)
		}
		fmt.Println()
	}
	fmt.Println("The paper's takeaway (§3): a 25/3 connection may not suffice")
	fmt.Println("even for two simultaneous video calls.")
}

// run starts nCalls calls behind one 3 Mbps uplink and returns the mean
// per-call upstream rate and the worst receiver freeze ratio.
func run(mk func() *vcalab.Profile, nCalls int) (perCallMbps, worstFreeze float64) {
	eng := vcalab.NewEngine(7)
	lab := vcalab.NewLab(eng, 3e6, 25e6)
	var calls []*vcalab.Call
	for i := 0; i < nCalls; i++ {
		c1 := lab.ClientHost(fmt.Sprintf("home%d", i))
		c2 := lab.RemoteHost(fmt.Sprintf("far%d", i), vcalab.RemoteDelay)
		sfu := lab.RemoteHost(fmt.Sprintf("sfu%d", i), vcalab.SFUDelay)
		call := vcalab.NewCall(eng, mk(), sfu,
			[]*vcalab.Host{c1, c2}, vcalab.CallOptions{Seed: int64(100 + i)})
		call.Start()
		calls = append(calls, call)
	}
	dur := 120 * time.Second
	eng.RunUntil(dur)
	var sum float64
	for _, call := range calls {
		call.Stop()
		sum += call.C1().UpMeter.MeanRateMbps(30*time.Second, dur)
		// The far receiver's freeze ratio reflects uplink health.
		fr := call.Clients[1].Receiver(call.C1().Name).FreezeRatio()
		if fr > worstFreeze {
			worstFreeze = fr
		}
	}
	return sum / float64(nCalls), worstFreeze
}
