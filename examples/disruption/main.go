// Disruption: reproduce the paper's §4 headline — how long each VCA takes
// to recover after a 30-second dip of the uplink to 0.25 Mbps — and print
// the recovery traces that distinguish the three congestion controllers
// (Fig 4): Meet's smooth GCC ramp, Teams' slow-then-fast climb, and Zoom's
// staircase with its long overshoot above nominal.
package main

import (
	"fmt"
	"time"

	"vcalab"
)

func main() {
	fmt.Println("30-second uplink dip to 0.25 Mbps, one minute into a call:")
	fmt.Println()
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.Teams, vcalab.Zoom} {
		r := vcalab.RunDisruption(vcalab.DisruptionConfig{
			Profile:   mk(),
			Dir:       vcalab.Uplink,
			LevelMbps: 0.25,
			Reps:      2,
			Seed:      3,
		})
		fmt.Printf("%-8s time to recovery: %5.1f s  (recovered %d/%d runs)\n",
			r.Profile, r.TTR.Mean, r.Recovered, 2)

		// A compact sparkline of the upstream bitrate (10 s buckets).
		fmt.Printf("%-8s trace: ", "")
		for t := 10 * time.Second; t <= 240*time.Second; t += 10 * time.Second {
			win := r.Series.Slice(t-10*time.Second, t)
			fmt.Print(spark(vcalab.Mean(win.Values)))
		}
		fmt.Println("  (10s/char, dip at 60-90s)")
	}
	fmt.Println()
	fmt.Println("Paper §4: every VCA needs 20+ seconds to recover from severe")
	fmt.Println("uplink dips; Zoom is slowest and then probes above nominal.")
}

func spark(mbps float64) string {
	levels := []string{"_", ".", ":", "-", "=", "+", "*", "#"}
	idx := int(mbps / 2.0 * float64(len(levels)))
	if idx >= len(levels) {
		idx = len(levels) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return levels[idx]
}
