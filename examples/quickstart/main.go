// Quickstart: run a two-party Zoom call over a 1 Mbps access link and
// print what it used — the minimal end-to-end use of the vcalab API.
package main

import (
	"fmt"
	"time"

	"vcalab"
)

func main() {
	eng := vcalab.NewEngine(42)

	// The paper's testbed: client C1 behind a shaped access link, the far
	// client and the VCA's relay server out on the Internet (§2.2).
	lab := vcalab.NewLab(eng, 1e6, 1e6) // 1 Mbps symmetric
	c1 := lab.ClientHost("c1")
	c2 := lab.RemoteHost("c2", vcalab.RemoteDelay)
	sfu := lab.RemoteHost("sfu", vcalab.SFUDelay)

	call := vcalab.NewCall(eng, vcalab.Zoom(), sfu,
		[]*vcalab.Host{c1, c2}, vcalab.CallOptions{Seed: 42})
	call.Start()
	eng.RunUntil(150 * time.Second) // the paper's 2.5-minute call
	call.Stop()

	up := call.C1().UpMeter.MeanRateMbps(30*time.Second, 150*time.Second)
	down := call.C1().DownMeter.MeanRateMbps(30*time.Second, 150*time.Second)
	fmt.Printf("zoom on a 1 Mbps symmetric link:\n")
	fmt.Printf("  upstream   %.2f Mbps\n", up)
	fmt.Printf("  downstream %.2f Mbps\n", down)
	fmt.Printf("  freezes    %.1f%% of call time\n",
		100*call.C1().Receiver("c2").FreezeRatio())
}
