// Classroom: the remote-education scenario from the paper's introduction —
// how does a student's bandwidth change as classmates join, and what does
// pinning the teacher cost the teacher's uplink (§6)?
package main

import (
	"fmt"

	"vcalab"
)

func main() {
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.Teams, vcalab.Zoom} {
		prof := mk()
		fmt.Printf("== %s classroom ==\n", prof.Name)

		fmt.Println("gallery view (everyone tiled):")
		gallery := vcalab.ModalitySweep(mk(), vcalab.Gallery, 8, 2, 11)
		for _, r := range gallery {
			fmt.Printf("  %d students: student needs %.2f down / %.2f up Mbps\n",
				r.N, r.DownMbps.Mean, r.UpMbps.Mean)
		}

		fmt.Println("teacher pinned by every student (speaker view):")
		speaker := vcalab.ModalitySweep(mk(), vcalab.Speaker, 8, 2, 13)
		for _, r := range speaker {
			fmt.Printf("  %d students: teacher uplink %.2f Mbps\n", r.N, r.UpMbps.Mean)
		}
		fmt.Println()
	}
	fmt.Println("Note the §6 findings: Zoom's and Meet's uplink DROPS as the")
	fmt.Println("gallery grows (smaller tiles need less resolution), while a")
	fmt.Println("pinned Teams sender uploads MORE for every extra participant.")
}
