// Package vcalab_test contains the reproduction benchmark harness: one
// benchmark per table and figure of MacMillan et al. (IMC 2021). Each
// benchmark regenerates its artifact at reduced repetition count and
// reports the headline quantities via b.ReportMetric, so `go test -bench=.`
// doubles as reproduction evidence. Full-fidelity runs (paper grids and
// repetition counts) are available from `go run ./cmd/vcabench`.
//
// Absolute numbers come from a simulator, not the authors' testbed; the
// quantities asserted in EXPERIMENTS.md are the paper's *shapes*: who wins,
// by what factor, where the crossovers fall.
package vcalab_test

import (
	"testing"
	"time"

	"vcalab"
)

// reproDur is the call length used by the benchmark harness (the paper's
// sweeps use 150 s calls; benches trim warm-up-insensitive experiments).
const reproDur = 120 * time.Second

// BenchmarkTable2Unconstrained reproduces Table 2: unconstrained up/down
// utilization of the three VCAs.
func BenchmarkTable2Unconstrained(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := vcalab.Table2([]*vcalab.Profile{vcalab.Meet(), vcalab.Teams(), vcalab.Zoom()}, 2, 1)
		for _, r := range rs {
			b.ReportMetric(r.MeanUp.Mean, r.Profile+"_up_mbps")
			b.ReportMetric(r.MeanDown.Mean, r.Profile+"_down_mbps")
		}
	}
}

// staticBench runs a reduced Fig 1 sweep and reports medians per capacity.
func staticBench(b *testing.B, prof *vcalab.Profile, dir vcalab.Direction, caps []float64) []vcalab.StaticResult {
	var rs []vcalab.StaticResult
	for i := 0; i < b.N; i++ {
		rs = vcalab.RunStatic(vcalab.StaticConfig{
			Profile: prof, Dir: dir, CapsMbps: caps, Reps: 2, Dur: reproDur, Seed: 1,
		})
	}
	return rs
}

// BenchmarkFigure1aUplinkUtilization reproduces Fig 1a: median sent bitrate
// vs uplink capacity.
func BenchmarkFigure1aUplinkUtilization(b *testing.B) {
	caps := []float64{0.5, 1.0, 2.0, 10}
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.Teams, vcalab.Zoom} {
		p := mk()
		rs := staticBench(b, p, vcalab.Uplink, caps)
		for _, r := range rs {
			b.ReportMetric(r.MedianMbps.Mean, r.Profile+"_at_"+mbpsLabel(r.CapacityMbps))
		}
	}
}

// BenchmarkFigure1bDownlinkUtilization reproduces Fig 1b, including Meet's
// low-copy utilization floor below 0.8 Mbps.
func BenchmarkFigure1bDownlinkUtilization(b *testing.B) {
	caps := []float64{0.5, 1.0, 2.0, 10}
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.Teams, vcalab.Zoom} {
		p := mk()
		rs := staticBench(b, p, vcalab.Downlink, caps)
		for _, r := range rs {
			b.ReportMetric(r.MedianMbps.Mean, r.Profile+"_at_"+mbpsLabel(r.CapacityMbps))
		}
	}
}

// BenchmarkFigure1cBrowserVsNative reproduces Fig 1c: Teams-Chrome uses
// markedly less of a 1 Mbps uplink than Teams-native; Zoom's clients match.
func BenchmarkFigure1cBrowserVsNative(b *testing.B) {
	caps := []float64{1.0}
	for _, mk := range []func() *vcalab.Profile{
		vcalab.Teams, vcalab.TeamsChrome, vcalab.Zoom, vcalab.ZoomChrome,
	} {
		p := mk()
		rs := staticBench(b, p, vcalab.Uplink, caps)
		b.ReportMetric(rs[0].MedianMbps.Mean, p.Name+"_at_1mbps")
	}
}

// BenchmarkFigure2DownlinkEncoding reproduces Fig 2a-c: received-stream
// QP / FPS / width vs downlink capacity for Meet and Teams-Chrome.
func BenchmarkFigure2DownlinkEncoding(b *testing.B) {
	caps := []float64{0.3, 0.5, 1.0, 10}
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.TeamsChrome} {
		p := mk()
		rs := staticBench(b, p, vcalab.Downlink, caps)
		for _, r := range rs {
			lbl := r.Profile + "_at_" + mbpsLabel(r.CapacityMbps)
			b.ReportMetric(r.In.QP, lbl+"_qp")
			b.ReportMetric(r.In.FPS, lbl+"_fps")
			b.ReportMetric(float64(r.In.Width), lbl+"_width")
		}
	}
}

// BenchmarkFigure2UplinkEncoding reproduces Fig 2d-f, including the Teams
// width-increase bug at 0.3 Mbps.
func BenchmarkFigure2UplinkEncoding(b *testing.B) {
	caps := []float64{0.3, 0.5, 1.0, 10}
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.TeamsChrome} {
		p := mk()
		rs := staticBench(b, p, vcalab.Uplink, caps)
		for _, r := range rs {
			lbl := r.Profile + "_at_" + mbpsLabel(r.CapacityMbps)
			b.ReportMetric(r.Out.QP, lbl+"_qp")
			b.ReportMetric(r.Out.FPS, lbl+"_fps")
			b.ReportMetric(float64(r.Out.Width), lbl+"_width")
		}
	}
}

// BenchmarkFigure3aFreezeRatio reproduces Fig 3a: receiver freeze ratio vs
// downlink capacity (incl. Teams-Chrome's freezes on an unconstrained link).
func BenchmarkFigure3aFreezeRatio(b *testing.B) {
	caps := []float64{0.3, 1.0, 10}
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.TeamsChrome} {
		p := mk()
		rs := staticBench(b, p, vcalab.Downlink, caps)
		for _, r := range rs {
			b.ReportMetric(r.FreezeRatio.Mean, r.Profile+"_freeze_at_"+mbpsLabel(r.CapacityMbps))
		}
	}
}

// BenchmarkFigure3bFIRCount reproduces Fig 3b: FIR counts for the uplink
// video spike at low capacities.
func BenchmarkFigure3bFIRCount(b *testing.B) {
	caps := []float64{0.3, 0.5, 2.0}
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.TeamsChrome} {
		p := mk()
		rs := staticBench(b, p, vcalab.Uplink, caps)
		for _, r := range rs {
			b.ReportMetric(r.FIRCount.Mean, r.Profile+"_fir_at_"+mbpsLabel(r.CapacityMbps))
		}
	}
}

func disruptionBench(b *testing.B, dir vcalab.Direction, levels []float64) {
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.Teams, vcalab.Zoom} {
		for _, level := range levels {
			p := mk()
			var r vcalab.DisruptionResult
			for i := 0; i < b.N; i++ {
				r = vcalab.RunDisruption(vcalab.DisruptionConfig{
					Profile: p, Dir: dir, LevelMbps: level, Reps: 2, Seed: 3,
				})
			}
			b.ReportMetric(r.TTR.Mean, p.Name+"_ttr_s_at_"+mbpsLabel(level))
		}
	}
}

// BenchmarkFigure4aUplinkDisruptionTrace reproduces Fig 4a's trace shape:
// the during-dip rate and Zoom's post-recovery overshoot above nominal.
func BenchmarkFigure4aUplinkDisruptionTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := vcalab.RunDisruption(vcalab.DisruptionConfig{
			Profile: vcalab.Zoom(), Dir: vcalab.Uplink, LevelMbps: 0.25, Reps: 2, Seed: 3,
		})
		pre := vcalab.Mean(r.Series.Slice(30*time.Second, 60*time.Second).Values)
		during := vcalab.Mean(r.Series.Slice(70*time.Second, 90*time.Second).Values)
		post := vcalab.Mean(r.Series.Slice(150*time.Second, 240*time.Second).Values)
		b.ReportMetric(pre, "zoom_pre_mbps")
		b.ReportMetric(during, "zoom_during_mbps")
		b.ReportMetric(post, "zoom_probe_phase_mbps")
	}
}

// BenchmarkFigure4bUplinkTTR reproduces Fig 4b: TTR vs uplink dip severity.
func BenchmarkFigure4bUplinkTTR(b *testing.B) {
	disruptionBench(b, vcalab.Uplink, []float64{0.25, 1.0})
}

// BenchmarkFigure5aDownlinkDisruptionTrace reproduces Fig 5a's trace.
func BenchmarkFigure5aDownlinkDisruptionTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := vcalab.RunDisruption(vcalab.DisruptionConfig{
			Profile: vcalab.Meet(), Dir: vcalab.Downlink, LevelMbps: 0.25, Reps: 2, Seed: 3,
		})
		during := vcalab.Mean(r.Series.Slice(70*time.Second, 90*time.Second).Values)
		b.ReportMetric(during, "meet_during_mbps")
		b.ReportMetric(r.TTR.Mean, "meet_ttr_s")
	}
}

// BenchmarkFigure5bDownlinkTTR reproduces Fig 5b: Meet and Zoom recover in
// seconds (simulcast switch / SVC layers), Teams takes 20+.
func BenchmarkFigure5bDownlinkTTR(b *testing.B) {
	disruptionBench(b, vcalab.Downlink, []float64{0.25})
}

// BenchmarkFigure6FarClientUpstream reproduces Fig 6: during C1's downlink
// dip, C2's upstream stays flat for Meet but collapses for Teams.
func BenchmarkFigure6FarClientUpstream(b *testing.B) {
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.Teams} {
		p := mk()
		for i := 0; i < b.N; i++ {
			r := vcalab.RunDisruption(vcalab.DisruptionConfig{
				Profile: p, Dir: vcalab.Downlink, LevelMbps: 0.25, Reps: 2, Seed: 3,
			})
			pre := vcalab.Mean(r.FarSeries.Slice(30*time.Second, 60*time.Second).Values)
			during := vcalab.Mean(r.FarSeries.Slice(65*time.Second, 90*time.Second).Values)
			b.ReportMetric(during/pre, p.Name+"_far_up_retained_frac")
		}
	}
}

func competitionBench(b *testing.B, cfg vcalab.CompetitionConfig, label string) vcalab.CompetitionResult {
	var r vcalab.CompetitionResult
	for i := 0; i < b.N; i++ {
		r = vcalab.RunCompetition(cfg)
	}
	b.ReportMetric(r.ShareUp.Mean, label+"_up_share")
	b.ReportMetric(r.ShareDown.Mean, label+"_down_share")
	return r
}

// BenchmarkFigure8UplinkShare reproduces Fig 8: pairwise VCA uplink shares
// at 0.5 Mbps — Zoom incumbent takes >=75%.
func BenchmarkFigure8UplinkShare(b *testing.B) {
	pairs := []struct{ inc, comp func() *vcalab.Profile }{
		{vcalab.Meet, vcalab.Teams},
		{vcalab.Meet, vcalab.Zoom},
		{vcalab.Zoom, vcalab.Meet},
		{vcalab.Zoom, vcalab.Teams},
		{vcalab.Teams, vcalab.Zoom},
	}
	for _, pr := range pairs {
		inc, comp := pr.inc(), pr.comp()
		competitionBench(b, vcalab.CompetitionConfig{
			Incumbent: inc, Kind: vcalab.CompVCA, CompProfile: comp,
			LinkMbps: 0.5, Reps: 1, Seed: 7,
		}, inc.Name+"_vs_"+comp.Name)
	}
}

// BenchmarkFigure9SelfCompetition reproduces Fig 9: Zoom is unfair to
// itself; two Meet calls converge to a fair split.
func BenchmarkFigure9SelfCompetition(b *testing.B) {
	for _, mk := range []func() *vcalab.Profile{vcalab.Zoom, vcalab.Meet} {
		p, q := mk(), mk()
		competitionBench(b, vcalab.CompetitionConfig{
			Incumbent: p, Kind: vcalab.CompVCA, CompProfile: q,
			LinkMbps: 0.5, Reps: 1, Seed: 7,
		}, p.Name+"_vs_self")
	}
}

// BenchmarkFigure10DownlinkShare reproduces Fig 10: Teams cedes the
// downlink to every other VCA.
func BenchmarkFigure10DownlinkShare(b *testing.B) {
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.Zoom} {
		comp := mk()
		inc := vcalab.Teams()
		competitionBench(b, vcalab.CompetitionConfig{
			Incumbent: inc, Kind: vcalab.CompVCA, CompProfile: comp,
			LinkMbps: 0.5, Reps: 1, Seed: 7,
		}, "teams_vs_"+comp.Name)
	}
}

// BenchmarkFigure11TeamsVsZoom reproduces Fig 11 at 1 Mbps: near-fair
// uplink, Teams crushed on the downlink.
func BenchmarkFigure11TeamsVsZoom(b *testing.B) {
	competitionBench(b, vcalab.CompetitionConfig{
		Incumbent: vcalab.Teams(), Kind: vcalab.CompVCA, CompProfile: vcalab.Zoom(),
		LinkMbps: 1, Reps: 1, Seed: 7,
	}, "teams_vs_zoom_1mbps")
}

// BenchmarkFigure12VCAvsTCP reproduces Fig 12: shares against an iPerf3
// flow at 2 Mbps — Meet/Zoom reach nominal, Teams is starved.
func BenchmarkFigure12VCAvsTCP(b *testing.B) {
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.Teams, vcalab.Zoom} {
		p := mk()
		competitionBench(b, vcalab.CompetitionConfig{
			Incumbent: p, Kind: vcalab.CompIPerf, LinkMbps: 2, Reps: 1, Seed: 7,
		}, p.Name+"_vs_tcp")
	}
}

// BenchmarkFigure13ZoomBurst reproduces Fig 13: Zoom's periodic probe
// bursts depress a competing TCP flow.
func BenchmarkFigure13ZoomBurst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := vcalab.RunCompetition(vcalab.CompetitionConfig{
			Incumbent: vcalab.Zoom(), Kind: vcalab.CompIPerf, LinkMbps: 2, Reps: 1, Seed: 7,
		})
		// Burst visibility: peak-to-median ratio of Zoom's uplink rate
		// while competing.
		window := r.IncUp.Slice(60*time.Second, 150*time.Second)
		med := vcalab.Median(window.Values)
		peak := 0.0
		for _, v := range window.Values {
			if v > peak {
				peak = v
			}
		}
		if med > 0 {
			b.ReportMetric(peak/med, "zoom_burst_peak_over_median")
		}
	}
}

// BenchmarkFigure14NetflixVsZoom reproduces Fig 14: Zoom starves Netflix at
// 0.5 Mbps despite Netflix opening many parallel connections.
func BenchmarkFigure14NetflixVsZoom(b *testing.B) {
	var r vcalab.CompetitionResult
	for i := 0; i < b.N; i++ {
		r = vcalab.RunCompetition(vcalab.CompetitionConfig{
			Incumbent: vcalab.Zoom(), Kind: vcalab.CompNetflix, LinkMbps: 0.5, Reps: 1, Seed: 7,
		})
	}
	b.ReportMetric(r.ShareDown.Mean, "zoom_down_share")
	b.ReportMetric(r.NetflixConns.Mean, "netflix_connections")
	b.ReportMetric(r.NetflixPeakParallel.Mean, "netflix_peak_parallel")
}

// BenchmarkFigure15aGalleryDownlink reproduces Fig 15a: downstream vs
// participant count in gallery mode.
func BenchmarkFigure15aGalleryDownlink(b *testing.B) {
	modalityBench(b, vcalab.Gallery, func(r vcalab.ModalityResult) (float64, string) {
		return r.DownMbps.Mean, "down"
	})
}

// BenchmarkFigure15bGalleryUplink reproduces Fig 15b: Zoom's uplink drop at
// n=5, Meet's at n=7, Teams flat.
func BenchmarkFigure15bGalleryUplink(b *testing.B) {
	modalityBench(b, vcalab.Gallery, func(r vcalab.ModalityResult) (float64, string) {
		return r.UpMbps.Mean, "up"
	})
}

// BenchmarkFigure15cSpeakerUplink reproduces Fig 15c: pinned Zoom/Meet hold
// ~1 Mbps; pinned Teams grows with every participant.
func BenchmarkFigure15cSpeakerUplink(b *testing.B) {
	modalityBench(b, vcalab.Speaker, func(r vcalab.ModalityResult) (float64, string) {
		return r.UpMbps.Mean, "up"
	})
}

func modalityBench(b *testing.B, mode vcalab.ViewMode, metric func(vcalab.ModalityResult) (float64, string)) {
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.Teams, vcalab.Zoom} {
		p := mk()
		var rs []vcalab.ModalityResult
		for i := 0; i < b.N; i++ {
			rs = vcalab.ModalitySweep(mk(), mode, 8, 1, 11)
		}
		for _, r := range rs {
			v, dir := metric(r)
			b.ReportMetric(v, p.Name+"_"+dir+"_n"+itoa(r.N))
		}
	}
}

// --- Ablations (DESIGN.md §4): disable one mechanism and show the paper's
// shape no longer emerges. ---

// BenchmarkAblationNoSimulcast removes Meet's simulcast: downlink-dip
// recovery loses its fast stream-switch path.
func BenchmarkAblationNoSimulcast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := vcalab.RunDisruption(vcalab.DisruptionConfig{
			Profile: vcalab.Meet(), Dir: vcalab.Downlink, LevelMbps: 0.25, Reps: 2, Seed: 3,
		})
		crippled := vcalab.Meet()
		crippled.MediaMode = 0 // ModeSingle: one stream, no copies to switch
		without := vcalab.RunDisruption(vcalab.DisruptionConfig{
			Profile: crippled, Dir: vcalab.Downlink, LevelMbps: 0.25, Reps: 2, Seed: 3,
		})
		b.ReportMetric(with.TTR.Mean, "with_simulcast_ttr_s")
		b.ReportMetric(without.TTR.Mean, "without_simulcast_ttr_s")
	}
}

// BenchmarkAblationNoSVC removes Zoom's layered coding the same way.
func BenchmarkAblationNoSVC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := vcalab.RunDisruption(vcalab.DisruptionConfig{
			Profile: vcalab.Zoom(), Dir: vcalab.Downlink, LevelMbps: 0.25, Reps: 2, Seed: 3,
		})
		crippled := vcalab.Zoom()
		crippled.MediaMode = 0
		crippled.ServerFECOverhead = 0
		without := vcalab.RunDisruption(vcalab.DisruptionConfig{
			Profile: crippled, Dir: vcalab.Downlink, LevelMbps: 0.25, Reps: 2, Seed: 3,
		})
		b.ReportMetric(with.TTR.Mean, "with_svc_ttr_s")
		b.ReportMetric(without.TTR.Mean, "without_svc_ttr_s")
	}
}

func mbpsLabel(m float64) string {
	switch {
	case m == 0:
		return "inf"
	case m < 1:
		return "0" + itoa(int(m*10)) + "mbps" // 0.5 -> 05mbps
	default:
		return itoa(int(m)) + "mbps"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// sweepBench runs a reduced Fig 1a sweep (4 caps × 2 reps) at a fixed
// trial parallelism; the Sequential/Parallel pair below measures the
// speedup from the worker-pool sweep engine. Results are identical in
// both — only wall-clock differs.
func sweepBench(b *testing.B, parallel int) {
	for i := 0; i < b.N; i++ {
		vcalab.RunStatic(vcalab.StaticConfig{
			Profile: vcalab.Meet(), Dir: vcalab.Uplink,
			CapsMbps: []float64{0.5, 1, 2, 10}, Reps: 2,
			Dur: 60 * time.Second, Warmup: 20 * time.Second,
			Seed: 1, Parallel: parallel,
		})
	}
}

// BenchmarkSweepSequential is the pre-runner baseline: one trial at a time.
func BenchmarkSweepSequential(b *testing.B) { sweepBench(b, 1) }

// BenchmarkSweepParallel fans the same trials across all cores.
func BenchmarkSweepParallel(b *testing.B) { sweepBench(b, 0) }

// BenchmarkExtensionLossImpairment runs the §8 future-work extension:
// utilization under random (non-congestive) loss, where the three
// controllers' loss tolerances separate cleanly.
func BenchmarkExtensionLossImpairment(b *testing.B) {
	for _, mk := range []func() *vcalab.Profile{vcalab.Meet, vcalab.Teams, vcalab.Zoom} {
		p := mk()
		var rs []vcalab.ImpairmentResult
		for i := 0; i < b.N; i++ {
			rs = vcalab.RunImpairment(vcalab.ImpairmentConfig{
				Profile: p, LossPcts: []float64{2}, Reps: 2, Seed: 5,
			})
		}
		b.ReportMetric(rs[0].UpMbps.Mean, p.Name+"_up_at_2pct_loss")
	}
}

// scaleBench runs the cascaded large-call sweep (one condition, reduced
// duration) at a fixed trial parallelism, reporting simulated seconds per
// wall second — the sweep engine's throughput on cascade workloads. The
// CLI equivalent (`vcabench -bench -json`) writes BENCH_scale.json.
func scaleBench(b *testing.B, parallel int) {
	const trials, dur = 4, 20 * time.Second
	start := time.Now()
	for i := 0; i < b.N; i++ {
		vcalab.RunScale(vcalab.ScaleConfig{
			Profile: vcalab.Teams(), Participants: []int{12}, Regions: 3,
			InterMbps: []float64{20}, Reps: trials,
			Dur: dur, Warmup: 8 * time.Second,
			Seed: 1, Parallel: parallel,
		})
	}
	wall := time.Since(start).Seconds()
	if wall > 0 {
		b.ReportMetric(float64(b.N)*trials*dur.Seconds()/wall, "sim_s/wall_s")
	}
}

// BenchmarkScaleCascadeSequential runs the cascade sweep one trial at a time.
func BenchmarkScaleCascadeSequential(b *testing.B) { scaleBench(b, 1) }

// BenchmarkScaleCascadeParallel fans the cascade trials across all cores.
func BenchmarkScaleCascadeParallel(b *testing.B) { scaleBench(b, 0) }
