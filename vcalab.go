// Package vcalab is a laboratory for measuring the performance and network
// utilization of video conferencing applications, reproducing MacMillan,
// Mangla, Saxon and Feamster, "Measuring the Performance and Network
// Utilization of Popular Video Conferencing Applications" (IMC 2021).
//
// The library contains mechanism-faithful models of Zoom, Google Meet and
// Microsoft Teams (congestion control, simulcast/SVC encoding, relay-server
// behaviour) running over a deterministic discrete-event network emulator,
// plus the paper's complete experiment harness: static shaping sweeps,
// transient disruptions, competition against TCP/Netflix/YouTube, and
// multi-party call modalities.
//
// # Quickstart
//
//	eng := vcalab.NewEngine(42)
//	lab := vcalab.NewLab(eng, 1e6, 1e6) // 1 Mbps symmetric access link
//	c1 := lab.ClientHost("c1")
//	c2 := lab.RemoteHost("c2", vcalab.RemoteDelay)
//	sfu := lab.RemoteHost("sfu", vcalab.SFUDelay)
//	call := vcalab.NewCall(eng, vcalab.Zoom(), sfu,
//	    []*vcalab.Host{c1, c2}, vcalab.CallOptions{Seed: 42})
//	call.Start()
//	eng.RunUntil(150 * time.Second)
//	call.Stop()
//	fmt.Printf("upstream: %.2f Mbps\n",
//	    call.C1().UpMeter.MeanRateMbps(30*time.Second, 150*time.Second))
//
// Higher-level experiment runners (RunStatic, RunDisruption,
// RunCompetition, RunModality) regenerate every table and figure of the
// paper; see EXPERIMENTS.md for the index.
package vcalab

import (
	"vcalab/internal/cascade"
	"vcalab/internal/experiment"
	"vcalab/internal/netem"
	"vcalab/internal/obs"
	"vcalab/internal/runner"
	"vcalab/internal/scenario"
	"vcalab/internal/sim"
	"vcalab/internal/stats"
	"vcalab/internal/vca"
)

// Core simulation types.
type (
	// Engine is the deterministic discrete-event scheduler everything
	// runs on.
	Engine = sim.Engine
	// Host is a network endpoint; Lab creates them wired into the
	// testbed topology.
	Host = netem.Host
	// Link is a shaped network hop.
	Link = netem.Link
	// LinkConfig describes one direction of a wire (rate, delay, queue,
	// impairments) — used by cascade topologies and custom labs.
	LinkConfig = netem.LinkConfig
)

// NewEngine creates a simulation engine; equal seeds give identical runs.
func NewEngine(seed int64) *Engine { return sim.New(seed) }

// Heterogeneous last-mile link models (internal/netem): Gilbert–Elliott
// bursty loss (WiFi), trace/step-driven variable capacity with handover
// gaps (LTE/5G), and bufferbloat with optional CoDel AQM. Each model owns
// its seeded randomness, so installing one never perturbs the engine's
// shared stream.
type (
	// LossModel is a stateful per-packet loss process for Link.SetLossModel.
	LossModel = netem.LossModel
	// GEConfig parameterizes the Gilbert–Elliott loss chain.
	GEConfig = netem.GEConfig
	// GilbertElliott is the GE chain; install with Link.SetLossModel.
	GilbertElliott = netem.GilbertElliott
	// CellularConfig drives a capacity trace with handover gaps.
	CellularConfig = netem.CellularConfig
	// CellularModel replays a CellularConfig against one link.
	CellularModel = netem.Cellular
	// RateStep is one segment of a cellular capacity trace.
	RateStep = netem.RateStep
	// CoDelConfig parameterizes the deterministic CoDel AQM.
	CoDelConfig = netem.CoDelConfig
	// BloatConfig describes a bufferbloated hop (deep queue, optional AQM).
	BloatConfig = netem.BloatConfig
)

var (
	// NewGilbertElliott builds a seeded GE loss model.
	NewGilbertElliott = netem.NewGilbertElliott
	// WiFiBursty parameterizes GE for a target loss rate and burst length.
	WiFiBursty = netem.WiFiBursty
	// NewCellular binds a cellular capacity model to a link.
	NewCellular = netem.NewCellular
	// NewCoDel builds an AQM instance for Link.SetAQM.
	NewCoDel = netem.NewCoDel
	// ApplyBloat reconfigures a rate-limited link as a bufferbloated hop.
	ApplyBloat = netem.ApplyBloat
	// DeepQueueBytes converts a time depth at a rate into a queue bound.
	DeepQueueBytes = netem.DeepQueueBytes
)

// VCA modelling types.
type (
	// Profile is a complete VCA calibration (client + server behaviour).
	Profile = vca.Profile
	// Call is a running conference.
	Call = vca.Call
	// CallOptions configure viewing mode and seeding.
	CallOptions = vca.CallOptions
	// Client is one call participant with its meters and stats recorder.
	Client = vca.Client
	// ViewMode selects gallery or speaker viewing (§6).
	ViewMode = vca.ViewMode
)

// Viewing modes.
const (
	Gallery = vca.Gallery
	Speaker = vca.Speaker
)

// Profiles for the five clients the paper studies.
var (
	Meet        = vca.Meet
	Zoom        = vca.Zoom
	Teams       = vca.Teams
	TeamsChrome = vca.TeamsChrome
	ZoomChrome  = vca.ZoomChrome
	// Profiles returns all five keyed by name.
	Profiles = vca.Profiles
)

// NewCall assembles a conference between client hosts through an SFU host.
var NewCall = vca.NewCall

// Cascaded multi-SFU subsystem (internal/cascade): geo-distributed relay
// meshes where each region runs its own SFU and media crosses each
// inter-region link once per origin.
type (
	// CascadeTopology describes regions, the inter-region link matrix and
	// the client→home-region assignment.
	CascadeTopology = cascade.Topology
	// CascadeRegion is one SFU site and its homed clients.
	CascadeRegion = cascade.Region
	// CascadeMesh is a built multi-router cascade lab.
	CascadeMesh = cascade.Mesh
	// CascadePlacement homes a group of client hosts on one SFU host.
	CascadePlacement = vca.CascadePlacement
)

var (
	// BuildCascade wires a cascade topology into a multi-router lab.
	BuildCascade = cascade.Build
	// CascadeAssign spreads n clients round-robin across regions.
	CascadeAssign = cascade.Assign
	// NewCascadedCall assembles a conference across per-region SFU hosts
	// joined by relay legs (Meet/Zoom: per-hop CC; Teams: end-to-end).
	NewCascadedCall = vca.NewCascadedCall
)

// Dynamic-scenario subsystem (internal/scenario): declarative,
// deterministic event timelines — participant churn waves, per-link
// capacity/delay/loss traces, mid-call layout reshapes — bound to a
// running call and driven through pooled engine events.
type (
	// Scenario is a named, ordered event timeline (pure data).
	Scenario = scenario.Scenario
	// ScenarioEvent is one timeline entry; build with ScenarioLeave,
	// ScenarioRejoin, ScenarioMode, ScenarioShape or ScenarioTrace.
	ScenarioEvent = scenario.Event
	// ScenarioTimeline is a scenario bound to an engine, call and
	// topology.
	ScenarioTimeline = scenario.Timeline
	// LinkShape is one link reconfiguration (rate/delay/loss aspects).
	LinkShape = scenario.Shape
	// ScenarioLinkRef names a link of the bound topology declaratively.
	ScenarioLinkRef = scenario.LinkRef
	// LinkResolver maps ScenarioLinkRefs to concrete links.
	LinkResolver = scenario.LinkResolver
	// LinkTraceStep is one segment of a per-link capacity trace.
	LinkTraceStep = scenario.TraceStep
	// LinkModelSpec declaratively installs a last-mile link model.
	LinkModelSpec = scenario.LinkModelSpec
	// LinkModelKind selects which model a LinkModelSpec installs.
	LinkModelKind = scenario.LinkModelKind
	// GenScenarioConfig bounds the seeded scenario generator's space.
	GenScenarioConfig = scenario.GenConfig
	// ScenarioHarnessConfig describes the call a scenario replays against
	// in the invariant harness.
	ScenarioHarnessConfig = scenario.HarnessConfig
	// ScenarioViolation is one failed invariant from a harness replay.
	ScenarioViolation = scenario.Violation
)

// Scenario link-target kinds (ScenarioLinkRef.Kind).
const (
	LinkClientUp   = scenario.LinkClientUp
	LinkClientDown = scenario.LinkClientDown
	LinkInter      = scenario.LinkInter
	LinkInterPair  = scenario.LinkInterPair
	LinkInterAll   = scenario.LinkInterAll
)

// Link-model kinds (LinkModelSpec.Kind).
const (
	ModelNone     = scenario.ModelNone
	ModelGE       = scenario.ModelGE
	ModelCellular = scenario.ModelCellular
	ModelBloat    = scenario.ModelBloat
)

var (
	// NewScenarioTimeline binds a scenario; Start it before (or after)
	// Call.Start.
	NewScenarioTimeline = scenario.New
	// MeshLinks resolves scenario link refs against a built cascade mesh.
	MeshLinks = scenario.MeshLinks
	// Scenario event constructors.
	ScenarioLeave  = scenario.Leave
	ScenarioRejoin = scenario.Rejoin
	ScenarioMode   = scenario.Mode
	ScenarioShape  = scenario.ShapeLink
	ScenarioTrace  = scenario.Trace
	// ScenarioModel returns an event installing a last-mile link model.
	ScenarioModel = scenario.ModelLink
	// CannedScenario instantiates a canned scenario by name;
	// CannedScenarioNames lists them.
	CannedScenario      = scenario.Canned
	CannedScenarioNames = scenario.CannedNames
	// GenerateScenario composes a seed-deterministic random scenario from
	// churn, reshape, partition and link-model motifs.
	GenerateScenario = scenario.Generate
	// ReplayScenario replays any scenario through the invariant harness,
	// returning every violation; FuzzScenario generates seed's scenario
	// first (the `-fuzz` reproduction path).
	ReplayScenario = scenario.Replay
	FuzzScenario   = scenario.FuzzOne
)

// Experiment harness.
type (
	// Lab is the paper's testbed topology (§2.2 / Fig 7).
	Lab = experiment.Lab
	// Direction selects the shaped side of the access link.
	Direction = experiment.Direction

	// StaticConfig/StaticResult drive §3 (Figs 1-3, Table 2).
	StaticConfig = experiment.StaticConfig
	StaticResult = experiment.StaticResult
	// DisruptionConfig/DisruptionResult drive §4 (Figs 4-6).
	DisruptionConfig = experiment.DisruptionConfig
	DisruptionResult = experiment.DisruptionResult
	// CompetitionConfig/CompetitionResult drive §5 (Figs 8-14).
	CompetitionConfig = experiment.CompetitionConfig
	CompetitionResult = experiment.CompetitionResult
	CompetitorKind    = experiment.CompetitorKind
	// ModalityConfig/ModalityResult drive §6 (Fig 15).
	ModalityConfig = experiment.ModalityConfig
	ModalityResult = experiment.ModalityResult
	// ImpairmentConfig/ImpairmentResult drive the §8 extension: random
	// loss and jitter on an unconstrained link.
	ImpairmentConfig = experiment.ImpairmentConfig
	ImpairmentResult = experiment.ImpairmentResult
	// ScaleConfig/ScaleResult drive the cascaded large-call sweep
	// (participants × regions × inter-region capacity).
	ScaleConfig = experiment.ScaleConfig
	ScaleResult = experiment.ScaleResult
	// DynamicConfig/DynamicResult drive the dynamic-scenario workload:
	// one scenario timeline replayed against a cascaded call, reporting
	// freeze ratio, per-event recovery time and latency percentiles.
	DynamicConfig = experiment.DynamicConfig
	DynamicResult = experiment.DynamicResult
	// FuzzConfig/FuzzResult drive the scenario-fuzz smoke: N seeded
	// generated scenarios replayed through the invariant harness.
	FuzzConfig  = experiment.FuzzConfig
	FuzzResult  = experiment.FuzzResult
	FuzzFailure = experiment.FuzzFailure
	// BandwidthTrace replays a time-varying access-link profile (the §8
	// "other network contexts" extension); TraceStep is one segment.
	BandwidthTrace = experiment.BandwidthTrace
	TraceStep      = experiment.TraceStep
	TraceResult    = experiment.TraceResult
	// EngineBenchConfig/EngineBenchResult drive the simulation-engine
	// benchmark (events/sec, allocs/event, sim-seconds per wall-second).
	EngineBenchConfig = experiment.EngineBenchConfig
	EngineBenchResult = experiment.EngineBenchResult
)

// Observability (internal/obs): a ring-buffer tracer of typed sim-time
// events and a sampled metrics registry. A nil *Tracer is a valid no-op
// tracer; attaching a real one never changes experiment output.
type (
	// Tracer records packet/CC/switch/scenario/churn events into a
	// fixed-capacity ring exportable as JSONL.
	Tracer = obs.Tracer
	// TraceEvent is one traced record; TraceEventKind its taxonomy.
	TraceEvent     = obs.Event
	TraceEventKind = obs.EventKind
	// MetricsRegistry/MetricsLog are the sampled named-metric half.
	MetricsRegistry = obs.Registry
	MetricsLog      = obs.MetricsLog
	// ObsConfig enables per-trial capture on a dynamic run (see
	// DynamicConfig.Obs).
	ObsConfig = experiment.ObsConfig
)

var (
	// NewTracer builds a tracer holding the last n events (n <= 0 uses
	// the package default capacity).
	NewTracer = obs.NewTracer
	// NewMetricsRegistry builds an empty metrics registry.
	NewMetricsRegistry = obs.NewRegistry
)

// Traced event kinds.
const (
	EvEnqueue  = obs.EvEnqueue
	EvDequeue  = obs.EvDequeue
	EvDrop     = obs.EvDrop
	EvDeliver  = obs.EvDeliver
	EvCC       = obs.EvCC
	EvSwitch   = obs.EvSwitch
	EvScenario = obs.EvScenario
	EvChurn    = obs.EvChurn
)

// Directions.
const (
	Uplink   = experiment.Uplink
	Downlink = experiment.Downlink
)

// Competitor kinds for RunCompetition.
const (
	CompVCA     = experiment.CompVCA
	CompIPerf   = experiment.CompIPerf
	CompNetflix = experiment.CompNetflix
	CompYouTube = experiment.CompYouTube
)

// Parallel sweep engine. Every Run* fans its independent trials across a
// worker pool (one fresh single-threaded Engine per trial, per-trial
// seeds, results in input order), so parallel output is byte-identical to
// sequential. Per-sweep parallelism lives in each config's Parallel
// field; the knobs below set the process-wide default and progress hook.
type Runner = runner.Runner

var (
	// NewRunner builds a worker pool (parallelism <= 0 = GOMAXPROCS).
	NewRunner = runner.New
	// TrialSeed derives a decorrelated per-trial seed from (base, trial).
	TrialSeed = runner.Seed
	// SetDefaultParallelism sets the trial parallelism used when a
	// config's Parallel field is 0 (n <= 0 restores GOMAXPROCS).
	SetDefaultParallelism = experiment.SetDefaultParallelism
	// DefaultParallelism reports the effective default.
	DefaultParallelism = experiment.DefaultParallelism
	// SetProgress installs a per-trial progress hook for all sweeps.
	SetProgress = experiment.SetProgress
)

// Topology and experiment constructors/runners.
var (
	NewLab         = experiment.NewLab
	RunStatic      = experiment.RunStatic
	RunDisruption  = experiment.RunDisruption
	RunCompetition = experiment.RunCompetition
	RunModality    = experiment.RunModality
	RunImpairment  = experiment.RunImpairment
	RunScale       = experiment.RunScale
	RunDynamic     = experiment.RunDynamic
	RunFuzz        = experiment.RunFuzz
	RunEngineBench = experiment.RunEngineBench
	RunTrace       = experiment.RunTrace
	RunTraces      = experiment.RunTraces
	ModalitySweep  = experiment.ModalitySweep
	Table2         = experiment.Table2

	// Paper parameter grids.
	PaperCaps             = experiment.PaperCaps
	PaperDisruptionLevels = experiment.PaperDisruptionLevels
	PaperCompetitionLinks = experiment.PaperCompetitionLinks

	// Formatters for paper-style output.
	PrintStatic          = experiment.PrintStatic
	PrintTable2          = experiment.PrintTable2
	PrintDisruption      = experiment.PrintDisruption
	PrintDisruptionTrace = experiment.PrintDisruptionTrace
	PrintCompetition     = experiment.PrintCompetition
	PrintModality        = experiment.PrintModality
	PrintImpairment      = experiment.PrintImpairment
	PrintScale           = experiment.PrintScale
	PrintDynamic         = experiment.PrintDynamic
	PrintFuzz            = experiment.PrintFuzz
)

// Topology delays (re-exported from the experiment package).
const (
	ClientDelay = experiment.ClientDelay
	RemoteDelay = experiment.RemoteDelay
	SFUDelay    = experiment.SFUDelay
	IPerfDelay  = experiment.IPerfDelay
)

// Measurement types.
type (
	// Series is a time-indexed sample sequence.
	Series = stats.Series
	// Summary aggregates repeated measurements with 90% CIs.
	Summary = stats.Summary
	// Meter converts byte arrivals into bitrate series.
	Meter = stats.Meter
)

// Statistics helpers.
var (
	NewMeter  = stats.NewMeter
	Median    = stats.Median
	Mean      = stats.Mean
	Summarize = stats.Summarize
	TTR       = stats.TTR
	Share     = stats.Share
)
