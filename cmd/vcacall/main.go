// Command vcacall runs a single emulated video-conference call and prints
// per-second measurements as CSV: C1's upstream and downstream bitrate and
// the WebRTC-stats encode parameters.
//
// Usage:
//
//	vcacall -vca zoom -up 0.5 -down 0 -dur 150s
//	vcacall -vca meet -n 5 -mode speaker
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vcalab"
)

func main() {
	var (
		vcaName = flag.String("vca", "zoom", "VCA profile: meet|zoom|teams|teams-chrome|zoom-chrome")
		up      = flag.Float64("up", 0, "uplink shaping in Mbps (0 = unconstrained)")
		down    = flag.Float64("down", 0, "downlink shaping in Mbps (0 = unconstrained)")
		dur     = flag.Duration("dur", 150*time.Second, "call duration")
		n       = flag.Int("n", 2, "number of participants")
		mode    = flag.String("mode", "gallery", "viewing mode: gallery|speaker")
		seed    = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	prof, ok := vcalab.Profiles()[*vcaName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown VCA %q; choose from meet, zoom, teams, teams-chrome, zoom-chrome\n", *vcaName)
		os.Exit(2)
	}
	vm := vcalab.Gallery
	if *mode == "speaker" {
		vm = vcalab.Speaker
	}

	eng := vcalab.NewEngine(*seed)
	lab := vcalab.NewLab(eng, *up*1e6, *down*1e6)
	hosts := []*vcalab.Host{lab.ClientHost("c1")}
	for i := 2; i <= *n; i++ {
		hosts = append(hosts, lab.RemoteHost(fmt.Sprintf("c%d", i), vcalab.RemoteDelay))
	}
	sfu := lab.RemoteHost("sfu", vcalab.SFUDelay)
	call := vcalab.NewCall(eng, prof, sfu, hosts, vcalab.CallOptions{Mode: vm, Seed: *seed})
	call.Start()
	eng.RunUntil(*dur)
	call.Stop()

	c1 := call.C1()
	upS, downS := c1.UpMeter.RateMbps(), c1.DownMeter.RateMbps()
	fmt.Println("t_s,up_mbps,down_mbps,out_fps,out_qp,out_width,fir_total")
	for i := range upS.Times {
		var fps, qp float64
		var width, fir int
		if i < len(c1.Recorder.Samples) {
			s := c1.Recorder.Samples[i]
			fps, qp, width, fir = s.Out.FPS, s.Out.QP, s.Out.Width, s.FIRCount
		}
		d := 0.0
		if i < downS.Len() {
			d = downS.Values[i]
		}
		fmt.Printf("%.0f,%.3f,%.3f,%.1f,%.1f,%d,%d\n",
			upS.Times[i].Seconds(), upS.Values[i], d, fps, qp, width, fir)
	}
	fmt.Fprintf(os.Stderr, "%s: mean up %.2f Mbps, down %.2f Mbps over final 2/3 of call\n",
		prof.Name,
		c1.UpMeter.MeanRateMbps(*dur/3, *dur),
		c1.DownMeter.MeanRateMbps(*dur/3, *dur))
}
