// Command vcalint is vcalab's custom vet suite: four analyzers that
// statically enforce the invariants every PR since the zero-alloc
// rewrite has defended by hand — determinism (byte-identical output at
// any -parallel × -shards), pool hygiene (every pooled packet/event
// released or ownership-transferred on every terminal path), hot-path
// allocation discipline (//vca:hotpath functions stay within the
// ≤0.1 allocs/event budget), and nil-guarded observability producers
// (tracing stays zero-cost when off). See DESIGN.md §14.
//
// Two modes:
//
//	vcalint ./...                     # standalone, type-checks from source
//	go vet -vettool=$(which vcalint) ./...   # driven by cmd/go
//
// Suppression: //vcalint:ignore <analyzer> <reason> on (or directly
// above) the offending line; //vcalint:file-ignore for whole files.
// Unknown analyzer names and missing reasons in directives are
// themselves findings.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"vcalab/internal/analysis"
	"vcalab/internal/analysis/determinism"
	"vcalab/internal/analysis/hotpath"
	"vcalab/internal/analysis/nilguard"
	"vcalab/internal/analysis/poolhygiene"
)

var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	poolhygiene.Analyzer,
	hotpath.Analyzer,
	nilguard.Analyzer,
}

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			// cmd/go uses this output as the tool's cache key: include a
			// content hash so rebuilt analyzers invalidate stale results.
			fmt.Printf("vcalint version 1 sum %s\n", selfHash())
			return
		case a == "-V" || a == "--V":
			fmt.Println("vcalint version 1")
			return
		case a == "-flags" || a == "--flags":
			// cmd/go probes for supported analyzer flags; we take none.
			fmt.Println("[]")
			return
		case a == "help" || a == "-h" || a == "--help":
			usage(os.Stdout)
			return
		}
	}

	// Unit mode: cmd/go hands us a single vet.cfg path per package.
	if len(args) == 1 && analysis.IsUnitConfig(args[0]) {
		n, err := analysis.RunUnit(args[0], analyzers, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vcalint: %v\n", err)
			os.Exit(1)
		}
		if n > 0 {
			os.Exit(2)
		}
		return
	}

	// Standalone mode: resolve the module, expand patterns, analyze.
	if len(args) == 0 {
		args = []string{"./..."}
	}
	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vcalint: %v\n", err)
		os.Exit(1)
	}
	paths, dirs, err := analysis.FindPackages(root, modPath, args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vcalint: %v\n", err)
		os.Exit(1)
	}
	loader := analysis.NewLoader(modPath, root)
	found := 0
	for i, dir := range dirs {
		pkg, err := loader.LoadPackage(paths[i], dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vcalint: %v\n", err)
			os.Exit(1)
		}
		diags, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vcalint: %v\n", err)
			os.Exit(1)
		}
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			rel := pos.Filename
			if r, err := filepath.Rel(root, pos.Filename); err == nil {
				rel = r
			}
			fmt.Printf("%s:%d:%d: %s [%s]\n", rel, pos.Line, pos.Column, d.Message, d.Analyzer)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "vcalint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: vcalint [./... | packages]\n       go vet -vettool=vcalint ./...\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(w, "\nsuppress with //vcalint:ignore <analyzer> <reason> (same or previous line)\nor //vcalint:file-ignore <analyzer> <reason> for a whole file.\n")
}

// findModule walks up from the working directory to go.mod.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gm); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s", gm)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}
