// Command vcapcap runs an emulated call and writes C1's traffic to a
// libpcap capture file, reproducing the paper's per-client tcpdump traces.
// Media packets carry real RTP headers and open in standard tools.
//
// Usage:
//
//	vcapcap -vca meet -up 1 -o meet-1mbps.pcap
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vcalab"
	"vcalab/internal/pcap"
)

func main() {
	var (
		vcaName   = flag.String("vca", "zoom", "VCA profile")
		up        = flag.Float64("up", 0, "uplink shaping in Mbps (0 = unconstrained)")
		down      = flag.Float64("down", 0, "downlink shaping in Mbps")
		dur       = flag.Duration("dur", 60*time.Second, "call duration")
		out       = flag.String("o", "call.pcap", "output pcap path")
		seed      = flag.Int64("seed", 42, "simulation seed")
		traceFile = flag.String("trace", "", "also write C1's structured JSONL event timeline to `FILE`, time-aligned with the pcap (same t=0)")
	)
	flag.Parse()

	prof, ok := vcalab.Profiles()[*vcaName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown VCA %q\n", *vcaName)
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	w, err := pcap.NewWriter(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	eng := vcalab.NewEngine(*seed)
	lab := vcalab.NewLab(eng, *up*1e6, *down*1e6)
	c1 := lab.ClientHost("c1")
	c2 := lab.RemoteHost("c2", vcalab.RemoteDelay)
	sfu := lab.RemoteHost("sfu", vcalab.SFUDelay)

	// Capture at C1 like the paper: everything it receives, plus
	// everything it offers to its uplink.
	pcap.TapHost(w, c1, eng.Now)
	pcap.TapLink(w, c1.Uplink(), eng.Now)

	call := vcalab.NewCall(eng, prof, sfu, []*vcalab.Host{c1, c2}, vcalab.CallOptions{Seed: *seed})

	// -trace mirrors the pcap vantage point in structured form: the
	// tracer taps only C1's shaped access links (plus call-level CC and
	// switch decisions), so every line shares the capture's clock and the
	// file aligns packet-for-packet with the pcap.
	var tracer *vcalab.Tracer
	if *traceFile != "" {
		tracer = vcalab.NewTracer(0)
		lab.Uplink().SetTracer(tracer)
		lab.Downlink().SetTracer(tracer)
		call.SetTracer(tracer)
	}

	call.Start()
	eng.RunUntil(*dur)
	call.Stop()

	if tracer != nil {
		tf, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tracer.WriteJSONL(tf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tf.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s (%d dropped by the ring)\n",
			tracer.Len(), *traceFile, tracer.Dropped())
	}
	fmt.Fprintf(os.Stderr, "wrote %d packets to %s (%s call, %v)\n",
		w.Packets, *out, prof.Name, *dur)
}
