package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestValidateFlags pins the fail-fast behaviour of the flag validation
// helper: a negative -parallel and a non-positive -reps used to be
// silently coerced, and bad -experiment/-bench/-scenario values must exit
// with a clear message instead of panicking or running the wrong thing.
// Observability flags follow the same contract: unwritable -trace paths
// and non-positive -obs-interval fail before any sweep burns time.
func TestValidateFlags(t *testing.T) {
	okObs := obsFlags{interval: time.Second}
	writable := filepath.Join(t.TempDir(), "out.jsonl")
	cases := []struct {
		name                         string
		exp, bench, sc               string
		recovery                     string // "" = off
		parallel, reps, fuzz, shards int
		obs                          obsFlags
		wantErrMentions              string // "" = must pass
	}{
		{"defaults ok", "table2", "", "all", "off", 0, 3, 0, 1, okObs, ""},
		{"all ok", "all", "", "all", "off", 4, 1, 0, 1, okObs, ""},
		{"dynamic + canned scenario ok", "dynamic", "", "churn-storm", "off", 0, 3, 0, 1, okObs, ""},
		{"dynamic + all scenarios ok", "dynamic", "", "all", "off", 0, 3, 0, 1, okObs, ""},
		{"dynamic + generated scenario ok", "dynamic", "", "gen", "off", 0, 3, 0, 1, okObs, ""},
		{"dynamic + seeded generated scenario ok", "dynamic", "", "gen:42", "off", 0, 3, 0, 1, okObs, ""},
		{"dynamic + negative gen seed ok", "dynamic", "", "gen:-7", "off", 0, 3, 0, 1, okObs, ""},
		{"bench scale ok", "ignored", "scale", "all", "off", 1, 3, 0, 1, okObs, ""},
		{"bench engine ok", "ignored", "engine", "all", "off", 0, 3, 0, 1, okObs, ""},
		{"fuzz ok", "ignored", "", "ignored", "off", 0, 3, 50, 1, okObs, ""},
		{"sharded scale ok", "scale", "", "all", "off", 0, 3, 0, 3, okObs, ""},
		{"sharded dynamic ok", "dynamic", "", "all", "off", 0, 3, 0, 2, okObs, ""},
		{"zero shards ok (same as 1)", "scale", "", "all", "off", 0, 3, 0, 0, okObs, ""},
		{"oversubscribed shards ok (capped)", "scale", "", "all", "off", 0, 3, 0, 64, okObs, ""},
		{"dynamic + trace ok", "dynamic", "", "all", "off", 0, 3, 0, 1,
			obsFlags{trace: writable, interval: time.Second}, ""},
		{"dynamic + metrics ok", "dynamic", "", "all", "off", 0, 3, 0, 1,
			obsFlags{metrics: writable, interval: time.Second}, ""},
		{"cpuprofile anywhere ok", "table2", "", "all", "off", 0, 3, 0, 1,
			obsFlags{cpuprofile: writable, interval: time.Second}, ""},

		{"negative parallel", "table2", "", "all", "off", -1, 3, 0, 1, okObs, "-parallel"},
		{"zero reps", "table2", "", "all", "off", 0, 0, 0, 1, okObs, "-reps"},
		{"negative reps", "table2", "", "all", "off", 0, -3, 0, 1, okObs, "-reps"},
		{"negative fuzz", "table2", "", "all", "off", 0, 3, -1, 1, okObs, "-fuzz"},
		{"negative shards", "scale", "", "all", "off", 0, 3, 0, -2, okObs, "-shards"},
		{"unknown experiment", "fig99", "", "all", "off", 0, 3, 0, 1, okObs, "unknown experiment"},
		{"unknown bench mode", "table2", "bogus", "all", "off", 0, 3, 0, 1, okObs, "-bench"},
		{"unknown scenario", "dynamic", "", "nope", "off", 0, 3, 0, 1, okObs, "-scenario"},
		{"malformed gen seed", "dynamic", "", "gen:xyz", "off", 0, 3, 0, 1, okObs, "-scenario"},
		{"scenario ignored outside dynamic", "table2", "", "nope", "off", 0, 3, 0, 1, okObs, ""},

		{"zero obs interval", "dynamic", "", "all", "off", 0, 3, 0, 1,
			obsFlags{trace: writable}, "-obs-interval"},
		{"negative obs interval", "dynamic", "", "all", "off", 0, 3, 0, 1,
			obsFlags{metrics: writable, interval: -time.Second}, "-obs-interval"},
		{"unwritable trace path", "dynamic", "", "all", "off", 0, 3, 0, 1,
			obsFlags{trace: "/nonexistent-dir/t.jsonl", interval: time.Second}, "-trace"},
		{"unwritable metrics path", "dynamic", "", "all", "off", 0, 3, 0, 1,
			obsFlags{metrics: "/nonexistent-dir/m.jsonl", interval: time.Second}, "-metrics"},
		{"unwritable cpuprofile path", "table2", "", "all", "off", 0, 3, 0, 1,
			obsFlags{cpuprofile: "/nonexistent-dir/cpu.pprof", interval: time.Second}, "-cpuprofile"},
		{"trace outside dynamic", "table2", "", "all", "off", 0, 3, 0, 1,
			obsFlags{trace: writable, interval: time.Second}, "-experiment dynamic"},
		{"metrics with bench", "ignored", "engine", "all", "off", 0, 3, 0, 1,
			obsFlags{metrics: writable, interval: time.Second}, "-bench"},
		{"trace with fuzz", "ignored", "", "ignored", "off", 0, 3, 10, 1,
			obsFlags{trace: writable, interval: time.Second}, "-fuzz"},

		{"recovery impairment ok", "impairment", "", "all", "on", 0, 3, 0, 1, okObs, ""},
		{"recovery scale ok", "scale", "", "all", "on", 0, 3, 0, 2, okObs, ""},
		{"recovery dynamic ok", "dynamic", "", "region-partition", "on", 0, 3, 0, 1, okObs, ""},
		{"recovery fuzz ok", "ignored", "", "ignored", "on", 0, 3, 50, 1, okObs, ""},
		{"recovery bench engine ok", "ignored", "engine", "all", "on", 0, 3, 0, 1, okObs, ""},
		{"recovery bench scale ok", "ignored", "scale", "all", "on", 0, 3, 0, 1, okObs, ""},
		{"recovery bad value", "impairment", "", "all", "maybe", 0, 3, 0, 1, okObs, "-recovery"},
		{"recovery on paper figure", "fig1a", "", "all", "on", 0, 3, 0, 1, okObs, "-recovery"},
		{"recovery on table2", "table2", "", "all", "on", 0, 3, 0, 1, okObs, "-recovery"},
		{"recovery on all", "all", "", "all", "on", 0, 3, 0, 1, okObs, "-recovery"},
	}
	for _, c := range cases {
		err := validateFlags(c.exp, c.bench, c.sc, c.recovery, c.parallel, c.reps, c.fuzz, c.shards, c.obs)
		if c.wantErrMentions == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: no error, want one mentioning %q", c.name, c.wantErrMentions)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErrMentions) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErrMentions)
		}
	}
}

// TestRegistryCoversFlagDocs keeps the registry and the -experiment flag
// help in sync enough for validateFlags to be the single gate.
func TestRegistryCoversFlagDocs(t *testing.T) {
	for _, id := range []string{"table2", "fig1a", "fig15", "impairment", "scale", "dynamic"} {
		if !knownExperiment(id) {
			t.Errorf("experiment registry lost %q", id)
		}
	}
	if knownExperiment("all") {
		t.Error("`all` must not be a registry entry (it is the meta-id)")
	}
}
