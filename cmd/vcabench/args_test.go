package main

import (
	"strings"
	"testing"
)

// TestValidateFlags pins the fail-fast behaviour of the flag validation
// helper: a negative -parallel and a non-positive -reps used to be
// silently coerced, and bad -experiment/-bench/-scenario values must exit
// with a clear message instead of panicking or running the wrong thing.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                 string
		exp, bench, sc       string
		parallel, reps, fuzz int
		wantErrMentions      string // "" = must pass
	}{
		{"defaults ok", "table2", "", "all", 0, 3, 0, ""},
		{"all ok", "all", "", "all", 4, 1, 0, ""},
		{"dynamic + canned scenario ok", "dynamic", "", "churn-storm", 0, 3, 0, ""},
		{"dynamic + all scenarios ok", "dynamic", "", "all", 0, 3, 0, ""},
		{"dynamic + generated scenario ok", "dynamic", "", "gen", 0, 3, 0, ""},
		{"dynamic + seeded generated scenario ok", "dynamic", "", "gen:42", 0, 3, 0, ""},
		{"dynamic + negative gen seed ok", "dynamic", "", "gen:-7", 0, 3, 0, ""},
		{"bench scale ok", "ignored", "scale", "all", 1, 3, 0, ""},
		{"bench engine ok", "ignored", "engine", "all", 0, 3, 0, ""},
		{"fuzz ok", "ignored", "", "ignored", 0, 3, 50, ""},

		{"negative parallel", "table2", "", "all", -1, 3, 0, "-parallel"},
		{"zero reps", "table2", "", "all", 0, 0, 0, "-reps"},
		{"negative reps", "table2", "", "all", 0, -3, 0, "-reps"},
		{"negative fuzz", "table2", "", "all", 0, 3, -1, "-fuzz"},
		{"unknown experiment", "fig99", "", "all", 0, 3, 0, "unknown experiment"},
		{"unknown bench mode", "table2", "bogus", "all", 0, 3, 0, "-bench"},
		{"unknown scenario", "dynamic", "", "nope", 0, 3, 0, "-scenario"},
		{"malformed gen seed", "dynamic", "", "gen:xyz", 0, 3, 0, "-scenario"},
		{"scenario ignored outside dynamic", "table2", "", "nope", 0, 3, 0, ""},
	}
	for _, c := range cases {
		err := validateFlags(c.exp, c.bench, c.sc, c.parallel, c.reps, c.fuzz)
		if c.wantErrMentions == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: no error, want one mentioning %q", c.name, c.wantErrMentions)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErrMentions) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErrMentions)
		}
	}
}

// TestRegistryCoversFlagDocs keeps the registry and the -experiment flag
// help in sync enough for validateFlags to be the single gate.
func TestRegistryCoversFlagDocs(t *testing.T) {
	for _, id := range []string{"table2", "fig1a", "fig15", "impairment", "scale", "dynamic"} {
		if !knownExperiment(id) {
			t.Errorf("experiment registry lost %q", id)
		}
	}
	if knownExperiment("all") {
		t.Error("`all` must not be a registry entry (it is the meta-id)")
	}
}
