package main

import (
	"fmt"
	"strings"

	"vcalab"
)

// validateFlags checks the cross-flag invariants once, right after
// flag.Parse and before any experiment runs, so every bad invocation
// fails fast with one clear message and exit code 2. Before this helper a
// negative -parallel was silently coerced to "all cores" and a bad
// -scenario surfaced only after other sweeps had already burned minutes.
func validateFlags(exp, bench, scenarioName string, parallel, reps int) error {
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = all cores, 1 = sequential); got %d", parallel)
	}
	if reps < 1 {
		return fmt.Errorf("-reps must be >= 1; got %d", reps)
	}
	switch bench {
	case "", "scale", "engine":
	default:
		return fmt.Errorf("unknown -bench mode %q (want scale or engine)", bench)
	}
	if bench != "" {
		return nil // -bench ignores -experiment and -scenario
	}
	if exp != "all" && !knownExperiment(exp) {
		return fmt.Errorf("unknown experiment %q (try -list)", exp)
	}
	if exp == "dynamic" && scenarioName != "all" {
		if _, err := vcalab.CannedScenario(scenarioName, 2, 1e6); err != nil {
			return fmt.Errorf("unknown -scenario %q (have %s or all)",
				scenarioName, strings.Join(vcalab.CannedScenarioNames(), ", "))
		}
	}
	return nil
}

// knownExperiment reports whether the id is in the experiment registry.
func knownExperiment(id string) bool {
	for _, d := range experiments() {
		if d.name == id {
			return true
		}
	}
	return false
}
