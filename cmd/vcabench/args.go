package main

import (
	"fmt"
	"strconv"
	"strings"

	"vcalab"
)

// validateFlags checks the cross-flag invariants once, right after
// flag.Parse and before any experiment runs, so every bad invocation
// fails fast with one clear message and exit code 2. Before this helper a
// negative -parallel was silently coerced to "all cores" and a bad
// -scenario surfaced only after other sweeps had already burned minutes.
func validateFlags(exp, bench, scenarioName string, parallel, reps, fuzz int) error {
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = all cores, 1 = sequential); got %d", parallel)
	}
	if reps < 1 {
		return fmt.Errorf("-reps must be >= 1; got %d", reps)
	}
	if fuzz < 0 {
		return fmt.Errorf("-fuzz must be >= 0 (N generated scenarios to replay); got %d", fuzz)
	}
	if fuzz > 0 {
		return nil // -fuzz ignores -experiment, -bench and -scenario
	}
	switch bench {
	case "", "scale", "engine":
	default:
		return fmt.Errorf("unknown -bench mode %q (want scale or engine)", bench)
	}
	if bench != "" {
		return nil // -bench ignores -experiment and -scenario
	}
	if exp != "all" && !knownExperiment(exp) {
		return fmt.Errorf("unknown experiment %q (try -list)", exp)
	}
	if exp == "dynamic" && scenarioName != "all" {
		if _, ok, err := genScenarioSeed(scenarioName); ok {
			return err
		}
		if _, err := vcalab.CannedScenario(scenarioName, 2, 1e6); err != nil {
			return fmt.Errorf("unknown -scenario %q (have %s, gen[:seed], or all)",
				scenarioName, strings.Join(vcalab.CannedScenarioNames(), ", "))
		}
	}
	return nil
}

// genScenarioSeed parses a -scenario value of the form `gen` or
// `gen:<seed>`. ok reports whether the name asks for a generated
// scenario at all; err flags a malformed seed suffix. A bare `gen`
// falls back to the -seed flag, so `-scenario gen -seed 7` and
// `-scenario gen:7` replay the same timeline.
func genScenarioSeed(name string) (genSeed int64, ok bool, err error) {
	if name == "gen" {
		return *seed, true, nil
	}
	rest, found := strings.CutPrefix(name, "gen:")
	if !found {
		return 0, false, nil
	}
	s, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0, true, fmt.Errorf("bad -scenario %q: seed %q is not an integer", name, rest)
	}
	return s, true, nil
}

// knownExperiment reports whether the id is in the experiment registry.
func knownExperiment(id string) bool {
	for _, d := range experiments() {
		if d.name == id {
			return true
		}
	}
	return false
}
