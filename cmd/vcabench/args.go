package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vcalab"
)

// obsFlags bundles the observability/profiling flags for validation.
type obsFlags struct {
	trace      string // -trace FILE
	metrics    string // -metrics FILE
	interval   time.Duration
	cpuprofile string
	memprofile string
}

// validateFlags checks the cross-flag invariants once, right after
// flag.Parse and before any experiment runs, so every bad invocation
// fails fast with one clear message and exit code 2. Before this helper a
// negative -parallel was silently coerced to "all cores" and a bad
// -scenario surfaced only after other sweeps had already burned minutes;
// likewise an unwritable -trace path must fail here, not after the sweep.
func validateFlags(exp, bench, scenarioName, recovery string, parallel, reps, fuzz, shards int, obs obsFlags) error {
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = all cores, 1 = sequential); got %d", parallel)
	}
	switch recovery {
	case "on", "off":
	default:
		return fmt.Errorf("-recovery must be on or off; got %q", recovery)
	}
	if recovery == "on" && fuzz == 0 && bench == "" {
		// The paper-reproduction figures run the VCAs as measured — no
		// recovery knob — so silently ignoring the flag there would
		// misrepresent what ran. Only the extension workloads take it.
		switch exp {
		case "impairment", "scale", "dynamic":
		default:
			return fmt.Errorf("-recovery on applies to -experiment impairment/scale/dynamic, -fuzz and -bench; got -experiment %s", exp)
		}
	}
	if shards < 0 {
		return fmt.Errorf("-shards must be >= 0 (<= 1 = one engine per trial; capped at the region count); got %d", shards)
	}
	if reps < 1 {
		return fmt.Errorf("-reps must be >= 1; got %d", reps)
	}
	if fuzz < 0 {
		return fmt.Errorf("-fuzz must be >= 0 (N generated scenarios to replay); got %d", fuzz)
	}
	if obs.interval <= 0 {
		return fmt.Errorf("-obs-interval must be positive; got %v", obs.interval)
	}
	for _, p := range []struct{ flag, path string }{
		{"-trace", obs.trace}, {"-metrics", obs.metrics},
		{"-cpuprofile", obs.cpuprofile}, {"-memprofile", obs.memprofile},
	} {
		if p.path == "" {
			continue
		}
		// Probe writability now; the run opens (and truncates) the file
		// again later, so leaving the probe file behind is harmless.
		f, err := os.OpenFile(p.path, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return fmt.Errorf("%s: cannot write %s: %v", p.flag, p.path, err)
		}
		f.Close()
	}
	if obs.trace != "" || obs.metrics != "" {
		// Capture is wired through the dynamic experiment only; other
		// modes silently producing empty files would be worse than a
		// refusal.
		switch {
		case fuzz > 0:
			return fmt.Errorf("-trace/-metrics do not apply to -fuzz (the harness traces internally)")
		case bench != "":
			return fmt.Errorf("-trace/-metrics do not apply to -bench")
		case exp != "dynamic":
			return fmt.Errorf("-trace/-metrics require -experiment dynamic; got -experiment %s", exp)
		}
	}
	if fuzz > 0 {
		return nil // -fuzz ignores -experiment, -bench and -scenario
	}
	switch bench {
	case "", "scale", "engine":
	default:
		return fmt.Errorf("unknown -bench mode %q (want scale or engine)", bench)
	}
	if bench != "" {
		return nil // -bench ignores -experiment and -scenario
	}
	if exp != "all" && !knownExperiment(exp) {
		return fmt.Errorf("unknown experiment %q (try -list)", exp)
	}
	if exp == "dynamic" && scenarioName != "all" {
		if _, ok, err := genScenarioSeed(scenarioName); ok {
			return err
		}
		if _, err := vcalab.CannedScenario(scenarioName, 2, 1e6); err != nil {
			return fmt.Errorf("unknown -scenario %q (have %s, gen[:seed], or all)",
				scenarioName, strings.Join(vcalab.CannedScenarioNames(), ", "))
		}
	}
	return nil
}

// genScenarioSeed parses a -scenario value of the form `gen` or
// `gen:<seed>`. ok reports whether the name asks for a generated
// scenario at all; err flags a malformed seed suffix. A bare `gen`
// falls back to the -seed flag, so `-scenario gen -seed 7` and
// `-scenario gen:7` replay the same timeline.
func genScenarioSeed(name string) (genSeed int64, ok bool, err error) {
	if name == "gen" {
		return *seed, true, nil
	}
	rest, found := strings.CutPrefix(name, "gen:")
	if !found {
		return 0, false, nil
	}
	s, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0, true, fmt.Errorf("bad -scenario %q: seed %q is not an integer", name, rest)
	}
	return s, true, nil
}

// knownExperiment reports whether the id is in the experiment registry.
func knownExperiment(id string) bool {
	for _, d := range experiments() {
		if d.name == id {
			return true
		}
	}
	return false
}
