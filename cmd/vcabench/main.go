// Command vcabench regenerates the paper's tables and figures. Each
// experiment id maps to one table or figure of MacMillan et al. (IMC 2021);
// see EXPERIMENTS.md at the repo root for the full index.
//
// Usage:
//
//	vcabench -experiment table2
//	vcabench -experiment fig1a -reps 5
//	vcabench -experiment all -quick
//	vcabench -experiment fig1a -parallel 8
//
// Independent trials fan out across all cores by default (-parallel 0);
// output is byte-identical to a sequential run (-parallel 1) because each
// trial is seeded from (base seed, trial index) on its own engine and
// results aggregate in input order.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vcalab"
)

var (
	reps     = flag.Int("reps", 3, "repetitions per condition (paper: 3-5)")
	quick    = flag.Bool("quick", false, "coarser grids and shorter calls")
	seed     = flag.Int64("seed", 1, "base simulation seed")
	parallel = flag.Int("parallel", 0, "trials run concurrently (0 = all cores, 1 = sequential); results are identical either way")
	progress = flag.Bool("progress", true, "report per-sweep trial progress on stderr")
)

func main() {
	exp := flag.String("experiment", "table2",
		"experiment id: table2, fig1a, fig1b, fig1c, fig2, fig3, fig4, fig5, fig6, fig8, fig9, fig10, fig11, fig12, fig13, fig14, fig15, all")
	flag.Parse()

	vcalab.SetDefaultParallelism(*parallel)
	if *progress {
		// The \r animation only makes sense on a terminal; on a
		// redirected stderr emit one newline-terminated line per sweep.
		tty := false
		if fi, err := os.Stderr.Stat(); err == nil {
			tty = fi.Mode()&os.ModeCharDevice != 0
		}
		vcalab.SetProgress(func(label string, done, total int) {
			switch {
			case tty:
				fmt.Fprintf(os.Stderr, "\r[%-40s] %d/%d trials", label, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			case done == total:
				fmt.Fprintf(os.Stderr, "[%s] %d trials done\n", label, total)
			}
		})
	}

	runners := map[string]func(){
		"table2": table2, "fig1a": fig1a, "fig1b": fig1b, "fig1c": fig1c,
		"fig2": fig2, "fig3": fig3, "fig4": fig4, "fig5": fig5, "fig6": fig6,
		"fig8": fig8, "fig9": fig9, "fig10": fig10, "fig11": fig11,
		"fig12": fig12, "fig13": fig13, "fig14": fig14, "fig15": fig15,
		"impairment": impairment,
	}
	if *exp == "all" {
		for _, id := range []string{"table2", "fig1a", "fig1b", "fig1c", "fig2", "fig3",
			"fig4", "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"} {
			fmt.Printf("\n===== %s =====\n", id)
			runners[id]()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	run()
}

func caps() []float64 {
	if *quick {
		return []float64{0.3, 0.5, 1, 2, 10}
	}
	return vcalab.PaperCaps()
}

func callDur() time.Duration {
	if *quick {
		return 80 * time.Second
	}
	return 150 * time.Second
}

func threeVCAs() []*vcalab.Profile {
	return []*vcalab.Profile{vcalab.Meet(), vcalab.Teams(), vcalab.Zoom()}
}

func table2() {
	rs := vcalab.Table2(threeVCAs(), *reps, *seed)
	vcalab.PrintTable2(os.Stdout, rs)
}

func sweep(dir vcalab.Direction, profiles []*vcalab.Profile) {
	for _, p := range profiles {
		rs := vcalab.RunStatic(vcalab.StaticConfig{
			Profile: p, Dir: dir, CapsMbps: caps(), Reps: *reps,
			Dur: callDur(), Seed: *seed,
		})
		vcalab.PrintStatic(os.Stdout, rs)
	}
}

func fig1a() { sweep(vcalab.Uplink, threeVCAs()) }
func fig1b() { sweep(vcalab.Downlink, threeVCAs()) }
func fig1c() {
	sweep(vcalab.Uplink, []*vcalab.Profile{
		vcalab.Teams(), vcalab.TeamsChrome(), vcalab.Zoom(), vcalab.ZoomChrome(),
	})
}

func fig2() {
	// Encoding parameters for the two stats-capable clients (§3.2).
	for _, dir := range []vcalab.Direction{vcalab.Downlink, vcalab.Uplink} {
		sweep(dir, []*vcalab.Profile{vcalab.Meet(), vcalab.TeamsChrome()})
	}
}

func fig3() {
	// Freeze ratios (downlink) and FIR counts (uplink) come out of the
	// same sweeps; PrintStatic includes both columns.
	fig2()
}

func disruptionSet(dir vcalab.Direction) {
	for _, p := range threeVCAs() {
		for _, level := range vcalab.PaperDisruptionLevels() {
			r := vcalab.RunDisruption(vcalab.DisruptionConfig{
				Profile: p, Dir: dir, LevelMbps: level, Reps: *reps, Seed: *seed,
			})
			vcalab.PrintDisruption(os.Stdout, r)
		}
	}
}

func fig4() {
	disruptionSet(vcalab.Uplink)
	// Fig 4a trace at the severest level:
	r := vcalab.RunDisruption(vcalab.DisruptionConfig{
		Profile: vcalab.Zoom(), Dir: vcalab.Uplink, LevelMbps: 0.25, Reps: 1, Seed: *seed,
	})
	vcalab.PrintDisruptionTrace(os.Stdout, r)
}

func fig5() { disruptionSet(vcalab.Downlink) }

func fig6() {
	for _, p := range []*vcalab.Profile{vcalab.Meet(), vcalab.Teams()} {
		r := vcalab.RunDisruption(vcalab.DisruptionConfig{
			Profile: p, Dir: vcalab.Downlink, LevelMbps: 0.25, Reps: 1, Seed: *seed,
		})
		vcalab.PrintDisruptionTrace(os.Stdout, r)
	}
}

func vcaPairs(linkMbps float64) {
	for _, inc := range threeVCAs() {
		for _, comp := range threeVCAs() {
			r := vcalab.RunCompetition(vcalab.CompetitionConfig{
				Incumbent: inc, Kind: vcalab.CompVCA, CompProfile: comp,
				LinkMbps: linkMbps, Reps: *reps, Seed: *seed,
			})
			vcalab.PrintCompetition(os.Stdout, r)
		}
	}
}

func fig8()  { vcaPairs(0.5) }
func fig10() { vcaPairs(0.5) }

func fig9() {
	for _, p := range []*vcalab.Profile{vcalab.Zoom(), vcalab.Meet()} {
		r := vcalab.RunCompetition(vcalab.CompetitionConfig{
			Incumbent: p, Kind: vcalab.CompVCA, CompProfile: p,
			LinkMbps: 0.5, Reps: 1, Seed: *seed,
		})
		vcalab.PrintCompetition(os.Stdout, r)
	}
}

func fig11() {
	r := vcalab.RunCompetition(vcalab.CompetitionConfig{
		Incumbent: vcalab.Teams(), Kind: vcalab.CompVCA, CompProfile: vcalab.Zoom(),
		LinkMbps: 1, Reps: *reps, Seed: *seed,
	})
	vcalab.PrintCompetition(os.Stdout, r)
}

func fig12() {
	for _, p := range threeVCAs() {
		r := vcalab.RunCompetition(vcalab.CompetitionConfig{
			Incumbent: p, Kind: vcalab.CompIPerf, LinkMbps: 2, Reps: *reps, Seed: *seed,
		})
		vcalab.PrintCompetition(os.Stdout, r)
	}
}

func fig13() {
	r := vcalab.RunCompetition(vcalab.CompetitionConfig{
		Incumbent: vcalab.Zoom(), Kind: vcalab.CompIPerf, LinkMbps: 2, Reps: 1, Seed: *seed,
	})
	vcalab.PrintCompetition(os.Stdout, r)
}

func fig14() {
	r := vcalab.RunCompetition(vcalab.CompetitionConfig{
		Incumbent: vcalab.Zoom(), Kind: vcalab.CompNetflix, LinkMbps: 0.5, Reps: *reps, Seed: *seed,
	})
	vcalab.PrintCompetition(os.Stdout, r)
	y := vcalab.RunCompetition(vcalab.CompetitionConfig{
		Incumbent: vcalab.Teams(), Kind: vcalab.CompYouTube, LinkMbps: 0.5, Reps: *reps, Seed: *seed,
	})
	vcalab.PrintCompetition(os.Stdout, y)
}

// impairment is the §8 future-work extension: random loss and jitter.
func impairment() {
	for _, p := range threeVCAs() {
		rs := vcalab.RunImpairment(vcalab.ImpairmentConfig{
			Profile: p, LossPcts: []float64{0, 0.5, 1, 2, 5},
			Jitter: 20 * time.Millisecond, Reps: *reps, Seed: *seed,
		})
		vcalab.PrintImpairment(os.Stdout, rs)
	}
}

func fig15() {
	maxN := 8
	if *quick {
		maxN = 5
	}
	for _, p := range threeVCAs() {
		vcalab.PrintModality(os.Stdout, vcalab.ModalitySweep(p, vcalab.Gallery, maxN, *reps, *seed))
		vcalab.PrintModality(os.Stdout, vcalab.ModalitySweep(p, vcalab.Speaker, maxN, *reps, *seed))
	}
}
