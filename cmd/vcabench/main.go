// Command vcabench regenerates the paper's tables and figures, plus the
// extension experiments. Each experiment id maps to one table or figure of
// MacMillan et al. (IMC 2021) or one extension workload; see EXPERIMENTS.md
// at the repo root for the full index, or run with -list.
//
// Usage:
//
//	vcabench -list
//	vcabench -experiment table2
//	vcabench -experiment fig1a -reps 5
//	vcabench -experiment scale -quick
//	vcabench -experiment scale -shards 3
//	vcabench -experiment all -quick
//	vcabench -bench scale -json
//	vcabench -bench engine -json -shards 3
//
// Independent trials fan out across all cores by default (-parallel 0);
// output is byte-identical to a sequential run (-parallel 1) because each
// trial is seeded from (base seed, trial index) on its own engine and
// results aggregate in input order. -shards N additionally partitions
// each trial's engine by region (conservative-window parallel DES);
// experiment output is byte-identical at every shard count too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"vcalab"
)

var (
	reps     = flag.Int("reps", 3, "repetitions per condition (paper: 3-5)")
	quick    = flag.Bool("quick", false, "coarser grids and shorter calls")
	seed     = flag.Int64("seed", 1, "base simulation seed")
	parallel = flag.Int("parallel", 0, "trials run concurrently (0 = all cores, 1 = sequential); results are identical either way")
	shards   = flag.Int("shards", 1, "region shards per trial for scale/dynamic/fuzz/bench-engine (<= 1 = one engine; capped at the region count); experiment output is identical at every value")
	progress = flag.Bool("progress", true, "report per-sweep trial progress on stderr")
	list     = flag.Bool("list", false, "list experiment ids with descriptions and exit")
	scen     = flag.String("scenario", "all", "with -experiment dynamic: canned scenario name (see EXPERIMENTS.md), `gen[:seed]` for a generated one, or `all`")
	fuzzN    = flag.Int("fuzz", 0, "replay N seeded generated scenarios through the invariant harness (seeds -seed..-seed+N-1); exits non-zero and prints the offending seed on any violation")
	bench    = flag.String("bench", "", "benchmark mode: `scale` (sweep at 1 and NumCPU workers, BENCH_scale.json) or `engine` (events/sec + allocs/event, BENCH_engine.json)")
	jsonOut  = flag.Bool("json", false, "with -bench: write machine-readable results to BENCH_<mode>.json")
	recovery = flag.String("recovery", "off", "packet-level loss recovery (NACK/RTX, jitter buffer, TWCC feedback): `on|off`; applies to -experiment impairment/scale/dynamic, -fuzz and -bench")
	check    = flag.Bool("check", false, "with -bench engine: exit non-zero if allocs/event exceeds 0.1 or events/s regresses >20% vs the recorded baseline (the CI bench-regression gate)")

	traceFile   = flag.String("trace", "", "with -experiment dynamic: write a structured JSONL event trace (packet enqueue/dequeue/drop/deliver, CC decisions, forward switches, scenario and churn events) to `FILE`")
	metricsFile = flag.String("metrics", "", "with -experiment dynamic: write sampled metrics and per-client getStats snapshots as JSONL to `FILE`")
	obsInterval = flag.Duration("obs-interval", time.Second, "sampling period for -metrics gauges/histograms and getStats snapshots")
	cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to `FILE`")
	memprofile  = flag.String("memprofile", "", "write a pprof heap profile to `FILE` when the run completes")
)

// experimentDef is one runnable artifact; the registry is the single
// source of truth for -list, -experiment validation and `all`.
type experimentDef struct {
	name string
	desc string
	all  bool // included in -experiment all
	fn   func()
}

func experiments() []experimentDef {
	return []experimentDef{
		{"table2", "Table 2: unconstrained up/down utilization per VCA", true, table2},
		{"fig1a", "Fig 1a: median sent bitrate vs uplink capacity", true, fig1a},
		{"fig1b", "Fig 1b: median received bitrate vs downlink capacity", true, fig1b},
		{"fig1c", "Fig 1c: browser vs native clients (Teams/Zoom)", true, fig1c},
		{"fig2", "Fig 2: encode FPS/QP/width vs capacity (Meet, Teams-Chrome)", true, fig2},
		{"fig3", "Fig 3: freeze ratio (3a) and FIR counts (3b)", true, fig3},
		{"fig4", "Fig 4: uplink disruption traces + time-to-recovery", true, fig4},
		{"fig5", "Fig 5: downlink disruption TTR per VCA", true, fig5},
		{"fig6", "Fig 6: far client's upstream during C1's downlink dip", true, fig6},
		{"fig8", "Fig 8: pairwise VCA uplink shares at 0.5 Mbps", true, fig8},
		{"fig9", "Fig 9: self-competition traces (Zoom unfair, Meet fair)", true, fig9},
		{"fig10", "Fig 10: pairwise downlink shares (Teams cedes)", true, fig10},
		{"fig11", "Fig 11: Teams vs Zoom at 1 Mbps", true, fig11},
		{"fig12", "Fig 12: VCA vs TCP at 2 Mbps (Teams starved)", true, fig12},
		{"fig13", "Fig 13: Zoom's probe bursts depressing TCP", true, fig13},
		{"fig14", "Fig 14: Zoom vs Netflix / Teams vs YouTube", true, fig14},
		{"fig15", "Fig 15: up/down utilization vs participants, both modes", true, fig15},
		{"impairment", "§8 extension: random loss and jitter sweep", false, impairment},
		{"scale", "Cascaded large calls: participants x regions x inter-region capacity", false, scale},
		{"dynamic", "Dynamic scenarios: churn storms, capacity cliffs, partitions, trace replay (-scenario selects one)", false, dynamic},
	}
}

func main() {
	exp := flag.String("experiment", "table2",
		"experiment id (see -list): table2, fig1a..fig15, impairment, scale, dynamic, all")
	flag.Parse()

	if err := validateFlags(*exp, *bench, *scen, *recovery, *parallel, *reps, *fuzzN, *shards, obsFlags{
		trace: *traceFile, metrics: *metricsFile, interval: *obsInterval,
		cpuprofile: *cpuprofile, memprofile: *memprofile,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		// Runs after the workload (deferred, so it skips the os.Exit
		// failure paths, where a profile would mislead anyway).
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		fmt.Printf("%-12s %s\n", "id", "description")
		for _, d := range experiments() {
			desc := d.desc
			if !d.all {
				desc += " (extension; not part of `all`)"
			}
			fmt.Printf("%-12s %s\n", d.name, desc)
		}
		fmt.Printf("%-12s %s\n", "all", "every paper figure/table above in sequence")
		return
	}

	vcalab.SetDefaultParallelism(*parallel)
	if *progress {
		// The \r animation only makes sense on a terminal; on a
		// redirected stderr emit one newline-terminated line per sweep.
		tty := false
		if fi, err := os.Stderr.Stat(); err == nil {
			tty = fi.Mode()&os.ModeCharDevice != 0
		}
		vcalab.SetProgress(func(label string, done, total int) {
			switch {
			case tty:
				fmt.Fprintf(os.Stderr, "\r[%-40s] %d/%d trials", label, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			case done == total:
				fmt.Fprintf(os.Stderr, "[%s] %d trials done\n", label, total)
			}
		})
	}

	if *fuzzN > 0 {
		runFuzz()
		return
	}

	switch *bench {
	case "scale":
		benchScale()
		return
	case "engine":
		benchEngine()
		return
	}

	if *exp == "all" {
		for _, d := range experiments() {
			if !d.all {
				continue
			}
			fmt.Printf("\n===== %s =====\n", d.name)
			d.fn()
		}
		return
	}
	for _, d := range experiments() {
		if d.name == *exp {
			d.fn()
			return
		}
	}
	// validateFlags vetted *exp against the same registry.
	panic(fmt.Sprintf("experiment %q vetted but not registered", *exp))
}

func caps() []float64 {
	if *quick {
		return []float64{0.3, 0.5, 1, 2, 10}
	}
	return vcalab.PaperCaps()
}

func callDur() time.Duration {
	if *quick {
		return 80 * time.Second
	}
	return 150 * time.Second
}

func threeVCAs() []*vcalab.Profile {
	return []*vcalab.Profile{vcalab.Meet(), vcalab.Teams(), vcalab.Zoom()}
}

func table2() {
	rs := vcalab.Table2(threeVCAs(), *reps, *seed)
	vcalab.PrintTable2(os.Stdout, rs)
}

func sweep(dir vcalab.Direction, profiles []*vcalab.Profile) {
	for _, p := range profiles {
		rs := vcalab.RunStatic(vcalab.StaticConfig{
			Profile: p, Dir: dir, CapsMbps: caps(), Reps: *reps,
			Dur: callDur(), Seed: *seed,
		})
		vcalab.PrintStatic(os.Stdout, rs)
	}
}

func fig1a() { sweep(vcalab.Uplink, threeVCAs()) }
func fig1b() { sweep(vcalab.Downlink, threeVCAs()) }
func fig1c() {
	sweep(vcalab.Uplink, []*vcalab.Profile{
		vcalab.Teams(), vcalab.TeamsChrome(), vcalab.Zoom(), vcalab.ZoomChrome(),
	})
}

func fig2() {
	// Encoding parameters for the two stats-capable clients (§3.2).
	for _, dir := range []vcalab.Direction{vcalab.Downlink, vcalab.Uplink} {
		sweep(dir, []*vcalab.Profile{vcalab.Meet(), vcalab.TeamsChrome()})
	}
}

func fig3() {
	// Freeze ratios (downlink) and FIR counts (uplink) come out of the
	// same sweeps; PrintStatic includes both columns.
	fig2()
}

func disruptionSet(dir vcalab.Direction) {
	for _, p := range threeVCAs() {
		for _, level := range vcalab.PaperDisruptionLevels() {
			r := vcalab.RunDisruption(vcalab.DisruptionConfig{
				Profile: p, Dir: dir, LevelMbps: level, Reps: *reps, Seed: *seed,
			})
			vcalab.PrintDisruption(os.Stdout, r)
		}
	}
}

func fig4() {
	disruptionSet(vcalab.Uplink)
	// Fig 4a trace at the severest level:
	r := vcalab.RunDisruption(vcalab.DisruptionConfig{
		Profile: vcalab.Zoom(), Dir: vcalab.Uplink, LevelMbps: 0.25, Reps: 1, Seed: *seed,
	})
	vcalab.PrintDisruptionTrace(os.Stdout, r)
}

func fig5() { disruptionSet(vcalab.Downlink) }

func fig6() {
	for _, p := range []*vcalab.Profile{vcalab.Meet(), vcalab.Teams()} {
		r := vcalab.RunDisruption(vcalab.DisruptionConfig{
			Profile: p, Dir: vcalab.Downlink, LevelMbps: 0.25, Reps: 1, Seed: *seed,
		})
		vcalab.PrintDisruptionTrace(os.Stdout, r)
	}
}

func vcaPairs(linkMbps float64) {
	for _, inc := range threeVCAs() {
		for _, comp := range threeVCAs() {
			r := vcalab.RunCompetition(vcalab.CompetitionConfig{
				Incumbent: inc, Kind: vcalab.CompVCA, CompProfile: comp,
				LinkMbps: linkMbps, Reps: *reps, Seed: *seed,
			})
			vcalab.PrintCompetition(os.Stdout, r)
		}
	}
}

func fig8()  { vcaPairs(0.5) }
func fig10() { vcaPairs(0.5) }

func fig9() {
	for _, p := range []*vcalab.Profile{vcalab.Zoom(), vcalab.Meet()} {
		r := vcalab.RunCompetition(vcalab.CompetitionConfig{
			Incumbent: p, Kind: vcalab.CompVCA, CompProfile: p,
			LinkMbps: 0.5, Reps: 1, Seed: *seed,
		})
		vcalab.PrintCompetition(os.Stdout, r)
	}
}

func fig11() {
	r := vcalab.RunCompetition(vcalab.CompetitionConfig{
		Incumbent: vcalab.Teams(), Kind: vcalab.CompVCA, CompProfile: vcalab.Zoom(),
		LinkMbps: 1, Reps: *reps, Seed: *seed,
	})
	vcalab.PrintCompetition(os.Stdout, r)
}

func fig12() {
	for _, p := range threeVCAs() {
		r := vcalab.RunCompetition(vcalab.CompetitionConfig{
			Incumbent: p, Kind: vcalab.CompIPerf, LinkMbps: 2, Reps: *reps, Seed: *seed,
		})
		vcalab.PrintCompetition(os.Stdout, r)
	}
}

func fig13() {
	r := vcalab.RunCompetition(vcalab.CompetitionConfig{
		Incumbent: vcalab.Zoom(), Kind: vcalab.CompIPerf, LinkMbps: 2, Reps: 1, Seed: *seed,
	})
	vcalab.PrintCompetition(os.Stdout, r)
}

func fig14() {
	r := vcalab.RunCompetition(vcalab.CompetitionConfig{
		Incumbent: vcalab.Zoom(), Kind: vcalab.CompNetflix, LinkMbps: 0.5, Reps: *reps, Seed: *seed,
	})
	vcalab.PrintCompetition(os.Stdout, r)
	y := vcalab.RunCompetition(vcalab.CompetitionConfig{
		Incumbent: vcalab.Teams(), Kind: vcalab.CompYouTube, LinkMbps: 0.5, Reps: *reps, Seed: *seed,
	})
	vcalab.PrintCompetition(os.Stdout, y)
}

// recoveryOn reports the -recovery toggle as the bool the experiment
// configs take; validateFlags already vetted the value.
func recoveryOn() bool { return *recovery == "on" }

// impairment is the §8 future-work extension: random loss and jitter.
// With -recovery on the same sweep runs with NACK/RTX, jitter buffers
// and TWCC enabled — the loss-recovery evaluation of EXPERIMENTS.md.
func impairment() {
	for _, p := range threeVCAs() {
		rs := vcalab.RunImpairment(vcalab.ImpairmentConfig{
			Profile: p, LossPcts: []float64{0, 0.5, 1, 2, 5},
			Jitter: 20 * time.Millisecond, Reps: *reps, Seed: *seed,
			Recovery: recoveryOn(),
		})
		vcalab.PrintImpairment(os.Stdout, rs)
	}
}

func fig15() {
	maxN := 8
	if *quick {
		maxN = 5
	}
	for _, p := range threeVCAs() {
		vcalab.PrintModality(os.Stdout, vcalab.ModalitySweep(p, vcalab.Gallery, maxN, *reps, *seed))
		vcalab.PrintModality(os.Stdout, vcalab.ModalitySweep(p, vcalab.Speaker, maxN, *reps, *seed))
	}
}

// scaleConfig is the shared grid for -experiment scale and -bench.
func scaleConfig(p *vcalab.Profile, par int) vcalab.ScaleConfig {
	cfg := vcalab.ScaleConfig{
		Profile:      p,
		Participants: []int{12, 24, 48},
		Regions:      3,
		InterMbps:    []float64{5, 20},
		Reps:         *reps,
		Dur:          60 * time.Second,
		Warmup:       20 * time.Second,
		Seed:         *seed,
		Parallel:     par,
		Shards:       *shards,
		Recovery:     recoveryOn(),
	}
	if *quick {
		cfg.Participants = []int{8, 16}
		cfg.InterMbps = []float64{10}
		cfg.Dur = 30 * time.Second
		cfg.Warmup = 10 * time.Second
	}
	return cfg
}

// scale is the cascade extension: geo-distributed relay meshes carrying
// large calls, swept over participants and inter-region capacity.
func scale() {
	for _, p := range threeVCAs() {
		rs := vcalab.RunScale(scaleConfig(p, *parallel))
		vcalab.PrintScale(os.Stdout, rs)
	}
}

// runFuzz is the -fuzz N mode: replay N seeded generated scenarios
// through the scenario invariant harness and exit non-zero on any
// violation, printing the offending seed so `-fuzz 1 -seed S`
// reproduces it. -quick shrinks the per-seed call; the seeds and the
// verdict for a given (seed, quick) pair are identical at any -parallel.
func runFuzz() {
	cfg := vcalab.FuzzConfig{
		N:        *fuzzN,
		Seed:     *seed,
		Parallel: *parallel,
		Shards:   *shards,
		Recovery: recoveryOn(),
	}
	if *quick {
		cfg.Participants = 6
		cfg.Dur = 30 * time.Second
	}
	r := vcalab.RunFuzz(cfg)
	vcalab.PrintFuzz(os.Stdout, r, cfg.Recovery)
	if len(r.Failures) > 0 {
		os.Exit(1)
	}
}

// dynamicConfig is the shared grid for -experiment dynamic: a canned or
// generated scenario instantiated for the (quick-aware) cascade topology.
func dynamicConfig(p *vcalab.Profile, scenarioName string) vcalab.DynamicConfig {
	cfg := vcalab.DynamicConfig{
		Profile:      p,
		Participants: 12,
		Regions:      3,
		InterMbps:    20,
		Reps:         *reps,
		Dur:          90 * time.Second,
		Warmup:       15 * time.Second,
		Seed:         *seed,
		Parallel:     *parallel,
		Shards:       *shards,
		Recovery:     recoveryOn(),
	}
	if *quick {
		cfg.Participants = 8
		cfg.Regions = 2
		cfg.InterMbps = 10
		cfg.Dur = 80 * time.Second
		cfg.Warmup = 10 * time.Second
	}
	if genSeed, ok, err := genScenarioSeed(scenarioName); ok {
		if err != nil {
			// validateFlags vetted the name already; reaching here is a bug.
			panic(err)
		}
		cfg.Scenario = vcalab.GenerateScenario(genSeed, vcalab.GenScenarioConfig{
			Participants: cfg.Participants,
			Regions:      cfg.Regions,
			InterBps:     cfg.InterMbps * 1e6,
			Dur:          cfg.Dur,
		})
		return cfg
	}
	sc, err := vcalab.CannedScenario(scenarioName, cfg.Participants, cfg.InterMbps*1e6)
	if err != nil {
		// validateFlags vetted the name already; reaching here is a bug.
		panic(err)
	}
	cfg.Scenario = sc
	return cfg
}

// obsSinks opens the -trace/-metrics files and builds the ObsConfig the
// dynamic sweeps share; everything is nil when both flags are off. The
// files hold every (profile, scenario, rep) capture in run order, each
// introduced by a self-describing trial-header line. validateFlags
// already probed both paths for writability, so a failure here is an
// unexpected race and exits 2 like any other bad invocation.
func obsSinks() (cfg *vcalab.ObsConfig, traceW, metricsW io.Writer, closeAll func()) {
	if *traceFile == "" && *metricsFile == "" {
		return nil, nil, nil, func() {}
	}
	cfg = &vcalab.ObsConfig{
		Trace:    *traceFile != "",
		Metrics:  *metricsFile != "",
		Interval: *obsInterval,
	}
	var files []*os.File
	open := func(path string) io.Writer {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		files = append(files, f)
		return f
	}
	traceW = open(*traceFile)
	metricsW = open(*metricsFile)
	return cfg, traceW, metricsW, func() {
		for _, f := range files {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "closing observability output: %v\n", err)
			}
		}
	}
}

// dynamic replays the canned scenarios (or the one chosen with -scenario,
// including `gen[:seed]` for a generated timeline) against every VCA: the
// changing-conditions workload axis. `all` stays the five canned
// scenarios so existing outputs are untouched.
func dynamic() {
	obsCfg, traceW, metricsW, closeObs := obsSinks()
	defer closeObs()
	names := vcalab.CannedScenarioNames()
	if *scen != "all" {
		names = []string{*scen}
	}
	for _, p := range threeVCAs() {
		for _, name := range names {
			cfg := dynamicConfig(p, name)
			cfg.Obs, cfg.TraceW, cfg.MetricsW = obsCfg, traceW, metricsW
			r := vcalab.RunDynamic(cfg)
			vcalab.PrintDynamic(os.Stdout, r)
		}
	}
}

// benchScale times the scale sweep at 1 worker and NumCPU workers and
// reports ns/trial and simulated-seconds per wall-second — the headline
// throughput of the sweep engine on cascade workloads.
func benchScale() {
	type benchRun struct {
		// Workers is the worker count the run actually used — on a
		// single-core host only the workers:1 run exists (the old code
		// recorded two identical entries). GOMAXPROCS and Shards pin
		// the conditions the numbers were measured under.
		Workers                 int     `json:"workers"`
		GOMAXPROCS              int     `json:"gomaxprocs"`
		Shards                  int     `json:"shards"`
		WallSeconds             float64 `json:"wall_seconds"`
		NsPerTrial              float64 `json:"ns_per_trial"`
		SimSecondsPerWallSecond float64 `json:"sim_seconds_per_wall_second"`
	}
	cfg := scaleConfig(vcalab.Teams(), 1)
	if *quick {
		cfg.Participants = []int{8}
		cfg.Reps = 4
		cfg.Dur = 20 * time.Second
		cfg.Warmup = 8 * time.Second
	}
	trials := len(cfg.Participants) * len(cfg.InterMbps) * cfg.Reps
	simSeconds := float64(trials) * cfg.Dur.Seconds()

	workerCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	var runs []benchRun
	var outputs []string
	for _, workers := range workerCounts {
		cfg.Parallel = workers
		start := time.Now()
		rs := vcalab.RunScale(cfg)
		wall := time.Since(start)
		var buf strings.Builder
		vcalab.PrintScale(&buf, rs)
		outputs = append(outputs, buf.String())
		runs = append(runs, benchRun{
			Workers:                 workers,
			GOMAXPROCS:              runtime.GOMAXPROCS(0),
			Shards:                  cfg.Shards,
			WallSeconds:             wall.Seconds(),
			NsPerTrial:              float64(wall.Nanoseconds()) / float64(trials),
			SimSecondsPerWallSecond: simSeconds / wall.Seconds(),
		})
		fmt.Printf("scale bench: %2d worker(s)  %d shard(s)  %6.2fs wall  %8.0f ns/trial  %6.1f sim-s/wall-s\n",
			workers, cfg.Shards, wall.Seconds(), runs[len(runs)-1].NsPerTrial, runs[len(runs)-1].SimSecondsPerWallSecond)
	}
	deterministic := true
	for _, out := range outputs[1:] {
		deterministic = deterministic && out == outputs[0]
	}
	fmt.Printf("scale bench: parallel output identical to sequential: %v\n", deterministic)

	if *jsonOut {
		out := struct {
			Experiment    string     `json:"experiment"`
			Trials        int        `json:"trials"`
			SimSeconds    float64    `json:"sim_seconds_total"`
			Deterministic bool       `json:"deterministic"`
			Runs          []benchRun `json:"runs"`
		}{"scale", trials, simSeconds, deterministic, runs}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal bench results: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH_scale.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write BENCH_scale.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_scale.json")
	}
}

// engineBaseline is the engine benchmark recorded on the string-keyed
// routing implementation (map[string] dispatch for legs/rates/receivers,
// sort-based rolling medians) at commit f1ad427, on the same workloads
// benchEngine runs: the Teams 24p/3r/20Mbps 30s cascaded call, the bare
// scheduler micro, and the Meet 16-party routing micro. It is the
// yardstick BENCH_engine.json and the -check regression gate compare
// against.
var engineBaseline = vcalab.EngineBenchResult{
	Events:                  2821228,
	WallSeconds:             0.672,
	EventsPerSecond:         4200172,
	AllocsPerEvent:          0.0187,
	BytesPerEvent:           2.29,
	SimSecondsPerWallSecond: 44.7,
	MicroEventsPerSecond:    12325763,
	MicroAllocsPerEvent:     1e-6,
	RouteEventsPerSecond:    4678939,
	RouteAllocsPerEvent:     0.0389,
}

// benchEngine measures the simulation engine itself — events/sec,
// allocs/event and sim-seconds per wall-second on a cascaded call — and
// records the result next to the pre-refactor baseline.
func benchEngine() {
	cfg := vcalab.EngineBenchConfig{Profile: vcalab.Teams(), Seed: *seed, Shards: *shards, Recovery: recoveryOn()}
	if *quick {
		cfg.Participants = 8
		cfg.Dur = 10 * time.Second
		cfg.MicroEvents = 200_000
		cfg.ShardParticipants = 12
	}
	cur := vcalab.RunEngineBench(cfg)
	fmt.Printf("engine bench: %9d events  %6.2fs wall  %9.0f events/s  %5.2f allocs/event  %6.1f sim-s/wall-s\n",
		cur.Events, cur.WallSeconds, cur.EventsPerSecond, cur.AllocsPerEvent, cur.SimSecondsPerWallSecond)
	fmt.Printf("engine micro: %9.0f events/s  %5.2f allocs/event\n",
		cur.MicroEventsPerSecond, cur.MicroAllocsPerEvent)
	fmt.Printf("routing micro:%9.0f events/s  %5.2f allocs/event\n",
		cur.RouteEventsPerSecond, cur.RouteAllocsPerEvent)
	if sh := cur.Sharded; sh != nil {
		fmt.Printf("sharded macro: %dp/%d shards  %6.2fs wall vs %6.2fs sequential  %.2fx speedup  %d windows  mailbox hw %d  output match %v\n",
			sh.Participants, sh.Shards, sh.WallSeconds, sh.SeqWallSeconds, sh.Speedup, sh.Windows, sh.MailboxHighWater, sh.OutputMatches)
		for k := range sh.ShardEventsPerSecond {
			fmt.Printf("  shard %d: %9.0f events/s busy  %5.1f%% barrier wait\n",
				k, sh.ShardEventsPerSecond[k], 100*sh.ShardBarrierWaitFrac[k])
		}
	}
	if rb := cur.Recovery; rb != nil {
		fmt.Printf("recovery on:  %9d events  %6.2fs wall  %9.0f events/s  %5.2f allocs/event  (%.0f%% loss: %d NACKed seqs, %d RTX)\n",
			rb.Events, rb.WallSeconds, rb.EventsPerSecond, rb.AllocsPerEvent, rb.LossPct, rb.NackedSeqs, rb.Retransmissions)
	}
	if engineBaseline.EventsPerSecond > 0 {
		fmt.Printf("vs baseline:  %.2fx events/s  %.2fx allocs/event  %.2fx sim-s/wall-s  %.2fx routing events/s\n",
			cur.EventsPerSecond/engineBaseline.EventsPerSecond,
			cur.AllocsPerEvent/engineBaseline.AllocsPerEvent,
			cur.SimSecondsPerWallSecond/engineBaseline.SimSecondsPerWallSecond,
			cur.RouteEventsPerSecond/engineBaseline.RouteEventsPerSecond)
	}

	if *jsonOut {
		out := struct {
			Workload string                   `json:"workload"`
			Baseline vcalab.EngineBenchResult `json:"baseline_string_keyed_routing"`
			Current  vcalab.EngineBenchResult `json:"current"`
		}{"teams 24p/3r/20Mbps 30s cascaded call + scheduler micro + meet 16p routing micro", engineBaseline, cur}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal bench results: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH_engine.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write BENCH_engine.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote BENCH_engine.json")
	}

	if *check {
		failed := false
		if cur.AllocsPerEvent > 0.1 {
			fmt.Fprintf(os.Stderr, "bench check FAIL: %.4f allocs/event exceeds the 0.1 budget\n", cur.AllocsPerEvent)
			failed = true
		}
		// The throughput gate compares like against like: -quick shrinks
		// the workload, so only the full workload is held to the recorded
		// baseline. The baseline is rescaled by the bare-scheduler micro
		// ratio measured in this same run — the micro contains no protocol
		// work, so it moves with the hardware while a routing regression
		// moves only the macro — making the gate portable to slower CI
		// runners without loosening the 20% budget.
		if !*quick {
			hw := cur.MicroEventsPerSecond / engineBaseline.MicroEventsPerSecond
			want := 0.8 * engineBaseline.EventsPerSecond * hw
			if cur.EventsPerSecond < want {
				fmt.Fprintf(os.Stderr, "bench check FAIL: %.0f events/s regresses >20%% vs baseline %.0f (hardware-normalized to %.0f)\n",
					cur.EventsPerSecond, engineBaseline.EventsPerSecond, want/0.8)
				failed = true
			}
		}
		// Sharded-mode gate (active when run with -shards > 1): the
		// sharded engine must reproduce the sequential run's event count
		// and delivery counters exactly, and — when the shard goroutines
		// have cores to spread over — must actually be faster. The
		// speedup floor is deliberately below the recorded-hardware
		// figure (BENCH_engine.json) so shared CI runners don't flake;
		// on a single-core host only correctness is enforced.
		if sh := cur.Sharded; sh != nil {
			if !sh.OutputMatches {
				fmt.Fprintln(os.Stderr, "bench check FAIL: sharded run diverged from the sequential event set")
				failed = true
			}
			switch {
			case *quick:
			case sh.GOMAXPROCS < 2:
				fmt.Printf("bench check: sharded speedup floor skipped (GOMAXPROCS %d)\n", sh.GOMAXPROCS)
			case sh.Speedup < 1.2:
				fmt.Fprintf(os.Stderr, "bench check FAIL: sharded speedup %.2fx below the 1.2x floor\n", sh.Speedup)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("bench check ok")
	}
}
