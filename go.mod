module vcalab

go 1.24
