package obs

import (
	"testing"
	"time"
)

func TestMergeOrdersByTimeThenPart(t *testing.T) {
	a := NewTracer(8)
	b := NewTracer(8)
	a.Packet(EvDeliver, 10*time.Millisecond, "la", "f", "c", 1, 0, false)
	a.Packet(EvDrop, 30*time.Millisecond, "la", "f", "c", 1, 0, false)
	b.Packet(EvDeliver, 10*time.Millisecond, "lb", "f", "c", 1, 0, false)
	b.Packet(EvDeliver, 20*time.Millisecond, "lb", "f", "c", 1, 0, false)

	m := Merge(a, b)
	got := m.Events()
	if len(got) != 4 {
		t.Fatalf("merged %d events, want 4", len(got))
	}
	wantLinks := []string{"la", "lb", "lb", "la"} // 10ms tie: part 0 first
	for i, e := range got {
		if e.Link != wantLinks[i] {
			t.Fatalf("event %d from link %s, want %s (order %v)", i, e.Link, wantLinks[i], got)
		}
	}
	if m.Count(EvDeliver) != 3 || m.Count(EvDrop) != 1 || m.Total() != 4 {
		t.Fatalf("merged counts deliver=%d drop=%d total=%d", m.Count(EvDeliver), m.Count(EvDrop), m.Total())
	}
}

func TestMergePreservesCumulativeCountsAcrossWrap(t *testing.T) {
	a := NewTracer(2) // ring wraps: retains 2 of 5
	for i := 0; i < 5; i++ {
		a.Packet(EvDrop, time.Duration(i)*time.Millisecond, "l", "f", "c", 1, 0, false)
	}
	m := Merge(a, nil)
	if m.Count(EvDrop) != 5 || m.Total() != 5 {
		t.Fatalf("cumulative counts lost in merge: drop=%d total=%d", m.Count(EvDrop), m.Total())
	}
	if m.Len() != 2 || m.Dropped() != 3 {
		t.Fatalf("retained=%d dropped=%d, want 2/3", m.Len(), m.Dropped())
	}
}
