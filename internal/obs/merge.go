package obs

// Merge combines several tracers' retained events into one tracer,
// ordered by sim time with ties broken by argument position (pass the
// control tracer first, then shards in index order, for the canonical
// sharded-run merge). Within one part the recorded order is preserved.
// The merged tracer's cumulative totals and per-kind counts are the sums
// over the parts — including events the parts' rings had already
// overwritten — so conservation cross-checks stay exact after merging.
// Nil parts are skipped. The result is a snapshot: recording into it
// afterwards is not supported.
func Merge(parts ...*Tracer) *Tracer {
	evs := make([][]Event, len(parts))
	n := 0
	for i, p := range parts {
		evs[i] = p.Events() // nil-safe: returns nil for a nil tracer
		n += len(evs[i])
	}
	capacity := n
	if capacity == 0 {
		capacity = 1
	}
	out := NewTracer(capacity)
	idx := make([]int, len(parts))
	for {
		best := -1
		for i := range parts {
			if idx[i] >= len(evs[i]) {
				continue
			}
			if best == -1 || evs[i][idx[i]].T < evs[best][idx[best]].T {
				best = i
			}
		}
		if best == -1 {
			break
		}
		*out.slot(evs[best][idx[best]].Kind) = evs[best][idx[best]]
		idx[best]++
	}
	// slot() counted only the retained events; replace the accounting
	// with the parts' cumulative sums so Total/Count/Dropped behave as if
	// one tracer had seen everything.
	out.total = 0
	out.counts = [evKinds]uint64{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.total += p.total
		for k := range p.counts {
			out.counts[k] += p.counts[k]
		}
	}
	return out
}
