package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTracerWraparound pins the ring-buffer contract: a full ring keeps
// the newest `cap` events, oldest-first on export, and Dropped counts
// exactly the overwritten ones.
func TestTracerWraparound(t *testing.T) {
	const capacity = 8
	tr := NewTracer(capacity)
	if tr.Cap() != capacity {
		t.Fatalf("Cap = %d, want %d", tr.Cap(), capacity)
	}
	const n = 21 // 2.6 wraps
	for i := 0; i < n; i++ {
		tr.Packet(EvDeliver, time.Duration(i)*time.Millisecond, "up", "video:c1", "sfu", 1200, 0, false)
	}
	if got := tr.Total(); got != n {
		t.Errorf("Total = %d, want %d", got, n)
	}
	if got := tr.Len(); got != capacity {
		t.Errorf("Len = %d, want %d", got, capacity)
	}
	if got := tr.Dropped(); got != n-capacity {
		t.Errorf("Dropped = %d, want %d", got, n-capacity)
	}
	evs := tr.Events()
	if len(evs) != capacity {
		t.Fatalf("Events len = %d, want %d", len(evs), capacity)
	}
	for i, e := range evs {
		want := time.Duration(n-capacity+i) * time.Millisecond
		if e.T != want {
			t.Errorf("event %d: T = %v, want %v (oldest-first, newest retained)", i, e.T, want)
		}
	}
}

// TestTracerCountsSurviveOverflow is the property the fuzz harness's
// drop-conservation invariant rests on: per-kind counts are cumulative,
// not bounded by ring capacity.
func TestTracerCountsSurviveOverflow(t *testing.T) {
	tr := NewTracer(4)
	const drops, delivers = 13, 29
	for i := 0; i < drops; i++ {
		tr.Packet(EvDrop, 0, "up", "f", "h", 100, 0, i%2 == 0)
	}
	for i := 0; i < delivers; i++ {
		tr.Packet(EvDeliver, 0, "up", "f", "h", 100, 0, false)
	}
	if got := tr.Count(EvDrop); got != drops {
		t.Errorf("Count(EvDrop) = %d, want %d (must survive wraparound)", got, drops)
	}
	if got := tr.Count(EvDeliver); got != delivers {
		t.Errorf("Count(EvDeliver) = %d, want %d", got, delivers)
	}
	if got := tr.Count(EvCC); got != 0 {
		t.Errorf("Count(EvCC) = %d, want 0", got)
	}
}

// TestNilTracer pins the zero-overhead contract's API half: every
// method on a nil tracer is a safe no-op.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Packet(EvDrop, 0, "up", "f", "h", 1, 2, true)
	tr.CC(0, "c1", "", "increase", 1e6, 2e6)
	tr.Switch(0, "c1", "c2", "svc-layer", 2, 1)
	tr.Scenario(0, "cliff", "shape", "")
	tr.Churn(0, "c3", "leave", "")
	if tr.Total() != 0 || tr.Len() != 0 || tr.Dropped() != 0 || tr.Cap() != 0 || tr.Count(EvDrop) != 0 {
		t.Error("nil tracer must report all zeros")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
}

// TestWriteJSONLShapes checks the wire schema: packet lines carry
// link/queue fields, decision lines carry old/new/reason, and zero
// fields are omitted.
func TestWriteJSONLShapes(t *testing.T) {
	tr := NewTracer(16)
	tr.Packet(EvDrop, 1500*time.Microsecond, "inter:eu->us", "video:c1", "c5", 1200, 34800, true)
	tr.CC(2*time.Millisecond, "c1", "", "backoff-loss", 2e6, 1.7e6)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var drop map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &drop); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]any{
		"t_us": 1500.0, "kind": "drop", "link": "inter:eu->us",
		"flow": "video:c1", "client": "c5", "size": 1200.0,
		"queue_bytes": 34800.0, "aqm": true,
	} {
		if drop[k] != want {
			t.Errorf("drop line %s = %v, want %v", k, drop[k], want)
		}
	}
	if _, has := drop["old"]; has {
		t.Error("packet line must omit decision fields")
	}
	var cc map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &cc); err != nil {
		t.Fatal(err)
	}
	if cc["kind"] != "cc" || cc["reason"] != "backoff-loss" || cc["old"] != 2e6 || cc["new"] != 1.7e6 {
		t.Errorf("cc line wrong: %s", lines[1])
	}
	if _, has := cc["link"]; has {
		t.Error("decision line must omit packet fields")
	}
}

// TestWriteClientJSONL checks the per-client timeline filter keeps
// events where the client is the destination, actor, or origin.
func TestWriteClientJSONL(t *testing.T) {
	tr := NewTracer(16)
	tr.Packet(EvDeliver, 0, "down", "video:c2", "c1", 900, 0, false) // to c1: keep
	tr.Packet(EvDeliver, 0, "down", "video:c2", "c3", 900, 0, false) // to c3: skip
	tr.Switch(0, "c2", "c1", "sim-copy", 1, 0)                       // about c1: keep
	tr.CC(0, "c4", "", "increase", 1e6, 1.2e6)                       // unrelated: skip
	var buf bytes.Buffer
	if err := tr.WriteClientJSONL(&buf, "c1"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
}

// TestRegistrySample covers gauge ordering, histogram interval reset,
// and rolling-median persistence across samples.
func TestRegistrySample(t *testing.T) {
	reg := NewRegistry()
	x := 1.0
	reg.Gauge("a", func() float64 { return x })
	reg.Gauge("b", func() float64 { return 2 * x })
	h := reg.Histogram("lat")
	log := &MetricsLog{}

	h.Observe(10)
	h.Observe(20)
	h.Observe(30)
	reg.Sample(time.Second, log)

	x = 5
	reg.Sample(2*time.Second, log) // empty interval: no hist line

	h.Observe(100)
	reg.Sample(3*time.Second, log)

	if err := log.Err(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := log.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// sample1: a, b, hist; sample2: a, b; sample3: a, b, hist.
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8:\n%s", len(lines), buf.String())
	}
	var g GaugeSample
	if err := json.Unmarshal([]byte(lines[0]), &g); err != nil {
		t.Fatal(err)
	}
	if g.Name != "a" || g.V != 1 || g.TUs != 1e6 || g.Kind != "gauge" {
		t.Errorf("first gauge line wrong: %s", lines[0])
	}
	var hs HistSample
	if err := json.Unmarshal([]byte(lines[2]), &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Name != "lat" || hs.N != 3 || hs.Count != 3 || hs.P50 != 20 || hs.Max != 30 {
		t.Errorf("hist line 1 wrong: %s", lines[2])
	}
	if err := json.Unmarshal([]byte(lines[7]), &hs); err != nil {
		t.Fatal(err)
	}
	if hs.N != 1 || hs.Count != 4 || hs.Max != 100 {
		t.Errorf("hist line 2 wrong: %s", lines[7])
	}
	// Rolling median spans intervals: window holds {10,20,30,100}.
	if hs.RollMd != 25 {
		t.Errorf("rolling median = %v, want 25", hs.RollMd)
	}
}

// TestNilRegistry pins nil-safety of the metrics half.
func TestNilRegistry(t *testing.T) {
	var reg *Registry
	reg.Gauge("x", func() float64 { return 1 })
	h := reg.Histogram("y")
	h.Observe(1) // nil histogram
	reg.Sample(0, &MetricsLog{})
	var log *MetricsLog
	log.Append(1)
	if log.Len() != 0 || log.Err() != nil {
		t.Error("nil log must be inert")
	}
}
