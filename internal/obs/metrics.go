package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"time"

	"vcalab/internal/stats"
)

// Registry is a named-metric registry sampled on a tick loop. Gauges
// are read on every Sample call (registration order, so output is
// deterministic); histograms accumulate observations between samples
// and emit per-interval percentiles plus a rolling median. Like the
// tracer, sampling is read-only with respect to the simulation: gauge
// functions must only read state.
type Registry struct {
	gauges []gauge
	hists  []*Histogram
}

type gauge struct {
	name string
	fn   func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Gauge registers a named instantaneous reading, polled at each Sample.
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.gauges = append(r.gauges, gauge{name, fn})
}

// Histogram registers and returns a named distribution; feed it with
// Observe between samples. Safe to call Observe on a nil *Histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{name: name}
	r.hists = append(r.hists, h)
	return h
}

// histWindow is the rolling-median window: recent enough to track a
// shifting distribution, long enough to smooth per-interval noise.
const histWindow = 256

// Histogram accumulates float observations. Per-interval values reset
// at each Sample; the rolling median (stats.MedianWindow over the last
// histWindow observations) and the cumulative count persist.
type Histogram struct {
	name  string
	vals  []float64 // this interval's observations
	win   stats.MedianWindow
	ring  []float64 // the window contents, for Remove on overflow
	next  int
	count uint64 // cumulative observations
}

// Observe records one value. Nil-safe no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.vals = append(h.vals, v)
	h.count++
	if len(h.ring) < histWindow {
		h.ring = append(h.ring, v)
	} else {
		h.win.Remove(h.ring[h.next])
		h.ring[h.next] = v
		h.next = (h.next + 1) % histWindow
	}
	h.win.Push(v)
}

// GaugeSample is one gauge reading on the metrics stream.
type GaugeSample struct {
	TUs  int64   `json:"t_us"`
	Kind string  `json:"kind"` // "gauge"
	Name string  `json:"name"`
	V    float64 `json:"v"`
}

// HistSample is one histogram interval on the metrics stream.
type HistSample struct {
	TUs    int64   `json:"t_us"`
	Kind   string  `json:"kind"` // "hist"
	Name   string  `json:"name"`
	N      int     `json:"n"`     // observations this interval
	Count  uint64  `json:"count"` // cumulative observations
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	Max    float64 `json:"max"`
	RollMd float64 `json:"rolling_median"`
}

// Sample polls every gauge and flushes every histogram interval into
// the log, one JSONL line per metric, in registration order.
func (r *Registry) Sample(now time.Duration, log *MetricsLog) {
	if r == nil || log == nil {
		return
	}
	tus := now.Microseconds()
	for _, g := range r.gauges {
		log.Append(GaugeSample{TUs: tus, Kind: "gauge", Name: g.name, V: g.fn()})
	}
	for _, h := range r.hists {
		if len(h.vals) == 0 {
			continue
		}
		pcts := stats.SortedPercentiles(h.vals, 50, 90, 99)
		max := h.vals[0]
		for _, v := range h.vals[1:] {
			if v > max {
				max = v
			}
		}
		log.Append(HistSample{
			TUs: tus, Kind: "hist", Name: h.name,
			N: len(h.vals), Count: h.count,
			P50: pcts[0], P90: pcts[1], P99: pcts[2], Max: max,
			RollMd: h.win.Median(),
		})
		h.vals = h.vals[:0]
	}
}

// MetricsLog buffers marshalled JSONL lines in memory so a parallel
// sweep can capture per-trial and flush in trial order afterwards —
// keeping the metrics file itself byte-identical at any -parallel.
type MetricsLog struct {
	lines []json.RawMessage
	err   error
}

// Append marshals v onto the log as one line. The first marshal error
// sticks and is reported by Err.
func (m *MetricsLog) Append(v any) {
	if m == nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		if m.err == nil {
			m.err = err
		}
		return
	}
	m.lines = append(m.lines, b)
}

// Len returns the number of buffered lines.
func (m *MetricsLog) Len() int {
	if m == nil {
		return 0
	}
	return len(m.lines)
}

// Err returns the first Append marshal error, if any.
func (m *MetricsLog) Err() error {
	if m == nil {
		return nil
	}
	return m.err
}

// WriteTo flushes the buffered lines, newline-terminated, in order.
func (m *MetricsLog) WriteTo(w io.Writer) (int64, error) {
	if m == nil {
		return 0, nil
	}
	bw := bufio.NewWriter(w)
	var n int64
	for _, line := range m.lines {
		k, err := bw.Write(line)
		n += int64(k)
		if err != nil {
			return n, err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}
