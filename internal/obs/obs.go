// Package obs is the observability substrate for the simulator: a
// fixed-capacity ring-buffer tracer for typed sim-time events and a
// sampled metrics registry (metrics.go). It is a leaf package — nothing
// here imports sim, netem or vca — so every layer of the stack can hold
// a *Tracer without an import cycle.
//
// The zero-overhead contract: a nil *Tracer is a valid tracer whose
// record methods return immediately, and every instrumented call site in
// a hot path additionally guards with `if tracer != nil` so arguments
// are never even evaluated when observability is off. Tracing is
// read-only with respect to the simulation — recording an event must
// never mutate engine, link, or client state, and must never draw from
// a sim RNG — so enabling it cannot change experiment output.
package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"time"
)

// EventKind is the taxonomy of traced events. Packet kinds carry
// link/flow/size/queue fields; decision kinds carry old/new/reason.
type EventKind uint8

const (
	// EvEnqueue: a packet entered a link queue (it will wait for
	// service). Packets that start transmitting immediately skip this.
	EvEnqueue EventKind = iota
	// EvDequeue: a queued packet left the queue and began service.
	EvDequeue
	// EvDrop: a packet was discarded (tail overflow, loss model, or AQM
	// — the AQM flag distinguishes the last).
	EvDrop
	// EvDeliver: a packet arrived at its destination host.
	EvDeliver
	// EvCC: a congestion controller changed its target rate.
	EvCC
	// EvSwitch: an SFU forwarding decision changed (simulcast copy or
	// SVC layer cap).
	EvSwitch
	// EvScenario: a scenario timeline op was applied.
	EvScenario
	// EvChurn: a participant left, rejoined, or the call switched mode.
	EvChurn
	// EvNackSent: a receiver NACKed one missing seq (counted per seq per
	// retry, so Count(EvNackSent) >= Count(EvRTXDeliver) always holds).
	EvNackSent
	// EvNackAnswer: the SFU answered a NACKed seq from its RTX buffer.
	EvNackAnswer
	// EvNackGiveUp: the receiver stopped NACKing a seq (retries
	// exhausted); the seq is conceded lost.
	EvNackGiveUp
	// EvRTXDeliver: a retransmitted packet reached the receiver in time.
	EvRTXDeliver
	// EvJBLate: a packet arrived after its seq was already conceded or
	// delivered; the jitter buffer dropped it.
	EvJBLate
	// EvJBConcede: the jitter buffer gave up waiting for one or more seqs
	// (playout deadline passed or NACK gave up); Size carries the count.
	EvJBConcede

	evKinds
)

var kindNames = [evKinds]string{
	"enqueue", "dequeue", "drop", "deliver", "cc", "switch", "scenario", "churn",
	"nack-sent", "nack-answer", "nack-giveup", "rtx-deliver", "jb-late", "jb-concede",
}

// String returns the JSONL spelling of the kind ("drop", "cc", ...).
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one traced record. A single flat struct covers all kinds so
// the ring buffer is one allocation; unused fields stay zero and are
// omitted from JSONL. String fields are assigned by header copy from
// interned names (link names, client names), so recording never
// allocates.
type Event struct {
	T    time.Duration
	Kind EventKind

	// Packet events.
	Link   string // link name
	Flow   string // flow label ("video:c3" etc.)
	Client string // destination host (packet) or acting client (decision)
	Size   int    // packet size, bytes
	Queue  int    // queue depth after the event, bytes
	AQM    bool   // drop was AQM-initiated

	// Decision events.
	Origin string  // remote party the decision is about (leg origin, CC peer)
	Old    float64 // previous value (bps for cc, layer/copy index for switch)
	New    float64 // new value
	Reason string  // reason code ("backoff-loss", "svc-layer", op name, ...)
	Label  string  // scenario event label / churn detail
}

// jsonEvent is the wire form; pointers/omitempty keep packet lines and
// decision lines each to their relevant fields.
type jsonEvent struct {
	TUs    int64    `json:"t_us"`
	Kind   string   `json:"kind"`
	Link   string   `json:"link,omitempty"`
	Flow   string   `json:"flow,omitempty"`
	Client string   `json:"client,omitempty"`
	Size   int      `json:"size,omitempty"`
	Queue  int      `json:"queue_bytes,omitempty"`
	AQM    bool     `json:"aqm,omitempty"`
	Origin string   `json:"origin,omitempty"`
	Old    *float64 `json:"old,omitempty"`
	New    *float64 `json:"new,omitempty"`
	Reason string   `json:"reason,omitempty"`
	Label  string   `json:"label,omitempty"`
}

func (e *Event) wire() jsonEvent {
	je := jsonEvent{
		TUs: e.T.Microseconds(), Kind: e.Kind.String(),
		Link: e.Link, Flow: e.Flow, Client: e.Client,
		Size: e.Size, Queue: e.Queue, AQM: e.AQM,
		Origin: e.Origin, Reason: e.Reason, Label: e.Label,
	}
	switch e.Kind {
	case EvCC, EvSwitch:
		old, nw := e.Old, e.New
		je.Old, je.New = &old, &nw
	}
	return je
}

// DefaultTraceCap is the ring capacity used when NewTracer gets a
// non-positive capacity: large enough to hold a full quick-mode trial's
// decision events plus a tail of packet events, small enough (~4 MB)
// to attach per trial without thought.
const DefaultTraceCap = 1 << 15

// Tracer is a fixed-capacity ring buffer of Events. When full, new
// events overwrite the oldest; cumulative per-kind counts survive the
// overwrite so conservation checks (e.g. traced drops vs link drop
// counters) stay exact even after wraparound. All methods are safe on a
// nil receiver (no-ops / zero answers). Not safe for concurrent use —
// one tracer per engine, like everything else in the sim.
type Tracer struct {
	buf    []Event
	next   int    // next slot to write
	total  uint64 // events ever recorded
	counts [evKinds]uint64
}

// NewTracer returns a tracer holding the last `capacity` events
// (DefaultTraceCap if capacity <= 0). The ring is allocated up front so
// recording never allocates.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, capacity)}
}

func (t *Tracer) slot(kind EventKind) *Event {
	e := &t.buf[t.next]
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
	t.total++
	t.counts[kind]++
	return e
}

// Packet records a packet lifecycle event (enqueue/dequeue/drop/deliver).
// queued is the link queue depth in bytes after the event.
func (t *Tracer) Packet(kind EventKind, now time.Duration, link, flow, client string, size, queued int, aqm bool) {
	if t == nil {
		return
	}
	*t.slot(kind) = Event{
		T: now, Kind: kind,
		Link: link, Flow: flow, Client: client,
		Size: size, Queue: queued, AQM: aqm,
	}
}

// CC records a congestion-controller target change on `client`'s
// controller for traffic from/to `origin` (empty for an uplink
// controller), with a derived reason code.
func (t *Tracer) CC(now time.Duration, client, origin, reason string, oldBps, newBps float64) {
	if t == nil {
		return
	}
	*t.slot(EvCC) = Event{
		T: now, Kind: EvCC,
		Client: client, Origin: origin, Reason: reason,
		Old: oldBps, New: newBps,
	}
}

// Switch records an SFU forwarding-selection change for the leg that
// receives `origin`'s media at `client`.
func (t *Tracer) Switch(now time.Duration, client, origin, reason string, old, new int) {
	if t == nil {
		return
	}
	*t.slot(EvSwitch) = Event{
		T: now, Kind: EvSwitch,
		Client: client, Origin: origin, Reason: reason,
		Old: float64(old), New: float64(new),
	}
}

// Scenario records an applied timeline op (reason = op name, label =
// the event's label, client = the target participant if any).
func (t *Tracer) Scenario(now time.Duration, label, op, client string) {
	if t == nil {
		return
	}
	*t.slot(EvScenario) = Event{
		T: now, Kind: EvScenario,
		Label: label, Reason: op, Client: client,
	}
}

// Recovery records a loss-recovery event: kind is one of EvNackSent,
// EvNackAnswer, EvNackGiveUp, EvRTXDeliver, EvJBLate, EvJBConcede;
// client is the receiver, origin the media source, n the seq (or, for
// EvJBConcede, the number of seqs conceded at once).
func (t *Tracer) Recovery(kind EventKind, now time.Duration, client, origin string, n int) {
	if t == nil {
		return
	}
	*t.slot(kind) = Event{
		T: now, Kind: kind,
		Client: client, Origin: origin, Size: n,
	}
}

// Churn records a membership/mode change ("leave", "rejoin", "mode").
func (t *Tracer) Churn(now time.Duration, client, what, detail string) {
	if t == nil {
		return
	}
	*t.slot(EvChurn) = Event{
		T: now, Kind: EvChurn,
		Client: client, Reason: what, Label: detail,
	}
}

// Cap returns the ring capacity (0 for a nil tracer).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Total returns how many events were ever recorded, including ones the
// ring has since overwritten.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Len returns how many events are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.total >= uint64(len(t.buf)) {
		return len(t.buf)
	}
	return int(t.total)
}

// Dropped returns how many recorded events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.total - uint64(t.Len())
}

// Count returns the cumulative number of events of one kind, unaffected
// by ring wraparound — this is what makes conservation cross-checks
// (traced drops == link drop counters) exact on long runs.
func (t *Tracer) Count(kind EventKind) uint64 {
	if t == nil || kind >= evKinds {
		return 0
	}
	return t.counts[kind]
}

// Events returns the retained events oldest-first, as a copy.
func (t *Tracer) Events() []Event {
	n := t.Len()
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	start := 0
	if t.total >= uint64(len(t.buf)) {
		start = t.next // oldest retained is the one about to be overwritten
	}
	for i := 0; i < n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// WriteJSONL writes the retained events oldest-first, one JSON object
// per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return t.writeJSONL(w, "")
}

// WriteClientJSONL writes only the events involving one client — as a
// packet destination, decision actor, or decision origin — producing a
// per-client timeline that lines up with vcapcap's pcap of the same
// client's access links.
func (t *Tracer) WriteClientJSONL(w io.Writer, client string) error {
	if client == "" {
		return t.writeJSONL(w, "")
	}
	return t.writeJSONL(w, client)
}

func (t *Tracer) writeJSONL(w io.Writer, client string) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	n := t.Len()
	start := 0
	if t.total >= uint64(len(t.buf)) {
		start = t.next
	}
	for i := 0; i < n; i++ {
		e := &t.buf[(start+i)%len(t.buf)]
		if client != "" && e.Client != client && e.Origin != client {
			continue
		}
		if err := enc.Encode(e.wire()); err != nil {
			return err
		}
	}
	return bw.Flush()
}
