package experiment

import (
	"time"

	"vcalab/internal/runner"
	"vcalab/internal/sim"
	"vcalab/internal/stats"
	"vcalab/internal/vca"
)

// DisruptionConfig describes one §4 transient-reduction experiment: a
// five-minute call whose access link is reduced to LevelMbps for 30 seconds
// starting one minute in, then restored.
type DisruptionConfig struct {
	Profile   *vca.Profile
	Dir       Direction
	LevelMbps float64
	Reps      int // paper: 4
	Seed      int64
	// Parallel is the trial parallelism; 0 = package default, 1 =
	// sequential. Output is identical for every value.
	Parallel int

	// Timing knobs (defaults follow §4's method).
	CallDur  time.Duration // 5 min
	DropAt   time.Duration // 60 s
	DropLen  time.Duration // 30 s
	TTRFrac  float64       // fraction of nominal considered recovered (0.95)
	TTRRoll  time.Duration // rolling-median window (5 s)
	MeterBin time.Duration // series bin (1 s)
}

func (c *DisruptionConfig) defaults() {
	if c.Reps == 0 {
		c.Reps = 4
	}
	if c.CallDur == 0 {
		c.CallDur = 300 * time.Second
	}
	if c.DropAt == 0 {
		c.DropAt = 60 * time.Second
	}
	if c.DropLen == 0 {
		c.DropLen = 30 * time.Second
	}
	if c.TTRFrac == 0 {
		c.TTRFrac = 0.95
	}
	if c.TTRRoll == 0 {
		c.TTRRoll = 5 * time.Second
	}
}

// DisruptionResult carries the Fig 4/5/6 data for one (VCA, direction,
// level) condition.
type DisruptionResult struct {
	Profile   string
	Dir       Direction
	LevelMbps float64

	// Series is the across-repetition mean bitrate in the disrupted
	// direction at C1, per second (Fig 4a / 5a).
	Series stats.Series
	// FarSeries is C2's upstream bitrate (Fig 6: flat for Meet, dipping
	// for Teams during C1's downlink disruption).
	FarSeries stats.Series
	// TTR summarizes time-to-recovery across repetitions (Fig 4b / 5b).
	// Unrecovered repetitions are excluded; Recovered counts how many
	// recovered.
	TTR       stats.Summary
	Recovered int
}

// disruptionTrial is one repetition's raw measurements.
type disruptionTrial struct {
	series, far stats.Series
	ttrSec      float64
	recovered   bool
}

// runTrial executes one repetition on a fresh engine.
func (cfg *DisruptionConfig) runTrial(rep int) disruptionTrial {
	seed := cfg.Seed + int64(rep)*31337
	eng := sim.New(seed)
	call, lab := twoPartyCall(eng, cfg.Profile, 0, 0, vca.CallOptions{Seed: seed})
	call.Start()
	eng.Schedule(cfg.DropAt, func() {
		if cfg.Dir == Uplink {
			lab.SetUplink(cfg.LevelMbps * 1e6)
		} else {
			lab.SetDownlink(cfg.LevelMbps * 1e6)
		}
	})
	eng.Schedule(cfg.DropAt+cfg.DropLen, func() {
		if cfg.Dir == Uplink {
			lab.SetUplink(0)
		} else {
			lab.SetDownlink(0)
		}
	})
	eng.RunUntil(cfg.CallDur)
	call.Stop()

	var t disruptionTrial
	if cfg.Dir == Uplink {
		t.series = call.C1().UpMeter.RateMbps()
	} else {
		t.series = call.C1().DownMeter.RateMbps()
	}
	t.far = call.Clients[1].UpMeter.RateMbps()
	if ttr, ok := stats.TTR(t.series, cfg.DropAt, cfg.DropAt+cfg.DropLen, cfg.TTRRoll, cfg.TTRFrac); ok {
		t.ttrSec = ttr.Seconds()
		t.recovered = true
	}
	return t
}

// RunDisruption executes the experiment, repetitions in parallel.
func RunDisruption(cfg DisruptionConfig) DisruptionResult {
	cfg.defaults()
	res := DisruptionResult{Profile: cfg.Profile.Name, Dir: cfg.Dir, LevelMbps: cfg.LevelMbps}
	trials := runner.Map(pool(cfg.Parallel, "disruption "+cfg.Profile.Name+"/"+cfg.Dir.String()),
		cfg.Reps, func(rep int) disruptionTrial { return cfg.runTrial(rep) })

	var ttrs []float64
	var repSeries, repFar []stats.Series
	for _, t := range trials {
		repSeries = append(repSeries, t.series)
		repFar = append(repFar, t.far)
		if t.recovered {
			ttrs = append(ttrs, t.ttrSec)
			res.Recovered++
		}
	}
	res.Series = meanSeries(repSeries)
	res.FarSeries = meanSeries(repFar)
	res.TTR = stats.Summarize(ttrs)
	return res
}

// meanSeries averages several equally-binned series pointwise.
func meanSeries(ss []stats.Series) stats.Series {
	var out stats.Series
	if len(ss) == 0 {
		return out
	}
	n := ss[0].Len()
	for _, s := range ss {
		if s.Len() < n {
			n = s.Len()
		}
	}
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, s := range ss {
			sum += s.Values[i]
		}
		out.Add(ss[0].Times[i], sum/float64(len(ss)))
	}
	return out
}

// PaperDisruptionLevels are §4's reduction levels in Mbps.
func PaperDisruptionLevels() []float64 { return []float64{0.25, 0.5, 0.75, 1.0} }
