// Package experiment reproduces the paper's laboratory and every
// experiment in its evaluation: the static shaping sweeps of §3
// (Fig 1–3, Table 2), the transient disruptions of §4 (Fig 4–6), the
// competition studies of §5 (Fig 8–14) and the call-modality studies of §6
// (Fig 15). Each runner returns typed results; the formatters print
// paper-style rows so benches and CLIs can regenerate every table and
// figure.
package experiment

import (
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
)

// Lab is the paper's testbed (§2.2, Fig 7): clients C1 (and, for
// competition, F1) sit behind a switch; the switch-router hop is the shaped
// bottleneck in both directions; far clients, SFUs and servers attach to
// the router over fast links.
type Lab struct {
	Eng *sim.Engine

	rt, sw   *netem.Router
	up, down *netem.Link
}

// ClientDelay is the one-way delay between a bottleneck client and the
// router; RemoteDelay the default router↔remote host delay; SFUDelay the
// router↔SFU delay.
const (
	ClientDelay = 5 * time.Millisecond
	RemoteDelay = 5 * time.Millisecond
	SFUDelay    = 15 * time.Millisecond
	// IPerfDelay matches the paper's iPerf3 server "within the same
	// network (average RTT 2 ms)".
	IPerfDelay = time.Millisecond
)

// NewLab builds the testbed with initial shaping rates (0 = unconstrained,
// the paper's 1 Gbps case).
func NewLab(eng *sim.Engine, upBps, downBps float64) *Lab {
	l := &Lab{Eng: eng, rt: netem.NewRouter("rt"), sw: netem.NewRouter("sw")}
	l.up = netem.NewLink(eng, "bottleneck/up", netem.LinkConfig{RateBps: upBps, Delay: ClientDelay}, l.rt)
	l.down = netem.NewLink(eng, "bottleneck/down", netem.LinkConfig{RateBps: downBps, Delay: ClientDelay}, l.sw)
	l.sw.DefaultRoute(l.up)
	return l
}

// SetUplink re-shapes the client→router direction, like `tc` (§2.2). The
// queue is resized to the 200 ms home-router depth for the new rate.
func (l *Lab) SetUplink(bps float64) {
	l.up.SetRate(bps)
	if bps > 0 {
		l.up.SetQueueBytes(netem.DefaultQueueBytes(bps))
	}
}

// SetDownlink re-shapes the router→client direction.
func (l *Lab) SetDownlink(bps float64) {
	l.down.SetRate(bps)
	if bps > 0 {
		l.down.SetQueueBytes(netem.DefaultQueueBytes(bps))
	}
}

// Uplink exposes the shaped uplink (for taps and drop accounting).
func (l *Lab) Uplink() *netem.Link { return l.up }

// Downlink exposes the shaped downlink.
func (l *Lab) Downlink() *netem.Link { return l.down }

// ClientHost attaches a host behind the shaped bottleneck (C1, F1).
func (l *Lab) ClientHost(name string) *netem.Host {
	h := netem.NewHost(l.Eng, name)
	h.SetUplink(netem.NewLink(l.Eng, name+"-sw", netem.LinkConfig{Delay: 100 * time.Microsecond}, l.sw))
	l.sw.Route(name, netem.NewLink(l.Eng, "sw-"+name, netem.LinkConfig{Delay: 100 * time.Microsecond}, h))
	l.rt.Route(name, l.down)
	return h
}

// RemoteHost attaches an unconstrained host at the router (far clients,
// SFUs, CDN and iPerf servers).
func (l *Lab) RemoteHost(name string, delay time.Duration) *netem.Host {
	h := netem.NewHost(l.Eng, name)
	h.SetUplink(netem.NewLink(l.Eng, name+"-rt", netem.LinkConfig{Delay: delay}, l.rt))
	l.rt.Route(name, netem.NewLink(l.Eng, "rt-"+name, netem.LinkConfig{Delay: delay}, h))
	return h
}
