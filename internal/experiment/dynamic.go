package experiment

import (
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"vcalab/internal/cascade"
	"vcalab/internal/netem"
	"vcalab/internal/runner"
	"vcalab/internal/scenario"
	"vcalab/internal/sim"
	"vcalab/internal/stats"
	"vcalab/internal/vca"
)

// DynamicConfig drives the dynamic-scenario experiment: one declarative
// scenario timeline (internal/scenario) replayed against a cascaded call,
// reps trials in parallel. Where the static sweeps hold the lab fixed and
// step a parameter, this workload holds the parameters fixed and lets the
// *conditions* change mid-call — churn storms, WAN capacity cliffs,
// region partitions, trace replay — measuring how each VCA rides through
// and recovers from every event.
type DynamicConfig struct {
	Profile  *vca.Profile
	Scenario scenario.Scenario
	// Participants is the roster size ("c1".."cN", round-robin across
	// regions; default 12).
	Participants int
	// Regions is the number of SFU sites (default 3).
	Regions int
	// InterMbps is the capacity of every directed inter-region link
	// (default 20).
	InterMbps float64
	// InterDelay is the one-way inter-region delay (default 40 ms).
	InterDelay time.Duration
	Reps       int
	Dur        time.Duration
	Warmup     time.Duration
	Seed       int64
	// Parallel is the trial parallelism; 0 = package default, 1 =
	// sequential. Output is identical for every value.
	Parallel int
	// Shards selects intra-trial region-sharded parallel execution
	// (<= 1 runs each trial on one engine). The experiment's stdout is
	// identical for every value; trace and engine-internal metrics lines
	// are deterministic per shard count but not identical across counts
	// (see DESIGN.md §12). Compounds with Parallel.
	Shards int
	// Recovery enables packet-level loss recovery (NACK/RTX, jitter
	// buffer, TWCC feedback) on every call; see DESIGN.md §13. Output
	// stays byte-identical at any Parallel × Shards for either value.
	Recovery bool

	// Obs enables per-trial observability capture (observe.go); nil
	// leaves the hot path untouched. TraceW/MetricsW receive every
	// repetition's JSONL stream in rep order after the sweep aggregates,
	// so these files too are byte-identical at any Parallel.
	Obs      *ObsConfig
	TraceW   io.Writer
	MetricsW io.Writer
}

func (c *DynamicConfig) defaults() {
	if c.Participants == 0 {
		c.Participants = 12
	}
	if c.Regions == 0 {
		c.Regions = 3
	}
	if c.InterMbps == 0 {
		c.InterMbps = 20
	}
	if c.InterDelay == 0 {
		c.InterDelay = cascade.DefaultInterDelay
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.Dur == 0 {
		c.Dur = 90 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 15 * time.Second
	}
}

// EventRecovery reports recovery after one scenario event marked Recover:
// in how many repetitions the instrumented client's rolling-median
// download rate returned to 80% of its pre-scenario nominal (the §4 TTR
// convention), and how long that took.
type EventRecovery struct {
	Label string
	At    time.Duration
	// Recovered counts repetitions that recovered within the run; TTRSec
	// summarizes recovery times (seconds) over those repetitions.
	Recovered int
	TTRSec    stats.Summary
}

// DynamicResult aggregates one (profile, scenario) condition.
type DynamicResult struct {
	Profile   string
	Scenario  string
	N         int
	Regions   int
	InterMbps float64

	// DownMbps is C1's mean received rate post-warmup (events included:
	// this is throughput *through* the scenario, not steady state).
	DownMbps stats.Summary
	// FreezeRatio is the mean freeze ratio across every (receiver,
	// displayed origin) pair, all clients.
	FreezeRatio stats.Summary
	// LatP50Ms/LatP95Ms/LatP99Ms are end-to-end frame latency
	// percentiles across all clients, in ms.
	LatP50Ms, LatP95Ms, LatP99Ms stats.Summary
	// Events reports recovery after each Recover-marked scenario event,
	// in timeline order.
	Events []EventRecovery
}

// dynamicTrial is one repetition's raw measurements.
type dynamicTrial struct {
	down, freeze        float64
	p50Ms, p95Ms, p99Ms float64
	// recovered[i]/ttrSec[i] follow the scenario's recovery points.
	recovered []bool
	ttrSec    []float64
	// obs carries the repetition's observability capture (nil when off).
	obs *trialObs
}

// scenarioSalt decorrelates trial seeds across scenarios with the same
// base seed (an FNV-1a hash of the scenario name; stable across runs).
func scenarioSalt(name string) int64 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int64(h)
}

// runTrial executes one repetition on a fresh engine.
func (cfg *DynamicConfig) runTrial(rep int) dynamicTrial {
	seed := runner.Seed(cfg.Seed+scenarioSalt(cfg.Scenario.Name), rep)

	assign := cascade.Assign(cfg.Participants, cfg.Regions)
	topo := cascade.Topology{
		Default: netem.LinkConfig{RateBps: cfg.InterMbps * 1e6, Delay: cfg.InterDelay},
	}
	for r := 0; r < cfg.Regions; r++ {
		topo.Regions = append(topo.Regions, cascade.Region{
			Name: fmt.Sprintf("r%d", r), Clients: assign[r],
		})
	}
	var (
		mesh *cascade.Mesh
		sm   *cascade.ShardedMesh
		eng  *sim.Engine // the control engine of a sharded run
		call *vca.Call
	)
	if plan := cascade.PlanShards(topo, cfg.Shards); plan.NumShards > 1 {
		sm = cascade.BuildSharded(seed, topo, plan)
		defer sm.Group.Close()
		mesh, eng = sm.Mesh, sm.Eng
		call = sm.NewCall(cfg.Profile, vca.CallOptions{Seed: seed, Recovery: cfg.Recovery})
	} else {
		eng = sim.New(seed)
		mesh = cascade.Build(eng, topo)
		call = mesh.NewCall(cfg.Profile, vca.CallOptions{Seed: seed, Recovery: cfg.Recovery})
	}
	tl := scenario.New(eng, call, scenario.MeshLinks(mesh), cfg.Scenario)
	to := instrumentTrial(cfg.Obs, sm, eng, mesh, call, tl)
	tl.Start() // events at t<=0 (a thinned starting roster) apply before the call starts
	call.Start()
	if sm != nil {
		sm.Group.RunUntil(cfg.Dur)
	} else {
		eng.RunUntil(cfg.Dur)
	}
	call.Stop()

	var t dynamicTrial
	t.obs = to.finish()
	t.down = call.C1().DownMeter.MeanRateMbps(cfg.Warmup, cfg.Dur)

	var freezeSum float64
	var freezeN int
	var lats []float64
	for _, cl := range call.Clients {
		for _, origin := range cl.Origins() {
			r := cl.Receiver(origin)
			if r.DisplayedFrames() > 0 {
				freezeSum += r.FreezeRatio()
				freezeN++
			}
		}
		for _, d := range cl.FrameLatencies(cfg.Warmup) {
			lats = append(lats, d.Seconds()*1000)
		}
	}
	if freezeN > 0 {
		t.freeze = freezeSum / float64(freezeN)
	}
	if lp := stats.SortedPercentiles(lats, 50, 95, 99); lp != nil {
		t.p50Ms, t.p95Ms, t.p99Ms = lp[0], lp[1], lp[2]
	}

	// Recovery after each marked event: time until C1's 5 s rolling-median
	// rate returns to 80% of the pre-scenario nominal — measured in the
	// direction the event impairs (an event shaping C1's uplink is judged
	// on C1's upload rate; everything else on its download).
	points := cfg.Scenario.RecoveryPoints()
	if len(points) == 0 {
		return t
	}
	down := call.C1().DownMeter.RateMbps()
	up := call.C1().UpMeter.RateMbps()
	preStart, preEnd := cfg.Warmup, points[0].At
	for _, ev := range cfg.Scenario.Events {
		if ev.At < preEnd {
			preEnd = ev.At
		}
	}
	if preEnd <= preStart {
		// The scenario starts inside the warmup; fall back to whatever
		// pre-event window exists rather than an empty slice.
		preStart = preEnd / 2
	}
	nominalDown := stats.Median(down.Slice(preStart, preEnd).Values)
	nominalUp := stats.Median(up.Slice(preStart, preEnd).Values)
	c1 := call.C1().Name
	for _, ev := range points {
		series, nominal := down, nominalDown
		if ev.Op == scenario.OpShape && ev.Ref.Kind == scenario.LinkClientUp && ev.Ref.Client == c1 {
			series, nominal = up, nominalUp
		}
		ttr, ok := recoveryAfter(series, ev.At, nominal)
		t.recovered = append(t.recovered, ok)
		t.ttrSec = append(t.ttrSec, ttr)
	}
	return t
}

// recoveryAfter returns the seconds until the series' 5 s rolling median
// reaches 80% of nominal after at, or false if it never does in the data.
func recoveryAfter(s stats.Series, at time.Duration, nominal float64) (float64, bool) {
	if nominal <= 0 {
		return 0, false
	}
	rolled := s.Slice(at, time.Duration(math.MaxInt64)).RollingMedian(5 * time.Second)
	for i, v := range rolled.Values {
		if v >= 0.8*nominal {
			return (rolled.Times[i] - at).Seconds(), true
		}
	}
	return 0, false
}

// RunDynamic replays the configured scenario against the configured call,
// Reps repetitions in parallel, and aggregates over the ordered results —
// output is byte-identical at any Parallel.
func RunDynamic(cfg DynamicConfig) DynamicResult {
	cfg.defaults()
	trials := runner.Map(pool(cfg.Parallel, "dynamic "+cfg.Profile.Name+"/"+cfg.Scenario.Name),
		cfg.Reps, func(i int) dynamicTrial { return cfg.runTrial(i) })

	res := DynamicResult{
		Profile: cfg.Profile.Name, Scenario: cfg.Scenario.Name,
		N: cfg.Participants, Regions: cfg.Regions, InterMbps: cfg.InterMbps,
	}
	var downs, freezes, p50s, p95s, p99s []float64
	for _, t := range trials {
		downs = append(downs, t.down)
		freezes = append(freezes, t.freeze)
		p50s = append(p50s, t.p50Ms)
		p95s = append(p95s, t.p95Ms)
		p99s = append(p99s, t.p99Ms)
	}
	res.DownMbps = stats.Summarize(downs)
	res.FreezeRatio = stats.Summarize(freezes)
	res.LatP50Ms = stats.Summarize(p50s)
	res.LatP95Ms = stats.Summarize(p95s)
	res.LatP99Ms = stats.Summarize(p99s)

	for pi, ev := range cfg.Scenario.RecoveryPoints() {
		er := EventRecovery{Label: ev.Label, At: ev.At}
		var times []float64
		for _, t := range trials {
			if pi < len(t.recovered) && t.recovered[pi] {
				er.Recovered++
				times = append(times, t.ttrSec[pi])
			}
		}
		er.TTRSec = stats.Summarize(times)
		res.Events = append(res.Events, er)
	}

	if err := flushObs(&cfg, trials); err != nil {
		// A failing trace/metrics sink must not corrupt the experiment
		// result; report and keep the aggregates.
		fmt.Fprintf(os.Stderr, "vcalab: writing observability output: %v\n", err)
	}
	return res
}

// PrintDynamic writes one dynamic-scenario result as a paper-style block.
func PrintDynamic(w io.Writer, r DynamicResult) {
	fmt.Fprintf(w, "# %s dynamic scenario %s — %dp/%dr, inter %.0f Mbps\n",
		r.Profile, r.Scenario, r.N, r.Regions, r.InterMbps)
	fmt.Fprintf(w, "%12s %8s %22s\n", "down(Mbps)", "freeze", "lat ms p50/p95/p99")
	fmt.Fprintf(w, "%7.2f ±%.1f %8.3f %8.1f/%6.1f/%6.1f\n",
		r.DownMbps.Mean, r.DownMbps.CI90, r.FreezeRatio.Mean,
		r.LatP50Ms.Mean, r.LatP95Ms.Mean, r.LatP99Ms.Mean)
	for _, ev := range r.Events {
		label := ev.Label
		if label == "" {
			label = "event"
		}
		fmt.Fprintf(w, "  recovery %-18s @%5.1fs  %d/%d recovered",
			label, ev.At.Seconds(), ev.Recovered, r.DownMbps.N)
		if ev.Recovered > 0 {
			fmt.Fprintf(w, "  ttr %5.1f ±%.1f s", ev.TTRSec.Mean, ev.TTRSec.CI90)
		}
		fmt.Fprintln(w)
	}
}
