package experiment

import (
	"fmt"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/runner"
	"vcalab/internal/sim"
	"vcalab/internal/stats"
	"vcalab/internal/vca"
)

// ModalityConfig describes one §6 condition: an n-party call in a viewing
// mode, with C1 instrumented (and pinned, in speaker mode).
type ModalityConfig struct {
	Profile *vca.Profile
	N       int
	Mode    vca.ViewMode
	Reps    int // paper: 5
	Dur     time.Duration
	Warmup  time.Duration
	Seed    int64
	// Parallel is the trial parallelism; 0 = package default, 1 =
	// sequential. Output is identical for every value.
	Parallel int
}

func (c *ModalityConfig) defaults() {
	if c.Reps == 0 {
		c.Reps = 5
	}
	if c.Dur == 0 {
		c.Dur = 120 * time.Second // the paper's 2-minute calls
	}
	if c.Warmup == 0 {
		c.Warmup = 30 * time.Second
	}
}

// ModalityResult is one point of Fig 15.
type ModalityResult struct {
	Profile string
	N       int
	Mode    vca.ViewMode

	// UpMbps / DownMbps are C1's steady-state mean rates.
	UpMbps, DownMbps stats.Summary
}

// modalityTrial is one repetition's raw measurements.
type modalityTrial struct {
	up, down float64
}

// runTrial executes one repetition on a fresh engine.
func (cfg *ModalityConfig) runTrial(rep int) modalityTrial {
	seed := cfg.Seed + int64(rep)*52361 + int64(cfg.N)
	eng := sim.New(seed)
	lab := NewLab(eng, 0, 0)
	hosts := []*netem.Host{lab.ClientHost("c1")}
	for i := 2; i <= cfg.N; i++ {
		hosts = append(hosts, lab.RemoteHost(fmt.Sprintf("c%d", i), RemoteDelay))
	}
	sfu := lab.RemoteHost("sfu", SFUDelay)
	call := vca.NewCall(eng, cfg.Profile, sfu, hosts, vca.CallOptions{Mode: cfg.Mode, Seed: seed})
	call.Start()
	eng.RunUntil(cfg.Dur)
	call.Stop()
	return modalityTrial{
		up:   call.C1().UpMeter.MeanRateMbps(cfg.Warmup, cfg.Dur),
		down: call.C1().DownMeter.MeanRateMbps(cfg.Warmup, cfg.Dur),
	}
}

// RunModality executes one (n, mode) condition, repetitions in parallel.
func RunModality(cfg ModalityConfig) ModalityResult {
	cfg.defaults()
	res := ModalityResult{Profile: cfg.Profile.Name, N: cfg.N, Mode: cfg.Mode}
	trials := runner.Map(pool(cfg.Parallel, fmt.Sprintf("modality %s n=%d", cfg.Profile.Name, cfg.N)),
		cfg.Reps, func(rep int) modalityTrial { return cfg.runTrial(rep) })
	var ups, downs []float64
	for _, t := range trials {
		ups = append(ups, t.up)
		downs = append(downs, t.down)
	}
	res.UpMbps = stats.Summarize(ups)
	res.DownMbps = stats.Summarize(downs)
	return res
}

// ModalitySweep runs n = 2..maxN for one mode.
func ModalitySweep(prof *vca.Profile, mode vca.ViewMode, maxN, reps int, seed int64) []ModalityResult {
	var out []ModalityResult
	for n := 2; n <= maxN; n++ {
		out = append(out, RunModality(ModalityConfig{
			Profile: prof, N: n, Mode: mode, Reps: reps, Seed: seed,
		}))
	}
	return out
}
