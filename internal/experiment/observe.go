package experiment

// Observability wiring for the dynamic experiment: per-trial tracer and
// metrics capture, assembled here so the sim layers stay ignorant of
// experiment structure. Each repetition owns its tracer and metrics log
// (one engine, one tracer — nothing is shared across trials), and
// RunDynamic flushes the captures in repetition order after the sweep,
// so the trace and metrics files are byte-identical at any -parallel.
//
// The sampler tick is an extra scheduled event, which shifts engine
// sequence numbers relative to an unobserved run — harmless, because
// every callback it fires is a pure read (gauges poll accessors, the
// getStats path never calls Receiver.Take, nothing draws from the
// engine RNG), so the relative order and content of all other events,
// and therefore the experiment's stdout, are unchanged.

import (
	"fmt"
	"time"

	"vcalab/internal/cascade"
	"vcalab/internal/netem"
	"vcalab/internal/obs"
	"vcalab/internal/scenario"
	"vcalab/internal/sim"
	"vcalab/internal/vca"
)

// ObsConfig enables per-trial observability capture on a dynamic run.
// The zero value (and a nil pointer) disables everything.
type ObsConfig struct {
	// Trace attaches a ring-buffer tracer to every link, the call, and
	// the timeline.
	Trace bool
	// Metrics samples the metrics registry and per-client getStats
	// snapshots every Interval.
	Metrics bool
	// Interval is the metrics sampling period (default 1s).
	Interval time.Duration
	// TraceCap overrides the tracer ring capacity (default
	// obs.DefaultTraceCap).
	TraceCap int
}

// trialObs is one repetition's captured observability state. A sharded
// trial records into parts (control tracer first, then shards in index
// order); finish() folds them into tracer via obs.Merge.
type trialObs struct {
	tracer *obs.Tracer
	parts  []*obs.Tracer
	log    *obs.MetricsLog
}

// finish resolves the per-shard capture into the single tracer flushObs
// writes. Call once, after the trial's run completes. Nil-safe, returns
// its receiver so callers can assign through it.
func (to *trialObs) finish() *trialObs {
	if to != nil && len(to.parts) > 0 {
		to.tracer = obs.Merge(to.parts...)
		to.parts = nil
	}
	return to
}

// instrumentTrial attaches tracing and metrics sampling to a freshly
// built trial. Call before the timeline starts so t<=0 scenario events
// are captured. Returns nil when observability is off.
//
// On a sharded trial (sm non-nil) each shard records into its own
// tracer — the control tracer takes churn, timeline and trial-level
// events — and finish() merges them in (time, control-then-shard-index)
// order. The metrics sampler stays a control-engine global: it fires at
// window barriers with every shard parked at the sample instant, so
// link, call and getStats lines read exactly the state the sequential
// run would have sampled. Engine-internal gauges aggregate over all
// engines and remain deterministic, but scheduler internals (wheel
// ratio, live high-water) legitimately differ across shard counts.
func instrumentTrial(o *ObsConfig, sm *cascade.ShardedMesh, eng *sim.Engine, mesh *cascade.Mesh, call *vca.Call, tl *scenario.Timeline) *trialObs {
	if o == nil || (!o.Trace && !o.Metrics) {
		return nil
	}
	engines := []*sim.Engine{eng}
	if sm != nil {
		engines = append(engines, sm.ShardEngines...)
	}
	to := &trialObs{}
	if o.Trace {
		if sm != nil {
			ctrlTr := obs.NewTracer(o.TraceCap)
			shardTr := make([]*obs.Tracer, len(sm.ShardEngines))
			for k := range shardTr {
				shardTr[k] = obs.NewTracer(o.TraceCap)
			}
			sm.ShardTracers(call, shardTr)
			call.SetChurnTracer(ctrlTr)
			tl.SetTracer(ctrlTr)
			to.parts = append([]*obs.Tracer{ctrlTr}, shardTr...)
		} else {
			to.tracer = obs.NewTracer(o.TraceCap)
			for _, l := range mesh.Links() {
				l.SetTracer(to.tracer)
			}
			call.SetTracer(to.tracer)
			tl.SetTracer(to.tracer)
		}
	}
	if o.Metrics {
		interval := o.Interval
		if interval <= 0 {
			interval = time.Second
		}
		to.log = &obs.MetricsLog{}
		reg := obs.NewRegistry()
		registerEngineMetrics(reg, engines)
		registerLinkMetrics(reg, mesh)
		registerCallMetrics(reg, call)
		rtt := reg.Histogram("vca/feedback_rtt_ms")
		eng.EveryHandler(interval, sim.HandlerFunc(func(now time.Duration) {
			for _, cl := range call.Clients {
				if call.Active(cl.Name) && cl.LastRTT() > 0 {
					rtt.Observe(cl.LastRTT().Seconds() * 1000)
				}
			}
			reg.Sample(now, to.log)
			for _, cl := range call.Clients {
				if !call.Active(cl.Name) {
					continue
				}
				rep := cl.StatsReport(now)
				for _, e := range rep.Entries() {
					to.log.Append(e)
				}
			}
		}))
	}
	return to
}

// registerEngineMetrics aggregates the scheduler gauges over every
// engine of the trial: one entry sequentially, control plus shards on a
// sharded run. Sums of processed/live match the sequential run at every
// sample instant (the same event set precedes each barrier); high-water
// and wheel-ratio are per-engine properties whose aggregate is
// deterministic but shard-count-dependent.
func registerEngineMetrics(reg *obs.Registry, engines []*sim.Engine) {
	reg.Gauge("eng/processed", func() float64 {
		var n uint64
		for _, e := range engines {
			n += e.Processed()
		}
		return float64(n)
	})
	reg.Gauge("eng/live", func() float64 {
		n := 0
		for _, e := range engines {
			n += e.Live()
		}
		return float64(n)
	})
	reg.Gauge("eng/live_high_water", func() float64 {
		n := 0
		for _, e := range engines {
			n += e.LiveHighWater()
		}
		return float64(n)
	})
	reg.Gauge("eng/wheel_insert_ratio", func() float64 {
		var w, h uint64
		for _, e := range engines {
			ew, eh := e.SchedulerInserts()
			w += ew
			h += eh
		}
		if w+h == 0 {
			return 0
		}
		return float64(w) / float64(w+h)
	})
}

func registerLinkMetrics(reg *obs.Registry, mesh *cascade.Mesh) {
	for _, l := range mesh.Links() {
		l := l
		prefix := "link/" + l.Name() + "/"
		reg.Gauge(prefix+"queue_bytes", func() float64 { return float64(l.QueuedBytes()) })
		reg.Gauge(prefix+"queue_high_water_bytes", func() float64 { return float64(l.QueueHighWater()) })
		reg.Gauge(prefix+"drops", func() float64 { return float64(l.Drops) })
		reg.Gauge(prefix+"aqm_drops", func() float64 { return float64(l.AQMDrops) })
		reg.Gauge(prefix+"paused_ms", func() float64 {
			return float64(l.PausedTotal()) / float64(time.Millisecond)
		})
		// Loss models install mid-run (timeline shape events), so the
		// GE burst-state occupancy re-checks the model on every sample.
		reg.Gauge(prefix+"ge_bad_share", func() float64 {
			if ge, ok := l.LossModel().(*netem.GilbertElliott); ok && ge.Offered > 0 {
				return float64(ge.BadOffered) / float64(ge.Offered)
			}
			return 0
		})
	}
}

func registerCallMetrics(reg *obs.Registry, call *vca.Call) {
	for _, s := range call.Servers {
		s := s
		reg.Gauge("vca/"+s.Name+"/fwd_switches", func() float64 { return float64(s.FwdSwitches()) })
		for _, legName := range s.LegNames() {
			legName := legName
			reg.Gauge("vca/"+s.Name+"/leg/"+legName+"/fwd_bytes", func() float64 {
				return float64(s.LegFwdBytes(legName))
			})
		}
	}
	for _, cl := range call.Clients {
		cl := cl
		reg.Gauge("vca/"+cl.Name+"/target_bps", func() float64 {
			if cc := cl.CC(); cc != nil {
				return cc.TargetBps()
			}
			return 0
		})
	}
}

// flushObs writes every repetition's capture in rep order, each preceded
// by a trial-header line carrying the (profile, scenario, rep) identity
// and the tracer's retention accounting, so a multi-rep (or multi-
// condition) file remains self-describing. Write errors surface on the
// returned error; the experiment's own stdout is unaffected.
func flushObs(cfg *DynamicConfig, trials []dynamicTrial) error {
	for rep, t := range trials {
		if t.obs == nil {
			continue
		}
		if cfg.TraceW != nil && t.obs.tracer != nil {
			tr := t.obs.tracer
			if _, err := fmt.Fprintf(cfg.TraceW,
				"{\"kind\":\"trial\",\"profile\":%q,\"scenario\":%q,\"rep\":%d,\"trace_events\":%d,\"trace_dropped\":%d}\n",
				cfg.Profile.Name, cfg.Scenario.Name, rep, tr.Total(), tr.Dropped()); err != nil {
				return err
			}
			if err := tr.WriteJSONL(cfg.TraceW); err != nil {
				return err
			}
		}
		if cfg.MetricsW != nil && t.obs.log != nil {
			if err := t.obs.log.Err(); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(cfg.MetricsW,
				"{\"kind\":\"trial\",\"profile\":%q,\"scenario\":%q,\"rep\":%d}\n",
				cfg.Profile.Name, cfg.Scenario.Name, rep); err != nil {
				return err
			}
			if _, err := t.obs.log.WriteTo(cfg.MetricsW); err != nil {
				return err
			}
		}
	}
	return nil
}
