package experiment

import (
	"strings"
	"testing"
	"time"

	"vcalab/internal/vca"
)

func TestScaleSweepShapes(t *testing.T) {
	rs := RunScale(ScaleConfig{
		Profile:      vca.Meet(),
		Participants: []int{6},
		Regions:      2,
		InterMbps:    []float64{1, 50},
		Reps:         1,
		Dur:          30 * time.Second,
		Warmup:       10 * time.Second,
		Seed:         31,
	})
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
	tight, wide := rs[0], rs[1]
	if len(tight.RegionDownMbps) != 2 {
		t.Fatalf("per-region summaries = %d, want 2", len(tight.RegionDownMbps))
	}
	// A 1 Mbps inter link cannot carry three remote origins: received
	// rate drops and the relay link saturates relative to 50 Mbps.
	if tight.RegionDownMbps[0].Mean >= wide.RegionDownMbps[0].Mean {
		t.Errorf("r0 down under tight inter (%.2f) should trail wide (%.2f)",
			tight.RegionDownMbps[0].Mean, wide.RegionDownMbps[0].Mean)
	}
	if tight.RelayUtilMax.Mean < 0.5 {
		t.Errorf("tight inter link utilization = %.2f, want saturated (>= 0.5)", tight.RelayUtilMax.Mean)
	}
	if wide.RelayUtilMax.Mean > 0.5 {
		t.Errorf("wide inter link utilization = %.2f, want low", wide.RelayUtilMax.Mean)
	}
	// Latency percentiles are ordered and positive; the tight link's
	// queueing shows up in the tail.
	for _, r := range rs {
		if !(r.LatP50Ms.Mean > 0 && r.LatP50Ms.Mean <= r.LatP95Ms.Mean && r.LatP95Ms.Mean <= r.LatP99Ms.Mean) {
			t.Errorf("latency percentiles disordered: p50 %.1f p95 %.1f p99 %.1f",
				r.LatP50Ms.Mean, r.LatP95Ms.Mean, r.LatP99Ms.Mean)
		}
	}
	if tight.LatP99Ms.Mean <= wide.LatP99Ms.Mean {
		t.Errorf("tail latency under tight inter (%.1f ms) should exceed wide (%.1f ms)",
			tight.LatP99Ms.Mean, wide.LatP99Ms.Mean)
	}
}

// TestScale48PartyDeterministicAcrossParallel is the acceptance check for
// the cascade subsystem: a 48-participant, 3-region call produces
// byte-identical RunScale output at any parallelism.
func TestScale48PartyDeterministicAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("48-party cascade is slow; skipped in -short")
	}
	run := func(parallel int) string {
		rs := RunScale(ScaleConfig{
			Profile:      vca.Teams(),
			Participants: []int{48},
			Regions:      3,
			InterMbps:    []float64{30},
			Reps:         2,
			Dur:          10 * time.Second,
			Warmup:       4 * time.Second,
			Seed:         32,
			Parallel:     parallel,
		})
		var sb strings.Builder
		PrintScale(&sb, rs)
		return sb.String()
	}
	seq := run(1)
	par := run(4)
	if seq != par {
		t.Errorf("48-party scale output differs between -parallel 1 and 4:\n%s\nvs\n%s", seq, par)
	}
	if !strings.Contains(seq, "48") || !strings.Contains(seq, "teams") {
		t.Errorf("unexpected output: %q", seq)
	}
}

func TestPrintScale(t *testing.T) {
	rs := RunScale(ScaleConfig{
		Profile:      vca.Zoom(),
		Participants: []int{4},
		Regions:      2,
		InterMbps:    []float64{10},
		Reps:         1,
		Dur:          20 * time.Second,
		Warmup:       8 * time.Second,
		Seed:         33,
	})
	var sb strings.Builder
	PrintScale(&sb, rs)
	out := sb.String()
	if !strings.Contains(out, "zoom") || !strings.Contains(out, "2 regions") {
		t.Errorf("PrintScale output: %q", out)
	}
}
