package experiment

import (
	"strings"
	"testing"
	"time"

	"vcalab/internal/sim"
	"vcalab/internal/vca"
)

// Short, low-rep versions of each experiment keep the suite fast; the full
// paper parameters live in the root benchmarks.

func TestStaticSweepShapes(t *testing.T) {
	rs := RunStatic(StaticConfig{
		Profile:  vca.Meet(),
		Dir:      Uplink,
		CapsMbps: []float64{0.5, 2, 0},
		Reps:     2,
		Dur:      80 * time.Second,
		Warmup:   25 * time.Second,
		Seed:     1,
	})
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3", len(rs))
	}
	at05, at2, unc := rs[0], rs[1], rs[2]
	if at05.MedianMbps.Mean < 0.33 || at05.MedianMbps.Mean > 0.55 {
		t.Errorf("meet @0.5: median = %.2f, want high utilization", at05.MedianMbps.Mean)
	}
	if at2.MedianMbps.Mean < 0.7 || at2.MedianMbps.Mean > 1.2 {
		t.Errorf("meet @2: median = %.2f, want ~nominal 0.95", at2.MedianMbps.Mean)
	}
	if unc.CapacityMbps != 0 || unc.MeanUp.Mean < 0.7 {
		t.Errorf("unconstrained row wrong: %+v", unc.MedianMbps)
	}
	// Fig 2d-f shape: QP at 0.5 worse (higher) than at 2 Mbps.
	if at05.Out.QP <= at2.Out.QP {
		t.Errorf("QP should degrade when constrained: %.1f @0.5 vs %.1f @2", at05.Out.QP, at2.Out.QP)
	}
}

func TestPaperCaps(t *testing.T) {
	caps := PaperCaps()
	if len(caps) != 16 {
		t.Fatalf("PaperCaps() has %d entries, want 16: %v", len(caps), caps)
	}
	if caps[0] != 0.3 || caps[12] != 1.5 || caps[15] != 10 {
		t.Errorf("grid = %v", caps)
	}
}

func TestTable2Smoke(t *testing.T) {
	rs := Table2([]*vca.Profile{vca.Zoom()}, 1, 3)
	if len(rs) != 1 {
		t.Fatalf("got %d rows", len(rs))
	}
	if rs[0].MeanUp.Mean < 0.55 || rs[0].MeanUp.Mean > 1.1 {
		t.Errorf("zoom unconstrained up = %.2f, want ~0.78", rs[0].MeanUp.Mean)
	}
	var sb strings.Builder
	PrintTable2(&sb, rs)
	if !strings.Contains(sb.String(), "zoom") {
		t.Errorf("table output missing zoom: %q", sb.String())
	}
}

func TestDisruptionRecovers(t *testing.T) {
	r := RunDisruption(DisruptionConfig{
		Profile: vca.Meet(), Dir: Uplink, LevelMbps: 0.5, Reps: 2, Seed: 5,
	})
	if r.Recovered == 0 {
		t.Fatal("meet never recovered from a 0.5 Mbps uplink drop")
	}
	if r.TTR.Mean > 45 {
		t.Errorf("meet TTR from 0.5 = %.1fs, want < 45s", r.TTR.Mean)
	}
	// The series must show the drop: mean rate during [65,85]s well below
	// the pre-drop rate.
	pre := r.Series.Slice(30*time.Second, 60*time.Second)
	during := r.Series.Slice(65*time.Second, 85*time.Second)
	preMean, durMean := mean(pre.Values), mean(during.Values)
	if durMean > 0.75*preMean {
		t.Errorf("disruption invisible: pre %.2f vs during %.2f", preMean, durMean)
	}
}

func mean(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += v
	}
	if len(vs) == 0 {
		return 0
	}
	return s / float64(len(vs))
}

func TestCompetitionVCAvsVCA(t *testing.T) {
	r := RunCompetition(CompetitionConfig{
		Incumbent:   vca.Zoom(),
		Kind:        CompVCA,
		CompProfile: vca.Teams(),
		LinkMbps:    0.5,
		Reps:        1,
		Seed:        7,
		CallDur:     150 * time.Second,
		CompDur:     90 * time.Second,
		ShareHi:     120 * time.Second,
	})
	// §5.1: an incumbent Zoom keeps >= 60% of the uplink against anyone.
	if r.ShareUp.Mean < 0.55 {
		t.Errorf("incumbent zoom uplink share vs teams = %.2f, want >= 0.55", r.ShareUp.Mean)
	}
	if r.IncUp.Len() == 0 || r.CompUp.Len() == 0 {
		t.Error("missing competition time series")
	}
}

func TestCompetitionVsIPerf(t *testing.T) {
	r := RunCompetition(CompetitionConfig{
		Incumbent: vca.Teams(),
		Kind:      CompIPerf,
		LinkMbps:  2,
		Reps:      1,
		Seed:      9,
		CallDur:   150 * time.Second,
		CompDur:   90 * time.Second,
		ShareHi:   120 * time.Second,
	})
	// §5.2: Teams is passive against TCP — well under half the link.
	if r.ShareUp.Mean > 0.55 {
		t.Errorf("teams uplink share vs iperf = %.2f, want passive (< 0.55)", r.ShareUp.Mean)
	}
	if r.ShareDown.Mean > 0.5 {
		t.Errorf("teams downlink share vs iperf = %.2f, want passive", r.ShareDown.Mean)
	}
}

func TestModalitySweepShapes(t *testing.T) {
	rs := ModalitySweep(vca.Zoom(), vca.Gallery, 5, 1, 11)
	if len(rs) != 4 {
		t.Fatalf("got %d results, want 4 (n=2..5)", len(rs))
	}
	// §6.1: Zoom's uplink drops when the 5th participant joins.
	up4, up5 := rs[2].UpMbps.Mean, rs[3].UpMbps.Mean
	if up5 >= 0.8*up4 {
		t.Errorf("zoom uplink n=5 (%.2f) should drop well below n=4 (%.2f)", up5, up4)
	}
	// Downstream grows with participants before the tier drop.
	if rs[1].DownMbps.Mean <= rs[0].DownMbps.Mean {
		t.Errorf("zoom downstream n=3 (%.2f) should exceed n=2 (%.2f)",
			rs[1].DownMbps.Mean, rs[0].DownMbps.Mean)
	}
}

func TestLabReshaping(t *testing.T) {
	eng := simNew()
	lab := NewLab(eng, 0, 0)
	lab.SetUplink(0.5e6)
	if lab.Uplink().Rate() != 0.5e6 {
		t.Errorf("uplink rate = %v", lab.Uplink().Rate())
	}
	lab.SetUplink(0)
	if lab.Uplink().Rate() != 0 {
		t.Errorf("uplink rate after unshape = %v", lab.Uplink().Rate())
	}
}

func simNew() *sim.Engine { return sim.New(1) }

func TestImpairmentSweep(t *testing.T) {
	rs := RunImpairment(ImpairmentConfig{
		Profile:  vca.Zoom(),
		LossPcts: []float64{0, 5},
		Jitter:   10 * time.Millisecond,
		Reps:     1,
		Dur:      60 * time.Second,
		Warmup:   20 * time.Second,
		Seed:     5,
	})
	if len(rs) != 2 {
		t.Fatalf("got %d results", len(rs))
	}
	clean, lossy := rs[0], rs[1]
	if clean.UpMbps.Mean < 0.5 {
		t.Errorf("clean-link zoom up = %.2f", clean.UpMbps.Mean)
	}
	// 5% random loss is within Zoom's FEC tolerance: utilization must not
	// collapse, but receiver-side quality degrades.
	if lossy.UpMbps.Mean < 0.4*clean.UpMbps.Mean {
		t.Errorf("zoom collapsed under 5%% random loss: %.2f vs %.2f",
			lossy.UpMbps.Mean, clean.UpMbps.Mean)
	}
	if lossy.FIRCount.Mean <= clean.FIRCount.Mean {
		t.Errorf("random loss did not increase FIRs: %v vs %v",
			lossy.FIRCount.Mean, clean.FIRCount.Mean)
	}
}

func TestImpairmentTeamsVsZoomLossSensitivity(t *testing.T) {
	run := func(p *vca.Profile) float64 {
		rs := RunImpairment(ImpairmentConfig{
			Profile: p, LossPcts: []float64{3}, Reps: 1,
			Dur: 60 * time.Second, Warmup: 20 * time.Second, Seed: 6,
		})
		return rs[0].UpMbps.Mean
	}
	zoom, teams := run(vca.Zoom()), run(vca.Teams())
	// Teams backs off at 2% loss; Zoom's FEC shrugs 3% off. Compare
	// utilization relative to each VCA's nominal rate.
	zoomFrac := zoom / 0.82
	teamsFrac := teams / 1.44
	if zoomFrac <= teamsFrac {
		t.Errorf("under 3%% random loss zoom should retain more of nominal: zoom %.2f vs teams %.2f",
			zoomFrac, teamsFrac)
	}
}

func TestBandwidthTraceReplay(t *testing.T) {
	// A sawtooth access link: 2 -> 0.6 -> 1.2 -> 0.4 -> 2 Mbps.
	trace := BandwidthTrace{
		{At: 0, UpBps: 2e6, DownBps: 2e6},
		{At: 40 * time.Second, UpBps: 0.6e6, DownBps: 0.6e6},
		{At: 80 * time.Second, UpBps: 1.2e6, DownBps: 1.2e6},
		{At: 120 * time.Second, UpBps: 0.4e6, DownBps: 0.4e6},
		{At: 160 * time.Second, UpBps: 2e6, DownBps: 2e6},
	}
	r := RunTrace(vca.Zoom(), trace, 200*time.Second, 9)
	if r.MeanUtilization < 0.5 || r.MeanUtilization > 1.3 {
		t.Errorf("zoom trace utilization = %.2f, want 0.5-1.3", r.MeanUtilization)
	}
	// The sent series must visibly track the sawtooth: mean rate in the
	// 0.4 Mbps valley well below the 2 Mbps plateau mean.
	valley := mean(r.Up.Slice(135*time.Second, 160*time.Second).Values)
	plateau := mean(r.Up.Slice(20*time.Second, 40*time.Second).Values)
	if valley >= 0.75*plateau {
		t.Errorf("sent rate did not track the trace: valley %.2f vs plateau %.2f", valley, plateau)
	}
}

func TestTraceCapacityLookup(t *testing.T) {
	trace := BandwidthTrace{
		{At: 0, UpBps: 1e6},
		{At: 10 * time.Second, UpBps: 2e6},
	}
	if got := capacityAt(trace, 5*time.Second); got != 1e6 {
		t.Errorf("capacityAt(5s) = %v", got)
	}
	if got := capacityAt(trace, 15*time.Second); got != 2e6 {
		t.Errorf("capacityAt(15s) = %v", got)
	}
}

func TestFormatters(t *testing.T) {
	var sb strings.Builder
	rs := RunStatic(StaticConfig{
		Profile: vca.Zoom(), Dir: Uplink, CapsMbps: []float64{2},
		Reps: 1, Dur: 45 * time.Second, Warmup: 15 * time.Second, Seed: 1,
	})
	PrintStatic(&sb, rs)
	if !strings.Contains(sb.String(), "zoom") || !strings.Contains(sb.String(), "2.0") {
		t.Errorf("PrintStatic output: %q", sb.String())
	}
	sb.Reset()
	m := RunModality(ModalityConfig{Profile: vca.Meet(), N: 3, Mode: vca.Gallery,
		Reps: 1, Dur: 40 * time.Second, Warmup: 15 * time.Second, Seed: 2})
	PrintModality(&sb, []ModalityResult{m})
	if !strings.Contains(sb.String(), "gallery") {
		t.Errorf("PrintModality output: %q", sb.String())
	}
	sb.Reset()
	im := RunImpairment(ImpairmentConfig{Profile: vca.Meet(), LossPcts: []float64{1},
		Reps: 1, Dur: 40 * time.Second, Warmup: 15 * time.Second, Seed: 3})
	PrintImpairment(&sb, im)
	if !strings.Contains(sb.String(), "1.0%") {
		t.Errorf("PrintImpairment output: %q", sb.String())
	}
}
