package experiment

import (
	"fmt"
	"time"

	"vcalab/internal/apps"
	"vcalab/internal/netem"
	"vcalab/internal/runner"
	"vcalab/internal/sim"
	"vcalab/internal/stats"
	"vcalab/internal/vca"
)

// CompetitorKind selects what shares the bottleneck with the incumbent
// VCA call (§5).
type CompetitorKind int

// Competitors studied by the paper.
const (
	CompVCA CompetitorKind = iota
	CompIPerf
	CompNetflix
	CompYouTube
)

func (k CompetitorKind) String() string {
	switch k {
	case CompVCA:
		return "vca"
	case CompIPerf:
		return "iperf3"
	case CompNetflix:
		return "netflix"
	default:
		return "youtube"
	}
}

// CompetitionConfig describes one §5 experiment: an incumbent VCA call
// starts first; ~30 s later the competing application joins from F1 behind
// the same bottleneck for two minutes (Fig 7's topology).
type CompetitionConfig struct {
	Incumbent *vca.Profile
	Kind      CompetitorKind
	// CompProfile is the competing VCA's profile when Kind == CompVCA.
	CompProfile *vca.Profile
	LinkMbps    float64 // symmetric shaping, paper: {0.5,1,2,3,4,5}
	Reps        int     // paper: 3
	Seed        int64
	// Parallel is the trial parallelism; 0 = package default, 1 =
	// sequential. Output is identical for every value.
	Parallel int

	CallDur time.Duration // incumbent lifetime (default 210 s)
	CompAt  time.Duration // competitor start (default 30 s)
	CompDur time.Duration // competitor lifetime (default 120 s)
	ShareLo time.Duration // share-measurement window start (default 45 s)
	ShareHi time.Duration // window end (default 145 s)
}

func (c *CompetitionConfig) defaults() {
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.CallDur == 0 {
		c.CallDur = 210 * time.Second
	}
	if c.CompAt == 0 {
		c.CompAt = 30 * time.Second
	}
	if c.CompDur == 0 {
		c.CompDur = 120 * time.Second
	}
	if c.ShareLo == 0 {
		c.ShareLo = 45 * time.Second
	}
	if c.ShareHi == 0 {
		c.ShareHi = 145 * time.Second
	}
}

// CompetitionResult is one cell of Figs 8–14.
type CompetitionResult struct {
	Incumbent  string
	Competitor string
	LinkMbps   float64

	// ShareUp / ShareDown are the incumbent's fraction of bottleneck
	// bytes while the competitor was active (box values in Figs 8/10/12).
	ShareUp, ShareDown stats.Summary

	// Time series (bottleneck-tap bitrates, 1 s bins, mean across reps)
	// for the trace figures (Figs 9, 11, 13, 14a).
	IncUp, CompUp, IncDown, CompDown stats.Series

	// Netflix connection behaviour (Fig 14b).
	NetflixConns        stats.Summary
	NetflixPeakParallel stats.Summary
}

// competitionTrial is one repetition's raw measurements. nfConns/nfPeak
// hold at most one sample each (set when the competitor is Netflix).
type competitionTrial struct {
	shareUp, shareDown               float64
	incUp, compUp, incDown, compDown stats.Series
	nfConns, nfPeak                  []float64
}

// runTrial executes one repetition on a fresh engine.
func (cfg *CompetitionConfig) runTrial(rep int) competitionTrial {
	seed := cfg.Seed + int64(rep)*7127
	eng := sim.New(seed)
	lab := NewLab(eng, cfg.LinkMbps*1e6, cfg.LinkMbps*1e6)

	// Bottleneck taps: classify by which bottleneck-side host the
	// packet belongs to (what tcpdump at the clients saw).
	mIncUp, mCompUp := stats.NewMeter(time.Second), stats.NewMeter(time.Second)
	mIncDown, mCompDown := stats.NewMeter(time.Second), stats.NewMeter(time.Second)
	lab.Uplink().OnSend(func(p *netem.Packet) {
		switch p.From.Host {
		case "c1":
			mIncUp.AddBytes(eng.Now(), p.Size)
		case "f1":
			mCompUp.AddBytes(eng.Now(), p.Size)
		}
	})
	lab.Downlink().OnSend(func(p *netem.Packet) {
		switch p.To.Host {
		case "c1":
			mIncDown.AddBytes(eng.Now(), p.Size)
		case "f1":
			mCompDown.AddBytes(eng.Now(), p.Size)
		}
	})

	// Incumbent call.
	c1 := lab.ClientHost("c1")
	c2 := lab.RemoteHost("c2", RemoteDelay)
	sfu := lab.RemoteHost("sfu", SFUDelay)
	call := vca.NewCall(eng, cfg.Incumbent, sfu, []*netem.Host{c1, c2}, vca.CallOptions{Seed: seed})
	call.Start()

	// Competitor.
	var t competitionTrial
	f1 := lab.ClientHost("f1")
	var stopComp func()
	eng.Schedule(cfg.CompAt, func() {
		stopComp = startCompetitor(eng, lab, *cfg, f1, seed, &t.nfConns, &t.nfPeak)
	})
	eng.Schedule(cfg.CompAt+cfg.CompDur, func() {
		if stopComp != nil {
			stopComp()
		}
	})

	eng.RunUntil(cfg.CallDur)
	call.Stop()

	iu := mIncUp.MeanRateMbps(cfg.ShareLo, cfg.ShareHi)
	cu := mCompUp.MeanRateMbps(cfg.ShareLo, cfg.ShareHi)
	id := mIncDown.MeanRateMbps(cfg.ShareLo, cfg.ShareHi)
	cd := mCompDown.MeanRateMbps(cfg.ShareLo, cfg.ShareHi)
	t.shareUp = stats.Share(iu, cu)
	t.shareDown = stats.Share(id, cd)
	t.incUp = mIncUp.RateMbps()
	t.compUp = mCompUp.RateMbps()
	t.incDown = mIncDown.RateMbps()
	t.compDown = mCompDown.RateMbps()
	return t
}

// RunCompetition executes the experiment, repetitions in parallel.
func RunCompetition(cfg CompetitionConfig) CompetitionResult {
	cfg.defaults()
	name := cfg.Kind.String()
	if cfg.Kind == CompVCA {
		name = cfg.CompProfile.Name
	}
	res := CompetitionResult{
		Incumbent: cfg.Incumbent.Name, Competitor: name, LinkMbps: cfg.LinkMbps,
	}
	trials := runner.Map(pool(cfg.Parallel, "competition "+res.Incumbent+" vs "+name),
		cfg.Reps, func(rep int) competitionTrial { return cfg.runTrial(rep) })

	var shUp, shDown, nfConns, nfPeak []float64
	var incUp, compUp, incDown, compDown []stats.Series
	for _, t := range trials {
		shUp = append(shUp, t.shareUp)
		shDown = append(shDown, t.shareDown)
		incUp = append(incUp, t.incUp)
		compUp = append(compUp, t.compUp)
		incDown = append(incDown, t.incDown)
		compDown = append(compDown, t.compDown)
		nfConns = append(nfConns, t.nfConns...)
		nfPeak = append(nfPeak, t.nfPeak...)
	}
	res.ShareUp = stats.Summarize(shUp)
	res.ShareDown = stats.Summarize(shDown)
	res.IncUp = meanSeries(incUp)
	res.CompUp = meanSeries(compUp)
	res.IncDown = meanSeries(incDown)
	res.CompDown = meanSeries(compDown)
	res.NetflixConns = stats.Summarize(nfConns)
	res.NetflixPeakParallel = stats.Summarize(nfPeak)
	return res
}

// startCompetitor launches the competing application on f1 and returns its
// stop function.
func startCompetitor(eng *sim.Engine, lab *Lab, cfg CompetitionConfig, f1 *netem.Host, seed int64, nfConns, nfPeak *[]float64) func() {
	switch cfg.Kind {
	case CompVCA:
		f2 := lab.RemoteHost("f2", RemoteDelay)
		sfu2 := lab.RemoteHost("sfu2", SFUDelay)
		call2 := vca.NewCall(eng, cfg.CompProfile, sfu2, []*netem.Host{f1, f2}, vca.CallOptions{Seed: seed + 999})
		call2.Start()
		return call2.Stop
	case CompIPerf:
		// One upload and one download flow so a single run measures the
		// paper's uplink and downlink conditions; the cross-direction
		// ack traffic is negligible.
		srvUp := lab.RemoteHost("ipup", IPerfDelay)
		srvDown := lab.RemoteHost("ipdn", IPerfDelay)
		upload := apps.NewIPerf(eng, f1, srvUp, 5201)
		download := apps.NewIPerf(eng, srvDown, f1, 5202)
		upload.Start()
		download.Start()
		return func() { upload.Stop(); download.Stop() }
	case CompNetflix:
		cdn := lab.RemoteHost("nfcdn", RemoteDelay)
		nf := apps.NewNetflix(eng, f1, cdn, 7000)
		nf.Start()
		return func() {
			nf.Stop()
			*nfConns = append(*nfConns, float64(nf.ConnectionsOpened))
			*nfPeak = append(*nfPeak, float64(nf.PeakParallel))
		}
	default:
		cdn := lab.RemoteHost("ytcdn", RemoteDelay)
		yt := apps.NewYouTube(eng, f1, cdn, 8000)
		yt.Start()
		return yt.Stop
	}
}

// PaperCompetitionLinks are §5's symmetric link capacities in Mbps.
func PaperCompetitionLinks() []float64 { return []float64{0.5, 1, 2, 3, 4, 5} }

// CompetitionLabel renders "incumbent vs competitor @ L Mbps".
func CompetitionLabel(r CompetitionResult) string {
	return fmt.Sprintf("%s vs %s @ %g Mbps", r.Incumbent, r.Competitor, r.LinkMbps)
}
