package experiment

import (
	"strings"
	"testing"
	"time"

	"vcalab/internal/vca"
)

// TestScaleDeterministicAcrossShards: the region-sharded engine must
// reproduce the sequential sweep byte-for-byte, at every shard count and
// compounded with trial parallelism.
func TestScaleDeterministicAcrossShards(t *testing.T) {
	run := func(shards, parallel int) string {
		rs := RunScale(ScaleConfig{
			Profile:      vca.Meet(),
			Participants: []int{9},
			Regions:      3,
			InterMbps:    []float64{15},
			Reps:         2,
			Dur:          20 * time.Second,
			Warmup:       8 * time.Second,
			Seed:         41,
			Parallel:     parallel,
			Shards:       shards,
		})
		var sb strings.Builder
		PrintScale(&sb, rs)
		return sb.String()
	}
	base := run(1, 1)
	for _, shards := range []int{2, 3} {
		for _, parallel := range []int{1, 4} {
			if got := run(shards, parallel); got != base {
				t.Errorf("scale output at -shards %d -parallel %d differs from sequential:\n%s\nvs\n%s",
					shards, parallel, got, base)
			}
		}
	}
}

// TestScale48PartyShardedMatchesSequential is the acceptance spot-check
// on the headline workload: 48 participants over 3 regions, sharded 3
// ways, byte-identical to one engine.
func TestScale48PartyShardedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("48-party cascade is slow; skipped in -short")
	}
	run := func(shards int) string {
		rs := RunScale(ScaleConfig{
			Profile:      vca.Teams(),
			Participants: []int{48},
			Regions:      3,
			InterMbps:    []float64{30},
			Reps:         1,
			Dur:          10 * time.Second,
			Warmup:       4 * time.Second,
			Seed:         32,
			Shards:       shards,
		})
		var sb strings.Builder
		PrintScale(&sb, rs)
		return sb.String()
	}
	seq := run(1)
	if sh := run(3); sh != seq {
		t.Errorf("48-party output differs at -shards 3:\n%s\nvs\n%s", sh, seq)
	}
}

// TestDynamicShardedMatchesSequential: a churn-storm dynamic trial with
// full observability capture, sharded vs sequential. Experiment stdout
// must match byte-for-byte; metrics lines too, except the eng/ scheduler
// gauges, which aggregate per-engine internals (wheel ratio, high-water)
// that legitimately depend on the shard count. The trace file follows a
// different event interleaving (per-shard rings merged by time) but must
// be deterministic for a fixed shard count.
func TestDynamicShardedMatchesSequential(t *testing.T) {
	run := func(shards, parallel int) (stdout, trace, metrics string) {
		cfg := dynTestConfig(vca.Meet())
		cfg.Dur = 60 * time.Second
		cfg.Shards = shards
		cfg.Parallel = parallel
		var out, tw, mw strings.Builder
		cfg.Obs = &ObsConfig{Trace: true, Metrics: true, Interval: time.Second, TraceCap: 1 << 18}
		cfg.TraceW, cfg.MetricsW = &tw, &mw
		PrintDynamic(&out, RunDynamic(cfg))
		return out.String(), tw.String(), mw.String()
	}
	seqOut, _, seqMetrics := run(1, 1)
	shOut, shTrace, shMetrics := run(2, 1)
	if seqOut != shOut {
		t.Errorf("dynamic output differs at -shards 2:\n-- shards 1 --\n%s-- shards 2 --\n%s", seqOut, shOut)
	}
	if got, want := stripEngineGauges(shMetrics), stripEngineGauges(seqMetrics); got != want {
		t.Error("non-scheduler metrics lines differ between sharded and sequential runs")
	}
	if !strings.Contains(shTrace, `"kind":"churn"`) {
		t.Error("sharded trace records no churn events")
	}
	if !strings.Contains(shTrace, `"kind":"deliver"`) {
		t.Error("sharded trace records no deliver events")
	}

	// Determinism within a shard count, compounded with -parallel.
	shOut2, shTrace2, shMetrics2 := run(2, 4)
	if shOut2 != shOut || shTrace2 != shTrace || shMetrics2 != shMetrics {
		t.Error("sharded capture not deterministic across reruns / trial parallelism")
	}
}

// stripEngineGauges drops the eng/ scheduler gauge lines from a metrics
// JSONL capture, leaving link, call and getStats lines.
func stripEngineGauges(s string) string {
	var sb strings.Builder
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, `"name":"eng/`) {
			continue
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}
