package experiment

import (
	"fmt"
	"io"
	"time"

	"vcalab/internal/runner"
	"vcalab/internal/scenario"
	"vcalab/internal/vca"
)

// FuzzConfig drives the scenario-fuzz smoke: N seeded generated scenarios
// (internal/scenario.Generate) replayed through the invariant harness,
// trials in parallel. Seeds are consecutive (Seed, Seed+1, ...), so a
// failure printed as seed S reproduces exactly with `-fuzz 1 -seed S`.
type FuzzConfig struct {
	// Profiles cycle per seed (seed S runs Profiles[S % len]); default
	// Meet, Teams, Zoom so every VCA sees a share of the space.
	Profiles []*vca.Profile
	// N is how many seeds to replay.
	N int
	// Seed is the first scenario seed.
	Seed int64
	// Participants/Regions/InterMbps/Dur describe the harness call
	// (defaults 8 / 2 / 10 / 45s).
	Participants int
	Regions      int
	InterMbps    float64
	Dur          time.Duration
	// Parallel is the trial parallelism; 0 = package default.
	Parallel int
	// Shards runs every replay region-sharded (<= 1 keeps the
	// sequential engine); the harness asserts its invariants per shard.
	Shards int
	// Recovery enables packet-level loss recovery on every replayed
	// call, adding the RTX-clone and NACK-queue conservation invariants.
	Recovery bool
}

func (c *FuzzConfig) defaults() {
	if len(c.Profiles) == 0 {
		c.Profiles = []*vca.Profile{vca.Meet(), vca.Teams(), vca.Zoom()}
	}
	if c.N == 0 {
		c.N = 50
	}
	if c.Participants == 0 {
		c.Participants = 8
	}
	if c.Regions == 0 {
		c.Regions = 2
	}
	if c.InterMbps == 0 {
		c.InterMbps = 10
	}
	if c.Dur == 0 {
		c.Dur = 45 * time.Second
	}
}

// FuzzFailure is one seed whose replay violated an invariant.
type FuzzFailure struct {
	Seed       int64
	Profile    string
	Scenario   string
	Events     int
	Violations []scenario.Violation
}

// FuzzResult aggregates one fuzz run.
type FuzzResult struct {
	N      int
	Events int // total events replayed across all scenarios
	// Failures lists violating seeds in seed order; empty means the whole
	// batch upheld every invariant.
	Failures []FuzzFailure
}

// RunFuzz replays N seeded generated scenarios through the invariant
// harness, fanning seeds across the worker pool. Results aggregate in
// seed order, so output is byte-identical at any Parallel.
func RunFuzz(cfg FuzzConfig) FuzzResult {
	cfg.defaults()
	type fuzzTrial struct {
		events  int
		failure *FuzzFailure
	}
	trials := runner.Map(pool(cfg.Parallel, "fuzz"), cfg.N, func(i int) fuzzTrial {
		seed := cfg.Seed + int64(i)
		// The profile is a function of the seed (not the trial index), so
		// `-fuzz 1 -seed S` replays a failure under the same VCA.
		prof := cfg.Profiles[int(uint64(seed)%uint64(len(cfg.Profiles)))]
		sc, violations := scenario.FuzzOne(seed, scenario.HarnessConfig{
			Profile:      prof,
			Participants: cfg.Participants,
			Regions:      cfg.Regions,
			InterBps:     cfg.InterMbps * 1e6,
			Dur:          cfg.Dur,
			Seed:         seed,
			Shards:       cfg.Shards,
			Recovery:     cfg.Recovery,
		})
		t := fuzzTrial{events: len(sc.Events)}
		if len(violations) > 0 {
			t.failure = &FuzzFailure{
				Seed: seed, Profile: prof.Name, Scenario: sc.Name,
				Events: len(sc.Events), Violations: violations,
			}
		}
		return t
	})

	res := FuzzResult{N: cfg.N}
	for _, t := range trials {
		res.Events += t.events
		if t.failure != nil {
			res.Failures = append(res.Failures, *t.failure)
		}
	}
	return res
}

// PrintFuzz writes a fuzz run's verdict; each failure carries the exact
// flags that reproduce it locally. recovery mirrors the run's recovery
// toggle so the reproduce line replays the same configuration.
func PrintFuzz(w io.Writer, r FuzzResult, recovery bool) {
	fmt.Fprintf(w, "# scenario fuzz: %d generated scenarios, %d events replayed\n", r.N, r.Events)
	if len(r.Failures) == 0 {
		if recovery {
			fmt.Fprintf(w, "all invariants held (event pool, ID aliasing, freeze accounting, packet pool, drop conservation, RTX/NACK conservation)\n")
		} else {
			fmt.Fprintf(w, "all invariants held (event pool, ID aliasing, freeze accounting, packet pool, drop conservation)\n")
		}
		return
	}
	repro := ""
	if recovery {
		repro = " -recovery on"
	}
	for _, f := range r.Failures {
		fmt.Fprintf(w, "FAIL seed %d (%s, %s, %d events):\n", f.Seed, f.Profile, f.Scenario, f.Events)
		for _, v := range f.Violations {
			fmt.Fprintf(w, "  %s\n", v)
		}
		fmt.Fprintf(w, "  reproduce: vcabench -fuzz 1 -seed %d%s\n", f.Seed, repro)
	}
	fmt.Fprintf(w, "%d/%d seeds violated invariants\n", len(r.Failures), r.N)
}
