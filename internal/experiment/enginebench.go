//vcalint:file-ignore determinism benchmark harness: wall-clock timing is the measurement, not simulation state

package experiment

import (
	"fmt"
	"runtime"
	"time"

	"vcalab/internal/cascade"
	"vcalab/internal/netem"
	"vcalab/internal/sim"
	"vcalab/internal/vca"
)

// EngineBenchConfig drives the engine benchmark: a full cascaded call
// measured on a single engine (the macro workload, dominated by the
// packet path), a bare-scheduler microbenchmark (one-shot event chains
// and periodic tickers with no protocol work), and a routing
// micro-workload (a dense single-SFU call on unconstrained links, so the
// SFU's per-packet fan-out — the participant-ID routing tables — is the
// entire profile).
type EngineBenchConfig struct {
	Profile      *vca.Profile
	Participants int           // default 24
	Regions      int           // default 3
	InterMbps    float64       // default 20
	Dur          time.Duration // simulated call length, default 30s
	Seed         int64
	// MicroEvents is the number of one-shot chain events driven through
	// the bare engine in the microbenchmark (default 2,000,000).
	MicroEvents int
	// RouteParticipants sizes the routing micro-workload's single-SFU
	// call (default 16); RouteDur is its simulated length (default 10s).
	RouteParticipants int
	RouteDur          time.Duration
	// Shards > 1 adds the sharded macro section: a ShardParticipants-
	// party cascaded call timed once on one engine and once region-
	// sharded Shards ways, reporting the speedup and the conservative-
	// window accounting behind it. Off by default — the headline macro
	// numbers stay single-threaded.
	Shards int
	// ShardParticipants sizes the sharded macro call (default 48,
	// spread over Regions: the scale workload the shards exist for).
	ShardParticipants int
	// Recovery adds the loss-recovery macro section: the same cascaded
	// call re-run with packet-level recovery enabled and 1% random loss
	// on every link, so the NACK/RTX/TWCC path is hot in the profile.
	// Off by default — the headline macro numbers stay recovery-free.
	Recovery bool
}

func (c *EngineBenchConfig) defaults() {
	if c.Participants == 0 {
		c.Participants = 24
	}
	if c.Regions == 0 {
		c.Regions = 3
	}
	if c.InterMbps == 0 {
		c.InterMbps = 20
	}
	if c.Dur == 0 {
		c.Dur = 30 * time.Second
	}
	if c.MicroEvents == 0 {
		c.MicroEvents = 2_000_000
	}
	if c.RouteParticipants == 0 {
		c.RouteParticipants = 16
	}
	if c.RouteDur == 0 {
		c.RouteDur = 10 * time.Second
	}
	if c.ShardParticipants == 0 {
		c.ShardParticipants = 48
	}
}

// EngineBenchResult reports the engine's throughput and allocation
// behaviour. Macro figures come from the cascaded-call workload; micro
// figures isolate the scheduler itself.
type EngineBenchResult struct {
	Events                  uint64  `json:"events"`
	WallSeconds             float64 `json:"wall_seconds"`
	EventsPerSecond         float64 `json:"events_per_second"`
	AllocsPerEvent          float64 `json:"allocs_per_event"`
	BytesPerEvent           float64 `json:"bytes_per_event"`
	SimSecondsPerWallSecond float64 `json:"sim_seconds_per_wall_second"`

	MicroEventsPerSecond float64 `json:"micro_events_per_second"`
	MicroAllocsPerEvent  float64 `json:"micro_allocs_per_event"`

	RouteEventsPerSecond float64 `json:"route_events_per_second"`
	RouteAllocsPerEvent  float64 `json:"route_allocs_per_event"`

	// Previously-buried internals of the macro run, surfaced for the
	// observability layer: the scheduler's pooled-event high-water mark,
	// the share of insertions the timer wheel absorbed, and the deepest
	// queue / total drops across the topology's links.
	EventHighWater        int     `json:"event_high_water"`
	WheelInsertRatio      float64 `json:"wheel_insert_ratio"`
	MaxLinkQueueHighWater int     `json:"max_link_queue_high_water_bytes"`
	LinkDrops             uint64  `json:"link_drops"`

	// Sharded reports the region-sharded macro section (nil unless the
	// bench ran with Shards > 1): the ShardParticipants-party cascaded
	// call on one engine vs region-sharded, with per-shard accounting.
	Sharded *ShardedBenchResult `json:"sharded,omitempty"`

	// Recovery reports the loss-recovery macro section (nil unless the
	// bench ran with Recovery): the macro call with NACK/RTX, jitter
	// buffers and TWCC enabled under 1% per-link random loss. Its alloc
	// figure is informational — the 0.1 allocs/event -check budget gates
	// the recovery-off macro above, since RTX clone copies are pooled
	// but NACK/TWCC control traffic is not on the zero-alloc path.
	Recovery *RecoveryBenchResult `json:"recovery,omitempty"`
}

// RecoveryBenchResult is the recovery-enabled macro workload: the event
// throughput cost of the loss-recovery machinery, plus the NACK/RTX
// counters that prove the path was actually exercised.
type RecoveryBenchResult struct {
	LossPct         float64 `json:"loss_pct"`
	Events          uint64  `json:"events"`
	WallSeconds     float64 `json:"wall_seconds"`
	EventsPerSecond float64 `json:"events_per_second"`
	AllocsPerEvent  float64 `json:"allocs_per_event"`
	NackedSeqs      uint64  `json:"nacked_seqs"`
	Retransmissions uint64  `json:"retransmissions"`
}

// ShardedBenchResult compares one cascaded-call workload executed
// sequentially and region-sharded, and surfaces the conservative-window
// engine's per-shard counters.
type ShardedBenchResult struct {
	Shards       int `json:"shards"`
	Participants int `json:"participants"`
	// GOMAXPROCS records the cores the shard goroutines could actually
	// spread over — on a single-core host the sharded run measures pure
	// synchronization overhead, not speedup, and must be read as such.
	GOMAXPROCS int `json:"gomaxprocs"`

	SeqEvents          uint64  `json:"seq_events"`
	SeqWallSeconds     float64 `json:"seq_wall_seconds"`
	SeqEventsPerSecond float64 `json:"seq_events_per_second"`

	// Events sums the control and shard engines' executed events; it
	// must equal SeqEvents — the sharded run executes the same event
	// set — and OutputMatches additionally compares the topologies'
	// delivered/dropped byte counters between the two runs.
	Events          uint64  `json:"events"`
	WallSeconds     float64 `json:"wall_seconds"`
	EventsPerSecond float64 `json:"events_per_second"`
	Speedup         float64 `json:"speedup"`
	OutputMatches   bool    `json:"output_matches_sequential"`

	// Windows is the number of conservative synchronization windows;
	// ShardEventsPerSecond is each shard's throughput over its busy
	// time; ShardBarrierWaitFrac is the share of the run each shard
	// spent parked at window barriers; MailboxHighWater is the deepest
	// cross-shard mailbox backlog observed between drains.
	Windows              uint64    `json:"windows"`
	ShardEventsPerSecond []float64 `json:"shard_events_per_second"`
	ShardBarrierWaitFrac []float64 `json:"shard_barrier_wait_frac"`
	MailboxHighWater     int       `json:"mailbox_high_water"`
}

// RunEngineBench measures the simulation engine on one cascaded call plus
// a scheduler microbenchmark. It is single-threaded by design: the numbers
// characterize one engine/core, independent of sweep parallelism.
func RunEngineBench(cfg EngineBenchConfig) EngineBenchResult {
	cfg.defaults()
	var res EngineBenchResult

	// --- macro: one cascaded call on one engine ---
	eng := sim.New(cfg.Seed)
	topo := benchTopology(&cfg, cfg.Participants)
	mesh := cascade.Build(eng, topo)
	call := mesh.NewCall(cfg.Profile, vca.CallOptions{Seed: cfg.Seed})

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	call.Start()
	eng.RunUntil(cfg.Dur)
	call.Stop()
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)

	res.Events = eng.Processed()
	res.WallSeconds = wall.Seconds()
	if wall > 0 {
		res.EventsPerSecond = float64(res.Events) / wall.Seconds()
		res.SimSecondsPerWallSecond = cfg.Dur.Seconds() / wall.Seconds()
	}
	if res.Events > 0 {
		res.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(res.Events)
		res.BytesPerEvent = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(res.Events)
	}
	res.EventHighWater = eng.LiveHighWater()
	if wheel, heap := eng.SchedulerInserts(); wheel+heap > 0 {
		res.WheelInsertRatio = float64(wheel) / float64(wheel+heap)
	}
	for _, l := range mesh.Links() {
		if hw := l.QueueHighWater(); hw > res.MaxLinkQueueHighWater {
			res.MaxLinkQueueHighWater = hw
		}
		res.LinkDrops += l.Drops
	}

	// --- micro: bare scheduler, no protocol machinery ---
	me := sim.New(cfg.Seed)
	remaining := cfg.MicroEvents
	var chain func()
	chain = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		me.Schedule(time.Duration(remaining%977)*time.Microsecond, chain)
	}
	// 64 concurrent chains emulate in-flight packets; 16 tickers emulate
	// the periodic media/feedback loops.
	for i := 0; i < 64; i++ {
		me.Schedule(time.Duration(i)*time.Microsecond, chain)
	}
	for i := 0; i < 16; i++ {
		me.Every(time.Duration(i+1)*10*time.Millisecond, func() {})
	}
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start = time.Now()
	for remaining > 0 && me.Step() {
	}
	microWall := time.Since(start)
	runtime.ReadMemStats(&m1)
	if ev := me.Processed(); ev > 0 {
		res.MicroEventsPerSecond = float64(ev) / microWall.Seconds()
		res.MicroAllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(ev)
	}

	// --- routing micro: dense single-SFU fan-out, unconstrained links ---
	// With no serialization or queueing, almost every event is a packet
	// arrival or departure, and the SFU's forward path (participant-ID
	// table lookups, fan-out, per-leg rewrite) dominates the profile —
	// the workload the dense routing tables exist for. Meet exercises the
	// richest path (simulcast selection + rate tracking + allocation).
	re := sim.New(cfg.Seed)
	rt := netem.NewRouter("rt")
	sfuHost := netem.NewHost(re, "sfu")
	netem.Attach(re, sfuHost, rt, netem.LinkConfig{Delay: time.Millisecond})
	var hosts []*netem.Host
	for i := 0; i < cfg.RouteParticipants; i++ {
		h := netem.NewHost(re, fmt.Sprintf("c%d", i+1))
		netem.Attach(re, h, rt, netem.LinkConfig{Delay: time.Millisecond})
		hosts = append(hosts, h)
	}
	routeCall := vca.NewCall(re, vca.Meet(), sfuHost, hosts, vca.CallOptions{Seed: cfg.Seed})
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start = time.Now()
	routeCall.Start()
	re.RunUntil(cfg.RouteDur)
	routeCall.Stop()
	routeWall := time.Since(start)
	runtime.ReadMemStats(&m1)
	if ev := re.Processed(); ev > 0 {
		res.RouteEventsPerSecond = float64(ev) / routeWall.Seconds()
		res.RouteAllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(ev)
	}

	if cfg.Shards > 1 {
		res.Sharded = runShardedBench(cfg)
	}
	if cfg.Recovery {
		res.Recovery = runRecoveryBench(cfg)
	}
	return res
}

// runRecoveryBench times the macro cascaded call with loss recovery
// enabled and 1% random loss on every link of the topology, so the
// jitter-buffer, NACK and retransmission paths dominate alongside the
// regular packet path.
func runRecoveryBench(cfg EngineBenchConfig) *RecoveryBenchResult {
	const lossPct = 1.0
	eng := sim.New(cfg.Seed)
	mesh := cascade.Build(eng, benchTopology(&cfg, cfg.Participants))
	call := mesh.NewCall(cfg.Profile, vca.CallOptions{Seed: cfg.Seed, Recovery: true})
	for _, l := range mesh.Links() {
		l.SetImpairment(lossPct/100, 0)
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	call.Start()
	eng.RunUntil(cfg.Dur)
	call.Stop()
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)

	rb := &RecoveryBenchResult{LossPct: lossPct, Events: eng.Processed(), WallSeconds: wall.Seconds()}
	if wall > 0 {
		rb.EventsPerSecond = float64(rb.Events) / wall.Seconds()
	}
	if rb.Events > 0 {
		rb.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(rb.Events)
	}
	rb.NackedSeqs, rb.Retransmissions = call.NackRTXTotals()
	return rb
}

// benchTopology builds the n-participant cascade the bench workloads
// share.
func benchTopology(cfg *EngineBenchConfig, n int) cascade.Topology {
	assign := cascade.Assign(n, cfg.Regions)
	topo := cascade.Topology{
		Default: netem.LinkConfig{RateBps: cfg.InterMbps * 1e6, Delay: cascade.DefaultInterDelay},
	}
	for r := 0; r < cfg.Regions; r++ {
		topo.Regions = append(topo.Regions, cascade.Region{
			Name: fmt.Sprintf("r%d", r), Clients: assign[r],
		})
	}
	return topo
}

// benchFingerprint reduces a finished trial's observable outcome to the
// topology-wide delivery counters — enough to flag a sharded run that
// diverged from the sequential one (the byte-level identity is pinned by
// the package tests; the bench cross-checks every run it times).
func benchFingerprint(mesh *cascade.Mesh) (delivered, dropped uint64) {
	for _, l := range mesh.Links() {
		delivered += l.DeliveredBytes
		dropped += l.Drops
	}
	return delivered, dropped
}

// runShardedBench times the ShardParticipants-party cascaded call once
// sequentially and once region-sharded, on identical seeds.
func runShardedBench(cfg EngineBenchConfig) *ShardedBenchResult {
	topo := benchTopology(&cfg, cfg.ShardParticipants)
	plan := cascade.PlanShards(topo, cfg.Shards)
	if plan.NumShards <= 1 {
		return nil // no positive cross-shard delay floor: nothing to time
	}
	sb := &ShardedBenchResult{
		Shards: plan.NumShards, Participants: cfg.ShardParticipants,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	eng := sim.New(cfg.Seed)
	mesh := cascade.Build(eng, topo)
	call := mesh.NewCall(cfg.Profile, vca.CallOptions{Seed: cfg.Seed})
	start := time.Now()
	call.Start()
	eng.RunUntil(cfg.Dur)
	call.Stop()
	seqWall := time.Since(start)
	sb.SeqEvents = eng.Processed()
	sb.SeqWallSeconds = seqWall.Seconds()
	if seqWall > 0 {
		sb.SeqEventsPerSecond = float64(sb.SeqEvents) / seqWall.Seconds()
	}
	seqDelivered, seqDropped := benchFingerprint(mesh)

	sm := cascade.BuildSharded(cfg.Seed, topo, plan)
	defer sm.Group.Close()
	shCall := sm.NewCall(cfg.Profile, vca.CallOptions{Seed: cfg.Seed})
	start = time.Now()
	shCall.Start()
	sm.Group.RunUntil(cfg.Dur)
	shCall.Stop()
	wall := time.Since(start)

	sb.Events = sm.Eng.Processed()
	for _, se := range sm.ShardEngines {
		sb.Events += se.Processed()
	}
	sb.WallSeconds = wall.Seconds()
	if wall > 0 {
		sb.EventsPerSecond = float64(sb.Events) / wall.Seconds()
	}
	if sb.WallSeconds > 0 && sb.SeqWallSeconds > 0 {
		sb.Speedup = sb.SeqWallSeconds / sb.WallSeconds
	}
	delivered, dropped := benchFingerprint(sm.Mesh)
	sb.OutputMatches = sb.Events == sb.SeqEvents &&
		delivered == seqDelivered && dropped == seqDropped

	st := sm.Group.Stats()
	sb.Windows = st.Windows
	sb.MailboxHighWater = st.MailboxHighWater
	sb.ShardBarrierWaitFrac = st.ShardBarrierWaitFrac
	for k, n := range st.ShardProcessed {
		eps := 0.0
		if k < len(st.ShardBusySeconds) && st.ShardBusySeconds[k] > 0 {
			eps = float64(n) / st.ShardBusySeconds[k]
		}
		sb.ShardEventsPerSecond = append(sb.ShardEventsPerSecond, eps)
	}
	return sb
}
