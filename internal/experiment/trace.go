package experiment

import (
	"time"

	"vcalab/internal/runner"
	"vcalab/internal/sim"
	"vcalab/internal/stats"
	"vcalab/internal/vca"
)

// TraceStep is one segment of a time-varying bandwidth profile. The §4
// disruption experiment is the two-step special case; general traces let
// vcalab replay measured access-network behaviour (e.g. an LTE drive
// trace) against any VCA — the "other network profiles that represent
// other contexts, such as WiFi and cellular" the paper's §8 points to.
type TraceStep struct {
	At      time.Duration
	UpBps   float64 // 0 = unconstrained
	DownBps float64
}

// BandwidthTrace is an ordered sequence of steps.
type BandwidthTrace []TraceStep

// Apply schedules the trace's re-shaping events onto the lab.
func (tr BandwidthTrace) Apply(eng *sim.Engine, lab *Lab) {
	for _, step := range tr {
		step := step
		eng.At(step.At, func() {
			lab.SetUplink(step.UpBps)
			lab.SetDownlink(step.DownBps)
		})
	}
}

// TraceResult summarizes one VCA's ride through a bandwidth trace.
type TraceResult struct {
	Profile string

	Up, Down    stats.Series // C1 bitrates, 1 s bins
	FreezeRatio float64
	FIRCount    int
	// MeanUtilization is mean sent rate divided by mean uplink capacity
	// over constrained periods (how well the VCA tracks a moving target).
	MeanUtilization float64
}

// RunTrace plays a bandwidth trace under a 2-party call. It is a single
// trial; use RunTraces to replay one trace against several profiles in
// parallel.
func RunTrace(prof *vca.Profile, trace BandwidthTrace, dur time.Duration, seed int64) TraceResult {
	return runTraceTrial(prof, trace, dur, seed)
}

// RunTraces replays a trace against each profile, one parallel trial per
// profile (parallel: 0 = package default, 1 = sequential, like the
// Parallel field on the config-driven runners). Per-profile seeds are
// derived from (seed, profile index) so results are independent of worker
// scheduling; the result slice follows input order.
func RunTraces(profs []*vca.Profile, trace BandwidthTrace, dur time.Duration, seed int64, parallel int) []TraceResult {
	return runner.Map(pool(parallel, "trace"), len(profs), func(i int) TraceResult {
		return runTraceTrial(profs[i], trace, dur, runner.Seed(seed, i))
	})
}

// runTraceTrial is the pure single-trial body.
func runTraceTrial(prof *vca.Profile, trace BandwidthTrace, dur time.Duration, seed int64) TraceResult {
	eng := sim.New(seed)
	call, lab := twoPartyCall(eng, prof, 0, 0, vca.CallOptions{Seed: seed})
	trace.Apply(eng, lab)
	call.Start()
	eng.RunUntil(dur)
	call.Stop()

	res := TraceResult{
		Profile:     prof.Name,
		Up:          call.C1().UpMeter.RateMbps(),
		Down:        call.C1().DownMeter.RateMbps(),
		FreezeRatio: call.Clients[1].Receiver(call.C1().Name).FreezeRatio(),
		FIRCount:    call.C1().FIRsForMyVideo,
	}
	// Utilization over constrained uplink periods.
	var sentSum, capSum float64
	for i, t := range res.Up.Times {
		capBps := capacityAt(trace, t)
		if capBps <= 0 || capBps > 5e6 {
			continue // unconstrained or effectively so
		}
		sentSum += res.Up.Values[i] * 1e6
		capSum += capBps
	}
	if capSum > 0 {
		res.MeanUtilization = sentSum / capSum
	}
	return res
}

func capacityAt(trace BandwidthTrace, t time.Duration) float64 {
	capBps := 0.0
	for _, step := range trace {
		if step.At <= t {
			capBps = step.UpBps
		}
	}
	return capBps
}
