package experiment

import (
	"fmt"
	"time"

	"vcalab/internal/cascade"
	"vcalab/internal/netem"
	"vcalab/internal/runner"
	"vcalab/internal/sim"
	"vcalab/internal/stats"
	"vcalab/internal/vca"
)

// ScaleConfig describes the large-call cascade sweep: participants spread
// round-robin across regions, one SFU per region, a full relay mesh
// between them, and the inter-region capacity as the swept constraint.
// This is the workload the paper's two-laptop lab could not reach (§8):
// dozens of participants exercising the §4.2 server behaviours across
// geo-distributed relays.
type ScaleConfig struct {
	Profile *vca.Profile
	// Participants are the call sizes to sweep (total across regions).
	Participants []int
	// Regions is the number of SFU sites (default 3).
	Regions int
	// InterMbps sweeps the capacity of every directed inter-region link.
	InterMbps []float64
	// InterDelay is the one-way inter-region delay (default 40 ms).
	InterDelay time.Duration
	Reps       int
	Dur        time.Duration
	Warmup     time.Duration
	Seed       int64
	// Parallel is the trial parallelism; 0 = package default, 1 =
	// sequential. Output is identical for every value.
	Parallel int
	// Shards selects intra-trial region-sharded parallel execution
	// (<= 1 runs each trial on one engine). Output is identical for
	// every value: the sharded engine reproduces the sequential event
	// order exactly. Compounds with Parallel.
	Shards int
	// Recovery enables packet-level loss recovery (NACK/RTX, jitter
	// buffer, TWCC feedback) on every call; see DESIGN.md §13.
	Recovery bool
}

func (c *ScaleConfig) defaults() {
	if len(c.Participants) == 0 {
		c.Participants = []int{12, 24, 48}
	}
	if c.Regions == 0 {
		c.Regions = 3
	}
	if len(c.InterMbps) == 0 {
		c.InterMbps = []float64{20}
	}
	if c.InterDelay == 0 {
		c.InterDelay = cascade.DefaultInterDelay
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.Dur == 0 {
		c.Dur = 60 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * time.Second
	}
}

// ScaleResult is one (participants, inter-region capacity) cell of the
// cascade sweep.
type ScaleResult struct {
	Profile   string
	N         int
	Regions   int
	InterMbps float64

	// RegionDownMbps is the per-region mean received bitrate per client.
	RegionDownMbps []stats.Summary
	// FreezeRatio is the mean freeze ratio across every (receiver,
	// displayed origin) pair.
	FreezeRatio stats.Summary
	// RelayUtilMean / RelayUtilMax summarize delivered-byte utilization
	// across the directed inter-region links (post-warmup).
	RelayUtilMean, RelayUtilMax stats.Summary
	// LatP50Ms/LatP95Ms/LatP99Ms are end-to-end frame latency percentiles
	// (origin capture to receiver arrival, across all clients) in ms.
	LatP50Ms, LatP95Ms, LatP99Ms stats.Summary
}

// scaleTrial is one repetition's raw measurements.
type scaleTrial struct {
	regionDown          []float64
	freeze              float64
	utilMean, utilMax   float64
	p50Ms, p95Ms, p99Ms float64
}

// runTrial executes one (n, capacity, repetition) cell on a fresh engine.
func (cfg *ScaleConfig) runTrial(n int, interMbps float64, rep int) scaleTrial {
	seed := cfg.Seed + int64(rep)*86243 + int64(n)*613 + int64(interMbps*1000)

	assign := cascade.Assign(n, cfg.Regions)
	topo := cascade.Topology{
		Default: netem.LinkConfig{RateBps: interMbps * 1e6, Delay: cfg.InterDelay},
	}
	for r := 0; r < cfg.Regions; r++ {
		topo.Regions = append(topo.Regions, cascade.Region{
			Name: fmt.Sprintf("r%d", r), Clients: assign[r],
		})
	}
	var (
		mesh *cascade.Mesh
		sm   *cascade.ShardedMesh
		eng  *sim.Engine
		call *vca.Call
	)
	if plan := cascade.PlanShards(topo, cfg.Shards); plan.NumShards > 1 {
		sm = cascade.BuildSharded(seed, topo, plan)
		defer sm.Group.Close()
		mesh, eng = sm.Mesh, sm.Eng
		call = sm.NewCall(cfg.Profile, vca.CallOptions{Seed: seed, Recovery: cfg.Recovery})
	} else {
		eng = sim.New(seed)
		mesh = cascade.Build(eng, topo)
		call = mesh.NewCall(cfg.Profile, vca.CallOptions{Seed: seed, Recovery: cfg.Recovery})
	}

	// Snapshot inter-link counters at warmup so utilization covers the
	// steady state only. In a sharded run this is a control-engine
	// global: it executes at a window barrier with every shard parked and
	// advanced to the snapshot instant, so the counters it reads are
	// exactly the sequential run's.
	links := mesh.InterLinks()
	startBytes := make([]uint64, len(links))
	eng.Schedule(cfg.Warmup, func() {
		for i, l := range links {
			startBytes[i] = l.DeliveredBytes
		}
	})

	call.Start()
	if sm != nil {
		sm.Group.RunUntil(cfg.Dur)
	} else {
		eng.RunUntil(cfg.Dur)
	}
	call.Stop()

	var t scaleTrial
	span := (cfg.Dur - cfg.Warmup).Seconds()
	var utilSum float64
	for i, l := range links {
		util := 0.0
		if l.Rate() > 0 && span > 0 {
			util = float64(l.DeliveredBytes-startBytes[i]) * 8 / (l.Rate() * span)
		}
		utilSum += util
		if util > t.utilMax {
			t.utilMax = util
		}
	}
	if len(links) > 0 {
		t.utilMean = utilSum / float64(len(links))
	}

	var freezeSum float64
	var freezeN int
	var lats []float64
	flat := 0 // call.Clients is flattened in mesh.Clients order
	for _, hosts := range mesh.Clients {
		var down float64
		for range hosts {
			cl := call.Clients[flat]
			flat++
			down += cl.DownMeter.MeanRateMbps(cfg.Warmup, cfg.Dur)
			for _, origin := range cl.Origins() {
				r := cl.Receiver(origin)
				if r.DisplayedFrames() > 0 {
					freezeSum += r.FreezeRatio()
					freezeN++
				}
			}
			for _, d := range cl.FrameLatencies(cfg.Warmup) {
				lats = append(lats, d.Seconds()*1000)
			}
		}
		if len(hosts) > 0 {
			down /= float64(len(hosts))
		}
		t.regionDown = append(t.regionDown, down)
	}
	if freezeN > 0 {
		t.freeze = freezeSum / float64(freezeN)
	}
	if lp := stats.SortedPercentiles(lats, 50, 95, 99); lp != nil {
		t.p50Ms, t.p95Ms, t.p99Ms = lp[0], lp[1], lp[2]
	}
	return t
}

// RunScale executes the cascade sweep and returns one result per
// (participants, inter-capacity) condition. Trials fan out through the
// parallel sweep engine; aggregation happens over the ordered results, so
// output does not depend on cfg.Parallel.
func RunScale(cfg ScaleConfig) []ScaleResult {
	cfg.defaults()
	type cond struct {
		n     int
		inter float64
	}
	var conds []cond
	for _, n := range cfg.Participants {
		for _, c := range cfg.InterMbps {
			conds = append(conds, cond{n, c})
		}
	}
	trials := runner.Map(pool(cfg.Parallel, "scale "+cfg.Profile.Name),
		len(conds)*cfg.Reps, func(i int) scaleTrial {
			cd := conds[i/cfg.Reps]
			return cfg.runTrial(cd.n, cd.inter, i%cfg.Reps)
		})

	var out []ScaleResult
	for ci, cd := range conds {
		res := ScaleResult{
			Profile: cfg.Profile.Name, N: cd.n, Regions: cfg.Regions, InterMbps: cd.inter,
		}
		perRegion := make([][]float64, cfg.Regions)
		var freezes, utilMeans, utilMaxes, p50s, p95s, p99s []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			t := trials[ci*cfg.Reps+rep]
			for r, d := range t.regionDown {
				perRegion[r] = append(perRegion[r], d)
			}
			freezes = append(freezes, t.freeze)
			utilMeans = append(utilMeans, t.utilMean)
			utilMaxes = append(utilMaxes, t.utilMax)
			p50s = append(p50s, t.p50Ms)
			p95s = append(p95s, t.p95Ms)
			p99s = append(p99s, t.p99Ms)
		}
		for r := 0; r < cfg.Regions; r++ {
			res.RegionDownMbps = append(res.RegionDownMbps, stats.Summarize(perRegion[r]))
		}
		res.FreezeRatio = stats.Summarize(freezes)
		res.RelayUtilMean = stats.Summarize(utilMeans)
		res.RelayUtilMax = stats.Summarize(utilMaxes)
		res.LatP50Ms = stats.Summarize(p50s)
		res.LatP95Ms = stats.Summarize(p95s)
		res.LatP99Ms = stats.Summarize(p99s)
		out = append(out, res)
	}
	return out
}
