package experiment

import (
	"fmt"
	"io"

	"vcalab/internal/vca"
)

// PrintStatic writes Fig 1/2/3-style rows for one sweep.
func PrintStatic(w io.Writer, rs []StaticResult) {
	if len(rs) == 0 {
		return
	}
	fmt.Fprintf(w, "# %s, %s shaped — median bitrate / encode params / freezes\n",
		rs[0].Profile, rs[0].Dir)
	fmt.Fprintf(w, "%8s %14s %6s %6s %6s %8s %6s\n",
		"cap", "median(Mbps)", "fps", "qp", "width", "freeze", "FIR")
	for _, r := range rs {
		capLabel := "inf"
		if r.CapacityMbps > 0 {
			capLabel = fmt.Sprintf("%.1f", r.CapacityMbps)
		}
		p := r.Out
		if r.Dir == Downlink {
			p = r.In
		}
		fmt.Fprintf(w, "%8s %7.2f ±%5.2f %6.1f %6.1f %6d %8.3f %6.1f\n",
			capLabel, r.MedianMbps.Mean, r.MedianMbps.CI90,
			p.FPS, p.QP, p.Width,
			r.FreezeRatio.Mean, r.FIRCount.Mean)
	}
}

// PrintTable2 writes the unconstrained-utilization table (Table 2).
func PrintTable2(w io.Writer, rs []StaticResult) {
	fmt.Fprintln(w, "# Table 2: unconstrained network utilization (Mbps)")
	fmt.Fprintf(w, "%-14s %10s %10s\n", "VCA", "Upstream", "Downstream")
	for _, r := range rs {
		fmt.Fprintf(w, "%-14s %10.2f %10.2f\n", r.Profile, r.MeanUp.Mean, r.MeanDown.Mean)
	}
}

// PrintDisruption writes a Fig 4b/5b-style row.
func PrintDisruption(w io.Writer, r DisruptionResult) {
	fmt.Fprintf(w, "%-14s %-8s drop to %.2f Mbps: TTR %6.1fs ±%.1f (recovered %d/%d)\n",
		r.Profile, r.Dir, r.LevelMbps, r.TTR.Mean, r.TTR.CI90, r.Recovered, r.TTR.N)
}

// PrintDisruptionTrace writes the Fig 4a/5a time series as CSV rows.
func PrintDisruptionTrace(w io.Writer, r DisruptionResult) {
	fmt.Fprintf(w, "# %s %s disruption to %.2f Mbps — t(s),mbps,far_up_mbps\n",
		r.Profile, r.Dir, r.LevelMbps)
	for i := range r.Series.Times {
		far := 0.0
		if i < r.FarSeries.Len() {
			far = r.FarSeries.Values[i]
		}
		fmt.Fprintf(w, "%.0f,%.3f,%.3f\n", r.Series.Times[i].Seconds(), r.Series.Values[i], far)
	}
}

// PrintCompetition writes a Fig 8/10/12-style row.
func PrintCompetition(w io.Writer, r CompetitionResult) {
	fmt.Fprintf(w, "%-32s incumbent share: up %.2f ±%.2f  down %.2f ±%.2f\n",
		CompetitionLabel(r), r.ShareUp.Mean, r.ShareUp.CI90, r.ShareDown.Mean, r.ShareDown.CI90)
	if r.Competitor == "netflix" && r.NetflixConns.N > 0 {
		fmt.Fprintf(w, "%-32s netflix: %.0f connections, peak %.0f parallel\n",
			"", r.NetflixConns.Mean, r.NetflixPeakParallel.Mean)
	}
}

// PrintScale writes one row per cascade-sweep cell: per-region received
// bitrate, freeze ratio, relay-link utilization and end-to-end frame
// latency percentiles.
func PrintScale(w io.Writer, rs []ScaleResult) {
	if len(rs) == 0 {
		return
	}
	fmt.Fprintf(w, "# %s cascaded scale — %d regions: down/region, freezes, relay util, e2e frame latency\n",
		rs[0].Profile, rs[0].Regions)
	// Each region's data cell is 12 visible chars ("%6.2f ±%1.1f ").
	fmt.Fprintf(w, "%4s %7s %-*s %8s %13s %23s\n",
		"n", "inter", 12*rs[0].Regions, "down(Mbps)/region", "freeze",
		"util mean/max", "lat ms p50/p95/p99")
	for _, r := range rs {
		fmt.Fprintf(w, "%4d %6.1fM ", r.N, r.InterMbps)
		for _, d := range r.RegionDownMbps {
			fmt.Fprintf(w, "%6.2f ±%1.1f ", d.Mean, d.CI90)
		}
		fmt.Fprintf(w, "%8.3f %6.2f /%5.2f %7.1f/%7.1f/%7.1f\n",
			r.FreezeRatio.Mean, r.RelayUtilMean.Mean, r.RelayUtilMax.Mean,
			r.LatP50Ms.Mean, r.LatP95Ms.Mean, r.LatP99Ms.Mean)
	}
}

// PrintModality writes Fig 15-style rows.
func PrintModality(w io.Writer, rs []ModalityResult) {
	if len(rs) == 0 {
		return
	}
	mode := "gallery"
	if rs[0].Mode == vca.Speaker {
		mode = "speaker"
	}
	fmt.Fprintf(w, "# %s, %s mode — C1 utilization vs participants\n", rs[0].Profile, mode)
	fmt.Fprintf(w, "%4s %12s %12s\n", "n", "up(Mbps)", "down(Mbps)")
	for _, r := range rs {
		fmt.Fprintf(w, "%4d %6.2f ±%4.2f %6.2f ±%4.2f\n",
			r.N, r.UpMbps.Mean, r.UpMbps.CI90, r.DownMbps.Mean, r.DownMbps.CI90)
	}
}
