package experiment

import (
	"runtime"
	"sync"

	"vcalab/internal/runner"
)

// The experiment runners fan their independent trials out through
// internal/runner. Each config struct carries a Parallel knob; zero falls
// back to the package default set here (GOMAXPROCS unless overridden via
// SetDefaultParallelism, e.g. by vcabench's -parallel flag).

var (
	poolMu             sync.Mutex
	defaultParallelism int
	progressFn         func(label string, done, total int)
)

// SetDefaultParallelism sets the trial parallelism used when a config's
// Parallel field is zero. n <= 0 restores the GOMAXPROCS default.
func SetDefaultParallelism(n int) {
	poolMu.Lock()
	defer poolMu.Unlock()
	defaultParallelism = n
}

// DefaultParallelism reports the effective default trial parallelism.
func DefaultParallelism() int {
	poolMu.Lock()
	defer poolMu.Unlock()
	if defaultParallelism > 0 {
		return defaultParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// SetProgress installs a hook called after each trial of every sweep with
// a condition label (e.g. "static meet/uplink") and the done/total trial
// counts. Calls are serialized; nil disables reporting.
func SetProgress(fn func(label string, done, total int)) {
	poolMu.Lock()
	defer poolMu.Unlock()
	progressFn = fn
}

// pool builds the runner for one sweep. parallel <= 0 uses the package
// default.
func pool(parallel int, label string) *runner.Runner {
	poolMu.Lock()
	fn := progressFn
	poolMu.Unlock()
	if parallel <= 0 {
		parallel = DefaultParallelism()
	}
	r := runner.New(parallel)
	if fn != nil {
		r.OnProgress = func(done, total int) { fn(label, done, total) }
	}
	return r
}
