package experiment

import (
	"strings"
	"testing"
	"time"

	"vcalab/internal/scenario"
	"vcalab/internal/vca"
)

// dynTestConfig is the small grid the determinism and behaviour tests
// share: 8 participants over 2 regions riding the churn storm.
func dynTestConfig(p *vca.Profile) DynamicConfig {
	return DynamicConfig{
		Profile:      p,
		Scenario:     scenario.ChurnStorm(8),
		Participants: 8,
		Regions:      2,
		InterMbps:    10,
		Reps:         2,
		Dur:          70 * time.Second,
		Warmup:       10 * time.Second,
		Seed:         5,
	}
}

// TestDynamicDeterministicAcrossParallelism is the acceptance gate: the
// printed RunDynamic output must be byte-identical at -parallel 1 and 4.
func TestDynamicDeterministicAcrossParallelism(t *testing.T) {
	out := func(par int) string {
		cfg := dynTestConfig(vca.Meet())
		cfg.Parallel = par
		var buf strings.Builder
		PrintDynamic(&buf, RunDynamic(cfg))
		return buf.String()
	}
	seq, par := out(1), out(4)
	if seq != par {
		t.Errorf("dynamic output differs across parallelism:\n-- parallel 1 --\n%s-- parallel 4 --\n%s", seq, par)
	}
	if !strings.Contains(seq, "churn-storm") {
		t.Errorf("output does not name the scenario:\n%s", seq)
	}
}

// TestDynamicReportsRecovery checks the recovery machinery end to end on
// the capacity-cliff scenario: the cliff depresses C1's download, and the
// restore event recovers within the run in at least one repetition.
func TestDynamicReportsRecovery(t *testing.T) {
	cfg := dynTestConfig(vca.Teams())
	cfg.Scenario = scenario.CapacityCliff(1e6, 10e6)
	cfg.Dur = 80 * time.Second
	r := RunDynamic(cfg)
	if len(r.Events) != 1 {
		t.Fatalf("capacity-cliff reports %d recovery events, want 1", len(r.Events))
	}
	ev := r.Events[0]
	if ev.Label != "cliff-restored" {
		t.Errorf("recovery event label %q, want cliff-restored", ev.Label)
	}
	if ev.Recovered == 0 {
		t.Error("no repetition recovered after the cliff restore")
	}
	if ev.Recovered > 0 && ev.TTRSec.Mean <= 0 {
		t.Errorf("recovered with non-positive mean TTR %v", ev.TTRSec.Mean)
	}
	if r.DownMbps.Mean <= 0 || r.LatP50Ms.Mean <= 0 {
		t.Errorf("empty aggregate metrics: down %v lat %v", r.DownMbps.Mean, r.LatP50Ms.Mean)
	}
}
