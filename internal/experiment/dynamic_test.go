package experiment

import (
	"strings"
	"testing"
	"time"

	"vcalab/internal/scenario"
	"vcalab/internal/vca"
)

// dynTestConfig is the small grid the determinism and behaviour tests
// share: 8 participants over 2 regions riding the churn storm.
func dynTestConfig(p *vca.Profile) DynamicConfig {
	return DynamicConfig{
		Profile:      p,
		Scenario:     scenario.ChurnStorm(8),
		Participants: 8,
		Regions:      2,
		InterMbps:    10,
		Reps:         2,
		Dur:          70 * time.Second,
		Warmup:       10 * time.Second,
		Seed:         5,
	}
}

// TestDynamicDeterministicAcrossParallelism is the acceptance gate: the
// printed RunDynamic output must be byte-identical at -parallel 1 and 4.
func TestDynamicDeterministicAcrossParallelism(t *testing.T) {
	out := func(par int) string {
		cfg := dynTestConfig(vca.Meet())
		cfg.Parallel = par
		var buf strings.Builder
		PrintDynamic(&buf, RunDynamic(cfg))
		return buf.String()
	}
	seq, par := out(1), out(4)
	if seq != par {
		t.Errorf("dynamic output differs across parallelism:\n-- parallel 1 --\n%s-- parallel 4 --\n%s", seq, par)
	}
	if !strings.Contains(seq, "churn-storm") {
		t.Errorf("output does not name the scenario:\n%s", seq)
	}
}

// TestDynamicObservedOutputUnchanged is the zero-interference gate for
// the observability layer: running the exact same dynamic condition with
// tracing + metrics capture on must leave the experiment's printed output
// byte-identical — the tracer only observes, the metrics sampler only
// reads — and the capture files themselves must be byte-identical at
// -parallel 1 and 4 (per-trial buffers flushed in rep order).
func TestDynamicObservedOutputUnchanged(t *testing.T) {
	run := func(par int, o *ObsConfig) (stdout, trace, metrics string) {
		cfg := dynTestConfig(vca.Meet())
		// The churn storm's last rejoin lands at ~56.4s; ending shortly
		// after keeps the churn events inside the ring's retained tail
		// without needing a huge (slow-to-flush) capacity.
		cfg.Dur = 60 * time.Second
		cfg.Parallel = par
		var out, tw, mw strings.Builder
		if o != nil {
			cfg.Obs, cfg.TraceW, cfg.MetricsW = o, &tw, &mw
		}
		PrintDynamic(&out, RunDynamic(cfg))
		return out.String(), tw.String(), mw.String()
	}
	// A roomier-than-default ring: packet events dominate, and this test
	// wants the late-storm churn events to survive to the flush.
	obsCfg := &ObsConfig{Trace: true, Metrics: true, Interval: time.Second, TraceCap: 1 << 18}

	plain, _, _ := run(1, nil)
	seq, seqTrace, seqMetrics := run(1, obsCfg)
	par, parTrace, parMetrics := run(4, obsCfg)

	if plain != seq {
		t.Errorf("observability changed the experiment output:\n-- off --\n%s-- on --\n%s", plain, seq)
	}
	if seq != par {
		t.Errorf("observed output differs across parallelism:\n-- parallel 1 --\n%s-- parallel 4 --\n%s", seq, par)
	}
	if seqTrace != parTrace {
		t.Error("trace file differs across parallelism")
	}
	if seqMetrics != parMetrics {
		t.Error("metrics file differs across parallelism")
	}
	for name, s := range map[string]string{"trace": seqTrace, "metrics": seqMetrics} {
		if s == "" {
			t.Errorf("%s capture is empty", name)
		}
	}
	// Both files carry one self-describing header line per repetition.
	if n := strings.Count(seqTrace, `"kind":"trial"`); n != 2 {
		t.Errorf("trace has %d trial headers, want 2 (one per rep)", n)
	}
	if !strings.Contains(seqTrace, `"kind":"churn"`) {
		t.Error("churn-storm trace records no churn events")
	}
	if !strings.Contains(seqMetrics, `"type":"outbound-rtp"`) {
		t.Error("metrics capture has no getStats outbound-rtp snapshots")
	}
	if !strings.Contains(seqMetrics, `"kind":"gauge"`) {
		t.Error("metrics capture has no gauge samples")
	}
}

// TestDynamicRegionPartitionLossRecovery is the loss-recovery acceptance
// gate at the experiment level: the region-partition scenario composed
// with sustained 3% random loss on C1's access downlink (a WAN blackout
// riding on a lossy last mile). NACK/RTX must strictly reduce the mean
// freeze ratio versus the same seeds with recovery off, and the
// recovery-enabled run must stay byte-identical across both parallelism
// axes (-parallel 1 vs 4, -shards 1 vs 2).
func TestDynamicRegionPartitionLossRecovery(t *testing.T) {
	partitionLossy := func() scenario.Scenario {
		sc := scenario.RegionPartitionAndHeal(0, 1)
		lossy := scenario.ShapeLink(time.Second,
			scenario.LinkRef{Kind: scenario.LinkClientDown, Client: "c1"},
			scenario.Shape{SetImpair: true, LossProb: 0.03})
		lossy.Label = "last-mile-loss"
		sc.Events = append([]scenario.Event{lossy}, sc.Events...)
		return sc
	}
	run := func(par, shards int, recovery bool) (DynamicResult, string) {
		cfg := dynTestConfig(vca.Meet())
		cfg.Scenario = partitionLossy()
		cfg.Parallel = par
		cfg.Shards = shards
		cfg.Recovery = recovery
		r := RunDynamic(cfg)
		var buf strings.Builder
		PrintDynamic(&buf, r)
		return r, buf.String()
	}

	off, _ := run(1, 1, false)
	on, onSeq := run(1, 1, true)
	if on.FreezeRatio.Mean >= off.FreezeRatio.Mean {
		t.Errorf("recovery-on freeze %v, want strictly below recovery-off %v",
			on.FreezeRatio.Mean, off.FreezeRatio.Mean)
	}
	if on.DownMbps.Mean <= 0 {
		t.Errorf("recovery-on call carried no traffic: down %v", on.DownMbps.Mean)
	}

	if _, onPar := run(4, 1, true); onSeq != onPar {
		t.Errorf("recovery-on output differs across parallelism:\n-- parallel 1 --\n%s-- parallel 4 --\n%s", onSeq, onPar)
	}
	if _, onSharded := run(1, 2, true); onSeq != onSharded {
		t.Errorf("recovery-on output differs across shards:\n-- shards 1 --\n%s-- shards 2 --\n%s", onSeq, onSharded)
	}
}

// TestDynamicReportsRecovery checks the recovery machinery end to end on
// the capacity-cliff scenario: the cliff depresses C1's download, and the
// restore event recovers within the run in at least one repetition.
func TestDynamicReportsRecovery(t *testing.T) {
	cfg := dynTestConfig(vca.Teams())
	cfg.Scenario = scenario.CapacityCliff(1e6, 10e6)
	cfg.Dur = 80 * time.Second
	r := RunDynamic(cfg)
	if len(r.Events) != 1 {
		t.Fatalf("capacity-cliff reports %d recovery events, want 1", len(r.Events))
	}
	ev := r.Events[0]
	if ev.Label != "cliff-restored" {
		t.Errorf("recovery event label %q, want cliff-restored", ev.Label)
	}
	if ev.Recovered == 0 {
		t.Error("no repetition recovered after the cliff restore")
	}
	if ev.Recovered > 0 && ev.TTRSec.Mean <= 0 {
		t.Errorf("recovered with non-positive mean TTR %v", ev.TTRSec.Mean)
	}
	if r.DownMbps.Mean <= 0 || r.LatP50Ms.Mean <= 0 {
		t.Errorf("empty aggregate metrics: down %v lat %v", r.DownMbps.Mean, r.LatP50Ms.Mean)
	}
}
