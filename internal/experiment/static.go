package experiment

import (
	"time"

	"vcalab/internal/codec"
	"vcalab/internal/netem"
	"vcalab/internal/runner"
	"vcalab/internal/sim"
	"vcalab/internal/stats"
	"vcalab/internal/vca"
)

// Direction selects which side of the access link is shaped.
type Direction int

// Shaping directions.
const (
	Uplink Direction = iota
	Downlink
)

func (d Direction) String() string {
	if d == Uplink {
		return "uplink"
	}
	return "downlink"
}

// StaticConfig describes one §3 sweep condition set.
type StaticConfig struct {
	Profile  *vca.Profile
	Dir      Direction
	CapsMbps []float64 // 0 = unconstrained
	Reps     int       // paper: 5
	Dur      time.Duration
	Warmup   time.Duration
	Seed     int64
	// Parallel is the trial parallelism; 0 uses the package default
	// (GOMAXPROCS), 1 forces a sequential sweep. Results are identical
	// for every value — trials are independently seeded and collected
	// in input order.
	Parallel int
}

func (c *StaticConfig) defaults() {
	if c.Reps == 0 {
		c.Reps = 5
	}
	if c.Dur == 0 {
		c.Dur = 150 * time.Second // the paper's 2.5-minute calls
	}
	if c.Warmup == 0 {
		c.Warmup = 30 * time.Second
	}
}

// StaticResult is one (VCA, direction, capacity) cell of Figs 1–3/Table 2.
type StaticResult struct {
	Profile      string
	Dir          Direction
	CapacityMbps float64

	// MedianMbps summarizes, across repetitions, the median bitrate in
	// the shaped direction (sent for uplink, received for downlink) —
	// the y-axis of Fig 1.
	MedianMbps stats.Summary
	// MeanUp / MeanDown are steady-state mean rates (Table 2).
	MeanUp, MeanDown stats.Summary

	// Out / In are median encode parameters from the WebRTC-stats
	// emulation (Fig 2): Out for the sent stream, In for the received.
	Out, In codec.EncodeParams

	// FreezeRatio is freeze time / call time at the receiver (Fig 3a).
	FreezeRatio stats.Summary
	// FIRCount is FIRs received for C1's outbound video (Fig 3b).
	FIRCount stats.Summary
}

// twoPartyCall builds the standard §2.2 topology on a fresh lab. The
// options carry the trial seed plus any per-experiment toggles (loss
// recovery for the impairment sweep).
func twoPartyCall(eng *sim.Engine, prof *vca.Profile, upBps, downBps float64, opt vca.CallOptions) (*vca.Call, *Lab) {
	lab := NewLab(eng, upBps, downBps)
	c1 := lab.ClientHost("c1")
	c2 := lab.RemoteHost("c2", RemoteDelay)
	sfu := lab.RemoteHost("sfu", SFUDelay)
	call := vca.NewCall(eng, prof, sfu, []*netem.Host{c1, c2}, opt)
	return call, lab
}

// staticTrial is one repetition's raw measurements.
type staticTrial struct {
	median, up, down, freeze, fir float64
	out, in                       codec.EncodeParams
}

// runTrial executes one (capacity, repetition) cell on a fresh engine. It
// is pure: everything it touches is derived from cfg and its arguments.
func (cfg *StaticConfig) runTrial(capMbps float64, rep int) staticTrial {
	seed := cfg.Seed + int64(rep)*104729 + int64(capMbps*1000)
	eng := sim.New(seed)
	upBps, downBps := 0.0, 0.0
	if capMbps > 0 {
		if cfg.Dir == Uplink {
			upBps = capMbps * 1e6
		} else {
			downBps = capMbps * 1e6
		}
	}
	call, _ := twoPartyCall(eng, cfg.Profile, upBps, downBps, vca.CallOptions{Seed: seed})
	call.Start()
	eng.RunUntil(cfg.Dur)
	call.Stop()

	c1 := call.C1()
	var t staticTrial
	upSeries := c1.UpMeter.RateMbps().Slice(cfg.Warmup, cfg.Dur)
	downSeries := c1.DownMeter.RateMbps().Slice(cfg.Warmup, cfg.Dur)
	if cfg.Dir == Uplink {
		t.median = stats.Median(upSeries.Values)
	} else {
		t.median = stats.Median(downSeries.Values)
	}
	t.up = c1.UpMeter.MeanRateMbps(cfg.Warmup, cfg.Dur)
	t.down = c1.DownMeter.MeanRateMbps(cfg.Warmup, cfg.Dur)
	t.freeze = c1.Receiver("c2").FreezeRatio()
	t.fir = float64(c1.FIRsForMyVideo)
	t.out = c1.Recorder.MedianOut(cfg.Warmup, cfg.Dur)
	t.in = c1.Recorder.MedianIn(cfg.Warmup, cfg.Dur)
	return t
}

// RunStatic executes the sweep and returns one result per capacity. The
// caps × reps trials run through the parallel sweep engine; aggregation
// happens per capacity over the ordered trial results, so output does not
// depend on cfg.Parallel.
func RunStatic(cfg StaticConfig) []StaticResult {
	cfg.defaults()
	trials := runner.Map(pool(cfg.Parallel, "static "+cfg.Profile.Name+"/"+cfg.Dir.String()),
		len(cfg.CapsMbps)*cfg.Reps, func(i int) staticTrial {
			return cfg.runTrial(cfg.CapsMbps[i/cfg.Reps], i%cfg.Reps)
		})

	var out []StaticResult
	for ci, capMbps := range cfg.CapsMbps {
		res := StaticResult{Profile: cfg.Profile.Name, Dir: cfg.Dir, CapacityMbps: capMbps}
		var medians, ups, downs, freezes, firs []float64
		var outP, inP []codec.EncodeParams
		for rep := 0; rep < cfg.Reps; rep++ {
			t := trials[ci*cfg.Reps+rep]
			medians = append(medians, t.median)
			ups = append(ups, t.up)
			downs = append(downs, t.down)
			freezes = append(freezes, t.freeze)
			firs = append(firs, t.fir)
			outP = append(outP, t.out)
			inP = append(inP, t.in)
		}
		res.MedianMbps = stats.Summarize(medians)
		res.MeanUp = stats.Summarize(ups)
		res.MeanDown = stats.Summarize(downs)
		res.FreezeRatio = stats.Summarize(freezes)
		res.FIRCount = stats.Summarize(firs)
		res.Out = medianParams(outP)
		res.In = medianParams(inP)
		out = append(out, res)
	}
	return out
}

func medianParams(ps []codec.EncodeParams) codec.EncodeParams {
	var fps, qp, w []float64
	for _, p := range ps {
		fps = append(fps, p.FPS)
		qp = append(qp, p.QP)
		w = append(w, float64(p.Width))
	}
	return codec.EncodeParams{
		FPS:   stats.Median(fps),
		QP:    stats.Median(qp),
		Width: int(stats.Median(w)),
	}
}

// PaperCaps is the paper's shaping grid: {0.3..1.5 step 0.1, 2, 5, 10} Mbps.
func PaperCaps() []float64 {
	caps := []float64{}
	for c := 0.3; c <= 1.51; c += 0.1 {
		caps = append(caps, float64(int(c*10+0.5))/10)
	}
	return append(caps, 2, 5, 10)
}

// Table2 runs the unconstrained-utilization measurement for a set of
// profiles (Table 2 of the paper).
func Table2(profiles []*vca.Profile, reps int, seed int64) []StaticResult {
	var out []StaticResult
	for _, p := range profiles {
		rs := RunStatic(StaticConfig{
			Profile: p, Dir: Uplink, CapsMbps: []float64{0}, Reps: reps, Seed: seed,
		})
		out = append(out, rs...)
	}
	return out
}
