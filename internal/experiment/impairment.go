package experiment

import (
	"fmt"
	"io"
	"time"

	"vcalab/internal/runner"
	"vcalab/internal/sim"
	"vcalab/internal/stats"
	"vcalab/internal/vca"
)

// ImpairmentConfig drives the extension experiment the paper lists as
// future work (§8): VCA behaviour under random loss, added latency and
// jitter on the access link — impairments a shaped-capacity study cannot
// produce. Both directions of the access link are impaired, like a lossy
// last-mile.
type ImpairmentConfig struct {
	Profile  *vca.Profile
	LossPcts []float64     // random loss percentages to sweep, e.g. {0, 1, 2, 5}
	Jitter   time.Duration // uniform extra delay per packet
	Reps     int
	Dur      time.Duration
	Warmup   time.Duration
	Seed     int64
	// Parallel is the trial parallelism; 0 = package default, 1 =
	// sequential. Output is identical for every value.
	Parallel int
	// Recovery enables packet-level loss recovery (NACK/RTX, jitter
	// buffer, TWCC feedback) on every call — the knob the loss sweep
	// exists to evaluate; see DESIGN.md §13 and EXPERIMENTS.md.
	Recovery bool
}

func (c *ImpairmentConfig) defaults() {
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.Dur == 0 {
		c.Dur = 120 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 30 * time.Second
	}
}

// ImpairmentResult is one cell of the loss/jitter sweep.
type ImpairmentResult struct {
	Profile string
	LossPct float64
	Jitter  time.Duration

	// UpMbps is C1's steady-state upstream rate: how much the client
	// congestion controller surrenders to non-congestive loss.
	UpMbps stats.Summary
	// FreezeRatio and FIRCount are the §3.2 quality metrics at the far
	// receiver of C1's video.
	FreezeRatio stats.Summary
	FIRCount    stats.Summary
}

// impairmentTrial is one repetition's raw measurements.
type impairmentTrial struct {
	up, freeze, fir float64
}

// runTrial executes one (loss, repetition) cell on a fresh engine.
func (cfg *ImpairmentConfig) runTrial(lossPct float64, rep int) impairmentTrial {
	seed := cfg.Seed + int64(rep)*17389 + int64(lossPct*100)
	eng := sim.New(seed)
	call, lab := twoPartyCall(eng, cfg.Profile, 0, 0, vca.CallOptions{Seed: seed, Recovery: cfg.Recovery})
	lab.Uplink().SetImpairment(lossPct/100, cfg.Jitter)
	lab.Downlink().SetImpairment(lossPct/100, cfg.Jitter)
	call.Start()
	eng.RunUntil(cfg.Dur)
	call.Stop()
	// Quality of C1's video as seen by the far client.
	far := call.Clients[1].Receiver("c1")
	return impairmentTrial{
		up:     call.C1().UpMeter.MeanRateMbps(cfg.Warmup, cfg.Dur),
		freeze: far.FreezeRatio(),
		fir:    float64(call.C1().FIRsForMyVideo),
	}
}

// RunImpairment sweeps random loss at fixed jitter on an otherwise
// unconstrained link, all losses × reps trials in parallel.
func RunImpairment(cfg ImpairmentConfig) []ImpairmentResult {
	cfg.defaults()
	trials := runner.Map(pool(cfg.Parallel, "impairment "+cfg.Profile.Name),
		len(cfg.LossPcts)*cfg.Reps, func(i int) impairmentTrial {
			return cfg.runTrial(cfg.LossPcts[i/cfg.Reps], i%cfg.Reps)
		})

	var out []ImpairmentResult
	for li, lossPct := range cfg.LossPcts {
		res := ImpairmentResult{Profile: cfg.Profile.Name, LossPct: lossPct, Jitter: cfg.Jitter}
		var ups, freezes, firs []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			t := trials[li*cfg.Reps+rep]
			ups = append(ups, t.up)
			freezes = append(freezes, t.freeze)
			firs = append(firs, t.fir)
		}
		res.UpMbps = stats.Summarize(ups)
		res.FreezeRatio = stats.Summarize(freezes)
		res.FIRCount = stats.Summarize(firs)
		out = append(out, res)
	}
	return out
}

// PrintImpairment writes the sweep as a table.
func PrintImpairment(w io.Writer, rs []ImpairmentResult) {
	if len(rs) == 0 {
		return
	}
	fmt.Fprintf(w, "# %s under random loss (jitter %v) — §8 extension\n", rs[0].Profile, rs[0].Jitter)
	fmt.Fprintf(w, "%8s %10s %10s %8s\n", "loss", "up(Mbps)", "freeze", "FIR")
	for _, r := range rs {
		fmt.Fprintf(w, "%7.1f%% %10.2f %10.3f %8.1f\n",
			r.LossPct, r.UpMbps.Mean, r.FreezeRatio.Mean, r.FIRCount.Mean)
	}
}
