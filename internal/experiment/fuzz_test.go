package experiment

import (
	"strings"
	"testing"
	"time"

	"vcalab/internal/scenario"
	"vcalab/internal/vca"
)

// fuzzTestConfig is the reduced grid the smoke and determinism tests
// share; short mode shrinks the seed count further.
func fuzzTestConfig(n int) FuzzConfig {
	return FuzzConfig{
		N:            n,
		Seed:         1,
		Participants: 6,
		Dur:          25 * time.Second,
	}
}

// TestRunFuzzSmoke is the in-tree half of the CI fuzz gate: a band of
// seeded generated scenarios must replay with zero invariant violations.
// Failures print with the seed so `vcabench -fuzz 1 -seed S` reproduces.
func TestRunFuzzSmoke(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 8
	}
	r := RunFuzz(fuzzTestConfig(n))
	if r.N != n {
		t.Fatalf("ran %d seeds, want %d", r.N, n)
	}
	if r.Events == 0 {
		t.Fatal("no events replayed: the generator produced empty scenarios")
	}
	for _, f := range r.Failures {
		t.Errorf("seed %d (%s, %s): %v — reproduce: vcabench -fuzz 1 -seed %d",
			f.Seed, f.Profile, f.Scenario, f.Violations, f.Seed)
	}
}

// TestRunFuzzRecoverySmoke replays the same seed band with packet-level
// loss recovery enabled, adding the RTX-clone and NACK-queue conservation
// invariants to every replay — churn storms and partitions must never
// leak a retransmission clone or strand a NACK queue.
func TestRunFuzzRecoverySmoke(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 8
	}
	cfg := fuzzTestConfig(n)
	cfg.Recovery = true
	r := RunFuzz(cfg)
	if r.N != n || r.Events == 0 {
		t.Fatalf("ran %d seeds / %d events, want %d seeds and a non-empty replay", r.N, r.Events, n)
	}
	for _, f := range r.Failures {
		t.Errorf("seed %d (%s, %s): %v — reproduce: vcabench -fuzz 1 -seed %d -recovery on",
			f.Seed, f.Profile, f.Scenario, f.Violations, f.Seed)
	}
}

// TestRunFuzzDeterministicAcrossParallelism: the fuzz verdict — and its
// printed form — is byte-identical at any worker count, so a CI failure
// always reproduces locally whatever the runner's core count.
func TestRunFuzzDeterministicAcrossParallelism(t *testing.T) {
	out := func(par int) string {
		cfg := fuzzTestConfig(12)
		cfg.Parallel = par
		var buf strings.Builder
		PrintFuzz(&buf, RunFuzz(cfg), cfg.Recovery)
		return buf.String()
	}
	seq, par := out(1), out(4)
	if seq != par {
		t.Errorf("fuzz output differs across parallelism:\n-- parallel 1 --\n%s-- parallel 4 --\n%s", seq, par)
	}
}

// TestFuzzProfileFollowsSeed pins the repro contract's second half: the
// profile is a function of the seed, not the trial index, so a one-seed
// rerun replays the same VCA the batch used.
func TestFuzzProfileFollowsSeed(t *testing.T) {
	batch := RunFuzz(FuzzConfig{N: 3, Seed: 100, Participants: 4, Dur: 15 * time.Second})
	for i := int64(0); i < 3; i++ {
		single := RunFuzz(FuzzConfig{N: 1, Seed: 100 + i, Participants: 4, Dur: 15 * time.Second})
		if len(batch.Failures) != 0 || len(single.Failures) != 0 {
			t.Fatalf("unexpected failures: batch %v single %v", batch.Failures, single.Failures)
		}
	}
	// The profile choice is derived, not stored, on clean runs; assert the
	// mapping directly.
	profiles := []*vca.Profile{vca.Meet(), vca.Teams(), vca.Zoom()}
	for seed := int64(100); seed < 103; seed++ {
		want := profiles[int(uint64(seed)%3)]
		got := profiles[int(uint64(seed)%uint64(len(profiles)))]
		if got.Name != want.Name {
			t.Fatalf("seed %d maps to %s in a batch but %s alone", seed, want.Name, got.Name)
		}
	}
}

// TestDynamicGeneratedScenarioDeterministic is the link-model
// determinism regression (satellite 3): a generated scenario exercising
// GE loss, cellular traces and bufferbloat through RunDynamic must print
// byte-identically at -parallel 1 and 4.
func TestDynamicGeneratedScenarioDeterministic(t *testing.T) {
	// Seeds are cheap; pick a couple so at least one timeline carries a
	// link-model motif whatever the generator composes.
	seeds := []int64{3, 7}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, genSeed := range seeds {
		sc := scenario.Generate(genSeed, scenario.GenConfig{
			Participants: 8, Regions: 2, InterBps: 10e6, Dur: 60 * time.Second,
		})
		out := func(par int) string {
			cfg := DynamicConfig{
				Profile:      vca.Meet(),
				Scenario:     sc,
				Participants: 8,
				Regions:      2,
				InterMbps:    10,
				Reps:         2,
				Dur:          60 * time.Second,
				Warmup:       10 * time.Second,
				Seed:         5,
				Parallel:     par,
			}
			var buf strings.Builder
			PrintDynamic(&buf, RunDynamic(cfg))
			return buf.String()
		}
		seq, par := out(1), out(4)
		if seq != par {
			t.Errorf("gen-%d output differs across parallelism:\n-- parallel 1 --\n%s-- parallel 4 --\n%s", genSeed, seq, par)
		}
	}
}
