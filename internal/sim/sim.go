// Package sim provides a deterministic discrete-event simulation engine.
//
// All of vcalab runs on virtual time: a five-minute video call completes in
// milliseconds of wall-clock time and, given the same seed, produces exactly
// the same packet trace on every run. The engine is a priority queue of
// timestamped callbacks plus a seeded random source; nothing in the library
// reads the wall clock.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Engine is a discrete-event scheduler. The zero value is not usable; create
// one with New. Engine is not safe for concurrent use: the entire simulation
// runs single-threaded, which is what makes it deterministic.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	// processed counts executed events, exposed for tests and benchmarks.
	processed uint64
}

// New returns an Engine whose random source is seeded with seed.
// Two engines created with the same seed run identically.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time, measured from the start of the
// simulation.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. All randomness in a
// simulation must come from here so runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Timer is a handle to a scheduled event. Stop cancels it.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It is safe to call on a timer that already fired
// or was already stopped; Stop reports whether the call prevented the event
// from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero. Events scheduled for the same instant run in scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at the absolute virtual time t. Times in the past are clamped
// to now.
func (e *Engine) At(t time.Duration, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// Ticker repeatedly invokes a callback at a fixed interval until stopped.
type Ticker struct {
	eng      *Engine
	interval time.Duration
	fn       func()
	timer    *Timer
	stopped  bool
}

// Every runs fn every interval, first firing one interval from now.
// It panics if interval is not positive, since a zero-interval ticker would
// prevent virtual time from ever advancing.
func (e *Engine) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker interval %v", interval))
	}
	t := &Ticker{eng: e, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.eng.Schedule(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop prevents any future ticks. The ticker cannot be restarted.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// Reset changes the ticker interval; the next tick fires one new interval
// from now.
func (t *Ticker) Reset(interval time.Duration) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker interval %v", interval))
	}
	if t.stopped {
		return
	}
	t.timer.Stop()
	t.interval = interval
	t.arm()
}

// Step executes the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t time.Duration) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

func (e *Engine) peek() *event {
	for e.events.Len() > 0 {
		ev := e.events[0]
		if ev.cancelled {
			heap.Pop(&e.events)
			continue
		}
		return ev
	}
	return nil
}

// Pending reports the number of live (non-cancelled) events still queued.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
