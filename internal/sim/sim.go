// Package sim provides a deterministic discrete-event simulation engine.
//
// All of vcalab runs on virtual time: a five-minute video call completes in
// milliseconds of wall-clock time and, given the same seed, produces exactly
// the same packet trace on every run. The engine is a priority queue of
// timestamped callbacks plus a seeded random source; nothing in the library
// reads the wall clock.
//
// # Architecture
//
// The scheduler is built for the packet-path hot loop (see DESIGN.md §7):
//
//   - Events are pooled. Every event struct comes from a per-engine free
//     list (allocated in blocks) and returns to it when it fires or its
//     cancellation is collected, so steady-state scheduling allocates
//     nothing. The engine is single-threaded, so the free list needs no
//     locking.
//   - The ready queue is a 4-ary min-heap ordered by (time, seq):
//     shallower than a binary heap, with all four children in one cache
//     line's worth of pointers. Lazy cancellation means events never
//     need removal by position, so no per-event index is maintained.
//   - A hierarchical timer wheel (3 levels x 256 slots, 1 ms granularity)
//     front-ends the heap for far-out events — periodic tickers, RTO and
//     keyframe timers. Insertion is O(1); a slot is flushed into the heap
//     when virtual time reaches its start, which preserves the exact
//     (time, seq) total order because flushing can only happen at or
//     before an event's due time.
//   - Hot callers schedule closure-free events against the Handler and
//     ArgHandler interfaces instead of func() closures; the packet path
//     (internal/netem) carries its *Packet through the event's arg slot.
//   - Timer.Stop is a lazy cancellation: the event is marked dead and its
//     struct is recycled when the heap or wheel next encounters it. Timer
//     handles carry a generation counter so a stale handle can never
//     cancel an unrelated reuse of the same pooled struct.
//
// Determinism is unchanged from the original container/heap engine: events
// scheduled for the same instant fire in scheduling order, guaranteed by
// the monotonically increasing sequence number assigned at schedule time.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"time"
)

// Handler is implemented by hot-path callers that want to receive events
// without allocating a closure per schedule.
type Handler interface {
	OnEvent(now time.Duration)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(now time.Duration)

// OnEvent calls f(now).
func (f HandlerFunc) OnEvent(now time.Duration) { f(now) }

// ArgHandler receives events that carry a payload pointer: one handler
// instance (a link, a flow) serves many in-flight events, each carrying
// its own argument (a packet) through the pooled event's arg slot.
type ArgHandler interface {
	OnArgEvent(now time.Duration, arg any)
}

// event is a pooled scheduler entry. Exactly one of fn, h or ah is set.
type event struct {
	at time.Duration
	// schedAt is the engine clock at the moment the event was filed. In a
	// single-engine run it refines nothing (see less); in a sharded run it
	// is the cross-shard half of the ordering key.
	schedAt time.Duration
	seq     uint64
	// src is the scheduling domain the event was filed from: 0 for the
	// control engine (and every standalone engine), 1..N for shard
	// engines. Constant within one engine; it only separates events after
	// a cross-shard injection.
	src uint32
	// gen guards Timer handles across pooling: it increments every time
	// the struct is recycled, so a stale Timer cannot cancel an
	// unrelated reuse.
	gen       uint32
	cancelled bool

	fn  func()
	h   Handler
	ah  ArgHandler
	arg any

	// next links free-list entries and wheel-slot chains.
	next *event
}

// less is the engine's total order: (at, schedAt, src, seq).
//
// Within a single engine this is exactly the classic (at, seq) order: the
// clock is monotone across schedule calls, so seq is monotone in schedAt
// and comparing schedAt first can never disagree with comparing seq; src
// is constant. The extra fields exist for sharded runs, where events
// injected from another shard carry that shard's (schedAt, src, seq) and
// must interleave with local events exactly where a single sequential
// engine would have placed them (see shard.go).
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// Timer wheel geometry. Level 0 covers 256 ms at 1 ms granularity; each
// higher level covers 256x more. Events beyond the horizon, or due sooner
// than wheelMinDelay (they would only bounce through the current slot),
// go straight to the heap.
const (
	wheelBits     = 8
	wheelSlots    = 1 << wheelBits
	wheelLevels   = 3
	wheelTick     = time.Millisecond
	wheelMinDelay = 4 * wheelTick
)

const farFuture = time.Duration(math.MaxInt64)

// wheel is the hierarchical timer wheel. Slots hold intrusive event
// chains; per-level bitmaps make the next-occupied-slot scan cheap.
// nextDue is a lower bound on the earliest slot start time — flushing a
// slot early is always safe, because the heap re-establishes the exact
// (time, seq) order of whatever the wheel hands it.
type wheel struct {
	slots   [wheelLevels][wheelSlots]*event
	bitmaps [wheelLevels][wheelSlots / 64]uint64
	count   int
	nextDue time.Duration
}

// insert files ev into the wheel, or reports false if it belongs in the
// heap (too near, or beyond the horizon). now is the engine clock.
func (w *wheel) insert(now time.Duration, ev *event) bool {
	if ev.at-now < wheelMinDelay {
		return false
	}
	base := uint64(now / wheelTick)
	tick := uint64(ev.at / wheelTick)
	delta := tick - base
	var level int
	switch {
	case delta < wheelSlots:
		level = 0
	case delta < wheelSlots*wheelSlots:
		level = 1
	case delta < wheelSlots*wheelSlots*wheelSlots:
		level = 2
	default:
		return false
	}
	slot := (tick >> (wheelBits * level)) & (wheelSlots - 1)
	ev.next = w.slots[level][slot]
	w.slots[level][slot] = ev
	w.bitmaps[level][slot/64] |= 1 << (slot % 64)
	start := time.Duration((tick>>(wheelBits*level))<<(wheelBits*level)) * wheelTick
	if w.count == 0 || start < w.nextDue {
		w.nextDue = start
	}
	w.count++
	return true
}

// Engine is a discrete-event scheduler. The zero value is not usable; create
// one with New. Engine is not safe for concurrent use: the entire simulation
// runs single-threaded, which is what makes it deterministic.
type Engine struct {
	now  time.Duration
	heap []*event
	seq  uint64
	rng  *rand.Rand
	// processed counts executed events, exposed for tests and benchmarks.
	processed uint64

	// src is the engine's scheduling-domain index, stamped into every
	// event it files: 0 for a standalone or control engine, 1..N for the
	// shards of a Group.
	src uint32

	wheel wheel
	free  *event
	// live counts events handed out of the free list and not yet
	// recycled — the pooled-event leak detector used by tests.
	live int
	// liveHW is the high-water mark of live: the scheduler's peak
	// working set over the engine's lifetime.
	liveHW int
	// wheelIns/heapIns count insertions filed through the timer wheel
	// vs pushed straight onto the heap — the wheel hit ratio is the
	// scheduler's cheapest health signal.
	wheelIns, heapIns uint64
}

// eventBlock is how many pooled events are allocated at once when the
// free list runs dry.
const eventBlock = 128

// New returns an Engine whose random source is seeded with seed.
// Two engines created with the same seed run identically.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time, measured from the start of the
// simulation.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. All randomness in a
// simulation must come from here so runs stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Live reports how many pooled events are currently handed out and not yet
// recycled. After a full drain (Run returning with nothing pending) it must
// be zero; tests use it as the pooled-event leak detector.
func (e *Engine) Live() int { return e.live }

// LiveHighWater reports the peak number of pooled events concurrently
// outstanding over the engine's lifetime — the scheduler's working-set
// high-water mark.
func (e *Engine) LiveHighWater() int { return e.liveHW }

// SchedulerInserts reports how many event insertions went through the
// timer wheel vs straight onto the fallback heap. A low wheel share
// means events are being scheduled beyond the wheel horizon and the
// O(log n) path dominates.
func (e *Engine) SchedulerInserts() (wheel, heap uint64) {
	return e.wheelIns, e.heapIns
}

// alloc hands out a pooled event, growing the pool by a block when empty.
func (e *Engine) alloc() *event {
	if e.free == nil {
		blk := make([]event, eventBlock)
		for i := range blk {
			blk[i].next = e.free
			e.free = &blk[i]
		}
	}
	ev := e.free
	e.free = ev.next
	ev.next = nil
	e.live++
	if e.live > e.liveHW {
		e.liveHW = e.live
	}
	return ev
}

// recycle returns ev to the free list, invalidating outstanding Timer
// handles via the generation counter.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.h, ev.ah, ev.arg = nil, nil, nil, nil
	ev.cancelled = false
	ev.next = e.free
	e.free = ev
	e.live--
}

// add stamps and files a fresh event. Times in the past are clamped to now.
func (e *Engine) add(at time.Duration, ev *event) Timer {
	if at < e.now {
		at = e.now
	}
	ev.at = at
	ev.schedAt = e.now
	ev.src = e.src
	ev.seq = e.seq
	e.seq++
	if e.wheel.insert(e.now, ev) {
		e.wheelIns++
	} else {
		e.heapIns++
		e.heapPush(ev)
	}
	return Timer{ev: ev, gen: ev.gen}
}

// TakeSeq consumes and returns the engine's next scheduling sequence
// number without filing an event. Cross-shard handoff (Mailbox.Post)
// burns one source-engine seq per boundary packet, so entries posted from
// the same instant keep the source's scheduling order after injection.
func (e *Engine) TakeSeq() uint64 {
	s := e.seq
	e.seq++
	return s
}

// inject files an event carrying a foreign ordering key — the mailbox
// drain path. The caller (a Group barrier) guarantees at >= e.now.
func (e *Engine) inject(at, schedAt time.Duration, src uint32, seq uint64, ah ArgHandler, arg any) {
	ev := e.alloc()
	ev.ah = ah
	ev.arg = arg
	ev.at = at
	ev.schedAt = schedAt
	ev.src = src
	ev.seq = seq
	if e.wheel.insert(e.now, ev) {
		e.wheelIns++
	} else {
		e.heapIns++
		e.heapPush(ev)
	}
}

// Timer is a handle to a scheduled event. Stop cancels it. The zero Timer
// is valid and inert. Timers are values: copying one copies the handle.
type Timer struct {
	ev  *event
	gen uint32
}

// Stop cancels the timer. It is safe to call on a timer that already fired
// or was already stopped; Stop reports whether the call prevented the event
// from firing. Cancellation is lazy: the pooled event is reclaimed when the
// scheduler next encounters it.
func (t *Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero. Events scheduled for the same instant run in scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) Timer {
	return e.At(e.now+delay, fn)
}

// At runs fn at the absolute virtual time t. Times in the past are clamped
// to now.
func (e *Engine) At(t time.Duration, fn func()) Timer {
	ev := e.alloc()
	ev.fn = fn
	return e.add(t, ev)
}

// ScheduleHandler runs h.OnEvent after delay without allocating: the event
// comes from the engine pool and carries the handler interface directly.
func (e *Engine) ScheduleHandler(delay time.Duration, h Handler) Timer {
	return e.AtHandler(e.now+delay, h)
}

// AtHandler runs h.OnEvent at the absolute virtual time t.
func (e *Engine) AtHandler(t time.Duration, h Handler) Timer {
	ev := e.alloc()
	ev.h = h
	return e.add(t, ev)
}

// ScheduleArg runs h.OnArgEvent(now, arg) after delay. This is the packet
// path's closure-free transit event: arg is typically a *netem.Packet.
func (e *Engine) ScheduleArg(delay time.Duration, h ArgHandler, arg any) Timer {
	ev := e.alloc()
	ev.ah = h
	ev.arg = arg
	return e.add(e.now+delay, ev)
}

// Ticker repeatedly invokes a callback at a fixed interval until stopped.
// The ticker re-arms itself through one pooled event per fire: no per-tick
// allocation.
type Ticker struct {
	eng      *Engine
	interval time.Duration
	fn       func()
	h        Handler
	timer    Timer
	stopped  bool
	firing   bool
}

// Every runs fn every interval, first firing one interval from now.
// It panics if interval is not positive, since a zero-interval ticker would
// prevent virtual time from ever advancing.
func (e *Engine) Every(interval time.Duration, fn func()) *Ticker {
	t := &Ticker{eng: e, interval: checkInterval(interval), fn: fn}
	t.arm()
	return t
}

// EveryHandler runs h.OnEvent every interval — the closure-free form of
// Every used by the media/feedback tick loops.
func (e *Engine) EveryHandler(interval time.Duration, h Handler) *Ticker {
	t := &Ticker{eng: e, interval: checkInterval(interval), h: h}
	t.arm()
	return t
}

func checkInterval(interval time.Duration) time.Duration {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker interval %v", interval))
	}
	return interval
}

// OnEvent fires one tick and re-arms. It implements Handler so the ticker's
// own pooled event dispatches straight to it; do not call it directly.
func (t *Ticker) OnEvent(now time.Duration) {
	if t.stopped {
		return
	}
	t.firing = true
	if t.fn != nil {
		t.fn()
	} else {
		t.h.OnEvent(now)
	}
	t.firing = false
	if !t.stopped {
		t.arm()
	}
}

func (t *Ticker) arm() {
	t.timer = t.eng.ScheduleHandler(t.interval, t)
}

// Stop prevents any future ticks. The ticker cannot be restarted.
func (t *Ticker) Stop() {
	t.stopped = true
	t.timer.Stop()
}

// Reset changes the ticker interval; the next tick fires one new interval
// from now. Reset on a stopped ticker is a no-op. Resetting from inside
// the ticker's own callback only updates the cadence — the tick in flight
// re-arms once, at the new interval, when the callback returns.
func (t *Ticker) Reset(interval time.Duration) {
	checkInterval(interval)
	if t.stopped {
		return
	}
	t.interval = interval
	if t.firing {
		return // OnEvent's tail re-arms at the new cadence
	}
	t.timer.Stop()
	t.arm()
}

// flushWheel moves every wheel slot whose start time is at or before upTo
// into the heap, and recomputes the wheel's exact next due bound. Moving a
// slot early is always safe: the heap orders its events by (time, seq)
// exactly as if they had been pushed at schedule time.
func (e *Engine) flushWheel(upTo time.Duration) {
	w := &e.wheel
	base := uint64(e.now / wheelTick)
	next := farFuture
	for l := 0; l < wheelLevels; l++ {
		shift := uint(wheelBits * l)
		baseL := base >> shift
		for wi := range w.bitmaps[l] {
			word := w.bitmaps[l][wi]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				s := uint64(wi*64 + b)
				sd := (s - baseL) & (wheelSlots - 1)
				start := time.Duration((baseL+sd)<<shift) * wheelTick
				if start > upTo {
					if start < next {
						next = start
					}
					continue
				}
				ev := w.slots[l][s]
				w.slots[l][s] = nil
				w.bitmaps[l][wi] &^= 1 << uint(b)
				for ev != nil {
					nx := ev.next
					ev.next = nil
					w.count--
					if ev.cancelled {
						e.recycle(ev)
					} else {
						e.heapPush(ev)
					}
					ev = nx
				}
			}
		}
	}
	w.nextDue = next
}

// peek returns the earliest live event without executing it, collecting
// cancelled events and flushing due wheel slots along the way.
func (e *Engine) peek() *event {
	for {
		if e.wheel.count > 0 {
			ht := farFuture
			if len(e.heap) > 0 {
				ht = e.heap[0].at
			}
			if e.wheel.nextDue <= ht {
				// A wheel slot may hold an event due before the heap
				// top: flush the earliest slot and re-examine. Each
				// call either moves a slot into the heap or raises
				// nextDue, so this terminates.
				e.flushWheel(e.wheel.nextDue)
				continue
			}
		}
		if len(e.heap) == 0 {
			return nil
		}
		top := e.heap[0]
		if top.cancelled {
			e.heapPop()
			e.recycle(top)
			continue
		}
		return top
	}
}

// Step executes the single earliest pending event and reports whether one
// existed.
func (e *Engine) Step() bool {
	ev := e.peek()
	if ev == nil {
		return false
	}
	e.heapPop()
	e.now = ev.at
	e.processed++
	fn, h, ah, arg := ev.fn, ev.h, ev.ah, ev.arg
	// Recycle before dispatch: the callback's own schedules reuse the
	// still-hot struct, and its Timer handles are already invalidated.
	e.recycle(ev)
	switch {
	case fn != nil:
		fn()
	case ah != nil:
		ah.OnArgEvent(e.now, arg)
	default:
		h.OnEvent(e.now)
	}
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t time.Duration) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunBefore executes every pending event whose ordering key strictly
// precedes (atLimit, schedLimit): at < atLimit, or at == atLimit with
// schedAt < schedLimit. It is the shard-window primitive: a Group parks a
// shard here so a control-engine event at exactly (atLimit, schedLimit)
// runs after everything that would have preceded it on a single engine.
// Pass schedLimit = math.MinInt64 for a plain exclusive-end window
// (at < atLimit only) and math.MaxInt64 to include everything at atLimit.
// The clock is left at the last executed event; it does not advance to
// atLimit.
func (e *Engine) RunBefore(atLimit, schedLimit time.Duration) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > atLimit || (ev.at == atLimit && ev.schedAt >= schedLimit) {
			return
		}
		e.Step()
	}
}

// NextKey reports the ordering key of the earliest pending event, or
// ok == false when the engine is drained.
func (e *Engine) NextKey() (at, schedAt time.Duration, ok bool) {
	ev := e.peek()
	if ev == nil {
		return 0, 0, false
	}
	return ev.at, ev.schedAt, true
}

// advanceTo moves the clock forward to t without executing anything —
// the Group uses it so events a barrier-time callback schedules onto a
// parked shard are stamped from the barrier instant, exactly as a single
// engine would have stamped them.
func (e *Engine) advanceTo(t time.Duration) {
	if t > e.now {
		e.now = t
	}
}

// Pending reports the number of live (non-cancelled) events still queued.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.heap {
		if !ev.cancelled {
			n++
		}
	}
	for l := range e.wheel.slots {
		for s := range e.wheel.slots[l] {
			for ev := e.wheel.slots[l][s]; ev != nil; ev = ev.next {
				if !ev.cancelled {
					n++
				}
			}
		}
	}
	return n
}

// --- 4-ary heap ---

func (e *Engine) heapPush(ev *event) {
	e.heap = append(e.heap, ev)
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) heapPop() *event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.heap = h[:n]
	if n > 0 {
		e.heap[0] = last
		e.siftDown(0)
	}
	return top
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	ev := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ev, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ev := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(h[j], h[m]) {
				m = j
			}
		}
		if !less(h[m], ev) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ev
}
