package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"
)

// logArg appends "now/arg" to a shared log on every dispatch.
type logArg struct{ log *[]string }

func (l *logArg) OnArgEvent(now time.Duration, arg any) {
	*l.log = append(*l.log, fmt.Sprintf("%v/%v", now, arg))
}

func TestRunBeforeSemantics(t *testing.T) {
	var log []string
	h := &logArg{log: &log}
	e := New(1)
	e.inject(10*time.Millisecond, 3*time.Millisecond, 0, 0, h, "a")
	e.inject(10*time.Millisecond, 7*time.Millisecond, 0, 1, h, "b")
	e.inject(12*time.Millisecond, 0, 0, 2, h, "c")

	e.RunBefore(10*time.Millisecond, math.MinInt64)
	if len(log) != 0 {
		t.Fatalf("MinInt64 schedLimit must exclude everything at atLimit, ran %v", log)
	}
	e.RunBefore(10*time.Millisecond, 7*time.Millisecond)
	if want := []string{"10ms/a"}; !reflect.DeepEqual(log, want) {
		t.Fatalf("schedAt<limit slice: got %v want %v", log, want)
	}
	e.RunBefore(10*time.Millisecond, math.MaxInt64)
	if want := []string{"10ms/a", "10ms/b"}; !reflect.DeepEqual(log, want) {
		t.Fatalf("MaxInt64 schedLimit must include atLimit: got %v want %v", log, want)
	}
	e.RunBefore(12*time.Millisecond, math.MaxInt64)
	if want := []string{"10ms/a", "10ms/b", "12ms/c"}; !reflect.DeepEqual(log, want) {
		t.Fatalf("got %v want %v", log, want)
	}
	if e.Live() != 0 {
		t.Fatalf("live events after drain: %d", e.Live())
	}
}

// TestInjectTieOrder is the cross-shard merge table test: events due at
// the same instant order by (schedAt, src, seq), so same-instant arrivals
// from different shards merge in a fixed, shard-index order.
func TestInjectTieOrder(t *testing.T) {
	var log []string
	h := &logArg{log: &log}
	e := New(1)
	at := 10 * time.Millisecond
	// Filed out of order on purpose: the heap must sort purely by key.
	e.inject(at, 5*time.Millisecond, 2, 7, h, "src2")
	e.inject(at, 5*time.Millisecond, 1, 9, h, "src1-late")
	e.inject(at, 5*time.Millisecond, 0, 4, h, "ctrl")
	e.inject(at, 5*time.Millisecond, 1, 2, h, "src1-early")
	e.inject(at, 4*time.Millisecond, 3, 0, h, "earlier-schedAt")
	e.Run()
	want := []string{
		"10ms/earlier-schedAt", // schedAt beats src and seq
		"10ms/ctrl",            // control domain wins same-(at,schedAt) ties
		"10ms/src1-early",      // then shard index...
		"10ms/src1-late",       // ...then source seq within a shard
		"10ms/src2",
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("merge order:\n got %v\nwant %v", log, want)
	}
}

// pingNode bounces a hop count between two peers, recording every
// receipt and a same-instant local event — the same code runs on one
// sequential engine and split across two shards, and the logs must match
// byte for byte.
type pingNode struct {
	name string
	eng  *Engine
	log  *[]string
	send func(v int)
}

func (n *pingNode) OnArgEvent(now time.Duration, arg any) {
	v := arg.(int)
	*n.log = append(*n.log, fmt.Sprintf("%s@%v:%d", n.name, now, v))
	n.eng.Schedule(0, func() {
		*n.log = append(*n.log, fmt.Sprintf("%s-local@%v", n.name, n.eng.Now()))
	})
	if v > 0 {
		n.send(v - 1)
	}
}

const pingDelay = 10 * time.Millisecond

func runSequentialPing(hops int, until time.Duration) []string {
	var log []string
	eng := New(42)
	a := &pingNode{name: "a", eng: eng, log: &log}
	b := &pingNode{name: "b", eng: eng, log: &log}
	a.send = func(v int) { eng.ScheduleArg(pingDelay, b, v) }
	b.send = func(v int) { eng.ScheduleArg(pingDelay, a, v) }
	tick := eng.Every(7*time.Millisecond, func() {
		log = append(log, fmt.Sprintf("tick@%v", eng.Now()))
	})
	eng.ScheduleArg(0, a, hops)
	eng.RunUntil(until)
	tick.Stop()
	eng.Run()
	return log
}

func runShardedPing(t *testing.T, hops int, until time.Duration) []string {
	t.Helper()
	var log []string
	ctrl := New(42)
	sa, sb := New(43), New(44)
	g := NewGroup(ctrl, []*Engine{sa, sb}, func() time.Duration { return pingDelay })
	defer g.Close()
	a := &pingNode{name: "a", eng: sa, log: &log}
	b := &pingNode{name: "b", eng: sb, log: &log}
	mab := NewMailbox("a->b", sa, sb, b, nil)
	mba := NewMailbox("b->a", sb, sa, a, nil)
	g.Register(mab)
	g.Register(mba)
	a.send = func(v int) { mab.Post(sa.Now()+pingDelay, sa.Now(), sa.TakeSeq(), v) }
	b.send = func(v int) { mba.Post(sb.Now()+pingDelay, sb.Now(), sb.TakeSeq(), v) }
	tick := ctrl.Every(7*time.Millisecond, func() {
		// Barrier contract: every shard is parked with its clock advanced
		// to exactly the global's instant before the callback runs.
		if sa.Now() != ctrl.Now() || sb.Now() != ctrl.Now() {
			t.Errorf("global at %v ran with shard clocks %v/%v", ctrl.Now(), sa.Now(), sb.Now())
		}
		log = append(log, fmt.Sprintf("tick@%v", ctrl.Now()))
	})
	sa.ScheduleArg(0, a, hops)
	g.RunUntil(until)
	tick.Stop()
	g.Run()

	if g.Live() != 0 {
		t.Fatalf("group live events after drain: %d", g.Live())
	}
	if g.Pending() != 0 {
		t.Fatalf("group pending events after drain: %d", g.Pending())
	}
	st := g.Stats()
	if st.Windows == 0 {
		t.Fatal("sharded run used zero windows")
	}
	if got := st.ShardProcessed[0] + st.ShardProcessed[1]; got == 0 {
		t.Fatal("shard processed counters never advanced")
	}
	if mab.HighWater() == 0 {
		t.Fatal("a->b mailbox high-water never advanced")
	}
	return log
}

// TestGroupMatchesSequential is the sharded-equivalence anchor: a
// cross-shard ping-pong with same-instant local events and a window-
// interior global ticker produces the exact sequential event order,
// including a partial RunUntil horizon and the post-stop full drain.
func TestGroupMatchesSequential(t *testing.T) {
	for _, until := range []time.Duration{0, 33 * time.Millisecond, 100 * time.Millisecond} {
		seq := runSequentialPing(7, until)
		shard := runShardedPing(t, 7, until)
		if !reflect.DeepEqual(seq, shard) {
			t.Fatalf("until=%v: sharded log diverges\n seq   %v\n shard %v", until, seq, shard)
		}
		again := runShardedPing(t, 7, until)
		if !reflect.DeepEqual(shard, again) {
			t.Fatalf("until=%v: sharded run not deterministic", until)
		}
	}
}

// TestCrossShardSameInstantOrder pins the residual-ambiguity rule: two
// shards posting to a third at the same instant with the same source
// clock merge in shard-index order, regardless of mailbox registration
// or posting order.
func TestCrossShardSameInstantOrder(t *testing.T) {
	for _, swapReg := range []bool{false, true} {
		var log []string
		ctrl := New(1)
		s1, s2, s3 := New(2), New(3), New(4)
		g := NewGroup(ctrl, []*Engine{s1, s2, s3}, func() time.Duration { return pingDelay })
		rx := &logArg{log: &log}
		m13 := NewMailbox("1->3", s1, s3, rx, nil)
		m23 := NewMailbox("2->3", s2, s3, rx, nil)
		if swapReg {
			g.Register(m23)
			g.Register(m13)
		} else {
			g.Register(m13)
			g.Register(m23)
		}
		// Shard 2 posts first; shard-index order must still win.
		s2.Schedule(0, func() { m23.Post(s2.Now()+pingDelay, s2.Now(), s2.TakeSeq(), "from-s2") })
		s1.Schedule(0, func() { m13.Post(s1.Now()+pingDelay, s1.Now(), s1.TakeSeq(), "from-s1") })
		g.RunUntil(pingDelay)
		g.Close()
		want := []string{"10ms/from-s1", "10ms/from-s2"}
		if !reflect.DeepEqual(log, want) {
			t.Fatalf("swapReg=%v: got %v want %v", swapReg, log, want)
		}
	}
}

func TestMailboxTransfer(t *testing.T) {
	var log []string
	ctrl := New(1)
	s1, s2 := New(2), New(3)
	g := NewGroup(ctrl, []*Engine{s1, s2}, func() time.Duration { return pingDelay })
	defer g.Close()
	rx := &logArg{log: &log}
	m := NewMailbox("x", s1, s2, rx, func(arg any) any {
		return "transferred:" + arg.(string)
	})
	g.Register(m)
	s1.Schedule(0, func() { m.Post(s1.Now()+pingDelay, s1.Now(), s1.TakeSeq(), "payload") })
	g.RunUntil(pingDelay)
	if want := []string{"10ms/transferred:payload"}; !reflect.DeepEqual(log, want) {
		t.Fatalf("transfer hook: got %v want %v", log, want)
	}
}

func TestGroupRunUntilAdvancesIdleClocks(t *testing.T) {
	ctrl := New(1)
	s1 := New(2)
	g := NewGroup(ctrl, []*Engine{s1}, func() time.Duration { return pingDelay })
	defer g.Close()
	g.RunUntil(250 * time.Millisecond)
	if ctrl.Now() != 250*time.Millisecond || s1.Now() != 250*time.Millisecond {
		t.Fatalf("clocks after idle RunUntil: ctrl=%v shard=%v", ctrl.Now(), s1.Now())
	}
}

func TestGroupLookaheadMustStayPositive(t *testing.T) {
	ctrl := New(1)
	s1 := New(2)
	g := NewGroup(ctrl, []*Engine{s1}, func() time.Duration { return 0 })
	defer g.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("zero lookahead must panic")
		}
	}()
	g.RunUntil(time.Millisecond)
}
