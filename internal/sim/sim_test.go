package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	e := New(1)
	e.Schedule(time.Second, func() {
		e.Schedule(-time.Hour, func() {
			if e.Now() != time.Second {
				t.Errorf("negative delay fired at %v, want 1s", e.Now())
			}
		})
	})
	e.Run()
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.Schedule(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := New(1)
	tm := e.Schedule(time.Millisecond, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop() = true after timer fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	count := 0
	e.Every(time.Second, func() { count++ })
	e.RunUntil(5500 * time.Millisecond)
	if count != 5 {
		t.Errorf("ticks = %d, want 5", count)
	}
	if e.Now() != 5500*time.Millisecond {
		t.Errorf("Now() = %v, want 5.5s", e.Now())
	}
	// Ticker must survive RunUntil and keep going.
	e.RunUntil(10 * time.Second)
	if count != 10 {
		t.Errorf("ticks after second RunUntil = %d, want 10", count)
	}
}

func TestTickerStop(t *testing.T) {
	e := New(1)
	count := 0
	var tk *Ticker
	tk = e.Every(time.Second, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(time.Minute)
	if count != 3 {
		t.Errorf("ticks = %d, want 3 (stop from within callback)", count)
	}
}

func TestTickerReset(t *testing.T) {
	e := New(1)
	var times []time.Duration
	tk := e.Every(time.Second, func() { times = append(times, e.Now()) })
	e.RunUntil(2500 * time.Millisecond) // ticks at 1s, 2s
	tk.Reset(100 * time.Millisecond)
	e.RunUntil(3 * time.Second) // ticks at 2.6, 2.7, 2.8, 2.9, 3.0
	if len(times) != 2+5 {
		t.Fatalf("got %d ticks (%v), want 7", len(times), times)
	}
	if times[2] != 2600*time.Millisecond {
		t.Errorf("first tick after Reset at %v, want 2.6s", times[2])
	}
}

func TestTickerZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0, ...) did not panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := New(seed)
		var draws []int64
		e.Every(time.Millisecond, func() {
			draws = append(draws, e.Rand().Int63n(1000))
		})
		e.RunUntil(50 * time.Millisecond)
		return draws
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical draws")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(time.Millisecond, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if e.Now() != 99*time.Millisecond {
		t.Errorf("Now() = %v, want 99ms", e.Now())
	}
}

func TestPending(t *testing.T) {
	e := New(1)
	t1 := e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	t1.Stop()
	if e.Pending() != 1 {
		t.Fatalf("Pending() after Stop = %d, want 1", e.Pending())
	}
}

// Property: for any set of non-negative delays, events fire in sorted order
// of their absolute times.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		e := New(7)
		var fired []time.Duration
		for _, d := range delaysMS {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delaysMS)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: virtual time never moves backwards across arbitrary mixes of
// Schedule / nested Schedule calls.
func TestQuickMonotonicClock(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		e := New(seed)
		last := time.Duration(-1)
		ok := true
		var spawn func(rem int)
		spawn = func(rem int) {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if rem > 0 {
				e.Schedule(time.Duration(e.Rand().Intn(1000))*time.Microsecond, func() { spawn(rem - 1) })
			}
		}
		for i := 0; i < int(n%8)+1; i++ {
			e.Schedule(time.Duration(e.Rand().Intn(1000))*time.Microsecond, func() { spawn(int(n) % 32) })
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- pooled-engine edge cases the packet-path refactor must preserve ---

// Same-instant FIFO must survive event-struct reuse: fire a batch (events
// return to the free list in some order), then schedule a second
// same-instant batch that reuses those structs.
func TestSameInstantFIFOAcrossPoolReuse(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 20; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	// Cancel a few to scramble the free-list order at collection time.
	tm := e.Schedule(time.Second, func() { t.Error("cancelled event fired") })
	tm.Stop()
	e.Run()
	for i := 0; i < 20; i++ {
		if got[i] != i {
			t.Fatalf("first batch out of FIFO order: %v", got)
		}
	}
	got = nil
	for i := 0; i < 20; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) }) // reuses pooled structs
	}
	e.Run()
	for i := 0; i < 20; i++ {
		if got[i] != i {
			t.Fatalf("second (pool-reusing) batch out of FIFO order: %v", got)
		}
	}
}

// Timer.Stop from inside a firing callback: stopping yourself reports
// false (the event already fired); stopping a later same-instant timer
// must still prevent it from firing.
func TestTimerStopInsideFiringCallback(t *testing.T) {
	e := New(1)
	var self, victim Timer
	victimFired := false
	self = e.Schedule(time.Second, func() {
		if self.Stop() {
			t.Error("Stop() on the timer currently firing returned true")
		}
		if !victim.Stop() {
			t.Error("Stop() on a pending same-instant timer returned false")
		}
	})
	victim = e.Schedule(time.Second, func() { victimFired = true })
	e.Run()
	if victimFired {
		t.Fatal("timer stopped from a firing callback still fired")
	}
}

// A stale Timer handle must not cancel an unrelated reuse of the same
// pooled event struct (generation guard).
func TestStaleTimerHandleAfterReuse(t *testing.T) {
	e := New(1)
	t1 := e.Schedule(time.Millisecond, func() {})
	e.Run()
	fired := false
	e.Schedule(time.Millisecond, func() { fired = true }) // reuses t1's struct
	if t1.Stop() {
		t.Fatal("stale handle Stop() returned true")
	}
	e.Run()
	if !fired {
		t.Fatal("stale handle cancelled an unrelated reused event")
	}
}

// Ticker stop/restart semantics: Stop is final (Reset on a stopped ticker
// is a no-op), and a replacement ticker picks up cleanly.
func TestTickerStopThenRestart(t *testing.T) {
	e := New(1)
	count := 0
	tk := e.Every(time.Second, func() { count++ })
	e.RunUntil(3500 * time.Millisecond)
	tk.Stop()
	tk.Reset(100 * time.Millisecond) // must not revive it
	e.RunUntil(10 * time.Second)
	if count != 3 {
		t.Fatalf("stopped ticker ticked: count = %d, want 3", count)
	}
	count = 0
	e.Every(time.Second, func() { count++ }) // fresh ticker restarts the cadence
	e.RunUntil(15 * time.Second)
	if count != 5 {
		t.Fatalf("restarted ticker count = %d, want 5", count)
	}
}

// Long-interval tickers ride the timer wheel's higher levels; cadence and
// determinism must be unaffected.
func TestTickerLongIntervalsOnWheel(t *testing.T) {
	e := New(1)
	var times []time.Duration
	e.Every(700*time.Millisecond, func() { times = append(times, e.Now()) }) // level 1
	e.Every(90*time.Second, func() { times = append(times, e.Now()) })       // level 2
	e.RunUntil(91 * time.Second)
	if len(times) == 0 {
		t.Fatal("no ticks")
	}
	// Verify the 700ms cadence exactly, with the 90s tick interleaved.
	want := 700 * time.Millisecond
	next := want
	seen90 := false
	for _, at := range times {
		if at == 90*time.Second && !seen90 {
			seen90 = true
			continue
		}
		if at != next {
			t.Fatalf("tick at %v, want %v", at, next)
		}
		next += want
	}
	if !seen90 {
		t.Fatal("90s wheel-level-2 tick missing")
	}
}

// After a full drain, every pooled event must be back on the free list:
// zero leaks from firing, cancellation, wheel residence, or ticker stop.
func TestEngineDrainNoLeakedEvents(t *testing.T) {
	e := New(1)
	for i := 0; i < 500; i++ {
		d := time.Duration(i%300) * time.Millisecond // heap + wheel levels 0/1
		tm := e.Schedule(d, func() {})
		if i%7 == 0 {
			tm.Stop()
		}
	}
	e.Schedule(70*time.Second, func() {}) // wheel level 2
	var tk *Ticker
	tk = e.Every(33*time.Millisecond, func() {
		if e.Now() > 2*time.Second {
			tk.Stop()
		}
	})
	tk2 := e.Every(time.Hour, func() {})
	e.Schedule(80*time.Second, tk2.Stop)
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", e.Pending())
	}
	if e.live != 0 {
		t.Fatalf("%d pooled events leaked after drain", e.live)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i)*time.Nanosecond, func() {})
	}
	e.Run()
}

// Reset from inside the ticker's own callback must not double-arm the
// tick chain: the in-flight tick re-arms once, at the new cadence.
func TestTickerResetInsideCallback(t *testing.T) {
	e := New(1)
	var times []time.Duration
	var tk *Ticker
	tk = e.Every(time.Second, func() {
		times = append(times, e.Now())
		if e.Now() == 2*time.Second {
			tk.Reset(250 * time.Millisecond)
		}
	})
	e.RunUntil(3 * time.Second)
	want := []time.Duration{
		1 * time.Second, 2 * time.Second, // old cadence
		2250 * time.Millisecond, 2500 * time.Millisecond, // new cadence
		2750 * time.Millisecond, 3 * time.Second,
	}
	if len(times) != len(want) {
		t.Fatalf("ticks = %v, want %v (double-armed ticker?)", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v (full: %v)", i, times[i], want[i], times)
		}
	}
}
