// Conservative region-sharded parallel execution (PDES).
//
// A Group partitions one simulation across N shard engines plus a control
// engine, each single-threaded and deterministic on its own, and advances
// them in bounded time windows. The window length is the conservative
// lookahead L: the minimum positive propagation delay of every boundary
// (cross-shard) link. A packet sent during the window [W, W+L) arrives at
// send+delay >= W+L, i.e. never inside the window it was sent in, so the
// shards can run a whole window in parallel with no null messages — a
// barrier at each window end is enough (Chandy–Misra–Bryant with the
// lookahead as the sole synchronization quantum).
//
// Determinism. Every event carries the ordering key (at, schedAt, src,
// seq); see sim.go's less. Within one engine the key degenerates to the
// classic (at, seq) order, so a standalone engine is bit-identical to the
// pre-sharding scheduler. Across shards, a boundary packet is injected
// into its destination with the key it would have carried on a single
// sequential engine: at = the arrival instant, schedAt = the source-shard
// clock at the send, seq = a sequence number consumed from the source
// engine at the send. Because seq is monotone in schedAt on every engine,
// ordering by (at, schedAt, seq) reproduces the single-engine (at, seq)
// order for every pair of events whose schedAt differ; the src index is a
// stable tiebreak for the only genuinely ambiguous case — two events
// filed at the same instant by different shards and due at the same
// instant — where a single engine's interleaving is itself an accident of
// scheduling order. Control-engine events (src 0) win such ties, matching
// the sequential convention that harness setup (timelines, warmup
// snapshots) schedules before the call's own traffic.
//
// Barrier-time callbacks. The control engine holds every global event:
// scenario timelines, warmup snapshots, metrics samplers — anything that
// reads or mutates state across shard boundaries. Before a control event
// at key (gAt, gSchedAt) executes, every shard runs to exactly that key
// (RunBefore) and parks; the callback then runs on the barrier goroutine
// with exclusive access to the whole simulation, and every shard clock is
// advanced to gAt first so anything the callback schedules is stamped as
// a single engine would have stamped it.
//
// Mailboxes. Each boundary link owns a single-producer mailbox: the
// source shard appends during its window, the barrier drains everything
// into the destination engine while all shards are parked (the channel
// synchronization gives the happens-before edge, so no atomics are
// needed). Draining runs the mailbox's transfer hook, which re-homes
// pooled packet ownership from source-side to destination-side free lists
// — the only moment both sides are quiescent.
package sim

import (
	"math"
	"time"
)

// mailEntry is one posted cross-shard delivery.
type mailEntry struct {
	at, schedAt time.Duration
	seq         uint64
	arg         any
}

// Mailbox is a single-producer, barrier-drained channel for cross-shard
// event handoff. The source shard Posts during its window; the Group
// drains every mailbox at every barrier, injecting each entry into the
// destination engine with its source-side ordering key.
type Mailbox struct {
	name string
	src  *Engine
	dst  *Engine
	h    ArgHandler
	// transfer re-homes the posted argument's resource ownership to the
	// destination side. It runs on the barrier goroutine with both shards
	// parked; nil passes the argument through untouched.
	transfer func(any) any

	entries []mailEntry
	hw      int
}

// NewMailbox creates a mailbox delivering src-shard posts to h on the dst
// engine. transfer (optional) re-homes each argument at drain time.
func NewMailbox(name string, src, dst *Engine, h ArgHandler, transfer func(any) any) *Mailbox {
	return &Mailbox{name: name, src: src, dst: dst, h: h, transfer: transfer}
}

// Name returns the label the mailbox was created with.
func (m *Mailbox) Name() string { return m.name }

// Post files a delivery due at `at`, carrying the source shard's
// scheduling key (schedAt, seq). Call only from the source shard.
func (m *Mailbox) Post(at, schedAt time.Duration, seq uint64, arg any) {
	m.entries = append(m.entries, mailEntry{at: at, schedAt: schedAt, seq: seq, arg: arg})
	if len(m.entries) > m.hw {
		m.hw = len(m.entries)
	}
}

// HighWater reports the most entries the mailbox has held between drains
// — the cross-shard backlog metric surfaced by the engine benchmark.
func (m *Mailbox) HighWater() int { return m.hw }

// drain injects every posted entry into the destination engine. Runs on
// the barrier goroutine with all shards parked.
func (m *Mailbox) drain() {
	for i := range m.entries {
		en := &m.entries[i]
		arg := en.arg
		if m.transfer != nil {
			arg = m.transfer(arg)
		}
		m.dst.inject(en.at, en.schedAt, m.src.src, en.seq, m.h, arg)
		en.arg = nil
	}
	m.entries = m.entries[:0]
}

// shardWorker is one shard's resident goroutine: it parks on cmd,
// executes one RunBefore per command and reports back on done.
type shardWorker struct {
	eng  *Engine
	cmd  chan [2]time.Duration
	done chan<- int
	idx  int
	// busy accumulates wall-clock time spent executing (not parked);
	// written by the worker, read by the Group after a barrier, ordered
	// by the done channel.
	busy time.Duration
}

func (w *shardWorker) loop() {
	for lim := range w.cmd {
		t0 := time.Now() //vcalint:ignore determinism worker busy-time metric; never read by simulation logic
		w.eng.RunBefore(lim[0], lim[1])
		w.busy += time.Since(t0) //vcalint:ignore determinism worker busy-time metric; never read by simulation logic
		w.done <- w.idx
	}
}

// GroupStats is the sharded run's performance accounting, read after the
// run via Group.Stats.
type GroupStats struct {
	// Windows is how many synchronization windows the run used.
	Windows uint64
	// WallSeconds is wall-clock time spent inside Run/RunUntil.
	WallSeconds float64
	// ShardProcessed is each shard engine's executed-event count.
	ShardProcessed []uint64
	// ShardBusySeconds is wall-clock time each shard spent executing.
	ShardBusySeconds []float64
	// ShardBarrierWaitFrac is the fraction of the run each shard spent
	// parked at barriers (1 - busy/wall).
	ShardBarrierWaitFrac []float64
	// MailboxHighWater is the largest cross-shard mailbox backlog
	// observed between any two drains, across all mailboxes.
	MailboxHighWater int
}

// Group runs one simulation partitioned across shard engines under a
// control engine, with conservative-window synchronization. Create with
// NewGroup, Register every boundary mailbox, then drive with RunUntil /
// Run and release the shard goroutines with Close. All methods must be
// called from one goroutine (the barrier goroutine); the shard engines
// must not be touched while a RunUntil/Run is in flight.
type Group struct {
	ctrl   *Engine
	shards []*Engine
	boxes  []*Mailbox
	// lookahead returns the current conservative window length: the
	// minimum positive boundary delay. Re-evaluated every window, so a
	// timeline reshaping a boundary link mid-run is picked up at the next
	// barrier. It must stay positive; the Group panics otherwise.
	lookahead func() time.Duration

	workers []*shardWorker
	doneCh  chan int
	now     time.Duration // window clock: everything with at < now has run
	windows uint64
	wall    time.Duration
	closed  bool
}

// NewGroup assembles a shard group. ctrl holds every global (cross-shard)
// event and is assigned domain 0; shards are assigned domains 1..N in
// order. lookahead supplies the conservative window length and is
// re-evaluated at every window boundary. The shard goroutines start
// immediately; call Close when done with the group.
func NewGroup(ctrl *Engine, shards []*Engine, lookahead func() time.Duration) *Group {
	g := &Group{ctrl: ctrl, shards: shards, lookahead: lookahead}
	g.ctrl.src = 0
	g.doneCh = make(chan int, len(shards))
	for i, s := range shards {
		s.src = uint32(i + 1)
		w := &shardWorker{eng: s, cmd: make(chan [2]time.Duration), done: g.doneCh, idx: i}
		g.workers = append(g.workers, w)
		go w.loop()
	}
	return g
}

// Ctrl returns the control engine — the one global callbacks (timelines,
// samplers, warmup snapshots) must schedule on.
func (g *Group) Ctrl() *Engine { return g.ctrl }

// Shards returns the shard engines in domain order.
func (g *Group) Shards() []*Engine { return g.shards }

// Register adds a boundary mailbox to the barrier drain set.
func (g *Group) Register(m *Mailbox) { g.boxes = append(g.boxes, m) }

// Close releases the shard goroutines. The group is unusable afterwards.
func (g *Group) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, w := range g.workers {
		close(w.cmd)
	}
}

// runSegment runs every shard to the key (atLimit, schedLimit) in
// parallel, waits for all of them, then drains every mailbox. Shards with
// nothing due before the limit are not woken.
//
//vca:hotpath shard barrier dispatch, once per conservative window
func (g *Group) runSegment(atLimit, schedLimit time.Duration) {
	dispatched := 0
	for _, w := range g.workers {
		at, schedAt, ok := w.eng.NextKey()
		if !ok || at > atLimit || (at == atLimit && schedAt >= schedLimit) {
			continue
		}
		w.cmd <- [2]time.Duration{atLimit, schedLimit}
		dispatched++
	}
	for i := 0; i < dispatched; i++ {
		<-g.doneCh
	}
	for _, m := range g.boxes {
		m.drain()
	}
}

// advanceShards moves every shard clock (and the control clock) forward
// to t, so a barrier-time callback schedules from the barrier instant.
func (g *Group) advanceShards(t time.Duration) {
	for _, s := range g.shards {
		s.advanceTo(t)
	}
	g.ctrl.advanceTo(t)
}

// window executes one conservative window [g.now, wEnd): control events
// strictly inside the window run at their exact key, with every shard
// advanced to precede them; the remainder of the window then runs in
// parallel. Mailbox entries posted during the window are all due at or
// after wEnd (the lookahead guarantee), so draining at each barrier can
// never deliver into the window's own past.
func (g *Group) window(wEnd time.Duration) {
	for {
		gAt, gSchedAt, ok := g.ctrl.NextKey()
		if !ok || gAt >= wEnd {
			break
		}
		g.runSegment(gAt, gSchedAt)
		g.advanceShards(gAt)
		g.ctrl.Step()
	}
	g.runSegment(wEnd, math.MinInt64)
	g.windows++
}

// earliest reports the earliest pending event time across the control
// engine and every shard (mailboxes are always drained at this point).
func (g *Group) earliest() (time.Duration, bool) {
	best, ok := time.Duration(math.MaxInt64), false
	if at, _, k := g.ctrl.NextKey(); k {
		best, ok = at, true
	}
	for _, s := range g.shards {
		if at, _, k := s.NextKey(); k && at < best {
			best, ok = at, true
		}
	}
	return best, ok
}

func (g *Group) checkLookahead() time.Duration {
	l := g.lookahead()
	if l <= 0 {
		panic("sim: shard group lookahead must stay positive (a boundary link's delay floor was reshaped to zero)")
	}
	return l
}

// RunUntil executes every event with at <= t across all shards and the
// control engine, then advances every clock to exactly t — the sharded
// equivalent of Engine.RunUntil, byte-identical in effect.
func (g *Group) RunUntil(t time.Duration) {
	t0 := time.Now() //vcalint:ignore determinism wall-time accounting for SpeedupStats; never read by simulation logic
	for {
		l := g.checkLookahead()
		next, ok := g.earliest()
		if !ok || next > t {
			break
		}
		if next > g.now {
			// Dead time: no event anywhere before next, so the next
			// window can start there without missing anything.
			g.now = next
		}
		wEnd := g.now + l
		if wEnd > t {
			break
		}
		g.window(wEnd)
		g.now = wEnd
	}
	// Closing pass: everything left with at <= t. Any send here happens
	// at tau >= g.now, so it arrives at tau+L > t — beyond the horizon,
	// exactly the events a sequential RunUntil(t) would leave pending.
	for {
		gAt, gSchedAt, ok := g.ctrl.NextKey()
		if !ok || gAt > t {
			break
		}
		g.runSegment(gAt, gSchedAt)
		g.advanceShards(gAt)
		g.ctrl.Step()
	}
	g.runSegment(t, math.MaxInt64)
	g.advanceShards(t)
	if t > g.now {
		g.now = t
	}
	g.wall += time.Since(t0) //vcalint:ignore determinism wall-time accounting for SpeedupStats
}

// Run executes windows until every engine is drained — the sharded
// equivalent of Engine.Run, used by harnesses to drain a stopped call.
func (g *Group) Run() {
	t0 := time.Now() //vcalint:ignore determinism wall-time accounting for SpeedupStats; never read by simulation logic
	for {
		l := g.checkLookahead()
		next, ok := g.earliest()
		if !ok {
			break
		}
		if next > g.now {
			g.now = next
		}
		g.window(g.now + l)
		g.now += l
	}
	g.wall += time.Since(t0) //vcalint:ignore determinism wall-time accounting for SpeedupStats
}

// Live sums outstanding pooled events across the control engine and all
// shards — the group-wide leak detector.
func (g *Group) Live() int {
	n := g.ctrl.Live()
	for _, s := range g.shards {
		n += s.Live()
	}
	return n
}

// Pending sums live queued events across the control engine, all shards,
// and all undelivered mailbox entries.
func (g *Group) Pending() int {
	n := g.ctrl.Pending()
	for _, s := range g.shards {
		n += s.Pending()
	}
	for _, m := range g.boxes {
		n += len(m.entries)
	}
	return n
}

// Stats reports the run's window count, wall time, per-shard throughput
// and barrier-wait accounting, and the deepest mailbox backlog. Call
// after RunUntil/Run returns (never concurrently with one).
func (g *Group) Stats() GroupStats {
	st := GroupStats{Windows: g.windows, WallSeconds: g.wall.Seconds()}
	for _, w := range g.workers {
		busy := w.busy.Seconds()
		frac := 0.0
		if st.WallSeconds > 0 {
			frac = 1 - busy/st.WallSeconds
			if frac < 0 {
				frac = 0
			}
		}
		st.ShardProcessed = append(st.ShardProcessed, w.eng.Processed())
		st.ShardBusySeconds = append(st.ShardBusySeconds, busy)
		st.ShardBarrierWaitFrac = append(st.ShardBarrierWaitFrac, frac)
	}
	for _, m := range g.boxes {
		if m.hw > st.MailboxHighWater {
			st.MailboxHighWater = m.hw
		}
	}
	return st
}
