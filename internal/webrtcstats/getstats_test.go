package webrtcstats

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestReportGoldenJSONL pins the getStats wire schema against a golden
// file: tools written against real browser getStats dumps parse these
// lines by field name, so a renamed or retyped field is a breaking
// change that must show up in review as a golden diff. Regenerate with
// `UPDATE_GOLDEN=1 go test ./internal/webrtcstats -run Golden`.
func TestReportGoldenJSONL(t *testing.T) {
	r := Report{
		Outbound: OutboundRTP{
			TUs: 15_000_000, Type: "outbound-rtp", Client: "c1",
			TargetBitrate: 1_700_000, FPS: 24, FrameWidth: 1280, FrameHeight: 720,
			QP: 31.5, FIRCount: 2, BytesSent: 3_187_200,
			NackCount: 14, RetransmittedPacketsSent: 11,
		},
		Inbound: []InboundRTP{
			{
				TUs: 15_000_000, Type: "inbound-rtp", Client: "c1", Origin: "c2",
				FramesDecoded: 358, FPS: 24, FrameWidth: 640, FrameHeight: 360,
				FreezeCount: 1, TotalFreezesMs: 533.3, BytesReceived: 1_912_300,
				NackCount: 9, RetransmittedPacketsReceived: 7, JitterBufferDelay: 1.284,
			},
			{
				TUs: 15_000_000, Type: "inbound-rtp", Client: "c1", Origin: "c3",
				FramesDecoded: 120, FPS: 8, FrameWidth: 320, FrameHeight: 180,
				BytesReceived: 240_100,
			},
		},
		Pair: CandidatePair{
			TUs: 15_000_000, Type: "candidate-pair", Client: "c1",
			RTTSeconds: 0.082, AvailableOut: 1_900_000,
			BytesSent: 3_400_000, BytesRecv: 2_152_400,
		},
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range r.Entries() {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}

	golden := filepath.Join("testdata", "getstats.golden.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("getStats JSONL schema drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Structural floor independent of the golden bytes: every line is
	// valid JSON with the spec discriminator.
	for i, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if m["type"] == "" || m["t_us"] == nil || m["client"] == nil {
			t.Errorf("line %d missing type/t_us/client: %s", i, line)
		}
	}
}
