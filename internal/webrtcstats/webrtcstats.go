// Package webrtcstats emulates the per-second statistics surface the paper
// reads from Chrome's WebRTC getStats() API (§3.2): encode parameters of
// the outbound stream (FPS, quantization parameter, frame width), decode
// state of the inbound stream, cumulative freeze time and FIR counts.
//
// The paper notes Zoom-Chrome exposes no video stats (DataChannels); vcalab
// records samples for every client and the experiment layer decides which
// to report, mirroring the paper's Meet / Teams-Chrome restriction.
package webrtcstats

import (
	"time"

	"vcalab/internal/codec"
)

// Sample is one per-second stats snapshot.
type Sample struct {
	T time.Duration // time since call start

	// Outbound (sender-side outbound-rtp).
	Out          codec.EncodeParams
	OutTargetBps float64
	// FIRCount is the cumulative count of FIRs received for the outbound
	// video (Fig 3b's metric).
	FIRCount int

	// Inbound (receiver-side inbound-rtp), aggregated across remotes.
	In            codec.EncodeParams
	InFramesTotal int           // cumulative displayed frames
	FreezeTime    time.Duration // cumulative freeze duration (paper formula)
}

// Recorder accumulates samples for one client over one call.
type Recorder struct {
	Samples []Sample
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add appends a sample.
func (r *Recorder) Add(s Sample) { r.Samples = append(r.Samples, s) }

// Last returns the most recent sample and true, or a zero sample and false.
func (r *Recorder) Last() (Sample, bool) {
	if len(r.Samples) == 0 {
		return Sample{}, false
	}
	return r.Samples[len(r.Samples)-1], true
}

// MedianOut returns the median outbound encode parameters over samples with
// T in [from, to) — the aggregation behind Fig 2.
func (r *Recorder) MedianOut(from, to time.Duration) codec.EncodeParams {
	var fps, qp, w []float64
	for _, s := range r.Samples {
		if s.T < from || s.T >= to {
			continue
		}
		fps = append(fps, s.Out.FPS)
		qp = append(qp, s.Out.QP)
		w = append(w, float64(s.Out.Width))
	}
	return codec.EncodeParams{
		FPS:   median(fps),
		QP:    median(qp),
		Width: int(median(w)),
	}
}

// MedianIn returns the median inbound encode parameters over [from, to),
// with FPS measured from displayed-frame deltas rather than the encoder's
// nominal rate (what a receiver-side stats reader sees).
func (r *Recorder) MedianIn(from, to time.Duration) codec.EncodeParams {
	var fps, qp, w []float64
	var prev *Sample
	for i := range r.Samples {
		s := &r.Samples[i]
		if s.T < from || s.T >= to {
			prev = s
			continue
		}
		if prev != nil {
			dt := (s.T - prev.T).Seconds()
			if dt > 0 {
				fps = append(fps, float64(s.InFramesTotal-prev.InFramesTotal)/dt)
			}
		}
		qp = append(qp, s.In.QP)
		w = append(w, float64(s.In.Width))
		prev = s
	}
	return codec.EncodeParams{
		FPS:   median(fps),
		QP:    median(qp),
		Width: int(median(w)),
	}
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	// Insertion sort: sample counts are small (per-second over minutes).
	sorted := append([]float64(nil), vs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
