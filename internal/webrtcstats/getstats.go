package webrtcstats

// getStats-style periodic snapshots. The paper's ground truth for VCA
// behaviour is the browser's RTCPeerConnection.getStats() dump; these
// structs mirror the spec dictionaries (outbound-rtp, inbound-rtp,
// candidate-pair) closely enough that tooling written against real
// getStats JSONL works on the simulator's metrics stream unchanged.
// Field names follow https://www.w3.org/TR/webrtc-stats/ camelCase.

// OutboundRTP is one outbound-rtp video snapshot: what the client's
// encoder is currently producing and aiming for.
type OutboundRTP struct {
	TUs           int64   `json:"t_us"`
	Type          string  `json:"type"` // "outbound-rtp"
	Client        string  `json:"client"`
	TargetBitrate float64 `json:"targetBitrate"` // encoder budget, bps
	FPS           float64 `json:"framesPerSecond"`
	FrameWidth    int     `json:"frameWidth"`
	FrameHeight   int     `json:"frameHeight"`
	QP            float64 `json:"qpSum,omitempty"` // current QP, not a sum; kept under the spec name
	FIRCount      int     `json:"firCount"`
	BytesSent     uint64  `json:"bytesSent"`
	// Loss-recovery counters (omitted when recovery is off, keeping the
	// snapshot identical to pre-recovery builds). The SFU answers NACKs
	// on the sender's behalf, so these count NACKs received — and
	// retransmissions sent — for this client's media at its home SFU.
	NackCount                uint64 `json:"nackCount,omitempty"`
	RetransmittedPacketsSent uint64 `json:"retransmittedPacketsSent,omitempty"`
}

// InboundRTP is one inbound-rtp video snapshot for a single remote
// origin rendered at this client.
type InboundRTP struct {
	TUs            int64   `json:"t_us"`
	Type           string  `json:"type"` // "inbound-rtp"
	Client         string  `json:"client"`
	Origin         string  `json:"origin"` // remote participant this stream came from
	FramesDecoded  int     `json:"framesDecoded"`
	FPS            float64 `json:"framesPerSecond"`
	FrameWidth     int     `json:"frameWidth"`
	FrameHeight    int     `json:"frameHeight"`
	FreezeCount    int     `json:"freezeCount"`
	TotalFreezesMs float64 `json:"totalFreezesDuration"` // spec reports seconds; we keep ms and say so in the name
	BytesReceived  uint64  `json:"bytesReceived"`
	// Loss-recovery counters (omitted when recovery is off): NACKs this
	// receiver sent for the stream, retransmissions that healed it, and
	// the cumulative time packets sat in the jitter buffer (spec:
	// jitterBufferDelay is a sum of seconds, divided by
	// jitterBufferEmittedCount for the average).
	NackCount                    uint64  `json:"nackCount,omitempty"`
	RetransmittedPacketsReceived uint64  `json:"retransmittedPacketsReceived,omitempty"`
	JitterBufferDelay            float64 `json:"jitterBufferDelay,omitempty"`
}

// CandidatePair is one candidate-pair snapshot: the client's view of
// its path to the SFU.
type CandidatePair struct {
	TUs          int64   `json:"t_us"`
	Type         string  `json:"type"` // "candidate-pair"
	Client       string  `json:"client"`
	RTTSeconds   float64 `json:"currentRoundTripTime"`
	AvailableOut float64 `json:"availableOutgoingBitrate"` // CC target, bps
	BytesSent    uint64  `json:"bytesSent"`
	BytesRecv    uint64  `json:"bytesReceived"`
}

// Report is one client's full getStats snapshot at one instant.
type Report struct {
	Outbound OutboundRTP
	Inbound  []InboundRTP
	Pair     CandidatePair
}

// Entries flattens the report into the individually-marshallable stats
// lines, in spec-dump order: outbound, inbounds, candidate pair.
func (r *Report) Entries() []any {
	out := make([]any, 0, len(r.Inbound)+2)
	out = append(out, r.Outbound)
	for i := range r.Inbound {
		out = append(out, r.Inbound[i])
	}
	out = append(out, r.Pair)
	return out
}
