package webrtcstats

import (
	"testing"
	"time"

	"vcalab/internal/codec"
)

func sample(t int, fps float64, qp float64, w int, frames int) Sample {
	return Sample{
		T:             time.Duration(t) * time.Second,
		Out:           codec.EncodeParams{FPS: fps, QP: qp, Width: w},
		In:            codec.EncodeParams{FPS: fps, QP: qp, Width: w},
		InFramesTotal: frames,
	}
}

func TestRecorderLast(t *testing.T) {
	r := NewRecorder()
	if _, ok := r.Last(); ok {
		t.Error("Last() on empty recorder returned ok")
	}
	r.Add(sample(1, 30, 25, 640, 30))
	r.Add(sample(2, 15, 30, 320, 45))
	last, ok := r.Last()
	if !ok || last.Out.FPS != 15 {
		t.Errorf("Last = %+v", last)
	}
}

func TestMedianOutWindow(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 10; i++ {
		fps := 30.0
		if i > 5 {
			fps = 10.0 // degrade in the second half
		}
		r.Add(sample(i, fps, 25, 640, i*30))
	}
	first := r.MedianOut(0, 5500*time.Millisecond)
	second := r.MedianOut(5500*time.Millisecond, 11*time.Second)
	if first.FPS != 30 || second.FPS != 10 {
		t.Errorf("window medians: first %.0f, second %.0f", first.FPS, second.FPS)
	}
	if first.Width != 640 {
		t.Errorf("width = %d", first.Width)
	}
}

func TestMedianInFPSFromFrameDeltas(t *testing.T) {
	r := NewRecorder()
	// 30 displayed frames per second for 5s, then a stall (no frames).
	frames := 0
	for i := 1; i <= 10; i++ {
		if i <= 5 {
			frames += 30
		}
		r.Add(sample(i, 30, 25, 640, frames))
	}
	active := r.MedianIn(0, 5500*time.Millisecond)
	stalled := r.MedianIn(6*time.Second, 11*time.Second)
	if active.FPS < 25 {
		t.Errorf("active FPS = %.1f, want ~30 (measured from deltas)", active.FPS)
	}
	if stalled.FPS != 0 {
		t.Errorf("stalled FPS = %.1f, want 0", stalled.FPS)
	}
}

func TestMedianEmptyWindow(t *testing.T) {
	r := NewRecorder()
	r.Add(sample(1, 30, 25, 640, 30))
	p := r.MedianOut(100*time.Second, 200*time.Second)
	if p.FPS != 0 || p.Width != 0 {
		t.Errorf("empty window medians = %+v", p)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("empty median = %v", got)
	}
}
