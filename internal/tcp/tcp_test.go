package tcp

import (
	"testing"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
	"vcalab/internal/stats"
)

// pair builds: src --(bottleneck rateBps, delay)--> router --> dst, with an
// unconstrained reverse path for acks.
func pair(eng *sim.Engine, rateBps float64, delay time.Duration) (*netem.Host, *netem.Host) {
	src := netem.NewHost(eng, "src")
	dst := netem.NewHost(eng, "dst")
	rt := netem.NewRouter("rt")
	src.SetUplink(netem.NewLink(eng, "src-rt", netem.LinkConfig{RateBps: rateBps, Delay: delay}, rt))
	dst.SetUplink(netem.NewLink(eng, "dst-rt", netem.LinkConfig{Delay: delay}, rt))
	rt.Route("src", netem.NewLink(eng, "rt-src", netem.LinkConfig{}, src))
	rt.Route("dst", netem.NewLink(eng, "rt-dst", netem.LinkConfig{}, dst))
	return src, dst
}

func TestBulkFlowFillsLink(t *testing.T) {
	eng := sim.New(1)
	src, dst := pair(eng, 10e6, 5*time.Millisecond)
	f := NewFlow(eng, "iperf", src, dst, 5201, Config{})
	m := stats.NewMeter(time.Second)
	f.OnDeliver(func(at time.Duration, n int) { m.AddBytes(at, n) })
	f.Start(0)
	eng.RunUntil(20 * time.Second)
	f.Stop()
	got := m.MeanRateMbps(5*time.Second, 20*time.Second)
	if got < 8.5 || got > 10.1 {
		t.Errorf("steady goodput = %.2f Mbps on a 10 Mbps link, want 8.5-10", got)
	}
}

func TestBulkFlowSlowLink(t *testing.T) {
	eng := sim.New(2)
	src, dst := pair(eng, 0.5e6, 10*time.Millisecond)
	f := NewFlow(eng, "iperf", src, dst, 5201, Config{})
	m := stats.NewMeter(time.Second)
	f.OnDeliver(func(at time.Duration, n int) { m.AddBytes(at, n) })
	f.Start(0)
	eng.RunUntil(30 * time.Second)
	got := m.MeanRateMbps(5*time.Second, 30*time.Second)
	if got < 0.4 || got > 0.52 {
		t.Errorf("goodput = %.3f Mbps on a 0.5 Mbps link, want ~0.42-0.5", got)
	}
}

func TestBoundedTransferCompletes(t *testing.T) {
	eng := sim.New(3)
	src, dst := pair(eng, 5e6, 5*time.Millisecond)
	f := NewFlow(eng, "dl", src, dst, 80, Config{})
	done := time.Duration(0)
	f.OnComplete(func() { done = eng.Now() })
	var bytes int
	f.OnDeliver(func(_ time.Duration, n int) { bytes += n })
	f.Start(1_000_000)
	eng.RunUntil(time.Minute)
	if done == 0 {
		t.Fatal("transfer never completed")
	}
	if bytes < 1_000_000 {
		t.Errorf("delivered %d bytes, want >= 1MB", bytes)
	}
	// 1 MB over 5 Mbps ≈ 1.6 s + slow start; allow up to 5 s.
	if done > 5*time.Second {
		t.Errorf("1 MB over 5 Mbps took %v", done)
	}
}

func TestLossRecovery(t *testing.T) {
	eng := sim.New(4)
	src, dst := pair(eng, 2e6, 10*time.Millisecond)
	// Small queue to force drops.
	src.Uplink().SetQueueBytes(6 * 1500)
	f := NewFlow(eng, "iperf", src, dst, 5201, Config{})
	m := stats.NewMeter(time.Second)
	f.OnDeliver(func(at time.Duration, n int) { m.AddBytes(at, n) })
	f.Start(0)
	eng.RunUntil(30 * time.Second)
	if f.FastRecoveries == 0 {
		t.Error("no fast recoveries despite a tiny queue")
	}
	got := m.MeanRateMbps(5*time.Second, 30*time.Second)
	if got < 1.2 {
		t.Errorf("goodput = %.2f Mbps with small queue on 2 Mbps link, want >= 1.2", got)
	}
}

func TestRTORecoveryAfterBlackout(t *testing.T) {
	eng := sim.New(5)
	src, dst := pair(eng, 2e6, 10*time.Millisecond)
	f := NewFlow(eng, "iperf", src, dst, 5201, Config{})
	m := stats.NewMeter(time.Second)
	f.OnDeliver(func(at time.Duration, n int) { m.AddBytes(at, n) })
	f.Start(0)
	// Blackout: shrink the link to a trickle with a tiny queue at t=5s.
	eng.Schedule(5*time.Second, func() {
		src.Uplink().SetRate(1000)
		src.Uplink().SetQueueBytes(1500)
	})
	eng.Schedule(15*time.Second, func() {
		src.Uplink().SetRate(2e6)
		src.Uplink().SetQueueBytes(netem.DefaultQueueBytes(2e6))
	})
	eng.RunUntil(40 * time.Second)
	if f.RTOCount == 0 {
		t.Error("no RTOs during a 10 s blackout")
	}
	got := m.MeanRateMbps(25*time.Second, 40*time.Second)
	if got < 1.2 {
		t.Errorf("post-blackout goodput = %.2f Mbps, want >= 1.2 (recovered)", got)
	}
}

func TestTwoFlowsShareRoughlyFairly(t *testing.T) {
	eng := sim.New(6)
	// Two senders behind one shared 4 Mbps bottleneck.
	srcA := netem.NewHost(eng, "a")
	srcB := netem.NewHost(eng, "b")
	dst := netem.NewHost(eng, "dst")
	sw := netem.NewRouter("sw")
	rt := netem.NewRouter("rt")
	srcA.SetUplink(netem.NewLink(eng, "a-sw", netem.LinkConfig{Delay: time.Millisecond}, sw))
	srcB.SetUplink(netem.NewLink(eng, "b-sw", netem.LinkConfig{Delay: time.Millisecond}, sw))
	sw.DefaultRoute(netem.NewLink(eng, "sw-rt", netem.LinkConfig{RateBps: 4e6, Delay: 5 * time.Millisecond}, rt))
	rt.Route("dst", netem.NewLink(eng, "rt-dst", netem.LinkConfig{}, dst))
	back := netem.NewLink(eng, "rt-sw-back", netem.LinkConfig{Delay: time.Millisecond}, sw)
	_ = back
	dst.SetUplink(netem.NewLink(eng, "dst-rt", netem.LinkConfig{Delay: 5 * time.Millisecond}, rt))
	rt.Route("a", netem.NewLink(eng, "rt-a", netem.LinkConfig{}, srcA))
	rt.Route("b", netem.NewLink(eng, "rt-b", netem.LinkConfig{}, srcB))
	sw.Route("a", netem.NewLink(eng, "sw-a", netem.LinkConfig{}, srcA))
	sw.Route("b", netem.NewLink(eng, "sw-b", netem.LinkConfig{}, srcB))

	fa := NewFlow(eng, "fa", srcA, dst, 5001, Config{})
	fb := NewFlow(eng, "fb", srcB, dst, 5002, Config{})
	ma, mb := stats.NewMeter(time.Second), stats.NewMeter(time.Second)
	fa.OnDeliver(func(at time.Duration, n int) { ma.AddBytes(at, n) })
	fb.OnDeliver(func(at time.Duration, n int) { mb.AddBytes(at, n) })
	fa.Start(0)
	fb.Start(0)
	eng.RunUntil(180 * time.Second)
	ra := ma.MeanRateMbps(60*time.Second, 180*time.Second)
	rb := mb.MeanRateMbps(60*time.Second, 180*time.Second)
	share := stats.Share(ra, rb)
	if share < 0.25 || share > 0.75 {
		t.Errorf("share = %.2f (a=%.2f b=%.2f Mbps), want 0.25-0.75", share, ra, rb)
	}
	if ra+rb < 3.0 {
		t.Errorf("combined goodput = %.2f Mbps on 4 Mbps link, want >= 3", ra+rb)
	}
}

func TestStopHaltsTraffic(t *testing.T) {
	eng := sim.New(7)
	src, dst := pair(eng, 2e6, 5*time.Millisecond)
	f := NewFlow(eng, "iperf", src, dst, 5201, Config{})
	m := stats.NewMeter(time.Second)
	f.OnDeliver(func(at time.Duration, n int) { m.AddBytes(at, n) })
	f.Start(0)
	eng.RunUntil(5 * time.Second)
	f.Stop()
	eng.RunUntil(10 * time.Second)
	if after := m.MeanRateMbps(6*time.Second, 10*time.Second); after > 0.1 {
		t.Errorf("traffic after Stop = %.2f Mbps, want ~0", after)
	}
}

func TestRTTEstimate(t *testing.T) {
	eng := sim.New(8)
	src, dst := pair(eng, 10e6, 25*time.Millisecond) // ~50ms RTT
	f := NewFlow(eng, "iperf", src, dst, 5201, Config{})
	f.Start(0)
	eng.RunUntil(2 * time.Second)
	if f.SRTT() < 45*time.Millisecond || f.SRTT() > 250*time.Millisecond {
		t.Errorf("SRTT = %v, want ~50ms-250ms (base RTT 50ms + queueing)", f.SRTT())
	}
}
