// Package tcp implements a SACK-based loss recovery loop with CUBIC window
// growth over the netem substrate.
//
// It stands in for the paper's iPerf3 competitor (§5.2: TCP CUBIC server
// 2 ms away) and is the building block for the Netflix traffic model
// (§5.3). The model is deliberately at the "congestion dynamics" level:
// segment-accurate sequencing, ack clocking, dup-ack fast retransmit with
// SACK-driven hole filling and pipe accounting (RFC 6675 in spirit), RTO
// with exponential backoff, and CUBIC's W(t) = C(t-K)^3 + Wmax growth — but
// no handshake or window scaling, which play no role in the paper's results.
package tcp

import (
	"math"
	"sort"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
)

// Config tunes a Flow. Zero fields take the documented defaults.
type Config struct {
	MSS          int           // payload bytes per segment (default 1460)
	WireOverhead int           // header bytes per packet on the wire (default 40)
	AckSize      int           // ack packet wire size (default 40)
	InitCwnd     float64       // initial window, packets (default 10)
	Beta         float64       // CUBIC multiplicative decrease (default 0.7)
	C            float64       // CUBIC scaling constant (default 0.4)
	RTOMin       time.Duration // minimum RTO (default 200ms)
}

func (c *Config) defaults() {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.WireOverhead == 0 {
		c.WireOverhead = 40
	}
	if c.AckSize == 0 {
		c.AckSize = 40
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 10
	}
	if c.Beta == 0 {
		c.Beta = 0.7
	}
	if c.C == 0 {
		c.C = 0.4
	}
	if c.RTOMin == 0 {
		c.RTOMin = 200 * time.Millisecond
	}
}

type segment struct {
	Seq int64
}

// ack carries the cumulative ack plus SACK information. Sacked lists
// out-of-order segments buffered at the receiver (capped; a modeling
// shortcut for SACK blocks — the wire size stays a constant AckSize).
type ack struct {
	CumAck int64
	Echo   time.Duration // SentAt of the segment that triggered this ack
	Sacked []int64
}

const maxSackList = 256

// segState tracks a sender-side segment in the SACK scoreboard.
type segState uint8

const (
	segOutstanding segState = iota // sent, fate unknown
	segSacked                      // receiver holds it (out of order)
	segLost                        // declared lost, awaiting retransmit
	segRexted                      // retransmitted, fate unknown
)

// Flow is a unidirectional bulk TCP transfer from a sender host to a
// receiver host/port. Create with NewFlow, then Start.
type Flow struct {
	Name string

	eng  *sim.Engine
	cfg  Config
	src  *netem.Host
	dst  *netem.Host
	port int

	// Sender state.
	running    bool
	total      int64 // segments to send; 0 = unlimited
	nextSeq    int64
	cumAck     int64
	dupAcks    int
	cwnd       float64
	ssthresh   float64
	inRecovery bool
	recoverSeq int64
	// scoreboard tracks per-segment state for the unacked window
	// (RFC 6675 in spirit); pipeCnt counts segments believed in flight.
	scoreboard map[int64]segState
	highSacked int64
	pipeCnt    int

	// CUBIC state.
	wMax       float64
	epochStart time.Duration

	// RTT estimation.
	srtt, rttvar time.Duration
	rtoBackoff   int
	rtoTimer     sim.Timer
	rtoArmed     bool

	// Receiver state.
	rcvNext int64
	rcvBuf  map[int64]bool

	// Instrumentation.
	DeliveredSegs  int64 // in-order segments delivered to the app
	Retransmits    int64
	RTOCount       int64
	FastRecoveries int64

	onDeliver      func(t time.Duration, payloadBytes int)
	onComplete     func()
	completeSignal bool
}

// NewFlow wires a flow from src to dst:port. The receiver handler is
// registered on dst immediately; data does not move until Start.
func NewFlow(eng *sim.Engine, name string, src, dst *netem.Host, port int, cfg Config) *Flow {
	cfg.defaults()
	f := &Flow{
		Name: name, eng: eng, cfg: cfg, src: src, dst: dst, port: port,
		cwnd: cfg.InitCwnd, ssthresh: math.Inf(1),
		scoreboard: map[int64]segState{}, rcvBuf: map[int64]bool{},
	}
	dst.HandleFunc(port, f.onData)
	src.HandleFunc(port, f.onAck)
	return f
}

// OnDeliver registers a callback invoked for every in-order payload chunk
// delivered at the receiver (the throughput instrument).
func (f *Flow) OnDeliver(fn func(t time.Duration, payloadBytes int)) { f.onDeliver = fn }

// OnComplete registers a callback fired when a bounded transfer finishes.
func (f *Flow) OnComplete(fn func()) { f.onComplete = fn }

// Start begins transmitting. totalBytes = 0 means an unbounded (iPerf-like)
// flow; otherwise the flow completes after delivering that many bytes.
func (f *Flow) Start(totalBytes int64) {
	f.running = true
	if totalBytes > 0 {
		f.total = (totalBytes + int64(f.cfg.MSS) - 1) / int64(f.cfg.MSS)
	}
	f.epochStart = f.eng.Now()
	f.trySend()
}

// Stop halts the sender (e.g. the competing application ends).
func (f *Flow) Stop() {
	f.running = false
	f.rtoTimer.Stop()
}

// Cwnd exposes the congestion window in packets (for tests).
func (f *Flow) Cwnd() float64 { return f.cwnd }

// SRTT exposes the smoothed RTT estimate (for tests).
func (f *Flow) SRTT() time.Duration { return f.srtt }

func (f *Flow) trySend() {
	if !f.running {
		return
	}
	for float64(f.pipeCnt) < f.cwnd {
		if f.nextRexmit() {
			continue
		}
		if f.total > 0 && f.nextSeq >= f.total {
			return
		}
		f.scoreboard[f.nextSeq] = segOutstanding
		f.pipeCnt++
		f.sendSeg(f.nextSeq)
		f.nextSeq++
	}
}

// nextRexmit retransmits the lowest segment marked lost. It reports whether
// it sent anything.
func (f *Flow) nextRexmit() bool {
	var best int64 = -1
	for seq, st := range f.scoreboard {
		if st == segLost && (best == -1 || seq < best) {
			best = seq
		}
	}
	if best < 0 {
		return false
	}
	f.scoreboard[best] = segRexted
	f.pipeCnt++
	f.Retransmits++
	f.sendSeg(best)
	return true
}

func (f *Flow) sendSeg(seq int64) {
	f.src.Send(&netem.Packet{
		Size:    f.cfg.MSS + f.cfg.WireOverhead,
		From:    netem.Addr{Host: f.src.Name, Port: f.port},
		To:      netem.Addr{Host: f.dst.Name, Port: f.port},
		Flow:    f.Name,
		Payload: segment{Seq: seq},
	})
	f.ensureRTO()
}

// ensureRTO arms the retransmission timer if it is not already ticking.
// Unlike armRTO it never postpones an armed timer: a retransmission that is
// itself lost must still be caught by the original deadline.
func (f *Flow) ensureRTO() {
	if f.rtoArmed {
		return
	}
	f.rtoArmed = true
	f.rtoTimer = f.eng.Schedule(f.rto(), f.onRTO)
}

// onData runs at the receiver.
func (f *Flow) onData(pkt *netem.Packet) {
	seg := pkt.Payload.(segment)
	switch {
	case seg.Seq == f.rcvNext:
		f.rcvNext++
		delivered := int64(1)
		for f.rcvBuf[f.rcvNext] {
			delete(f.rcvBuf, f.rcvNext)
			f.rcvNext++
			delivered++
		}
		f.deliver(delivered)
	case seg.Seq > f.rcvNext:
		f.rcvBuf[seg.Seq] = true
	default:
		// Duplicate of already-delivered data; ack anyway.
	}
	a := ack{CumAck: f.rcvNext, Echo: pkt.SentAt}
	if len(f.rcvBuf) > 0 {
		for s := range f.rcvBuf {
			a.Sacked = append(a.Sacked, s)
		}
		// Sorted for determinism; lowest seqs are the most useful to the
		// sender, so the cap keeps those.
		sort.Slice(a.Sacked, func(i, j int) bool { return a.Sacked[i] < a.Sacked[j] })
		if len(a.Sacked) > maxSackList {
			a.Sacked = a.Sacked[:maxSackList]
		}
	}
	f.dst.Send(&netem.Packet{
		Size:    f.cfg.AckSize,
		From:    netem.Addr{Host: f.dst.Name, Port: f.port},
		To:      netem.Addr{Host: f.src.Name, Port: f.port},
		Flow:    f.Name + "/ack",
		Payload: a,
	})
}

func (f *Flow) deliver(segs int64) {
	f.DeliveredSegs += segs
	if f.onDeliver != nil {
		f.onDeliver(f.eng.Now(), int(segs)*f.cfg.MSS)
	}
	if f.total > 0 && f.DeliveredSegs >= f.total && !f.completeSignal {
		f.completeSignal = true
		if f.onComplete != nil {
			f.onComplete()
		}
	}
}

// onAck runs at the sender.
func (f *Flow) onAck(pkt *netem.Packet) {
	a := pkt.Payload.(ack)
	f.updateRTT(f.eng.Now() - a.Echo)

	for _, s := range a.Sacked {
		if s < f.cumAck {
			continue
		}
		if st, ok := f.scoreboard[s]; !ok || st == segOutstanding || st == segRexted {
			if ok && st != segSacked {
				f.pipeCnt--
			}
			f.scoreboard[s] = segSacked
			if s > f.highSacked {
				f.highSacked = s
			}
		}
	}

	if a.CumAck > f.cumAck {
		newly := a.CumAck - f.cumAck
		for s := f.cumAck; s < a.CumAck; s++ {
			if st, ok := f.scoreboard[s]; ok {
				if st == segOutstanding || st == segRexted {
					f.pipeCnt--
				}
				delete(f.scoreboard, s)
			}
		}
		f.cumAck = a.CumAck
		f.dupAcks = 0
		f.rtoBackoff = 0
		if f.inRecovery && f.cumAck >= f.recoverSeq {
			f.inRecovery = false
		}
		if !f.inRecovery {
			f.growCwnd(float64(newly))
		} else {
			f.markLostBelowHighSacked()
		}
		f.armRTO()
		f.trySend()
		return
	}

	// Duplicate ack.
	f.dupAcks++
	if f.dupAcks >= 3 && !f.inRecovery {
		f.fastRetransmit()
	}
	if f.inRecovery {
		f.markLostBelowHighSacked()
	}
	f.trySend() // pipe shrank via new SACK info
}

// markLostBelowHighSacked declares outstanding segments below the highest
// SACKed sequence lost: the receiver has buffered data beyond them, so they
// were dropped (FIFO links never reorder in this emulator).
func (f *Flow) markLostBelowHighSacked() {
	for seq := f.cumAck; seq < f.highSacked; seq++ {
		if f.scoreboard[seq] == segOutstanding {
			f.scoreboard[seq] = segLost
			f.pipeCnt--
		}
	}
}

func (f *Flow) fastRetransmit() {
	f.FastRecoveries++
	f.inRecovery = true
	f.recoverSeq = f.nextSeq
	f.markLostBelowHighSacked()
	f.enterLossEpoch()
}

// enterLossEpoch applies CUBIC's multiplicative decrease.
func (f *Flow) enterLossEpoch() {
	f.wMax = f.cwnd
	f.cwnd = math.Max(2, f.cwnd*f.cfg.Beta)
	f.ssthresh = f.cwnd
	f.epochStart = f.eng.Now()
}

// growCwnd applies slow start below ssthresh and CUBIC above it.
func (f *Flow) growCwnd(ackedSegs float64) {
	if f.cwnd < f.ssthresh {
		f.cwnd += ackedSegs
		return
	}
	t := (f.eng.Now() - f.epochStart).Seconds()
	k := math.Cbrt(f.wMax * (1 - f.cfg.Beta) / f.cfg.C)
	rtt := f.srtt.Seconds()
	if rtt <= 0 {
		rtt = 0.02
	}
	wTarget := f.cfg.C*math.Pow(t+rtt-k, 3) + f.wMax
	if wTarget > f.cwnd {
		f.cwnd += ackedSegs * (wTarget - f.cwnd) / f.cwnd
	} else {
		f.cwnd += ackedSegs * 0.01 / f.cwnd // TCP-friendly floor growth
	}
}

func (f *Flow) updateRTT(sample time.Duration) {
	if sample <= 0 {
		return
	}
	if f.srtt == 0 {
		f.srtt = sample
		f.rttvar = sample / 2
		return
	}
	diff := f.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	f.rttvar = (3*f.rttvar + diff) / 4
	f.srtt = (7*f.srtt + sample) / 8
}

func (f *Flow) rto() time.Duration {
	rto := f.srtt + 4*f.rttvar
	if rto < f.cfg.RTOMin {
		rto = f.cfg.RTOMin
	}
	for i := 0; i < f.rtoBackoff && rto < time.Minute; i++ {
		rto *= 2
	}
	return rto
}

// armRTO restarts the timer after forward progress (new cumulative ack).
func (f *Flow) armRTO() {
	f.rtoTimer.Stop()
	f.rtoArmed = false
	if f.nextSeq == f.cumAck {
		return // nothing outstanding
	}
	f.ensureRTO()
}

func (f *Flow) onRTO() {
	f.rtoArmed = false
	if !f.running || f.nextSeq == f.cumAck {
		return
	}
	f.RTOCount++
	f.rtoBackoff++
	f.ssthresh = math.Max(2, f.cwnd/2)
	f.cwnd = 1
	f.wMax = f.ssthresh
	f.inRecovery = true
	f.recoverSeq = f.nextSeq
	f.dupAcks = 0
	f.epochStart = f.eng.Now()
	// Everything unacked and un-SACKed is presumed lost.
	for seq := f.cumAck; seq < f.nextSeq; seq++ {
		if st := f.scoreboard[seq]; st == segOutstanding || st == segRexted {
			f.scoreboard[seq] = segLost
			f.pipeCnt--
		}
	}
	f.trySend()
}
