package stats

// MedianWindow maintains the median of a sliding multiset of float64
// samples in O(log n) amortized time per update, using the classic
// dual-heap arrangement with lazy deletion: a max-heap holds the lower
// half, a min-heap the upper half, and expired samples are tombstoned in a
// count map until they surface at a heap top. This replaces the O(w log w)
// sort the naive rolling median paid per emitted point.
//
// The zero value is ready to use. Values must not be NaN (ordering would
// be undefined); the vcalab pipeline only feeds it bitrates and latencies.
type MedianWindow struct {
	lo, hi  heapF64         // lo: max-heap (lower half), hi: min-heap (upper half)
	deleted map[float64]int // value -> pending lazy deletions
	nLo     int             // live (non-tombstoned) samples in lo
	nHi     int             // live samples in hi
}

// Len returns the number of live samples in the window.
func (m *MedianWindow) Len() int { return m.nLo + m.nHi }

// Push adds one sample.
func (m *MedianWindow) Push(v float64) {
	if m.nLo == 0 || v <= m.lo.top() {
		m.lo.push(v, true)
		m.nLo++
	} else {
		m.hi.push(v, false)
		m.nHi++
	}
	m.rebalance()
}

// Remove expires one sample previously Pushed (the window's trailing
// edge). The physical heap entry is tombstoned and evicted only when it
// reaches a heap top, keeping removal O(log n) amortized.
func (m *MedianWindow) Remove(v float64) {
	if m.deleted == nil {
		m.deleted = map[float64]int{}
	}
	m.deleted[v]++
	if m.nLo > 0 && v <= m.lo.top() {
		m.nLo--
		if v == m.lo.top() {
			m.prune(&m.lo, true)
		}
	} else {
		m.nHi--
		if len(m.hi.s) > 0 && v == m.hi.top() {
			m.prune(&m.hi, false)
		}
	}
	m.rebalance()
}

// Median returns the window median, computed exactly as
// Percentile(window, 50) would: the middle sample for odd counts, the
// linear interpolation of the two middle samples for even counts. It
// returns 0 for an empty window.
func (m *MedianWindow) Median() float64 {
	switch {
	case m.Len() == 0:
		return 0
	case m.nLo > m.nHi:
		return m.lo.top()
	default:
		// Match Percentile's sorted[lo]*(1-frac) + sorted[lo+1]*frac with
		// frac = 0.5 bit-for-bit.
		return m.lo.top()*0.5 + m.hi.top()*0.5
	}
}

// rebalance restores the size invariant nLo == nHi or nLo == nHi+1.
func (m *MedianWindow) rebalance() {
	if m.nLo > m.nHi+1 {
		m.prune(&m.lo, true)
		m.hi.push(m.lo.pop(true), false)
		m.nLo--
		m.nHi++
		m.prune(&m.lo, true)
	} else if m.nLo < m.nHi {
		m.prune(&m.hi, false)
		m.lo.push(m.hi.pop(false), true)
		m.nHi--
		m.nLo++
		m.prune(&m.hi, false)
	}
}

// prune pops tombstoned entries off the heap top until a live sample (or
// an empty heap) surfaces.
func (m *MedianWindow) prune(h *heapF64, maxHeap bool) {
	for len(h.s) > 0 {
		n, ok := m.deleted[h.top()]
		if !ok || n == 0 {
			return
		}
		if n == 1 {
			delete(m.deleted, h.top())
		} else {
			m.deleted[h.top()] = n - 1
		}
		h.pop(maxHeap)
	}
}

// heapF64 is a binary heap of float64 with the polarity chosen per call,
// avoiding the container/heap interface (and its per-op allocations) on
// this hot kernel.
type heapF64 struct{ s []float64 }

func (h *heapF64) top() float64 { return h.s[0] }

// less orders a before b for the requested polarity.
func heapLess(a, b float64, maxHeap bool) bool {
	if maxHeap {
		return a > b
	}
	return a < b
}

func (h *heapF64) push(v float64, maxHeap bool) {
	h.s = append(h.s, v)
	i := len(h.s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(h.s[i], h.s[parent], maxHeap) {
			break
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

func (h *heapF64) pop(maxHeap bool) float64 {
	top := h.s[0]
	last := len(h.s) - 1
	h.s[0] = h.s[last]
	h.s = h.s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && heapLess(h.s[l], h.s[best], maxHeap) {
			best = l
		}
		if r < last && heapLess(h.s[r], h.s[best], maxHeap) {
			best = r
		}
		if best == i {
			break
		}
		h.s[i], h.s[best] = h.s[best], h.s[i]
		i = best
	}
	return top
}
