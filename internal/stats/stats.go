// Package stats provides the measurement toolkit used throughout vcalab:
// rate meters that turn packet deliveries into bitrate time series, order
// statistics with 90% confidence intervals (the error bands on every figure
// in the paper), rolling medians, link-share computation, and the paper's
// time-to-recovery (TTR) metric from §4.
package stats

import (
	"math"
	"sort"
	"time"
)

// Series is a time-indexed sequence of samples. Times must be appended in
// non-decreasing order.
type Series struct {
	Times  []time.Duration
	Values []float64
}

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s Series) Len() int { return len(s.Values) }

// Slice returns the sub-series with from <= t < to.
func (s Series) Slice(from, to time.Duration) Series {
	lo := sort.Search(len(s.Times), func(i int) bool { return s.Times[i] >= from })
	hi := sort.Search(len(s.Times), func(i int) bool { return s.Times[i] >= to })
	return Series{Times: s.Times[lo:hi], Values: s.Values[lo:hi]}
}

// RollingMedian returns a new series where each point is the median of the
// samples within the trailing window ending at that point. This is the
// paper's "five-second rolling median bitrate".
//
// Each point costs O(log w) for a w-sample window (a MedianWindow absorbs
// the slide incrementally), instead of the O(w log w) sort the naive
// formulation pays; the emitted values are identical.
func (s Series) RollingMedian(window time.Duration) Series {
	out := Series{Times: make([]time.Duration, 0, s.Len()), Values: make([]float64, 0, s.Len())}
	var mw MedianWindow
	start := 0
	for i := range s.Times {
		for s.Times[start] < s.Times[i]-window {
			mw.Remove(s.Values[start])
			start++
		}
		mw.Push(s.Values[i])
		out.Add(s.Times[i], mw.Median())
	}
	return out
}

// Meter accumulates bytes into fixed-width time bins and reports a bitrate
// series. It is the pcap-style throughput instrument: tap packet deliveries
// into it and read Mbps out.
type Meter struct {
	Bin  time.Duration
	bins []float64 // bytes per bin
}

// NewMeter creates a meter with the given bin width (commonly 1s).
func NewMeter(bin time.Duration) *Meter {
	if bin <= 0 {
		panic("stats: non-positive meter bin")
	}
	return &Meter{Bin: bin}
}

// AddBytes credits n bytes at virtual time t.
func (m *Meter) AddBytes(t time.Duration, n int) {
	idx := int(t / m.Bin)
	for len(m.bins) <= idx {
		m.bins = append(m.bins, 0)
	}
	m.bins[idx] += float64(n)
}

// TotalBytes returns the total accumulated bytes.
func (m *Meter) TotalBytes() float64 {
	var sum float64
	for _, b := range m.bins {
		sum += b
	}
	return sum
}

// RateMbps returns a Series of megabits/second, one point per bin, stamped
// at the bin end.
func (m *Meter) RateMbps() Series {
	s := Series{Times: make([]time.Duration, 0, len(m.bins)), Values: make([]float64, 0, len(m.bins))}
	for i, bytes := range m.bins {
		s.Add(time.Duration(i+1)*m.Bin, bytes*8/m.Bin.Seconds()/1e6)
	}
	return s
}

// MeanRateMbps returns the average rate over [from, to).
func (m *Meter) MeanRateMbps(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	lo, hi := int(from/m.Bin), int(to/m.Bin)
	var bytes float64
	for i := lo; i < hi && i < len(m.bins); i++ {
		bytes += m.bins[i]
	}
	return bytes * 8 / (time.Duration(hi-lo) * m.Bin).Seconds() / 1e6
}

// Median returns the median of vs (0 for empty input).
func Median(vs []float64) float64 { return Percentile(vs, 50) }

// Percentile returns the p-th percentile (0–100) using linear interpolation
// between closest ranks. Returns 0 for empty input. Already-sorted input
// is detected in O(n) and used directly — no copy, no re-sort; unsorted
// input is copied and never mutated.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := vs
	if !sort.Float64sAreSorted(vs) {
		sorted = append([]float64(nil), vs...)
		sort.Float64s(sorted)
	}
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile's kernel over pre-sorted data. It tolerates
// every input Percentile's length guard does not rule out: an empty slice
// yields 0 (the package-wide empty convention), a NaN quantile yields NaN
// (propagated, never an index), and out-of-range quantiles clamp to the
// extremes.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// SortedPercentiles sorts vs in place once and returns the requested
// percentiles, so callers needing several quantiles of one sample (the
// scale sweep's p50/p95/p99 latencies) pay a single sort instead of one
// copy-and-sort per quantile. Returns nil for empty input.
func SortedPercentiles(vs []float64, ps ...float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	sort.Float64s(vs)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = percentileSorted(vs, p)
	}
	return out
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// StdDev returns the sample standard deviation (0 for fewer than 2 values).
func StdDev(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	m := Mean(vs)
	var ss float64
	for _, v := range vs {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(len(vs)-1))
}

// Summary aggregates repeated measurements of one quantity, as the paper
// does across its five repetitions per condition.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	// CI90 is the half-width of a 90% confidence interval on the mean
	// (normal approximation, z = 1.645) — the shaded bands of Figs 1–5, 15.
	CI90 float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary of vs.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:      len(vs),
		Mean:   Mean(vs),
		Median: Median(vs),
		Min:    vs[0],
		Max:    vs[0],
	}
	for _, v := range vs {
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	if len(vs) > 1 {
		s.CI90 = 1.645 * StdDev(vs) / math.Sqrt(float64(len(vs)))
	}
	return s
}

// TTR computes the paper's time-to-recovery metric (§4): the time between
// when the interruption ends and when the rolling median bitrate (window
// -wide, typically 5s) returns to frac times the nominal bitrate, where
// nominal is the median bitrate before the interruption started.
//
// It returns the recovery time and true, or 0 and false if the series never
// recovers within the data.
func TTR(s Series, intStart, intEnd time.Duration, window time.Duration, frac float64) (time.Duration, bool) {
	before := s.Slice(0, intStart)
	nominal := Median(before.Values)
	if nominal == 0 {
		return 0, false
	}
	after := s.Slice(intEnd, time.Duration(math.MaxInt64))
	rolled := after.RollingMedian(window)
	for i, v := range rolled.Values {
		if v >= nominal*frac {
			return rolled.Times[i] - intEnd, true
		}
	}
	return 0, false
}

// Share returns a/(a+b), the fraction of the link used by the first flow;
// 0 if both are zero.
func Share(a, b float64) float64 {
	if a+b == 0 {
		return 0
	}
	return a / (a + b)
}
