package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestMedianAndPercentile(t *testing.T) {
	cases := []struct {
		vs   []float64
		p    float64
		want float64
	}{
		{[]float64{1, 2, 3}, 50, 2},
		{[]float64{1, 2, 3, 4}, 50, 2.5},
		{[]float64{5}, 50, 5},
		{nil, 50, 0},
		{[]float64{1, 2, 3, 4, 5}, 0, 1},
		{[]float64{1, 2, 3, 4, 5}, 100, 5},
		{[]float64{1, 2, 3, 4, 5}, 25, 2},
		{[]float64{3, 1, 2}, 50, 2}, // must not require sorted input
	}
	for _, c := range cases {
		if got := Percentile(c.vs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v, %v) = %v, want %v", c.vs, c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vs := []float64{3, 1, 2}
	Percentile(vs, 50)
	if vs[0] != 3 || vs[1] != 1 || vs[2] != 2 {
		t.Errorf("input mutated: %v", vs)
	}
}

func TestMeanStdDev(t *testing.T) {
	vs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(vs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(vs); math.Abs(got-2.138) > 0.001 {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of single value should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.CI90 <= 0 {
		t.Errorf("CI90 = %v, want > 0", s.CI90)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty Summarize = %+v", z)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter(time.Second)
	// 125000 bytes in second 0 => 1 Mbps.
	m.AddBytes(200*time.Millisecond, 100000)
	m.AddBytes(900*time.Millisecond, 25000)
	m.AddBytes(1500*time.Millisecond, 250000) // 2 Mbps in second 1
	s := m.RateMbps()
	if s.Len() != 2 {
		t.Fatalf("series length %d, want 2", s.Len())
	}
	if math.Abs(s.Values[0]-1.0) > 1e-9 || math.Abs(s.Values[1]-2.0) > 1e-9 {
		t.Errorf("rates = %v, want [1 2]", s.Values)
	}
	if got := m.MeanRateMbps(0, 2*time.Second); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("MeanRateMbps = %v, want 1.5", got)
	}
	if m.TotalBytes() != 375000 {
		t.Errorf("TotalBytes = %v", m.TotalBytes())
	}
}

func TestSeriesSlice(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	sub := s.Slice(3*time.Second, 6*time.Second)
	if sub.Len() != 3 || sub.Values[0] != 3 || sub.Values[2] != 5 {
		t.Errorf("Slice = %+v", sub)
	}
}

func TestRollingMedian(t *testing.T) {
	var s Series
	vals := []float64{1, 1, 1, 10, 10, 10}
	for i, v := range vals {
		s.Add(time.Duration(i)*time.Second, v)
	}
	r := s.RollingMedian(2 * time.Second) // window covers 3 samples
	// At t=3 the window holds {1,1,10} -> median 1; at t=4 {1,10,10} -> 10.
	if r.Values[3] != 1 {
		t.Errorf("rolled[3] = %v, want 1", r.Values[3])
	}
	if r.Values[4] != 10 {
		t.Errorf("rolled[4] = %v, want 10", r.Values[4])
	}
}

func TestTTR(t *testing.T) {
	// Bitrate 1.0 for 60s, 0.2 during 60–90s disruption, staircase back.
	var s Series
	for i := 0; i <= 200; i++ {
		tm := time.Duration(i) * time.Second
		var v float64
		switch {
		case i < 60:
			v = 1.0
		case i < 90:
			v = 0.2
		case i < 110: // 20s of slow ramp
			v = 0.2 + float64(i-90)*0.04
		default:
			v = 1.0
		}
		s.Add(tm, v)
	}
	ttr, ok := TTR(s, 60*time.Second, 90*time.Second, 5*time.Second, 0.95)
	if !ok {
		t.Fatal("TTR did not find recovery")
	}
	// Instantaneous rate crosses 0.95 at ~109s; the 5s rolling median
	// crosses a little later. Accept 18–30 s.
	if ttr < 18*time.Second || ttr > 30*time.Second {
		t.Errorf("TTR = %v, want ~19-30s", ttr)
	}
}

func TestTTRNeverRecovers(t *testing.T) {
	var s Series
	for i := 0; i <= 100; i++ {
		v := 1.0
		if i >= 50 {
			v = 0.1
		}
		s.Add(time.Duration(i)*time.Second, v)
	}
	if _, ok := TTR(s, 50*time.Second, 60*time.Second, 5*time.Second, 0.95); ok {
		t.Error("TTR reported recovery for a series that never recovers")
	}
}

func TestShare(t *testing.T) {
	if got := Share(3, 1); got != 0.75 {
		t.Errorf("Share(3,1) = %v, want 0.75", got)
	}
	if got := Share(0, 0); got != 0 {
		t.Errorf("Share(0,0) = %v, want 0", got)
	}
}

// Property: Percentile(vs, 50) equals the textbook median.
func TestQuickMedian(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vs := make([]float64, len(raw))
		for i, r := range raw {
			vs[i] = float64(r)
		}
		sorted := append([]float64(nil), vs...)
		sort.Float64s(sorted)
		var want float64
		n := len(sorted)
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		return math.Abs(Median(vs)-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []int16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vs := make([]float64, len(raw))
		for i, r := range raw {
			vs[i] = float64(r)
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(vs, a), Percentile(vs, b)
		return pa <= pb && pa >= Percentile(vs, 0) && pb <= Percentile(vs, 100)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the meter conserves bytes and its mean rate matches total bytes.
func TestQuickMeterConservation(t *testing.T) {
	f := func(events []uint16) bool {
		m := NewMeter(time.Second)
		var total float64
		maxT := time.Duration(0)
		for _, e := range events {
			at := time.Duration(e%60) * 100 * time.Millisecond
			if at > maxT {
				maxT = at
			}
			m.AddBytes(at, int(e))
			total += float64(e)
		}
		return math.Abs(m.TotalBytes()-total) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPercentileEdgeCases pins the boundary behaviour of Percentile and
// SortedPercentiles: empty input, a single sample, the q=0/q=100 extremes,
// out-of-range and NaN quantiles must all return a defined value — never
// panic or index out of range. The NaN row is the regression case: the
// rank-to-index conversion used to turn NaN into a huge negative index.
func TestPercentileEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		vs   []float64
		q    float64
		want float64
	}{
		{"empty q=50", nil, 50, 0},
		{"empty q=0", []float64{}, 0, 0},
		{"empty q=100", []float64{}, 100, 0},
		{"single q=0", []float64{5}, 0, 5},
		{"single q=50", []float64{5}, 50, 5},
		{"single q=100", []float64{5}, 100, 5},
		{"single q=NaN", []float64{5}, nan, nan},
		{"q below range clamps to min", []float64{3, 1, 2}, -5, 1},
		{"q above range clamps to max", []float64{3, 1, 2}, 200, 3},
		{"q=0 is min", []float64{4, 2, 8}, 0, 2},
		{"q=100 is max", []float64{4, 2, 8}, 100, 8},
		{"q=NaN propagates", []float64{1, 2}, nan, nan},
	}
	for _, c := range cases {
		got := Percentile(append([]float64(nil), c.vs...), c.q)
		if math.IsNaN(c.want) {
			if !math.IsNaN(got) {
				t.Errorf("Percentile %s = %v, want NaN", c.name, got)
			}
		} else if got != c.want {
			t.Errorf("Percentile %s = %v, want %v", c.name, got, c.want)
		}
		sp := SortedPercentiles(append([]float64(nil), c.vs...), c.q)
		if len(c.vs) == 0 {
			if sp != nil {
				t.Errorf("SortedPercentiles %s = %v, want nil", c.name, sp)
			}
			continue
		}
		if math.IsNaN(c.want) {
			if !math.IsNaN(sp[0]) {
				t.Errorf("SortedPercentiles %s = %v, want NaN", c.name, sp[0])
			}
		} else if sp[0] != c.want {
			t.Errorf("SortedPercentiles %s = %v, want %v", c.name, sp[0], c.want)
		}
	}
	// The internal kernel itself must tolerate an empty slice at every
	// quantile (future callers may skip the public length guards).
	for _, q := range []float64{-1, 0, 50, 100, 101, nan} {
		if got := percentileSorted(nil, q); got != 0 {
			t.Errorf("percentileSorted(nil, %v) = %v, want 0", q, got)
		}
	}
}
