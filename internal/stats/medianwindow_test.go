package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// naiveRollingMedian is the pre-kernel O(n·w log w) formulation, kept as
// the test oracle: the incremental MedianWindow must reproduce it exactly,
// bit for bit.
func naiveRollingMedian(s Series, window time.Duration) Series {
	out := Series{Times: make([]time.Duration, 0, s.Len()), Values: make([]float64, 0, s.Len())}
	start := 0
	for i := range s.Times {
		for s.Times[start] < s.Times[i]-window {
			start++
		}
		out.Add(s.Times[i], Median(s.Values[start:i+1]))
	}
	return out
}

func seriesEqual(t *testing.T, label string, got, want Series) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: length %d, want %d", label, got.Len(), want.Len())
	}
	for i := range want.Values {
		if got.Times[i] != want.Times[i] || got.Values[i] != want.Values[i] {
			t.Fatalf("%s: point %d = (%v, %v), want (%v, %v)",
				label, i, got.Times[i], got.Values[i], want.Times[i], want.Values[i])
		}
	}
}

func TestRollingMedianMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(n int, gen func(i int) float64) Series {
		var s Series
		tm := time.Duration(0)
		for i := 0; i < n; i++ {
			// Irregular sample spacing, as real bitrate series have.
			tm += time.Duration(1+rng.Intn(900)) * time.Millisecond
			s.Add(tm, gen(i))
		}
		return s
	}
	cases := map[string]Series{
		"random":         mk(500, func(int) float64 { return rng.NormFloat64() * 1e6 }),
		"monotone-up":    mk(500, func(i int) float64 { return float64(i) }),
		"monotone-down":  mk(500, func(i int) float64 { return float64(-i) }),
		"constant":       mk(300, func(int) float64 { return 3.25 }),
		"heavy-dups":     mk(500, func(int) float64 { return float64(rng.Intn(4)) }),
		"sawtooth":       mk(500, func(i int) float64 { return float64(i % 17) }),
		"negative-cross": mk(400, func(i int) float64 { return float64(i%31) - 15 }),
	}
	for label, s := range cases {
		for _, w := range []time.Duration{time.Second, 5 * time.Second, time.Minute} {
			seriesEqual(t, label, s.RollingMedian(w), naiveRollingMedian(s, w))
		}
	}
}

// Property: for arbitrary integer-valued series the incremental kernel and
// the naive sort agree exactly.
func TestQuickRollingMedianMatchesNaive(t *testing.T) {
	f := func(raw []int16, gaps []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Series
		tm := time.Duration(0)
		for i, r := range raw {
			gap := time.Duration(500) * time.Millisecond
			if len(gaps) > 0 {
				gap = time.Duration(1+int(gaps[i%len(gaps)])) * 100 * time.Millisecond
			}
			tm += gap
			s.Add(tm, float64(r))
		}
		got := s.RollingMedian(5 * time.Second)
		want := naiveRollingMedian(s, 5*time.Second)
		for i := range want.Values {
			if got.Values[i] != want.Values[i] {
				return false
			}
		}
		return got.Len() == want.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianWindowBasics(t *testing.T) {
	var mw MedianWindow
	if got := mw.Median(); got != 0 {
		t.Errorf("empty window median = %v, want 0", got)
	}
	mw.Push(5)
	if got := mw.Median(); got != 5 {
		t.Errorf("single-sample median = %v, want 5", got)
	}
	mw.Push(1)
	if got := mw.Median(); got != 3 {
		t.Errorf("two-sample median = %v, want 3", got)
	}
	mw.Remove(5)
	if got := mw.Median(); got != 1 {
		t.Errorf("after removing 5, median = %v, want 1", got)
	}
	mw.Remove(1)
	if mw.Len() != 0 {
		t.Errorf("window not empty after removing all: len = %d", mw.Len())
	}
}

func TestPercentileSortedFastPath(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	unsorted := []float64{10, 3, 7, 1, 9, 2, 8, 4, 6, 5}
	for _, p := range []float64{0, 25, 50, 90, 95, 99, 100} {
		if a, b := Percentile(sorted, p), Percentile(unsorted, p); a != b {
			t.Errorf("p%v: sorted path %v != unsorted path %v", p, a, b)
		}
	}
	// The fast path must not mutate (nothing to mutate) and the slow path
	// must still copy.
	Percentile(unsorted, 50)
	if unsorted[0] != 10 {
		t.Errorf("unsorted input mutated: %v", unsorted)
	}
}

func TestSortedPercentiles(t *testing.T) {
	vs := []float64{9, 1, 5, 3, 7, 2, 8, 4, 6}
	ref := append([]float64(nil), vs...)
	want := []float64{Percentile(ref, 50), Percentile(ref, 95), Percentile(ref, 99)}
	got := SortedPercentiles(vs, 50, 95, 99)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SortedPercentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if !sortedAsc(vs) {
		t.Errorf("input not sorted in place: %v", vs)
	}
	if SortedPercentiles(nil, 50) != nil {
		t.Error("empty input should return nil")
	}
}

func sortedAsc(vs []float64) bool {
	for i := 1; i < len(vs); i++ {
		if vs[i-1] > vs[i] {
			return false
		}
	}
	return true
}

// BenchmarkRollingMedian shows the complexity win: the incremental kernel
// scales ~linearly in window size per emitted point where the naive sort
// grows ~w log w (run with -bench RollingMedian to compare the pairs).
func BenchmarkRollingMedian(b *testing.B) {
	for _, w := range []int{64, 256, 1024, 4096} {
		s := benchSeries(8192)
		window := time.Duration(w) * 100 * time.Millisecond // w samples per window
		b.Run(benchName("incremental", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.RollingMedian(window)
			}
		})
		b.Run(benchName("naive", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				naiveRollingMedian(s, window)
			}
		})
	}
}

func benchSeries(n int) Series {
	rng := rand.New(rand.NewSource(42))
	var s Series
	for i := 0; i < n; i++ {
		s.Add(time.Duration(i)*100*time.Millisecond, rng.Float64()*1e7)
	}
	return s
}

func benchName(kind string, w int) string {
	return kind + "/w=" + itoa(w)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
