package media

import (
	"testing"
	"time"

	"vcalab/internal/codec"
)

// sendFrame delivers a clean n-packet frame at the given time.
func sendFrame(r *Receiver, now time.Duration, frameSeq int, seq *uint16, n int, key bool) {
	for i := 0; i < n; i++ {
		r.OnPacket(now, PacketInfo{
			Seq: *seq, FrameSeq: frameSeq, FrameEnd: i == n-1,
			Keyframe: key, Bytes: 1000, SentAt: now - 10*time.Millisecond,
		})
		*seq++
	}
}

func TestCleanStreamNoFreezesNoFIR(t *testing.T) {
	r := NewReceiver()
	var seq uint16
	for f := 0; f < 300; f++ { // 10s at 30fps
		sendFrame(r, time.Duration(f)*time.Second/30, f, &seq, 3, f == 0)
	}
	if r.FreezeCount() != 0 {
		t.Errorf("freezes on clean stream: %d", r.FreezeCount())
	}
	if r.FIRCount != 0 {
		t.Errorf("FIRs on clean stream: %d", r.FIRCount)
	}
	if r.DisplayedFrames() != 300 {
		t.Errorf("displayed %d frames, want 300", r.DisplayedFrames())
	}
}

func TestIntervalStats(t *testing.T) {
	r := NewReceiver()
	var seq uint16
	for f := 0; f < 30; f++ {
		sendFrame(r, time.Duration(f)*time.Second/30, f, &seq, 3, f == 0)
	}
	st := r.Take(time.Second)
	if st.Received != 90 {
		t.Errorf("received = %d, want 90", st.Received)
	}
	if st.LossFraction != 0 {
		t.Errorf("loss = %v on clean stream", st.LossFraction)
	}
	wantRate := 90 * 1000 * 8.0
	if st.RateBps < 0.99*wantRate || st.RateBps > 1.01*wantRate {
		t.Errorf("rate = %v, want ~%v", st.RateBps, wantRate)
	}
	// Second interval resets.
	st2 := r.Take(2 * time.Second)
	if st2.Received != 0 || st2.RateBps != 0 {
		t.Errorf("interval did not reset: %+v", st2)
	}
}

func TestLossAccounting(t *testing.T) {
	r := NewReceiver()
	// Packets 0..9 with 3,4,5 missing.
	now := time.Duration(0)
	for _, s := range []uint16{0, 1, 2, 6, 7, 8, 9} {
		r.OnPacket(now, PacketInfo{Seq: s, FrameSeq: 0, Bytes: 100, SentAt: now})
		now += time.Millisecond
	}
	st := r.Take(now)
	if st.Expected != 10 || st.Received != 7 {
		t.Errorf("expected/received = %d/%d, want 10/7", st.Expected, st.Received)
	}
	if st.LossFraction < 0.29 || st.LossFraction > 0.31 {
		t.Errorf("loss = %v, want 0.3", st.LossFraction)
	}
}

func TestSeqWraparound(t *testing.T) {
	r := NewReceiver()
	now := time.Duration(0)
	for _, s := range []uint16{65533, 65534, 65535, 0, 1} {
		r.OnPacket(now, PacketInfo{Seq: s, FrameSeq: 0, Bytes: 100, SentAt: now})
		now += time.Millisecond
	}
	st := r.Take(now)
	if st.Expected != 5 || st.Received != 5 {
		t.Errorf("wraparound expected/received = %d/%d, want 5/5", st.Expected, st.Received)
	}
}

func TestQueueDelayTracking(t *testing.T) {
	r := NewReceiver()
	// Base OWD 10ms, then standing queue of 100ms.
	for i := 0; i < 10; i++ {
		now := time.Duration(i) * 10 * time.Millisecond
		r.OnPacket(now, PacketInfo{Seq: uint16(i), FrameSeq: i, FrameEnd: true, Bytes: 100,
			SentAt: now - 10*time.Millisecond})
	}
	for i := 10; i < 100; i++ {
		now := time.Duration(i) * 10 * time.Millisecond
		r.OnPacket(now, PacketInfo{Seq: uint16(i), FrameSeq: i, FrameEnd: true, Bytes: 100,
			SentAt: now - 110*time.Millisecond})
	}
	st := r.Take(time.Second)
	if st.QueueDelay < 80*time.Millisecond || st.QueueDelay > 105*time.Millisecond {
		t.Errorf("queue delay = %v, want ~100ms", st.QueueDelay)
	}
}

func TestFreezeDetection(t *testing.T) {
	r := NewReceiver()
	var seq uint16
	now := time.Duration(0)
	for f := 0; f < 60; f++ {
		sendFrame(r, now, f, &seq, 2, f == 0)
		now += time.Second / 30
	}
	// A 500ms gap: > max(3*33ms, 33ms+150ms) = 183ms -> freeze.
	now += 500 * time.Millisecond
	sendFrame(r, now, 60, &seq, 2, false)
	if r.FreezeCount() != 1 {
		t.Errorf("freeze count = %d, want 1", r.FreezeCount())
	}
	if r.FreezeTime() < 400*time.Millisecond {
		t.Errorf("freeze time = %v, want ~533ms", r.FreezeTime())
	}
	// A 100ms gap: below threshold, no new freeze.
	now += 100 * time.Millisecond
	sendFrame(r, now, 61, &seq, 2, false)
	if r.FreezeCount() != 1 {
		t.Errorf("freeze count after small gap = %d, want 1", r.FreezeCount())
	}
}

func TestFreezeRatio(t *testing.T) {
	r := NewReceiver()
	var seq uint16
	now := time.Duration(0)
	for f := 0; f < 30; f++ {
		sendFrame(r, now, f, &seq, 2, f == 0)
		now += time.Second / 30
	}
	now += time.Second // 1s freeze in a ~2s call
	sendFrame(r, now, 30, &seq, 2, false)
	ratio := r.FreezeRatio()
	if ratio < 0.3 || ratio > 0.7 {
		t.Errorf("freeze ratio = %v, want ~0.5", ratio)
	}
}

func TestDamagedFrameTriggersFIR(t *testing.T) {
	r := NewReceiver()
	fired := 0
	r.OnFIR = func(time.Duration) { fired++ }
	var seq uint16
	now := time.Duration(0)
	for f := 0; f < 10; f++ {
		sendFrame(r, now, f, &seq, 3, f == 0)
		now += time.Second / 30
	}
	// Frame 10 loses its middle packet.
	r.OnPacket(now, PacketInfo{Seq: seq, FrameSeq: 10, Bytes: 1000, SentAt: now})
	seq += 2 // skip one
	r.OnPacket(now, PacketInfo{Seq: seq, FrameSeq: 10, FrameEnd: true, Bytes: 1000, SentAt: now})
	seq++
	// Subsequent frames are undecodable (broken reference chain) until a
	// keyframe; stall persists past the threshold.
	for f := 11; f < 30; f++ {
		now += time.Second / 30
		sendFrame(r, now, f, &seq, 3, false)
	}
	if fired == 0 || r.FIRCount == 0 {
		t.Fatal("no FIR despite broken reference chain")
	}
	// Keyframe heals the chain.
	now += time.Second / 30
	sendFrame(r, now, 30, &seq, 3, true)
	before := r.DisplayedFrames()
	now += time.Second / 30
	sendFrame(r, now, 31, &seq, 3, false)
	if r.DisplayedFrames() != before+1 {
		t.Error("stream did not resume after keyframe")
	}
}

func TestFIRCooldown(t *testing.T) {
	r := NewReceiver()
	var seq uint16
	now := time.Duration(0)
	sendFrame(r, now, 0, &seq, 3, true)
	// Break the chain, then pour in undecodable frames for 2 seconds.
	seq += 5
	for f := 2; f < 62; f++ {
		now += time.Second / 30
		sendFrame(r, now, f, &seq, 3, false)
	}
	// 2s of stall with 500ms cooldown: at most ~4-5 FIRs.
	if r.FIRCount < 2 || r.FIRCount > 6 {
		t.Errorf("FIR count = %d over 2s stall, want 2-6 (cooldown)", r.FIRCount)
	}
}

func TestPaddingCountsForRateNotFrames(t *testing.T) {
	r := NewReceiver()
	now := time.Duration(0)
	for i := 0; i < 10; i++ {
		r.OnPacket(now, PacketInfo{Seq: uint16(i), Bytes: 1000, SentAt: now, Padding: true})
		now += 10 * time.Millisecond
	}
	st := r.Take(now)
	if st.Received != 10 {
		t.Errorf("padding not counted in received: %d", st.Received)
	}
	if r.DisplayedFrames() != 0 {
		t.Errorf("padding displayed as frames: %d", r.DisplayedFrames())
	}
}

func TestParamsPropagation(t *testing.T) {
	r := NewReceiver()
	p := codec.EncodeParams{FPS: 15, Width: 640, Height: 360, QP: 28}
	r.OnPacket(0, PacketInfo{Seq: 0, FrameSeq: 0, FrameEnd: true, Keyframe: true,
		Bytes: 500, Params: p, HasParams: true})
	if r.LastParams != p {
		t.Errorf("LastParams = %+v, want %+v", r.LastParams, p)
	}
}
