// Package media implements the receiver side of a video stream: loss and
// delay accounting for congestion feedback, frame reassembly, a decoder
// reference-chain model, the paper's freeze detector, and Full Intra
// Request triggering.
//
// The freeze definition is taken verbatim from §3.2: a freeze occurs when a
// frame inter-arrival gap exceeds max(3δ, δ+150ms), with δ the average
// frame duration. FIR behaviour models §3.2's observation that receivers
// request intra frames when they cannot decode (Fig 3b uses the FIR count
// as the uplink-direction freeze proxy).
package media

import (
	"time"

	"vcalab/internal/codec"
)

// PacketInfo is the per-packet metadata the receiver consumes. It mirrors
// what a real receiver reads from RTP headers plus the sender timestamp
// (available via the abs-send-time extension in WebRTC).
type PacketInfo struct {
	Seq      uint16 // RTP sequence number
	FrameSeq int    // which frame this packet belongs to
	FrameEnd bool   // RTP marker bit: last packet of the frame
	Keyframe bool
	Bytes    int
	SentAt   time.Duration
	// Padding marks FEC/probe packets: they count toward received rate
	// (and loss) but carry no frame data.
	Padding bool
	// Params carries encode parameters on FrameEnd packets, feeding the
	// WebRTC-stats emulation.
	Params    codec.EncodeParams
	HasParams bool
}

// IntervalStats summarizes reception since the previous Take call; it is
// the raw material for cc.Feedback.
type IntervalStats struct {
	Interval     time.Duration
	Expected     int
	Received     int
	LossFraction float64
	RateBps      float64
	QueueDelay   time.Duration
}

// Receiver tracks one incoming media stream.
type Receiver struct {
	// FIRCooldown rate-limits FIR emission (default 500ms).
	FIRCooldown time.Duration
	// FIRDamageThreshold is how long decode must be stalled before an
	// FIR fires (default 200ms).
	FIRDamageThreshold time.Duration
	// OnFIR, when set, is invoked when the receiver wants a keyframe.
	OnFIR func(now time.Duration)

	// --- interval (feedback) accounting ---
	intervalStart time.Duration
	expected      int
	received      int
	bytes         int
	// One-way-delay base: the minimum OWD over a ~10 s sliding window
	// (bucketed per second). A windowed base absorbs constant
	// components — per-packet serialization on slow links, route
	// changes — the way GCC's gradient filter does, leaving only
	// genuine queue growth in the signal.
	owdBuckets [10]time.Duration
	bucketIdx  int
	bucketT    time.Duration
	owdEWMA    float64 // seconds above the windowed base
	haveBase   bool
	lastSeq    uint16
	haveSeq    bool
	pendingGap int // missing packets not yet healed by late arrivals

	// --- frame assembly ---
	curFrame     int
	curDamaged   bool
	curKey       bool
	curHasEnd    bool
	lastDecoded  int
	chainBroken  bool
	stalledSince time.Duration
	stalled      bool
	lastFIR      time.Duration

	// --- freeze detection (paper formula) ---
	lastDisplay  time.Duration
	haveDisplay  bool
	avgFrameDur  float64 // seconds, EWMA
	freezeTime   time.Duration
	freezeCount  int
	displayCount int

	// --- cumulative ---
	FIRCount    int
	TotalBytes  int64
	LastParams  codec.EncodeParams
	firstPacket time.Duration
	lastPacket  time.Duration
	havePacket  bool
}

// NewReceiver creates a receiver.
func NewReceiver() *Receiver {
	return &Receiver{
		FIRCooldown:        500 * time.Millisecond,
		FIRDamageThreshold: 200 * time.Millisecond,
		lastDecoded:        -1,
		curFrame:           -1,
	}
}

// OnPacket processes one arriving packet at virtual time now.
func (r *Receiver) OnPacket(now time.Duration, p PacketInfo) {
	if !r.havePacket {
		r.firstPacket = now
		r.havePacket = true
	}
	r.lastPacket = now

	// Loss accounting via sequence gaps, tolerant of reordering: a late
	// packet must not move the high-water mark backwards, and it heals
	// one outstanding gap (the jitter-buffer behaviour of a real
	// receiver, needed for the §8 jitter impairments).
	if r.haveSeq {
		// Signed wraparound distance: late packets give negative gaps.
		gap := int(int16(p.Seq - r.lastSeq))
		switch {
		case gap > 0:
			r.expected += gap
			if gap > 1 {
				r.pendingGap += gap - 1
				// Packets in (lastSeq, Seq) are missing; if any belonged
				// to the current frame it is damaged (until healed by a
				// late arrival).
				r.curDamaged = true
			}
			r.lastSeq = p.Seq
		default:
			// Late or duplicate packet: fills a hole.
			if r.pendingGap > 0 {
				r.pendingGap--
				if r.pendingGap == 0 {
					r.curDamaged = false
				}
			}
		}
	} else {
		r.expected++
		r.haveSeq = true
		r.lastSeq = p.Seq
	}
	r.received++
	r.bytes += p.Bytes
	r.TotalBytes += int64(p.Bytes)

	// One-way delay tracking against a sliding-window base.
	owd := now - p.SentAt
	if !r.haveBase {
		for i := range r.owdBuckets {
			r.owdBuckets[i] = owd
		}
		r.bucketT = now
		r.haveBase = true
	}
	if now-r.bucketT >= time.Second {
		r.bucketIdx = (r.bucketIdx + 1) % len(r.owdBuckets)
		r.owdBuckets[r.bucketIdx] = owd
		r.bucketT = now
	}
	if owd < r.owdBuckets[r.bucketIdx] {
		r.owdBuckets[r.bucketIdx] = owd
	}
	base := r.owdBuckets[0]
	for _, b := range r.owdBuckets[1:] {
		if b < base {
			base = b
		}
	}
	qd := (owd - base).Seconds()
	r.owdEWMA = 0.9*r.owdEWMA + 0.1*qd

	if p.Padding {
		r.checkStall(now)
		return
	}

	// Frame assembly.
	if p.FrameSeq != r.curFrame {
		// A new frame begins; finalize the previous one if it never
		// completed (tail packet lost).
		if r.curFrame >= 0 && !r.curHasEnd {
			r.frameDone(now, r.curFrame, true, r.curKey)
		}
		if r.curFrame >= 0 && p.FrameSeq > r.curFrame+1 {
			// Entire frames vanished.
			r.chainBroken = true
		}
		r.curFrame = p.FrameSeq
		r.curDamaged = false
		r.pendingGap = 0
		r.curKey = p.Keyframe
		r.curHasEnd = false
	}
	if p.Keyframe {
		r.curKey = true
	}
	if p.HasParams {
		r.LastParams = p.Params
	}
	if p.FrameEnd {
		r.curHasEnd = true
		r.frameDone(now, p.FrameSeq, r.curDamaged, r.curKey)
		r.curFrame = p.FrameSeq // stay until a new frame starts
	}
	r.checkStall(now)
}

// frameDone handles a completed (or abandoned) frame.
func (r *Receiver) frameDone(now time.Duration, frameSeq int, damaged, key bool) {
	decodable := !damaged && (key || (!r.chainBroken && frameSeq == r.lastDecoded+1) || r.lastDecoded == -1)
	if key && !damaged {
		// A clean keyframe always resets the reference chain.
		r.chainBroken = false
		decodable = true
	}
	if !decodable {
		r.chainBroken = true
		if !r.stalled {
			r.stalled = true
			r.stalledSince = now
		}
		return
	}
	r.lastDecoded = frameSeq
	r.stalled = false
	r.display(now)
}

// display feeds the freeze detector with a rendered frame.
func (r *Receiver) display(now time.Duration) {
	r.displayCount++
	if !r.haveDisplay {
		r.haveDisplay = true
		r.lastDisplay = now
		return
	}
	gap := (now - r.lastDisplay).Seconds()
	if r.avgFrameDur == 0 {
		r.avgFrameDur = gap
	}
	// Paper §3.2: freeze if inter-arrival > max(3δ, δ+150ms).
	threshold := 3 * r.avgFrameDur
	if t2 := r.avgFrameDur + 0.150; t2 > threshold {
		threshold = t2
	}
	if gap > threshold {
		r.freezeTime += time.Duration(gap * float64(time.Second))
		r.freezeCount++
	}
	r.avgFrameDur = 0.95*r.avgFrameDur + 0.05*gap
	r.lastDisplay = now
}

// checkStall emits an FIR when decode has been blocked long enough.
func (r *Receiver) checkStall(now time.Duration) {
	if !r.stalled && !r.chainBroken {
		return
	}
	if !r.stalled {
		r.stalled = true
		r.stalledSince = now
	}
	if now-r.stalledSince >= r.FIRDamageThreshold && now-r.lastFIR >= r.FIRCooldown {
		r.lastFIR = now
		r.FIRCount++
		if r.OnFIR != nil {
			r.OnFIR(now)
		}
	}
}

// Take returns and resets the interval statistics; call it once per
// feedback period (e.g. 100ms).
func (r *Receiver) Take(now time.Duration) IntervalStats {
	interval := now - r.intervalStart
	st := IntervalStats{
		Interval:   interval,
		Expected:   r.expected,
		Received:   r.received,
		QueueDelay: time.Duration(r.owdEWMA * float64(time.Second)),
	}
	if r.expected > 0 {
		lost := r.expected - r.received
		if lost < 0 {
			lost = 0
		}
		st.LossFraction = float64(lost) / float64(r.expected)
	}
	if interval > 0 {
		st.RateBps = float64(r.bytes) * 8 / interval.Seconds()
	}
	r.intervalStart = now
	r.expected = 0
	r.received = 0
	r.bytes = 0
	return st
}

// FreezeTime returns cumulative display freeze time.
func (r *Receiver) FreezeTime() time.Duration { return r.freezeTime }

// FreezeCount returns the number of distinct freezes.
func (r *Receiver) FreezeCount() int { return r.freezeCount }

// FreezeRatio returns freeze time normalized by the call duration observed
// by this receiver (paper's Fig 3a metric). A stall that never resolved by
// the end of the observation (a fully frozen stream) counts as freeze time
// up to the last packet seen.
func (r *Receiver) FreezeRatio() float64 {
	if !r.havePacket || r.lastPacket <= r.firstPacket {
		return 0
	}
	freeze := r.freezeTime
	if r.haveDisplay {
		gap := (r.lastPacket - r.lastDisplay).Seconds()
		threshold := 3 * r.avgFrameDur
		if t2 := r.avgFrameDur + 0.150; t2 > threshold {
			threshold = t2
		}
		if gap > threshold {
			freeze += time.Duration(gap * float64(time.Second))
		}
	}
	return freeze.Seconds() / (r.lastPacket - r.firstPacket).Seconds()
}

// DisplayedFrames returns how many frames reached the renderer.
func (r *Receiver) DisplayedFrames() int { return r.displayCount }
