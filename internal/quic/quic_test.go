package quic

import (
	"testing"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
	"vcalab/internal/stats"
)

func pair(eng *sim.Engine, rateBps float64) (*netem.Host, *netem.Host) {
	src := netem.NewHost(eng, "src")
	dst := netem.NewHost(eng, "dst")
	rt := netem.NewRouter("rt")
	src.SetUplink(netem.NewLink(eng, "src-rt", netem.LinkConfig{RateBps: rateBps, Delay: 5 * time.Millisecond}, rt))
	dst.SetUplink(netem.NewLink(eng, "dst-rt", netem.LinkConfig{Delay: 5 * time.Millisecond}, rt))
	rt.Route("src", netem.NewLink(eng, "rt-src", netem.LinkConfig{}, src))
	rt.Route("dst", netem.NewLink(eng, "rt-dst", netem.LinkConfig{}, dst))
	return src, dst
}

func TestQUICFlowFillsLink(t *testing.T) {
	eng := sim.New(1)
	src, dst := pair(eng, 5e6)
	f := NewFlow(eng, "yt", src, dst, 443, Config{})
	m := stats.NewMeter(time.Second)
	f.OnDeliver(func(at time.Duration, n int) { m.AddBytes(at, n) })
	f.Start(0)
	eng.RunUntil(20 * time.Second)
	f.Stop()
	got := m.MeanRateMbps(5*time.Second, 20*time.Second)
	if got < 4.0 || got > 5.1 {
		t.Errorf("QUIC goodput = %.2f Mbps on 5 Mbps link", got)
	}
}

func TestQUICBoundedTransfer(t *testing.T) {
	eng := sim.New(2)
	src, dst := pair(eng, 2e6)
	f := NewFlow(eng, "yt", src, dst, 443, Config{})
	done := false
	f.OnComplete(func() { done = true })
	f.Start(500_000)
	eng.RunUntil(30 * time.Second)
	if !done {
		t.Error("bounded QUIC transfer never completed")
	}
}

func TestQUICDatagramSizing(t *testing.T) {
	eng := sim.New(3)
	src, dst := pair(eng, 1e6)
	seen := 0
	maxSize := 0
	dstTap := func(p *netem.Packet) {
		seen++
		if p.Size > maxSize {
			maxSize = p.Size
		}
	}
	dst.Tap(dstTap)
	f := NewFlow(eng, "yt", src, dst, 443, Config{})
	f.Start(100_000)
	eng.RunUntil(10 * time.Second)
	if seen == 0 {
		t.Fatal("no datagrams delivered")
	}
	if maxSize != 1350+40 {
		t.Errorf("max datagram wire size = %d, want 1390", maxSize)
	}
}
