// Package quic models a QUIC transport flow for the YouTube competitor of
// §5.3. The paper notes YouTube rides QUIC (UDP) with CUBIC-style
// congestion control whose TCP-friendliness depends on configuration
// (Corbel et al.); at the congestion-dynamics level this is a CUBIC loop
// with QUIC's smaller per-packet overhead and no handshake amplification —
// so the implementation composes the SACK/CUBIC machinery of internal/tcp
// with QUIC framing parameters.
package quic

import (
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
	"vcalab/internal/tcp"
)

// Config tunes a QUIC flow; zero values take QUIC-appropriate defaults.
type Config struct {
	// MaxDatagram is the UDP datagram payload size (default 1350, the
	// common QUIC value).
	MaxDatagram int
	// AckSize is the ACK-frame datagram size (default 35).
	AckSize int
}

// Flow is a unidirectional QUIC transfer. It exposes the same lifecycle as
// tcp.Flow.
type Flow struct {
	*tcp.Flow
}

// NewFlow wires a QUIC flow from src to dst:port.
func NewFlow(eng *sim.Engine, name string, src, dst *netem.Host, port int, cfg Config) *Flow {
	if cfg.MaxDatagram == 0 {
		cfg.MaxDatagram = 1350
	}
	if cfg.AckSize == 0 {
		cfg.AckSize = 35
	}
	inner := tcp.NewFlow(eng, name, src, dst, port, tcp.Config{
		MSS: cfg.MaxDatagram,
		// QUIC: ~28 B UDP/IP plus short header ~12 B.
		WireOverhead: 40,
		AckSize:      cfg.AckSize,
		// QUIC default initial window is 10 datagrams, like TCP.
		InitCwnd: 10,
		Beta:     0.7,
		C:        0.4,
		RTOMin:   200 * time.Millisecond,
	})
	return &Flow{Flow: inner}
}
