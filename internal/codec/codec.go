// Package codec models the video pipelines of the paper's VCAs: a synthetic
// talking-head source, rate-driven encode ladders (the FPS / quantization
// parameter / resolution adaptation measured in Fig 2), a simulcast encoder
// (Google Meet, two parallel copies at 320x180 and 640x360 — §3.1), a
// scalable-video-coding encoder (Zoom, hierarchical layers — §4.2), and a
// forward-error-correction overhead model (Zoom's server-side FEC — §3.1).
//
// The paper's pre-recorded 720p clip exists to make runs comparable; here a
// seeded AR(1) complexity process serves the same purpose.
package codec

import (
	"math"
	"math/rand"
	"time"
)

// EncodeParams are the per-second encoding observables exposed by the
// WebRTC stats API and plotted in Fig 2.
type EncodeParams struct {
	FPS    float64
	Width  int
	Height int
	QP     float64
}

// Frame is one encoded video frame (or one layer of one frame).
type Frame struct {
	StreamID  string // "video", "sim/low", "sim/high", "svc/0"...
	FrameSeq  int
	Bytes     int
	Keyframe  bool
	CaptureTS time.Duration
	Params    EncodeParams
	// Layer is the SVC layer index (0 = base); 0 for non-SVC streams.
	Layer int
}

// Source is the synthetic talking-head video source: a slowly wandering
// complexity multiplier around 1.0. Deterministic given its *rand.Rand.
type Source struct {
	rng        *rand.Rand
	complexity float64
}

// NewSource creates a source drawing from rng.
func NewSource(rng *rand.Rand) *Source {
	return &Source{rng: rng, complexity: 1}
}

// Complexity advances the AR(1) process one frame and returns the current
// multiplier, clamped to [0.6, 1.6].
func (s *Source) Complexity() float64 {
	s.complexity = 1 + 0.9*(s.complexity-1) + s.rng.NormFloat64()*0.05
	if s.complexity < 0.6 {
		s.complexity = 0.6
	}
	if s.complexity > 1.6 {
		s.complexity = 1.6
	}
	return s.complexity
}

// Rung is one operating point of an encode ladder, active for targets in
// [LoBps, next rung's LoBps). QP degrades from QPLo at the top of the range
// to QPHi at the bottom (higher QP = coarser quantization).
type Rung struct {
	LoBps  float64
	FPS    float64
	Width  int
	Height int
	QPLo   float64
	QPHi   float64
}

// Ladder maps a target bitrate to encode parameters. Rungs must be sorted
// by ascending LoBps. Jitter adds per-decision noise (the paper observes
// highly variable Teams-Chrome behaviour under identical conditions).
type Ladder struct {
	Rungs  []Rung
	Jitter float64 // stddev of multiplicative noise on the rate used for rung choice
}

// ParamsFor returns the encoding parameters for the given target bitrate.
// rng may be nil when Jitter is zero.
func (l Ladder) ParamsFor(targetBps float64, rng *rand.Rand) EncodeParams {
	if len(l.Rungs) == 0 {
		return EncodeParams{FPS: 30, Width: 640, Height: 360, QP: 30}
	}
	eff := targetBps
	if l.Jitter > 0 && rng != nil {
		eff *= math.Exp(rng.NormFloat64() * l.Jitter)
	}
	idx := 0
	for i, r := range l.Rungs {
		if eff >= r.LoBps {
			idx = i
		}
	}
	r := l.Rungs[idx]
	hi := 2 * r.LoBps
	if idx+1 < len(l.Rungs) {
		hi = l.Rungs[idx+1].LoBps
	}
	// Log-linear QP interpolation across the rung's rate range (linear
	// for the bottom rung, whose lower edge is zero).
	frac := 0.0
	switch {
	case r.LoBps <= 0:
		if hi > 0 {
			frac = eff / hi
		}
	case hi > r.LoBps && eff > r.LoBps:
		frac = math.Log(eff/r.LoBps) / math.Log(hi/r.LoBps)
	}
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return EncodeParams{
		FPS:    r.FPS,
		Width:  r.Width,
		Height: r.Height,
		QP:     r.QPHi + (r.QPLo-r.QPHi)*frac,
	}
}

// Encoder produces frames for a single stream at a rate-dependent FPS.
// Drive it with Tick at the source frame interval (TickHz); it emits or
// skips frames to honour the ladder's FPS.
type Encoder struct {
	StreamID string
	Ladder   Ladder
	// TickHz is the capture rate the encoder is driven at (default 30).
	TickHz float64
	// KeyInterval inserts a periodic keyframe (0 = only on request).
	KeyInterval time.Duration
	// KeyframeScale is the size multiplier for keyframes (default 4).
	KeyframeScale float64

	src    *Source
	rng    *rand.Rand
	target float64

	frameAcc   float64
	frameSeq   int
	lastKey    time.Duration
	keyPending bool
	params     EncodeParams
	// byteDebt tracks bytes emitted beyond budget (keyframes); the
	// encoder repays it by skipping frames, as real rate control does.
	byteDebt float64
}

// NewEncoder creates an encoder. src may be shared across encoders
// (simulcast copies see the same scene).
func NewEncoder(streamID string, ladder Ladder, src *Source, rng *rand.Rand) *Encoder {
	return &Encoder{
		StreamID:      streamID,
		Ladder:        ladder,
		TickHz:        30,
		KeyframeScale: 4,
		src:           src,
		rng:           rng,
	}
}

// SetTarget sets the encoder's target bitrate; parameters update on the
// next frame decision.
func (e *Encoder) SetTarget(bps float64) { e.target = bps }

// Target returns the current target bitrate.
func (e *Encoder) Target() float64 { return e.target }

// Params returns the most recently used encode parameters.
func (e *Encoder) Params() EncodeParams { return e.params }

// RequestKeyframe makes the next emitted frame a keyframe (FIR handling).
func (e *Encoder) RequestKeyframe() { e.keyPending = true }

// Tick advances one capture interval and returns an encoded frame, or nil
// if this tick is skipped (FPS below the capture rate).
func (e *Encoder) Tick(now time.Duration) *Frame {
	if e.target <= 0 {
		return nil
	}
	e.params = e.Ladder.ParamsFor(e.target, e.rng)
	e.frameAcc += e.params.FPS / e.TickHz
	if e.frameAcc < 1 {
		return nil
	}
	e.frameAcc -= 1

	key := e.keyPending
	// Repay keyframe byte debt by skipping non-key frames.
	if !key && e.byteDebt > 0 {
		e.byteDebt -= e.target / e.params.FPS / 8
		return nil
	}
	if e.KeyInterval > 0 && now-e.lastKey >= e.KeyInterval {
		key = true
	}
	complexity := e.src.Complexity()
	budget := e.target / e.params.FPS / 8 // bytes per frame
	noise := math.Exp(e.rng.NormFloat64() * 0.12)
	bytes := budget * complexity * noise
	if key {
		bytes *= e.KeyframeScale
		// An intra frame's size is resolution-bound: it cannot compress
		// below ~0.30 bits/pixel — at low bitrates and high resolutions
		// (Teams' width bug, Fig 2f) the keyframe alone can exceed a
		// shaped link's whole queue, igniting the paper's FIR storms
		// (Fig 3b) — nor does it need more than ~0.50 bits/pixel.
		pixels := float64(e.params.Width * e.params.Height)
		if floor := pixels * 0.30 / 8; bytes < floor {
			bytes = floor
		}
		if max := pixels * 0.50 / 8; bytes > max {
			bytes = max
		}
		e.lastKey = now
		e.keyPending = false
		over := bytes - budget
		if over > 0 {
			e.byteDebt += over
			// Cap the debt at half a second of budget so video resumes.
			if max := e.target / 8 * 0.5; e.byteDebt > max {
				e.byteDebt = max
			}
		}
	}
	// A frame of W x H pixels cannot compress below ~0.045 bits/pixel
	// even at the coarsest quantization; this floor is what overloads a
	// constrained uplink when a VCA insists on a high resolution
	// (Teams' width bug, Fig 2f / Fig 3b).
	if floor := float64(e.params.Width*e.params.Height) * 0.045 / 8; bytes < floor {
		bytes = floor
	}
	if bytes < 50 {
		bytes = 50
	}
	e.frameSeq++
	return &Frame{
		StreamID:  e.StreamID,
		FrameSeq:  e.frameSeq,
		Bytes:     int(bytes),
		Keyframe:  key,
		CaptureTS: now,
		Params:    e.params,
	}
}

// Simulcast is Google Meet's encoding strategy: the client encodes the same
// scene at two quality levels and uploads both; the SFU forwards one per
// receiver (§3.1: streams observed at 320x180 and 640x360).
type Simulcast struct {
	Low, High *Encoder
	// LowCapBps caps the low stream (the paper's low copy runs ~0.19 Mbps).
	LowCapBps float64
	// MinHighBps disables the high stream when the remaining budget is
	// below this (below it Meet sends only the low copy).
	MinHighBps float64
}

// NewSimulcast builds the two encoders sharing one source.
func NewSimulcast(low, high Ladder, lowCap, minHigh float64, src *Source, rng *rand.Rand) *Simulcast {
	return &Simulcast{
		Low:       NewEncoder("sim/low", low, src, rng),
		High:      NewEncoder("sim/high", high, src, rng),
		LowCapBps: lowCap, MinHighBps: minHigh,
	}
}

// SetTarget splits the total uplink video budget across the two copies.
func (s *Simulcast) SetTarget(totalBps float64) {
	low := math.Min(s.LowCapBps, 0.25*totalBps)
	high := totalBps - low
	if high < s.MinHighBps {
		// Not enough for the high copy: all budget to the low copy.
		s.High.SetTarget(0)
		s.Low.SetTarget(math.Min(totalBps, s.LowCapBps*1.3))
		return
	}
	s.Low.SetTarget(low)
	s.High.SetTarget(high)
}

// Tick produces this tick's frames for both copies.
func (s *Simulcast) Tick(now time.Duration) []*Frame {
	var out []*Frame
	if f := s.Low.Tick(now); f != nil {
		out = append(out, f)
	}
	if f := s.High.Tick(now); f != nil {
		out = append(out, f)
	}
	return out
}

// SVC is Zoom's encoding strategy (§4.2): one hierarchical encoding whose
// layers sum to the target; the SFU forwards a layer subset per receiver
// and can re-add layers instantly when conditions improve.
type SVC struct {
	enc *Encoder
	// Split gives each layer's share of the frame bytes (sums to 1).
	Split []float64
}

// NewSVC creates an SVC encoder with the given per-layer byte split.
func NewSVC(ladder Ladder, split []float64, src *Source, rng *rand.Rand) *SVC {
	return &SVC{enc: NewEncoder("svc", ladder, src, rng), Split: split}
}

// SetTarget sets the total (all-layer) target bitrate.
func (s *SVC) SetTarget(bps float64) { s.enc.SetTarget(bps) }

// SetKeyInterval sets the periodic intra-refresh interval.
func (s *SVC) SetKeyInterval(d time.Duration) { s.enc.KeyInterval = d }

// Params exposes the underlying encode parameters.
func (s *SVC) Params() EncodeParams { return s.enc.Params() }

// RequestKeyframe forwards a keyframe request to the encoder.
func (s *SVC) RequestKeyframe() { s.enc.RequestKeyframe() }

// Tick returns one frame per layer (or nil on skipped ticks).
func (s *SVC) Tick(now time.Duration) []*Frame {
	f := s.enc.Tick(now)
	if f == nil {
		return nil
	}
	out := make([]*Frame, 0, len(s.Split))
	for i, share := range s.Split {
		lf := *f
		lf.StreamID = "svc"
		lf.Layer = i
		lf.Bytes = int(float64(f.Bytes) * share)
		if lf.Bytes < 20 {
			lf.Bytes = 20
		}
		// Only the base layer carries the keyframe weight.
		lf.Keyframe = f.Keyframe && i == 0
		out = append(out, &lf)
	}
	return out
}

// FECBytes returns the forward-error-correction overhead the Zoom relay
// adds when forwarding mediaBytes (§3.1: downstream ≈ 1.2x upstream;
// the Zoom patent describes server-side FEC generation).
func FECBytes(mediaBytes int, overhead float64) int {
	return int(float64(mediaBytes) * overhead)
}
