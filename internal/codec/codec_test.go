package codec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func testLadder() Ladder {
	return Ladder{Rungs: []Rung{
		{LoBps: 0, FPS: 7, Width: 320, Height: 180, QPLo: 35, QPHi: 42},
		{LoBps: 300_000, FPS: 15, Width: 320, Height: 180, QPLo: 30, QPHi: 38},
		{LoBps: 600_000, FPS: 30, Width: 640, Height: 360, QPLo: 22, QPHi: 32},
		{LoBps: 1_200_000, FPS: 30, Width: 960, Height: 540, QPLo: 14, QPHi: 24},
	}}
}

func TestLadderRungSelection(t *testing.T) {
	l := testLadder()
	cases := []struct {
		bps   float64
		width int
		fps   float64
	}{
		{100_000, 320, 7},
		{400_000, 320, 15},
		{700_000, 640, 30},
		{5_000_000, 960, 30},
	}
	for _, c := range cases {
		p := l.ParamsFor(c.bps, nil)
		if p.Width != c.width || p.FPS != c.fps {
			t.Errorf("ParamsFor(%v) = %+v, want width %d fps %v", c.bps, p, c.width, c.fps)
		}
	}
}

func TestLadderQPMonotoneWithinRung(t *testing.T) {
	l := testLadder()
	// Within the 600k-1.2M rung, QP must fall as the rate rises.
	p1 := l.ParamsFor(650_000, nil)
	p2 := l.ParamsFor(1_100_000, nil)
	if p1.QP <= p2.QP {
		t.Errorf("QP not decreasing with rate: %.1f at 650k vs %.1f at 1.1M", p1.QP, p2.QP)
	}
	if p1.QP > 32 || p2.QP < 22 {
		t.Errorf("QP out of rung bounds: %v %v", p1.QP, p2.QP)
	}
}

func TestLadderEmpty(t *testing.T) {
	p := Ladder{}.ParamsFor(1e6, nil)
	if p.FPS == 0 || p.Width == 0 {
		t.Errorf("empty ladder fallback broken: %+v", p)
	}
}

func TestLadderJitterNeedsRng(t *testing.T) {
	l := testLadder()
	l.Jitter = 0.3
	// nil rng: must not panic, jitter ignored.
	p := l.ParamsFor(700_000, nil)
	if p.Width != 640 {
		t.Errorf("nil-rng jittered ladder = %+v", p)
	}
	// With rng, rung selection must vary across draws.
	rng := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[l.ParamsFor(640_000, rng).Width] = true
	}
	if len(seen) < 2 {
		t.Error("jittered ladder never varied rung selection")
	}
}

func TestSourceDeterminismAndBounds(t *testing.T) {
	a := NewSource(rand.New(rand.NewSource(5)))
	b := NewSource(rand.New(rand.NewSource(5)))
	for i := 0; i < 1000; i++ {
		ca, cb := a.Complexity(), b.Complexity()
		if ca != cb {
			t.Fatal("source not deterministic")
		}
		if ca < 0.6 || ca > 1.6 {
			t.Fatalf("complexity %v out of bounds", ca)
		}
	}
}

func TestEncoderHitsTargetRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEncoder("v", testLadder(), NewSource(rng), rng)
	e.SetTarget(800_000)
	var bytes int
	tick := time.Second / 30
	dur := 10 * time.Second
	for now := time.Duration(0); now < dur; now += tick {
		if f := e.Tick(now); f != nil {
			bytes += f.Bytes
		}
	}
	got := float64(bytes) * 8 / dur.Seconds()
	if math.Abs(got-800_000)/800_000 > 0.15 {
		t.Errorf("encoder produced %.0f bps for 800k target", got)
	}
}

func TestEncoderFPSSkipping(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e := NewEncoder("v", testLadder(), NewSource(rng), rng)
	e.SetTarget(400_000) // 15 fps rung
	frames := 0
	tick := time.Second / 30
	for now := time.Duration(0); now < 10*time.Second; now += tick {
		if f := e.Tick(now); f != nil {
			frames++
		}
	}
	if frames < 140 || frames > 160 {
		t.Errorf("frames in 10s at 15fps rung = %d, want ~150", frames)
	}
}

func TestEncoderKeyframes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e := NewEncoder("v", testLadder(), NewSource(rng), rng)
	e.SetTarget(800_000)
	e.RequestKeyframe()
	tick := time.Second / 30
	var first *Frame
	var normal []int
	for now := time.Duration(0); now < 2*time.Second; now += tick {
		if f := e.Tick(now); f != nil {
			if first == nil {
				first = f
				if !f.Keyframe {
					t.Fatal("requested keyframe not honoured")
				}
				continue
			}
			if f.Keyframe {
				t.Fatal("unexpected extra keyframe")
			}
			normal = append(normal, f.Bytes)
		}
	}
	var mean float64
	for _, b := range normal {
		mean += float64(b)
	}
	mean /= float64(len(normal))
	if float64(first.Bytes) < 2*mean {
		t.Errorf("keyframe %d bytes not >> mean %f", first.Bytes, mean)
	}
}

func TestEncoderZeroTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	e := NewEncoder("v", testLadder(), NewSource(rng), rng)
	if f := e.Tick(0); f != nil {
		t.Error("zero-target encoder emitted a frame")
	}
}

func TestSimulcastSplitsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSimulcast(testLadder(), testLadder(), 190_000, 250_000, NewSource(rng), rng)
	s.SetTarget(950_000)
	if s.Low.Target() > 200_000 || s.Low.Target() < 100_000 {
		t.Errorf("low target = %v", s.Low.Target())
	}
	if s.High.Target() < 700_000 {
		t.Errorf("high target = %v", s.High.Target())
	}
	// Starved: only the low copy survives.
	s.SetTarget(220_000)
	if s.High.Target() != 0 {
		t.Errorf("high stream alive at 220k total: %v", s.High.Target())
	}
	if s.Low.Target() == 0 {
		t.Error("low stream dead at 220k total")
	}
}

func TestSimulcastEmitsBothStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := NewSimulcast(testLadder(), testLadder(), 190_000, 250_000, NewSource(rng), rng)
	s.SetTarget(950_000)
	tick := time.Second / 30
	seen := map[string]int{}
	for now := time.Duration(0); now < 5*time.Second; now += tick {
		for _, f := range s.Tick(now) {
			seen[f.StreamID]++
		}
	}
	if seen["sim/low"] == 0 || seen["sim/high"] == 0 {
		t.Errorf("stream frame counts = %v", seen)
	}
}

func TestSVCLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewSVC(testLadder(), []float64{0.4, 0.3, 0.3}, NewSource(rng), rng)
	s.SetTarget(780_000)
	tick := time.Second / 30
	var totalBytes int
	layerBytes := map[int]int{}
	for now := time.Duration(0); now < 10*time.Second; now += tick {
		for _, f := range s.Tick(now) {
			totalBytes += f.Bytes
			layerBytes[f.Layer] += f.Bytes
			if f.Layer > 0 && f.Keyframe {
				t.Fatal("keyframe on enhancement layer")
			}
		}
	}
	got := float64(totalBytes) * 8 / 10
	if math.Abs(got-780_000)/780_000 > 0.15 {
		t.Errorf("SVC total = %.0f bps for 780k target", got)
	}
	if len(layerBytes) != 3 {
		t.Fatalf("layers seen: %v", layerBytes)
	}
	if !(layerBytes[0] > layerBytes[1] && layerBytes[1] > 0) {
		t.Errorf("layer byte split wrong: %v", layerBytes)
	}
}

func TestFECBytes(t *testing.T) {
	if got := FECBytes(1000, 0.2); got != 200 {
		t.Errorf("FECBytes = %d, want 200", got)
	}
	if got := FECBytes(0, 0.5); got != 0 {
		t.Errorf("FECBytes(0) = %d", got)
	}
}

// Property: ladder parameters are piecewise-monotone — a higher target never
// yields a lower resolution or FPS.
func TestQuickLadderMonotone(t *testing.T) {
	l := testLadder()
	f := func(a, b uint32) bool {
		ra, rb := float64(a%5_000_000), float64(b%5_000_000)
		if ra > rb {
			ra, rb = rb, ra
		}
		pa, pb := l.ParamsFor(ra, nil), l.ParamsFor(rb, nil)
		return pa.Width <= pb.Width && pa.FPS <= pb.FPS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: encoder long-run output rate tracks any sane target within 20%.
func TestQuickEncoderRateTracking(t *testing.T) {
	f := func(seed int64, rawTarget uint32) bool {
		target := float64(rawTarget%2_000_000) + 200_000
		rng := rand.New(rand.NewSource(seed))
		e := NewEncoder("v", testLadder(), NewSource(rng), rng)
		e.SetTarget(target)
		var bytes int
		tick := time.Second / 30
		for now := time.Duration(0); now < 20*time.Second; now += tick {
			if f := e.Tick(now); f != nil {
				bytes += f.Bytes
			}
		}
		got := float64(bytes) * 8 / 20
		return math.Abs(got-target)/target < 0.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
