// Package pcap writes libpcap-format capture files from emulator traffic,
// standing in for the packet captures the paper collected at each client
// (§2.2). Media packets are serialized as real RTP over UDP/IPv4/Ethernet,
// so the traces open in standard analysis tools.
package pcap

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/rtp"
	"vcalab/internal/vca"
)

// Classic pcap file constants.
const (
	magicNumber  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	snapLen      = 65535
	linkEthernet = 1
)

// Writer emits a pcap stream. Create with NewWriter; call WriteNetem (or
// the lower-level WriteFrame) per packet.
type Writer struct {
	w io.Writer
	// Packets counts records written.
	Packets int
}

// NewWriter writes the pcap global header and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], magicNumber)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linkEthernet)
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("pcap: writing global header: %w", err)
	}
	return &Writer{w: w}, nil
}

// WriteFrame writes one raw Ethernet frame with the given virtual
// timestamp.
func (w *Writer) WriteFrame(ts time.Duration, frame []byte) error {
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[0:], uint32(ts/time.Second))
	binary.LittleEndian.PutUint32(rec[4:], uint32(ts%time.Second/time.Microsecond))
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(frame)))
	if _, err := w.w.Write(rec); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(frame); err != nil {
		return fmt.Errorf("pcap: writing frame: %w", err)
	}
	w.Packets++
	return nil
}

// WriteNetem serializes a netem packet as Ethernet/IPv4/UDP (with a real
// RTP header when the payload is a vca media packet) and writes it.
func (w *Writer) WriteNetem(ts time.Duration, pkt *netem.Packet) error {
	frame, err := Frame(pkt)
	if err != nil {
		return err
	}
	return w.WriteFrame(ts, frame)
}

// HostIP derives a stable synthetic IPv4 address for a host name.
func HostIP(name string) [4]byte {
	h := fnv.New32a()
	h.Write([]byte(name))
	v := h.Sum32()
	return [4]byte{10, byte(v >> 16), byte(v >> 8), byte(v)}
}

// Frame builds the on-wire Ethernet frame for a netem packet. pkt.Size is
// interpreted as the IP datagram size; the UDP payload is reconstructed as
// RTP when possible and zero-filled otherwise.
func Frame(pkt *netem.Packet) ([]byte, error) {
	ipLen := pkt.Size
	if ipLen < 28 {
		ipLen = 28 // minimum IP+UDP
	}
	udpPayload, err := udpPayloadFor(pkt, ipLen-28)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, 14+28+len(udpPayload))

	// Ethernet: synthetic MACs from the IPs, EtherType IPv4.
	srcIP, dstIP := HostIP(pkt.From.Host), HostIP(pkt.To.Host)
	copy(frame[0:6], []byte{0x02, 0, dstIP[1], dstIP[2], dstIP[3], 0x01})
	copy(frame[6:12], []byte{0x02, 0, srcIP[1], srcIP[2], srcIP[3], 0x01})
	binary.BigEndian.PutUint16(frame[12:], 0x0800)

	// IPv4 header.
	ip := frame[14:]
	ip[0] = 0x45 // v4, 20-byte header
	binary.BigEndian.PutUint16(ip[2:], uint16(28+len(udpPayload)))
	ip[8] = 64 // TTL
	ip[9] = 17 // UDP
	copy(ip[12:16], srcIP[:])
	copy(ip[16:20], dstIP[:])
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip[:20]))

	// UDP header.
	udp := ip[20:]
	binary.BigEndian.PutUint16(udp[0:], uint16(pkt.From.Port))
	binary.BigEndian.PutUint16(udp[2:], uint16(pkt.To.Port))
	binary.BigEndian.PutUint16(udp[4:], uint16(8+len(udpPayload)))
	// checksum 0 (legal for UDP over IPv4)
	copy(udp[8:], udpPayload)
	return frame, nil
}

// udpPayloadFor reconstructs the UDP payload: a real RTP packet for media,
// zero padding otherwise.
func udpPayloadFor(pkt *netem.Packet, size int) ([]byte, error) {
	if size < 0 {
		size = 0
	}
	mp, ok := pkt.Payload.(*vca.MediaPacket)
	if !ok {
		return make([]byte, size), nil
	}
	payloadLen := size - rtp.HeaderSize
	if payloadLen < 0 {
		payloadLen = 0
	}
	p := rtp.Packet{
		Header: rtp.Header{
			Marker:         mp.FrameEnd,
			PayloadType:    payloadTypeFor(mp),
			SequenceNumber: mp.Seq,
			Timestamp:      uint32(pkt.SentAt / (time.Second / 90000)), // 90 kHz video clock
			SSRC:           mp.SSRC,
		},
		Payload: make([]byte, payloadLen),
	}
	return p.Marshal()
}

func payloadTypeFor(mp *vca.MediaPacket) uint8 {
	switch {
	case mp.Audio:
		return 111 // opus
	case mp.Padding:
		return 127
	default:
		return 96 // dynamic video
	}
}

func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// TapHost records every packet delivered to the host into w.
func TapHost(w *Writer, h *netem.Host, now func() time.Duration) {
	h.Tap(func(pkt *netem.Packet) {
		// Errors cannot propagate from a tap; traces are best-effort.
		_ = w.WriteNetem(now(), pkt)
	})
}

// TapLink records every packet offered to a link into w.
func TapLink(w *Writer, l *netem.Link, now func() time.Duration) {
	l.OnSend(func(pkt *netem.Packet) {
		_ = w.WriteNetem(now(), pkt)
	})
}
