package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/rtp"
	"vcalab/internal/vca"
)

func TestGlobalHeader(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("global header %d bytes, want 24", len(b))
	}
	if binary.LittleEndian.Uint32(b) != 0xa1b2c3d4 {
		t.Errorf("magic = %x", binary.LittleEndian.Uint32(b))
	}
	if binary.LittleEndian.Uint32(b[20:]) != 1 {
		t.Errorf("link type = %d, want 1 (Ethernet)", binary.LittleEndian.Uint32(b[20:]))
	}
}

func TestWriteNetemRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkt := &netem.Packet{
		Size: 500,
		From: netem.Addr{Host: "c1", Port: 5004},
		To:   netem.Addr{Host: "sfu", Port: 5004},
		Payload: &vca.MediaPacket{
			Origin: "c1", StreamID: "video", SSRC: 42, Seq: 1234, FrameEnd: true,
		},
		SentAt: 1500 * time.Millisecond,
	}
	if err := w.WriteNetem(1500*time.Millisecond, pkt); err != nil {
		t.Fatal(err)
	}
	if w.Packets != 1 {
		t.Errorf("Packets = %d", w.Packets)
	}
	rec := buf.Bytes()[24:]
	tsSec := binary.LittleEndian.Uint32(rec[0:])
	tsUsec := binary.LittleEndian.Uint32(rec[4:])
	if tsSec != 1 || tsUsec != 500000 {
		t.Errorf("timestamp = %d.%06d, want 1.500000", tsSec, tsUsec)
	}
	incl := binary.LittleEndian.Uint32(rec[8:])
	if int(incl) != 14+500 {
		t.Errorf("frame length = %d, want 514 (ethernet + IP size)", incl)
	}
	frame := rec[16 : 16+incl]
	// EtherType IPv4.
	if binary.BigEndian.Uint16(frame[12:]) != 0x0800 {
		t.Error("not an IPv4 frame")
	}
	ip := frame[14:]
	if ip[0] != 0x45 || ip[9] != 17 {
		t.Errorf("IP header wrong: version %x proto %d", ip[0], ip[9])
	}
	if got := binary.BigEndian.Uint16(ip[2:]); got != 500 {
		t.Errorf("IP total length = %d, want 500", got)
	}
	// UDP ports.
	udp := ip[20:]
	if binary.BigEndian.Uint16(udp[0:]) != 5004 || binary.BigEndian.Uint16(udp[2:]) != 5004 {
		t.Error("UDP ports wrong")
	}
	// RTP payload parses and matches.
	var p rtp.Packet
	if err := p.Unmarshal(udp[8:]); err != nil {
		t.Fatalf("RTP unmarshal: %v", err)
	}
	if p.SequenceNumber != 1234 || p.SSRC != 42 || !p.Marker {
		t.Errorf("RTP header mismatch: %+v", p.Header)
	}
}

func TestIPChecksumValid(t *testing.T) {
	pkt := &netem.Packet{Size: 100, From: netem.Addr{Host: "a", Port: 1}, To: netem.Addr{Host: "b", Port: 2}}
	frame, err := Frame(pkt)
	if err != nil {
		t.Fatal(err)
	}
	ip := frame[14:34]
	// Verify: sum over header including checksum must be 0xffff.
	var sum uint32
	for i := 0; i < 20; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if uint16(sum) != 0xffff {
		t.Errorf("IP checksum invalid: folded sum %x", sum)
	}
}

func TestHostIPStable(t *testing.T) {
	a, b := HostIP("c1"), HostIP("c1")
	if a != b {
		t.Error("HostIP not deterministic")
	}
	if HostIP("c1") == HostIP("c2") {
		t.Error("distinct hosts share an IP")
	}
	if a[0] != 10 {
		t.Errorf("not in 10.0.0.0/8: %v", a)
	}
}

func TestNonMediaPayloadZeroFilled(t *testing.T) {
	pkt := &netem.Packet{Size: 200, From: netem.Addr{Host: "a", Port: 80}, To: netem.Addr{Host: "b", Port: 81},
		Payload: "tcp segment"}
	frame, err := Frame(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != 14+200 {
		t.Errorf("frame length %d, want 214", len(frame))
	}
}

func TestTinyPacketClamped(t *testing.T) {
	pkt := &netem.Packet{Size: 10, From: netem.Addr{Host: "a"}, To: netem.Addr{Host: "b"}}
	frame, err := Frame(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) < 14+28 {
		t.Errorf("frame below minimum: %d", len(frame))
	}
}
