// Package cascade composes multiple vca.Server instances into a
// geo-distributed relay mesh, the way production VCAs serve large calls:
// every region runs its own SFU, clients attach to their home region, and
// the SFUs cascade media between regions so each origin's stream crosses
// each inter-region link once regardless of the remote fan-out (ion-sfu's
// relay peers, LiveKit's Room/Forwarder pipeline).
//
// The package owns the topology side: a Topology describes regions, the
// inter-region latency/bandwidth matrix and the client→home-region
// assignment; Build wires it into a multi-router netem lab; Mesh.NewCall
// attaches the cascaded protocol machinery (vca.NewCascadedCall) on top.
// The §4.2 server behaviours survive intact across the cascade — Meet and
// Zoom terminate congestion control on every hop, Teams relays RTCP
// end-to-end — which is what the scale experiment (experiment.RunScale)
// measures under conditions the paper's two-laptop lab never reached.
package cascade

import (
	"fmt"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
	"vcalab/internal/vca"
)

// Default hop parameters, used when a Topology leaves them zero.
const (
	// DefaultAccessDelay is the client↔regional-router one-way delay.
	DefaultAccessDelay = 2 * time.Millisecond
	// DefaultSFUDelay is the SFU↔regional-router one-way delay.
	DefaultSFUDelay = 2 * time.Millisecond
	// DefaultInterDelay is the inter-region one-way delay (a continental
	// WAN hop).
	DefaultInterDelay = 40 * time.Millisecond
)

// Region is one SFU site and the clients homed on it.
type Region struct {
	Name string
	// Clients are the client host names homed in this region.
	Clients []string
	// Access configures each client's hop to the regional router
	// (per-client links, like per-home access shaping). A zero value
	// means an unconstrained link with DefaultAccessDelay.
	Access netem.LinkConfig
	// SFUDelay is the SFU↔router one-way delay (0 = DefaultSFUDelay).
	SFUDelay time.Duration
}

// Topology describes a cascaded relay mesh: regions plus the directed
// inter-region link matrix.
type Topology struct {
	Regions []Region
	// Inter overrides the link configuration for specific directed region
	// pairs, keyed by [2]int{from, to} region indices.
	Inter map[[2]int]netem.LinkConfig
	// Default is the inter-region link used where Inter has no entry. A
	// zero value means an unconstrained link with DefaultInterDelay.
	Default netem.LinkConfig
}

// Assign spreads n clients ("c1".."cN") round-robin across regions —
// the standard home-region assignment for the scale experiment. It
// returns one name slice per region; client 1 (C1) lands in region 0.
func Assign(n, regions int) [][]string {
	out := make([][]string, regions)
	for i := 0; i < n; i++ {
		r := i % regions
		out[r] = append(out[r], fmt.Sprintf("c%d", i+1))
	}
	return out
}

// Mesh is a built cascade topology: one router and SFU host per region,
// client hosts attached to their home routers, and directed inter-region
// links carrying all cross-region traffic (relayed media, per-hop or
// end-to-end RTCP, FIRs).
type Mesh struct {
	Eng *sim.Engine

	// SFUs holds one SFU host per region, index-aligned with the
	// topology's Regions.
	SFUs []*netem.Host
	// Clients holds the client hosts per region.
	Clients [][]*netem.Host
	// Routers are the regional routers.
	Routers []*netem.Router

	topo Topology
	// inter is the dense directed link matrix: inter[i][j] is the region
	// i → region j link (nil on the diagonal). Index-addressed like the
	// call's routing tables, so placement code never hashes a key.
	inter [][]*netem.Link
	pairs [][2]int // deterministic iteration order over inter links
	// accessUp/accessDown index every host's access-link pair by host
	// name (clients and SFUs alike), so dynamic scenarios can re-shape
	// any hop of the built topology mid-simulation. Cold path: lookups
	// happen at scenario-event cadence, never per packet.
	accessUp, accessDown map[string]*netem.Link
}

// interConfig resolves the directed i→j inter-region link configuration,
// applying the topology default and the DefaultInterDelay fallback.
func interConfig(topo Topology, i, j int) netem.LinkConfig {
	cfg := topo.Default
	if c, ok := topo.Inter[[2]int{i, j}]; ok {
		cfg = c
	}
	if cfg == (netem.LinkConfig{}) {
		cfg.Delay = DefaultInterDelay
	}
	return cfg
}

// Build wires the topology into a multi-router netem lab. SFU hosts are
// named "sfu-<region>"; client host names come from the topology.
func Build(eng *sim.Engine, topo Topology) *Mesh {
	return build(eng, topo, nil)
}

// build wires the topology. engOf, when non-nil, picks the engine each
// region's hosts and links live on (the region-sharded layout); an inter
// link lives on its source region's engine. Nil means everything on eng.
func build(eng *sim.Engine, topo Topology, engOf func(ri int) *sim.Engine) *Mesh {
	if len(topo.Regions) == 0 {
		panic("cascade: topology needs at least one region")
	}
	if engOf == nil {
		engOf = func(int) *sim.Engine { return eng }
	}
	m := &Mesh{
		Eng: eng, topo: topo,
		inter:      make([][]*netem.Link, len(topo.Regions)),
		accessUp:   map[string]*netem.Link{},
		accessDown: map[string]*netem.Link{},
	}
	for i := range m.inter {
		m.inter[i] = make([]*netem.Link, len(topo.Regions))
	}
	for _, r := range topo.Regions {
		m.Routers = append(m.Routers, netem.NewRouter("rt-"+r.Name))
	}
	// Inter-region links first, so host routes can reference them.
	for i := range topo.Regions {
		for j := range topo.Regions {
			if i == j {
				continue
			}
			cfg := interConfig(topo, i, j)
			name := "inter/" + topo.Regions[i].Name + "-" + topo.Regions[j].Name
			l := netem.NewLink(engOf(i), name, cfg, m.Routers[j])
			m.inter[i][j] = l
			m.pairs = append(m.pairs, [2]int{i, j})
		}
	}
	for ri, r := range topo.Regions {
		rEng := engOf(ri)
		sfuDelay := r.SFUDelay
		if sfuDelay == 0 {
			sfuDelay = DefaultSFUDelay
		}
		sfu := netem.NewHost(rEng, "sfu-"+r.Name)
		up, down := netem.Attach(rEng, sfu, m.Routers[ri], netem.LinkConfig{Delay: sfuDelay})
		m.accessUp[sfu.Name], m.accessDown[sfu.Name] = up, down
		m.SFUs = append(m.SFUs, sfu)
		m.routeRemote(ri, sfu.Name)

		access := r.Access
		if access == (netem.LinkConfig{}) {
			access.Delay = DefaultAccessDelay
		}
		var hosts []*netem.Host
		for _, name := range r.Clients {
			h := netem.NewHost(rEng, name)
			up, down := netem.Attach(rEng, h, m.Routers[ri], access)
			m.accessUp[name], m.accessDown[name] = up, down
			hosts = append(hosts, h)
			m.routeRemote(ri, name)
		}
		m.Clients = append(m.Clients, hosts)
	}
	return m
}

// routeRemote teaches every other region's router to reach a host homed
// in region ri over the direct inter-region link.
func (m *Mesh) routeRemote(ri int, host string) {
	for q := range m.topo.Regions {
		if q == ri {
			continue
		}
		m.Routers[q].Route(host, m.inter[q][ri])
	}
}

// InterLink returns the directed link from region i to region j.
func (m *Mesh) InterLink(i, j int) *netem.Link { return m.inter[i][j] }

// Regions reports the number of regions in the built topology.
func (m *Mesh) Regions() int { return len(m.topo.Regions) }

// AccessUplink returns the named host's host→router access link, or nil
// for an unknown host.
func (m *Mesh) AccessUplink(host string) *netem.Link { return m.accessUp[host] }

// AccessDownlink returns the named host's router→host access link, or nil
// for an unknown host.
func (m *Mesh) AccessDownlink(host string) *netem.Link { return m.accessDown[host] }

// InterLinks returns every directed inter-region link in a deterministic
// order (ascending (from, to)).
func (m *Mesh) InterLinks() []*netem.Link {
	out := make([]*netem.Link, 0, len(m.pairs))
	for _, p := range m.pairs {
		out = append(out, m.inter[p[0]][p[1]])
	}
	return out
}

// Links returns every link of the built topology in a deterministic
// order: inter-region links (ascending (from, to)), then per region the
// SFU's up/down access pair followed by each client's up/down pair in
// declaration order. Instrumentation that iterates "all links" — tracer
// attachment, metrics registration — goes through here so its side
// effects (and therefore any JSONL output) are reproducible.
func (m *Mesh) Links() []*netem.Link {
	out := m.InterLinks()
	for ri, r := range m.topo.Regions {
		sfu := m.SFUs[ri].Name
		out = append(out, m.accessUp[sfu], m.accessDown[sfu])
		for _, name := range r.Clients {
			out = append(out, m.accessUp[name], m.accessDown[name])
		}
	}
	return out
}

// SetInterRate re-shapes every inter-region link to bps (0 removes the
// constraint), resizing queues to the default depth — the `tc` analogue
// for the WAN mesh.
func (m *Mesh) SetInterRate(bps float64) {
	for _, p := range m.pairs {
		l := m.inter[p[0]][p[1]]
		l.SetRate(bps)
		if bps > 0 {
			l.SetQueueBytes(netem.DefaultQueueBytes(bps))
		}
	}
}

// Placements converts the built mesh into the per-region client/SFU host
// groups vca.NewCascadedCall consumes.
func (m *Mesh) Placements() []vca.CascadePlacement {
	out := make([]vca.CascadePlacement, len(m.SFUs))
	for i := range m.SFUs {
		out[i] = vca.CascadePlacement{Server: m.SFUs[i], Clients: m.Clients[i]}
	}
	return out
}

// NewCall attaches a cascaded call to the mesh: clients homed per region,
// one SFU per region, relay legs between all SFU pairs.
func (m *Mesh) NewCall(prof *vca.Profile, opt vca.CallOptions) *vca.Call {
	return vca.NewCascadedCall(m.Eng, prof, m.Placements(), opt)
}
