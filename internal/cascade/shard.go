// Region sharding: partitioning a cascade topology across parallel
// engine shards for conservative-window PDES (sim.Group).
//
// The partition unit is the region — a region's clients, SFU, router and
// access links share one engine, so everything that was single-threaded
// stays single-threaded. The only traffic between regions rides the
// directed inter-region links, and those have a fixed propagation-delay
// floor (a continental WAN hop): that floor is the conservative
// lookahead. A topology whose cross-shard links have no positive delay
// provides no lookahead, so PlanShards falls back to a single shard —
// the caller then uses the plain sequential Build.
package cascade

import (
	"math"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/obs"
	"vcalab/internal/sim"
	"vcalab/internal/vca"
)

// ShardPlan is the regions→shards partition PlanShards computes.
type ShardPlan struct {
	// NumShards is the number of engine shards to run; 1 means "run
	// sequential" (requested shards <= 1, fewer than 2 regions, or no
	// positive cross-shard delay floor).
	NumShards int
	// ShardOf maps region index -> shard index, round-robin. Valid only
	// when NumShards > 1.
	ShardOf []int
	// Lookahead is the static conservative window: the minimum
	// cross-shard inter-region propagation delay at build time. The
	// running Group re-derives it from live link state every window, so
	// mid-run delay reshaping is honored (as long as it stays positive).
	Lookahead time.Duration
}

// PlanShards partitions a topology's regions round-robin across up to
// `shards` shards and derives the conservative lookahead. It falls back
// to NumShards == 1 whenever the topology cannot support conservative
// windows: fewer shards than 2 requested, fewer regions than shards
// would split, or some cross-shard inter link with a zero delay floor.
func PlanShards(topo Topology, shards int) ShardPlan {
	if shards > len(topo.Regions) {
		shards = len(topo.Regions)
	}
	if shards <= 1 || len(topo.Regions) < 2 {
		return ShardPlan{NumShards: 1}
	}
	shardOf := make([]int, len(topo.Regions))
	for ri := range topo.Regions {
		shardOf[ri] = ri % shards
	}
	look := time.Duration(math.MaxInt64)
	for i := range topo.Regions {
		for j := range topo.Regions {
			if i == j || shardOf[i] == shardOf[j] {
				continue
			}
			d := interConfig(topo, i, j).Delay
			if d <= 0 {
				// A zero-delay boundary link admits no lookahead window.
				return ShardPlan{NumShards: 1}
			}
			if d < look {
				look = d
			}
		}
	}
	if look == math.MaxInt64 {
		// No cross-shard links at all (single region per shard is
		// guaranteed above, so this cannot happen — defensive).
		return ShardPlan{NumShards: 1}
	}
	return ShardPlan{NumShards: shards, ShardOf: shardOf, Lookahead: look}
}

// ShardedMesh is a mesh built across engine shards. Mesh.Eng is the
// control engine — schedule calls, timelines, warmup snapshots and
// samplers there; the per-region machinery lives on ShardEngines. Drive
// the run through Group (RunUntil / Run) and release the shard
// goroutines with Group.Close when the trial ends.
type ShardedMesh struct {
	*Mesh
	Group *sim.Group
	// ShardEngines are the shard engines in domain order (Group.Shards).
	ShardEngines []*sim.Engine
	Plan         ShardPlan

	boundary []*netem.Link // cross-shard inter links, pair order
	dstOf    []int         // boundary[i]'s destination region
}

// BuildSharded wires the topology across NumShards engine shards plus a
// control engine, converts every cross-shard inter link into a mailbox
// boundary, and assembles the sim.Group. Engine seeds derive
// deterministically from seed; note per-link RNG streams (fractional
// loss, jitter) differ from the sequential layout's single stream, so
// only draw-free workloads are byte-identical across shard counts.
// plan.NumShards must be > 1 — callers use Build for the sequential
// fallback.
func BuildSharded(seed int64, topo Topology, plan ShardPlan) *ShardedMesh {
	if plan.NumShards <= 1 {
		panic("cascade: BuildSharded needs a plan with NumShards > 1")
	}
	ctrl := sim.New(seed)
	engines := make([]*sim.Engine, plan.NumShards)
	for k := range engines {
		engines[k] = sim.New(seed + int64(k+1)*104729)
	}
	engOf := func(ri int) *sim.Engine { return engines[plan.ShardOf[ri]] }
	sm := &ShardedMesh{
		Mesh:         build(ctrl, topo, engOf),
		ShardEngines: engines,
		Plan:         plan,
	}
	for _, p := range sm.pairs {
		i, j := p[0], p[1]
		if plan.ShardOf[i] == plan.ShardOf[j] {
			continue
		}
		sm.boundary = append(sm.boundary, sm.inter[i][j])
		sm.dstOf = append(sm.dstOf, j)
	}
	sm.Group = sim.NewGroup(ctrl, engines, sm.currentLookahead)
	for bi, l := range sm.boundary {
		sm.Group.Register(l.Handoff(engOf(sm.dstOf[bi])))
	}
	return sm
}

// currentLookahead is the Group's per-window lookahead: the minimum live
// propagation delay across the boundary links, so a timeline that
// reshapes an inter-region delay mid-run narrows (or widens) the window
// from the next barrier on. Jitter only adds delay, so it never
// undercuts the floor.
func (m *ShardedMesh) currentLookahead() time.Duration {
	look := time.Duration(math.MaxInt64)
	for _, l := range m.boundary {
		if d := l.Delay(); d < look {
			look = d
		}
	}
	return look
}

// BoundaryLinks returns the cross-shard inter links in deterministic
// (ascending pair) order.
func (m *ShardedMesh) BoundaryLinks() []*netem.Link { return m.boundary }

// BoundaryDst returns the destination region index of BoundaryLinks()[i]
// — instrumentation uses it to attach the destination shard's tracer to
// the link's deliver side.
func (m *ShardedMesh) BoundaryDst(i int) int { return m.dstOf[i] }

// ShardTracers attaches per-shard tracers: every link records its
// send-side events into its own shard's tracer, every boundary link's
// deliver event goes to the destination shard's tracer, and each
// region's call machinery records into its shard's tracer. trs must hold
// one tracer per shard. Churn and timeline events are the caller's to
// wire (they run on the control engine).
func (m *ShardedMesh) ShardTracers(call *vca.Call, trs []*obs.Tracer) {
	engTr := map[*sim.Engine]*obs.Tracer{}
	for k, se := range m.ShardEngines {
		engTr[se] = trs[k]
	}
	for _, l := range m.Links() {
		l.SetTracer(engTr[l.Engine()])
	}
	for bi, l := range m.boundary {
		l.SetDeliverTracer(trs[m.Plan.ShardOf[m.dstOf[bi]]])
	}
	for r := 0; r < m.Regions(); r++ {
		call.SetRegionTracer(r, trs[m.Plan.ShardOf[r]])
	}
}

// NewCall attaches a cascaded call with each region's machinery homed on
// its shard engine, and wires every boundary link's payload re-homing
// hook to the destination region's media pool.
func (m *ShardedMesh) NewCall(prof *vca.Profile, opt vca.CallOptions) *vca.Call {
	pl := m.Placements()
	for ri := range pl {
		pl[ri].Eng = m.ShardEngines[m.Plan.ShardOf[ri]]
	}
	call := vca.NewCascadedCall(m.Eng, prof, pl, opt)
	for bi, l := range m.boundary {
		l.SetHandoffPayload(call.PayloadTransfer(m.dstOf[bi]))
	}
	return call
}
