package cascade

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
	"vcalab/internal/vca"
)

func threeRegionTopo() Topology {
	return Topology{
		Regions: []Region{
			{Name: "r0", Clients: []string{"c1", "c4", "c7"}},
			{Name: "r1", Clients: []string{"c2", "c5", "c8"}},
			{Name: "r2", Clients: []string{"c3", "c6", "c9"}},
		},
		Default: netem.LinkConfig{RateBps: 20e6, Delay: 30 * time.Millisecond},
	}
}

// cascadeFingerprint flattens every observable outcome of a finished
// trial — all link counters, server forwarding state, per-client
// getStats reports — into one comparable string.
func cascadeFingerprint(m *Mesh, call *vca.Call, now time.Duration) string {
	var b strings.Builder
	for _, l := range m.Links() {
		fmt.Fprintf(&b, "%s d=%d db=%d x=%d xb=%d qhw=%d\n",
			l.Name(), l.Delivered, l.DeliveredBytes, l.Drops, l.DroppedBytes, l.QueueHighWater())
	}
	for _, s := range call.Servers {
		fmt.Fprintf(&b, "fwd=%d legs=%v\n", s.FwdSwitches(), s.LegNames())
	}
	for _, cl := range call.Clients {
		fmt.Fprintf(&b, "%+v\n", cl.StatsReport(now))
	}
	return b.String()
}

// runCascadeTrial runs one 9-party/3-region Meet trial at the given
// shard count (1 = plain sequential Build) and returns its fingerprint.
func runCascadeTrial(t *testing.T, prof *vca.Profile, shards int) string {
	t.Helper()
	topo := threeRegionTopo()
	const seed = 7
	const dur = 20 * time.Second
	var m *Mesh
	var call *vca.Call
	if plan := PlanShards(topo, shards); plan.NumShards > 1 {
		if plan.NumShards != shards {
			t.Fatalf("plan collapsed %d shards to %d", shards, plan.NumShards)
		}
		sm := BuildSharded(seed, topo, plan)
		defer sm.Group.Close()
		m, call = sm.Mesh, sm.NewCall(prof, vca.CallOptions{Seed: seed})
		call.Start()
		sm.Group.RunUntil(dur)
		call.Stop()
		sm.Group.Run()
		if live := sm.Group.Live(); live != 0 {
			t.Fatalf("shards=%d: %d pooled events leaked", shards, live)
		}
		if pend := sm.Group.Pending(); pend != 0 {
			t.Fatalf("shards=%d: %d events still pending after drain", shards, pend)
		}
		for _, l := range sm.BoundaryLinks() {
			if n := l.BoundaryPoolLive(); n != 0 {
				t.Fatalf("shards=%d: boundary link %s leaked %d envelopes", shards, l.Name(), n)
			}
		}
		st := sm.Group.Stats()
		if st.Windows == 0 {
			t.Fatalf("shards=%d: no windows ran", shards)
		}
	} else {
		if shards > 1 {
			t.Fatalf("PlanShards refused %d shards on a 3-region topology", shards)
		}
		eng := sim.New(seed)
		m = Build(eng, topo)
		call = m.NewCall(prof, vca.CallOptions{Seed: seed})
		call.Start()
		eng.RunUntil(dur)
		call.Stop()
		eng.Run()
		if live := eng.Live(); live != 0 {
			t.Fatalf("sequential: %d pooled events leaked", live)
		}
	}
	for ri, hosts := range m.Clients {
		for _, h := range hosts {
			if n := h.PoolLive(); n != 0 {
				t.Fatalf("shards=%d: host %s leaked %d packets", shards, h.Name, n)
			}
		}
		if n := m.SFUs[ri].PoolLive(); n != 0 {
			t.Fatalf("shards=%d: %s leaked %d packets", shards, m.SFUs[ri].Name, n)
		}
	}
	return cascadeFingerprint(m, call, dur)
}

// TestShardedMatchesSequential is the cascade-level identity gate: the
// complete observable outcome of a 3-region call is the same whether it
// runs on one engine or split 2 or 3 ways.
func TestShardedMatchesSequential(t *testing.T) {
	for _, prof := range []*vca.Profile{vca.Meet(), vca.Zoom(), vca.Teams()} {
		base := runCascadeTrial(t, prof, 1)
		for _, shards := range []int{2, 3} {
			got := runCascadeTrial(t, prof, shards)
			if got != base {
				t.Errorf("%s: shards=%d diverges from sequential:\n%s",
					prof.Name, shards, firstDiff(base, got))
			}
		}
	}
}

// firstDiff returns the first differing line pair of two multi-line
// strings, to keep divergence reports readable.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  seq:   %s\n  shard: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

func TestPlanShardsFallbacks(t *testing.T) {
	topo := threeRegionTopo()
	if p := PlanShards(topo, 1); p.NumShards != 1 {
		t.Errorf("shards=1 must stay sequential, got %d", p.NumShards)
	}
	if p := PlanShards(topo, 5); p.NumShards != 3 {
		t.Errorf("shards capped at regions: got %d want 3", p.NumShards)
	}
	if p := PlanShards(topo, 3); p.Lookahead != 30*time.Millisecond {
		t.Errorf("lookahead: got %v want 30ms", p.Lookahead)
	}
	single := Topology{Regions: []Region{{Name: "r0", Clients: []string{"c1", "c2"}}}}
	if p := PlanShards(single, 2); p.NumShards != 1 {
		t.Errorf("single region must fall back, got %d shards", p.NumShards)
	}
	zero := threeRegionTopo()
	zero.Default = netem.LinkConfig{RateBps: 20e6} // Delay left zero...
	zero.Inter = map[[2]int]netem.LinkConfig{
		// ...but a zero LinkConfig gets DefaultInterDelay, so force one
		// truly zero-delay directed pair via a rate-only override.
		{0, 1}: {RateBps: 20e6, QueueBytes: 1500},
	}
	if p := PlanShards(zero, 3); p.NumShards != 1 {
		t.Errorf("zero-delay boundary must fall back, got %d shards", p.NumShards)
	}
}
