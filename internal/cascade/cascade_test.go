package cascade

import (
	"fmt"
	"testing"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
	"vcalab/internal/vca"
)

// twoRegions builds a 1+k two-region mesh: c1 homed in r0, k clients in r1.
func twoRegions(eng *sim.Engine, k int, inter netem.LinkConfig) *Mesh {
	var remote []string
	for i := 0; i < k; i++ {
		remote = append(remote, fmt.Sprintf("c%d", i+2))
	}
	return Build(eng, Topology{
		Regions: []Region{
			{Name: "r0", Clients: []string{"c1"}},
			{Name: "r1", Clients: remote},
		},
		Default: inter,
	})
}

func TestMeshWiringDelays(t *testing.T) {
	eng := sim.New(1)
	m := twoRegions(eng, 1, netem.LinkConfig{RateBps: 1e6, Delay: 10 * time.Millisecond})
	var arrived time.Duration
	m.Clients[1][0].HandleFunc(80, func(p *netem.Packet) { arrived = eng.Now() })
	// 1250 B across: access 2 ms + inter (10 ms tx at 1 Mbps + 10 ms
	// prop) + access 2 ms = 24 ms, traversing both regional routers.
	m.Clients[0][0].Send(&netem.Packet{Size: 1250, From: netem.Addr{Host: "c1", Port: 81}, To: netem.Addr{Host: "c2", Port: 80}})
	eng.Run()
	if want := 24 * time.Millisecond; arrived != want {
		t.Errorf("cross-region arrival at %v, want %v", arrived, want)
	}
}

func TestAssignRoundRobin(t *testing.T) {
	a := Assign(7, 3)
	if len(a) != 3 || len(a[0]) != 3 || len(a[1]) != 2 || len(a[2]) != 2 {
		t.Fatalf("Assign(7,3) = %v", a)
	}
	if a[0][0] != "c1" || a[1][0] != "c2" || a[0][1] != "c4" {
		t.Errorf("round-robin order wrong: %v", a)
	}
}

// TestRelayFlowAccounting asserts the cascade's core bandwidth property:
// each remote origin's media crosses the inter-region link exactly once,
// regardless of how many receivers the remote region fans it out to.
func TestRelayFlowAccounting(t *testing.T) {
	eng := sim.New(2)
	m := twoRegions(eng, 3, netem.LinkConfig{RateBps: 50e6, Delay: 30 * time.Millisecond})
	call := m.NewCall(vca.Meet(), vca.CallOptions{Seed: 2})

	// Tap the r0→r1 link: c1's media must appear exactly once per
	// sequence number even though three receivers display it remotely.
	seen := map[uint16]int{}
	var echoes int
	m.InterLink(0, 1).OnSend(func(p *netem.Packet) {
		mp, ok := p.Payload.(*vca.MediaPacket)
		if !ok || mp.Padding || mp.Origin != "c1" {
			return
		}
		seen[mp.Seq]++
	})
	// The reverse link must never carry c1's media back (no relay loops).
	m.InterLink(1, 0).OnSend(func(p *netem.Packet) {
		if mp, ok := p.Payload.(*vca.MediaPacket); ok && mp.Origin == "c1" {
			echoes++
		}
	})

	call.Start()
	eng.RunUntil(20 * time.Second)
	call.Stop()

	if len(seen) == 0 {
		t.Fatal("no c1 media crossed the inter-region link")
	}
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("c1 seq %d crossed the link %d times, want exactly 1", seq, n)
		}
	}
	if echoes != 0 {
		t.Errorf("%d c1 packets echoed back over the reverse link", echoes)
	}
	// The single crossing still reached every remote receiver.
	for _, cl := range call.Clients[1:] {
		if cl.Receiver("c1").DisplayedFrames() == 0 {
			t.Errorf("%s displayed no frames of c1 despite local fan-out", cl.Name)
		}
	}
}

// TestPerHopVsEndToEndCC checks the per-profile relay-leg control policy:
// Meet/Zoom terminate congestion control on the relay hop, Teams keeps the
// loop end-to-end (pass-through with original timestamps).
func TestPerHopVsEndToEndCC(t *testing.T) {
	build := func(prof *vca.Profile) (*sim.Engine, *Mesh, *vca.Call) {
		eng := sim.New(3)
		m := twoRegions(eng, 1, netem.LinkConfig{RateBps: 20e6, Delay: 30 * time.Millisecond})
		return eng, m, m.NewCall(prof, vca.CallOptions{Seed: 3})
	}

	_, m, call := build(vca.Meet())
	if call.Servers[0].Leg(m.SFUs[1].Name) == nil {
		t.Error("meet relay leg has no controller; want per-hop CC")
	}
	_, m, call = build(vca.Teams())
	if call.Servers[0].Leg(m.SFUs[1].Name) != nil {
		t.Error("teams relay leg has a controller; want end-to-end pass-through")
	}

	// Teams media delivered across the cascade must carry the end-to-end
	// marker so the receiver's delay signal spans origin→receiver.
	eng, m, call := build(vca.Teams())
	var e2e, total int
	m.Clients[1][0].Tap(func(p *netem.Packet) {
		if mp, ok := p.Payload.(*vca.MediaPacket); ok && !mp.Padding && mp.Origin == "c1" {
			total++
			if mp.E2E {
				e2e++
			}
		}
	})
	call.Start()
	eng.RunUntil(10 * time.Second)
	call.Stop()
	if total == 0 || e2e != total {
		t.Errorf("teams cascade delivered %d/%d packets with E2E marker, want all", e2e, total)
	}
}

// TestCascadeMediaFlows is the basic liveness check: in a 3-region call
// every client receives video from both local and remote origins.
func TestCascadeMediaFlows(t *testing.T) {
	eng := sim.New(4)
	m := Build(eng, Topology{
		Regions: []Region{
			{Name: "r0", Clients: []string{"c1", "c4"}},
			{Name: "r1", Clients: []string{"c2", "c5"}},
			{Name: "r2", Clients: []string{"c3", "c6"}},
		},
		Default: netem.LinkConfig{RateBps: 50e6, Delay: 25 * time.Millisecond},
	})
	call := m.NewCall(vca.Zoom(), vca.CallOptions{Seed: 4})
	call.Start()
	eng.RunUntil(20 * time.Second)
	call.Stop()
	c1 := call.C1()
	if got := c1.Receiver("c4").DisplayedFrames(); got == 0 {
		t.Error("c1 displayed no frames from local origin c4")
	}
	for _, origin := range []string{"c2", "c3"} {
		if got := c1.Receiver(origin).DisplayedFrames(); got == 0 {
			t.Errorf("c1 displayed no frames from remote origin %s", origin)
		}
	}
	if lats := c1.FrameLatencies(5 * time.Second); len(lats) == 0 {
		t.Error("no end-to-end frame latency samples recorded")
	}
	down := c1.DownMeter.MeanRateMbps(10*time.Second, 20*time.Second)
	if down < 0.5 {
		t.Errorf("c1 downstream in 6-party cascade = %.2f Mbps, want >= 0.5", down)
	}
}

// TestCascadeConstrainedInterLink: squeezing the inter-region link hurts
// remote streams while local ones stay healthy (the whole point of
// regional cascading).
func TestCascadeConstrainedInterLink(t *testing.T) {
	run := func(interBps float64) (remote, local int) {
		eng := sim.New(5)
		m := Build(eng, Topology{
			Regions: []Region{
				{Name: "r0", Clients: []string{"c1", "c3"}},
				{Name: "r1", Clients: []string{"c2"}},
			},
			Default: netem.LinkConfig{RateBps: interBps, Delay: 30 * time.Millisecond},
		})
		call := m.NewCall(vca.Meet(), vca.CallOptions{Seed: 5})
		call.Start()
		eng.RunUntil(25 * time.Second)
		call.Stop()
		c1 := call.C1()
		return c1.Receiver("c2").DisplayedFrames(), c1.Receiver("c3").DisplayedFrames()
	}
	remWide, locWide := run(50e6)
	remTight, locTight := run(0.2e6)
	if remTight >= remWide {
		t.Errorf("remote frames should drop under a tight inter link: %d (tight) vs %d (wide)", remTight, remWide)
	}
	if locTight < locWide/2 {
		t.Errorf("local fan-out should survive the tight inter link: %d (tight) vs %d (wide)", locTight, locWide)
	}
}

func TestCascadeDeterministic(t *testing.T) {
	run := func() float64 {
		eng := sim.New(6)
		m := twoRegions(eng, 2, netem.LinkConfig{RateBps: 5e6, Delay: 30 * time.Millisecond})
		call := m.NewCall(vca.Zoom(), vca.CallOptions{Seed: 6})
		call.Start()
		eng.RunUntil(15 * time.Second)
		call.Stop()
		return call.C1().DownMeter.TotalBytes()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical seeds diverged in cascade: %v vs %v", a, b)
	}
}

func TestSetInterRate(t *testing.T) {
	eng := sim.New(7)
	m := twoRegions(eng, 1, netem.LinkConfig{RateBps: 10e6, Delay: 10 * time.Millisecond})
	m.SetInterRate(1e6)
	for _, l := range m.InterLinks() {
		if l.Rate() != 1e6 {
			t.Errorf("link %s rate = %v after SetInterRate(1e6)", l.Name(), l.Rate())
		}
	}
	if n := len(m.InterLinks()); n != 2 {
		t.Errorf("2-region mesh has %d inter links, want 2", n)
	}
}
