package rtp

import "time"

// This file implements the sender- and receiver-side state machines of
// packet-level loss recovery: a seq-indexed retransmission ring buffer
// (the sender keeps recent packets so it can answer NACKs) and a NACK
// queue that doubles as the receiver's loss tracker (gap detection from
// sequence numbers, bounded retries with per-seq backoff, give-up
// semantics). Both are fixed-capacity, allocation-free after
// construction, and know nothing about the simulator: callers supply
// time and payloads.

// RTXBuffer is a fixed-capacity retransmission buffer indexed by RTP
// sequence number. Put stores a payload clone under its seq and returns
// whatever older clone the slot evicts, so the caller can release it to
// its pool; Get answers a NACK if the seq is still buffered. A slot is
// reused every capacity packets, so the buffer holds the most recent
// `capacity` consecutive seqs of one stream.
type RTXBuffer struct {
	slots []rtxSlot
}

type rtxSlot struct {
	seq     uint16
	valid   bool
	payload any
	size    int
	atUs    int64
}

// NewRTXBuffer returns a buffer holding up to capacity packets.
func NewRTXBuffer(capacity int) *RTXBuffer {
	if capacity <= 0 {
		capacity = 1
	}
	return &RTXBuffer{slots: make([]rtxSlot, capacity)}
}

// Put stores payload under seq, recording its wire size and send time,
// and returns the evicted payload (nil if the slot was free). Storing
// the same seq twice evicts the older clone.
func (b *RTXBuffer) Put(seq uint16, payload any, size int, atUs int64) (evicted any) {
	s := &b.slots[int(seq)%len(b.slots)]
	if s.valid {
		evicted = s.payload
	}
	*s = rtxSlot{seq: seq, valid: true, payload: payload, size: size, atUs: atUs}
	return evicted
}

// Get returns the buffered payload for seq, if it has not been evicted.
func (b *RTXBuffer) Get(seq uint16) (payload any, size int, atUs int64, ok bool) {
	s := &b.slots[int(seq)%len(b.slots)]
	if !s.valid || s.seq != seq {
		return nil, 0, 0, false
	}
	return s.payload, s.size, s.atUs, true
}

// Len reports the number of buffered packets.
func (b *RTXBuffer) Len() int {
	n := 0
	for i := range b.slots {
		if b.slots[i].valid {
			n++
		}
	}
	return n
}

// Drain releases every buffered payload through release and empties the
// buffer. Call at teardown so pooled clones return to their pool.
func (b *RTXBuffer) Drain(release func(payload any)) {
	for i := range b.slots {
		if b.slots[i].valid {
			release(b.slots[i].payload)
			b.slots[i] = rtxSlot{}
		}
	}
}

// NackQueue is the receiver's loss tracker and retransmission-request
// scheduler for one sequence space. Observe detects gaps from arriving
// sequence numbers and enqueues the missing seqs; Tick emits NACKs for
// entries whose backoff has expired (no re-NACK before the RTT-derived
// timeout the caller passes) and concedes entries whose playout deadline
// passed or whose retries are exhausted.
type NackQueue struct {
	maxRetries int
	started    bool
	highest    uint16
	entries    []nackEntry
	scratch    []nackEntry
}

type nackEntry struct {
	seq      uint16
	retries  int
	nextAt   time.Duration // earliest next NACK
	deadline time.Duration // concede (stop waiting) at this time
}

// NewNackQueue returns a queue that gives up on a seq after maxRetries
// NACKs go unanswered.
func NewNackQueue(maxRetries int) *NackQueue {
	if maxRetries < 1 {
		maxRetries = 1
	}
	return &NackQueue{maxRetries: maxRetries}
}

// Observe feeds an arriving sequence number to the loss tracker.
// Arrivals beyond the highest seen seq enqueue every skipped seq as
// missing, each NACK-eligible immediately and conceded at deadline;
// arrivals at or below the highest seq clear a pending entry if one
// exists. It returns the number of newly missing seqs and whether this
// arrival cleared a pending entry (i.e. recovered a tracked loss).
func (q *NackQueue) Observe(seq uint16, now, deadline time.Duration) (missing int, recovered bool) {
	if !q.started {
		q.started = true
		q.highest = seq
		return 0, false
	}
	d := SeqDiff(q.highest, seq)
	if d <= 0 {
		return 0, q.Remove(seq)
	}
	for s := q.highest + 1; s != seq; s++ {
		q.entries = append(q.entries, nackEntry{seq: s, nextAt: now, deadline: deadline})
		missing++
	}
	q.highest = seq
	return missing, false
}

// Remove clears the entry for seq (the packet arrived, e.g. via RTX) and
// reports whether one was pending.
func (q *NackQueue) Remove(seq uint16) bool {
	for i := range q.entries {
		if q.entries[i].seq == seq {
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			return true
		}
	}
	return false
}

// Tick advances the retry state machine. For every pending entry, in
// insertion (ascending seq) order:
//   - past its deadline, or out of retries with its backoff expired, the
//     entry is removed and conceded via concede(seq, gaveUp);
//   - otherwise, if its backoff expired, nack(seq) fires, the retry
//     counter increments and the entry may not be re-NACKed before
//     now+backoff (duplicate suppression within the backoff window).
func (q *NackQueue) Tick(now, backoff time.Duration, nack func(seq uint16), concede func(seq uint16, gaveUp bool)) {
	if len(q.entries) == 0 {
		return
	}
	keep := q.scratch[:0]
	for _, e := range q.entries {
		switch {
		case now >= e.deadline:
			concede(e.seq, false)
			continue
		case now >= e.nextAt && e.retries >= q.maxRetries:
			concede(e.seq, true)
			continue
		case now >= e.nextAt:
			nack(e.seq)
			e.retries++
			e.nextAt = now + backoff
		}
		keep = append(keep, e)
	}
	q.scratch = q.entries[:0]
	q.entries = keep
}

// Len reports the number of pending (missing, not yet conceded) seqs.
func (q *NackQueue) Len() int { return len(q.entries) }

// Highest returns the highest sequence number observed so far.
func (q *NackQueue) Highest() (uint16, bool) { return q.highest, q.started }

// BuildNackPairs packs an ascending seq list into RFC 4585 (PID, BLP)
// pairs: each pair names one lost packet plus a bitmask of losses in the
// following 16 seqs.
func BuildNackPairs(seqs []uint16) []NackPair {
	var pairs []NackPair
	for i := 0; i < len(seqs); {
		p := NackPair{PacketID: seqs[i]}
		j := i + 1
		for ; j < len(seqs); j++ {
			d := SeqDiff(p.PacketID, seqs[j])
			if d < 1 || d > 16 {
				break
			}
			p.Bitmask |= 1 << (d - 1)
		}
		pairs = append(pairs, p)
		i = j
	}
	return pairs
}

// Reset clears all pending entries and re-bases the tracker at seq, for
// catastrophic gaps (e.g. after a partition) where chasing every missing
// seq is pointless. It returns the number of entries dropped.
func (q *NackQueue) Reset(seq uint16) int {
	n := len(q.entries)
	q.entries = q.entries[:0]
	q.highest = seq
	q.started = true
	return n
}
