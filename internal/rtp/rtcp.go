package rtp

import (
	"encoding/binary"
	"fmt"
	"math"
)

// RTCP packet types (RFC 3550 §12.1, RFC 4585, RFC 5104).
const (
	TypeSenderReport   = 200
	TypeReceiverReport = 201
	TypeSDES           = 202
	TypeBye            = 203
	TypeRTPFB          = 205 // transport-layer feedback (NACK)
	TypePSFB           = 206 // payload-specific feedback (PLI, FIR, REMB)
)

// Feedback message types within RTPFB / PSFB.
const (
	FMTNack = 1  // RTPFB
	FMTPLI  = 1  // PSFB
	FMTFIR  = 4  // PSFB
	FMTALFB = 15 // PSFB application layer feedback: carries REMB
)

// RTCPPacket is implemented by all RTCP message types in this package.
type RTCPPacket interface {
	// MarshalRTCP serializes the message including its common header.
	MarshalRTCP() ([]byte, error)
}

// ReportBlock is the per-source reception report block of SR/RR packets.
type ReportBlock struct {
	SSRC            uint32
	FractionLost    uint8  // fixed point /256
	CumulativeLost  uint32 // 24-bit on the wire
	HighestSeq      uint32
	Jitter          uint32
	LastSR          uint32
	DelaySinceLasSR uint32
}

const reportBlockSize = 24

func (b *ReportBlock) marshalTo(buf []byte) {
	binary.BigEndian.PutUint32(buf[0:], b.SSRC)
	buf[4] = b.FractionLost
	buf[5] = byte(b.CumulativeLost >> 16)
	buf[6] = byte(b.CumulativeLost >> 8)
	buf[7] = byte(b.CumulativeLost)
	binary.BigEndian.PutUint32(buf[8:], b.HighestSeq)
	binary.BigEndian.PutUint32(buf[12:], b.Jitter)
	binary.BigEndian.PutUint32(buf[16:], b.LastSR)
	binary.BigEndian.PutUint32(buf[20:], b.DelaySinceLasSR)
}

func (b *ReportBlock) unmarshalFrom(buf []byte) error {
	if len(buf) < reportBlockSize {
		return ErrShortPacket
	}
	b.SSRC = binary.BigEndian.Uint32(buf[0:])
	b.FractionLost = buf[4]
	b.CumulativeLost = uint32(buf[5])<<16 | uint32(buf[6])<<8 | uint32(buf[7])
	b.HighestSeq = binary.BigEndian.Uint32(buf[8:])
	b.Jitter = binary.BigEndian.Uint32(buf[12:])
	b.LastSR = binary.BigEndian.Uint32(buf[16:])
	b.DelaySinceLasSR = binary.BigEndian.Uint32(buf[20:])
	return nil
}

func rtcpHeader(count uint8, pt uint8, lengthBytes int) []byte {
	buf := make([]byte, lengthBytes)
	buf[0] = Version<<6 | count&0x1f
	buf[1] = pt
	binary.BigEndian.PutUint16(buf[2:], uint16(lengthBytes/4-1))
	return buf
}

// SenderReport is an RTCP SR.
type SenderReport struct {
	SSRC        uint32
	NTPTime     uint64
	RTPTime     uint32
	PacketCount uint32
	OctetCount  uint32
	Reports     []ReportBlock
}

// MarshalRTCP implements RTCPPacket.
func (sr *SenderReport) MarshalRTCP() ([]byte, error) {
	if len(sr.Reports) > 31 {
		return nil, fmt.Errorf("rtp: %d report blocks exceeds 31", len(sr.Reports))
	}
	buf := rtcpHeader(uint8(len(sr.Reports)), TypeSenderReport, 28+reportBlockSize*len(sr.Reports))
	binary.BigEndian.PutUint32(buf[4:], sr.SSRC)
	binary.BigEndian.PutUint64(buf[8:], sr.NTPTime)
	binary.BigEndian.PutUint32(buf[16:], sr.RTPTime)
	binary.BigEndian.PutUint32(buf[20:], sr.PacketCount)
	binary.BigEndian.PutUint32(buf[24:], sr.OctetCount)
	for i := range sr.Reports {
		sr.Reports[i].marshalTo(buf[28+i*reportBlockSize:])
	}
	return buf, nil
}

func (sr *SenderReport) unmarshalBody(buf []byte, count int) error {
	if len(buf) < 24+reportBlockSize*count {
		return ErrShortPacket
	}
	sr.SSRC = binary.BigEndian.Uint32(buf[0:])
	sr.NTPTime = binary.BigEndian.Uint64(buf[4:])
	sr.RTPTime = binary.BigEndian.Uint32(buf[12:])
	sr.PacketCount = binary.BigEndian.Uint32(buf[16:])
	sr.OctetCount = binary.BigEndian.Uint32(buf[20:])
	sr.Reports = make([]ReportBlock, count)
	for i := 0; i < count; i++ {
		if err := sr.Reports[i].unmarshalFrom(buf[24+i*reportBlockSize:]); err != nil {
			return err
		}
	}
	return nil
}

// ReceiverReport is an RTCP RR.
type ReceiverReport struct {
	SSRC    uint32
	Reports []ReportBlock
}

// MarshalRTCP implements RTCPPacket.
func (rr *ReceiverReport) MarshalRTCP() ([]byte, error) {
	if len(rr.Reports) > 31 {
		return nil, fmt.Errorf("rtp: %d report blocks exceeds 31", len(rr.Reports))
	}
	buf := rtcpHeader(uint8(len(rr.Reports)), TypeReceiverReport, 8+reportBlockSize*len(rr.Reports))
	binary.BigEndian.PutUint32(buf[4:], rr.SSRC)
	for i := range rr.Reports {
		rr.Reports[i].marshalTo(buf[8+i*reportBlockSize:])
	}
	return buf, nil
}

func (rr *ReceiverReport) unmarshalBody(buf []byte, count int) error {
	if len(buf) < 4+reportBlockSize*count {
		return ErrShortPacket
	}
	rr.SSRC = binary.BigEndian.Uint32(buf[0:])
	rr.Reports = make([]ReportBlock, count)
	for i := 0; i < count; i++ {
		if err := rr.Reports[i].unmarshalFrom(buf[4+i*reportBlockSize:]); err != nil {
			return err
		}
	}
	return nil
}

// PictureLossIndication (PSFB FMT=1, RFC 4585 §6.3.1).
type PictureLossIndication struct {
	SenderSSRC uint32
	MediaSSRC  uint32
}

// MarshalRTCP implements RTCPPacket.
func (p *PictureLossIndication) MarshalRTCP() ([]byte, error) {
	buf := rtcpHeader(FMTPLI, TypePSFB, 12)
	binary.BigEndian.PutUint32(buf[4:], p.SenderSSRC)
	binary.BigEndian.PutUint32(buf[8:], p.MediaSSRC)
	return buf, nil
}

// FullIntraRequest (PSFB FMT=4, RFC 5104 §4.3.1). The paper uses the FIR
// count from WebRTC stats as its uplink freeze proxy (Fig 3b).
type FullIntraRequest struct {
	SenderSSRC uint32
	MediaSSRC  uint32
	SSRC       uint32 // FCI target
	SeqNo      uint8
}

// MarshalRTCP implements RTCPPacket.
func (f *FullIntraRequest) MarshalRTCP() ([]byte, error) {
	buf := rtcpHeader(FMTFIR, TypePSFB, 20)
	binary.BigEndian.PutUint32(buf[4:], f.SenderSSRC)
	binary.BigEndian.PutUint32(buf[8:], f.MediaSSRC)
	binary.BigEndian.PutUint32(buf[12:], f.SSRC)
	buf[16] = f.SeqNo
	return buf, nil
}

// ReceiverEstimatedMaxBitrate carries a REMB bandwidth estimate
// (draft-alvestrand-rmcat-remb). Google Meet's GCC receiver side reports
// its estimate this way.
type ReceiverEstimatedMaxBitrate struct {
	SenderSSRC uint32
	Bitrate    float64 // bits per second
	SSRCs      []uint32
}

// MarshalRTCP implements RTCPPacket.
func (r *ReceiverEstimatedMaxBitrate) MarshalRTCP() ([]byte, error) {
	if len(r.SSRCs) > 255 {
		return nil, fmt.Errorf("rtp: %d REMB SSRCs exceeds 255", len(r.SSRCs))
	}
	buf := rtcpHeader(FMTALFB, TypePSFB, 20+4*len(r.SSRCs))
	binary.BigEndian.PutUint32(buf[4:], r.SenderSSRC)
	// media SSRC must be zero for REMB
	copy(buf[12:16], "REMB")
	buf[16] = uint8(len(r.SSRCs))
	// 6-bit exponent, 18-bit mantissa.
	mantissa := r.Bitrate
	exp := 0
	for mantissa >= 1<<18 {
		mantissa /= 2
		exp++
	}
	if exp > 63 {
		return nil, fmt.Errorf("rtp: REMB bitrate %g unrepresentable", r.Bitrate)
	}
	m := uint32(math.Round(mantissa))
	if m >= 1<<18 { // rounding pushed it over
		m >>= 1
		exp++
	}
	buf[17] = byte(exp<<2) | byte(m>>16)
	buf[18] = byte(m >> 8)
	buf[19] = byte(m)
	for i, s := range r.SSRCs {
		binary.BigEndian.PutUint32(buf[20+4*i:], s)
	}
	return buf, nil
}

func (r *ReceiverEstimatedMaxBitrate) unmarshalBody(buf []byte) error {
	// buf starts at sender SSRC.
	if len(buf) < 16 {
		return ErrShortPacket
	}
	if string(buf[8:12]) != "REMB" {
		return fmt.Errorf("rtp: PSFB ALFB is not REMB")
	}
	r.SenderSSRC = binary.BigEndian.Uint32(buf[0:])
	n := int(buf[12])
	exp := int(buf[13] >> 2)
	m := uint32(buf[13]&0x3)<<16 | uint32(buf[14])<<8 | uint32(buf[15])
	r.Bitrate = float64(m) * math.Pow(2, float64(exp))
	if len(buf) < 16+4*n {
		return ErrShortPacket
	}
	r.SSRCs = make([]uint32, n)
	for i := range r.SSRCs {
		r.SSRCs[i] = binary.BigEndian.Uint32(buf[16+4*i:])
	}
	return nil
}

// Nack is a generic NACK (RTPFB FMT=1): one (PID, BLP) pair per entry.
type Nack struct {
	SenderSSRC uint32
	MediaSSRC  uint32
	Pairs      []NackPair
}

// NackPair names a lost packet and a bitmask of 16 following losses.
type NackPair struct {
	PacketID uint16
	Bitmask  uint16
}

// LostSeqs expands the pair into the explicit sequence-number list.
func (p NackPair) LostSeqs() []uint16 {
	seqs := []uint16{p.PacketID}
	for i := 0; i < 16; i++ {
		if p.Bitmask&(1<<i) != 0 {
			seqs = append(seqs, p.PacketID+uint16(i)+1)
		}
	}
	return seqs
}

// MarshalRTCP implements RTCPPacket.
func (n *Nack) MarshalRTCP() ([]byte, error) {
	buf := rtcpHeader(FMTNack, TypeRTPFB, 12+4*len(n.Pairs))
	binary.BigEndian.PutUint32(buf[4:], n.SenderSSRC)
	binary.BigEndian.PutUint32(buf[8:], n.MediaSSRC)
	for i, p := range n.Pairs {
		binary.BigEndian.PutUint16(buf[12+4*i:], p.PacketID)
		binary.BigEndian.PutUint16(buf[14+4*i:], p.Bitmask)
	}
	return buf, nil
}

// UnmarshalRTCP parses one RTCP message from buf and returns it along with
// the number of bytes consumed. Compound RTCP packets are parsed by calling
// this in a loop (see UnmarshalCompound).
func UnmarshalRTCP(buf []byte) (RTCPPacket, int, error) {
	if len(buf) < 4 {
		return nil, 0, ErrShortPacket
	}
	if buf[0]>>6 != Version {
		return nil, 0, ErrBadVersion
	}
	count := int(buf[0] & 0x1f)
	pt := buf[1]
	length := (int(binary.BigEndian.Uint16(buf[2:])) + 1) * 4
	if len(buf) < length {
		return nil, 0, ErrShortPacket
	}
	body := buf[4:length]
	switch pt {
	case TypeSenderReport:
		sr := &SenderReport{}
		if err := sr.unmarshalBody(body, count); err != nil {
			return nil, 0, err
		}
		return sr, length, nil
	case TypeReceiverReport:
		rr := &ReceiverReport{}
		if err := rr.unmarshalBody(body, count); err != nil {
			return nil, 0, err
		}
		return rr, length, nil
	case TypePSFB:
		switch count {
		case FMTPLI:
			if len(body) < 8 {
				return nil, 0, ErrShortPacket
			}
			return &PictureLossIndication{
				SenderSSRC: binary.BigEndian.Uint32(body[0:]),
				MediaSSRC:  binary.BigEndian.Uint32(body[4:]),
			}, length, nil
		case FMTFIR:
			if len(body) < 16 {
				return nil, 0, ErrShortPacket
			}
			return &FullIntraRequest{
				SenderSSRC: binary.BigEndian.Uint32(body[0:]),
				MediaSSRC:  binary.BigEndian.Uint32(body[4:]),
				SSRC:       binary.BigEndian.Uint32(body[8:]),
				SeqNo:      body[12],
			}, length, nil
		case FMTALFB:
			r := &ReceiverEstimatedMaxBitrate{}
			if err := r.unmarshalBody(body); err != nil {
				return nil, 0, err
			}
			return r, length, nil
		}
		return nil, 0, fmt.Errorf("rtp: unsupported PSFB FMT %d", count)
	case TypeRTPFB:
		if count == FMTTWCC {
			t := &TransportCC{}
			if err := t.unmarshalBody(body); err != nil {
				return nil, 0, err
			}
			return t, length, nil
		}
		if count != FMTNack {
			return nil, 0, fmt.Errorf("rtp: unsupported RTPFB FMT %d", count)
		}
		if len(body) < 8 || (len(body)-8)%4 != 0 {
			return nil, 0, ErrShortPacket
		}
		n := &Nack{
			SenderSSRC: binary.BigEndian.Uint32(body[0:]),
			MediaSSRC:  binary.BigEndian.Uint32(body[4:]),
		}
		for off := 8; off < len(body); off += 4 {
			n.Pairs = append(n.Pairs, NackPair{
				PacketID: binary.BigEndian.Uint16(body[off:]),
				Bitmask:  binary.BigEndian.Uint16(body[off+2:]),
			})
		}
		return n, length, nil
	}
	return nil, 0, fmt.Errorf("rtp: unsupported RTCP packet type %d", pt)
}

// MarshalCompound concatenates several RTCP messages into one compound
// packet, as RFC 3550 requires for on-the-wire RTCP.
func MarshalCompound(pkts ...RTCPPacket) ([]byte, error) {
	var out []byte
	for _, p := range pkts {
		b, err := p.MarshalRTCP()
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out, nil
}

// UnmarshalCompound parses every message in a compound RTCP packet.
func UnmarshalCompound(buf []byte) ([]RTCPPacket, error) {
	var out []RTCPPacket
	for len(buf) > 0 {
		p, n, err := UnmarshalRTCP(buf)
		if err != nil {
			return out, err
		}
		out = append(out, p)
		buf = buf[n:]
	}
	return out, nil
}
