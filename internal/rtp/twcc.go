package rtp

import (
	"encoding/binary"
	"fmt"
)

// Transport-wide congestion control (TWCC,
// draft-holmer-rmcat-transport-wide-cc-extensions): the sender stamps
// every outgoing packet — media, FEC, padding and retransmissions alike
// — with a transport-wide sequence number; the receiver periodically
// reports per-packet arrival times keyed by that seq; the sender joins
// arrivals against its own send-time history to recover one-way delay,
// loss and receive rate per transport. This file carries the feedback
// message plus the two ring-buffer state machines at either end. The
// wire format is a simplified fixed-width rendering of the real TWCC
// chunk encoding: a base seq, a reference time and one 32-bit arrival
// delta per packet, -1 marking a loss.

// FMTTWCC is the RTPFB feedback message type for transport-wide CC.
const FMTTWCC = 15

// DeltaLost marks a never-received packet in TransportCC.DeltaUs.
const DeltaLost = int32(-1)

// TransportCC reports per-packet arrival times for the transport-wide
// seqs [BaseSeq, BaseSeq+len(DeltaUs)). DeltaUs[i] is the arrival time
// of BaseSeq+i in microseconds after RefTimeUs, or DeltaLost.
type TransportCC struct {
	SenderSSRC uint32
	MediaSSRC  uint32
	BaseSeq    uint16
	RefTimeUs  int64
	DeltaUs    []int32
}

// MarshalRTCP implements RTCPPacket.
func (t *TransportCC) MarshalRTCP() ([]byte, error) {
	if len(t.DeltaUs) > 0xffff {
		return nil, fmt.Errorf("rtp: %d TWCC deltas exceeds 65535", len(t.DeltaUs))
	}
	buf := rtcpHeader(FMTTWCC, TypeRTPFB, 24+4*len(t.DeltaUs))
	binary.BigEndian.PutUint32(buf[4:], t.SenderSSRC)
	binary.BigEndian.PutUint32(buf[8:], t.MediaSSRC)
	binary.BigEndian.PutUint16(buf[12:], t.BaseSeq)
	binary.BigEndian.PutUint16(buf[14:], uint16(len(t.DeltaUs)))
	binary.BigEndian.PutUint64(buf[16:], uint64(t.RefTimeUs))
	for i, d := range t.DeltaUs {
		binary.BigEndian.PutUint32(buf[24+4*i:], uint32(d))
	}
	return buf, nil
}

func (t *TransportCC) unmarshalBody(buf []byte) error {
	if len(buf) < 20 {
		return ErrShortPacket
	}
	t.SenderSSRC = binary.BigEndian.Uint32(buf[0:])
	t.MediaSSRC = binary.BigEndian.Uint32(buf[4:])
	t.BaseSeq = binary.BigEndian.Uint16(buf[8:])
	n := int(binary.BigEndian.Uint16(buf[10:]))
	t.RefTimeUs = int64(binary.BigEndian.Uint64(buf[12:]))
	if len(buf) < 20+4*n {
		return ErrShortPacket
	}
	t.DeltaUs = make([]int32, n)
	for i := range t.DeltaUs {
		t.DeltaUs[i] = int32(binary.BigEndian.Uint32(buf[20+4*i:]))
	}
	return nil
}

// TWCCRecorder is the receiver half: it records arrival times by
// transport-wide seq and periodically flushes them into TransportCC
// reports. Fixed capacity; a gap wider than the ring re-bases the
// recorder (the skipped range is reported lost).
type TWCCRecorder struct {
	started bool
	next    uint16 // first seq not yet reported
	highest uint16
	slots   []twccSlot
}

type twccSlot struct {
	seq   uint16
	valid bool
	atUs  int64
}

// NewTWCCRecorder returns a recorder buffering up to capacity arrivals
// between reports.
func NewTWCCRecorder(capacity int) *TWCCRecorder {
	if capacity <= 0 {
		capacity = 1
	}
	return &TWCCRecorder{slots: make([]twccSlot, capacity)}
}

// Record notes that seq arrived at atUs microseconds. Seqs at or before
// the last report are dropped (they were already reported lost).
func (r *TWCCRecorder) Record(seq uint16, atUs int64) {
	if !r.started {
		r.started = true
		r.next = seq
		r.highest = seq
		r.slots[int(seq)%len(r.slots)] = twccSlot{seq: seq, valid: true, atUs: atUs}
		return
	}
	if SeqDiff(r.next, seq) < 0 {
		return // before the report window: already flushed
	}
	if d := SeqDiff(r.highest, seq); d > 0 {
		if SeqDiff(r.next, seq) >= len(r.slots) {
			// Catastrophic gap: everything unreported is lost; re-base
			// so the window [next, highest] stays within capacity.
			for i := range r.slots {
				r.slots[i] = twccSlot{}
			}
			r.next = seq
		}
		r.highest = seq
	}
	r.slots[int(seq)%len(r.slots)] = twccSlot{seq: seq, valid: true, atUs: atUs}
}

// BuildReport flushes all arrivals since the previous report into a
// TransportCC covering [next, highest]. It returns false when nothing
// new arrived. The report's RefTimeUs is the earliest arrival included.
func (r *TWCCRecorder) BuildReport() (TransportCC, bool) {
	if !r.started {
		return TransportCC{}, false
	}
	span := SeqDiff(r.next, r.highest) + 1
	if span <= 0 {
		return TransportCC{}, false
	}
	ref := int64(-1)
	for i := 0; i < span; i++ {
		seq := r.next + uint16(i)
		s := &r.slots[int(seq)%len(r.slots)]
		if s.valid && s.seq == seq && (ref < 0 || s.atUs < ref) {
			ref = s.atUs
		}
	}
	if ref < 0 {
		return TransportCC{}, false // window is all losses; wait for an arrival
	}
	rep := TransportCC{BaseSeq: r.next, RefTimeUs: ref, DeltaUs: make([]int32, span)}
	for i := 0; i < span; i++ {
		seq := r.next + uint16(i)
		s := &r.slots[int(seq)%len(r.slots)]
		if s.valid && s.seq == seq {
			rep.DeltaUs[i] = int32(s.atUs - ref)
			*s = twccSlot{}
		} else {
			rep.DeltaUs[i] = DeltaLost
		}
	}
	r.next = r.highest + 1
	return rep, true
}

// SentHistory is the sender half: a ring of send times and wire sizes by
// transport-wide seq, joined against incoming TransportCC reports.
type SentHistory struct {
	slots []sentSlot
}

type sentSlot struct {
	seq   uint16
	valid bool
	atUs  int64
	size  int
}

// NewSentHistory returns a history holding the last capacity sends.
func NewSentHistory(capacity int) *SentHistory {
	if capacity <= 0 {
		capacity = 1
	}
	return &SentHistory{slots: make([]sentSlot, capacity)}
}

// Record notes that seq was sent at atUs with the given wire size.
func (h *SentHistory) Record(seq uint16, atUs int64, size int) {
	h.slots[int(seq)%len(h.slots)] = sentSlot{seq: seq, valid: true, atUs: atUs, size: size}
}

// Lookup returns the send time and size for seq if still in the ring.
func (h *SentHistory) Lookup(seq uint16) (atUs int64, size int, ok bool) {
	s := &h.slots[int(seq)%len(h.slots)]
	if !s.valid || s.seq != seq {
		return 0, 0, false
	}
	return s.atUs, s.size, true
}
