// Package rtp implements the RTP wire format of RFC 3550 plus the RTCP
// feedback messages the paper's VCAs rely on (sender/receiver reports,
// PLI, FIR, REMB, generic NACK).
//
// The emulator moves typed packets for speed, but every media packet it
// moves carries a real, marshalable RTP header, so traces written by
// internal/pcap decode in standard tools. This package has no dependency on
// the simulator and is usable standalone.
package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the only RTP version this package accepts (RFC 3550).
const Version = 2

// HeaderSize is the size of a fixed RTP header with no CSRCs or extension.
const HeaderSize = 12

// Errors returned by unmarshalling.
var (
	ErrShortPacket = errors.New("rtp: packet too short")
	ErrBadVersion  = errors.New("rtp: unsupported version")
)

// Header is the fixed RTP header plus CSRC list and one optional
// profile-defined extension.
type Header struct {
	Padding        bool
	Marker         bool
	PayloadType    uint8
	SequenceNumber uint16
	Timestamp      uint32
	SSRC           uint32
	CSRC           []uint32

	// Extension, when true, appends a single RFC 3550 §5.3.1 header
	// extension with the given profile and payload (payload length must
	// be a multiple of 4).
	Extension        bool
	ExtensionProfile uint16
	ExtensionData    []byte
}

// MarshalSize returns the number of bytes Marshal will produce.
func (h *Header) MarshalSize() int {
	n := HeaderSize + 4*len(h.CSRC)
	if h.Extension {
		n += 4 + len(h.ExtensionData)
	}
	return n
}

// Marshal serializes the header.
func (h *Header) Marshal() ([]byte, error) {
	if len(h.CSRC) > 15 {
		return nil, fmt.Errorf("rtp: %d CSRCs exceeds maximum 15", len(h.CSRC))
	}
	if h.Extension && len(h.ExtensionData)%4 != 0 {
		return nil, fmt.Errorf("rtp: extension length %d not a multiple of 4", len(h.ExtensionData))
	}
	buf := make([]byte, h.MarshalSize())
	buf[0] = Version << 6
	if h.Padding {
		buf[0] |= 1 << 5
	}
	if h.Extension {
		buf[0] |= 1 << 4
	}
	buf[0] |= uint8(len(h.CSRC))
	buf[1] = h.PayloadType & 0x7f
	if h.Marker {
		buf[1] |= 1 << 7
	}
	binary.BigEndian.PutUint16(buf[2:], h.SequenceNumber)
	binary.BigEndian.PutUint32(buf[4:], h.Timestamp)
	binary.BigEndian.PutUint32(buf[8:], h.SSRC)
	off := HeaderSize
	for _, c := range h.CSRC {
		binary.BigEndian.PutUint32(buf[off:], c)
		off += 4
	}
	if h.Extension {
		binary.BigEndian.PutUint16(buf[off:], h.ExtensionProfile)
		binary.BigEndian.PutUint16(buf[off+2:], uint16(len(h.ExtensionData)/4))
		copy(buf[off+4:], h.ExtensionData)
	}
	return buf, nil
}

// Unmarshal parses an RTP header from buf and returns the number of header
// bytes consumed.
func (h *Header) Unmarshal(buf []byte) (int, error) {
	if len(buf) < HeaderSize {
		return 0, ErrShortPacket
	}
	if buf[0]>>6 != Version {
		return 0, ErrBadVersion
	}
	h.Padding = buf[0]&(1<<5) != 0
	h.Extension = buf[0]&(1<<4) != 0
	cc := int(buf[0] & 0x0f)
	h.Marker = buf[1]&(1<<7) != 0
	h.PayloadType = buf[1] & 0x7f
	h.SequenceNumber = binary.BigEndian.Uint16(buf[2:])
	h.Timestamp = binary.BigEndian.Uint32(buf[4:])
	h.SSRC = binary.BigEndian.Uint32(buf[8:])
	off := HeaderSize
	if len(buf) < off+4*cc {
		return 0, ErrShortPacket
	}
	h.CSRC = nil
	for i := 0; i < cc; i++ {
		h.CSRC = append(h.CSRC, binary.BigEndian.Uint32(buf[off:]))
		off += 4
	}
	if h.Extension {
		if len(buf) < off+4 {
			return 0, ErrShortPacket
		}
		h.ExtensionProfile = binary.BigEndian.Uint16(buf[off:])
		words := int(binary.BigEndian.Uint16(buf[off+2:]))
		off += 4
		if len(buf) < off+4*words {
			return 0, ErrShortPacket
		}
		h.ExtensionData = append([]byte(nil), buf[off:off+4*words]...)
		off += 4 * words
	} else {
		h.ExtensionProfile = 0
		h.ExtensionData = nil
	}
	return off, nil
}

// Packet is an RTP header plus payload.
type Packet struct {
	Header
	Payload []byte
}

// Marshal serializes the packet.
func (p *Packet) Marshal() ([]byte, error) {
	hdr, err := p.Header.Marshal()
	if err != nil {
		return nil, err
	}
	return append(hdr, p.Payload...), nil
}

// Unmarshal parses an RTP packet.
func (p *Packet) Unmarshal(buf []byte) error {
	n, err := p.Header.Unmarshal(buf)
	if err != nil {
		return err
	}
	p.Payload = append([]byte(nil), buf[n:]...)
	return nil
}

// MarshalSize returns the serialized size of the packet.
func (p *Packet) MarshalSize() int { return p.Header.MarshalSize() + len(p.Payload) }

// SeqLess reports whether sequence number a is before b in RFC 3550
// wraparound arithmetic.
func SeqLess(a, b uint16) bool {
	return a != b && b-a < 1<<15
}

// SeqDiff returns the forward distance from a to b, accounting for
// wraparound (b - a as a signed quantity).
func SeqDiff(a, b uint16) int {
	d := int(int16(b - a))
	return d
}
