package rtp

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Marker:         true,
		PayloadType:    96,
		SequenceNumber: 0xBEEF,
		Timestamp:      0xDEADBEEF,
		SSRC:           0x12345678,
		CSRC:           []uint32{1, 2, 3},
	}
	buf, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != h.MarshalSize() {
		t.Errorf("len = %d, MarshalSize = %d", len(buf), h.MarshalSize())
	}
	var got Header
	n, err := got.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if got.Marker != h.Marker || got.PayloadType != h.PayloadType ||
		got.SequenceNumber != h.SequenceNumber || got.Timestamp != h.Timestamp ||
		got.SSRC != h.SSRC || len(got.CSRC) != 3 || got.CSRC[2] != 3 {
		t.Errorf("round trip mismatch: %+v vs %+v", got, h)
	}
}

func TestHeaderExtension(t *testing.T) {
	h := Header{
		PayloadType:      96,
		Extension:        true,
		ExtensionProfile: 0xBEDE,
		ExtensionData:    []byte{1, 2, 3, 4, 5, 6, 7, 8},
	}
	buf, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var got Header
	if _, err := got.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if got.ExtensionProfile != 0xBEDE || !bytes.Equal(got.ExtensionData, h.ExtensionData) {
		t.Errorf("extension mismatch: %+v", got)
	}
}

func TestHeaderExtensionBadLength(t *testing.T) {
	h := Header{Extension: true, ExtensionData: []byte{1, 2, 3}}
	if _, err := h.Marshal(); err == nil {
		t.Fatal("marshal with 3-byte extension succeeded, want error")
	}
}

func TestHeaderTooManyCSRCs(t *testing.T) {
	h := Header{CSRC: make([]uint32, 16)}
	if _, err := h.Marshal(); err == nil {
		t.Fatal("marshal with 16 CSRCs succeeded, want error")
	}
}

func TestUnmarshalShortAndBadVersion(t *testing.T) {
	var h Header
	if _, err := h.Unmarshal([]byte{0x80, 0, 0}); err != ErrShortPacket {
		t.Errorf("short: err = %v, want ErrShortPacket", err)
	}
	buf := make([]byte, 12)
	buf[0] = 1 << 6 // version 1
	if _, err := h.Unmarshal(buf); err != ErrBadVersion {
		t.Errorf("bad version: err = %v, want ErrBadVersion", err)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{
		Header:  Header{PayloadType: 111, SequenceNumber: 7, SSRC: 42},
		Payload: []byte("opus frame bytes"),
	}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var got Packet
	if err := got.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload = %q, want %q", got.Payload, p.Payload)
	}
}

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		a, b uint16
		less bool
		diff int
	}{
		{1, 2, true, 1},
		{2, 1, false, -1},
		{65535, 0, true, 1},
		{0, 65535, false, -1},
		{65530, 5, true, 11},
		{100, 100, false, 0},
	}
	for _, c := range cases {
		if got := SeqLess(c.a, c.b); got != c.less {
			t.Errorf("SeqLess(%d,%d) = %v, want %v", c.a, c.b, got, c.less)
		}
		if got := SeqDiff(c.a, c.b); got != c.diff {
			t.Errorf("SeqDiff(%d,%d) = %d, want %d", c.a, c.b, got, c.diff)
		}
	}
}

func TestQuickHeaderRoundTrip(t *testing.T) {
	f := func(marker bool, pt uint8, seq uint16, ts, ssrc uint32) bool {
		h := Header{Marker: marker, PayloadType: pt & 0x7f, SequenceNumber: seq, Timestamp: ts, SSRC: ssrc}
		buf, err := h.Marshal()
		if err != nil {
			return false
		}
		var got Header
		n, err := got.Unmarshal(buf)
		return err == nil && n == len(buf) &&
			got.Marker == h.Marker && got.PayloadType == h.PayloadType &&
			got.SequenceNumber == seq && got.Timestamp == ts && got.SSRC == ssrc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSenderReportRoundTrip(t *testing.T) {
	sr := &SenderReport{
		SSRC: 1, NTPTime: 0x0102030405060708, RTPTime: 90000,
		PacketCount: 1000, OctetCount: 1 << 20,
		Reports: []ReportBlock{{
			SSRC: 2, FractionLost: 25, CumulativeLost: 0xABCDEF,
			HighestSeq: 5000, Jitter: 33, LastSR: 9, DelaySinceLasSR: 10,
		}},
	}
	buf, err := sr.MarshalRTCP()
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := UnmarshalRTCP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	g := got.(*SenderReport)
	if g.NTPTime != sr.NTPTime || g.OctetCount != sr.OctetCount ||
		len(g.Reports) != 1 || g.Reports[0].CumulativeLost != 0xABCDEF {
		t.Errorf("round trip mismatch: %+v", g)
	}
}

func TestReceiverReportRoundTrip(t *testing.T) {
	rr := &ReceiverReport{SSRC: 7, Reports: []ReportBlock{
		{SSRC: 1, FractionLost: 128, HighestSeq: 99, Jitter: 5},
		{SSRC: 2, FractionLost: 0, HighestSeq: 100},
	}}
	buf, err := rr.MarshalRTCP()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := UnmarshalRTCP(buf)
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*ReceiverReport)
	if g.SSRC != 7 || len(g.Reports) != 2 || g.Reports[0].FractionLost != 128 {
		t.Errorf("round trip mismatch: %+v", g)
	}
}

func TestPLIAndFIRRoundTrip(t *testing.T) {
	pli := &PictureLossIndication{SenderSSRC: 1, MediaSSRC: 2}
	buf, _ := pli.MarshalRTCP()
	got, _, err := UnmarshalRTCP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if g := got.(*PictureLossIndication); g.MediaSSRC != 2 {
		t.Errorf("PLI mismatch: %+v", g)
	}
	fir := &FullIntraRequest{SenderSSRC: 3, MediaSSRC: 4, SSRC: 5, SeqNo: 9}
	buf, _ = fir.MarshalRTCP()
	got, _, err = UnmarshalRTCP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if g := got.(*FullIntraRequest); g.SSRC != 5 || g.SeqNo != 9 {
		t.Errorf("FIR mismatch: %+v", g)
	}
}

func TestREMBRoundTrip(t *testing.T) {
	for _, rate := range []float64{64_000, 300_000, 1_500_000, 10_000_000, 123_456_789} {
		r := &ReceiverEstimatedMaxBitrate{SenderSSRC: 11, Bitrate: rate, SSRCs: []uint32{100, 200}}
		buf, err := r.MarshalRTCP()
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := UnmarshalRTCP(buf)
		if err != nil {
			t.Fatal(err)
		}
		g := got.(*ReceiverEstimatedMaxBitrate)
		if rel := math.Abs(g.Bitrate-rate) / rate; rel > 1e-4 {
			t.Errorf("REMB %g decoded as %g (rel err %g)", rate, g.Bitrate, rel)
		}
		if len(g.SSRCs) != 2 || g.SSRCs[1] != 200 {
			t.Errorf("REMB SSRCs = %v", g.SSRCs)
		}
	}
}

func TestNackRoundTripAndExpansion(t *testing.T) {
	n := &Nack{SenderSSRC: 1, MediaSSRC: 2, Pairs: []NackPair{{PacketID: 100, Bitmask: 0b101}}}
	buf, err := n.MarshalRTCP()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := UnmarshalRTCP(buf)
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*Nack)
	seqs := g.Pairs[0].LostSeqs()
	want := []uint16{100, 101, 103}
	if len(seqs) != len(want) {
		t.Fatalf("LostSeqs = %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("LostSeqs = %v, want %v", seqs, want)
		}
	}
}

func TestCompoundRoundTrip(t *testing.T) {
	buf, err := MarshalCompound(
		&SenderReport{SSRC: 1},
		&ReceiverReport{SSRC: 2, Reports: []ReportBlock{{SSRC: 1}}},
		&ReceiverEstimatedMaxBitrate{SenderSSRC: 2, Bitrate: 1e6},
	)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := UnmarshalCompound(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 3 {
		t.Fatalf("parsed %d messages, want 3", len(pkts))
	}
	if _, ok := pkts[0].(*SenderReport); !ok {
		t.Errorf("pkts[0] is %T, want *SenderReport", pkts[0])
	}
	if _, ok := pkts[2].(*ReceiverEstimatedMaxBitrate); !ok {
		t.Errorf("pkts[2] is %T, want *REMB", pkts[2])
	}
}

func TestUnmarshalRTCPTruncated(t *testing.T) {
	sr := &SenderReport{SSRC: 1, Reports: []ReportBlock{{SSRC: 2}}}
	buf, _ := sr.MarshalRTCP()
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := UnmarshalRTCP(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes parsed without error", cut)
		}
	}
}

func TestQuickReportBlockRoundTrip(t *testing.T) {
	f := func(ssrc uint32, fl uint8, cum uint32, hs, jit uint32) bool {
		rb := ReportBlock{SSRC: ssrc, FractionLost: fl, CumulativeLost: cum & 0xFFFFFF, HighestSeq: hs, Jitter: jit}
		rr := &ReceiverReport{SSRC: 9, Reports: []ReportBlock{rb}}
		buf, err := rr.MarshalRTCP()
		if err != nil {
			return false
		}
		got, _, err := UnmarshalRTCP(buf)
		if err != nil {
			return false
		}
		g := got.(*ReceiverReport).Reports[0]
		return g == rb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRTPMarshal(b *testing.B) {
	p := Packet{Header: Header{PayloadType: 96, SequenceNumber: 1, SSRC: 42}, Payload: make([]byte, 1200)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTPUnmarshal(b *testing.B) {
	p := Packet{Header: Header{PayloadType: 96, SequenceNumber: 1, SSRC: 42}, Payload: make([]byte, 1200)}
	buf, _ := p.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var q Packet
		if err := q.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
