package rtp

import (
	"reflect"
	"testing"
	"time"
)

func TestRTXBufferPutGetEvict(t *testing.T) {
	b := NewRTXBuffer(4)
	for seq := uint16(0); seq < 4; seq++ {
		if ev := b.Put(seq, int(seq), 100, int64(seq)); ev != nil {
			t.Fatalf("unexpected eviction %v at seq %d", ev, seq)
		}
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	p, size, at, ok := b.Get(2)
	if !ok || p.(int) != 2 || size != 100 || at != 2 {
		t.Fatalf("Get(2) = %v,%d,%d,%v", p, size, at, ok)
	}
	// Wraparound: seq 4 lands in slot 0, evicting seq 0 — the un-NACKed
	// oldest packet must come back so the caller can release it.
	if ev := b.Put(4, 40, 100, 4); ev.(int) != 0 {
		t.Fatalf("Put(4) evicted %v, want 0", ev)
	}
	if _, _, _, ok := b.Get(0); ok {
		t.Fatal("seq 0 should be gone after wraparound eviction")
	}
	if _, _, _, ok := b.Get(4); !ok {
		t.Fatal("seq 4 should be retrievable")
	}
}

func TestRTXBufferDrain(t *testing.T) {
	b := NewRTXBuffer(8)
	for seq := uint16(10); seq < 15; seq++ {
		b.Put(seq, int(seq), 1, 0)
	}
	var freed []int
	b.Drain(func(p any) { freed = append(freed, p.(int)) })
	if len(freed) != 5 || b.Len() != 0 {
		t.Fatalf("Drain freed %v, Len %d", freed, b.Len())
	}
	if _, _, _, ok := b.Get(12); ok {
		t.Fatal("Get after Drain should miss")
	}
}

func TestNackQueueObserveGapAndRecover(t *testing.T) {
	q := NewNackQueue(3)
	q.Observe(10, 0, time.Second)
	if missing, _ := q.Observe(14, 0, time.Second); missing != 3 {
		t.Fatalf("missing = %d, want 3 (seqs 11,12,13)", missing)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	// Late arrival of a tracked seq clears the entry.
	if _, recovered := q.Observe(12, 0, time.Second); !recovered {
		t.Fatal("Observe(12) should report a recovered loss")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d after recovery, want 2", q.Len())
	}
	// Duplicate of an already-delivered seq is not a recovery.
	if _, recovered := q.Observe(10, 0, time.Second); recovered {
		t.Fatal("duplicate of delivered seq must not count as recovered")
	}
}

func TestNackQueueObserveWraparound(t *testing.T) {
	q := NewNackQueue(3)
	q.Observe(65534, 0, time.Second)
	if missing, _ := q.Observe(2, 0, time.Second); missing != 3 {
		t.Fatalf("missing across wrap = %d, want 3 (65535, 0, 1)", missing)
	}
	var nacked []uint16
	q.Tick(0, 10*time.Millisecond, func(s uint16) { nacked = append(nacked, s) },
		func(uint16, bool) {})
	if !reflect.DeepEqual(nacked, []uint16{65535, 0, 1}) {
		t.Fatalf("nacked = %v", nacked)
	}
}

func TestNackQueueDuplicateSuppressionWithinBackoff(t *testing.T) {
	q := NewNackQueue(5)
	q.Observe(0, 0, time.Hour)
	q.Observe(2, 0, time.Hour) // seq 1 missing
	backoff := 40 * time.Millisecond
	count := func(now time.Duration) int {
		n := 0
		q.Tick(now, backoff, func(uint16) { n++ }, func(uint16, bool) {})
		return n
	}
	if n := count(0); n != 1 {
		t.Fatalf("first tick nacks = %d, want 1", n)
	}
	// Re-ticks inside the backoff window must not re-NACK.
	for _, now := range []time.Duration{10 * time.Millisecond, 39 * time.Millisecond} {
		if n := count(now); n != 0 {
			t.Fatalf("tick at %v nacks = %d, want 0 (backoff window)", now, n)
		}
	}
	if n := count(40 * time.Millisecond); n != 1 {
		t.Fatal("backoff expiry must re-NACK")
	}
}

func TestNackQueueGiveUpAfterMaxRetries(t *testing.T) {
	q := NewNackQueue(2)
	q.Observe(0, 0, time.Hour)
	q.Observe(2, 0, time.Hour) // seq 1 missing
	backoff := 10 * time.Millisecond
	var nacks int
	var gaveUp []uint16
	for i := 0; i < 6; i++ {
		q.Tick(time.Duration(i)*backoff, backoff,
			func(uint16) { nacks++ },
			func(s uint16, g bool) {
				if !g {
					t.Fatal("concede must be flagged as give-up")
				}
				gaveUp = append(gaveUp, s)
			})
	}
	if nacks != 2 {
		t.Fatalf("nacks = %d, want exactly maxRetries=2", nacks)
	}
	if !reflect.DeepEqual(gaveUp, []uint16{1}) {
		t.Fatalf("gaveUp = %v, want [1]", gaveUp)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after give-up, want 0", q.Len())
	}
}

func TestNackQueueDeadlineConcede(t *testing.T) {
	q := NewNackQueue(100)
	q.Observe(0, 0, 50*time.Millisecond)
	q.Observe(2, 0, 50*time.Millisecond) // seq 1 missing, concede at 50ms
	var conceded []uint16
	q.Tick(50*time.Millisecond, time.Millisecond, func(uint16) {},
		func(s uint16, g bool) {
			if g {
				t.Fatal("deadline concession must not be flagged give-up")
			}
			conceded = append(conceded, s)
		})
	if !reflect.DeepEqual(conceded, []uint16{1}) {
		t.Fatalf("conceded = %v, want [1]", conceded)
	}
}

func TestNackQueueReset(t *testing.T) {
	q := NewNackQueue(3)
	q.Observe(0, 0, time.Second)
	q.Observe(10, 0, time.Second)
	if n := q.Reset(500); n != 9 {
		t.Fatalf("Reset dropped %d, want 9", n)
	}
	if q.Len() != 0 {
		t.Fatal("Len after Reset must be 0")
	}
	if missing, _ := q.Observe(502, 0, time.Second); missing != 1 {
		t.Fatalf("missing after Reset = %d, want 1 (seq 501)", missing)
	}
}

func TestTransportCCRoundTrip(t *testing.T) {
	in := &TransportCC{
		SenderSSRC: 0x1111, MediaSSRC: 0x2222,
		BaseSeq: 65530, RefTimeUs: 123456789,
		DeltaUs: []int32{0, DeltaLost, 250, 1200, DeltaLost, 2400},
	}
	buf, err := in.MarshalRTCP()
	if err != nil {
		t.Fatal(err)
	}
	out, n, err := UnmarshalRTCP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	got, ok := out.(*TransportCC)
	if !ok {
		t.Fatalf("decoded %T, want *TransportCC", out)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, in)
	}
}

func TestTWCCRecorderReport(t *testing.T) {
	r := NewTWCCRecorder(64)
	r.Record(100, 1000)
	r.Record(101, 1500)
	// 102 lost.
	r.Record(103, 2500)
	rep, ok := r.BuildReport()
	if !ok {
		t.Fatal("BuildReport should produce a report")
	}
	if rep.BaseSeq != 100 || rep.RefTimeUs != 1000 {
		t.Fatalf("base/ref = %d/%d", rep.BaseSeq, rep.RefTimeUs)
	}
	want := []int32{0, 500, DeltaLost, 1500}
	if !reflect.DeepEqual(rep.DeltaUs, want) {
		t.Fatalf("deltas = %v, want %v", rep.DeltaUs, want)
	}
	// Nothing new: no report.
	if _, ok := r.BuildReport(); ok {
		t.Fatal("empty window must not report")
	}
	// Next window starts after the previous one.
	r.Record(104, 3000)
	rep, ok = r.BuildReport()
	if !ok || rep.BaseSeq != 104 || len(rep.DeltaUs) != 1 {
		t.Fatalf("second report = %+v, ok=%v", rep, ok)
	}
}

func TestTWCCRecorderRebaseOnHugeGap(t *testing.T) {
	r := NewTWCCRecorder(16)
	r.Record(0, 100)
	r.Record(1000, 200) // gap wider than the ring: re-base
	rep, ok := r.BuildReport()
	if !ok || rep.BaseSeq != 1000 || len(rep.DeltaUs) != 1 {
		t.Fatalf("report after rebase = %+v, ok=%v", rep, ok)
	}
}

func TestSentHistory(t *testing.T) {
	h := NewSentHistory(8)
	h.Record(5, 1000, 1200)
	at, size, ok := h.Lookup(5)
	if !ok || at != 1000 || size != 1200 {
		t.Fatalf("Lookup(5) = %d,%d,%v", at, size, ok)
	}
	h.Record(13, 2000, 300) // same slot (13%8 == 5): overwrites
	if _, _, ok := h.Lookup(5); ok {
		t.Fatal("seq 5 should be evicted by seq 13")
	}
	if at, size, ok := h.Lookup(13); !ok || at != 2000 || size != 300 {
		t.Fatal("seq 13 should be present")
	}
}
