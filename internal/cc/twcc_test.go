package cc

import (
	"testing"
	"time"

	"vcalab/internal/rtp"
)

// lookupFrom builds a resolver over a send-time table keyed by seq.
func lookupFrom(sent map[uint16][2]int64) func(uint16) (int64, int, bool) {
	return func(seq uint16) (int64, int, bool) {
		v, ok := sent[seq]
		return v[0], int(v[1]), ok
	}
}

func TestTWCCFilterDelayLossRate(t *testing.T) {
	// Three packets sent 20ms apart; all delayed 30ms except the second,
	// which queued an extra 10ms. The fourth is lost.
	sent := map[uint16][2]int64{
		100: {0, 1200},
		101: {20_000, 1200},
		102: {40_000, 1200},
	}
	rep := &rtp.TransportCC{
		BaseSeq:   100,
		RefTimeUs: 30_000,
		DeltaUs:   []int32{0, 30_000, 40_000, rtp.DeltaLost},
	}
	var f TWCCFilter
	fb, ok := f.Process(time.Second, 40*time.Millisecond, rep, lookupFrom(sent))
	if !ok {
		t.Fatal("Process should produce feedback")
	}
	if fb.LossFraction != 0.25 {
		t.Fatalf("LossFraction = %v, want 0.25", fb.LossFraction)
	}
	// owds: 30ms, 40ms, 30ms → base 30ms, mean excess 10/3 ms.
	wantQ := time.Duration(10_000/3) * time.Microsecond
	if d := fb.QueueDelay - wantQ; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("QueueDelay = %v, want ~%v", fb.QueueDelay, wantQ)
	}
	if fb.RTT != 40*time.Millisecond {
		t.Fatalf("RTT = %v", fb.RTT)
	}
	// 3×1200 bytes over the 40ms arrival span.
	wantRate := float64(3*1200*8) / 0.040
	if fb.ReceiveRateBps < wantRate*0.99 || fb.ReceiveRateBps > wantRate*1.01 {
		t.Fatalf("ReceiveRateBps = %v, want ~%v", fb.ReceiveRateBps, wantRate)
	}
}

func TestTWCCFilterSkipsEvictedAndEmpty(t *testing.T) {
	var f TWCCFilter
	rep := &rtp.TransportCC{BaseSeq: 0, RefTimeUs: 0, DeltaUs: []int32{0, 100}}
	if _, ok := f.Process(0, 0, rep, func(uint16) (int64, int, bool) { return 0, 0, false }); ok {
		t.Fatal("report with no resolvable sends must not produce feedback")
	}
	all := &rtp.TransportCC{DeltaUs: []int32{rtp.DeltaLost, rtp.DeltaLost}}
	if _, ok := f.Process(0, 0, all, lookupFrom(nil)); ok {
		t.Fatal("all-lost report must not produce feedback")
	}
}

func TestTWCCFilterBaseTracksMinimum(t *testing.T) {
	sent := map[uint16][2]int64{0: {0, 100}, 1: {0, 100}}
	var f TWCCFilter
	// First report: owd 50ms → base 50ms, queue 0.
	rep := &rtp.TransportCC{BaseSeq: 0, RefTimeUs: 50_000, DeltaUs: []int32{0}}
	fb, _ := f.Process(0, 0, rep, lookupFrom(sent))
	if fb.QueueDelay != 0 {
		t.Fatalf("first QueueDelay = %v, want 0", fb.QueueDelay)
	}
	// Second report: owd 80ms against base 50ms → ~30ms of queue.
	rep2 := &rtp.TransportCC{BaseSeq: 1, RefTimeUs: 80_000, DeltaUs: []int32{0}}
	fb, _ = f.Process(0, 0, rep2, lookupFrom(sent))
	if fb.QueueDelay < 25*time.Millisecond || fb.QueueDelay > 30*time.Millisecond {
		t.Fatalf("second QueueDelay = %v, want ~28ms (30ms minus base drift)", fb.QueueDelay)
	}
}
