package cc

import (
	"time"

	"vcalab/internal/rtp"
)

// TWCCFilter translates transport-wide CC reports (per-packet arrival
// times from the receiver, joined with the sender's own send-time
// history) into the Feedback records the controllers consume — an
// alternative delay/loss input to the receiver-side aggregate reports.
//
// Per packet, one-way delay is arrival minus send time. The filter
// tracks the minimum observed delay as the path base (drifting upward
// slowly so route changes eventually re-base) and reports the mean
// excess over that base as queueing delay, plus the report's loss
// fraction and receive rate.
type TWCCFilter struct {
	baseUs  int64
	started bool
}

// baseDriftShift controls how fast the base delay chases a rising
// minimum: base += (min-base)/2^baseDriftShift per report.
const baseDriftShift = 4

// Process folds one TransportCC report into the filter. lookup resolves
// a transport-wide seq to its send time and wire size (the sender's
// SentHistory); packets whose send record was evicted are skipped. It
// returns ok=false when the report contains no resolvable arrivals.
func (f *TWCCFilter) Process(now, rttHint time.Duration, rep *rtp.TransportCC,
	lookup func(seq uint16) (atUs int64, size int, ok bool)) (Feedback, bool) {

	var (
		arrived, lost int
		bytes         int
		sumOwdUs      int64
		minOwdUs      int64 = -1
		firstUs       int64 = -1
		lastUs        int64 = -1
	)
	for i, d := range rep.DeltaUs {
		if d == rtp.DeltaLost {
			lost++
			continue
		}
		seq := rep.BaseSeq + uint16(i)
		sentUs, size, ok := lookup(seq)
		if !ok {
			continue
		}
		arrUs := rep.RefTimeUs + int64(d)
		owd := arrUs - sentUs
		arrived++
		bytes += size
		sumOwdUs += owd
		if minOwdUs < 0 || owd < minOwdUs {
			minOwdUs = owd
		}
		if firstUs < 0 || arrUs < firstUs {
			firstUs = arrUs
		}
		if arrUs > lastUs {
			lastUs = arrUs
		}
	}
	if arrived == 0 {
		return Feedback{}, false
	}
	if !f.started || minOwdUs < f.baseUs {
		f.baseUs = minOwdUs
		f.started = true
	} else {
		f.baseUs += (minOwdUs - f.baseUs) >> baseDriftShift
	}
	queueUs := sumOwdUs/int64(arrived) - f.baseUs
	if queueUs < 0 {
		queueUs = 0
	}
	interval := time.Duration(lastUs-firstUs) * time.Microsecond
	if interval <= 0 {
		interval = time.Millisecond
	}
	fb := Feedback{
		Now:          now,
		Interval:     interval,
		RTT:          rttHint,
		QueueDelay:   time.Duration(queueUs) * time.Microsecond,
		LossFraction: float64(lost) / float64(len(rep.DeltaUs)),
	}
	fb.ReceiveRateBps = float64(bytes) * 8 / interval.Seconds()
	return fb, true
}
