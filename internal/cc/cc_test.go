package cc

import (
	"testing"
	"time"
)

// feed runs a controller against a crude virtual bottleneck for the given
// duration and returns the final target. capacity <= 0 means unconstrained.
// The link model: receive rate = min(send, capacity); when send exceeds
// capacity, loss is the excess fraction and queue delay saturates high.
func feed(c Controller, capacity float64, dur time.Duration) float64 {
	const step = 100 * time.Millisecond
	for now := step; now <= dur; now += step {
		send := c.TargetBps() + c.PadRateBps(now)
		fb := Feedback{Now: now, Interval: step, RTT: 20 * time.Millisecond}
		if capacity > 0 && send > capacity {
			fb.ReceiveRateBps = capacity
			fb.LossFraction = (send - capacity) / send
			fb.QueueDelay = 250 * time.Millisecond
		} else {
			fb.ReceiveRateBps = send
			fb.LossFraction = 0
			fb.QueueDelay = 0
		}
		c.OnFeedback(fb)
	}
	return c.TargetBps()
}

func videoRange() Range {
	return Range{MinBps: 100_000, MaxBps: 3_000_000, StartBps: 500_000}
}

func TestFixed(t *testing.T) {
	f := &Fixed{Rate: 64_000}
	f.OnFeedback(Feedback{LossFraction: 0.9, QueueDelay: time.Second})
	if f.TargetBps() != 64_000 {
		t.Errorf("Fixed changed rate: %v", f.TargetBps())
	}
	if f.PadRateBps(0) != 0 {
		t.Error("Fixed pads")
	}
}

func TestRangeClamp(t *testing.T) {
	r := Range{MinBps: 10, MaxBps: 100}
	if r.clamp(5) != 10 || r.clamp(500) != 100 || r.clamp(50) != 50 {
		t.Error("clamp misbehaves")
	}
}

func TestGCCGrowsOnCleanPath(t *testing.T) {
	g := NewGCC(DefaultGCCConfig(videoRange()))
	got := feed(g, 0, 40*time.Second)
	if got < 2_900_000 {
		t.Errorf("unconstrained GCC target = %v, want near max", got)
	}
}

func TestGCCBacksOffOnQueueDelay(t *testing.T) {
	g := NewGCC(DefaultGCCConfig(videoRange()))
	feed(g, 0, 10*time.Second) // ramp up
	// Sudden standing queue: 100 ms delay, receive rate limited.
	g.OnFeedback(Feedback{
		Now: 11 * time.Second, Interval: 100 * time.Millisecond,
		ReceiveRateBps: 400_000, QueueDelay: 100 * time.Millisecond,
	})
	if got := g.TargetBps(); got > 0.85*400_000+1 {
		t.Errorf("after overuse target = %v, want <= beta*receiveRate = %v", got, 0.85*400_000)
	}
}

func TestGCCTracksConstrainedLink(t *testing.T) {
	g := NewGCC(DefaultGCCConfig(videoRange()))
	got := feed(g, 800_000, 60*time.Second)
	// Should hover near but not wildly above capacity.
	if got < 500_000 || got > 1_000_000 {
		t.Errorf("constrained GCC target = %v, want ~0.5-1.0 Mbps around 0.8 capacity", got)
	}
}

func TestGCCAdaptiveThresholdRises(t *testing.T) {
	g := NewGCC(DefaultGCCConfig(videoRange()))
	start := g.Threshold()
	// Sustained 150 ms queueing (e.g. TCP filling the buffer).
	for now := time.Duration(0); now < 20*time.Second; now += 100 * time.Millisecond {
		g.OnFeedback(Feedback{
			Now: now, Interval: 100 * time.Millisecond,
			ReceiveRateBps: 500_000, QueueDelay: 150 * time.Millisecond,
		})
	}
	if g.Threshold() <= start {
		t.Errorf("threshold did not adapt: %v -> %v", start, g.Threshold())
	}
	if g.Threshold() < 100*time.Millisecond {
		t.Errorf("threshold = %v after 20s of 150ms queues, want >= 100ms", g.Threshold())
	}
}

func TestGCCNoAdaptiveThresholdStaysPut(t *testing.T) {
	cfg := DefaultGCCConfig(videoRange())
	cfg.AdaptiveThreshold = false
	g := NewGCC(cfg)
	start := g.Threshold()
	for now := time.Duration(0); now < 10*time.Second; now += 100 * time.Millisecond {
		g.OnFeedback(Feedback{Now: now, Interval: 100 * time.Millisecond,
			ReceiveRateBps: 500_000, QueueDelay: 150 * time.Millisecond})
	}
	if g.Threshold() != start {
		t.Errorf("threshold moved without AdaptiveThreshold: %v -> %v", start, g.Threshold())
	}
}

func TestGCCServerProbesAfterDrop(t *testing.T) {
	g := NewGCC(ServerGCCConfig(Range{MinBps: 100_000, MaxBps: 2_000_000, StartBps: 900_000}))
	// Establish a known-good rate near 0.9 Mbps.
	feed(g, 0, 5*time.Second)
	high := g.TargetBps()
	// Constrain hard to 0.25 for 30 s (loss-driven decrease).
	for now := 5 * time.Second; now < 35*time.Second; now += 100 * time.Millisecond {
		send := g.TargetBps()
		loss := 0.0
		recv := send
		if send > 250_000 {
			loss = (send - 250_000) / send
			recv = 250_000
		}
		g.OnFeedback(Feedback{Now: now, Interval: 100 * time.Millisecond,
			ReceiveRateBps: recv, LossFraction: loss, QueueDelay: 300 * time.Millisecond})
	}
	low := g.TargetBps()
	if low > 400_000 {
		t.Fatalf("constrained server GCC target = %v, want < 0.4 Mbps", low)
	}
	// Restore: clean path. With probing the controller should be back
	// within ~25%% of the prior rate in under 10 simulated seconds.
	var recovered time.Duration
	for now := 35 * time.Second; now < 60*time.Second; now += 100 * time.Millisecond {
		send := g.TargetBps() + g.PadRateBps(now)
		g.OnFeedback(Feedback{Now: now, Interval: 100 * time.Millisecond,
			ReceiveRateBps: send, LossFraction: 0, QueueDelay: 0})
		if g.TargetBps() > 0.75*high && recovered == 0 {
			recovered = now - 35*time.Second
		}
	}
	if recovered == 0 {
		t.Fatalf("server GCC never recovered (target %v, high was %v)", g.TargetBps(), high)
	}
	if recovered > 10*time.Second {
		t.Errorf("server GCC recovery took %v, want < 10s (probing)", recovered)
	}
}

func TestZoomStaircaseRecovery(t *testing.T) {
	nominal := 780_000.0
	z := NewZoomCC(DefaultZoomConfig(Range{MinBps: 100_000, MaxBps: 3_000_000, StartBps: nominal}, nominal))
	// Constrain to 0.25 for 30 s.
	for now := 100 * time.Millisecond; now <= 30*time.Second; now += 100 * time.Millisecond {
		send := z.TargetBps()
		fb := Feedback{Now: now, Interval: 100 * time.Millisecond}
		if send > 250_000 {
			fb.ReceiveRateBps = 250_000
			fb.LossFraction = (send - 250_000) / send
			fb.QueueDelay = 500 * time.Millisecond
		} else {
			fb.ReceiveRateBps = send
		}
		z.OnFeedback(fb)
	}
	if z.TargetBps() > 300_000 {
		t.Fatalf("constrained Zoom target = %v, want <= 0.3 Mbps", z.TargetBps())
	}
	// Restore and track the staircase.
	var reachedNominal, peak time.Duration
	peakRate := 0.0
	for now := 30 * time.Second; now <= 180*time.Second; now += 100 * time.Millisecond {
		z.OnFeedback(Feedback{Now: now, Interval: 100 * time.Millisecond,
			ReceiveRateBps: z.TargetBps(), LossFraction: 0, QueueDelay: 0})
		r := z.TargetBps()
		if r >= nominal && reachedNominal == 0 {
			reachedNominal = now - 30*time.Second
		}
		if r > peakRate {
			peakRate, peak = r, now
		}
	}
	if reachedNominal == 0 {
		t.Fatal("Zoom never recovered to nominal")
	}
	// Staircase from 0.25 to 0.78 in ~110 kbps / 7 s steps: expect 25-60 s.
	if reachedNominal < 20*time.Second || reachedNominal > 70*time.Second {
		t.Errorf("Zoom staircase recovery = %v, want 20-70 s", reachedNominal)
	}
	// Probing overshoot: peak well above nominal, then settles back.
	if peakRate < 1.3*nominal {
		t.Errorf("Zoom probe peak = %v, want >= 1.3x nominal %v", peakRate, nominal)
	}
	if z.TargetBps() > 1.05*nominal {
		t.Errorf("Zoom final rate %v did not settle to nominal %v (peak at %v)",
			z.TargetBps(), nominal, peak)
	}
}

func TestZoomToleratesModerateLoss(t *testing.T) {
	nominal := 780_000.0
	z := NewZoomCC(DefaultZoomConfig(Range{MinBps: 100_000, MaxBps: 3_000_000, StartBps: nominal}, nominal))
	for now := 100 * time.Millisecond; now <= 20*time.Second; now += 100 * time.Millisecond {
		z.OnFeedback(Feedback{Now: now, Interval: 100 * time.Millisecond,
			ReceiveRateBps: 0.85 * z.TargetBps(), LossFraction: 0.15,
			QueueDelay: 200 * time.Millisecond})
	}
	if z.TargetBps() < nominal {
		t.Errorf("Zoom backed off at 15%% loss: target = %v", z.TargetBps())
	}
}

func TestZoomBacksOffOnHeavyLoss(t *testing.T) {
	nominal := 780_000.0
	z := NewZoomCC(DefaultZoomConfig(Range{MinBps: 100_000, MaxBps: 3_000_000, StartBps: nominal}, nominal))
	z.OnFeedback(Feedback{Now: time.Second, Interval: 100 * time.Millisecond,
		ReceiveRateBps: 300_000, LossFraction: 0.4, QueueDelay: 600 * time.Millisecond})
	if got := z.TargetBps(); got > 0.93*300_000+1 {
		t.Errorf("Zoom target after 40%% loss = %v, want <= 279k", got)
	}
}

func TestZoomSteadyProbeBursts(t *testing.T) {
	nominal := 780_000.0
	cfg := DefaultZoomConfig(Range{MinBps: 100_000, MaxBps: 3_000_000, StartBps: nominal}, nominal)
	z := NewZoomCC(cfg)
	sawBurst := false
	for now := 100 * time.Millisecond; now <= 3*time.Minute; now += 100 * time.Millisecond {
		z.OnFeedback(Feedback{Now: now, Interval: 100 * time.Millisecond,
			ReceiveRateBps: z.TargetBps(), LossFraction: 0, QueueDelay: 0})
		if z.PadRateBps(now) > 0.5*nominal {
			sawBurst = true
		}
	}
	if !sawBurst {
		t.Error("Zoom never emitted a steady-state probe burst (Fig 13 behaviour)")
	}
}

func TestTeamsHairTriggerBackoff(t *testing.T) {
	r := Range{MinBps: 150_000, MaxBps: 2_500_000, StartBps: 1_400_000}
	tc := NewTeamsCC(DefaultTeamsConfig(r))
	tc.OnFeedback(Feedback{Now: time.Second, Interval: 100 * time.Millisecond,
		ReceiveRateBps: 1_300_000, LossFraction: 0.03, QueueDelay: 0})
	if got := tc.TargetBps(); got > 0.8*1_300_000+1 {
		t.Errorf("Teams target after 3%% loss = %v, want <= %v", got, 0.8*1_300_000)
	}
	// 70 ms queueing alone must also trigger.
	tc2 := NewTeamsCC(DefaultTeamsConfig(r))
	tc2.OnFeedback(Feedback{Now: time.Second, Interval: 100 * time.Millisecond,
		ReceiveRateBps: 1_000_000, LossFraction: 0, QueueDelay: 70 * time.Millisecond})
	if got := tc2.TargetBps(); got > 800_001 {
		t.Errorf("Teams target after 70ms delay = %v, want <= 800k", got)
	}
}

func TestTeamsSlowThenFastRecovery(t *testing.T) {
	r := Range{MinBps: 150_000, MaxBps: 2_500_000, StartBps: 1_400_000}
	tc := NewTeamsCC(DefaultTeamsConfig(r))
	// Knock it down to ~0.2.
	tc.OnFeedback(Feedback{Now: time.Second, Interval: 100 * time.Millisecond,
		ReceiveRateBps: 250_000, LossFraction: 0.5, QueueDelay: 300 * time.Millisecond})
	low := tc.TargetBps()
	// Clean recovery: measure rate gained in the first 5 s vs seconds 15-20.
	rateAt := func(until time.Duration) float64 {
		return tc.TargetBps()
	}
	_ = rateAt
	var gainEarly, gainLate float64
	prev := low
	for now := time.Second; now <= 21*time.Second; now += 100 * time.Millisecond {
		tc.OnFeedback(Feedback{Now: now, Interval: 100 * time.Millisecond,
			ReceiveRateBps: tc.TargetBps(), LossFraction: 0, QueueDelay: 0})
		if now == 6*time.Second {
			gainEarly = tc.TargetBps() - prev
			prev = tc.TargetBps()
		}
		if now == 21*time.Second {
			gainLate = tc.TargetBps() - prev
		}
	}
	if gainEarly <= 0 || gainLate <= 0 {
		t.Fatalf("no recovery: early %v late %v", gainEarly, gainLate)
	}
	if gainLate < 2*gainEarly {
		t.Errorf("recovery not slow-then-fast: first 5s gained %v, 6-21s gained %v", gainEarly, gainLate)
	}
}

func TestTeamsReachesNominalUnconstrained(t *testing.T) {
	r := Range{MinBps: 150_000, MaxBps: 1_500_000, StartBps: 300_000}
	tc := NewTeamsCC(DefaultTeamsConfig(r))
	got := feed(tc, 0, 60*time.Second)
	if got < 1_400_000 {
		t.Errorf("Teams unconstrained = %v, want near max %v", got, r.MaxBps)
	}
}

// Comparative property: under identical sustained moderate congestion
// (12% loss, 150 ms queues), Zoom holds its rate while Teams and GCC both
// retreat — the ordering behind every §5 fairness result.
func TestAggressionOrdering(t *testing.T) {
	r := Range{MinBps: 100_000, MaxBps: 3_000_000, StartBps: 800_000}
	congest := func(c Controller) float64 {
		for now := 100 * time.Millisecond; now <= 20*time.Second; now += 100 * time.Millisecond {
			c.OnFeedback(Feedback{Now: now, Interval: 100 * time.Millisecond,
				ReceiveRateBps: 0.88 * c.TargetBps(), LossFraction: 0.12,
				QueueDelay: 150 * time.Millisecond})
		}
		return c.TargetBps()
	}
	zoom := congest(NewZoomCC(DefaultZoomConfig(r, 780_000)))
	teams := congest(NewTeamsCC(DefaultTeamsConfig(r)))
	meet := congest(NewGCC(DefaultGCCConfig(r)))
	if !(zoom > meet && zoom > teams) {
		t.Errorf("aggression ordering violated: zoom=%v meet=%v teams=%v", zoom, meet, teams)
	}
	if zoom < 700_000 {
		t.Errorf("zoom should shrug off 12%% loss, got %v", zoom)
	}
	if teams > 200_000 {
		t.Errorf("teams should be crushed by sustained congestion, got %v", teams)
	}
}
