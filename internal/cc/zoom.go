package cc

import (
	"math"
	"time"
)

// ZoomConfig parameterizes ZoomCC. Start from DefaultZoomConfig.
type ZoomConfig struct {
	Range Range

	// NominalBps is the steady-state rate the controller settles at on an
	// unconstrained link (Table 2: ~0.78 Mbps upstream for Zoom).
	NominalBps float64

	// StepBps is the stepwise-increase quantum, and HoldTime how long the
	// controller dwells on a step before probing the next one — producing
	// the staircase recovery of Fig 4a.
	StepBps  float64
	HoldTime time.Duration

	// ProbeOvershoot is how far above nominal the post-recovery probing
	// phase climbs before settling back (Fig 4a shows Zoom sending well
	// above nominal for ~2 minutes after a disruption).
	ProbeOvershoot float64

	// LossTolerance and DelayTolerance are the back-off triggers. They
	// are deliberately huge: Zoom's FEC masks loss, so the controller
	// keeps pushing where GCC or TeamsCC would retreat — the §5 findings
	// that Zoom takes >75% of a constrained link follow from these.
	LossTolerance  float64
	DelayTolerance time.Duration

	// BackoffFactor scales the receive rate on back-off.
	BackoffFactor float64

	// SteadyProbeInterval/Duration/Factor give the periodic in-call probe
	// bursts ("Anomalous Zoom Bursts", Fig 13): every interval the sender
	// emits padding at Factor×target for Duration.
	SteadyProbeInterval time.Duration
	SteadyProbeDuration time.Duration
	SteadyProbeFactor   float64
}

// DefaultZoomConfig returns the calibration used for the paper's Zoom
// client (§3: nominal 0.78 Mbps up; §4: ~40-50 s staircase recovery from
// 0.25 Mbps; §5: >75% link share under competition).
func DefaultZoomConfig(r Range, nominal float64) ZoomConfig {
	return ZoomConfig{
		Range:               r,
		NominalBps:          nominal,
		StepBps:             120_000,
		HoldTime:            6 * time.Second,
		ProbeOvershoot:      1.6,
		LossTolerance:       0.30,
		DelayTolerance:      500 * time.Millisecond,
		BackoffFactor:       0.93,
		SteadyProbeInterval: 55 * time.Second,
		SteadyProbeDuration: 6 * time.Second,
		SteadyProbeFactor:   1.7,
	}
}

// ZoomCC models Zoom's FEC-probing congestion control: linear/stepwise
// ramping, long holds, extreme loss tolerance, and periodic probe bursts.
type ZoomCC struct {
	cfg ZoomConfig

	rate       float64
	lastChange time.Duration
	// probing tracks the post-disruption overshoot phase: rate climbs
	// past nominal to probe headroom, then settles back to nominal.
	probing    bool
	settled    bool
	lastSteady time.Duration
	burstUntil time.Duration
}

// NewZoomCC creates a ZoomCC controller.
func NewZoomCC(cfg ZoomConfig) *ZoomCC {
	if cfg.StepBps == 0 || cfg.BackoffFactor == 0 {
		panic("cc: ZoomConfig missing parameters; start from DefaultZoomConfig")
	}
	return &ZoomCC{cfg: cfg, rate: cfg.Range.StartBps}
}

// Name implements Controller.
func (z *ZoomCC) Name() string { return "zoom" }

// TargetBps implements Controller.
func (z *ZoomCC) TargetBps() float64 { return z.cfg.Range.clamp(z.rate) }

// PadRateBps implements Controller.
func (z *ZoomCC) PadRateBps(now time.Duration) float64 {
	if now < z.burstUntil {
		return (z.cfg.SteadyProbeFactor - 1) * z.TargetBps()
	}
	return 0
}

// OnFeedback implements Controller.
func (z *ZoomCC) OnFeedback(fb Feedback) {
	congested := fb.LossFraction > z.cfg.LossTolerance ||
		fb.QueueDelay > z.cfg.DelayTolerance

	if congested {
		next := z.cfg.BackoffFactor * fb.ReceiveRateBps
		if next < z.rate {
			z.rate = z.cfg.Range.clamp(next)
		}
		z.lastChange = fb.Now
		z.probing = true // a constraint was hit: re-probe on the way out
		z.settled = false
		z.burstUntil = 0 // abandon any burst under congestion
		return
	}

	// Steady-state periodic probe bursts (only once settled at nominal).
	if z.settled && z.cfg.SteadyProbeInterval > 0 &&
		fb.Now-z.lastSteady >= z.cfg.SteadyProbeInterval {
		z.burstUntil = fb.Now + z.cfg.SteadyProbeDuration
		z.lastSteady = fb.Now
	}

	if fb.Now-z.lastChange < z.cfg.HoldTime {
		return // dwell on the current step
	}
	z.lastChange = fb.Now

	ceiling := z.cfg.NominalBps
	if z.probing {
		ceiling = z.cfg.NominalBps * z.cfg.ProbeOvershoot
	}
	switch {
	case z.rate < ceiling:
		z.rate = math.Min(z.rate+z.cfg.StepBps, z.cfg.Range.MaxBps)
		z.settled = false
	case z.probing:
		// Finished the overshoot phase: settle back to nominal.
		z.probing = false
		z.rate = z.cfg.NominalBps
		z.settled = true
		z.lastSteady = fb.Now
	default:
		z.rate = z.cfg.NominalBps
		if !z.settled {
			z.settled = true
			z.lastSteady = fb.Now
		}
	}
	z.rate = z.cfg.Range.clamp(z.rate)
}
