package cc

import (
	"time"
)

// TeamsConfig parameterizes TeamsCC. Start from DefaultTeamsConfig.
type TeamsConfig struct {
	Range Range

	// LossBackoff and DelayBackoff are the (very sensitive) congestion
	// triggers. Teams backs off on ~2% loss or ~60 ms of queueing, which
	// is why it is "extremely passive" against TCP (§5.2) and cedes the
	// downlink to every other VCA (§5.1, Fig 10b).
	LossBackoff  float64
	DelayBackoff time.Duration

	// BackoffFactor scales the measured receive rate on back-off.
	BackoffFactor float64

	// RampInitBpsPerSec is the additive-increase slope right after a
	// back-off; the slope doubles every RampDouble until RampMaxBpsPerSec.
	// This produces the slow-then-fast recovery of Fig 4a and, combined
	// with the high nominal rate, Teams' long TTR (Fig 4b, Fig 5b).
	RampInitBpsPerSec float64
	RampMaxBpsPerSec  float64
	RampDouble        time.Duration
}

// DefaultTeamsConfig returns the calibration for the paper's Teams client.
func DefaultTeamsConfig(r Range) TeamsConfig {
	return TeamsConfig{
		Range:             r,
		LossBackoff:       0.02,
		DelayBackoff:      60 * time.Millisecond,
		BackoffFactor:     0.8,
		RampInitBpsPerSec: 12_000,
		RampMaxBpsPerSec:  220_000,
		RampDouble:        4 * time.Second,
	}
}

// TeamsCC models Microsoft Teams' conservative controller: hair-trigger
// multiplicative decrease, slow-start-like additive recovery.
type TeamsCC struct {
	cfg TeamsConfig

	rate         float64
	slope        float64
	lastRampUp   time.Duration
	lastFeedback time.Duration
}

// NewTeamsCC creates a TeamsCC controller.
func NewTeamsCC(cfg TeamsConfig) *TeamsCC {
	if cfg.BackoffFactor == 0 || cfg.RampInitBpsPerSec == 0 {
		panic("cc: TeamsConfig missing parameters; start from DefaultTeamsConfig")
	}
	return &TeamsCC{cfg: cfg, rate: cfg.Range.StartBps, slope: cfg.RampInitBpsPerSec}
}

// Name implements Controller.
func (t *TeamsCC) Name() string { return "teams" }

// TargetBps implements Controller.
func (t *TeamsCC) TargetBps() float64 { return t.cfg.Range.clamp(t.rate) }

// PadRateBps implements Controller.
func (t *TeamsCC) PadRateBps(time.Duration) float64 { return 0 }

// OnFeedback implements Controller.
func (t *TeamsCC) OnFeedback(fb Feedback) {
	dt := fb.Interval.Seconds()
	if t.lastFeedback != 0 {
		dt = (fb.Now - t.lastFeedback).Seconds()
	}
	if dt <= 0 {
		dt = 0.1
	}
	t.lastFeedback = fb.Now

	if fb.LossFraction > t.cfg.LossBackoff || fb.QueueDelay > t.cfg.DelayBackoff {
		next := t.cfg.BackoffFactor * fb.ReceiveRateBps
		if next < t.rate {
			t.rate = t.cfg.Range.clamp(next)
		}
		t.slope = t.cfg.RampInitBpsPerSec
		t.lastRampUp = fb.Now
		return
	}

	// Clean interval: additive increase with accelerating slope.
	if fb.Now-t.lastRampUp >= t.cfg.RampDouble {
		t.slope *= 2
		if t.slope > t.cfg.RampMaxBpsPerSec {
			t.slope = t.cfg.RampMaxBpsPerSec
		}
		t.lastRampUp = fb.Now
	}
	t.rate = t.cfg.Range.clamp(t.rate + t.slope*dt)
}
