// Package cc implements the congestion controllers that differentiate the
// paper's three VCAs.
//
// The paper (§4, §5) attributes essentially every cross-VCA difference in
// recovery time and fairness to proprietary congestion control:
//
//   - Google Meet runs Google Congestion Control (GCC, Carlucci et al.):
//     a delay-gradient overuse detector driving an AIMD rate controller,
//     with an adaptive threshold that prevents starvation by loss-based
//     TCP flows. Implemented here as GCC.
//   - Zoom uses a bespoke RTP extension with FEC-based probing (the paper
//     likens it to FBRA, Nagy et al.): stepwise rate increases, long holds,
//     tolerance of heavy loss, and periodic probe bursts well above the
//     nominal rate. Implemented here as ZoomCC.
//   - Teams reacts strongly to the slightest loss or queueing delay and
//     re-ramps slowly-then-quickly after every back-off, making it highly
//     passive against competing traffic. Implemented here as TeamsCC.
//
// Controllers are pure, deterministic state machines driven by Feedback
// records; they know nothing about the simulator, which makes them unit
// testable in isolation.
package cc

import "time"

// Feedback summarizes one receiver-report interval, as assembled by the
// media receiver (internal/vca) from RTCP.
type Feedback struct {
	// Now is the (virtual) time the feedback is processed at the sender.
	Now time.Duration
	// Interval is the span the report covers.
	Interval time.Duration
	// RTT is the current round-trip estimate.
	RTT time.Duration
	// LossFraction is the fraction of packets lost in the interval [0,1].
	LossFraction float64
	// ReceiveRateBps is the goodput measured by the receiver.
	ReceiveRateBps float64
	// QueueDelay estimates one-way queueing delay above the path base
	// delay — what GCC's arrival-time filter measures.
	QueueDelay time.Duration
}

// Controller adapts a media sender's target bitrate.
type Controller interface {
	// Name identifies the algorithm (for logs and traces).
	Name() string
	// OnFeedback folds one feedback report into the controller state.
	OnFeedback(fb Feedback)
	// TargetBps returns the current media target rate for the encoder.
	TargetBps() float64
	// PadRateBps returns the rate of additional padding/FEC/probe traffic
	// the sender should emit on top of the media target right now. Zoom's
	// probe bursts and GCC's recovery probes surface here.
	PadRateBps(now time.Duration) float64
}

// Range bounds a controller's output rate.
type Range struct {
	MinBps   float64
	MaxBps   float64
	StartBps float64
}

func (r Range) clamp(v float64) float64 {
	if v < r.MinBps {
		return r.MinBps
	}
	if v > r.MaxBps {
		return r.MaxBps
	}
	return v
}

// Fixed is a constant-rate controller, useful in tests and for audio
// streams, which the paper's VCAs do not adapt.
type Fixed struct{ Rate float64 }

// Name implements Controller.
func (f *Fixed) Name() string { return "fixed" }

// OnFeedback implements Controller (no-op).
func (f *Fixed) OnFeedback(Feedback) {}

// TargetBps implements Controller.
func (f *Fixed) TargetBps() float64 { return f.Rate }

// PadRateBps implements Controller.
func (f *Fixed) PadRateBps(time.Duration) float64 { return 0 }
