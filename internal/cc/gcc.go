package cc

import (
	"math"
	"time"
)

// GCCConfig parameterizes a GCC instance. The zero value is not useful;
// start from DefaultGCCConfig.
type GCCConfig struct {
	Range Range

	// DelayBased enables the overuse detector. Google Meet's browser
	// client runs with it on; the Meet SFU's sender side behaves as a
	// loss-based-only controller (the paper observes Meet's downlink is
	// not TCP-friendly while its uplink is, §5.2 — an architectural
	// asymmetry we model by disabling the delay detector server-side).
	DelayBased bool

	// AdaptiveThreshold enables gamma adaptation (Carlucci et al. §IV-B):
	// the overuse threshold inflates when sustained queueing is observed,
	// which is what keeps GCC from starving under loss-based TCP.
	AdaptiveThreshold bool

	// ProbeOnRecovery enables WebRTC-style padding probes when the rate
	// sits far below the last known-good rate. The Meet SFU uses this to
	// re-upgrade the simulcast layer within seconds after a downlink
	// disruption ends (Fig 5b shows sub-10 s recovery).
	ProbeOnRecovery bool

	// Beta is the multiplicative decrease factor applied to the measured
	// receive rate on overuse (WebRTC default 0.85).
	Beta float64

	// IncreasePerSec is the multiplicative increase factor per second in
	// the increase state (WebRTC's eta=1.08 per response-time).
	IncreasePerSec float64

	// InitialThreshold is the starting overuse threshold gamma.
	InitialThreshold time.Duration

	// LossHigh and LossLow bound the loss-based controller: above
	// LossHigh the rate is cut, below LossLow it grows (RFC 8698-style
	// 10% / 2%).
	LossHigh, LossLow float64
}

// DefaultGCCConfig returns the client-side (Meet browser) configuration.
func DefaultGCCConfig(r Range) GCCConfig {
	return GCCConfig{
		Range:             r,
		DelayBased:        true,
		AdaptiveThreshold: true,
		ProbeOnRecovery:   false,
		Beta:              0.85,
		IncreasePerSec:    1.08,
		InitialThreshold:  35 * time.Millisecond,
		LossHigh:          0.10,
		LossLow:           0.02,
	}
}

// ServerGCCConfig returns the SFU-side configuration: loss-based only,
// with recovery probing, modeling the behaviour the paper observed for
// the Meet relay (aggressive downstream, fast post-disruption upgrades).
func ServerGCCConfig(r Range) GCCConfig {
	cfg := DefaultGCCConfig(r)
	cfg.DelayBased = false
	cfg.ProbeOnRecovery = true
	return cfg
}

type gccState int

const (
	stateIncrease gccState = iota
	stateHold
	stateDecrease
)

// GCC is a Google-Congestion-Control-style controller: the minimum of a
// delay-based estimate and a loss-based estimate, clamped to the range.
type GCC struct {
	cfg GCCConfig

	delayRate float64
	lossRate  float64
	state     gccState

	gamma        time.Duration // adaptive overuse threshold
	lastFeedback time.Duration
	lastGood     float64 // highest recently sustained rate, for probing
	overusedAt   time.Duration
	lastOveruse  time.Duration

	probeUntil   time.Duration
	probeRate    float64
	lastProbe    time.Duration
	probeJumped  bool
	probeBackoff time.Duration
}

// NewGCC creates a GCC controller.
func NewGCC(cfg GCCConfig) *GCC {
	if cfg.Beta == 0 || cfg.IncreasePerSec == 0 {
		panic("cc: GCCConfig missing parameters; start from DefaultGCCConfig")
	}
	g := &GCC{
		cfg:       cfg,
		delayRate: cfg.Range.StartBps,
		lossRate:  cfg.Range.StartBps,
		gamma:     cfg.InitialThreshold,
		lastGood:  cfg.Range.StartBps,
	}
	if !cfg.DelayBased {
		// Loss-based-only operation (SFU legs): the delay estimate
		// never updates, so it must not bind.
		g.delayRate = cfg.Range.MaxBps
	}
	return g
}

// Name implements Controller.
func (g *GCC) Name() string { return "gcc" }

// TargetBps implements Controller.
func (g *GCC) TargetBps() float64 {
	return g.cfg.Range.clamp(math.Min(g.delayRate, g.lossRate))
}

// PadRateBps implements Controller.
func (g *GCC) PadRateBps(now time.Duration) float64 {
	if now < g.probeUntil {
		extra := g.probeRate - g.TargetBps()
		if extra > 0 {
			return extra
		}
	}
	return 0
}

// OnFeedback implements Controller.
func (g *GCC) OnFeedback(fb Feedback) {
	dt := fb.Interval.Seconds()
	if g.lastFeedback != 0 {
		dt = (fb.Now - g.lastFeedback).Seconds()
	}
	if dt <= 0 {
		dt = 0.1
	}
	g.lastFeedback = fb.Now

	// ---- Delay-based controller -------------------------------------
	if g.cfg.DelayBased || g.cfg.ProbeOnRecovery {
		overuse := fb.QueueDelay > g.gamma
		if g.cfg.AdaptiveThreshold {
			// Adapt gamma toward |queue delay|: fast when delay is
			// above the threshold (avoid TCP starvation), slow when
			// below (regain sensitivity).
			k := 0.045
			if fb.QueueDelay < g.gamma {
				k = 0.0019
			}
			g.gamma += time.Duration(k * dt / 0.1 * float64(fb.QueueDelay-g.gamma))
			// The floor sits above per-packet serialization jitter on
			// sub-Mbps links (~15-30 ms), which is delay the sender
			// itself causes and must not read as congestion.
			const minGamma, maxGamma = 25 * time.Millisecond, 600 * time.Millisecond
			if g.gamma < minGamma {
				g.gamma = minGamma
			}
			if g.gamma > maxGamma {
				g.gamma = maxGamma
			}
		}
		if g.cfg.DelayBased {
			switch {
			case overuse:
				g.state = stateDecrease
				g.lastOveruse = fb.Now
			case g.state == stateDecrease:
				// Underuse/normal after decrease: hold briefly.
				g.state = stateHold
			case g.state == stateHold && fb.Now-g.lastOveruse > 500*time.Millisecond:
				g.state = stateIncrease
			}
			switch g.state {
			case stateDecrease:
				g.delayRate = g.cfg.Beta * fb.ReceiveRateBps
			case stateIncrease:
				grown := g.delayRate * math.Pow(g.cfg.IncreasePerSec, dt)
				// Growth never runs more than 1.5x ahead of what the
				// path demonstrably delivers — but a receive-rate dip
				// must not pull an established estimate down (only the
				// overuse detector cuts).
				if cap := 1.5 * fb.ReceiveRateBps; grown > cap && fb.ReceiveRateBps > 0 {
					grown = cap
				}
				if grown > g.delayRate {
					g.delayRate = grown
				}
			}
		}
	}

	// ---- Probe outcome ----------------------------------------------
	// Evaluated before the loss controller: a probe demonstrably
	// delivered fb.ReceiveRateBps, and loss the probe itself caused must
	// not veto (or undercut) the jump to that proven rate.
	jumped := false
	if g.cfg.ProbeOnRecovery && g.probeRate > 0 &&
		fb.ReceiveRateBps > 1.1*g.TargetBps() && fb.LossFraction < 0.5 {
		jump := 0.95 * fb.ReceiveRateBps
		if jump > g.delayRate {
			g.delayRate = g.cfg.Range.clamp(jump)
		}
		if jump > g.lossRate {
			// Only a meaningful gain (>=8%) counts as probe success for
			// backoff purposes; micro-jumps at a capacity ceiling must
			// not keep the prober firing forever.
			if jump > 1.08*g.lossRate {
				g.probeJumped = true
			}
			g.lossRate = g.cfg.Range.clamp(jump)
			jumped = true
		}
	}
	// Loss observed while a probe is (or just was) in flight is
	// self-inflicted; it must not cut the estimate the probe measured.
	probeShield := g.cfg.ProbeOnRecovery && g.lastProbe > 0 &&
		fb.Now < g.probeUntil+300*time.Millisecond

	// ---- Loss-based controller --------------------------------------
	// While a probe is in flight the receive rate is pad-inflated and
	// loss is self-inflicted: the explicit jump above is the only way
	// the estimate moves during the shield window.
	switch {
	case jumped || probeShield:
		// Skip the loss reaction this interval; the jump already set the
		// rate to what the path proved it can carry.
	case fb.LossFraction > g.cfg.LossHigh:
		// Cut, but never below what the path demonstrably delivers —
		// WebRTC's loss controller is floored by the acked bitrate.
		cut := g.lossRate * (1 - 0.5*fb.LossFraction)
		if floor := 0.8 * fb.ReceiveRateBps; cut < floor {
			cut = floor
		}
		if cut < g.lossRate {
			g.lossRate = cut
		}
	case fb.LossFraction < g.cfg.LossLow:
		grown := g.lossRate * math.Pow(1.08, dt)
		if cap := 1.5 * fb.ReceiveRateBps; grown > cap && fb.ReceiveRateBps > 0 {
			grown = cap
		}
		if grown > g.lossRate {
			g.lossRate = grown
		}
	}
	g.delayRate = g.cfg.Range.clamp(g.delayRate)
	g.lossRate = g.cfg.Range.clamp(g.lossRate)

	// ---- Known-good tracking and recovery probing -------------------
	target := g.TargetBps()
	if fb.LossFraction < g.cfg.LossLow && fb.QueueDelay < g.gamma {
		if target > g.lastGood {
			g.lastGood = target
		}
	} else {
		// Forget very slowly during bad periods (half-life of minutes):
		// the Meet SFU remembers that the high simulcast layer exists
		// throughout a 30 s disruption, which is what lets it upgrade
		// again within seconds (Fig 5b).
		g.lastGood *= math.Pow(0.9998, dt/0.1)
	}
	if g.cfg.ProbeOnRecovery {
		if g.probeRate > 0 && fb.Now >= g.probeUntil {
			// Probe window closed: exponential backoff on failure so a
			// saturated path is not probed (and disturbed) forever.
			if g.probeJumped {
				g.probeBackoff = 0
			} else if g.probeBackoff < 30*time.Second {
				g.probeBackoff = 2*g.probeBackoff + 1500*time.Millisecond
			}
			g.probeRate = 0
		}
		// Launch a new probe when sitting well below known-good with a
		// quiet path. The probe rate is modest (1.6x) so that a failed
		// probe does not wreck the queue it is measuring.
		if g.probeRate == 0 && fb.Now >= g.probeUntil && target < 0.8*g.lastGood &&
			fb.QueueDelay < g.gamma && fb.LossFraction < g.cfg.LossLow &&
			fb.Now-g.lastProbe > 1500*time.Millisecond+g.probeBackoff {
			g.probeRate = math.Min(1.6*target, 1.2*g.lastGood)
			g.probeUntil = fb.Now + time.Second
			g.lastProbe = fb.Now
			g.probeJumped = false
		}
	}
}

// Threshold exposes the current adaptive overuse threshold (for tests).
func (g *GCC) Threshold() time.Duration { return g.gamma }

// Snapshot exposes the controller's internal estimates for debugging and
// tests.
func (g *GCC) Snapshot() (delayRate, lossRate, lastGood float64, gamma time.Duration, state int) {
	return g.delayRate, g.lossRate, g.lastGood, g.gamma, int(g.state)
}
