package scenario

import (
	"vcalab/internal/cascade"
	"vcalab/internal/netem"
)

// meshResolver adapts a built cascade mesh to the LinkResolver interface.
type meshResolver struct{ m *cascade.Mesh }

// MeshLinks returns a LinkResolver over a built cascade mesh: client and
// SFU access links by host name, inter-region links by region index pair.
func MeshLinks(m *cascade.Mesh) LinkResolver { return meshResolver{m} }

// ResolveLink implements LinkResolver. Out-of-range region indices and
// unknown hosts resolve to nothing, so a scenario written for a larger
// topology degrades to a no-op rather than a panic.
func (r meshResolver) ResolveLink(ref LinkRef) []*netem.Link {
	n := r.m.Regions()
	switch ref.Kind {
	case LinkClientUp:
		if l := r.m.AccessUplink(ref.Client); l != nil {
			return []*netem.Link{l}
		}
	case LinkClientDown:
		if l := r.m.AccessDownlink(ref.Client); l != nil {
			return []*netem.Link{l}
		}
	case LinkInter:
		if ref.From != ref.To && ref.From >= 0 && ref.To >= 0 && ref.From < n && ref.To < n {
			return []*netem.Link{r.m.InterLink(ref.From, ref.To)}
		}
	case LinkInterPair:
		if ref.From != ref.To && ref.From >= 0 && ref.To >= 0 && ref.From < n && ref.To < n {
			return []*netem.Link{r.m.InterLink(ref.From, ref.To), r.m.InterLink(ref.To, ref.From)}
		}
	case LinkInterAll:
		return r.m.InterLinks()
	}
	return nil
}
