package scenario

import (
	"fmt"
	"testing"
	"time"

	"vcalab/internal/cascade"
	"vcalab/internal/netem"
	"vcalab/internal/sim"
	"vcalab/internal/vca"
)

// listResolver resolves every ref to a fixed link list (unit tests).
type listResolver struct{ links []*netem.Link }

func (r listResolver) ResolveLink(LinkRef) []*netem.Link { return r.links }

func TestTimelineAppliesInOrder(t *testing.T) {
	eng := sim.New(1)
	l := netem.NewLink(eng, "wire", netem.LinkConfig{RateBps: 8e6}, netem.HandlerFunc(func(p *netem.Packet) {}))
	sc := Scenario{Name: "t", Events: []Event{
		// Declared out of time order: the timeline must sort stably.
		ShapeLink(2*time.Second, LinkRef{}, Shape{SetRate: true, RateBps: 3e6}),
		ShapeLink(1*time.Second, LinkRef{}, Shape{SetRate: true, RateBps: 1e6}),
		// Same instant as the 2 s event: declaration order must hold, so
		// the 4 Mbps shape lands after the 3 Mbps one.
		ShapeLink(2*time.Second, LinkRef{}, Shape{SetRate: true, RateBps: 4e6}),
	}}
	tl := New(eng, nil, listResolver{[]*netem.Link{l}}, sc)
	tl.Start()
	eng.RunUntil(1500 * time.Millisecond)
	if got := l.Rate(); got != 1e6 {
		t.Errorf("rate after 1.5s = %v, want 1e6", got)
	}
	eng.RunUntil(3 * time.Second)
	if got := l.Rate(); got != 4e6 {
		t.Errorf("rate after 3s = %v, want 4e6 (same-instant declaration order)", got)
	}
	if !tl.Done() || tl.Applied() != 3 {
		t.Errorf("timeline done=%v applied=%d, want done with 3 applied", tl.Done(), tl.Applied())
	}
}

func TestTimelineShapeAspects(t *testing.T) {
	eng := sim.New(2)
	l := netem.NewLink(eng, "wire", netem.LinkConfig{RateBps: 10e6, Delay: 10 * time.Millisecond},
		netem.HandlerFunc(func(p *netem.Packet) {}))
	sc := Scenario{Name: "aspects", Events: []Event{
		ShapeLink(time.Second, LinkRef{}, Shape{SetDelay: true, Delay: 80 * time.Millisecond}),
		ShapeLink(2*time.Second, LinkRef{}, Shape{SetImpair: true, LossProb: 0.5, Jitter: 5 * time.Millisecond}),
		ShapeLink(3*time.Second, LinkRef{}, Shape{SetRate: true, RateBps: 1e6}),
	}}
	New(eng, nil, listResolver{[]*netem.Link{l}}, sc).Start()
	eng.RunUntil(4 * time.Second)
	if l.Delay() != 80*time.Millisecond {
		t.Errorf("delay = %v, want 80ms", l.Delay())
	}
	if l.Rate() != 1e6 {
		t.Errorf("rate = %v, want 1e6", l.Rate())
	}
	// The rate change must have resized the queue to the default depth
	// for the new rate (the `tc` reshape semantics the Lab uses).
	// 1 Mbps -> 200 ms -> 25 kB, above the 5-MTU floor.
	if want := netem.DefaultQueueBytes(1e6); want != 25000 {
		t.Fatalf("test premise: DefaultQueueBytes(1e6) = %d", want)
	}
}

// mesh2 builds a 2-region mesh with n participants round-robin.
func mesh2(eng *sim.Engine, n int, interMbps float64) *cascade.Mesh {
	assign := cascade.Assign(n, 2)
	return cascade.Build(eng, cascade.Topology{
		Regions: []cascade.Region{
			{Name: "r0", Clients: assign[0]},
			{Name: "r1", Clients: assign[1]},
		},
		Default: netem.LinkConfig{RateBps: interMbps * 1e6, Delay: 30 * time.Millisecond},
	})
}

func TestTimelinePreStartEventsThinRoster(t *testing.T) {
	eng := sim.New(3)
	mesh := mesh2(eng, 6, 20)
	call := mesh.NewCall(vca.Teams(), vca.CallOptions{Seed: 3})
	sc := Scenario{Name: "flash-crowd", Events: []Event{
		Leave(0, "c4"), Leave(0, "c5"), Leave(0, "c6"),
		Rejoin(10*time.Second, "c4"),
		Rejoin(11*time.Second, "c5"),
		Rejoin(12*time.Second, "c6"),
	}}
	tl := New(eng, call, MeshLinks(mesh), sc)
	tl.Start() // applies the t=0 leaves synchronously, before the call starts
	if call.Active("c4") || call.Active("c5") || call.Active("c6") {
		t.Fatal("pre-start leaves not applied before Call.Start")
	}
	call.Start()
	eng.RunUntil(20 * time.Second)
	call.Stop()
	for _, name := range []string{"c4", "c5", "c6"} {
		if !call.Active(name) {
			t.Errorf("%s not active after flash-crowd rejoin", name)
		}
	}
	if down := call.Clients[3].DownMeter.MeanRateMbps(15*time.Second, 20*time.Second); down <= 0 {
		t.Error("late joiner c4 receives no media")
	}
}

// TestChurnStormRegistryAcrossRegions is the scenario-driven churn-storm
// registry test: interleaved Leave/Rejoin waves across two regions with
// media in flight must keep the participant-ID space at its build-time
// density, never alias a recycled ID to another participant's state, and
// leave zero pooled engine events live once the simulation drains.
func TestChurnStormRegistryAcrossRegions(t *testing.T) {
	storm := func() (*sim.Engine, *vca.Call) {
		eng := sim.New(99)
		mesh := mesh2(eng, 8, 20)
		call := mesh.NewCall(vca.Meet(), vca.CallOptions{Seed: 99})
		tl := New(eng, call, MeshLinks(mesh), ChurnStorm(8))
		tl.Start()
		call.Start()
		eng.RunUntil(70 * time.Second)
		if !tl.Done() {
			t.Fatalf("churn storm not finished by 70s (applied %d)", tl.Applied())
		}
		call.Stop()
		return eng, call
	}

	eng, call := storm()
	if got, want := call.IDSpace(), 8+2; got != want {
		t.Errorf("ID space grew under churn storm: %d, want %d (8 clients + 2 SFUs)", got, want)
	}
	for i, cl := range call.Clients {
		name := fmt.Sprintf("c%d", i+1)
		if !call.Active(name) {
			t.Errorf("%s not active after storm", name)
		}
		seen := map[string]bool{}
		for _, origin := range cl.Origins() {
			if origin == "" {
				t.Fatalf("client %d holds a receiver bound to a freed ID", i)
			}
			if seen[origin] {
				t.Fatalf("client %d holds duplicate receivers for %q (recycled-ID aliasing)", i, origin)
			}
			seen[origin] = true
		}
	}
	if call.C1().DownMeter.MeanRateMbps(60*time.Second, 70*time.Second) <= 0 {
		t.Error("c1 receives nothing after the storm settles")
	}

	// Drain: with the call stopped, every in-flight packet and cancelled
	// ticker must come home — the pooled-event leak detector reads zero.
	eng.Run()
	if n := eng.Live(); n != 0 {
		t.Errorf("%d pooled engine events leaked after drain", n)
	}
	if n := eng.Pending(); n != 0 {
		t.Errorf("%d events still pending after drain", n)
	}

	// Determinism: the identical storm replays to identical byte counts.
	_, call2 := storm()
	for i := range call.Clients {
		b1 := call.Clients[i].DownMeter.TotalBytes()
		b2 := call2.Clients[i].DownMeter.TotalBytes()
		if b1 != b2 {
			t.Errorf("client %d bytes differ across identical storms: %v vs %v", i, b1, b2)
		}
	}
}

func TestCannedScenariosValidate(t *testing.T) {
	for _, name := range CannedNames() {
		sc, err := Canned(name, 12, 20e6)
		if err != nil {
			t.Fatalf("Canned(%s): %v", name, err)
		}
		if sc.Name != name {
			t.Errorf("Canned(%s) named %q", name, sc.Name)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("canned %s invalid: %v", name, err)
		}
		if len(sc.Events) == 0 {
			t.Errorf("canned %s has no events", name)
		}
		if len(sc.RecoveryPoints()) == 0 {
			t.Errorf("canned %s has no recovery points", name)
		}
	}
	if _, err := Canned("bogus", 12, 20e6); err == nil {
		t.Error("Canned(bogus) did not error")
	}
}

func TestScenarioValidate(t *testing.T) {
	bad := Scenario{Name: "bad", Events: []Event{{At: time.Second, Op: OpLeave}}}
	if err := bad.Validate(); err == nil {
		t.Error("unnamed churn target passed validation")
	}
	neg := Scenario{Name: "neg", Events: []Event{Leave(-time.Second, "c2")}}
	if err := neg.Validate(); err == nil {
		t.Error("negative event time passed validation")
	}
	defer func() {
		if recover() == nil {
			t.Error("New did not panic on invalid scenario")
		}
	}()
	New(sim.New(1), nil, nil, bad)
}

func TestTraceExpansion(t *testing.T) {
	ref := LinkRef{Kind: LinkClientUp, Client: "c1"}
	evs := Trace(ref, "lte", []TraceStep{{At: time.Second, RateBps: 1e6}, {At: 2 * time.Second, RateBps: 0}})
	if len(evs) != 2 {
		t.Fatalf("Trace produced %d events, want 2", len(evs))
	}
	for _, ev := range evs {
		if ev.Op != OpShape || !ev.Shape.SetRate || ev.Label != "lte" || ev.Ref != ref {
			t.Errorf("trace event malformed: %+v", ev)
		}
	}
	if evs[1].Shape.RateBps != 0 {
		t.Error("trace step to unconstrained lost its zero rate")
	}
}

// TestPartitionHealRecovers drives the region-partition scenario on a
// live Zoom call: during the partition cross-region media stops, after
// the heal it resumes.
func TestPartitionHealRecovers(t *testing.T) {
	eng := sim.New(7)
	mesh := mesh2(eng, 4, 20)
	call := mesh.NewCall(vca.Zoom(), vca.CallOptions{Seed: 7})
	New(eng, call, MeshLinks(mesh), RegionPartitionAndHeal(0, 1)).Start()
	call.Start()
	// c2 is homed in region 1; c1 in region 0. Partition runs 30s..45s:
	// cross-region media stops while the local region keeps flowing.
	eng.RunUntil(40 * time.Second)
	during := call.C1().DownMeter.MeanRateMbps(32*time.Second, 40*time.Second)
	full := call.C1().DownMeter.MeanRateMbps(20*time.Second, 28*time.Second)
	eng.RunUntil(75 * time.Second)
	call.Stop()
	if during >= full {
		t.Errorf("c1 download during partition (%.2f Mbps) not below pre-partition (%.2f)", during, full)
	}
	// The 15 s blackout surfaces as freeze time on c1's cross-region
	// receiver once media resumes (the gap is accounted at next display).
	if fr := call.C1().Receiver("c2").FreezeRatio(); fr < 0.05 {
		t.Errorf("c1's receiver for cross-region c2 shows freeze ratio %.3f, want >= 0.05 after a 15s partition", fr)
	}
	if cross := call.C1().DownMeter.MeanRateMbps(60*time.Second, 75*time.Second); cross <= 0 {
		t.Error("cross-region media never resumed after the heal")
	}
}
