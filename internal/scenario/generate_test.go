package scenario

import (
	"reflect"
	"testing"
	"time"
)

// TestGenerateDeterministic: equal (seed, cfg) yield the identical event
// list — the property the fuzz repro contract (`-fuzz 1 -seed S`) rests
// on — while adjacent seeds compose different timelines.
func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Participants: 8, Regions: 2, Dur: 60 * time.Second}
	a, b := Generate(17, cfg), Generate(17, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different scenarios")
	}
	c := Generate(18, cfg)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("seeds 17 and 18 generated identical event lists")
	}
}

// TestGenerateValidity sweeps many seeds and asserts the generator's
// contract: Validate passes, every event lands inside [Start, Dur-2s],
// the instrumented client c1 is never churned, and at least one event
// carries the Recover mark the dynamic experiment measures.
func TestGenerateValidity(t *testing.T) {
	cfg := GenConfig{Participants: 8, Regions: 2, Dur: 60 * time.Second}
	for seed := int64(0); seed < 100; seed++ {
		sc := Generate(seed, cfg)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(sc.Events) == 0 {
			t.Fatalf("seed %d: empty scenario", seed)
		}
		recovers := 0
		for _, ev := range sc.Events {
			if ev.At < 10*time.Second || ev.At > 58*time.Second {
				t.Fatalf("seed %d: event %q at %v outside [10s, 58s]", seed, ev.Label, ev.At)
			}
			if (ev.Op == OpLeave || ev.Op == OpRejoin) && ev.Who == "c1" {
				t.Fatalf("seed %d: generator churned c1", seed)
			}
			if ev.Recover {
				recovers++
			}
		}
		if recovers == 0 {
			t.Fatalf("seed %d: no Recover mark", seed)
		}
	}
}

// TestGenerateFitsShortCalls is the regression for the span-overflow bug:
// a long motif (a 25 s cellular trace, say) drawn for a short call used
// to land its restore event past Dur-2s, leaving the timeline unapplied.
// Spans must clamp to the available room at any duration.
func TestGenerateFitsShortCalls(t *testing.T) {
	for _, dur := range []time.Duration{14 * time.Second, 20 * time.Second, 30 * time.Second} {
		cfg := GenConfig{Participants: 6, Regions: 2, Dur: dur}
		for seed := int64(0); seed < 50; seed++ {
			sc := Generate(seed, cfg)
			if err := sc.Validate(); err != nil {
				t.Fatalf("dur %v seed %d: %v", dur, seed, err)
			}
			for _, ev := range sc.Events {
				if ev.At > dur-2*time.Second {
					t.Fatalf("dur %v seed %d: event %q at %v past %v", dur, seed, ev.Label, ev.At, dur-2*time.Second)
				}
			}
		}
	}
}

// TestGenerateChurnAlternates: per participant, leaves and rejoins
// strictly alternate and every leave is rejoined before the end — the
// precondition for the registry's dense-ID invariant to hold at drain.
func TestGenerateChurnAlternates(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		sc := Generate(seed, GenConfig{Participants: 8, Regions: 2, Dur: 60 * time.Second})
		gone := map[string]bool{}
		for _, ev := range sc.Events {
			switch ev.Op {
			case OpLeave:
				if gone[ev.Who] {
					t.Fatalf("seed %d: %s left twice", seed, ev.Who)
				}
				gone[ev.Who] = true
			case OpRejoin:
				if !gone[ev.Who] {
					t.Fatalf("seed %d: %s rejoined without leaving", seed, ev.Who)
				}
				delete(gone, ev.Who)
			}
		}
		if len(gone) != 0 {
			t.Fatalf("seed %d: participants still gone at the end: %v", seed, gone)
		}
	}
}

// TestReplayCannedScenarios: the invariant harness holds on the existing
// canned corpus, not just generated timelines.
func TestReplayCannedScenarios(t *testing.T) {
	for _, name := range CannedNames() {
		sc, err := Canned(name, 8, 10e6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if vs := Replay(sc, HarnessConfig{Seed: 1, Dur: 60 * time.Second}); len(vs) != 0 {
			t.Errorf("%s: %d violations: %v", name, len(vs), vs)
		}
	}
}

// TestFuzzSmoke replays a band of consecutive seeds through the full
// generate-and-verify loop; any violation fails with the offending seed.
func TestFuzzSmoke(t *testing.T) {
	n := int64(20)
	if testing.Short() {
		n = 4
	}
	for seed := int64(0); seed < n; seed++ {
		sc, vs := FuzzOne(seed, HarnessConfig{
			Participants: 6, Dur: 25 * time.Second, Seed: seed,
		})
		if len(vs) != 0 {
			t.Errorf("seed %d (%s, %d events): %v", seed, sc.Name, len(sc.Events), vs)
		}
	}
}
