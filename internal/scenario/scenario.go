// Package scenario is the dynamic-workload subsystem: a declarative,
// deterministic timeline of events scheduled against a running call.
//
// The IMC'21 paper measures the three VCAs under *changing* conditions —
// transient capacity drops, competing flows, participants joining — but a
// config-driven sweep can only express what its config struct anticipated.
// A Scenario instead is data: an ordered list of timestamped events
// (participant churn, per-link capacity/delay/loss re-shaping, mid-call
// layout reshapes), bound to a concrete call and topology at run time.
// Every experiment can compose with any scenario, and new workloads are
// new literals, not new code.
//
// # Mechanism
//
// A Timeline binds a Scenario to an engine, a call and a link resolver.
// It is itself a sim.Handler: one pooled engine event is in flight at any
// moment, carrying the timeline to its next due instant, where it applies
// every event due at that time in declaration order and re-arms for the
// next. Scheduling therefore allocates nothing per event and adds exactly
// one engine event per distinct event time — byte-identical output at any
// trial parallelism follows from each trial owning its own engine, as
// everywhere else in vcalab (see DESIGN.md §9).
package scenario

import (
	"fmt"
	"sort"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/obs"
	"vcalab/internal/sim"
	"vcalab/internal/vca"
)

// LinkKind selects how a link event's target resolves against the bound
// topology.
type LinkKind int

// Link target kinds.
const (
	// LinkClientUp / LinkClientDown target the named host's access link
	// (host→router, router→host).
	LinkClientUp LinkKind = iota
	LinkClientDown
	// LinkInter targets the directed inter-region link From→To.
	LinkInter
	// LinkInterPair targets both directions between regions From and To.
	LinkInterPair
	// LinkInterAll targets every directed inter-region link.
	LinkInterAll
)

// LinkRef names a link (or a set of links) declaratively; the Timeline's
// LinkResolver maps it to concrete netem links at apply time.
type LinkRef struct {
	Kind   LinkKind
	Client string // LinkClientUp / LinkClientDown: host name
	From   int    // LinkInter / LinkInterPair: region indices
	To     int
}

// Shape is one link reconfiguration. Each Set* flag gates its fields, so
// "set rate to unconstrained (0)" and "leave the rate alone" are both
// expressible; unset aspects keep their current values.
type Shape struct {
	SetRate bool
	RateBps float64 // 0 removes the constraint

	SetDelay bool
	Delay    time.Duration

	SetImpair bool
	LossProb  float64 // 1 severs the link (partition)
	Jitter    time.Duration

	// SetModel installs (or clears) a heterogeneous last-mile link model.
	SetModel bool
	Model    LinkModelSpec
}

// LinkModelKind selects which last-mile model a LinkModelSpec installs.
type LinkModelKind int

// Link-model kinds.
const (
	// ModelNone clears any installed loss model and AQM (it does not stop
	// a running cellular driver — bound those with CellularConfig.Until).
	ModelNone LinkModelKind = iota
	// ModelGE installs a Gilbert–Elliott bursty-loss chain (WiFi).
	ModelGE
	// ModelCellular starts a capacity-trace driver with handover gaps
	// (LTE/5G) against the link.
	ModelCellular
	// ModelBloat deepens the drop-tail queue, optionally with CoDel AQM.
	ModelBloat
)

// LinkModelSpec is the declarative form of a link model: pure data, bound
// to concrete netem machinery only when the timeline applies it. Seed
// feeds the model's private random source; when one event resolves to
// several links, each gets Seed offset by its resolution index so parallel
// last miles decorrelate.
type LinkModelSpec struct {
	Kind  LinkModelKind
	Seed  int64
	GE    netem.GEConfig
	Cell  netem.CellularConfig
	Bloat netem.BloatConfig
}

// Op is the action an Event performs.
type Op int

// Event operations.
const (
	// OpLeave / OpRejoin churn the named participant (the call's roster
	// is fixed at build; churn toggles membership, as production calls
	// admit from a known tenant set).
	OpLeave Op = iota
	OpRejoin
	// OpMode switches the call's viewing modality (gallery ↔ speaker).
	OpMode
	// OpShape reconfigures the links Ref resolves to.
	OpShape
)

// Event is one timeline entry. Build events with the Leave, Rejoin, Mode
// and ShapeLink constructors; the fields are exported so canned scenarios
// remain plain data.
type Event struct {
	At    time.Duration
	Op    Op
	Label string // optional: names the event in reports
	// Recover marks an event whose aftermath the dynamic experiment
	// measures: time until the instrumented client's download rate
	// returns to its pre-event nominal (the paper's §4 TTR metric).
	Recover bool

	Who   string       // OpLeave / OpRejoin
	Mode  vca.ViewMode // OpMode
	Ref   LinkRef      // OpShape
	Shape Shape        // OpShape
}

// Leave returns a participant-leave event.
func Leave(at time.Duration, who string) Event {
	return Event{At: at, Op: OpLeave, Who: who}
}

// Rejoin returns a participant-rejoin event.
func Rejoin(at time.Duration, who string) Event {
	return Event{At: at, Op: OpRejoin, Who: who}
}

// Mode returns a viewing-modality switch event.
func Mode(at time.Duration, m vca.ViewMode) Event {
	return Event{At: at, Op: OpMode, Mode: m}
}

// ShapeLink returns a link re-shaping event.
func ShapeLink(at time.Duration, ref LinkRef, sh Shape) Event {
	return Event{At: at, Op: OpShape, Ref: ref, Shape: sh}
}

// ModelLink returns an event installing (or, with ModelNone, clearing) a
// last-mile link model on the links ref resolves to.
func ModelLink(at time.Duration, ref LinkRef, spec LinkModelSpec) Event {
	return Event{At: at, Op: OpShape, Ref: ref, Shape: Shape{SetModel: true, Model: spec}}
}

// TraceStep is one segment of a per-link capacity trace — the §4
// two-level disruption and the experiment package's bandwidth traces are
// special cases, generalized here to any shaped link of the topology.
type TraceStep struct {
	At      time.Duration
	RateBps float64 // 0 = unconstrained
}

// Trace expands a capacity trace into shape events against one link ref.
// The label is applied to every step (reports show "label@t").
func Trace(ref LinkRef, label string, steps []TraceStep) []Event {
	events := make([]Event, 0, len(steps))
	for _, st := range steps {
		ev := ShapeLink(st.At, ref, Shape{SetRate: true, RateBps: st.RateBps})
		ev.Label = label
		events = append(events, ev)
	}
	return events
}

// Scenario is a named, ordered event timeline. Scenarios are pure data:
// they reference participants by host name and links by LinkRef, so one
// scenario replays against any topology that can resolve them.
type Scenario struct {
	Name   string
	Events []Event
}

// Validate reports the first structurally invalid event (a churn op with
// no participant name, a negative timestamp).
func (sc Scenario) Validate() error {
	for i, ev := range sc.Events {
		if ev.At < 0 {
			return fmt.Errorf("scenario %s: event %d at negative time %v", sc.Name, i, ev.At)
		}
		if (ev.Op == OpLeave || ev.Op == OpRejoin) && ev.Who == "" {
			return fmt.Errorf("scenario %s: event %d churns an unnamed participant", sc.Name, i)
		}
		if ev.Op == OpShape && ev.Shape.SetModel {
			m := ev.Shape.Model
			if m.Kind < ModelNone || m.Kind > ModelBloat {
				return fmt.Errorf("scenario %s: event %d has unknown link-model kind %d", sc.Name, i, m.Kind)
			}
			if m.Kind == ModelCellular && m.Cell.HandoverEvery > 0 && m.Cell.Until <= 0 {
				return fmt.Errorf("scenario %s: event %d starts cellular handovers with no Until bound", sc.Name, i)
			}
		}
	}
	return nil
}

// RecoveryPoints lists the events marked Recover, in timeline order —
// the measurement schedule the dynamic experiment reports against.
func (sc Scenario) RecoveryPoints() []Event {
	var out []Event
	for _, ev := range sc.Events {
		if ev.Recover {
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// LinkResolver maps a declarative LinkRef to the concrete links it names
// in one built topology. Resolution happens at event-apply cadence (cold
// path); returning nil or an empty slice makes the event a no-op, so a
// scenario written for a 3-region mesh degrades gracefully on a smaller
// one.
type LinkResolver interface {
	ResolveLink(ref LinkRef) []*netem.Link
}

// Timeline is a Scenario bound to a running engine, call and topology.
// Create one with New, then Start it; the timeline drives itself through
// pooled engine events from there.
type Timeline struct {
	eng     *sim.Engine
	call    *vca.Call
	links   LinkResolver
	events  []Event // stably sorted by At
	next    int
	applied int
	started bool
	scratch []*netem.Link // reused per shape event; no per-event allocs
	tracer  *obs.Tracer   // applied-op events; set via SetTracer
}

// SetTracer attaches (or, with nil, detaches) an event tracer recording
// every applied timeline op.
func (t *Timeline) SetTracer(tr *obs.Tracer) { t.tracer = tr }

// opName returns the JSONL spelling of a timeline op.
func opName(op Op) string {
	switch op {
	case OpLeave:
		return "leave"
	case OpRejoin:
		return "rejoin"
	case OpMode:
		return "mode"
	case OpShape:
		return "shape"
	}
	return "unknown"
}

// New binds a scenario to an engine, call and link resolver. The event
// list is copied and stably sorted by time, so same-instant events apply
// in declaration order. It panics on an invalid scenario — a scenario is
// static data, so this is always a construction bug.
func New(eng *sim.Engine, call *vca.Call, links LinkResolver, sc Scenario) *Timeline {
	if err := sc.Validate(); err != nil {
		panic("scenario: " + err.Error())
	}
	t := &Timeline{eng: eng, call: call, links: links}
	t.events = append(t.events, sc.Events...)
	sort.SliceStable(t.events, func(i, j int) bool { return t.events[i].At < t.events[j].At })
	return t
}

// Start applies every event due at or before the current virtual time
// synchronously — a scenario whose timeline begins at 0 can thin the
// roster before Call.Start, which is how flash-crowd scenarios begin
// small — then schedules the remainder through the engine. Start is
// idempotent.
func (t *Timeline) Start() {
	if t.started {
		return
	}
	t.started = true
	t.run(t.eng.Now())
}

// OnEvent implements sim.Handler: the timeline reached its next due
// instant. Do not call it directly.
func (t *Timeline) OnEvent(now time.Duration) { t.run(now) }

func (t *Timeline) run(now time.Duration) {
	for t.next < len(t.events) && t.events[t.next].At <= now {
		t.apply(&t.events[t.next])
		t.next++
		t.applied++
	}
	if t.next < len(t.events) {
		t.eng.AtHandler(t.events[t.next].At, t)
	}
}

// Applied reports how many events have been applied so far.
func (t *Timeline) Applied() int { return t.applied }

// Done reports whether every event has been applied.
func (t *Timeline) Done() bool { return t.next >= len(t.events) }

func (t *Timeline) apply(ev *Event) {
	if t.tracer != nil {
		t.tracer.Scenario(t.eng.Now(), ev.Label, opName(ev.Op), ev.Who)
	}
	switch ev.Op {
	case OpLeave:
		t.call.Leave(ev.Who)
	case OpRejoin:
		t.call.Rejoin(ev.Who)
	case OpMode:
		t.call.SetMode(ev.Mode)
	case OpShape:
		t.scratch = t.scratch[:0]
		if t.links != nil {
			t.scratch = append(t.scratch, t.links.ResolveLink(ev.Ref)...)
		}
		for i, l := range t.scratch {
			t.applyShape(l, ev.Shape, i)
		}
	}
}

// applyShape reconfigures one link. Rate changes resize the drop-tail
// queue to the default depth for the new rate, matching Lab.SetUplink's
// `tc` semantics. idx is the link's position within the event's
// resolution, used to decorrelate per-link model seeds.
func (t *Timeline) applyShape(l *netem.Link, sh Shape, idx int) {
	if sh.SetRate {
		l.SetRate(sh.RateBps)
		if sh.RateBps > 0 {
			l.SetQueueBytes(netem.DefaultQueueBytes(sh.RateBps))
		}
	}
	if sh.SetDelay {
		l.SetDelay(sh.Delay)
	}
	if sh.SetImpair {
		l.SetImpairment(sh.LossProb, sh.Jitter)
	}
	if sh.SetModel {
		t.applyModel(l, sh.Model, idx)
	}
}

// applyModel binds a declarative link-model spec to one concrete link.
func (t *Timeline) applyModel(l *netem.Link, spec LinkModelSpec, idx int) {
	seed := spec.Seed + int64(idx)
	switch spec.Kind {
	case ModelNone:
		l.SetLossModel(nil)
		l.SetAQM(nil)
	case ModelGE:
		l.SetLossModel(netem.NewGilbertElliott(seed, spec.GE))
	case ModelCellular:
		// The handover ticker must live on the link's own engine: in a
		// sharded run the link belongs to a region shard, and pausing it
		// from another engine's event would race. Identical to t.eng in a
		// sequential run.
		netem.NewCellular(l.Engine(), l, seed, spec.Cell).Start()
	case ModelBloat:
		netem.ApplyBloat(l, spec.Bloat)
	}
}
