package scenario

import (
	"fmt"
	"time"

	"vcalab/internal/cascade"
	"vcalab/internal/netem"
	"vcalab/internal/obs"
	"vcalab/internal/sim"
	"vcalab/internal/vca"
)

// The invariant harness: replay any scenario — canned, hand-written or
// generated — against a fresh cascaded call and assert the structural
// invariants that every vcalab simulation owes, whatever the workload:
//
//   - the timeline finished (no event was scheduled past the run);
//   - the drained engine holds zero live pooled events and zero pending
//     events (sim.Engine.Live, the PR-3 leak detector);
//   - the participant-ID space never grew past its build-time density and
//     no receiver aliases a recycled ID (the PR-4 registry guarantees);
//   - freeze and recovery accounting stays inside sanity bounds (ratios
//     in [0,1], freeze time no longer than the call);
//   - netem packet-pool conservation: once drained, every host pool reads
//     zero outstanding packets — a drop path that forgets Release is a
//     violation, not a silent slow leak;
//   - drop conservation: replay runs with tracing enabled, and the
//     tracer's cumulative drop-event count must equal the sum of every
//     link's drop counter.
//
// The harness is what the fuzz smoke (vcabench -fuzz, CI) and the
// generator tests replay seeds through.

// HarnessConfig describes the call a scenario replays against. The
// topology fields must cover the scenario (participants it churns,
// regions it partitions).
type HarnessConfig struct {
	// Profile is the VCA under test (default Meet).
	Profile *vca.Profile
	// Participants is the roster size (default 8).
	Participants int
	// Regions is the number of SFU sites (default 2).
	Regions int
	// InterBps is the inter-region link capacity (default 10e6).
	InterBps float64
	// InterDelay is the one-way inter-region delay (default 30 ms).
	InterDelay time.Duration
	// Dur is the call duration (default 60s).
	Dur time.Duration
	// Seed seeds the engine and call.
	Seed int64
	// Shards selects region-sharded parallel execution (<= 1 runs the
	// sequential engine; values above the region count are capped, and a
	// topology with no positive cross-shard delay floor falls back to
	// sequential). Every invariant below is asserted per shard.
	Shards int
	// Recovery enables packet-level loss recovery on the replayed call,
	// adding its conservation invariants: every RTX clone released, NACK
	// queues empty after the drain, and no more retransmissions traced
	// as delivered than NACKs were sent.
	Recovery bool
}

func (c *HarnessConfig) defaults() {
	if c.Profile == nil {
		c.Profile = vca.Meet()
	}
	if c.Participants == 0 {
		c.Participants = 8
	}
	if c.Regions == 0 {
		c.Regions = 2
	}
	if c.InterBps == 0 {
		c.InterBps = 10e6
	}
	if c.InterDelay == 0 {
		c.InterDelay = 30 * time.Millisecond
	}
	if c.Dur == 0 {
		c.Dur = 60 * time.Second
	}
}

// Violation is one failed invariant, with enough detail to debug the
// offending replay.
type Violation struct {
	Invariant string // short id: "event-pool", "id-aliasing", ...
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

func violationf(out []Violation, inv, format string, args ...any) []Violation {
	return append(out, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

// Replay runs sc against a fresh cascaded call per cfg and returns every
// invariant violation observed (nil on a clean replay).
func Replay(sc Scenario, cfg HarnessConfig) []Violation {
	cfg.defaults()
	var out []Violation
	if err := sc.Validate(); err != nil {
		// An invalid scenario is a generator bug, not a sim bug; report
		// it as a violation so fuzz runs surface it with the seed.
		return violationf(out, "validate", "%v", err)
	}

	assign := cascade.Assign(cfg.Participants, cfg.Regions)
	topo := cascade.Topology{
		Default: netem.LinkConfig{RateBps: cfg.InterBps, Delay: cfg.InterDelay},
	}
	for r := 0; r < cfg.Regions; r++ {
		topo.Regions = append(topo.Regions, cascade.Region{
			Name: fmt.Sprintf("r%d", r), Clients: assign[r],
		})
	}
	var (
		mesh *cascade.Mesh
		sm   *cascade.ShardedMesh
		eng  *sim.Engine // the control engine of a sharded run
		call *vca.Call
	)
	if plan := cascade.PlanShards(topo, cfg.Shards); plan.NumShards > 1 {
		sm = cascade.BuildSharded(cfg.Seed, topo, plan)
		defer sm.Group.Close()
		mesh, eng = sm.Mesh, sm.Eng
		call = sm.NewCall(cfg.Profile, vca.CallOptions{Seed: cfg.Seed, Recovery: cfg.Recovery})
	} else {
		eng = sim.New(cfg.Seed)
		mesh = cascade.Build(eng, topo)
		call = mesh.NewCall(cfg.Profile, vca.CallOptions{Seed: cfg.Seed, Recovery: cfg.Recovery})
	}
	tl := New(eng, call, MeshLinks(mesh), sc)
	// Replay always runs traced: it both exercises the instrumented paths
	// under fuzz and feeds the drop-conservation cross-check below. The
	// ring may wrap on a loss-heavy scenario — that is fine, because the
	// per-kind counts are cumulative. A sharded replay gets one tracer
	// per shard plus the control tracer (churn + timeline), exactly the
	// sharded experiment wiring.
	ctrlTr := obs.NewTracer(1 << 12)
	tracers := []*obs.Tracer{ctrlTr}
	if sm != nil {
		shardTr := make([]*obs.Tracer, len(sm.ShardEngines))
		for k := range shardTr {
			shardTr[k] = obs.NewTracer(1 << 12)
			tracers = append(tracers, shardTr[k])
		}
		sm.ShardTracers(call, shardTr)
		call.SetChurnTracer(ctrlTr)
	} else {
		for _, l := range mesh.Links() {
			l.SetTracer(ctrlTr)
		}
		call.SetTracer(ctrlTr)
	}
	tl.SetTracer(ctrlTr)
	tl.Start()
	call.Start()
	if sm != nil {
		sm.Group.RunUntil(cfg.Dur)
	} else {
		eng.RunUntil(cfg.Dur)
	}
	call.Stop()

	if !tl.Done() {
		out = violationf(out, "timeline",
			"scenario %s: %d of %d events unapplied at t=%v", sc.Name, len(sc.Events)-tl.Applied(), len(sc.Events), cfg.Dur)
	}

	// Drain: with the call stopped, every in-flight packet, model event
	// and cancelled ticker must come home — on every shard.
	if sm != nil {
		sm.Group.Run()
		for k, se := range sm.ShardEngines {
			if n := se.Live(); n != 0 {
				out = violationf(out, "event-pool", "shard %d: %d pooled engine events live after drain", k, n)
			}
			if n := se.Pending(); n != 0 {
				out = violationf(out, "event-pool", "shard %d: %d events still pending after drain", k, n)
			}
		}
		for bi, l := range sm.BoundaryLinks() {
			if n := l.BoundaryPoolLive(); n != 0 {
				out = violationf(out, "packet-pool", "boundary link %s (dst region %d) leaks %d envelopes", l.Name(), sm.BoundaryDst(bi), n)
			}
		}
	} else {
		eng.Run()
	}
	if n := eng.Live(); n != 0 {
		out = violationf(out, "event-pool", "%d pooled engine events live after drain", n)
	}
	if n := eng.Pending(); n != 0 {
		out = violationf(out, "event-pool", "%d events still pending after drain", n)
	}

	// Registry density and recycled-ID aliasing.
	if got, want := call.IDSpace(), cfg.Participants+cfg.Regions; got != want {
		out = violationf(out, "id-space",
			"ID space %d, want %d (%d clients + %d SFUs): churn grew the registry", got, want, cfg.Participants, cfg.Regions)
	}
	for i, cl := range call.Clients {
		seen := map[string]bool{}
		for _, origin := range cl.Origins() {
			if origin == "" {
				out = violationf(out, "id-aliasing", "client %d holds a receiver bound to a freed ID", i)
				continue
			}
			if seen[origin] {
				out = violationf(out, "id-aliasing", "client %d holds duplicate receivers for %q", i, origin)
			}
			seen[origin] = true
		}

		// Freeze and recovery accounting sanity.
		for _, origin := range cl.Origins() {
			r := cl.Receiver(origin)
			if fr := r.FreezeRatio(); fr < 0 || fr > 1 {
				out = violationf(out, "freeze-accounting",
					"client %d receiver %s freeze ratio %v outside [0,1]", i, origin, fr)
			}
			if ft := r.FreezeTime(); ft < 0 || ft > cfg.Dur {
				out = violationf(out, "freeze-accounting",
					"client %d receiver %s freeze time %v outside [0, %v]", i, origin, ft, cfg.Dur)
			}
			if r.FreezeCount() < 0 {
				out = violationf(out, "freeze-accounting",
					"client %d receiver %s negative freeze count", i, origin)
			}
		}
	}

	// Loss-recovery conservation (recovery-enabled replays only; with
	// recovery off every quantity below is structurally zero).
	if cfg.Recovery {
		// Client stop flushed every jitter buffer, so no NACK may still
		// be pending anywhere.
		if n := call.PendingNacks(); n != 0 {
			out = violationf(out, "nack-queue", "%d NACKs pending after Stop", n)
		}
		// The SFUs never answer more retransmissions than seqs were
		// NACKed at them...
		nacks, rtx := call.NackRTXTotals()
		if rtx > nacks {
			out = violationf(out, "rtx-conservation",
				"SFUs answered %d retransmissions for %d NACKed seqs", rtx, nacks)
		}
		// ...and no client can see more RTX deliveries than NACKs it
		// sent (EvNackSent fires per seq per retry, EvRTXDeliver per
		// retransmission that healed a gap). Counts are cumulative
		// across ring wraparound, so this holds on loss-heavy replays.
		var nackEv, rtxEv uint64
		for _, tr := range tracers {
			nackEv += tr.Count(obs.EvNackSent)
			rtxEv += tr.Count(obs.EvRTXDeliver)
		}
		if rtxEv > nackEv {
			out = violationf(out, "rtx-conservation",
				"traced %d RTX deliveries for %d NACKs sent", rtxEv, nackEv)
		}
		// Clone conservation: draining the RTX buffers returns every
		// payload clone the SFUs ever made to its pool.
		call.DrainRecovery()
		if n := call.RTXClonesLive(); n != 0 {
			out = violationf(out, "rtx-conservation",
				"%d RTX payload clones live after DrainRecovery", n)
		}
	}

	// Drop conservation: every packet the links counted as dropped must
	// have produced exactly one traced drop event, and vice versa. A
	// drop path that bypasses the instrumented Link.drop (or a tracer
	// hook that double-fires) shows up here.
	var linkDrops uint64
	for _, l := range mesh.Links() {
		linkDrops += l.Drops
	}
	var traced uint64
	for _, tr := range tracers {
		traced += tr.Count(obs.EvDrop)
	}
	if traced != linkDrops {
		out = violationf(out, "drop-conservation",
			"tracers recorded %d drop events, link counters total %d", traced, linkDrops)
	}

	// Packet-pool conservation across every host of the topology.
	for _, h := range mesh.SFUs {
		if n := h.PoolLive(); n != 0 {
			out = violationf(out, "packet-pool", "host %s leaks %d pooled packets", h.Name, n)
		}
	}
	for _, region := range mesh.Clients {
		for _, h := range region {
			if n := h.PoolLive(); n != 0 {
				out = violationf(out, "packet-pool", "host %s leaks %d pooled packets", h.Name, n)
			}
		}
	}
	return out
}

// FuzzOne generates seed's scenario for the harness topology and replays
// it, returning the scenario alongside any violations: the single-seed
// reproduction path behind `vcabench -fuzz`.
func FuzzOne(seed int64, cfg HarnessConfig) (Scenario, []Violation) {
	cfg.defaults()
	sc := Generate(seed, GenConfig{
		Participants: cfg.Participants,
		Regions:      cfg.Regions,
		InterBps:     cfg.InterBps,
		Dur:          cfg.Dur,
	})
	return sc, Replay(sc, cfg)
}
