package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/runner"
	"vcalab/internal/vca"
)

// The seeded scenario generator: turns the five canned timelines into an
// unbounded scenario space. Generate(seed, cfg) composes a random number
// of disturbance "motifs" — churn bursts, capacity dips, region
// partitions, modality flips, and the heterogeneous last-mile link models
// (WiFi bursty loss, cellular traces with handover gaps, bufferbloat with
// and without AQM) — into one valid, fully seed-deterministic Scenario.
//
// Validity guarantees the invariant harness relies on:
//
//   - every event lands in [cfg.Start, cfg.Dur - 2s], so a timeline bound
//     to a call running for cfg.Dur always finishes;
//   - c1 (the instrumented client) is never churned;
//   - per participant, leaves and rejoins strictly alternate, and every
//     leave has a rejoin before the end;
//   - every partition is healed and every cellular model's Until bound
//     lies inside the run, so the engine always drains;
//   - at least one restore-style event is marked Recover.

// GenConfig bounds the generated scenario space. The zero value selects
// the harness defaults; the topology fields must match the call the
// scenario will replay against.
type GenConfig struct {
	// Participants is the roster size ("c1".."cN"; default 8).
	Participants int
	// Regions is the number of SFU sites (default 2).
	Regions int
	// InterBps is the nominal inter-region capacity the restore events
	// return to (default 10e6).
	InterBps float64
	// Dur is the call duration the scenario must fit inside (default 60s).
	Dur time.Duration
	// Start is the earliest event time — leave it past the experiment
	// warmup so recovery nominals see steady state (default 10s).
	Start time.Duration
	// MinMotifs/MaxMotifs bound how many disturbance motifs are composed
	// (defaults 3 and 6).
	MinMotifs, MaxMotifs int
}

func (c *GenConfig) defaults() {
	if c.Participants == 0 {
		c.Participants = 8
	}
	if c.Regions == 0 {
		c.Regions = 2
	}
	if c.InterBps == 0 {
		c.InterBps = 10e6
	}
	if c.Dur == 0 {
		c.Dur = 60 * time.Second
	}
	if c.Start == 0 {
		c.Start = 10 * time.Second
	}
	if c.MinMotifs == 0 {
		c.MinMotifs = 3
	}
	if c.MaxMotifs < c.MinMotifs {
		c.MaxMotifs = c.MinMotifs + 3
	}
}

// generator carries the composition state: the RNG, the config, the
// events built so far, and the per-participant churn bookkeeping.
type generator struct {
	rng *rand.Rand
	cfg GenConfig
	sc  Scenario
	// free[i] is the earliest time participant ci may be churned again
	// (1-indexed; free[1] is pinned to "never" — c1 stays).
	free []time.Duration
	// restores indexes restore-style events eligible for a Recover mark.
	restores []int
	marked   bool
}

// Generate composes a pseudo-random, seed-deterministic scenario. Equal
// (seed, cfg) always yield the identical event list; the generator draws
// from its own source, never the engine's.
func Generate(seed int64, cfg GenConfig) Scenario {
	cfg.defaults()
	g := &generator{
		// runner.Seed is the splitmix64 mixer: sequential seeds map to
		// decorrelated streams, so -fuzz can walk seed, seed+1, ...
		rng:  rand.New(rand.NewSource(runner.Seed(seed, 0))),
		cfg:  cfg,
		sc:   Scenario{Name: fmt.Sprintf("gen-%d", seed)},
		free: make([]time.Duration, cfg.Participants+1),
	}
	g.free[1] = cfg.Dur + time.Hour // c1 is never churned

	motifs := cfg.MinMotifs
	if span := cfg.MaxMotifs - cfg.MinMotifs; span > 0 {
		motifs += g.rng.Intn(span + 1)
	}
	for i := 0; i < motifs; i++ {
		switch g.rng.Intn(7) {
		case 0:
			g.churnBurst()
		case 1:
			g.dipRestore()
		case 2:
			g.partitionHeal()
		case 3:
			g.modeFlip()
		case 4:
			g.wifiBurst()
		case 5:
			g.cellularEpisode()
		case 6:
			g.bloatEpisode()
		}
	}
	// The dynamic experiment measures recovery points; guarantee one.
	if !g.marked && len(g.restores) > 0 {
		g.sc.Events[g.restores[len(g.restores)-1]].Recover = true
	}
	return g.sc
}

// window picks a motif start time leaving room for span before the
// scenario's end margin.
func (g *generator) window(span time.Duration) time.Duration {
	end := g.cfg.Dur - 2*time.Second - span
	if end <= g.cfg.Start {
		return g.cfg.Start
	}
	return g.cfg.Start + time.Duration(g.rng.Int63n(int64(end-g.cfg.Start)))
}

// dur draws a duration uniformly in [lo, hi).
func (g *generator) dur(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(g.rng.Int63n(int64(hi-lo)))
}

// fit clamps a motif span so its last event — at t0+span+extra even when
// window collapses t0 to Start — still lands inside [Start, Dur-2s].
// Without the clamp a long motif overflows a short call (window only
// clamps the start, not the end). Clamping after the draw keeps the RNG
// stream, and so every other motif, identical across call durations.
func (g *generator) fit(span, extra time.Duration) time.Duration {
	room := g.cfg.Dur - 2*time.Second - g.cfg.Start - extra
	if span > room {
		span = room
	}
	if span < 0 {
		span = 0
	}
	return span
}

// add appends ev; restore marks it Recover-eligible (with a coin flip
// deciding an immediate mark).
func (g *generator) add(ev Event, restore bool) {
	g.sc.Events = append(g.sc.Events, ev)
	if restore {
		g.restores = append(g.restores, len(g.sc.Events)-1)
		if g.rng.Intn(3) == 0 {
			g.sc.Events[len(g.sc.Events)-1].Recover = true
			g.marked = true
		}
	}
}

// clientRef draws a shaped-side reference to a random participant's
// access link (c1 included: shaping the instrumented client is exactly
// the paper's workload).
func (g *generator) clientRef(up bool) (LinkRef, string) {
	who := fmt.Sprintf("c%d", 1+g.rng.Intn(g.cfg.Participants))
	kind := LinkClientDown
	if up {
		kind = LinkClientUp
	}
	return LinkRef{Kind: kind, Client: who}, who
}

// churnBurst staggers 1-3 leaves and rejoins them a few seconds later,
// honoring per-participant alternation.
func (g *generator) churnBurst() {
	if g.cfg.Participants < 2 {
		g.dipRestore() // nobody but c1 to churn
		return
	}
	span := g.fit(g.dur(4*time.Second, 9*time.Second), time.Second)
	t0 := g.window(span + time.Second)
	want := 1 + g.rng.Intn(3)
	start := 2 + g.rng.Intn(g.cfg.Participants) // rotate who churns
	var picked []int
	for i := 0; i < g.cfg.Participants && len(picked) < want; i++ {
		p := 2 + (start+i-2)%(g.cfg.Participants-1)
		if g.free[p] <= t0 {
			picked = append(picked, p)
		}
	}
	for k, p := range picked {
		off := time.Duration(k) * 250 * time.Millisecond
		who := fmt.Sprintf("c%d", p)
		g.add(Leave(t0+off, who), false)
		rj := Rejoin(t0+span+off, who)
		if k == len(picked)-1 {
			rj.Label = "churn-rejoined"
		}
		g.add(rj, k == len(picked)-1)
		g.free[p] = t0 + span + off + time.Second
	}
}

// dipRestore drops one link set's capacity and restores it.
func (g *generator) dipRestore() {
	span := g.fit(g.dur(4*time.Second, 10*time.Second), 0)
	t0 := g.window(span)
	var ref LinkRef
	var dip, restore float64
	if g.cfg.Regions > 1 && g.rng.Intn(3) == 0 {
		ref = LinkRef{Kind: LinkInterAll}
		dip = g.cfg.InterBps * (0.1 + 0.3*g.rng.Float64())
		restore = g.cfg.InterBps
	} else {
		ref, _ = g.clientRef(g.rng.Intn(2) == 0)
		dip = 0.3e6 + 1.7e6*g.rng.Float64()
		restore = 0 // back to unconstrained
	}
	ev := ShapeLink(t0, ref, Shape{SetRate: true, RateBps: dip})
	ev.Label = "dip"
	g.add(ev, false)
	rs := ShapeLink(t0+span, ref, Shape{SetRate: true, RateBps: restore})
	rs.Label = "dip-restored"
	g.add(rs, true)
}

// partitionHeal severs a random region pair and heals it.
func (g *generator) partitionHeal() {
	if g.cfg.Regions < 2 {
		g.dipRestore()
		return
	}
	span := g.fit(g.dur(3*time.Second, 8*time.Second), 0)
	t0 := g.window(span)
	a := g.rng.Intn(g.cfg.Regions)
	b := (a + 1 + g.rng.Intn(g.cfg.Regions-1)) % g.cfg.Regions
	ref := LinkRef{Kind: LinkInterPair, From: a, To: b}
	cut := ShapeLink(t0, ref, Shape{SetImpair: true, LossProb: 1})
	cut.Label = fmt.Sprintf("partition-r%d-r%d", a, b)
	g.add(cut, false)
	heal := ShapeLink(t0+span, ref, Shape{SetImpair: true, LossProb: 0})
	heal.Label = "healed"
	g.add(heal, true)
}

// modeFlip pins the speaker and returns to gallery.
func (g *generator) modeFlip() {
	span := g.fit(g.dur(4*time.Second, 10*time.Second), 0)
	t0 := g.window(span)
	pin := Mode(t0, vca.Speaker)
	pin.Label = "speaker-pinned"
	g.add(pin, false)
	unpin := Mode(t0+span, vca.Gallery)
	unpin.Label = "gallery-restored"
	g.add(unpin, true)
}

// wifiBurst installs a Gilbert–Elliott loss chain on one access link for
// a few seconds, then clears it.
func (g *generator) wifiBurst() {
	span := g.fit(g.dur(5*time.Second, 12*time.Second), 0)
	t0 := g.window(span)
	ref, _ := g.clientRef(g.rng.Intn(2) == 0)
	spec := LinkModelSpec{
		Kind: ModelGE,
		Seed: g.rng.Int63(),
		GE:   netem.WiFiBursty(0.02+0.08*g.rng.Float64(), 2+6*g.rng.Float64()),
	}
	ev := ModelLink(t0, ref, spec)
	ev.Label = "wifi"
	g.add(ev, false)
	clear := ModelLink(t0+span, ref, LinkModelSpec{Kind: ModelNone})
	clear.Label = "wifi-cleared"
	g.add(clear, true)
}

// cellularEpisode rides one client's uplink through a stepped capacity
// trace with handover gaps, then restores the link to unconstrained.
func (g *generator) cellularEpisode() {
	steps := 3 + g.rng.Intn(3)
	spacing := g.dur(2*time.Second, 5*time.Second)
	// Steps at or past Until simply never fire (Cellular skips them), so
	// clamping the span only trims the trace on short calls.
	span := g.fit(time.Duration(steps)*spacing, time.Second)
	t0 := g.window(span + time.Second)
	cell := netem.CellularConfig{
		HandoverEvery:  g.dur(6*time.Second, 12*time.Second),
		HandoverJitter: 2 * time.Second,
		HandoverGap:    g.dur(300*time.Millisecond, 1200*time.Millisecond),
		Until:          t0 + span,
	}
	for s := 0; s < steps; s++ {
		cell.Steps = append(cell.Steps, netem.RateStep{
			At:  time.Duration(s) * spacing,
			Bps: 0.4e6 + 3.6e6*g.rng.Float64(),
		})
	}
	ref, _ := g.clientRef(true)
	ev := ModelLink(t0, ref, LinkModelSpec{Kind: ModelCellular, Seed: g.rng.Int63(), Cell: cell})
	ev.Label = "cellular"
	g.add(ev, false)
	rs := ShapeLink(t0+span+time.Second, ref, Shape{SetRate: true, RateBps: 0})
	rs.Label = "cell-restored"
	g.add(rs, true)
}

// bloatEpisode rate-limits one access link with a deep buffer (CoDel on a
// coin flip), then restores it.
func (g *generator) bloatEpisode() {
	span := g.fit(g.dur(6*time.Second, 12*time.Second), 0)
	t0 := g.window(span)
	ref, _ := g.clientRef(g.rng.Intn(2) == 0)
	sh := Shape{
		SetRate: true, RateBps: 0.8e6 + 1.7e6*g.rng.Float64(),
		SetModel: true, Model: LinkModelSpec{
			Kind: ModelBloat,
			Bloat: netem.BloatConfig{
				Depth: g.dur(time.Second, 3*time.Second),
				AQM:   g.rng.Intn(2) == 0,
			},
		},
	}
	ev := ShapeLink(t0, ref, sh)
	ev.Label = "bloat"
	if sh.Model.Bloat.AQM {
		ev.Label = "bloat-codel"
	}
	g.add(ev, false)
	rs := ShapeLink(t0+span, ref, Shape{
		SetRate: true, RateBps: 0,
		SetModel: true, Model: LinkModelSpec{Kind: ModelNone},
	})
	rs.Label = "bloat-cleared"
	g.add(rs, true)
}
