package scenario

import (
	"fmt"
	"time"

	"vcalab/internal/vca"
)

// The canned scenarios: parameterized, deterministic timelines covering
// the dynamic-condition axes the paper points at but its two-laptop lab
// could not drive — membership churn storms, WAN capacity cliffs, region
// partitions, and measured-trace replay. Participants follow the cascade
// naming convention ("c1".."cN", round-robin across regions, c1 the
// instrumented client — never churned).

// ChurnStorm builds three waves of interleaved leaves and rejoins over an
// n-participant roster. Each wave takes every third participant (offset
// by the wave index, so consecutive waves churn different region mixes),
// staggers their leaves 200 ms apart, and rejoins them in the same
// stagger six seconds later. IDs cross the registry free list out of
// order, exercising recycled-ID reset with packets in flight.
func ChurnStorm(n int) Scenario {
	sc := Scenario{Name: "churn-storm"}
	for wave := 0; wave < 3; wave++ {
		base := 20*time.Second + time.Duration(wave)*15*time.Second
		var members []string
		for i := 2; i <= n; i++ {
			if i%3 == wave%3 {
				members = append(members, fmt.Sprintf("c%d", i))
			}
		}
		for k, who := range members {
			off := time.Duration(k) * 200 * time.Millisecond
			sc.Events = append(sc.Events, Leave(base+off, who))
			rj := Rejoin(base+6*time.Second+off, who)
			if k == len(members)-1 {
				rj.Label = fmt.Sprintf("wave%d-rejoined", wave+1)
				rj.Recover = true
			}
			sc.Events = append(sc.Events, rj)
		}
	}
	return sc
}

// CapacityCliff drops every inter-region link to cliffBps at t=30s and
// restores restoreBps at t=50s — the §4 transient disruption generalized
// from one client's access link to the relay mesh's WAN fabric.
func CapacityCliff(cliffBps, restoreBps float64) Scenario {
	cliff := ShapeLink(30*time.Second, LinkRef{Kind: LinkInterAll}, Shape{SetRate: true, RateBps: cliffBps})
	cliff.Label = "cliff"
	restore := ShapeLink(50*time.Second, LinkRef{Kind: LinkInterAll}, Shape{SetRate: true, RateBps: restoreBps})
	restore.Label = "cliff-restored"
	restore.Recover = true
	return Scenario{Name: "capacity-cliff", Events: []Event{cliff, restore}}
}

// RegionPartitionAndHeal severs both directions between regions a and b
// with 100% loss at t=30s and heals them at t=45s, leaving capacity
// untouched — a WAN blackout rather than congestion, the failure mode a
// relay mesh must ride out.
func RegionPartitionAndHeal(a, b int) Scenario {
	cut := ShapeLink(30*time.Second, LinkRef{Kind: LinkInterPair, From: a, To: b},
		Shape{SetImpair: true, LossProb: 1})
	cut.Label = fmt.Sprintf("partition-r%d-r%d", a, b)
	heal := ShapeLink(45*time.Second, LinkRef{Kind: LinkInterPair, From: a, To: b},
		Shape{SetImpair: true, LossProb: 0})
	heal.Label = "healed"
	heal.Recover = true
	return Scenario{Name: "region-partition", Events: []Event{cut, heal}}
}

// TraceReplay rides the instrumented client's uplink through a drive-style
// capacity trace (the paper's §8 "other network contexts"): stepping down
// through cellular-grade rates to a deep dip and back up. The trace
// starts at 18 s — past the dynamic experiment's warmup, so the recovery
// nominal is measured on the steady state, not the slow-start ramp.
func TraceReplay(client string) Scenario {
	ref := LinkRef{Kind: LinkClientUp, Client: client}
	events := Trace(ref, "trace", []TraceStep{
		{At: 18 * time.Second, RateBps: 2e6},
		{At: 26 * time.Second, RateBps: 0.8e6},
		{At: 34 * time.Second, RateBps: 0.35e6},
		{At: 42 * time.Second, RateBps: 1.5e6},
		{At: 50 * time.Second, RateBps: 0.6e6},
		{At: 58 * time.Second, RateBps: 0},
	})
	events[len(events)-1].Label = "trace-restored"
	events[len(events)-1].Recover = true
	return Scenario{Name: "trace-replay", Events: events}
}

// SpeakerFlip pins the speaker at t=25s and returns to gallery at t=45s —
// the §6 modality change applied mid-call instead of per-sweep.
func SpeakerFlip() Scenario {
	pin := Mode(25*time.Second, vca.Speaker)
	pin.Label = "speaker-pinned"
	unpin := Mode(45*time.Second, vca.Gallery)
	unpin.Label = "gallery-restored"
	unpin.Recover = true
	return Scenario{Name: "speaker-flip", Events: []Event{pin, unpin}}
}

// CannedNames lists the canned scenario names in their canonical order.
func CannedNames() []string {
	return []string{"churn-storm", "capacity-cliff", "region-partition", "trace-replay", "speaker-flip"}
}

// Canned instantiates a canned scenario by name for a topology of n
// participants and the given nominal inter-region capacity (bps). The
// region pair for the partition scenario is fixed to (0, 1) — every
// multi-region mesh has both.
func Canned(name string, n int, interBps float64) (Scenario, error) {
	switch name {
	case "churn-storm":
		return ChurnStorm(n), nil
	case "capacity-cliff":
		return CapacityCliff(interBps/10, interBps), nil
	case "region-partition":
		return RegionPartitionAndHeal(0, 1), nil
	case "trace-replay":
		return TraceReplay("c1"), nil
	case "speaker-flip":
		return SpeakerFlip(), nil
	}
	return Scenario{}, fmt.Errorf("unknown canned scenario %q (have %v)", name, CannedNames())
}
