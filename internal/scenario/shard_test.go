package scenario

import (
	"testing"
	"time"
)

// TestReplayCannedSharded: the invariant harness — per-shard event-pool
// drain, boundary-envelope conservation, drop conservation across the
// per-shard tracers — holds for the whole canned corpus under
// region-sharded execution.
func TestReplayCannedSharded(t *testing.T) {
	// The canned scenarios script a full 60-second call; truncating the
	// replay would leave late events legitimately unapplied and trip the
	// timeline invariant. Under -short, thin the corpus instead: one
	// churn-heavy and one reshape-heavy scenario cover both sharded
	// control paths.
	names := CannedNames()
	if testing.Short() {
		names = []string{"churn-storm", "capacity-cliff"}
	}
	for _, name := range names {
		sc, err := Canned(name, 8, 10e6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if vs := Replay(sc, HarnessConfig{Seed: 1, Dur: 60 * time.Second, Shards: 2}); len(vs) != 0 {
			t.Errorf("%s sharded: %d violations: %v", name, len(vs), vs)
		}
	}
}

// TestFuzzShardedSmoke replays generated scenarios — churn storms,
// partitions, WiFi bursts, cellular traces, bufferbloat — through the
// sharded engine. This is the fuzz-harness leg of the pooled-packet
// ownership-transfer coverage: every generated workload must drain to
// zero live events and zero outstanding envelopes on every shard.
func TestFuzzShardedSmoke(t *testing.T) {
	n := int64(12)
	if testing.Short() {
		n = 3
	}
	for seed := int64(0); seed < n; seed++ {
		sc, vs := FuzzOne(seed, HarnessConfig{
			Participants: 6, Dur: 25 * time.Second, Seed: seed, Shards: 2,
		})
		if len(vs) != 0 {
			t.Errorf("seed %d (%s, %d events): %v", seed, sc.Name, len(sc.Events), vs)
		}
	}
}
