package apps

import (
	"testing"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
)

// lab: client behind a shaped downlink, servers at the router.
type lab struct {
	eng      *sim.Engine
	rt, sw   *netem.Router
	down, up *netem.Link
}

func newLab(eng *sim.Engine, upBps, downBps float64) *lab {
	l := &lab{eng: eng, rt: netem.NewRouter("rt"), sw: netem.NewRouter("sw")}
	l.up = netem.NewLink(eng, "up", netem.LinkConfig{RateBps: upBps, Delay: 5 * time.Millisecond}, l.rt)
	l.down = netem.NewLink(eng, "down", netem.LinkConfig{RateBps: downBps, Delay: 5 * time.Millisecond}, l.sw)
	l.sw.DefaultRoute(l.up)
	return l
}

func (l *lab) clientHost(name string) *netem.Host {
	h := netem.NewHost(l.eng, name)
	h.SetUplink(netem.NewLink(l.eng, name+"-sw", netem.LinkConfig{}, l.sw))
	l.sw.Route(name, netem.NewLink(l.eng, "sw-"+name, netem.LinkConfig{}, h))
	l.rt.Route(name, l.down)
	return h
}

func (l *lab) remoteHost(name string, delay time.Duration) *netem.Host {
	h := netem.NewHost(l.eng, name)
	h.SetUplink(netem.NewLink(l.eng, name+"-rt", netem.LinkConfig{Delay: delay}, l.rt))
	l.rt.Route(name, netem.NewLink(l.eng, "rt-"+name, netem.LinkConfig{Delay: delay}, h))
	return h
}

func TestIPerfSaturatesLink(t *testing.T) {
	eng := sim.New(1)
	l := newLab(eng, 0, 2e6)
	client := l.clientHost("f1")
	srv := l.remoteHost("srv", time.Millisecond)
	ip := NewIPerf(eng, srv, client, 5201)
	ip.Start()
	eng.RunUntil(30 * time.Second)
	ip.Stop()
	got := ip.Meter.MeanRateMbps(10*time.Second, 30*time.Second)
	if got < 1.6 || got > 2.05 {
		t.Errorf("iperf on 2 Mbps downlink = %.2f Mbps, want ~1.7-2", got)
	}
}

func TestNetflixStreamsComfortably(t *testing.T) {
	eng := sim.New(2)
	l := newLab(eng, 0, 10e6)
	client := l.clientHost("f1")
	cdn := l.remoteHost("cdn", 5*time.Millisecond)
	nf := NewNetflix(eng, client, cdn, 7000)
	nf.Start()
	eng.RunUntil(60 * time.Second)
	nf.Stop()
	rate := nf.Meter.MeanRateMbps(10*time.Second, 60*time.Second)
	// Should reach the 3 Mbps top rendition and pace around it, fetching
	// ~chunkSeconds of video per chunk (duty-cycled by the buffer cap).
	if rate < 1.5 {
		t.Errorf("netflix on 10 Mbps = %.2f Mbps, want >= 1.5 (top rendition pacing)", rate)
	}
	if nf.PeakParallel > 3 {
		t.Errorf("netflix opened %d parallel connections on an uncontended link", nf.PeakParallel)
	}
}

func TestNetflixOpensParallelConnectionsUnderScarcity(t *testing.T) {
	eng := sim.New(3)
	// 0.5 Mbps downlink shared with nothing: the lowest rendition is
	// 0.235 Mbps; make it struggle by adding an iperf competitor.
	l := newLab(eng, 0, 0.5e6)
	client := l.clientHost("f1")
	cdn := l.remoteHost("cdn", 5*time.Millisecond)
	srv := l.remoteHost("srv", time.Millisecond)
	ip := NewIPerf(eng, srv, client, 5201)
	nf := NewNetflix(eng, client, cdn, 7000)
	ip.Start()
	nf.Start()
	eng.RunUntil(120 * time.Second)
	nf.Stop()
	ip.Stop()
	if nf.ConnectionsOpened < 5 {
		t.Errorf("netflix opened %d connections under scarcity, want >= 5 (paper: 28)", nf.ConnectionsOpened)
	}
	if nf.PeakParallel < 2 {
		t.Errorf("netflix peak parallel = %d, want >= 2 (paper: 11)", nf.PeakParallel)
	}
}

func TestYouTubeStreams(t *testing.T) {
	eng := sim.New(4)
	l := newLab(eng, 0, 5e6)
	client := l.clientHost("f1")
	cdn := l.remoteHost("cdn", 5*time.Millisecond)
	yt := NewYouTube(eng, client, cdn, 8000)
	yt.Start()
	eng.RunUntil(60 * time.Second)
	yt.Stop()
	rate := yt.Meter.MeanRateMbps(10*time.Second, 60*time.Second)
	if rate < 1.0 {
		t.Errorf("youtube on 5 Mbps = %.2f Mbps, want >= 1.0", rate)
	}
}

func TestYouTubeAdaptsDown(t *testing.T) {
	eng := sim.New(5)
	l := newLab(eng, 0, 0.5e6)
	client := l.clientHost("f1")
	cdn := l.remoteHost("cdn", 5*time.Millisecond)
	yt := NewYouTube(eng, client, cdn, 8000)
	yt.Start()
	eng.RunUntil(60 * time.Second)
	yt.Stop()
	if yt.rateIdx > 1 {
		t.Errorf("youtube rendition index = %d on a 0.5 Mbps link, want 0-1", yt.rateIdx)
	}
}

func TestStopsAreClean(t *testing.T) {
	eng := sim.New(6)
	l := newLab(eng, 0, 2e6)
	client := l.clientHost("f1")
	cdn := l.remoteHost("cdn", 5*time.Millisecond)
	nf := NewNetflix(eng, client, cdn, 7000)
	nf.Start()
	eng.RunUntil(10 * time.Second)
	nf.Stop()
	before := nf.Meter.TotalBytes()
	eng.RunUntil(20 * time.Second)
	// In-flight packets may still land briefly; no *new* chunks may start.
	after := nf.Meter.TotalBytes()
	if after-before > 200_000 {
		t.Errorf("netflix delivered %.0f bytes after Stop", after-before)
	}
}
