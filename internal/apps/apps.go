// Package apps implements the competing applications of §5: an iPerf3-like
// bulk TCP flow (§5.2), a Netflix-like ABR client that opens parallel TCP
// connections under scarcity (§5.3, Fig 14: 28 connections over a
// 120-second fight, 11 in parallel at peak), and a YouTube-like ABR client
// over a QUIC flow.
package apps

import (
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/quic"
	"vcalab/internal/sim"
	"vcalab/internal/stats"
	"vcalab/internal/tcp"
)

// IPerf is a single long-lived bulk TCP flow, the paper's iPerf3 stand-in.
// The data flows from Server to Client for downlink competition and the
// reverse for uplink competition — callers choose by picking src and dst.
type IPerf struct {
	Flow  *tcp.Flow
	Meter *stats.Meter
}

// NewIPerf wires the flow from src to dst.
func NewIPerf(eng *sim.Engine, src, dst *netem.Host, port int) *IPerf {
	ip := &IPerf{
		Flow:  tcp.NewFlow(eng, "iperf3", src, dst, port, tcp.Config{}),
		Meter: stats.NewMeter(time.Second),
	}
	ip.Flow.OnDeliver(func(at time.Duration, n int) { ip.Meter.AddBytes(at, n) })
	return ip
}

// Start begins the unbounded transfer.
func (ip *IPerf) Start() { ip.Flow.Start(0) }

// Stop halts it.
func (ip *IPerf) Stop() { ip.Flow.Stop() }

// abrLadder is a typical streaming bitrate ladder (bps).
var abrLadder = []float64{235_000, 375_000, 560_000, 750_000, 1_050_000, 1_750_000, 3_000_000}

// Netflix models the Netflix client's behaviour under constrained capacity:
// chunked ABR fetching over persistent TCP connections, opening additional
// parallel connections when throughput undershoots the selected rendition
// (the paper observed 28 connections, 11 parallel, each >100 kbit).
type Netflix struct {
	eng    *sim.Engine
	client *netem.Host // the viewer (data sink)
	server *netem.Host // CDN edge (data source)

	Meter *stats.Meter

	// ConnectionsOpened counts every TCP connection created (Fig 14b).
	ConnectionsOpened int
	// PeakParallel is the maximum simultaneously active connections.
	PeakParallel int

	chunkSeconds  float64
	bufferSeconds float64
	rateIdx       int
	basePort      int
	active        map[int]*tcp.Flow
	nextPort      int
	ticker        *sim.Ticker
	running       bool

	fetchStart   time.Duration
	fetchedBytes int64
	fetchTarget  int64
	prevClean    bool
	usedHelpers  bool
	lastHelper   time.Duration
}

// NewNetflix creates the client. Data flows server→client.
func NewNetflix(eng *sim.Engine, client, server *netem.Host, basePort int) *Netflix {
	return &Netflix{
		eng:          eng,
		client:       client,
		server:       server,
		Meter:        stats.NewMeter(time.Second),
		chunkSeconds: 4,
		rateIdx:      2,
		basePort:     basePort,
		nextPort:     basePort,
		active:       map[int]*tcp.Flow{},
	}
}

// Start begins playback.
func (n *Netflix) Start() {
	n.running = true
	n.startChunk()
	n.ticker = n.eng.Every(time.Second, n.tick)
}

// Stop ends playback and closes all connections.
func (n *Netflix) Stop() {
	n.running = false
	if n.ticker != nil {
		n.ticker.Stop()
	}
	for _, f := range n.active {
		f.Stop()
	}
	n.active = map[int]*tcp.Flow{}
}

// startChunk begins fetching the next chunk. A chunk that follows a clean,
// on-time predecessor rides the same persistent connection (no new entry in
// a packet trace); chunks after a struggle open a fresh connection, which
// is what Fig 14b counts.
func (n *Netflix) startChunk() {
	if !n.running {
		return
	}
	n.fetchTarget = int64(abrLadder[n.rateIdx] * n.chunkSeconds / 8)
	n.fetchedBytes = 0
	n.fetchStart = n.eng.Now()
	reuse := n.prevClean
	n.prevClean = false
	n.openConnection(n.fetchTarget, reuse)
}

// openConnection adds one TCP connection fetching bytes of the current
// chunk. Netflix reuses and multiplies connections; we model each fetch
// attempt as its own flow (what a packet trace shows as a new connection).
func (n *Netflix) openConnection(bytes int64, reuse bool) {
	port := n.nextPort
	n.nextPort++
	if !reuse {
		n.ConnectionsOpened++
	}
	f := tcp.NewFlow(n.eng, "netflix", n.server, n.client, port, tcp.Config{})
	n.active[port] = f
	f.OnDeliver(func(at time.Duration, sz int) {
		n.Meter.AddBytes(at, sz)
		n.fetchedBytes += int64(sz)
	})
	f.OnComplete(func() {
		f.Stop()
		delete(n.active, port)
	})
	f.Start(bytes)
	if len(n.active) > n.PeakParallel {
		n.PeakParallel = len(n.active)
	}
}

// tick runs once per second: drain the playback buffer, finish or struggle.
func (n *Netflix) tick() {
	if !n.running {
		return
	}
	n.bufferSeconds -= 1
	if n.bufferSeconds < 0 {
		n.bufferSeconds = 0
	}
	if n.fetchedBytes >= n.fetchTarget {
		// Chunk done: stop any straggler helper connections (their
		// remaining bytes are duplicates of data already received),
		// credit the buffer, adapt the rendition, fetch next.
		for port, f := range n.active {
			f.Stop()
			delete(n.active, port)
		}
		n.bufferSeconds += n.chunkSeconds
		elapsed := (n.eng.Now() - n.fetchStart).Seconds()
		if elapsed > 0 {
			tput := float64(n.fetchedBytes) * 8 / elapsed
			n.adapt(tput)
		}
		// An on-time single-connection chunk keeps the connection warm.
		n.prevClean = elapsed <= n.chunkSeconds+1 && !n.usedHelpers
		n.usedHelpers = false
		if n.bufferSeconds < 30 {
			n.startChunk()
		}
		return
	}
	// Mid-chunk: if starving, open parallel connections for the remainder
	// (the paper's scarcity behaviour: ~one new connection every few
	// seconds, 28 over a two-minute fight, at most 11 in parallel).
	elapsed := (n.eng.Now() - n.fetchStart).Seconds()
	if elapsed > n.chunkSeconds && n.bufferSeconds < 8 && len(n.active) < 11 &&
		n.eng.Now()-n.lastHelper >= 4*time.Second {
		remaining := n.fetchTarget - n.fetchedBytes
		if remaining > 20_000 {
			n.usedHelpers = true
			n.lastHelper = n.eng.Now()
			n.openConnection(remaining, false)
		}
	}
}

// adapt picks the next rendition from measured throughput (0.8 safety).
func (n *Netflix) adapt(tputBps float64) {
	idx := 0
	for i, r := range abrLadder {
		if 0.8*tputBps >= r {
			idx = i
		}
	}
	n.rateIdx = idx
}

// YouTube models a YouTube client: sequential ABR chunk fetches over a
// single QUIC flow.
type YouTube struct {
	eng    *sim.Engine
	client *netem.Host
	server *netem.Host
	port   int

	Meter *stats.Meter

	chunkSeconds  float64
	bufferSeconds float64
	rateIdx       int
	flow          *quic.Flow
	ticker        *sim.Ticker
	running       bool
	fetchStart    time.Duration
	fetched       int64
	target        int64
	fetching      bool
}

// NewYouTube creates the client. Data flows server→client over QUIC.
func NewYouTube(eng *sim.Engine, client, server *netem.Host, port int) *YouTube {
	return &YouTube{
		eng: eng, client: client, server: server, port: port,
		Meter:        stats.NewMeter(time.Second),
		chunkSeconds: 5,
		rateIdx:      2,
	}
}

// Start begins playback.
func (y *YouTube) Start() {
	y.running = true
	y.fetchChunk()
	y.ticker = y.eng.Every(time.Second, y.tick)
}

// Stop ends playback.
func (y *YouTube) Stop() {
	y.running = false
	if y.ticker != nil {
		y.ticker.Stop()
	}
	if y.flow != nil {
		y.flow.Stop()
	}
}

func (y *YouTube) fetchChunk() {
	if !y.running {
		return
	}
	y.target = int64(abrLadder[y.rateIdx] * y.chunkSeconds / 8)
	y.fetched = 0
	y.fetchStart = y.eng.Now()
	y.fetching = true
	y.port++
	f := quic.NewFlow(y.eng, "youtube", y.server, y.client, y.port, quic.Config{})
	y.flow = f
	f.OnDeliver(func(at time.Duration, sz int) {
		y.Meter.AddBytes(at, sz)
		y.fetched += int64(sz)
	})
	f.OnComplete(func() {
		f.Stop()
		y.fetching = false
		elapsed := (y.eng.Now() - y.fetchStart).Seconds()
		if elapsed > 0 {
			y.adapt(float64(y.fetched) * 8 / elapsed)
		}
		y.bufferSeconds += y.chunkSeconds
	})
	f.Start(y.target)
}

func (y *YouTube) tick() {
	if !y.running {
		return
	}
	y.bufferSeconds -= 1
	if y.bufferSeconds < 0 {
		y.bufferSeconds = 0
	}
	if !y.fetching && y.bufferSeconds < 30 {
		y.fetchChunk()
	}
}

func (y *YouTube) adapt(tputBps float64) {
	idx := 0
	for i, r := range abrLadder {
		if 0.8*tputBps >= r {
			idx = i
		}
	}
	y.rateIdx = idx
}
