package netem

import (
	"testing"
	"testing/quick"
	"time"

	"vcalab/internal/sim"
)

type sink struct {
	pkts  []*Packet
	times []time.Duration
	eng   *sim.Engine
}

func (s *sink) Deliver(p *Packet) {
	s.pkts = append(s.pkts, p)
	if s.eng != nil {
		s.times = append(s.times, s.eng.Now())
	}
}

func TestLinkSerializationDelay(t *testing.T) {
	eng := sim.New(1)
	s := &sink{eng: eng}
	// 1 Mbps, 10 ms propagation: a 1250-byte packet serializes in 10 ms.
	l := NewLink(eng, "up", LinkConfig{RateBps: 1e6, Delay: 10 * time.Millisecond}, s)
	l.Send(&Packet{Size: 1250})
	eng.Run()
	if len(s.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(s.pkts))
	}
	if got, want := s.times[0], 20*time.Millisecond; got != want {
		t.Errorf("delivery at %v, want %v (10ms tx + 10ms prop)", got, want)
	}
}

func TestLinkBackToBackSpacing(t *testing.T) {
	eng := sim.New(1)
	s := &sink{eng: eng}
	l := NewLink(eng, "up", LinkConfig{RateBps: 1e6}, s)
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Size: 1250}) // 10 ms each at 1 Mbps
	}
	eng.Run()
	if len(s.pkts) != 3 {
		t.Fatalf("delivered %d, want 3", len(s.pkts))
	}
	for i, want := range []time.Duration{10, 20, 30} {
		if s.times[i] != want*time.Millisecond {
			t.Errorf("packet %d at %v, want %vms", i, s.times[i], want)
		}
	}
}

func TestLinkInfiniteRate(t *testing.T) {
	eng := sim.New(1)
	s := &sink{eng: eng}
	l := NewLink(eng, "wire", LinkConfig{Delay: 2 * time.Millisecond}, s)
	for i := 0; i < 100; i++ {
		l.Send(&Packet{Size: 1500})
	}
	eng.Run()
	if len(s.pkts) != 100 {
		t.Fatalf("delivered %d, want 100 (no queue on infinite link)", len(s.pkts))
	}
	for _, at := range s.times {
		if at != 2*time.Millisecond {
			t.Fatalf("delivery at %v, want 2ms", at)
		}
	}
}

func TestLinkDropTail(t *testing.T) {
	eng := sim.New(1)
	s := &sink{eng: eng}
	// Queue of exactly 2 packets beyond the one in service.
	l := NewLink(eng, "up", LinkConfig{RateBps: 1e6, QueueBytes: 2500}, s)
	var dropped []*Packet
	l.OnDrop(func(p *Packet) { dropped = append(dropped, p) })
	for i := 0; i < 5; i++ {
		l.Send(&Packet{Size: 1250, Flow: "f"})
	}
	eng.Run()
	if len(s.pkts) != 3 {
		t.Errorf("delivered %d, want 3 (1 in service + 2 queued)", len(s.pkts))
	}
	if len(dropped) != 2 || l.Drops != 2 {
		t.Errorf("dropped %d (counter %d), want 2", len(dropped), l.Drops)
	}
	if l.DroppedBytes != 2500 {
		t.Errorf("DroppedBytes = %d, want 2500", l.DroppedBytes)
	}
}

func TestLinkSetRateMidStream(t *testing.T) {
	eng := sim.New(1)
	s := &sink{eng: eng}
	l := NewLink(eng, "up", LinkConfig{RateBps: 1e6, QueueBytes: 1 << 20}, s)
	l.Send(&Packet{Size: 1250}) // serializes at 1 Mbps: done at 10ms
	l.Send(&Packet{Size: 1250}) // queued
	// Halve the rate while the first packet is in flight.
	eng.Schedule(5*time.Millisecond, func() { l.SetRate(0.5e6) })
	eng.Run()
	// First finishes at old rate (10ms); second takes 20ms at the new rate.
	if s.times[0] != 10*time.Millisecond {
		t.Errorf("first delivery %v, want 10ms", s.times[0])
	}
	if s.times[1] != 30*time.Millisecond {
		t.Errorf("second delivery %v, want 30ms", s.times[1])
	}
}

func TestDefaultQueueBytes(t *testing.T) {
	if got := DefaultQueueBytes(1e6); got != 25000 {
		t.Errorf("1 Mbps queue = %d, want 25000 (200ms)", got)
	}
	if got := DefaultQueueBytes(100e3); got != 5*1500 {
		t.Errorf("100 kbps queue = %d, want floor %d", got, 5*1500)
	}
}

func TestHostPortDispatchAndTap(t *testing.T) {
	eng := sim.New(1)
	h := NewHost(eng, "c1")
	var got []int
	h.HandleFunc(5000, func(p *Packet) { got = append(got, 5000) })
	h.HandleFunc(5002, func(p *Packet) { got = append(got, 5002) })
	tapped := 0
	h.Tap(func(p *Packet) { tapped++ })
	h.Deliver(&Packet{To: Addr{Host: "c1", Port: 5002}})
	h.Deliver(&Packet{To: Addr{Host: "c1", Port: 5000}})
	h.Deliver(&Packet{To: Addr{Host: "c1", Port: 9}})
	if len(got) != 2 || got[0] != 5002 || got[1] != 5000 {
		t.Errorf("dispatch order = %v", got)
	}
	if h.Unrouteable != 1 {
		t.Errorf("Unrouteable = %d, want 1", h.Unrouteable)
	}
	if tapped != 3 {
		t.Errorf("tapped = %d, want 3 (taps see all ports)", tapped)
	}
}

func TestHostSendWithoutUplinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Send without uplink did not panic")
		}
	}()
	NewHost(sim.New(1), "c1").Send(&Packet{})
}

func TestRouterRouting(t *testing.T) {
	eng := sim.New(1)
	a, b, def := &sink{}, &sink{}, &sink{}
	r := NewRouter("rt")
	r.Route("a", NewLink(eng, "ra", LinkConfig{}, a))
	r.Route("b", NewLink(eng, "rb", LinkConfig{}, b))
	r.Deliver(&Packet{To: Addr{Host: "a"}})
	r.Deliver(&Packet{To: Addr{Host: "b"}})
	r.Deliver(&Packet{To: Addr{Host: "zzz"}})
	if r.Unrouteable != 1 {
		t.Errorf("Unrouteable = %d, want 1 without default", r.Unrouteable)
	}
	r.DefaultRoute(NewLink(eng, "rdef", LinkConfig{}, def))
	r.Deliver(&Packet{To: Addr{Host: "zzz"}})
	eng.Run()
	if len(a.pkts) != 1 || len(b.pkts) != 1 || len(def.pkts) != 1 {
		t.Errorf("routing counts a=%d b=%d def=%d, want 1 each",
			len(a.pkts), len(b.pkts), len(def.pkts))
	}
}

func TestEndToEndTopology(t *testing.T) {
	// C1 --(shaped 1 Mbps)--> router --(fast)--> server host.
	eng := sim.New(1)
	c1 := NewHost(eng, "c1")
	srv := NewHost(eng, "srv")
	rt := NewRouter("rt")
	c1.SetUplink(NewLink(eng, "c1-rt", LinkConfig{RateBps: 1e6, Delay: time.Millisecond}, rt))
	rt.Route("srv", NewLink(eng, "rt-srv", LinkConfig{Delay: 9 * time.Millisecond}, srv))
	var arrived time.Duration
	srv.HandleFunc(80, func(p *Packet) { arrived = eng.Now() })
	c1.Send(&Packet{Size: 1250, From: Addr{"c1", 1}, To: Addr{"srv", 80}})
	eng.Run()
	// 10 ms serialization + 1 ms + 9 ms propagation.
	if arrived != 20*time.Millisecond {
		t.Errorf("arrival at %v, want 20ms", arrived)
	}
}

// Property: every packet sent into a shaped link is either delivered or
// dropped — none vanish, none duplicate — and delivered+dropped bytes
// equal sent bytes.
func TestQuickLinkConservation(t *testing.T) {
	f := func(sizes []uint16, rateKbps uint16, queuePkts uint8) bool {
		eng := sim.New(3)
		s := &sink{}
		rate := float64(rateKbps%5000+10) * 1000
		l := NewLink(eng, "l", LinkConfig{
			RateBps:    rate,
			QueueBytes: (int(queuePkts%16) + 1) * 1500,
		}, s)
		var sent uint64
		for _, raw := range sizes {
			size := int(raw%1400) + 100
			sent += uint64(size)
			l.Send(&Packet{Size: size})
		}
		eng.Run()
		return l.DeliveredBytes+l.DroppedBytes == sent &&
			int(l.Delivered) == len(s.pkts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a link never reorders packets.
func TestQuickLinkFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.New(4)
		s := &sink{}
		l := NewLink(eng, "l", LinkConfig{RateBps: 1e6, QueueBytes: 1 << 30}, s)
		for i, raw := range sizes {
			l.Send(&Packet{Size: int(raw%1400) + 100, Flow: "", Payload: i})
		}
		eng.Run()
		for i, p := range s.pkts {
			if p.Payload.(int) != i {
				return false
			}
		}
		return len(s.pkts) == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// multiRouterPath wires h1 → rtA → (inter) → rtB → h2 and returns the
// inter-router link for mid-simulation reshaping.
func multiRouterPath(eng *sim.Engine, interCfg LinkConfig, h1, h2 *Host) *Link {
	rtA, rtB := NewRouter("rtA"), NewRouter("rtB")
	ab, ba := ConnectRouters(eng, "inter", interCfg, interCfg, rtA, rtB)
	Attach(eng, h1, rtA, LinkConfig{Delay: time.Millisecond})
	Attach(eng, h2, rtB, LinkConfig{Delay: time.Millisecond})
	rtA.Route(h2.Name, ab)
	rtB.Route(h1.Name, ba)
	return ab
}

func TestMultiRouterDelayAccumulatesPerHop(t *testing.T) {
	eng := sim.New(1)
	h1, h2 := NewHost(eng, "h1"), NewHost(eng, "h2")
	multiRouterPath(eng, LinkConfig{RateBps: 1e6, Delay: 10 * time.Millisecond}, h1, h2)
	var arrived time.Duration
	h2.HandleFunc(80, func(p *Packet) { arrived = eng.Now() })
	h1.Send(&Packet{Size: 1250, From: Addr{"h1", 1}, To: Addr{"h2", 80}})
	eng.Run()
	// 1 ms access + (10 ms serialization + 10 ms propagation) inter hop
	// + 1 ms access: each of the three hops contributes its own delay.
	if want := 22 * time.Millisecond; arrived != want {
		t.Errorf("two-router path arrival at %v, want %v", arrived, want)
	}
}

func TestMultiRouterQueueingAccumulatesPerHop(t *testing.T) {
	// First hop 2 Mbps, second hop 1 Mbps: a back-to-back burst spreads
	// at the first bottleneck, then queues again at the slower second
	// hop — per-hop queueing, not a single end-to-end constraint.
	eng := sim.New(2)
	rtA, rtB := NewRouter("rtA"), NewRouter("rtB")
	s := &sink{eng: eng}
	hop2 := NewLink(eng, "hop2", LinkConfig{RateBps: 1e6, QueueBytes: 1 << 20}, s)
	rtB.Route("dst", hop2)
	hop1 := NewLink(eng, "hop1", LinkConfig{RateBps: 2e6, QueueBytes: 1 << 20}, rtB)
	rtA.Route("dst", hop1)
	for i := 0; i < 3; i++ {
		rtA.Deliver(&Packet{Size: 1250, To: Addr{Host: "dst"}})
	}
	eng.Run()
	if len(s.pkts) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(s.pkts))
	}
	// Hop 1 spaces the burst at 5 ms/packet; hop 2 re-serializes at
	// 10 ms/packet: first done at 5+10=15 ms, then every 10 ms.
	for i, want := range []time.Duration{15, 25, 35} {
		if s.times[i] != want*time.Millisecond {
			t.Errorf("packet %d delivered at %v, want %vms (queued at second hop)", i, s.times[i], want)
		}
	}
}

func TestInterRouterRateChangeMidSimulation(t *testing.T) {
	// Reshaping an inter-region link mid-simulation (the cascade's `tc`
	// analogue) must apply to queued and future packets.
	eng := sim.New(3)
	h1, h2 := NewHost(eng, "h1"), NewHost(eng, "h2")
	inter := multiRouterPath(eng, LinkConfig{RateBps: 1e6, QueueBytes: 1 << 20}, h1, h2)
	var times []time.Duration
	h2.HandleFunc(80, func(p *Packet) { times = append(times, eng.Now()) })
	h1.Send(&Packet{Size: 1250, From: Addr{"h1", 1}, To: Addr{"h2", 80}})
	h1.Send(&Packet{Size: 1250, From: Addr{"h1", 1}, To: Addr{"h2", 80}})
	// Halve the inter link while the first packet serializes.
	eng.Schedule(6*time.Millisecond, func() { inter.SetRate(0.5e6) })
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(times))
	}
	// Access hops add 1 ms each way. First packet: 1 + 10 (old rate) + 1.
	// Second: finishes 20 ms later at the new 0.5 Mbps rate.
	if want := 12 * time.Millisecond; times[0] != want {
		t.Errorf("first delivery at %v, want %v", times[0], want)
	}
	if want := 32 * time.Millisecond; times[1] != want {
		t.Errorf("second delivery at %v, want %v (new rate applied)", times[1], want)
	}
}

func BenchmarkLinkThroughput(b *testing.B) {
	eng := sim.New(1)
	s := &sink{}
	l := NewLink(eng, "l", LinkConfig{RateBps: 10e6, QueueBytes: 1 << 30}, s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Send(&Packet{Size: 1200})
	}
	eng.Run()
}

func TestRandomLoss(t *testing.T) {
	eng := sim.New(9)
	s := &sink{}
	l := NewLink(eng, "lossy", LinkConfig{Delay: time.Millisecond, LossProb: 0.2}, s)
	const n = 5000
	for i := 0; i < n; i++ {
		l.Send(&Packet{Size: 100})
	}
	eng.Run()
	lossRate := float64(l.Drops) / n
	if lossRate < 0.17 || lossRate > 0.23 {
		t.Errorf("loss rate = %.3f, want ~0.2", lossRate)
	}
	if int(l.Delivered)+int(l.Drops) != n {
		t.Errorf("conservation: %d delivered + %d dropped != %d", l.Delivered, l.Drops, n)
	}
}

func TestJitterSpreadsDelay(t *testing.T) {
	eng := sim.New(10)
	s := &sink{eng: eng}
	l := NewLink(eng, "jittery", LinkConfig{Delay: 10 * time.Millisecond, Jitter: 20 * time.Millisecond}, s)
	for i := 0; i < 200; i++ {
		l.Send(&Packet{Size: 100})
	}
	eng.Run()
	minAt, maxAt := s.times[0], s.times[0]
	for _, at := range s.times {
		if at < minAt {
			minAt = at
		}
		if at > maxAt {
			maxAt = at
		}
	}
	if minAt < 10*time.Millisecond || maxAt > 30*time.Millisecond {
		t.Errorf("jittered delays outside [10ms,30ms]: min %v max %v", minAt, maxAt)
	}
	if maxAt-minAt < 10*time.Millisecond {
		t.Errorf("jitter spread too narrow: %v", maxAt-minAt)
	}
}

func TestSetImpairment(t *testing.T) {
	eng := sim.New(11)
	s := &sink{}
	l := NewLink(eng, "l", LinkConfig{Delay: time.Millisecond}, s)
	l.SetImpairment(1.0, 0) // drop everything
	l.Send(&Packet{Size: 100})
	eng.Run()
	if l.Drops != 1 || len(s.pkts) != 0 {
		t.Errorf("full-loss link delivered a packet")
	}
	l.SetImpairment(0, 0)
	l.Send(&Packet{Size: 100})
	eng.Run()
	if len(s.pkts) != 1 {
		t.Errorf("cleared impairment still dropping")
	}
}

// TestSetDelayMidSimulation checks the WAN re-path semantics: packets
// already propagating keep the delay they left with, packets entering
// the wire afterwards use the new one.
func TestSetDelayMidSimulation(t *testing.T) {
	eng := sim.New(11)
	var arrivals []time.Duration
	l := NewLink(eng, "wan", LinkConfig{Delay: 50 * time.Millisecond},
		HandlerFunc(func(p *Packet) { arrivals = append(arrivals, eng.Now()) }))
	l.Send(&Packet{Size: 100}) // departs at 0 under the 50 ms delay
	eng.Schedule(10*time.Millisecond, func() {
		l.SetDelay(5 * time.Millisecond)
		l.Send(&Packet{Size: 100}) // departs at 10 ms under the 5 ms delay
	})
	eng.Run()
	if l.Delay() != 5*time.Millisecond {
		t.Errorf("Delay() = %v after SetDelay, want 5ms", l.Delay())
	}
	want := []time.Duration{15 * time.Millisecond, 50 * time.Millisecond}
	if len(arrivals) != 2 || arrivals[0] != want[0] || arrivals[1] != want[1] {
		t.Errorf("arrivals = %v, want %v (delay cut reorders across the change)", arrivals, want)
	}
}
