// Package netem emulates the paper's laboratory network: hosts wired to
// routers and switches through rate-limited, delayed, drop-tail links.
//
// It plays the role of the two Dell laptops, the Turris Omnia router, and the
// `tc` traffic shaping of MacMillan et al. (IMC 2021, §2.2). A Link models a
// unidirectional wire with a serialization rate, a propagation delay and a
// finite drop-tail queue; Rate can be changed mid-simulation, which is how
// experiments emulate `tc` re-shaping and the 30-second capacity drops of §4.
package netem

import (
	"fmt"
	"time"

	"vcalab/internal/obs"
	"vcalab/internal/sim"
)

// Addr identifies an application endpoint: a named host plus a port.
type Addr struct {
	Host string
	Port int
}

func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// Packet is the unit of transmission. Size is the full on-wire size in
// bytes (headers included); Payload carries a typed application object
// (an rtp.Packet, a TCP segment, ...) that the emulator never inspects.
//
// Hot-path senders obtain packets from Host.NewPacket; such packets are
// recycled by the emulator at their terminal point (final delivery, queue
// drop, or unrouteable) and must not be retained afterwards. Packets
// built directly with a composite literal are never recycled.
type Packet struct {
	Size    int
	From    Addr
	To      Addr
	Flow    string // accounting label, e.g. "zoom/c1/video"
	Payload any
	SentAt  time.Duration // stamped by Host.Send

	pool *PacketPool // owning free list, nil for literal packets
	// queuedAt is stamped when the packet enters a link's drop-tail
	// queue; the AQM reads it at dequeue to compute the sojourn time.
	queuedAt time.Duration
}

// PacketPool is a single-threaded free list of Packet structs, owned by
// one host within one engine. Pooling keeps the per-packet transit path
// allocation-free; determinism is unaffected because reuse never changes
// event ordering.
type PacketPool struct {
	free []*Packet
	// live counts packets handed out by Get and not yet Released — the
	// conservation invariant the fuzz harness asserts reaches zero once a
	// simulation drains. A terminal point that forgets Release shows up
	// here as a permanent positive residue.
	live int
}

// Get returns a zeroed packet owned by the pool.
func (p *PacketPool) Get() *Packet {
	p.live++
	if n := len(p.free) - 1; n >= 0 {
		pkt := p.free[n]
		p.free = p.free[:n]
		return pkt
	}
	return &Packet{pool: p}
}

func (p *PacketPool) put(pkt *Packet) {
	p.live--
	*pkt = Packet{pool: p}
	p.free = append(p.free, pkt)
}

// Live reports how many pooled packets are currently out in the emulator
// (obtained by Get, not yet Released). After a simulation drains it must
// be zero: every drop path and delivery point owes the pool exactly one
// Release per packet.
func (p *PacketPool) Live() int { return p.live }

// Release returns the packet to its owning pool. It is the emulator's
// explicit recycle point, called once per packet at final delivery or
// drop; it is a no-op for packets not obtained from a pool.
func (pkt *Packet) Release() {
	if pkt.pool != nil {
		pkt.pool.put(pkt)
	}
}

// PayloadReleaser is implemented by pooled payload types (vca's media
// packets). When the emulator terminates a packet that never reaches a
// consumer — a queue or impairment drop, an unrouteable address — it
// recycles the payload too, so loss-heavy workloads stay allocation-free.
// Delivered packets are NOT payload-released: their port handler is the
// payload's one consumer.
type PayloadReleaser interface {
	ReleasePayload()
}

// discard terminates a packet that will never be delivered.
func (pkt *Packet) discard() {
	if pr, ok := pkt.Payload.(PayloadReleaser); ok {
		pr.ReleasePayload()
	}
	pkt.Release()
}

// Handler consumes delivered packets.
type Handler interface {
	Deliver(pkt *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(*Packet)

// Deliver calls f(pkt).
func (f HandlerFunc) Deliver(pkt *Packet) { f(pkt) }

// LinkConfig describes one direction of a wire.
type LinkConfig struct {
	// RateBps is the serialization rate in bits per second.
	// Zero or negative means "effectively infinite" (no serialization
	// delay, no queueing) — used for the paper's 1 Gbps uncontended hops.
	RateBps float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueBytes bounds the drop-tail queue, excluding the packet
	// currently being serialized. Zero selects a 200 ms buffer at
	// RateBps with a 5-MTU floor — the depth of a `tc` token bucket on
	// a home router: deep enough that loss-based senders see
	// bufferbloat before loss, shallow enough at sub-Mbps rates that a
	// full-resolution keyframe burst overflows it (Fig 3b).
	QueueBytes int

	// LossProb drops each packet independently with this probability
	// (random impairment, the paper's §8 future work — distinct from
	// congestive drop-tail loss).
	LossProb float64
	// Jitter adds a uniformly distributed extra delay in [0, Jitter] to
	// each packet's propagation. Jittered packets may reorder, as on a
	// real path.
	Jitter time.Duration
}

// DefaultQueueBytes returns the queue depth used when LinkConfig.QueueBytes
// is zero: 200 ms worth of bytes at the given rate, floored at 5 full
// 1500-byte packets so slow links can still absorb a small burst.
func DefaultQueueBytes(rateBps float64) int {
	q := int(rateBps / 8 * 0.2)
	if min := 5 * 1500; q < min {
		q = min
	}
	return q
}

// Link is a unidirectional, rate-limited, drop-tail wire. Create with
// NewLink. Counters are exported for measurement code.
type Link struct {
	name string
	eng  *sim.Engine
	cfg  LinkConfig
	dst  Handler

	queue      []*Packet
	queuedSize int
	busy       bool
	paused     bool    // serialization gate (a cellular handover gap)
	inService  *Packet // the packet currently being serialized

	// loss, when set, replaces the independent LossProb draw with a
	// stateful per-packet loss process (Gilbert–Elliott WiFi bursts).
	loss LossModel
	// aqm, when set, is consulted at dequeue and may drop the head
	// packet early (CoDel on a bufferbloated queue).
	aqm *CoDel

	// Statistics, cumulative since creation.
	Delivered      uint64
	DeliveredBytes uint64
	Drops          uint64
	DroppedBytes   uint64
	// AQMDrops counts the subset of Drops decided by the AQM at dequeue
	// (also included in Drops).
	AQMDrops uint64
	// queueHW is the deepest the drop-tail queue has been, in bytes.
	queueHW int
	// pausedAt/pausedTotal track serialization-gate closures (cellular
	// handover gaps) for the pause-time metric.
	pausedAt    time.Duration
	pausedTotal time.Duration

	onDrop func(*Packet)
	onSend []func(*Packet)
	// tracer, when set, records packet lifecycle events. Hot-path call
	// sites guard with `if l.tracer != nil` so a disabled run never even
	// evaluates the arguments; recording is read-only for the link.
	tracer *obs.Tracer
	// dTracer records the deliver event. Normally the same tracer as
	// `tracer`; on a sharded boundary link delivery executes on the
	// destination shard, so it gets that shard's tracer instead.
	dTracer *obs.Tracer

	// handoff, when set, makes this a shard-boundary link: instead of
	// scheduling the propagation event locally, deliverAfter posts it to
	// the mailbox, and the Group injects it into the destination shard's
	// engine at the next window barrier (see Handoff).
	handoff *sim.Mailbox
	// handoffPayload re-homes the packet payload's pool ownership to the
	// destination shard during the barrier drain; nil passes the payload
	// pointer through (correct for immutable signalling messages).
	handoffPayload func(any) any
	// boundaryPool owns the envelope clones delivered across the
	// boundary. It is touched only by the barrier drain (Get) and the
	// destination shard (put at the terminal point), which never run
	// concurrently, so it needs no locking.
	boundaryPool PacketPool
}

// SetTracer attaches (or, with nil, detaches) an event tracer recording
// this link's enqueue/dequeue/drop/deliver lifecycle.
func (l *Link) SetTracer(t *obs.Tracer) { l.tracer, l.dTracer = t, t }

// SetDeliverTracer overrides the tracer used for the deliver event only.
// A sharded boundary link's deliveries execute on the destination shard,
// so they must record into that shard's tracer while the send-side
// events (enqueue/dequeue/drop) stay on the source shard's. Call after
// SetTracer.
func (l *Link) SetDeliverTracer(t *obs.Tracer) { l.dTracer = t }

// Engine returns the engine this link schedules on — in a sharded run,
// the shard that owns the link's send side.
func (l *Link) Engine() *sim.Engine { return l.eng }

// QueueHighWater reports the deepest the drop-tail queue has been, in
// bytes — the buried counter behind every "why did latency spike" hunt.
func (l *Link) QueueHighWater() int { return l.queueHW }

// PausedTotal reports the cumulative time the serialization gate has
// been closed, including the currently open closure if any.
func (l *Link) PausedTotal() time.Duration {
	total := l.pausedTotal
	if l.paused {
		total += l.eng.Now() - l.pausedAt
	}
	return total
}

// LossModel returns the installed stateful loss process, or nil. Models
// install mid-run via scenario timelines, so metrics samplers re-check
// on every tick rather than capturing at setup.
func (l *Link) LossModel() LossModel { return l.loss }

// OnSend registers fn to observe every packet offered to the link, before
// any queueing or drop decision — the equivalent of a capture tap at the
// link ingress, which is where the paper's tcpdump sat.
func (l *Link) OnSend(fn func(*Packet)) { l.onSend = append(l.onSend, fn) }

// NewLink creates a link that delivers packets to dst.
func NewLink(eng *sim.Engine, name string, cfg LinkConfig, dst Handler) *Link {
	if cfg.RateBps > 0 && cfg.QueueBytes == 0 {
		cfg.QueueBytes = DefaultQueueBytes(cfg.RateBps)
	}
	return &Link{name: name, eng: eng, cfg: cfg, dst: dst}
}

// Name returns the label the link was created with.
func (l *Link) Name() string { return l.name }

// Rate returns the current serialization rate in bits per second
// (0 = infinite).
func (l *Link) Rate() float64 { return l.cfg.RateBps }

// SetRate changes the serialization rate, emulating `tc` re-shaping. The
// packet currently being serialized finishes at the old rate; queued and
// future packets use the new one. Passing 0 removes the constraint.
// The queue depth is NOT resized: the paper's router buffer is physical.
func (l *Link) SetRate(bps float64) { l.cfg.RateBps = bps }

// SetQueueBytes changes the drop-tail queue limit.
func (l *Link) SetQueueBytes(n int) { l.cfg.QueueBytes = n }

// Delay returns the current one-way propagation delay.
func (l *Link) Delay() time.Duration { return l.cfg.Delay }

// SetDelay changes the propagation delay mid-simulation (a route change, a
// WAN re-path). Packets already propagating keep the delay they left with;
// packets entering the wire afterwards use the new one, so a delay cut can
// reorder across the change instant exactly as a real re-route would.
func (l *Link) SetDelay(d time.Duration) { l.cfg.Delay = d }

// QueuedBytes reports the bytes currently waiting (not the one in service).
func (l *Link) QueuedBytes() int { return l.queuedSize }

// OnDrop registers fn to be called for every packet dropped at this link's
// queue. Used by tests and by loss instrumentation.
func (l *Link) OnDrop(fn func(*Packet)) { l.onDrop = fn }

// SetImpairment reconfigures random loss and jitter mid-simulation.
func (l *Link) SetImpairment(lossProb float64, jitter time.Duration) {
	l.cfg.LossProb = lossProb
	l.cfg.Jitter = jitter
}

// SetLossModel installs (or, with nil, removes) a stateful per-packet loss
// process consulted at the link ingress in place of the independent
// LossProb draw. The model owns its randomness, so installing one never
// perturbs the engine's shared random stream.
func (l *Link) SetLossModel(m LossModel) { l.loss = m }

// SetAQM installs (or, with nil, removes) a CoDel instance consulted when
// a queued packet is dequeued for serialization. Pair with a deep queue
// (ApplyBloat) to model a bufferbloated last-mile hop with and without
// active queue management.
func (l *Link) SetAQM(c *CoDel) { l.aqm = c }

// SetPaused gates serialization: while paused, a rate-limited link stops
// starting new transmissions — arriving packets queue (and overflow the
// drop-tail bound as usual) until the link resumes. The packet already on
// the wire finishes normally. This is how a cellular handover gap stalls a
// last-mile link without losing its queue. Pausing an unconstrained
// (RateBps <= 0) link has no effect: with no serialization stage there is
// nothing to gate.
func (l *Link) SetPaused(p bool) {
	if l.paused == p {
		return
	}
	l.paused = p
	if p {
		l.pausedAt = l.eng.Now()
	} else {
		l.pausedTotal += l.eng.Now() - l.pausedAt
	}
	if !p && !l.busy {
		l.startNext()
	}
}

// Paused reports whether the serialization gate is closed.
func (l *Link) Paused() bool { return l.paused }

// Send enqueues pkt for transmission, dropping it if the queue is full.
func (l *Link) Send(pkt *Packet) {
	for _, fn := range l.onSend {
		fn(pkt)
	}
	if l.loss != nil && l.loss.Lose() {
		l.drop(pkt, false)
		return
	}
	if l.cfg.LossProb > 0 {
		// p >= 1 always loses — skip the draw, so hard partitions
		// consume no engine randomness and the RNG stream stays aligned
		// across shard layouts.
		if l.cfg.LossProb >= 1 || l.eng.Rand().Float64() < l.cfg.LossProb {
			l.drop(pkt, false)
			return
		}
	}
	if l.cfg.RateBps <= 0 {
		// Infinite-rate wire: pure propagation delay.
		l.deliverAfter(pkt, l.cfg.Delay)
		return
	}
	if l.busy || l.paused {
		if l.queuedSize+pkt.Size > l.cfg.QueueBytes {
			l.drop(pkt, false)
			return
		}
		pkt.queuedAt = l.eng.Now()
		l.queue = append(l.queue, pkt)
		l.queuedSize += pkt.Size
		if l.queuedSize > l.queueHW {
			l.queueHW = l.queuedSize
		}
		if l.tracer != nil {
			l.tracer.Packet(obs.EvEnqueue, l.eng.Now(), l.name, pkt.Flow, pkt.To.Host, pkt.Size, l.queuedSize, false)
		}
		return
	}
	l.transmit(pkt)
}

func (l *Link) transmit(pkt *Packet) {
	l.busy = true
	l.inService = pkt
	var tx time.Duration
	if l.cfg.RateBps > 0 {
		tx = time.Duration(float64(pkt.Size*8) / l.cfg.RateBps * float64(time.Second))
	}
	// RateBps <= 0 here means the constraint was removed while packets
	// were queued: they flush with zero serialization delay.
	l.eng.ScheduleHandler(tx, l)
}

// OnEvent implements sim.Handler: serialization of the in-service packet
// completed. It hands the packet to the propagation stage, then starts on
// the queue head — the same event order as the original closure.
func (l *Link) OnEvent(time.Duration) {
	pkt := l.inService
	l.inService = nil
	l.deliverAfter(pkt, l.cfg.Delay)
	l.busy = false
	if !l.paused {
		l.startNext()
	}
}

// startNext dequeues through the AQM until a packet survives, then starts
// serializing it. Head-drop decisions happen at dequeue time, as in a real
// CoDel: the dropped packet already paid its queue wait.
func (l *Link) startNext() {
	now := l.eng.Now()
	for len(l.queue) > 0 {
		next := l.queue[0]
		l.queue = l.queue[1:]
		l.queuedSize -= next.Size
		if l.aqm != nil && l.aqm.dropOnDequeue(now, now-next.queuedAt) {
			l.AQMDrops++
			l.drop(next, true)
			continue
		}
		if l.tracer != nil {
			l.tracer.Packet(obs.EvDequeue, now, l.name, next.Flow, next.To.Host, next.Size, l.queuedSize, false)
		}
		l.transmit(next)
		return
	}
}

func (l *Link) deliverAfter(pkt *Packet, d time.Duration) {
	if l.cfg.Jitter > 0 {
		d += time.Duration(l.eng.Rand().Float64() * float64(l.cfg.Jitter))
	}
	if l.handoff != nil {
		// Boundary link: the propagation event crosses shards. Post with
		// exactly the key ScheduleArg would have stamped — arrival time,
		// current clock, next source seq — so the destination merge
		// reproduces the single-engine order.
		now := l.eng.Now()
		l.handoff.Post(now+d, now, l.eng.TakeSeq(), pkt)
		return
	}
	l.eng.ScheduleArg(d, l, pkt)
}

// OnArgEvent implements sim.ArgHandler: one packet finished propagating.
// Many such events are in flight per link; each carries its packet in the
// pooled event's arg slot, so the transit path allocates nothing. On a
// boundary link this runs on the destination shard; the delivery-side
// counters below are written only here, never by the send path, so the
// split needs no synchronization beyond the window barrier.
func (l *Link) OnArgEvent(now time.Duration, arg any) {
	pkt := arg.(*Packet)
	l.Delivered++
	l.DeliveredBytes += uint64(pkt.Size)
	if l.dTracer != nil {
		// The send-side queue belongs to the other shard on a boundary
		// link; even loading it here would race with the source shard's
		// enqueue path. Boundary deliveries report depth 0.
		q := 0
		if l.handoff == nil {
			q = l.queuedSize
		}
		l.dTracer.Packet(obs.EvDeliver, now, l.name, pkt.Flow, pkt.To.Host, pkt.Size, q, false)
	}
	l.dst.Deliver(pkt)
}

// Handoff converts this link into a shard-boundary link delivering into
// dst (the destination region's engine): propagation events are posted
// to the returned mailbox instead of scheduled locally, and each packet
// envelope is re-homed to a boundary-owned pool during the barrier
// drain. Register the mailbox with the shard Group. The link itself —
// queue, serialization, drop accounting — stays wholly on the source
// shard; only the final delivery hop crosses.
func (l *Link) Handoff(dst *sim.Engine) *sim.Mailbox {
	l.handoff = sim.NewMailbox(l.name, l.eng, dst, l, l.transferPacket)
	return l.handoff
}

// SetHandoffPayload installs the payload re-homing hook used during the
// barrier drain (media packets clone into the destination region's pool;
// immutable signalling passes through). Wired by the sharded call
// builder once the call — and with it the destination pools — exists.
func (l *Link) SetHandoffPayload(fn func(any) any) { l.handoffPayload = fn }

// transferPacket is the mailbox transfer hook: it runs at a window
// barrier with both shards parked, clones the envelope into the
// boundary pool, re-homes the payload, and releases the source-side
// envelope back to its owning pool.
func (l *Link) transferPacket(arg any) any {
	src := arg.(*Packet)
	dup := l.boundaryPool.Get()
	dup.Size, dup.From, dup.To, dup.Flow, dup.SentAt = src.Size, src.From, src.To, src.Flow, src.SentAt
	if l.handoffPayload != nil {
		dup.Payload = l.handoffPayload(src.Payload)
	} else {
		dup.Payload = src.Payload
	}
	src.Payload = nil
	src.Release()
	return dup
}

// BoundaryPoolLive reports the boundary pool's outstanding envelope
// count — zero once a sharded run drains, the cross-shard half of the
// packet-conservation invariant.
func (l *Link) BoundaryPoolLive() int { return l.boundaryPool.Live() }

func (l *Link) drop(pkt *Packet, aqm bool) {
	l.Drops++
	l.DroppedBytes += uint64(pkt.Size)
	if l.tracer != nil {
		l.tracer.Packet(obs.EvDrop, l.eng.Now(), l.name, pkt.Flow, pkt.To.Host, pkt.Size, l.queuedSize, aqm)
	}
	if l.onDrop != nil {
		l.onDrop(pkt)
	}
	pkt.discard()
}

// Host is a named endpoint running one or more applications, each bound to
// a port. Outbound traffic leaves through the host's uplink.
type Host struct {
	Name string

	eng    *sim.Engine
	uplink *Link
	ports  map[int]Handler
	taps   []func(*Packet)
	pool   PacketPool

	// Unrouteable counts packets delivered to a port nobody listens on.
	Unrouteable uint64
}

// NewPacket returns a zeroed packet from the host's free list. The
// emulator recycles it at its terminal point (final delivery, drop, or
// unrouteable), so the caller must not retain it after Send.
func (h *Host) NewPacket() *Packet { return h.pool.Get() }

// PoolLive reports the host pool's outstanding packet count — the
// packet-pool conservation invariant: once a simulation drains, every
// packet this host sent has reached a terminal point and been Released,
// so the count must read zero. A leaky drop path shows up here.
func (h *Host) PoolLive() int { return h.pool.Live() }

// NewHost creates a host. Attach its uplink with SetUplink once the
// topology is wired.
func NewHost(eng *sim.Engine, name string) *Host {
	return &Host{Name: name, eng: eng, ports: map[int]Handler{}}
}

// SetUplink sets the link outbound packets are sent through.
func (h *Host) SetUplink(l *Link) { h.uplink = l }

// Uplink returns the host's outbound link (may be nil before wiring).
func (h *Host) Uplink() *Link { return h.uplink }

// Handle registers a handler for a local port, replacing any previous one.
func (h *Host) Handle(port int, fn Handler) { h.ports[port] = fn }

// HandleFunc registers a handler function for a local port.
func (h *Host) HandleFunc(port int, fn func(*Packet)) { h.ports[port] = HandlerFunc(fn) }

// Tap registers fn to observe every packet delivered to this host,
// regardless of port. Taps run before the port handler.
func (h *Host) Tap(fn func(*Packet)) { h.taps = append(h.taps, fn) }

// Send stamps and transmits pkt through the host uplink. It panics if the
// host has no uplink, which is always a topology-wiring bug.
func (h *Host) Send(pkt *Packet) {
	if h.uplink == nil {
		panic("netem: host " + h.Name + " has no uplink")
	}
	pkt.SentAt = h.eng.Now()
	h.uplink.Send(pkt)
}

// Deliver implements Handler: dispatches to the registered port handler,
// then recycles the packet — a host is every packet's terminal point.
func (h *Host) Deliver(pkt *Packet) {
	for _, tap := range h.taps {
		tap(pkt)
	}
	if hd, ok := h.ports[pkt.To.Port]; ok {
		hd.Deliver(pkt)
		pkt.Release()
		return
	}
	h.Unrouteable++
	pkt.discard()
}

// Router forwards packets by destination host name. It also models the
// paper's unmanaged switch (a switch is just a router whose links are
// uncontended).
type Router struct {
	Name   string
	routes map[string]*Link
	def    *Link

	// Unrouteable counts packets with no matching route and no default.
	Unrouteable uint64
}

// NewRouter creates an empty router.
func NewRouter(name string) *Router {
	return &Router{Name: name, routes: map[string]*Link{}}
}

// Route directs traffic for the named destination host through l.
func (r *Router) Route(hostName string, l *Link) { r.routes[hostName] = l }

// DefaultRoute directs traffic with no specific route through l
// (the "to the Internet" port).
func (r *Router) DefaultRoute(l *Link) { r.def = l }

// Deliver implements Handler.
func (r *Router) Deliver(pkt *Packet) {
	if l, ok := r.routes[pkt.To.Host]; ok {
		l.Send(pkt)
		return
	}
	if r.def != nil {
		r.def.Send(pkt)
		return
	}
	r.Unrouteable++
	pkt.discard()
}

// Duplex wires a bidirectional connection between two handlers and returns
// the two directed links (a→b, b→a), both configured identically.
func Duplex(eng *sim.Engine, name string, cfg LinkConfig, a, b Handler) (ab, ba *Link) {
	ab = NewLink(eng, name+"/fwd", cfg, b)
	ba = NewLink(eng, name+"/rev", cfg, a)
	return ab, ba
}

// Attach wires host h to router r with a symmetric pair of links (both
// configured as cfg): the host's uplink toward the router, and the
// router's route back to the host. It returns (up, down). This is the
// standard "host hangs off a router" hop used by multi-router topologies.
func Attach(eng *sim.Engine, h *Host, r *Router, cfg LinkConfig) (up, down *Link) {
	up = NewLink(eng, h.Name+"-"+r.Name, cfg, r)
	down = NewLink(eng, r.Name+"-"+h.Name, cfg, h)
	h.SetUplink(up)
	r.Route(h.Name, down)
	return up, down
}

// ConnectRouters creates the two directed inter-router links a→b and b→a
// with independent configurations (a WAN path's two directions can differ)
// and returns them. The caller registers which destination hosts travel
// each link via Router.Route — routing stays explicit, as in the lab.
func ConnectRouters(eng *sim.Engine, name string, abCfg, baCfg LinkConfig, a, b *Router) (ab, ba *Link) {
	ab = NewLink(eng, name+"/fwd", abCfg, b)
	ba = NewLink(eng, name+"/rev", baCfg, a)
	return ab, ba
}
