// Heterogeneous last-mile link models.
//
// The paper measures VCAs over a fixed-rate token bucket, but its §8
// future work points at the access networks real calls ride: WiFi with
// bursty, correlated loss; cellular links whose capacity steps through a
// drive trace and blanks out across handovers; home routers with buffers
// deep enough that loss-based senders see seconds of queueing first.
// This file models those three regimes on top of the base Link:
//
//   - GilbertElliott: a two-state Markov loss process installed with
//     Link.SetLossModel — loss arrives in bursts whose length and density
//     are set by the chain's transition probabilities, not independently
//     per packet.
//   - Cellular: a trace/step-driven capacity driver with handover gaps,
//     built on the same one-event-in-flight scheduling as the scenario
//     timeline. Handover instants jitter deterministically from the
//     model's own seeded source.
//   - CoDel + ApplyBloat: a deep drop-tail queue with optional CoDel-style
//     AQM consulted at dequeue.
//
// Every model owns its randomness (a splitmix-mixed seed feeding a private
// source), so installing one never perturbs the engine's shared stream —
// experiments that do not use the models stay byte-identical, and the ones
// that do are deterministic per (model seed, engine seed) at any trial
// parallelism.
package netem

import (
	"math"
	"sort"
	"time"

	"math/rand"

	"vcalab/internal/sim"
)

// LossModel is a stateful per-packet loss process installed on a link with
// SetLossModel. Lose is called once per packet offered to the link, in
// arrival order; implementations must be deterministic given their
// construction parameters (own their randomness) so link behaviour is
// reproducible per seed.
type LossModel interface {
	Lose() bool
}

// mix64 is splitmix64's finalizer: adjacent seeds map to decorrelated
// source seeds, so seeding models 1,2,3,... is as good as random seeds.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func newModelRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix64(uint64(seed)))))
}

// GEConfig parameterizes the Gilbert–Elliott two-state loss chain. The
// chain steps once per offered packet: in the Good state it crosses to Bad
// with probability P, in Bad it returns to Good with probability R; the
// packet is then lost with the current state's loss probability. Mean Bad
// residence is 1/R packets and the stationary Bad share is P/(P+R), which
// makes regimes easy to dial in (see WiFiBursty).
type GEConfig struct {
	P        float64 // per-packet Good→Bad transition probability
	R        float64 // per-packet Bad→Good transition probability
	LossGood float64 // loss probability in Good (typically ~0)
	LossBad  float64 // loss probability in Bad (typically ~1)
}

// StationaryLoss returns the chain's long-run loss rate — the yardstick
// the statistical property tests hold empirical drops against.
func (c GEConfig) StationaryLoss() float64 {
	if c.P+c.R <= 0 {
		return c.LossGood
	}
	pb := c.P / (c.P + c.R)
	return (1-pb)*c.LossGood + pb*c.LossBad
}

// WiFiBursty returns a GE parameterization hitting a target overall loss
// rate with a target mean burst length (packets), using the classic
// LossBad=1, LossGood=0 simplification: bursts of meanBurst consecutive
// losses arriving often enough to average lossRate.
func WiFiBursty(lossRate, meanBurst float64) GEConfig {
	if meanBurst < 1 {
		meanBurst = 1
	}
	if lossRate >= 1 {
		lossRate = 0.99
	}
	r := 1 / meanBurst
	return GEConfig{P: r * lossRate / (1 - lossRate), R: r, LossBad: 1}
}

// GilbertElliott is a LossModel running the GE chain. Create with
// NewGilbertElliott; counters are exported for measurement code.
type GilbertElliott struct {
	cfg GEConfig
	rng *rand.Rand
	bad bool

	// Offered and Losses count packets seen and packets lost.
	Offered, Losses uint64
	// BadOffered counts the packets offered while the chain sat in the
	// Bad state — BadOffered/Offered is the burst-state occupancy that
	// the metrics sampler reports.
	BadOffered uint64
}

// NewGilbertElliott builds a GE loss model with its own seeded source.
func NewGilbertElliott(seed int64, cfg GEConfig) *GilbertElliott {
	return &GilbertElliott{cfg: cfg, rng: newModelRand(seed)}
}

// Lose implements LossModel: advance the chain one packet, then sample
// loss in the resulting state. Degenerate loss probabilities (0 or 1)
// skip the sample draw, so the chain's random stream stays aligned with
// the state sequence regardless of the loss parameters.
func (g *GilbertElliott) Lose() bool {
	if g.bad {
		if g.rng.Float64() < g.cfg.R {
			g.bad = false
		}
	} else {
		if g.rng.Float64() < g.cfg.P {
			g.bad = true
		}
	}
	h := g.cfg.LossGood
	if g.bad {
		h = g.cfg.LossBad
	}
	var lost bool
	switch {
	case h >= 1:
		lost = true
	case h <= 0:
		lost = false
	default:
		lost = g.rng.Float64() < h
	}
	g.Offered++
	if g.bad {
		g.BadOffered++
	}
	if lost {
		g.Losses++
	}
	return lost
}

// Bad reports whether the chain is currently in the Bad (bursty) state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// CoDelConfig parameterizes the AQM. Zero values select the RFC 8289
// defaults: 5 ms target sojourn, 100 ms interval.
type CoDelConfig struct {
	Target   time.Duration
	Interval time.Duration
}

func (c *CoDelConfig) defaults() {
	if c.Target == 0 {
		c.Target = 5 * time.Millisecond
	}
	if c.Interval == 0 {
		c.Interval = 100 * time.Millisecond
	}
}

// CoDel is a deterministic CoDel-style AQM: when the head packet's queue
// sojourn has stayed above Target for a full Interval, it enters the
// dropping state and head-drops at a frequency growing with the square
// root of the drop count (the RFC 8289 control law), until a sojourn back
// under Target resets it. No randomness is involved, so AQM behaviour is
// a pure function of the packet arrival pattern.
type CoDel struct {
	cfg        CoDelConfig
	firstAbove time.Duration // deadline to leave the above-target grace period; 0 = not above
	dropNext   time.Duration
	dropping   bool
	count      int

	// Drops counts head drops decided by the control law.
	Drops uint64
}

// NewCoDel builds an AQM instance; install it with Link.SetAQM.
func NewCoDel(cfg CoDelConfig) *CoDel {
	cfg.defaults()
	return &CoDel{cfg: cfg}
}

// dropOnDequeue is the control law, called by the link for the head packet
// when it is dequeued for serialization.
func (c *CoDel) dropOnDequeue(now time.Duration, sojourn time.Duration) bool {
	if sojourn < c.cfg.Target {
		c.firstAbove = 0
		c.dropping = false
		c.count = 0
		return false
	}
	if c.firstAbove == 0 {
		c.firstAbove = now + c.cfg.Interval
		return false
	}
	if c.dropping {
		if now >= c.dropNext {
			c.count++
			c.Drops++
			c.dropNext = now + c.controlDelay()
			return true
		}
		return false
	}
	if now >= c.firstAbove {
		c.dropping = true
		c.count = 1
		c.Drops++
		c.dropNext = now + c.controlDelay()
		return true
	}
	return false
}

func (c *CoDel) controlDelay() time.Duration {
	return time.Duration(float64(c.cfg.Interval) / math.Sqrt(float64(c.count)))
}

// BloatConfig describes a bufferbloated access hop: a drop-tail queue
// Depth deep in time at the link's current rate (far beyond the 200 ms
// default a token bucket carries), with optional CoDel AQM in front of
// the serializer.
type BloatConfig struct {
	// Depth is the queue depth in time at the link rate; default 2 s —
	// the DSL/cable modem buffers the bufferbloat literature measured.
	Depth time.Duration
	// AQM enables CoDel on the deep queue.
	AQM   bool
	CoDel CoDelConfig
}

// DeepQueueBytes converts a time depth at a rate into a byte bound, with
// the same 5-MTU floor as DefaultQueueBytes.
func DeepQueueBytes(rateBps float64, depth time.Duration) int {
	q := int(rateBps / 8 * depth.Seconds())
	if min := 5 * 1500; q < min {
		q = min
	}
	return q
}

// ApplyBloat reconfigures l as a bufferbloated hop: the queue bound grows
// to cfg.Depth at the link's current rate and CoDel is installed or
// removed per cfg.AQM. The link must be rate-limited — on an
// unconstrained link there is no queue to bloat, so the call is a no-op.
func ApplyBloat(l *Link, cfg BloatConfig) {
	if l.Rate() <= 0 {
		return
	}
	if cfg.Depth == 0 {
		cfg.Depth = 2 * time.Second
	}
	l.SetQueueBytes(DeepQueueBytes(l.Rate(), cfg.Depth))
	if cfg.AQM {
		l.SetAQM(NewCoDel(cfg.CoDel))
	} else {
		l.SetAQM(nil)
	}
}

// RateStep is one segment of a cellular capacity trace: at offset At from
// the model's start, the link rate becomes Bps (0 = unconstrained).
type RateStep struct {
	At  time.Duration
	Bps float64
}

// CellularConfig drives a Cellular model: a capacity trace stepped against
// the link, with periodic handover gaps that pause serialization.
type CellularConfig struct {
	// Steps is the capacity trace, offsets relative to Start time. Steps
	// are applied in time order; steps at or past Until never fire.
	Steps []RateStep
	// HandoverEvery spaces handovers (0 disables them); each waits an
	// extra deterministic jitter in [0, HandoverJitter) drawn from the
	// model's own seeded source, then pauses the link for HandoverGap.
	HandoverEvery  time.Duration
	HandoverJitter time.Duration
	HandoverGap    time.Duration
	// Until is the absolute sim time the model stops at: no step or
	// handover fires later, and an in-progress gap un-pauses no later
	// than Until, so the engine always drains. Required (>0) when
	// handovers are enabled; 0 otherwise means "run the whole trace".
	Until time.Duration
	// ResizeQueue applies DefaultQueueBytes at every rate step (`tc`
	// re-shape semantics). The default keeps the queue bound fixed — a
	// device buffer is physical, which is exactly how a deep buffer at a
	// low trace rate turns into cellular bufferbloat.
	ResizeQueue bool
}

// Cellular replays a capacity trace with handover gaps against one link.
// Create with NewCellular, then Start. Like the scenario timeline it keeps
// a single pooled engine event in flight, so driving the model allocates
// nothing per step.
type Cellular struct {
	eng  *sim.Engine
	link *Link
	cfg  CellularConfig
	rng  *rand.Rand

	start   time.Duration
	step    int
	nextHO  time.Duration // absolute time of the next handover start
	gapEnd  time.Duration // absolute un-pause time while in a gap
	inGap   bool
	started bool

	// Handovers counts gaps begun.
	Handovers int
}

const cellularNever = time.Duration(math.MaxInt64)

// NewCellular binds a cellular capacity model to a link. It panics if
// handovers are enabled without an Until bound — an unbounded pause/resume
// loop would keep the engine from ever draining, which is always a
// harness-construction bug.
func NewCellular(eng *sim.Engine, l *Link, seed int64, cfg CellularConfig) *Cellular {
	if cfg.HandoverEvery > 0 && cfg.Until <= 0 {
		panic("netem: cellular handovers require an Until bound")
	}
	if cfg.Until <= 0 {
		cfg.Until = cellularNever
	}
	steps := append([]RateStep(nil), cfg.Steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	cfg.Steps = steps
	return &Cellular{eng: eng, link: l, cfg: cfg, rng: newModelRand(seed)}
}

// Start arms the model at the current sim time; steps at offset 0 apply
// immediately. Start is idempotent.
func (c *Cellular) Start() {
	if c.started {
		return
	}
	c.started = true
	c.start = c.eng.Now()
	c.nextHO = cellularNever
	if c.cfg.HandoverEvery > 0 {
		c.nextHO = c.start + c.interval()
	}
	c.run(c.eng.Now())
}

// interval draws the spacing to the next handover.
func (c *Cellular) interval() time.Duration {
	d := c.cfg.HandoverEvery
	if c.cfg.HandoverJitter > 0 {
		d += time.Duration(c.rng.Float64() * float64(c.cfg.HandoverJitter))
	}
	return d
}

// OnEvent implements sim.Handler; do not call it directly.
func (c *Cellular) OnEvent(now time.Duration) { c.run(now) }

func (c *Cellular) run(now time.Duration) {
	// Apply every trace step due by now (and still inside the bound).
	for c.step < len(c.cfg.Steps) && c.start+c.cfg.Steps[c.step].At <= now {
		st := c.cfg.Steps[c.step]
		c.step++
		if c.start+st.At >= c.cfg.Until {
			continue
		}
		c.link.SetRate(st.Bps)
		if c.cfg.ResizeQueue && st.Bps > 0 {
			c.link.SetQueueBytes(DefaultQueueBytes(st.Bps))
		}
	}
	// Close an elapsed gap before possibly opening the next one.
	if c.inGap && now >= c.gapEnd {
		c.inGap = false
		c.link.SetPaused(false)
	}
	if !c.inGap && now >= c.nextHO && now < c.cfg.Until {
		c.inGap = true
		c.Handovers++
		c.link.SetPaused(true)
		c.gapEnd = now + c.cfg.HandoverGap
		if c.gapEnd > c.cfg.Until {
			c.gapEnd = c.cfg.Until
		}
		c.nextHO = c.gapEnd + c.interval()
	}
	// Re-arm for the earliest pending instant, if any remains in bound.
	next := cellularNever
	if c.step < len(c.cfg.Steps) {
		if at := c.start + c.cfg.Steps[c.step].At; at < c.cfg.Until {
			next = at
		}
	}
	if c.inGap && c.gapEnd < next {
		next = c.gapEnd
	}
	if c.nextHO < c.cfg.Until && c.nextHO < next {
		next = c.nextHO
	}
	if next != cellularNever {
		c.eng.AtHandler(next, c)
	}
}

// Done reports whether the model has nothing left to do (all in-bound
// steps applied, no gap open, no handover pending).
func (c *Cellular) Done() bool {
	stepsLeft := c.step < len(c.cfg.Steps) && c.start+c.cfg.Steps[c.step].At < c.cfg.Until
	return c.started && !c.inGap && !stepsLeft && c.nextHO >= c.cfg.Until
}
