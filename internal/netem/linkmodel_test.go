package netem

import (
	"testing"
	"time"

	"vcalab/internal/sim"
)

// --- Gilbert–Elliott ---

// TestGEDeterminism: the chain is a pure function of (seed, config) — the
// same seed replays the identical loss sequence, and adjacent seeds
// decorrelate (the splitmix mixer, not the raw source, is what guarantees
// this for sequential fuzz seeds).
func TestGEDeterminism(t *testing.T) {
	cfg := WiFiBursty(0.05, 4)
	seq := func(seed int64, n int) []bool {
		g := NewGilbertElliott(seed, cfg)
		out := make([]bool, n)
		for i := range out {
			out[i] = g.Lose()
		}
		return out
	}
	a, b := seq(42, 5000), seq(42, 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverges from itself at packet %d", i)
		}
	}
	c := seq(43, 5000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical loss sequences")
	}
}

// TestGEStatistics holds the empirical chain against its analytic
// long-run behaviour: overall loss rate vs StationaryLoss, and — for the
// LossBad=1/LossGood=0 WiFi parameterization — mean burst length vs 1/R.
func TestGEStatistics(t *testing.T) {
	cases := []struct {
		name       string
		cfg        GEConfig
		checkBurst float64 // expected mean burst length; 0 = skip
	}{
		{"wifi 2% burst2", WiFiBursty(0.02, 2), 2},
		{"wifi 5% burst4", WiFiBursty(0.05, 4), 4},
		{"wifi 10% burst8", WiFiBursty(0.10, 8), 8},
		{"leaky good state", GEConfig{P: 0.02, R: 0.5, LossGood: 0.01, LossBad: 0.8}, 0},
	}
	const n = 200_000
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := NewGilbertElliott(7, c.cfg)
			bursts, burstLen := 0, 0
			var lenSum int
			for i := 0; i < n; i++ {
				if g.Lose() {
					if burstLen == 0 {
						bursts++
					}
					burstLen++
				} else if burstLen > 0 {
					lenSum += burstLen
					burstLen = 0
				}
			}
			if g.Offered != n {
				t.Fatalf("Offered = %d, want %d", g.Offered, n)
			}
			rate := float64(g.Losses) / float64(g.Offered)
			want := c.cfg.StationaryLoss()
			if rate < want*0.8 || rate > want*1.2 {
				t.Errorf("loss rate %.4f, want %.4f ±20%%", rate, want)
			}
			if c.checkBurst > 0 && bursts > 0 {
				mean := float64(lenSum) / float64(bursts)
				if mean < c.checkBurst*0.85 || mean > c.checkBurst*1.15 {
					t.Errorf("mean burst %.2f packets, want %.1f ±15%%", mean, c.checkBurst)
				}
			}
		})
	}
}

// TestGEDegenerateChains pins the corner parameterizations: a chain that
// can never go Bad loses nothing, a chain that can never come back loses
// everything from the first transition on.
func TestGEDegenerateChains(t *testing.T) {
	never := NewGilbertElliott(1, GEConfig{P: 0, R: 1, LossBad: 1})
	for i := 0; i < 1000; i++ {
		if never.Lose() {
			t.Fatal("P=0 chain entered Bad")
		}
	}
	always := NewGilbertElliott(1, GEConfig{P: 1, R: 0, LossBad: 1})
	for i := 0; i < 1000; i++ {
		if !always.Lose() {
			t.Fatal("P=1,R=0 chain left Bad")
		}
	}
	if !always.Bad() {
		t.Error("absorbing chain not in Bad state")
	}
}

// TestLinkLossModelAccounting: the installed model sees every offered
// packet exactly once and the link's drop counters track its verdicts;
// clearing the model restores clean delivery.
func TestLinkLossModelAccounting(t *testing.T) {
	eng := sim.New(1)
	s := &sink{}
	l := NewLink(eng, "wifi", LinkConfig{Delay: time.Millisecond}, s)
	g := NewGilbertElliott(3, WiFiBursty(0.3, 3))
	l.SetLossModel(g)
	const n = 2000
	for i := 0; i < n; i++ {
		l.Send(&Packet{Size: 100})
	}
	eng.Run()
	if g.Offered != n {
		t.Errorf("model saw %d packets, want %d", g.Offered, n)
	}
	if uint64(l.Drops) != g.Losses {
		t.Errorf("link dropped %d, model lost %d", l.Drops, g.Losses)
	}
	if int(l.Delivered)+int(l.Drops) != n {
		t.Errorf("conservation: %d + %d != %d", l.Delivered, l.Drops, n)
	}
	l.SetLossModel(nil)
	l.Send(&Packet{Size: 100})
	eng.Run()
	if g.Offered != n {
		t.Error("cleared model still consulted")
	}
}

// --- CoDel control law ---

// TestCoDelControlLaw walks the law through its states with an explicit
// (now, sojourn) script: below-target resets, the Interval grace period,
// the first drop, and the √count acceleration.
func TestCoDelControlLaw(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	c := NewCoDel(CoDelConfig{}) // 5 ms target, 100 ms interval
	steps := []struct {
		now, sojourn time.Duration
		want         bool
		note         string
	}{
		{ms(0), ms(2), false, "below target"},
		{ms(10), ms(20), false, "first above target opens the grace period"},
		{ms(50), ms(20), false, "still inside the interval"},
		{ms(110), ms(20), true, "interval elapsed: first drop"},
		{ms(150), ms(20), false, "dropNext not reached"},
		{ms(210), ms(20), true, "second drop, interval/sqrt(2) later"},
		{ms(215), ms(3), false, "below target resets the law"},
		{ms(220), ms(20), false, "grace period restarts after reset"},
	}
	for _, st := range steps {
		if got := c.dropOnDequeue(st.now, st.sojourn); got != st.want {
			t.Fatalf("t=%v sojourn=%v: drop=%v, want %v (%s)", st.now, st.sojourn, got, st.want, st.note)
		}
	}
	if c.Drops != 2 {
		t.Errorf("Drops = %d, want 2", c.Drops)
	}
}

// --- bufferbloat ---

func TestDeepQueueBytes(t *testing.T) {
	if got := DeepQueueBytes(1e6, 2*time.Second); got != 250000 {
		t.Errorf("1 Mbps x 2 s = %d bytes, want 250000", got)
	}
	if got := DeepQueueBytes(50e3, time.Second); got != 5*1500 {
		t.Errorf("tiny rate queue = %d, want the 5-MTU floor", got)
	}
}

// TestBloatEdgeCases is the table-driven edge sweep over the bloated
// link: an idle link, a single packet (never queued, so never AQM-
// judged), a saturating burst against the raw deep queue vs CoDel, and a
// mid-simulation reshape under a standing queue.
func TestBloatEdgeCases(t *testing.T) {
	const mtu = 1250 // 10 ms serialization at 1 Mbps
	cases := []struct {
		name     string
		aqm      bool
		send     int
		sendAt   time.Duration
		reshape  float64 // SetRate at 50 ms when > 0
		wantAQM  bool    // expect AQM head drops
		wantTail bool    // expect queue-full drops
	}{
		{name: "empty queue", send: 0},
		{name: "single packet", aqm: true, send: 1},
		{name: "burst drop-tail", aqm: false, send: 400, wantTail: true},
		{name: "burst codel", aqm: true, send: 400, wantAQM: true},
		{name: "reshape under load", aqm: true, send: 100, reshape: 0.25e6, wantAQM: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			eng := sim.New(5)
			s := &sink{eng: eng}
			l := NewLink(eng, "dsl", LinkConfig{RateBps: 1e6, Delay: time.Millisecond}, s)
			ApplyBloat(l, BloatConfig{Depth: time.Second, AQM: c.aqm})
			for i := 0; i < c.send; i++ {
				l.Send(&Packet{Size: mtu, Payload: i})
			}
			if c.reshape > 0 {
				eng.Schedule(50*time.Millisecond, func() { l.SetRate(c.reshape) })
			}
			eng.Run()

			if int(l.Delivered)+int(l.Drops) != c.send {
				t.Fatalf("conservation: %d delivered + %d dropped != %d sent", l.Delivered, l.Drops, c.send)
			}
			if c.send == 1 && (l.Drops != 0 || l.AQMDrops != 0) {
				t.Error("single un-queued packet was dropped")
			}
			if c.wantAQM && l.AQMDrops == 0 {
				t.Error("CoDel never head-dropped on a saturated deep queue")
			}
			if !c.aqm && l.AQMDrops != 0 {
				t.Errorf("AQMDrops = %d with no AQM installed", l.AQMDrops)
			}
			if c.wantTail && l.Drops == l.AQMDrops {
				t.Error("expected queue-full drops beyond the AQM's")
			}
			if l.AQMDrops > l.Drops {
				t.Errorf("AQMDrops %d exceeds total Drops %d", l.AQMDrops, l.Drops)
			}
			// FIFO survives bloat, AQM head drops and reshaping: delivery
			// times never decrease and payload order is preserved.
			last, lastID := time.Duration(-1), -1
			for i, p := range s.pkts {
				if s.times[i] < last {
					t.Fatalf("delivery %d at %v before previous %v", i, s.times[i], last)
				}
				last = s.times[i]
				if id := p.Payload.(int); id <= lastID {
					t.Fatalf("delivery %d reordered: payload %d after %d", i, id, lastID)
				} else {
					lastID = id
				}
			}
		})
	}
}

// TestBloatVsAQMDelay: the point of the model — without AQM a deep queue
// holds delay near its depth; CoDel pulls the standing queue back down.
func TestBloatVsAQMDelay(t *testing.T) {
	worst := func(aqm bool) time.Duration {
		eng := sim.New(5)
		var worst time.Duration
		l := NewLink(eng, "dsl", LinkConfig{RateBps: 1e6}, HandlerFunc(func(p *Packet) {
			if d := eng.Now() - p.SentAt; d > worst {
				worst = d
			}
		}))
		ApplyBloat(l, BloatConfig{Depth: time.Second, AQM: aqm})
		// Offered load 2x capacity for 4 s: 100 pkts/s of 2500 B at 1 Mbps.
		for i := 0; i < 400; i++ {
			at := time.Duration(i) * 10 * time.Millisecond
			eng.At(at, func() {
				pkt := &Packet{Size: 2500}
				pkt.SentAt = eng.Now()
				l.Send(pkt)
			})
		}
		eng.Run()
		return worst
	}
	tail := worst(false)
	codel := worst(true)
	if tail < 700*time.Millisecond {
		t.Errorf("drop-tail worst delay %v; a 1 s deep queue should bloat past 700ms", tail)
	}
	if codel > tail/2 {
		t.Errorf("CoDel worst delay %v vs drop-tail %v; AQM should at least halve it", codel, tail)
	}
}

func TestApplyBloatUnconstrainedNoop(t *testing.T) {
	eng := sim.New(1)
	l := NewLink(eng, "fast", LinkConfig{}, &sink{})
	ApplyBloat(l, BloatConfig{Depth: time.Second, AQM: true})
	if l.aqm != nil || l.cfg.QueueBytes != 0 {
		t.Error("ApplyBloat touched an unconstrained link")
	}
}

// --- pause gate ---

// TestLinkSetPaused pins the handover-gap semantics: the in-service
// packet finishes on the wire, arrivals queue behind the gate, and
// unpausing flushes the queue in order.
func TestLinkSetPaused(t *testing.T) {
	eng := sim.New(1)
	s := &sink{eng: eng}
	l := NewLink(eng, "lte", LinkConfig{RateBps: 1e6, QueueBytes: 1 << 20}, s)
	l.Send(&Packet{Size: 1250}) // serialization done at 10 ms
	l.Send(&Packet{Size: 1250}) // queued
	eng.Schedule(5*time.Millisecond, func() { l.SetPaused(true) })
	eng.Schedule(20*time.Millisecond, func() {
		l.Send(&Packet{Size: 1250}) // arrives mid-gap: queues
	})
	eng.Schedule(50*time.Millisecond, func() { l.SetPaused(false) })
	eng.Run()
	want := []time.Duration{10 * time.Millisecond, 60 * time.Millisecond, 70 * time.Millisecond}
	if len(s.times) != len(want) {
		t.Fatalf("delivered %d packets, want %d", len(s.times), len(want))
	}
	for i := range want {
		if s.times[i] != want[i] {
			t.Errorf("delivery %d at %v, want %v", i, s.times[i], want[i])
		}
	}
	if l.Paused() {
		t.Error("link still reports paused")
	}
}

// TestLinkPausedIdempotent: redundant pause/unpause calls don't double-
// start the serializer or lose the queue.
func TestLinkPausedIdempotent(t *testing.T) {
	eng := sim.New(1)
	s := &sink{eng: eng}
	l := NewLink(eng, "lte", LinkConfig{RateBps: 1e6, QueueBytes: 1 << 20}, s)
	l.SetPaused(true)
	l.SetPaused(true)
	l.Send(&Packet{Size: 1250})
	l.SetPaused(false)
	l.SetPaused(false)
	eng.Run()
	if len(s.times) != 1 || s.times[0] != 10*time.Millisecond {
		t.Errorf("deliveries %v, want exactly one at 10ms", s.times)
	}
}

// --- cellular ---

// TestCellularTrace drives a two-step trace with one handover through a
// link and checks the schedule: rates step on time, the gap pauses and
// resumes serialization, and the model reports Done with no events left.
func TestCellularTrace(t *testing.T) {
	eng := sim.New(2)
	l := NewLink(eng, "lte", LinkConfig{RateBps: 1e6}, &sink{})
	cfg := CellularConfig{
		Steps: []RateStep{
			{At: 0, Bps: 2e6},
			{At: 100 * time.Millisecond, Bps: 0.5e6},
		},
		HandoverEvery: 200 * time.Millisecond,
		HandoverGap:   50 * time.Millisecond,
		Until:         400 * time.Millisecond,
	}
	c := NewCellular(eng, l, 1, cfg)
	c.Start()
	c.Start() // idempotent
	type probe struct {
		at     time.Duration
		rate   float64
		paused bool
	}
	probes := []probe{
		{50 * time.Millisecond, 2e6, false},
		{150 * time.Millisecond, 0.5e6, false},
		{220 * time.Millisecond, 0.5e6, true},  // inside the gap
		{260 * time.Millisecond, 0.5e6, false}, // gap closed at 250 ms
	}
	for _, p := range probes {
		p := p
		eng.At(p.at, func() {
			if l.Rate() != p.rate {
				t.Errorf("t=%v: rate %v, want %v", p.at, l.Rate(), p.rate)
			}
			if l.Paused() != p.paused {
				t.Errorf("t=%v: paused %v, want %v", p.at, l.Paused(), p.paused)
			}
		})
	}
	eng.Run()
	if c.Handovers != 1 {
		t.Errorf("Handovers = %d, want 1 (next would land past Until)", c.Handovers)
	}
	if !c.Done() {
		t.Error("model not Done after the bound")
	}
	if l.Paused() {
		t.Error("link left paused past Until")
	}
	if n := eng.Live(); n != 0 {
		t.Errorf("%d pooled events live after drain", n)
	}
}

// TestCellularGapClampedToUntil: a gap opening just before the bound
// un-pauses at Until, never later — the drain guarantee.
func TestCellularGapClampedToUntil(t *testing.T) {
	eng := sim.New(2)
	l := NewLink(eng, "lte", LinkConfig{RateBps: 1e6}, &sink{})
	c := NewCellular(eng, l, 1, CellularConfig{
		HandoverEvery: 90 * time.Millisecond,
		HandoverGap:   time.Minute, // absurd gap, must clamp
		Until:         100 * time.Millisecond,
	})
	c.Start()
	eng.Run()
	if eng.Now() > 100*time.Millisecond {
		t.Errorf("model ran to %v, past its 100ms bound", eng.Now())
	}
	if l.Paused() {
		t.Error("gap straddling Until left the link paused")
	}
}

// TestCellularDeterminism: handover jitter comes from the model's own
// seeded source — equal seeds replay the same schedule, different seeds
// move the gaps.
func TestCellularDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		eng := sim.New(1)
		l := NewLink(eng, "lte", LinkConfig{RateBps: 1e6}, &sink{})
		c := NewCellular(eng, l, seed, CellularConfig{
			HandoverEvery:  50 * time.Millisecond,
			HandoverJitter: 40 * time.Millisecond,
			HandoverGap:    10 * time.Millisecond,
			Until:          time.Second,
		})
		var gaps []time.Duration
		c.Start()
		for at := 0 * time.Millisecond; at < time.Second; at += time.Millisecond {
			at := at
			eng.At(at, func() {
				if l.Paused() {
					gaps = append(gaps, at)
				}
			})
		}
		eng.Run()
		return gaps
	}
	a, b := run(11), run(11)
	if len(a) == 0 {
		t.Fatal("no paused samples observed")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different gap schedules: %d vs %d samples", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at sample %d", i)
		}
	}
	c := run(12)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 11 and 12 produced identical handover schedules")
	}
}

func TestNewCellularUnboundedHandoversPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("handovers without Until did not panic")
		}
	}()
	eng := sim.New(1)
	NewCellular(eng, NewLink(eng, "l", LinkConfig{RateBps: 1e6}, &sink{}), 1,
		CellularConfig{HandoverEvery: time.Second})
}

// --- packet-pool conservation ---

// TestDropPathsReleasePooledPackets is the pool-leak regression: every
// terminal point — delivery, queue-full drop, loss-model drop, AQM head
// drop, unrouteable — must Release the pooled packet. A forgotten
// Release shows up as PoolLive > 0 after the drain.
func TestDropPathsReleasePooledPackets(t *testing.T) {
	cases := []struct {
		name string
		prep func(eng *sim.Engine, src, dst *Host) *Link
		n    int
	}{
		{"delivery", func(eng *sim.Engine, src, dst *Host) *Link {
			return NewLink(eng, "l", LinkConfig{RateBps: 1e6, QueueBytes: 1 << 20}, dst)
		}, 50},
		{"queue-full drop", func(eng *sim.Engine, src, dst *Host) *Link {
			return NewLink(eng, "l", LinkConfig{RateBps: 1e6, QueueBytes: 2500}, dst)
		}, 200},
		{"loss-model drop", func(eng *sim.Engine, src, dst *Host) *Link {
			l := NewLink(eng, "l", LinkConfig{RateBps: 1e6, QueueBytes: 1 << 20}, dst)
			l.SetLossModel(NewGilbertElliott(1, GEConfig{P: 1, R: 0, LossBad: 1}))
			return l
		}, 200},
		{"aqm drop", func(eng *sim.Engine, src, dst *Host) *Link {
			l := NewLink(eng, "l", LinkConfig{RateBps: 1e6, QueueBytes: 1 << 20}, dst)
			ApplyBloat(l, BloatConfig{Depth: 2 * time.Second, AQM: true})
			return l
		}, 400},
		{"unrouteable", func(eng *sim.Engine, src, dst *Host) *Link {
			// dst has no handler for the port: Deliver discards.
			return NewLink(eng, "l", LinkConfig{RateBps: 1e6, QueueBytes: 1 << 20}, dst)
		}, 50},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			eng := sim.New(8)
			src, dst := NewHost(eng, "src"), NewHost(eng, "dst")
			if c.name != "unrouteable" {
				dst.HandleFunc(80, func(p *Packet) {})
			}
			l := c.prep(eng, src, dst)
			src.SetUplink(l)
			for i := 0; i < c.n; i++ {
				pkt := src.NewPacket()
				pkt.Size = 1250
				pkt.To = Addr{Host: "dst", Port: 80}
				src.Send(pkt)
			}
			eng.Run()
			if live := src.PoolLive(); live != 0 {
				t.Errorf("%d pooled packets leaked (of %d sent, %d dropped)", live, c.n, l.Drops)
			}
			if c.name == "aqm drop" && l.AQMDrops == 0 {
				t.Skip("workload never triggered the AQM; case not exercised")
			}
		})
	}
}
