package vca

import (
	"time"

	"vcalab/internal/cc"
	"vcalab/internal/codec"
)

// Kind identifies the VCA family.
type Kind int

// The three VCAs the paper studies.
const (
	KindMeet Kind = iota
	KindZoom
	KindTeams
)

func (k Kind) String() string {
	switch k {
	case KindMeet:
		return "meet"
	case KindZoom:
		return "zoom"
	case KindTeams:
		return "teams"
	}
	return "unknown"
}

// MediaMode is the encoding strategy (§2.1, §4.2).
type MediaMode int

// Encoding strategies.
const (
	ModeSingle    MediaMode = iota // one stream (Teams)
	ModeSimulcast                  // two parallel copies (Meet)
	ModeSVC                        // hierarchical layers (Zoom)
)

// Tier is a layout-driven quality request (§6): how big the tile showing a
// participant is determines the resolution the sender is asked for.
type Tier int

// Quality tiers, ordered.
const (
	TierThumb Tier = iota
	TierLow
	TierMed
	TierHigh
	TierSpeaker
)

// Profile is the complete calibration of one VCA client+server pair.
// Every constant cites the paper section it reproduces; changing a profile
// is the supported way to model a new VCA (see DESIGN.md §6).
type Profile struct {
	Name string
	Kind Kind

	// AudioBps is the constant audio rate (not adapted by any VCA).
	AudioBps float64

	// VideoNominalBps is the steady-state total video target on an
	// unconstrained link in a 2-party call (Table 2 minus audio).
	VideoNominalBps float64

	// NewClientCC builds the uplink congestion controller, given the
	// nominal video rate the current call modality asks for.
	NewClientCC func(nominalBps float64) cc.Controller

	// NewServerCC builds the per-receiver downlink controller at the SFU.
	// Nil means the server is a pure relay (Teams, §4.2) and the far
	// sender governs the downlink end-to-end.
	NewServerCC func() cc.Controller

	// MediaMode selects the encoding strategy; the fields below
	// configure it.
	MediaMode MediaMode
	Ladder    codec.Ladder // main video ladder (Fig 2 shapes)
	LowLadder codec.Ladder // Meet's low simulcast copy
	SVCSplit  []float64    // Zoom's per-layer byte shares

	// SimLowCapBps / SimMinHighBps configure Meet's simulcast split
	// (§3.1: low copy ≈ 0.19 Mbps; high copy off when starved).
	SimLowCapBps  float64
	SimMinHighBps float64

	// ServerFECOverhead is the FEC fraction the relay adds when
	// forwarding (§3.1: Zoom downstream ≈ 1.2x upstream).
	ServerFECOverhead float64

	// ThinZoneLow/High bound the Meet SFU's temporal-thinning zone: when a
	// receiver's estimate is between ThinZoneLow and ThinZoneHigh times
	// the high-copy rate, the SFU drops frames instead of switching down
	// (§3.2: FPS-first downlink adaptation between 0.7–1 Mbps).
	ThinZoneLow, ThinZoneHigh float64

	// TierBps maps layout tiers to video target rates (§6).
	TierBps map[Tier]float64

	// GalleryTier returns the tier a sender is asked for in an n-party
	// gallery call (§6.1 tile-shrink behaviour).
	GalleryTier func(n int) Tier

	// VisibleTiles is how many remote participants a receiver displays
	// (§6.1: Teams has a fixed 4-tile layout on Linux).
	VisibleTiles func(n int) int

	// ForwardFactor is the fraction of frames the relay forwards per
	// displayed stream in an n-party call (Teams' unexplained large-call
	// downstream reduction, §6.1; 1 elsewhere).
	ForwardFactor func(n int) float64

	// SpeakerUplinkBps overrides the pinned sender's video target in
	// speaker mode; nil uses TierBps[TierSpeaker]. Teams' anomalous
	// participant-scaling uplink (§6.2: 1.25→2.9 Mbps) lives here.
	SpeakerUplinkBps func(n int) float64

	// KeyInterval is the periodic intra-refresh interval (default 10 s).
	KeyInterval time.Duration

	// Recovery tunes the NACK/RTX + jitter-buffer loss-recovery loop
	// (recovery.go). The zero value means defaults; the loop only runs
	// when CallOptions.Recovery is set.
	Recovery RecoveryConfig

	// StallEvery/StallDur model random encoder pipeline stalls. The
	// paper observes Teams-Chrome freezing 3.6%% of the time even on an
	// unconstrained link (§3.2, "implementation problems or poor design
	// choices"); these stalls reproduce that.
	StallEvery, StallDur time.Duration
}

// videoTier returns the tier's target rate.
func (p *Profile) videoTier(t Tier) float64 { return p.TierBps[t] }

// Meet returns the Google Meet profile (Chrome client; Meet is native in
// the browser, §2.2).
func Meet() *Profile {
	p := &Profile{
		Name:            "meet",
		Kind:            KindMeet,
		AudioBps:        40_000,
		VideoNominalBps: 910_000, // 0.19 low + 0.72 high (§3.1, Table 2: 0.95 up with audio)
		MediaMode:       ModeSimulcast,
		SimLowCapBps:    190_000,
		SimMinHighBps:   260_000,
		// §3.2: fps-first adaptation when the receiver estimate sits at
		// 0.82–1.0x the high copy's rate (the paper's 0.7–1.0 Mbps
		// range); below that the SFU switches to the low copy.
		ThinZoneLow:  0.82,
		ThinZoneHigh: 1.00,
		// High-copy ladder (drives Fig 2d-f): QP-first degradation from
		// 1.0 down to ~0.5 Mbps, then width+FPS reduction at 0.4 and below.
		Ladder: codec.Ladder{Rungs: []codec.Rung{
			{LoBps: 0, FPS: 8, Width: 320, Height: 180, QPLo: 40, QPHi: 42},
			{LoBps: 150_000, FPS: 24, Width: 320, Height: 180, QPLo: 33, QPHi: 40},
			{LoBps: 430_000, FPS: 30, Width: 640, Height: 360, QPLo: 22, QPHi: 37},
		}},
		// Low copy: 320x180 at full frame rate (§3.1/§3.2: the low
		// simulcast stream keeps ~30 FPS even below 0.5 Mbps).
		LowLadder: codec.Ladder{Rungs: []codec.Rung{
			{LoBps: 0, FPS: 30, Width: 320, Height: 180, QPLo: 33, QPHi: 33},
			{LoBps: 170_000, FPS: 30, Width: 320, Height: 180, QPLo: 38, QPHi: 38},
		}},
		TierBps: map[Tier]float64{
			TierThumb:   90_000,
			TierLow:     190_000,
			TierMed:     560_000,
			TierHigh:    720_000,
			TierSpeaker: 960_000,
		},
	}
	p.NewClientCC = func(nominal float64) cc.Controller {
		return cc.NewGCC(cc.DefaultGCCConfig(cc.Range{
			// Fig 1a: Meet still sends ~0.27 Mbps through a 0.3 Mbps
			// uplink — its video floor sits near 230 kbps.
			MinBps: 230_000, MaxBps: 1.05 * nominal, StartBps: 0.7 * nominal,
		}))
	}
	p.NewServerCC = func() cc.Controller {
		return cc.NewGCC(cc.ServerGCCConfig(cc.Range{
			MinBps: 100_000, MaxBps: 10e6, StartBps: 1e6,
		}))
	}
	p.GalleryTier = func(n int) Tier {
		switch {
		case n <= 2:
			return TierHigh
		case n <= 6:
			return TierMed
		default:
			return TierLow // §6.1: Meet uplink collapses at n = 7
		}
	}
	p.VisibleTiles = func(n int) int { return n - 1 }
	p.ForwardFactor = func(int) float64 { return 1 }
	return p
}

// Zoom returns the Zoom native-client profile.
func Zoom() *Profile {
	p := &Profile{
		Name:            "zoom",
		Kind:            KindZoom,
		AudioBps:        40_000,
		VideoNominalBps: 740_000, // Table 2: 0.78 Mbps up with audio
		MediaMode:       ModeSVC,
		SVCSplit:        []float64{0.40, 0.30, 0.30},
		// §3.1: downstream ≈ 1.2x upstream via server-generated FEC.
		ServerFECOverhead: 0.18,
		Ladder: codec.Ladder{Rungs: []codec.Rung{
			{LoBps: 0, FPS: 12, Width: 320, Height: 180, QPLo: 36, QPHi: 42},
			{LoBps: 300_000, FPS: 22, Width: 480, Height: 270, QPLo: 30, QPHi: 38},
			{LoBps: 600_000, FPS: 30, Width: 640, Height: 360, QPLo: 23, QPHi: 32},
			{LoBps: 1_000_000, FPS: 30, Width: 960, Height: 540, QPLo: 17, QPHi: 26},
		}},
		TierBps: map[Tier]float64{
			TierThumb:   90_000,
			TierLow:     360_000,
			TierMed:     560_000,
			TierHigh:    740_000,
			TierSpeaker: 960_000,
		},
	}
	p.NewClientCC = func(nominal float64) cc.Controller {
		return cc.NewZoomCC(cc.DefaultZoomConfig(cc.Range{
			MinBps: 200_000, MaxBps: 1.75 * nominal, StartBps: nominal,
		}, nominal))
	}
	p.NewServerCC = func() cc.Controller {
		// Loss-based GCC with recovery probing, plus Zoom's own loss
		// tolerance is reflected in the higher LossHigh threshold: the
		// relay keeps layers flowing under loss its FEC can absorb.
		cfg := cc.ServerGCCConfig(cc.Range{MinBps: 150_000, MaxBps: 10e6, StartBps: 1e6})
		cfg.LossHigh = 0.22
		return cc.NewGCC(cfg)
	}
	p.GalleryTier = func(n int) Tier {
		if n <= 4 {
			return TierHigh // §6.1: 2x2 grid up to 4 participants
		}
		return TierLow // 5th participant shrinks every tile
	}
	p.VisibleTiles = func(n int) int { return n - 1 }
	p.ForwardFactor = func(int) float64 { return 1 }
	return p
}

// Teams returns the Microsoft Teams native-client profile.
func Teams() *Profile {
	p := &Profile{
		Name:            "teams",
		Kind:            KindTeams,
		AudioBps:        40_000,
		VideoNominalBps: 1_400_000, // §3.1: Teams-native 1.44 Mbps at 10 Mbps uplink
		MediaMode:       ModeSingle,
		// Fig 2 (Teams-Chrome shares the shape): all three parameters
		// degrade together; the bottom rung reproduces the paper's
		// width-increase bug at 0.3 Mbps (Fig 2f) — 640 wide below the
		// 480-wide rung above it.
		Ladder: codec.Ladder{
			Rungs: []codec.Rung{
				{LoBps: 0, FPS: 13, Width: 640, Height: 360, QPLo: 38, QPHi: 44},
				{LoBps: 350_000, FPS: 18, Width: 480, Height: 270, QPLo: 32, QPHi: 40},
				{LoBps: 700_000, FPS: 25, Width: 640, Height: 360, QPLo: 26, QPHi: 34},
				{LoBps: 1_100_000, FPS: 30, Width: 960, Height: 540, QPLo: 18, QPHi: 28},
			},
			Jitter: 0.10,
		},
		TierBps: map[Tier]float64{
			TierThumb:   90_000,
			TierLow:     360_000,
			TierMed:     700_000,
			TierHigh:    1_400_000,
			TierSpeaker: 1_250_000,
		},
	}
	p.NewClientCC = func(nominal float64) cc.Controller {
		return cc.NewTeamsCC(cc.DefaultTeamsConfig(cc.Range{
			// Low floor: §5.1/Fig 10b shows Teams yielding to ~0.1 Mbps
			// (20%% of a 0.5 Mbps link) under competition.
			MinBps: 100_000, MaxBps: 1.04 * nominal, StartBps: 0.5 * nominal,
		}))
	}
	p.NewServerCC = nil // pure relay: §4.2 "this server acts only as a relay"
	p.GalleryTier = func(n int) Tier { return TierHigh }
	p.VisibleTiles = func(n int) int {
		if n-1 < 4 {
			return n - 1
		}
		return 4 // fixed 4-tile layout on Linux (§6.1)
	}
	p.ForwardFactor = func(n int) float64 {
		// §6.1: downstream rises to n=5 then falls; uplink is flat. The
		// paper could not explain the fall; we model it as relay-side
		// temporal thinning that intensifies in large calls.
		switch {
		case n <= 2:
			return 1
		case n <= 5:
			return 0.55
		default:
			return 0.35
		}
	}
	p.SpeakerUplinkBps = func(n int) float64 {
		// §6.2: pinned Teams uplink grows from 1.25 Mbps (n=3) to
		// 2.9 Mbps (n=8), all to a single server — unexplained in the
		// paper; reproduced as a linear participant scaling.
		bps := 1_250_000 + 330_000*float64(n-3)
		if bps < 1_250_000 {
			bps = 1_250_000
		}
		return bps
	}
	return p
}

// TeamsChrome returns the Teams browser-client profile (§3.1, Fig 1c: the
// Chrome client uses markedly less of a constrained uplink than native —
// 0.61 vs 0.84 Mbps at 1 Mbps — and §3.2/Fig 2-3: noisier encoding, freezes
// even unconstrained).
func TeamsChrome() *Profile {
	p := Teams()
	p.Name = "teams-chrome"
	p.VideoNominalBps = 1_150_000
	// §3.2/Fig 3a: Teams-Chrome freezes ~3.6%% of the time even
	// unconstrained; modeled as random encoder stalls.
	p.StallEvery = 8 * time.Second
	p.StallDur = 300 * time.Millisecond
	p.Ladder.Jitter = 0.28 // high across-run variance (Fig 2 bands)
	p.TierBps[TierHigh] = 1_150_000
	p.NewClientCC = func(nominal float64) cc.Controller {
		cfg := cc.DefaultTeamsConfig(cc.Range{
			MinBps: 100_000, MaxBps: 1.04 * nominal, StartBps: 0.4 * nominal,
		})
		// Browser client: even more skittish and slower to recover.
		cfg.DelayBackoff = 40 * time.Millisecond
		cfg.LossBackoff = 0.015
		cfg.BackoffFactor = 0.7
		cfg.RampInitBpsPerSec = 8_000
		cfg.RampMaxBpsPerSec = 160_000
		return cc.NewTeamsCC(cfg)
	}
	return p
}

// ZoomChrome returns the Zoom browser-client profile (Fig 1c: utilization
// close to native; §3.2: uses DataChannels, so no WebRTC video stats).
func ZoomChrome() *Profile {
	p := Zoom()
	p.Name = "zoom-chrome"
	p.VideoNominalBps = 700_000
	p.NewClientCC = func(nominal float64) cc.Controller {
		return cc.NewZoomCC(cc.DefaultZoomConfig(cc.Range{
			MinBps: 100_000, MaxBps: 1.6 * nominal, StartBps: nominal,
		}, nominal))
	}
	return p
}

// Profiles returns all five client profiles keyed by name.
func Profiles() map[string]*Profile {
	out := map[string]*Profile{}
	for _, p := range []*Profile{Meet(), Zoom(), Teams(), TeamsChrome(), ZoomChrome()} {
		out[p.Name] = p
	}
	return out
}
