package vca

import (
	"testing"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
)

// lab is a miniature version of the paper's testbed: clients behind a
// switch, a shaped switch-router hop, and remote hosts at the router.
type lab struct {
	eng      *sim.Engine
	rt, sw   *netem.Router
	up, down *netem.Link
}

func newLab(eng *sim.Engine, upBps, downBps float64) *lab {
	l := &lab{eng: eng, rt: netem.NewRouter("rt"), sw: netem.NewRouter("sw")}
	l.up = netem.NewLink(eng, "bottleneck/up", netem.LinkConfig{RateBps: upBps, Delay: 5 * time.Millisecond}, l.rt)
	l.down = netem.NewLink(eng, "bottleneck/down", netem.LinkConfig{RateBps: downBps, Delay: 5 * time.Millisecond}, l.sw)
	l.sw.DefaultRoute(l.up)
	return l
}

// clientHost creates a host behind the shaped bottleneck.
func (l *lab) clientHost(name string) *netem.Host {
	h := netem.NewHost(l.eng, name)
	h.SetUplink(netem.NewLink(l.eng, name+"-sw", netem.LinkConfig{Delay: 100 * time.Microsecond}, l.sw))
	l.sw.Route(name, netem.NewLink(l.eng, "sw-"+name, netem.LinkConfig{Delay: 100 * time.Microsecond}, h))
	l.rt.Route(name, l.down)
	return h
}

// remoteHost creates an unconstrained host at the router (SFU, far client).
func (l *lab) remoteHost(name string, delay time.Duration) *netem.Host {
	h := netem.NewHost(l.eng, name)
	h.SetUplink(netem.NewLink(l.eng, name+"-rt", netem.LinkConfig{Delay: delay}, l.rt))
	l.rt.Route(name, netem.NewLink(l.eng, "rt-"+name, netem.LinkConfig{Delay: delay}, h))
	return h
}

// twoParty builds the standard 2-party call of §2.2.
func twoParty(eng *sim.Engine, prof *Profile, upBps, downBps float64) (*Call, *lab) {
	l := newLab(eng, upBps, downBps)
	c1 := l.clientHost("c1")
	c2 := l.remoteHost("c2", 5*time.Millisecond)
	sfu := l.remoteHost("sfu", 15*time.Millisecond)
	call := NewCall(eng, prof, sfu, []*netem.Host{c1, c2}, CallOptions{Seed: 42})
	return call, l
}

// meanUpDown runs the call for dur and returns C1's mean up/down Mbps over
// the second half (steady state).
func meanUpDown(eng *sim.Engine, call *Call, dur time.Duration) (up, down float64) {
	call.Start()
	eng.RunUntil(dur)
	call.Stop()
	up = call.C1().UpMeter.MeanRateMbps(dur/2, dur)
	down = call.C1().DownMeter.MeanRateMbps(dur/2, dur)
	return up, down
}

func TestUnconstrainedUtilization(t *testing.T) {
	// Table 2: Meet 0.95/0.84, Teams 1.40/1.86, Zoom 0.78/0.95 Mbps.
	// We check ±25% on upstream, and the structural relations: Zoom's
	// downstream exceeds its upstream (server FEC); Teams uses the most;
	// Zoom the least upstream.
	cases := []struct {
		prof   *Profile
		wantUp float64
	}{
		{Meet(), 0.95},
		{Zoom(), 0.78},
		{Teams(), 1.44},
	}
	got := map[string][2]float64{}
	for _, c := range cases {
		eng := sim.New(1)
		call, _ := twoParty(eng, c.prof, 0, 0)
		up, down := meanUpDown(eng, call, 90*time.Second)
		got[c.prof.Name] = [2]float64{up, down}
		if up < 0.75*c.wantUp || up > 1.25*c.wantUp {
			t.Errorf("%s unconstrained up = %.2f Mbps, want %.2f +-25%%", c.prof.Name, up, c.wantUp)
		}
		if down < 0.3 {
			t.Errorf("%s downstream dead: %.2f Mbps", c.prof.Name, down)
		}
	}
	// Mean upstream includes Zoom's periodic probe bursts, so the
	// observable FEC asymmetry is smaller than Table 2's median ratio.
	if z := got["zoom"]; z[1] < 1.04*z[0] {
		t.Errorf("zoom down (%.2f) should exceed up (%.2f) via server FEC", z[1], z[0])
	}
	if got["teams"][0] < got["meet"][0] || got["meet"][0] < got["zoom"][0] {
		t.Errorf("upstream ordering wrong: teams=%.2f meet=%.2f zoom=%.2f",
			got["teams"][0], got["meet"][0], got["zoom"][0])
	}
}

func TestConstrainedUplinkUtilization(t *testing.T) {
	// Fig 1a: all three VCAs use >85% of a 0.5 Mbps uplink.
	for _, prof := range []*Profile{Meet(), Zoom(), Teams()} {
		eng := sim.New(2)
		call, _ := twoParty(eng, prof, 0.5e6, 0)
		up, _ := meanUpDown(eng, call, 120*time.Second)
		if up < 0.36 || up > 0.56 {
			t.Errorf("%s at 0.5 Mbps uplink sends %.2f Mbps, want 0.36-0.56 (>72%% util)", prof.Name, up)
		}
	}
}

func TestMeetDownlinkFloor(t *testing.T) {
	// Fig 1b / §3.1: with a 0.5 Mbps downlink Meet receives only
	// ~0.19 Mbps — the relay is stuck on the low simulcast copy.
	eng := sim.New(3)
	call, _ := twoParty(eng, Meet(), 0, 0.5e6)
	_, down := meanUpDown(eng, call, 120*time.Second)
	if down < 0.10 || down > 0.33 {
		t.Errorf("meet at 0.5 Mbps downlink receives %.2f Mbps, want ~0.19 (low copy)", down)
	}
}

func TestZoomDownstreamTracksConstrainedDownlink(t *testing.T) {
	eng := sim.New(4)
	call, _ := twoParty(eng, Zoom(), 0, 0.8e6)
	_, down := meanUpDown(eng, call, 120*time.Second)
	if down < 0.5 || down > 0.85 {
		t.Errorf("zoom at 0.8 Mbps downlink receives %.2f Mbps, want 0.5-0.85", down)
	}
}

func TestTeamsChromeLowerThanNative(t *testing.T) {
	// Fig 1c: at 1 Mbps uplink, Teams-native ~0.84 vs Teams-Chrome ~0.61.
	run := func(p *Profile) float64 {
		eng := sim.New(5)
		call, _ := twoParty(eng, p, 1e6, 0)
		up, _ := meanUpDown(eng, call, 120*time.Second)
		return up
	}
	native := run(Teams())
	chrome := run(TeamsChrome())
	if chrome >= native {
		t.Errorf("teams-chrome (%.2f) should use less than native (%.2f) at 1 Mbps", chrome, native)
	}
	if native < 0.6 {
		t.Errorf("teams native at 1 Mbps = %.2f, want >= 0.6", native)
	}
}

func TestFIRsUnderConstrainedUplink(t *testing.T) {
	// Fig 3b: Teams-Chrome FIR count spikes at uplink <= 0.5 Mbps.
	run := func(upBps float64) int {
		eng := sim.New(6)
		call, _ := twoParty(eng, TeamsChrome(), upBps, 0)
		call.Start()
		eng.RunUntil(150 * time.Second)
		call.Stop()
		return call.C1().FIRsForMyVideo
	}
	low := run(0.3e6)
	high := run(5e6)
	if low <= high {
		t.Errorf("FIRs at 0.3 Mbps (%d) should exceed FIRs at 5 Mbps (%d)", low, high)
	}
}

func TestWebRTCStatsRecorded(t *testing.T) {
	eng := sim.New(7)
	call, _ := twoParty(eng, Meet(), 0, 0)
	call.Start()
	eng.RunUntil(30 * time.Second)
	call.Stop()
	rec := call.C1().Recorder
	if len(rec.Samples) < 25 {
		t.Fatalf("recorded %d samples in 30s, want ~30", len(rec.Samples))
	}
	out := rec.MedianOut(10*time.Second, 30*time.Second)
	if out.Width != 640 || out.FPS != 30 {
		t.Errorf("meet unconstrained outbound params = %+v, want 640x360@30", out)
	}
	in := rec.MedianIn(10*time.Second, 30*time.Second)
	if in.FPS < 20 {
		t.Errorf("inbound FPS = %v, want ~30", in.FPS)
	}
}

func TestLayoutBudgets(t *testing.T) {
	// §6.1: Zoom's sender budget drops when the 5th participant joins;
	// Meet's at the 7th; Teams' stays flat.
	budget := func(p *Profile, n int, mode ViewMode) float64 {
		eng := sim.New(8)
		l := newLab(eng, 0, 0)
		hosts := []*netem.Host{l.clientHost("c1")}
		for i := 2; i <= n; i++ {
			hosts = append(hosts, l.remoteHost(hostName(i), 5*time.Millisecond))
		}
		sfu := l.remoteHost("sfu", 15*time.Millisecond)
		call := NewCall(eng, p, sfu, hosts, CallOptions{Mode: mode, Seed: 1})
		return call.C1().TierBps()
	}
	if b4, b5 := budget(Zoom(), 4, Gallery), budget(Zoom(), 5, Gallery); b5 >= b4 {
		t.Errorf("zoom budget n=5 (%v) should drop below n=4 (%v)", b5, b4)
	}
	if b6, b7 := budget(Meet(), 6, Gallery), budget(Meet(), 7, Gallery); b7 >= b6 {
		t.Errorf("meet budget n=7 (%v) should drop below n=6 (%v)", b7, b6)
	}
	if b2, b8 := budget(Teams(), 2, Gallery), budget(Teams(), 8, Gallery); b2 != b8 {
		t.Errorf("teams gallery budget should be flat: n=2 %v vs n=8 %v", b2, b8)
	}
	// §6.2: Teams pinned uplink grows with participants; Zoom/Meet don't.
	if s3, s8 := budget(Teams(), 3, Speaker), budget(Teams(), 8, Speaker); s8 <= s3 {
		t.Errorf("teams speaker budget should grow: n=3 %v vs n=8 %v", s3, s8)
	}
	if s3, s8 := budget(Zoom(), 3, Speaker), budget(Zoom(), 8, Speaker); s3 != s8 {
		t.Errorf("zoom speaker budget should be flat: %v vs %v", s3, s8)
	}
}

func hostName(i int) string { return "c" + string(rune('0'+i)) }

func TestMultiPartyCallRuns(t *testing.T) {
	eng := sim.New(9)
	l := newLab(eng, 0, 0)
	hosts := []*netem.Host{l.clientHost("c1")}
	for i := 2; i <= 5; i++ {
		hosts = append(hosts, l.remoteHost(hostName(i), 5*time.Millisecond))
	}
	sfu := l.remoteHost("sfu", 15*time.Millisecond)
	call := NewCall(eng, Zoom(), sfu, hosts, CallOptions{Seed: 3})
	call.Start()
	eng.RunUntil(30 * time.Second)
	call.Stop()
	down := call.C1().DownMeter.MeanRateMbps(15*time.Second, 30*time.Second)
	up := call.C1().UpMeter.MeanRateMbps(15*time.Second, 30*time.Second)
	if down < 0.5 {
		t.Errorf("5-party zoom downstream = %.2f Mbps, want >= 0.5 (4 streams)", down)
	}
	if up < 0.2 || up > 0.7 {
		t.Errorf("5-party zoom upstream = %.2f Mbps, want ~0.4 (TierLow)", up)
	}
}

func TestCallStopsCleanly(t *testing.T) {
	eng := sim.New(10)
	call, _ := twoParty(eng, Teams(), 0, 0)
	call.Start()
	eng.RunUntil(5 * time.Second)
	call.Stop()
	upBefore := call.C1().UpMeter.TotalBytes()
	eng.RunUntil(10 * time.Second)
	if call.C1().UpMeter.TotalBytes() != upBefore {
		t.Error("client kept sending after Stop")
	}
}

func TestDeterministicCalls(t *testing.T) {
	run := func() float64 {
		eng := sim.New(11)
		call, _ := twoParty(eng, Zoom(), 1e6, 1e6)
		up, _ := meanUpDown(eng, call, 60*time.Second)
		return up
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical seeds diverged: %v vs %v", a, b)
	}
}

// Rate keys must stay collision-free for every SVC layer index (the dense
// successor of the old svcKey regression: deep ladders must not corrupt
// per-stream rate tracking).
func TestRateKeyAllLayers(t *testing.T) {
	seen := map[int]uint8{}
	for _, stream := range []string{"video", "sim/low", "sim/high", "audio", "pad", "fec"} {
		mp := &MediaPacket{StreamID: stream, RK: streamRK(stream)}
		k := mp.rateKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("rate key collision: %q and rk %d share index %d", stream, prev, k)
		}
		seen[k] = mp.RK
	}
	for _, layer := range []int{0, 1, 9, 10, 37, 128} {
		mp := &MediaPacket{StreamID: "svc", RK: streamRK("svc"), Layer: layer}
		k := mp.rateKey()
		if k != int(rkSVC)+layer {
			t.Errorf("rateKey(svc/%d) = %d, want %d", layer, k, int(rkSVC)+layer)
		}
		if _, dup := seen[k]; dup {
			t.Errorf("svc layer %d collides with a base rate key at index %d", layer, k)
		}
	}
}
