package vca

// registry interns every participant and SFU name of one call to a small
// dense integer ID assigned at join/build time. All per-packet dispatch in
// the call (SFU routing tables, client receive tables, rate estimators,
// flow-label caches) is index-addressed by these IDs; names survive only at
// the reporting boundary (netem addressing, printed output, public string
// APIs) where the registry translates back.
//
// Leave recycles the departing participant's ID through a LIFO free list
// and Rejoin draws from it, so churn keeps every table dense: the ID space
// never grows past the call's peak population. Before a recycled ID is
// handed out again the call resets every table slot it indexes (see
// Call.resetSlot), so a reused ID can never alias a live participant's
// state.
type registry struct {
	ids    map[string]int32 // name -> live ID (cold paths only)
	names  []string         // ID -> name ("" while the ID is on the free list)
	server []bool           // ID -> the name is an SFU, not a participant
	free   []int32          // recycled IDs, LIFO
}

func newRegistry() *registry {
	return &registry{ids: map[string]int32{}}
}

// noID marks "no participant" in ID-indexed tables.
const noID int32 = -1

// intern returns the name's ID, allocating one (from the free list when
// possible) on first use.
func (r *registry) intern(name string, isServer bool) int32 {
	if id, ok := r.ids[name]; ok {
		return id
	}
	var id int32
	if n := len(r.free) - 1; n >= 0 {
		id = r.free[n]
		r.free = r.free[:n]
		r.names[id] = name
		r.server[id] = isServer
	} else {
		id = int32(len(r.names))
		r.names = append(r.names, name)
		r.server = append(r.server, isServer)
	}
	r.ids[name] = id
	return id
}

// id returns the name's live ID, or noID if the name is unknown or left.
func (r *registry) id(name string) int32 {
	if id, ok := r.ids[name]; ok {
		return id
	}
	return noID
}

// name translates an ID back to its name (the reporting boundary).
func (r *registry) name(id int32) string { return r.names[id] }

// live reports whether the ID is currently bound to a name (false while it
// sits on the free list — e.g. packets still in flight from a departed
// participant).
func (r *registry) live(id int32) bool {
	return id >= 0 && int(id) < len(r.names) && r.names[id] != ""
}

// isServer reports whether the ID belongs to an SFU.
func (r *registry) isServer(id int32) bool { return r.server[id] }

// release returns a departing participant's ID to the free list.
func (r *registry) release(name string) {
	id, ok := r.ids[name]
	if !ok {
		return
	}
	delete(r.ids, name)
	r.names[id] = ""
	r.free = append(r.free, id)
}

// cap is the ID-space size: every ID-indexed table holds cap slots.
func (r *registry) cap() int { return len(r.names) }
