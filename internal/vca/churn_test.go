package vca

import (
	"testing"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
)

// fiveParty builds a 5-party single-SFU call on an unconstrained lab.
func fiveParty(eng *sim.Engine, prof *Profile) *Call {
	l := newLab(eng, 0, 0)
	hosts := []*netem.Host{l.clientHost("c1")}
	for i := 2; i <= 5; i++ {
		hosts = append(hosts, l.remoteHost(hostName(i), 5*time.Millisecond))
	}
	sfu := l.remoteHost("sfu", 15*time.Millisecond)
	return NewCall(eng, prof, sfu, hosts, CallOptions{Seed: 21})
}

// serverState counts every per-client entry the SFU holds for a name.
// A released name has no live ID, and a live ID's slots are what the
// leave path must have cleared — both count as zero state.
func serverState(s *Server, name string) int {
	id := s.reg.id(name)
	if id == noID {
		return 0
	}
	n := 0
	if s.upRecv[id] != nil {
		n++
	}
	if s.rates[id] != nil {
		n++
	}
	if s.legs[id] != nil {
		n++
	}
	if s.displayed[id] != nil {
		n++
	}
	if s.remote[id] != noID {
		n++
	}
	for _, rid := range s.legOrder {
		if l := s.legs[rid]; l != nil && l.fwd[id] != nil {
			n++
		}
	}
	for _, c := range s.clients {
		if c == id {
			n++
		}
	}
	return n
}

// legCount reports how many legs the server currently holds.
func legCount(s *Server) int {
	n := 0
	for _, l := range s.legs {
		if l != nil {
			n++
		}
	}
	return n
}

// rateRows reports how many origins have live rate-estimator rows.
func rateRows(s *Server) int {
	n := 0
	for _, row := range s.rates {
		if row != nil {
			n++
		}
	}
	return n
}

// upRecvCount reports how many local uplink receivers the server holds.
func upRecvCount(s *Server) int {
	n := 0
	for _, r := range s.upRecv {
		if r != nil {
			n++
		}
	}
	return n
}

func TestLeaveCleansServerState(t *testing.T) {
	eng := sim.New(22)
	call := fiveParty(eng, Zoom())
	call.Start()
	eng.RunUntil(10 * time.Second)

	s := call.Server
	if serverState(s, "c3") == 0 {
		t.Fatal("no server state for c3 before leave")
	}
	call.Leave("c3")
	// The leak this guards against: rateEst and upRecv entries surviving
	// for the whole call after a participant leaves.
	if n := serverState(s, "c3"); n != 0 {
		t.Errorf("server retains %d state entries for departed c3", n)
	}
	if len(s.clients) != 4 || legCount(s) != 4 || rateRows(s) != 4 || upRecvCount(s) != 4 {
		t.Errorf("server sizes after leave: clients=%d legs=%d rates=%d upRecv=%d, want 4 each",
			len(s.clients), legCount(s), rateRows(s), upRecvCount(s))
	}

	// The call keeps flowing for the remaining participants…
	before := call.C1().DownMeter.TotalBytes()
	eng.RunUntil(20 * time.Second)
	if call.C1().DownMeter.TotalBytes() <= before {
		t.Error("c1 stopped receiving after c3 left")
	}
	// …and the departed client goes silent.
	c3 := call.Clients[2]
	sent := c3.UpMeter.TotalBytes()
	eng.RunUntil(22 * time.Second)
	if c3.UpMeter.TotalBytes() != sent {
		t.Error("c3 kept sending after leaving")
	}
	call.Stop()
}

func TestRejoinRestoresMedia(t *testing.T) {
	eng := sim.New(23)
	call := fiveParty(eng, Meet())
	call.Start()
	eng.RunUntil(8 * time.Second)
	call.Leave("c4")
	eng.RunUntil(16 * time.Second)
	if call.Active("c4") {
		t.Fatal("c4 still active after leave")
	}
	call.Rejoin("c4")
	if !call.Active("c4") {
		t.Fatal("c4 not active after rejoin")
	}
	if n := serverState(call.Server, "c4"); n == 0 {
		t.Error("no server state recreated for rejoined c4")
	}
	c4 := call.Clients[3]
	sentAt := c4.UpMeter.TotalBytes()
	recvAt := c4.DownMeter.TotalBytes()
	eng.RunUntil(30 * time.Second)
	call.Stop()
	if c4.UpMeter.TotalBytes() <= sentAt {
		t.Error("rejoined c4 sends no media")
	}
	if c4.DownMeter.TotalBytes() <= recvAt {
		t.Error("rejoined c4 receives no media")
	}
	// Leave/rejoin cycles must not grow server state (the churn leak).
	if rateRows(call.Server) != 5 || upRecvCount(call.Server) != 5 {
		t.Errorf("server table sizes after rejoin: rates=%d upRecv=%d, want 5",
			rateRows(call.Server), upRecvCount(call.Server))
	}
}

func TestLeaveIdempotentAndUnknown(t *testing.T) {
	eng := sim.New(24)
	call := fiveParty(eng, Teams())
	call.Start()
	eng.RunUntil(2 * time.Second)
	call.Leave("c9") // unknown: no-op
	call.Leave("c2")
	call.Leave("c2")  // double leave: no-op
	call.Rejoin("c3") // never left: no-op
	eng.RunUntil(4 * time.Second)
	call.Stop()
	if len(call.Server.clients) != 4 {
		t.Errorf("clients = %d after churn no-ops, want 4", len(call.Server.clients))
	}
}

// TestChurnStormKeepsTablesDense drives interleaved Leave/Rejoin storms
// and checks the registry's free-list recycling: the ID space (and with it
// every routing table) never grows past the call's build-time density, a
// recycled ID never aliases a live participant's state, and the whole
// storm is deterministic for a fixed seed.
func TestChurnStormKeepsTablesDense(t *testing.T) {
	storm := func(seed int64) (capAfter int, down [5]float64, origins [][]string) {
		eng := sim.New(seed)
		call := fiveParty(eng, Meet())
		capBefore := call.reg.cap()
		call.Start()
		// Interleaved leaves and rejoins: c2 and c3's IDs cross the free
		// list out of order, so rejoiners draw recycled IDs that may have
		// belonged to someone else.
		step := 2 * time.Second
		at := 4 * time.Second
		for round := 0; round < 3; round++ {
			for _, ev := range []struct {
				leave bool
				name  string
			}{{true, "c2"}, {true, "c3"}, {false, "c2"}, {true, "c4"}, {false, "c3"}, {false, "c4"}} {
				ev := ev
				if ev.leave {
					eng.Schedule(at, func() { call.Leave(ev.name) })
				} else {
					eng.Schedule(at, func() { call.Rejoin(ev.name) })
				}
				at += step
			}
		}
		eng.RunUntil(at + 10*time.Second)
		call.Stop()
		if call.reg.cap() != capBefore {
			t.Fatalf("ID space grew under churn: %d -> %d (free list not recycling)",
				capBefore, call.reg.cap())
		}
		for i, cl := range call.Clients {
			down[i] = cl.DownMeter.TotalBytes()
			origins = append(origins, cl.Origins())
		}
		return call.reg.cap(), down, origins
	}

	cap1, down1, origins1 := storm(77)
	if cap1 != 6 { // 5 clients + 1 SFU
		t.Errorf("registry cap = %d, want 6", cap1)
	}
	// No aliasing: every receiver a live client holds must belong to a
	// live participant or the SFU — never an empty (freed) binding, and
	// every live remote participant's media must be flowing again.
	for i, names := range origins1 {
		seen := map[string]bool{}
		for _, n := range names {
			if n == "" {
				t.Fatalf("client %d holds a receiver for a freed ID", i)
			}
			if seen[n] {
				t.Fatalf("client %d holds duplicate receivers for %q", i, n)
			}
			seen[n] = true
		}
	}
	if down1[0] == 0 {
		t.Fatal("c1 received nothing through the churn storm")
	}

	// Determinism: the identical storm replays to identical byte counts.
	_, down2, _ := storm(77)
	if down1 != down2 {
		t.Errorf("churn storm not deterministic: %v vs %v", down1, down2)
	}
}

// TestChurnRecycledIDStartsFresh checks that a participant rejoining onto
// a recycled ID (possibly another participant's old slot) gets virgin
// server state: fresh uplink receiver, empty rate row, zeroed forwarding.
func TestChurnRecycledIDStartsFresh(t *testing.T) {
	eng := sim.New(78)
	call := fiveParty(eng, Zoom())
	call.Start()
	eng.RunUntil(5 * time.Second)

	// c2 then c3 leave; c2 rejoins first, drawing c3's freed ID from the
	// LIFO free list.
	id2, id3 := call.clientByName("c2").id, call.clientByName("c3").id
	call.Leave("c2")
	call.Leave("c3")
	call.Rejoin("c2")
	got := call.clientByName("c2").id
	if got != id3 {
		t.Fatalf("c2 rejoined with ID %d, want recycled %d (LIFO)", got, id3)
	}
	s := call.Server
	if s.upRecv[got] == nil || len(s.rates[got]) != 0 || s.legs[got] == nil {
		t.Fatal("rejoined participant's recycled slot not reset")
	}
	if s.reg.name(got) != "c2" {
		t.Fatalf("recycled ID resolves to %q, want c2", s.reg.name(got))
	}
	// Every other leg's cached flow-label row for the recycled ID must be
	// gone: a stale row would account c2's media under c3's name.
	for _, rid := range s.legOrder {
		if l := s.legs[rid]; l != nil && rid != got && l.flows[got] != nil {
			t.Fatalf("leg %s retains stale flow labels for recycled ID %d", l.recvName, got)
		}
	}
	call.Rejoin("c3")
	if call.clientByName("c3").id != id2 {
		t.Fatalf("c3 rejoined with ID %d, want recycled %d", call.clientByName("c3").id, id2)
	}
	eng.RunUntil(15 * time.Second)
	call.Stop()
	// Both rejoiners flow media again, each under their own identity.
	for _, name := range []string{"c2", "c3"} {
		cl := call.clientByName(name)
		if cl.UpMeter.MeanRateMbps(10*time.Second, 15*time.Second) <= 0 {
			t.Errorf("rejoined %s sends nothing", name)
		}
		if call.C1().Receiver(name).DisplayedFrames() == 0 {
			t.Errorf("c1 never displayed rejoined %s", name)
		}
	}
}

// miniCascade wires a 2-region cascaded Teams/Meet/Zoom call by hand (the
// cascade package owns the nicer builder; vca tests stay self-contained).
func miniCascade(eng *sim.Engine, prof *Profile, seed int64) (*Call, *netem.Link) {
	rtA, rtB := netem.NewRouter("rtA"), netem.NewRouter("rtB")
	ab, ba := netem.ConnectRouters(eng, "inter",
		netem.LinkConfig{RateBps: 20e6, Delay: 30 * time.Millisecond},
		netem.LinkConfig{RateBps: 20e6, Delay: 30 * time.Millisecond}, rtA, rtB)
	mk := func(name string, rt *netem.Router, far *netem.Router, farLink *netem.Link) *netem.Host {
		h := netem.NewHost(eng, name)
		netem.Attach(eng, h, rt, netem.LinkConfig{Delay: 2 * time.Millisecond})
		far.Route(name, farLink)
		return h
	}
	sfuA := mk("sfu-a", rtA, rtB, ba)
	c1 := mk("c1", rtA, rtB, ba)
	c3 := mk("c3", rtA, rtB, ba)
	sfuB := mk("sfu-b", rtB, rtA, ab)
	c2 := mk("c2", rtB, rtA, ab)
	c4 := mk("c4", rtB, rtA, ab)
	call := NewCascadedCall(eng, prof, []CascadePlacement{
		{Server: sfuA, Clients: []*netem.Host{c1, c3}},
		{Server: sfuB, Clients: []*netem.Host{c2, c4}},
	}, CallOptions{Seed: seed})
	return call, ab
}

func TestCascadeChurnCleansRemoteState(t *testing.T) {
	eng := sim.New(25)
	call, _ := miniCascade(eng, Zoom(), 25)
	call.Start()
	eng.RunUntil(8 * time.Second)

	sA, sB := call.Servers[0], call.Servers[1]
	if serverState(sB, "c1") == 0 {
		t.Fatal("no remote state for c1 on region-B server before leave")
	}
	call.Leave("c1")
	if n := serverState(sA, "c1"); n != 0 {
		t.Errorf("home server retains %d entries for departed c1", n)
	}
	if n := serverState(sB, "c1"); n != 0 {
		t.Errorf("remote server retains %d entries for departed c1 (cascade churn leak)", n)
	}
	before := call.Clients[1].DownMeter.TotalBytes() // c2
	eng.RunUntil(16 * time.Second)
	if call.Clients[1].DownMeter.TotalBytes() <= before {
		t.Error("cascade stopped flowing after remote leave")
	}

	call.Rejoin("c1")
	eng.RunUntil(28 * time.Second)
	call.Stop()
	if serverState(sB, "c1") == 0 {
		t.Error("remote state for c1 not recreated on rejoin")
	}
	c1 := call.C1()
	if c1.UpMeter.MeanRateMbps(20*time.Second, 28*time.Second) <= 0 {
		t.Error("rejoined c1 sends nothing")
	}
	if call.Clients[1].Receiver("c1").DisplayedFrames() == 0 {
		t.Error("remote receiver never displayed rejoined c1")
	}
}

func TestCascadeTwoPartyTeamsStaysEndToEnd(t *testing.T) {
	// A 1+1 cascaded Teams call is a pure relay chain: both hops
	// pass-through, original sequence numbers survive to the receiver.
	eng := sim.New(26)
	rtA, rtB := netem.NewRouter("rtA"), netem.NewRouter("rtB")
	ab, ba := netem.ConnectRouters(eng, "inter",
		netem.LinkConfig{RateBps: 10e6, Delay: 25 * time.Millisecond},
		netem.LinkConfig{RateBps: 10e6, Delay: 25 * time.Millisecond}, rtA, rtB)
	mk := func(name string, rt *netem.Router, far *netem.Router, farLink *netem.Link) *netem.Host {
		h := netem.NewHost(eng, name)
		netem.Attach(eng, h, rt, netem.LinkConfig{Delay: 2 * time.Millisecond})
		far.Route(name, farLink)
		return h
	}
	sfuA := mk("sfu-a", rtA, rtB, ba)
	c1 := mk("c1", rtA, rtB, ba)
	sfuB := mk("sfu-b", rtB, rtA, ab)
	c2 := mk("c2", rtB, rtA, ab)
	call := NewCascadedCall(eng, Teams(), []CascadePlacement{
		{Server: sfuA, Clients: []*netem.Host{c1}},
		{Server: sfuB, Clients: []*netem.Host{c2}},
	}, CallOptions{Seed: 26})

	var e2e, total int
	c2.Tap(func(p *netem.Packet) {
		if mp, ok := p.Payload.(*MediaPacket); ok && !mp.Padding && mp.Origin == "c1" {
			total++
			if mp.E2E {
				e2e++
			}
		}
	})
	call.Start()
	eng.RunUntil(15 * time.Second)
	call.Stop()
	if total == 0 || e2e != total {
		t.Errorf("two-hop teams relay: %d/%d packets end-to-end, want all", e2e, total)
	}
	up := call.C1().UpMeter.MeanRateMbps(8*time.Second, 15*time.Second)
	if up < 0.8 {
		t.Errorf("cascaded 2-party teams uplink = %.2f Mbps, want near nominal", up)
	}
}
