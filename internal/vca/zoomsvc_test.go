package vca

import (
	"testing"
	"time"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
)

// TestZoomStarvedReceiverGetsBaseLayerOnly is the regression test for the
// SVC layer-selection churn bug: when a receiver's downlink estimate sits
// below even the base layer's rate, a mid-call rejoin used to forward the
// rejoined origin's media at EVERY layer — the fresh fwdState's maxLayer
// sentinel (1<<10) lived until the next control tick, and the selection
// walk advanced past unmeasured layers for free because the rejoined
// origin's rate row was empty. Both paths must now keep a starved
// receiver at layer 0.
func TestZoomStarvedReceiverGetsBaseLayerOnly(t *testing.T) {
	eng := sim.New(31)
	// c1 behind a 250 kbps downlink: far below the Zoom base layer
	// (0.40 x ~740 kbps, plus 18% server FEC, ~350 kbps on the wire).
	l := newLab(eng, 0, 250_000)
	c1 := l.clientHost("c1")
	c2 := l.remoteHost("c2", 5*time.Millisecond)
	c3 := l.remoteHost("c3", 5*time.Millisecond)
	sfu := l.remoteHost("sfu", 15*time.Millisecond)
	call := NewCall(eng, Zoom(), sfu, []*netem.Host{c1, c2, c3}, CallOptions{Seed: 31})

	// Count upper-layer video from c2 delivered to c1, but only once the
	// churn sequence below re-admits c2 into the call.
	countFrom := time.Duration(1 << 62)
	var upper, base int
	c1.Tap(func(p *netem.Packet) {
		mp, ok := p.Payload.(*MediaPacket)
		if !ok || mp.Origin != "c2" || mp.Audio || mp.Padding || eng.Now() < countFrom {
			return
		}
		if mp.Layer > 0 {
			upper++
		} else {
			base++
		}
	})

	call.Start()
	eng.RunUntil(20 * time.Second)

	// Sanity: the starved leg's estimate really is below the base layer.
	est := call.Server.Leg("c1").TargetBps()
	share := (est - Zoom().AudioBps*2) / 2
	if baseRate := 0.40 * 740_000 * 1.18; share >= baseRate {
		t.Fatalf("precondition: c1 share %.0f not below base layer %.0f", share, baseRate)
	}

	call.Leave("c2")
	eng.RunUntil(22 * time.Second)
	call.Rejoin("c2")
	countFrom = eng.Now()
	eng.RunUntil(30 * time.Second)
	call.Stop()

	if base == 0 {
		t.Fatal("no base-layer video from rejoined c2 reached starved c1")
	}
	if upper != 0 {
		t.Errorf("starved c1 received %d upper-layer packets from rejoined c2 (want 0: estimate below base layer)", upper)
	}
}
