// Package vca models the three video conferencing applications the paper
// measures — Zoom, Google Meet and Microsoft Teams — as mechanism-faithful
// compositions of the substrates: per-VCA congestion control (internal/cc),
// per-VCA encoding strategy (internal/codec: simulcast for Meet, SVC for
// Zoom, single stream for Teams), per-VCA relay-server behaviour (this
// package's Server), and receiver-side media handling (internal/media).
//
// The package deliberately implements the mechanisms the paper identifies
// rather than curve-fitting its figures; the published shapes re-emerge
// from the mechanism interplay (see DESIGN.md §4).
package vca

import (
	"time"

	"vcalab/internal/codec"
	"vcalab/internal/media"
	"vcalab/internal/rtp"
)

// Well-known ports used on every host.
const (
	PortMedia    = 5004 // RTP media
	PortFeedback = 5005 // RTCP receiver feedback
	PortSignal   = 5006 // FIR and SFU allocation signalling
)

// Wire overhead per packet: 12 B RTP + 8 B UDP + 20 B IP.
const wireOverhead = 40

// maxPayload is the media packetization MTU budget.
const maxPayload = 1200

// Rate keys give every stream of one origin a dense index, replacing the
// string-keyed per-(origin, stream) maps on the packet path: rate
// estimators and flow-label caches are slices indexed by rate key. SVC
// layers extend past rkSVC (layer L maps to rkSVC+L), so rkSVC must stay
// the last constant.
const (
	rkVideo   uint8 = iota // "video"
	rkSimLow               // "sim/low"
	rkSimHigh              // "sim/high"
	rkAudio                // "audio"
	rkPad                  // "pad"
	rkFEC                  // "fec"
	rkSVC                  // "svc", layer 0; layer L -> rkSVC+L
)

// streamRK maps a codec stream ID to its rate key, stamped once at packet
// creation so no forwarding hop re-derives it.
func streamRK(stream string) uint8 {
	switch stream {
	case "video":
		return rkVideo
	case "sim/low":
		return rkSimLow
	case "sim/high":
		return rkSimHigh
	case "svc":
		return rkSVC
	case "audio":
		return rkAudio
	case "pad":
		return rkPad
	case "fec":
		return rkFEC
	}
	return rkVideo
}

// rateKey expands a packet's stamped rate key with its SVC layer.
func (m *MediaPacket) rateKey() int {
	k := int(m.RK)
	if m.RK == rkSVC {
		k += m.Layer
	}
	return k
}

// MediaPacket is the typed payload of an RTP media packet in the emulator.
// internal/pcap can serialize it to a real RTP packet for traces.
type MediaPacket struct {
	Origin string // participant whose media this is
	// OriginID is Origin's dense call-wide registry ID, stamped at the
	// origin client (or at the SFU for server-generated padding/FEC) and
	// preserved across every forwarding hop: all per-packet routing and
	// accounting indexes by it, never by the name.
	OriginID int32
	StreamID string // "video", "sim/low", "sim/high", "svc", "audio", "pad"
	// RK is StreamID's rate key (see streamRK), stamped alongside OriginID.
	RK       uint8
	Layer    int // SVC layer
	SSRC     uint32
	Seq      uint16
	FrameSeq int
	// LayerEnd marks the last packet of this frame's layer; FrameEnd
	// marks the last packet of the whole frame (top selected layer).
	// The SFU rewrites FrameEnd when it strips SVC layers.
	LayerEnd bool
	FrameEnd bool
	Keyframe bool
	Audio    bool
	Padding  bool // FEC / probe padding

	// OriginSentAt is stamped by the origin client and survives
	// forwarding; E2E is set by a pass-through relay (Teams 2-party) to
	// tell the receiver its delay signal should span the whole path.
	OriginSentAt time.Duration
	E2E          bool

	// RTX marks a NACK-answered retransmission, so the receiver can
	// account it separately and CC can discount it. TWSeq is the
	// transport-wide sequence number the SFU stamps on every packet of
	// one downlink when recovery is on (0 = unstamped; the counter skips
	// 0), feeding the TWCC arrival reports.
	RTX   bool
	TWSeq uint16

	Params    codec.EncodeParams
	HasParams bool

	pool *mpPool // owning free list, nil for literal packets
}

// mpPool is a single-threaded free list of MediaPacket structs shared by
// every client and server of one call. The media path creates one
// MediaPacket per RTP packet at the origin plus one per forwarded copy at
// each SFU; pooling makes all of that allocation-free. Each packet has
// exactly one consumer (its netem delivery), which releases it.
type mpPool struct{ free []*MediaPacket }

func (p *mpPool) get() *MediaPacket {
	if n := len(p.free) - 1; n >= 0 {
		mp := p.free[n]
		p.free = p.free[:n]
		return mp
	}
	return &MediaPacket{pool: p}
}

func (p *mpPool) put(mp *MediaPacket) {
	*mp = MediaPacket{pool: p}
	p.free = append(p.free, mp)
}

// copyOf returns a pooled copy of mp (the SFU's per-receiver rewrite).
func (p *mpPool) copyOf(mp *MediaPacket) *MediaPacket {
	out := p.get()
	*out = *mp
	out.pool = p
	return out
}

// releaseMedia recycles a pooled media packet at its consumption point;
// it is a no-op for literal packets (tests, external builders).
func releaseMedia(mp *MediaPacket) {
	if mp.pool != nil {
		mp.pool.put(mp)
	}
}

// ReleasePayload implements netem.PayloadReleaser: when the emulator
// drops the carrying packet before delivery (queue overflow, random
// loss, unrouteable), the media packet goes back to the pool instead of
// leaking to the garbage collector — keeping loss-heavy sweeps
// allocation-free.
func (m *MediaPacket) ReleasePayload() { releaseMedia(m) }

// Info converts the packet to the receiver-side metadata structure.
// Audio shares the padding path in media.Receiver: it counts toward rate
// and loss but not toward video frame assembly.
func (m *MediaPacket) Info(wireBytes int, sentAt time.Duration) media.PacketInfo {
	return media.PacketInfo{
		Seq:       m.Seq,
		FrameSeq:  m.FrameSeq,
		FrameEnd:  m.FrameEnd,
		Keyframe:  m.Keyframe,
		Bytes:     wireBytes,
		SentAt:    sentAt,
		Padding:   m.Padding || m.Audio,
		Params:    m.Params,
		HasParams: m.HasParams,
	}
}

// FeedbackMsg is the periodic receiver report (100 ms cadence), carrying
// the aggregate interval statistics the congestion controllers consume.
type FeedbackMsg struct {
	From   string // reporting client (or downstream SFU)
	FromID int32  // From's registry ID — the SFU's leg lookup key
	Stats  media.IntervalStats
}

// FIRMsg requests a keyframe for Origin's stream (RTCP FIR, RFC 5104).
type FIRMsg struct {
	From   string
	Origin string
}

// AllocMsg is the Meet SFU's signal to a sender adjusting its low simulcast
// copy under receiver starvation (§3.1: Meet's downlink floor behaviour).
type AllocMsg struct {
	LowBps float64
}

// NackMsg asks the SFU to retransmit missing packets of one origin's
// per-leg sequence space (RTCP generic NACK, rtp.Nack). Immutable after
// construction: sharded runs pass it across region boundaries by
// pointer.
type NackMsg struct {
	From   string
	FromID int32 // receiver's registry ID — the SFU's leg lookup key
	Origin int32 // origin whose (leg, origin) seq space Pairs index
	Pairs  []rtp.NackPair
}

// TWCCMsg carries one transport-wide CC arrival report from a receiver
// to its SFU (rtp.TransportCC over the per-leg TWSeq space). Immutable
// after construction, like NackMsg.
type TWCCMsg struct {
	From   string
	FromID int32
	Report rtp.TransportCC
}

const (
	feedbackWire = 90
	firWire      = 60
	allocWire    = 60
	nackWireBase = 16 // RTCP NACK header; + 4 per pair
	twccWireBase = 24 // simplified TWCC header; + 4 per delta
)
