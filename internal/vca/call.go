package vca

import (
	"fmt"

	"vcalab/internal/netem"
	"vcalab/internal/obs"
	"vcalab/internal/sim"
)

// ViewMode is the call's viewing modality (§6).
type ViewMode int

// Viewing modes common to all three VCAs (§6).
const (
	// Gallery shows all participants in a tiled grid (the default).
	Gallery ViewMode = iota
	// Speaker pins the first client's video on every other participant's
	// screen (§6.2: only one client pinning suffices to change the
	// pinned sender's uplink; we pin on all, as the paper's experiment).
	Speaker
)

// CallOptions configure a call beyond its participants.
type CallOptions struct {
	Mode ViewMode
	Seed int64
	// Recovery enables packet-level loss recovery (DESIGN.md §13):
	// receiver jitter buffers with NACK/RTX and, for profiles with
	// server-side congestion control, TWCC-style per-packet feedback.
	// Off, the packet path is byte-identical to a build without it.
	Recovery bool
}

// CascadePlacement homes a group of clients on one SFU host — one region
// of a cascaded call.
type CascadePlacement struct {
	Server  *netem.Host
	Clients []*netem.Host
	// Eng, when set, is the engine this region's protocol machinery
	// schedules on — a shard of a region-sharded run. Nil means the
	// call-wide engine (the sequential default). The region's hosts and
	// links must live on the same engine.
	Eng *sim.Engine
}

// Call wires N clients and one or more SFUs into a conference and manages
// its lifecycle. Topology (hosts, links, shaping) is owned by the caller;
// the Call only attaches protocol machinery to hosts.
//
// The Call owns the participant identity registry: every client and SFU
// name is interned to a dense ID at build time, and all layout and churn
// bookkeeping below runs on those IDs.
type Call struct {
	Prof    *Profile
	Clients []*Client
	// Server is the region-0 SFU — the only one in a single-SFU call.
	Server *Server
	// Servers holds every region's SFU (length 1 for NewCall).
	Servers []*Server

	eng     *sim.Engine
	reg     *registry
	tracer  *obs.Tracer // churn events; set via SetTracer
	pools   []*mpPool   // per-region media-packet free lists
	mode    ViewMode
	home    []int32         // participant ID -> region index
	left    map[string]bool // by name: a left participant's ID is recycled
	started bool

	// want/wantIDs are the relay-subscription scratch set, hoisted onto
	// the call and cleared in place per use so applyRelayLayout allocates
	// nothing per region pair.
	want    []bool
	wantIDs []int32

	// displayedScratch backs the per-receiver displayed sets built by
	// applyLayout; one flat slab, resliced per layout pass.
	displayedScratch []int32
}

// NewCall creates a call between the given client hosts through the server
// host. Client 0 is "C1" in the paper's terms: the instrumented client
// (and the pinned participant in Speaker mode).
func NewCall(eng *sim.Engine, prof *Profile, server *netem.Host, clientHosts []*netem.Host, opt CallOptions) *Call {
	return NewCascadedCall(eng, prof, []CascadePlacement{{Server: server, Clients: clientHosts}}, opt)
}

// NewCascadedCall creates a call whose participants are spread across
// regions, each homed on its region's SFU. The SFUs form a full relay
// mesh: every locally homed origin's media crosses each inter-region link
// once, and the remote SFU fans it out to its own receivers. Client 0 of
// region 0 is C1. Congestion control on the relay hops follows the
// profile: Meet/Zoom terminate per hop, Teams stays end-to-end.
func NewCascadedCall(eng *sim.Engine, prof *Profile, regions []CascadePlacement, opt CallOptions) *Call {
	total := 0
	for _, r := range regions {
		total += len(r.Clients)
	}
	if total < 2 {
		panic("vca: a call needs at least two clients")
	}
	c := &Call{
		Prof: prof, eng: eng, mode: opt.Mode,
		reg: newRegistry(), left: map[string]bool{},
	}
	// Intern every participant, then every SFU: participant IDs come out
	// dense in join order, and all tables size to their final density at
	// construction.
	localIDs := make([][]int32, len(regions))
	for ri, r := range regions {
		ids := make([]int32, len(r.Clients))
		for i, h := range r.Clients {
			ids[i] = c.reg.intern(h.Name, false)
		}
		localIDs[ri] = ids
	}
	for _, r := range regions {
		c.reg.intern(r.Server.Name, true)
	}
	c.home = make([]int32, c.reg.cap())
	for ri, ids := range localIDs {
		for _, id := range ids {
			c.home[id] = int32(ri)
		}
	}
	// One media-packet free list per region: a region's clients and SFU
	// always share one engine, so the pool stays single-threaded whether
	// that engine is the call-wide one or a shard. Pool identity never
	// affects event order, so splitting it is output-invisible.
	c.pools = make([]*mpPool, len(regions))
	for ri := range regions {
		c.pools[ri] = &mpPool{}
	}
	for ri, r := range regions {
		s := newServer(regionEngine(r, eng), prof, r.Server, c.reg, localIDs[ri], c.pools[ri], total)
		c.home[s.id] = int32(ri)
		c.Servers = append(c.Servers, s)
	}
	c.Server = c.Servers[0]
	// Wire the relay mesh: each server forwards its local origins to every
	// peer, and registers every peer's origins as remote arrivals.
	for i, si := range c.Servers {
		for j, sj := range c.Servers {
			if i == j {
				continue
			}
			si.addRelayLeg(sj.id, localIDs[i])
			sj.addRemoteOrigins(si.id, localIDs[i])
		}
	}
	i := 0
	for ri, r := range regions {
		for _, h := range r.Clients {
			// The seed is derived from the flattened global index, never
			// from an engine, so a client's RNG stream is identical
			// whether its region runs sharded or sequential.
			cl := newClient(regionEngine(r, eng), prof, h.Name, h, c.reg, regions[ri].Server.Name, ri, c.pools[ri], opt.Seed+int64(i)*7919)
			c.Clients = append(c.Clients, cl)
			i++
		}
	}
	if opt.Recovery {
		rcfg := prof.Recovery.withDefaults()
		for _, s := range c.Servers {
			s.enableRecovery(rcfg)
		}
		for _, cl := range c.Clients {
			cl.enableRecovery(rcfg)
			cl.homeSrv = c.Servers[cl.region]
		}
	}
	c.applyLayout(opt.Mode)
	return c
}

// regionEngine picks the engine one region's machinery schedules on.
func regionEngine(r CascadePlacement, callEng *sim.Engine) *sim.Engine {
	if r.Eng != nil {
		return r.Eng
	}
	return callEng
}

// PayloadTransfer returns the boundary-link payload re-homing hook for
// packets delivered into dstRegion (netem.Link.SetHandoffPayload). Media
// packets are cloned into the destination region's pool and the source
// copy released; signalling messages (feedback, FIR, alloc, NACK, TWCC)
// are immutable after construction and pass through by pointer. It runs at window
// barriers with both shards parked, so touching both pools is safe.
func (c *Call) PayloadTransfer(dstRegion int) func(any) any {
	pool := c.pools[dstRegion]
	return func(p any) any {
		if mp, ok := p.(*MediaPacket); ok {
			dup := pool.copyOf(mp)
			releaseMedia(mp)
			return dup
		}
		return p
	}
}

// active returns the clients currently in the call, in join order.
func (c *Call) active() []*Client {
	if len(c.left) == 0 {
		return c.Clients
	}
	out := make([]*Client, 0, len(c.Clients))
	for _, cl := range c.Clients {
		if !c.left[cl.Name] {
			out = append(out, cl)
		}
	}
	return out
}

func (c *Call) clientByName(name string) *Client {
	for _, cl := range c.Clients {
		if cl.Name == name {
			return cl
		}
	}
	return nil
}

// applyLayout computes displayed sets and per-sender budgets (§6), plus
// the relay subscriptions between regions.
func (c *Call) applyLayout(mode ViewMode) {
	active := c.active()
	n := len(active)
	scratch := c.displayedScratch[:0]
	if cap(scratch) < n*n {
		scratch = make([]int32, 0, n*n)
	}
	for i, cl := range active {
		start := len(scratch)
		tiles := c.Prof.VisibleTiles(n)
		for j, other := range active {
			if j == i {
				continue
			}
			if mode == Speaker {
				// Pinned participant always displayed; others as thumbs.
				scratch = append(scratch, other.id)
				continue
			}
			if len(scratch)-start < tiles {
				scratch = append(scratch, other.id)
			}
		}
		c.Servers[cl.region].setDisplayedIDs(cl.id, scratch[start:len(scratch):len(scratch)])
	}
	c.displayedScratch = scratch
	for i, cl := range active {
		cl.SetTierBps(c.senderBudget(mode, n, i == 0))
	}
	c.applyRelayLayout(active)
}

// applyRelayLayout subscribes each region pair: the origins homed in i
// that at least one receiver homed in j displays travel the i→j relay
// leg. Audio always flows; this set gates video only.
func (c *Call) applyRelayLayout(active []*Client) {
	if len(c.Servers) < 2 {
		return
	}
	if len(c.want) < c.reg.cap() {
		c.want = make([]bool, c.reg.cap())
	}
	for i, si := range c.Servers {
		for j, sj := range c.Servers {
			if i == j {
				continue
			}
			for _, id := range c.wantIDs {
				c.want[id] = false
			}
			c.wantIDs = c.wantIDs[:0]
			for _, cl := range active {
				if cl.region != j {
					continue
				}
				for _, o := range sj.displayed[cl.id] {
					if c.home[o] == int32(i) && !c.want[o] {
						c.want[o] = true
						c.wantIDs = append(c.wantIDs, o)
					}
				}
			}
			var origins []int32
			for _, cl := range c.Clients {
				if cl.id != noID && c.want[cl.id] {
					origins = append(origins, cl.id)
				}
			}
			si.setDisplayedIDs(sj.id, origins)
		}
	}
}

// senderBudget is the layout-imposed video budget for one sender.
func (c *Call) senderBudget(mode ViewMode, n int, pinnedClient bool) float64 {
	p := c.Prof
	var tierRate float64
	switch {
	case mode == Speaker && pinnedClient:
		if p.SpeakerUplinkBps != nil {
			tierRate = p.SpeakerUplinkBps(n)
		} else {
			tierRate = p.TierBps[TierSpeaker]
		}
	case mode == Speaker:
		tierRate = p.TierBps[TierThumb]
	default:
		tierRate = p.TierBps[p.GalleryTier(n)]
	}
	if p.MediaMode == ModeSimulcast {
		// The budget covers both simulcast copies; a TierLow request
		// means "low copy only".
		if tierRate <= p.TierBps[TierLow] {
			return p.SimLowCapBps * 1.3
		}
		return tierRate + p.SimLowCapBps
	}
	return tierRate
}

// Start begins the call: all servers and clients go live.
func (c *Call) Start() {
	c.started = true
	for _, s := range c.Servers {
		s.start()
	}
	for _, cl := range c.active() {
		cl.start(cl.TierBps())
	}
}

// Stop tears the call down.
func (c *Call) Stop() {
	c.started = false
	for _, cl := range c.active() {
		cl.stop()
	}
	for _, s := range c.Servers {
		s.stop()
	}
}

// DrainRecovery releases every RTX clone held in server-side
// retransmission buffers. Call after Stop when inspecting a
// recovery-enabled call: the scenario harness asserts RTXClonesLive()
// is zero afterwards (clone conservation).
func (c *Call) DrainRecovery() {
	for _, s := range c.Servers {
		s.drainRecovery()
	}
}

// RTXClonesLive reports the number of RTX payload clones currently held
// in server buffers across the call (zero after DrainRecovery, and
// always zero with recovery off).
func (c *Call) RTXClonesLive() uint64 {
	var n uint64
	for _, s := range c.Servers {
		if s.rec != nil {
			n += s.rec.clonesLive()
		}
	}
	return n
}

// PendingNacks sums every client's outstanding NACK-queue depth. Client
// stop flushes its jitter buffers, so a stopped call reports zero.
func (c *Call) PendingNacks() int {
	n := 0
	for _, cl := range c.Clients {
		if cl.rec != nil {
			n += cl.rec.pendingNacks()
		}
	}
	return n
}

// Leave removes the named client from the call mid-flight. Every server
// drops its per-client state (uplink receiver, rate estimators, legs,
// forwarding entries), every remaining client releases its receiver slot,
// the layout re-flows for the remaining participants, and the host stays
// wired for a later Rejoin. The departing participant's ID goes back to
// the registry's free list, keeping the tables dense under churn.
func (c *Call) Leave(name string) {
	cl := c.clientByName(name)
	if cl == nil || c.left[name] {
		return
	}
	if c.tracer != nil {
		c.tracer.Churn(c.eng.Now(), name, "leave", "")
	}
	c.left[name] = true
	if c.started {
		cl.stop()
	}
	id := cl.id
	n := len(c.active())
	for i, s := range c.Servers {
		if i == cl.region {
			s.removeClient(id)
		} else {
			s.removeRemoteOrigin(id)
		}
		s.setTotal(n)
	}
	for _, other := range c.Clients {
		if other != cl {
			other.dropOrigin(id)
		}
	}
	cl.clearRecv()
	c.reg.release(name)
	cl.id = noID
	c.applyLayout(c.mode)
	c.refreshSelection()
}

// Rejoin re-attaches a client that previously left. The client draws a
// (possibly recycled) ID from the registry; every table slot that ID
// indexes is reset first, so it can never inherit a departed
// participant's state. Server state is recreated from scratch, the layout
// re-flows, and the client restarts its media if the call is live.
func (c *Call) Rejoin(name string) {
	cl := c.clientByName(name)
	if cl == nil || !c.left[name] {
		return
	}
	if c.tracer != nil {
		c.tracer.Churn(c.eng.Now(), name, "rejoin", "")
	}
	delete(c.left, name)
	id := c.reg.intern(name, false)
	c.resetSlot(id)
	cl.id = id
	for int(id) >= len(c.home) {
		c.home = append(c.home, 0)
	}
	c.home[id] = int32(cl.region)
	n := len(c.active())
	for i, s := range c.Servers {
		if i == cl.region {
			s.addClient(id)
		} else {
			s.addRemoteOrigin(c.Servers[cl.region].id, id)
		}
		s.setTotal(n)
	}
	c.applyLayout(c.mode)
	c.refreshSelection()
	if c.started {
		cl.start(cl.TierBps())
	}
}

// SetMode switches the call's viewing modality mid-flight (every
// participant pinning the speaker, or un-pinning back to gallery): the
// layout re-flows, sender budgets update, and every server's selection
// state refreshes immediately rather than waiting for the next control
// tick.
func (c *Call) SetMode(mode ViewMode) {
	if c.mode == mode {
		return
	}
	if c.tracer != nil {
		detail := "gallery"
		if mode == Speaker {
			detail = "speaker"
		}
		c.tracer.Churn(c.eng.Now(), "", "mode", detail)
	}
	c.mode = mode
	c.applyLayout(mode)
	c.refreshSelection()
}

// refreshSelection re-runs selection on every server after a mid-call
// layout or membership change (no-op while the call is not started).
func (c *Call) refreshSelection() {
	for _, s := range c.Servers {
		s.refreshSelection()
	}
}

// resetSlot clears every table entry a recycled ID indexes across all
// servers and clients before the ID is reused.
func (c *Call) resetSlot(id int32) {
	for _, s := range c.Servers {
		s.resetSlot(id)
	}
	for _, cl := range c.Clients {
		if cl.id != id {
			cl.dropOrigin(id)
		}
	}
}

// IDSpace reports the size of the call's participant-ID space — the
// density ceiling of every ID-indexed routing table. Leave/Rejoin recycle
// IDs through the registry free list, so it must never grow past the
// call's peak population; churn tests assert exactly that.
func (c *Call) IDSpace() int { return c.reg.cap() }

// Active reports whether the named client is currently in the call.
func (c *Call) Active(name string) bool {
	return c.clientByName(name) != nil && !c.left[name]
}

// C1 returns the instrumented client (client 0).
func (c *Call) C1() *Client { return c.Clients[0] }

// HomeServer returns the SFU the named client is homed on (region 0's
// for unknown names, matching the old map-default behaviour).
func (c *Call) HomeServer(name string) *Server {
	if cl := c.clientByName(name); cl != nil {
		return c.Servers[cl.region]
	}
	return c.Servers[0]
}

// String identifies the call.
func (c *Call) String() string {
	if len(c.Servers) > 1 {
		return fmt.Sprintf("%s call, %d clients, %d regions", c.Prof.Name, len(c.Clients), len(c.Servers))
	}
	return fmt.Sprintf("%s call, %d clients", c.Prof.Name, len(c.Clients))
}
