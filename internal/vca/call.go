package vca

import (
	"fmt"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
)

// ViewMode is the call's viewing modality (§6).
type ViewMode int

// Viewing modes common to all three VCAs (§6).
const (
	// Gallery shows all participants in a tiled grid (the default).
	Gallery ViewMode = iota
	// Speaker pins the first client's video on every other participant's
	// screen (§6.2: only one client pinning suffices to change the
	// pinned sender's uplink; we pin on all, as the paper's experiment).
	Speaker
)

// CallOptions configure a call beyond its participants.
type CallOptions struct {
	Mode ViewMode
	Seed int64
}

// Call wires N clients and one SFU into a conference and manages its
// lifecycle. Topology (hosts, links, shaping) is owned by the caller; the
// Call only attaches protocol machinery to hosts.
type Call struct {
	Prof    *Profile
	Clients []*Client
	Server  *Server

	eng *sim.Engine
}

// NewCall creates a call between the given client hosts through the server
// host. Client 0 is "C1" in the paper's terms: the instrumented client
// (and the pinned participant in Speaker mode).
func NewCall(eng *sim.Engine, prof *Profile, server *netem.Host, clientHosts []*netem.Host, opt CallOptions) *Call {
	if len(clientHosts) < 2 {
		panic("vca: a call needs at least two clients")
	}
	names := make([]string, len(clientHosts))
	for i, h := range clientHosts {
		names[i] = h.Name
	}
	c := &Call{Prof: prof, eng: eng}
	c.Server = newServer(eng, prof, server, names)
	for i, h := range clientHosts {
		cl := newClient(eng, prof, h.Name, h, server.Name, opt.Seed+int64(i)*7919)
		c.Clients = append(c.Clients, cl)
	}
	c.applyLayout(opt.Mode)
	return c
}

// applyLayout computes displayed sets and per-sender budgets (§6).
func (c *Call) applyLayout(mode ViewMode) {
	n := len(c.Clients)
	for i, cl := range c.Clients {
		var displayed []string
		tiles := c.Prof.VisibleTiles(n)
		for j, other := range c.Clients {
			if j == i {
				continue
			}
			if mode == Speaker {
				// Pinned participant always displayed; others as thumbs.
				displayed = append(displayed, other.Name)
				continue
			}
			if len(displayed) < tiles {
				displayed = append(displayed, other.Name)
			}
		}
		c.Server.SetDisplayed(cl.Name, displayed)
	}
	for i, cl := range c.Clients {
		cl.SetTierBps(c.senderBudget(mode, n, i == 0))
	}
}

// senderBudget is the layout-imposed video budget for one sender.
func (c *Call) senderBudget(mode ViewMode, n int, pinnedClient bool) float64 {
	p := c.Prof
	var tierRate float64
	switch {
	case mode == Speaker && pinnedClient:
		if p.SpeakerUplinkBps != nil {
			tierRate = p.SpeakerUplinkBps(n)
		} else {
			tierRate = p.TierBps[TierSpeaker]
		}
	case mode == Speaker:
		tierRate = p.TierBps[TierThumb]
	default:
		tierRate = p.TierBps[p.GalleryTier(n)]
	}
	if p.MediaMode == ModeSimulcast {
		// The budget covers both simulcast copies; a TierLow request
		// means "low copy only".
		if tierRate <= p.TierBps[TierLow] {
			return p.SimLowCapBps * 1.3
		}
		return tierRate + p.SimLowCapBps
	}
	return tierRate
}

// Start begins the call: all clients and the server go live.
func (c *Call) Start() {
	c.Server.start()
	for _, cl := range c.Clients {
		cl.start(cl.TierBps())
	}
}

// Stop tears the call down.
func (c *Call) Stop() {
	for _, cl := range c.Clients {
		cl.stop()
	}
	c.Server.stop()
}

// C1 returns the instrumented client (client 0).
func (c *Call) C1() *Client { return c.Clients[0] }

// String identifies the call.
func (c *Call) String() string {
	return fmt.Sprintf("%s call, %d clients", c.Prof.Name, len(c.Clients))
}
