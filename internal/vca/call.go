package vca

import (
	"fmt"

	"vcalab/internal/netem"
	"vcalab/internal/sim"
)

// ViewMode is the call's viewing modality (§6).
type ViewMode int

// Viewing modes common to all three VCAs (§6).
const (
	// Gallery shows all participants in a tiled grid (the default).
	Gallery ViewMode = iota
	// Speaker pins the first client's video on every other participant's
	// screen (§6.2: only one client pinning suffices to change the
	// pinned sender's uplink; we pin on all, as the paper's experiment).
	Speaker
)

// CallOptions configure a call beyond its participants.
type CallOptions struct {
	Mode ViewMode
	Seed int64
}

// CascadePlacement homes a group of clients on one SFU host — one region
// of a cascaded call.
type CascadePlacement struct {
	Server  *netem.Host
	Clients []*netem.Host
}

// Call wires N clients and one or more SFUs into a conference and manages
// its lifecycle. Topology (hosts, links, shaping) is owned by the caller;
// the Call only attaches protocol machinery to hosts.
type Call struct {
	Prof    *Profile
	Clients []*Client
	// Server is the region-0 SFU — the only one in a single-SFU call.
	Server *Server
	// Servers holds every region's SFU (length 1 for NewCall).
	Servers []*Server

	eng     *sim.Engine
	mode    ViewMode
	home    map[string]int // client name -> region index
	left    map[string]bool
	started bool
}

// NewCall creates a call between the given client hosts through the server
// host. Client 0 is "C1" in the paper's terms: the instrumented client
// (and the pinned participant in Speaker mode).
func NewCall(eng *sim.Engine, prof *Profile, server *netem.Host, clientHosts []*netem.Host, opt CallOptions) *Call {
	return NewCascadedCall(eng, prof, []CascadePlacement{{Server: server, Clients: clientHosts}}, opt)
}

// NewCascadedCall creates a call whose participants are spread across
// regions, each homed on its region's SFU. The SFUs form a full relay
// mesh: every locally homed origin's media crosses each inter-region link
// once, and the remote SFU fans it out to its own receivers. Client 0 of
// region 0 is C1. Congestion control on the relay hops follows the
// profile: Meet/Zoom terminate per hop, Teams stays end-to-end.
func NewCascadedCall(eng *sim.Engine, prof *Profile, regions []CascadePlacement, opt CallOptions) *Call {
	total := 0
	for _, r := range regions {
		total += len(r.Clients)
	}
	if total < 2 {
		panic("vca: a call needs at least two clients")
	}
	c := &Call{
		Prof: prof, eng: eng, mode: opt.Mode,
		home: map[string]int{}, left: map[string]bool{},
	}
	// One media-packet free list serves the whole call: every client and
	// SFU of a call shares one single-threaded engine.
	pool := &mpPool{}
	localNames := make([][]string, len(regions))
	for ri, r := range regions {
		names := make([]string, len(r.Clients))
		for i, h := range r.Clients {
			names[i] = h.Name
			c.home[h.Name] = ri
		}
		localNames[ri] = names
		c.Servers = append(c.Servers, newServer(eng, prof, r.Server, names, pool, total))
	}
	c.Server = c.Servers[0]
	// Wire the relay mesh: each server forwards its local origins to every
	// peer, and registers every peer's origins as remote arrivals.
	for i, si := range c.Servers {
		for j, sj := range c.Servers {
			if i == j {
				continue
			}
			si.addRelayLeg(sj.Name, localNames[i])
			sj.addRemoteOrigins(si.Name, localNames[i])
		}
	}
	i := 0
	for ri, r := range regions {
		for _, h := range r.Clients {
			cl := newClient(eng, prof, h.Name, h, regions[ri].Server.Name, pool, opt.Seed+int64(i)*7919)
			c.Clients = append(c.Clients, cl)
			i++
		}
	}
	c.applyLayout(opt.Mode)
	return c
}

// active returns the clients currently in the call, in join order.
func (c *Call) active() []*Client {
	if len(c.left) == 0 {
		return c.Clients
	}
	out := make([]*Client, 0, len(c.Clients))
	for _, cl := range c.Clients {
		if !c.left[cl.Name] {
			out = append(out, cl)
		}
	}
	return out
}

func (c *Call) clientByName(name string) *Client {
	for _, cl := range c.Clients {
		if cl.Name == name {
			return cl
		}
	}
	return nil
}

// applyLayout computes displayed sets and per-sender budgets (§6), plus
// the relay subscriptions between regions.
func (c *Call) applyLayout(mode ViewMode) {
	active := c.active()
	n := len(active)
	for i, cl := range active {
		var displayed []string
		tiles := c.Prof.VisibleTiles(n)
		for j, other := range active {
			if j == i {
				continue
			}
			if mode == Speaker {
				// Pinned participant always displayed; others as thumbs.
				displayed = append(displayed, other.Name)
				continue
			}
			if len(displayed) < tiles {
				displayed = append(displayed, other.Name)
			}
		}
		c.Servers[c.home[cl.Name]].SetDisplayed(cl.Name, displayed)
	}
	for i, cl := range active {
		cl.SetTierBps(c.senderBudget(mode, n, i == 0))
	}
	c.applyRelayLayout(active)
}

// applyRelayLayout subscribes each region pair: the origins homed in i
// that at least one receiver homed in j displays travel the i→j relay
// leg. Audio always flows; this set gates video only.
func (c *Call) applyRelayLayout(active []*Client) {
	if len(c.Servers) < 2 {
		return
	}
	for i, si := range c.Servers {
		for j, sj := range c.Servers {
			if i == j {
				continue
			}
			want := map[string]bool{}
			for _, cl := range active {
				if c.home[cl.Name] != j {
					continue
				}
				for _, o := range sj.Displayed(cl.Name) {
					if c.home[o] == i {
						want[o] = true
					}
				}
			}
			var origins []string
			for _, cl := range c.Clients {
				if want[cl.Name] {
					origins = append(origins, cl.Name)
				}
			}
			si.SetDisplayed(sj.Name, origins)
		}
	}
}

// senderBudget is the layout-imposed video budget for one sender.
func (c *Call) senderBudget(mode ViewMode, n int, pinnedClient bool) float64 {
	p := c.Prof
	var tierRate float64
	switch {
	case mode == Speaker && pinnedClient:
		if p.SpeakerUplinkBps != nil {
			tierRate = p.SpeakerUplinkBps(n)
		} else {
			tierRate = p.TierBps[TierSpeaker]
		}
	case mode == Speaker:
		tierRate = p.TierBps[TierThumb]
	default:
		tierRate = p.TierBps[p.GalleryTier(n)]
	}
	if p.MediaMode == ModeSimulcast {
		// The budget covers both simulcast copies; a TierLow request
		// means "low copy only".
		if tierRate <= p.TierBps[TierLow] {
			return p.SimLowCapBps * 1.3
		}
		return tierRate + p.SimLowCapBps
	}
	return tierRate
}

// Start begins the call: all servers and clients go live.
func (c *Call) Start() {
	c.started = true
	for _, s := range c.Servers {
		s.start()
	}
	for _, cl := range c.active() {
		cl.start(cl.TierBps())
	}
}

// Stop tears the call down.
func (c *Call) Stop() {
	c.started = false
	for _, cl := range c.active() {
		cl.stop()
	}
	for _, s := range c.Servers {
		s.stop()
	}
}

// Leave removes the named client from the call mid-flight. Every server
// drops its per-client state (uplink receiver, rate estimators, legs,
// forwarding entries), the layout re-flows for the remaining
// participants, and the host stays wired for a later Rejoin.
func (c *Call) Leave(name string) {
	cl := c.clientByName(name)
	if cl == nil || c.left[name] {
		return
	}
	c.left[name] = true
	if c.started {
		cl.stop()
	}
	n := len(c.active())
	for i, s := range c.Servers {
		if i == c.home[name] {
			s.removeClient(name)
		} else {
			s.removeRemoteOrigin(name)
		}
		s.setTotal(n)
	}
	c.applyLayout(c.mode)
}

// Rejoin re-attaches a client that previously left. Server state is
// recreated from scratch (fresh receivers, rate estimators and forwarding
// legs), the layout re-flows, and the client restarts its media if the
// call is live.
func (c *Call) Rejoin(name string) {
	cl := c.clientByName(name)
	if cl == nil || !c.left[name] {
		return
	}
	delete(c.left, name)
	n := len(c.active())
	for i, s := range c.Servers {
		if i == c.home[name] {
			s.addClient(name)
		} else {
			s.addRemoteOrigin(c.Servers[c.home[name]].Name, name)
		}
		s.setTotal(n)
	}
	c.applyLayout(c.mode)
	if c.started {
		cl.start(cl.TierBps())
	}
}

// Active reports whether the named client is currently in the call.
func (c *Call) Active(name string) bool {
	return c.clientByName(name) != nil && !c.left[name]
}

// C1 returns the instrumented client (client 0).
func (c *Call) C1() *Client { return c.Clients[0] }

// HomeServer returns the SFU the named client is homed on.
func (c *Call) HomeServer(name string) *Server { return c.Servers[c.home[name]] }

// String identifies the call.
func (c *Call) String() string {
	if len(c.Servers) > 1 {
		return fmt.Sprintf("%s call, %d clients, %d regions", c.Prof.Name, len(c.Clients), len(c.Servers))
	}
	return fmt.Sprintf("%s call, %d clients", c.Prof.Name, len(c.Clients))
}
