package vca

import (
	"time"

	"vcalab/internal/media"
	"vcalab/internal/obs"
	"vcalab/internal/rtp"
)

// This file is the client half of packet-level loss recovery (DESIGN.md
// §13): a per-origin jitter buffer that reorders out-of-order arrivals,
// NACKs gaps with bounded retries and RTT-derived backoff, adapts its
// playout deadline to observed jitter, and concedes seqs whose deadline
// or retry budget is exhausted — after which late stragglers are
// dropped, so the media receiver sees every loss exactly once. The SFU
// half (RTX buffers, NACK answering, TWCC processing) lives in sfu.go.
//
// Recovery is strictly opt-in: with CallOptions.Recovery false, none of
// this state exists, no recovery ticker is scheduled, and no message or
// packet differs — experiment output stays byte-identical to a build
// without this file.

// RecoveryConfig tunes the NACK/RTX loss-recovery loop. The zero value
// means "use the defaults" (filled by withDefaults) so profiles only
// override what they care about.
type RecoveryConfig struct {
	// RTXBufferPkts is the per-(leg, origin) retransmission ring
	// capacity at the SFU.
	RTXBufferPkts int
	// JitterBufferPkts is the receiver-side reorder window per origin. A
	// gap wider than this resets the buffer (partition semantics).
	JitterBufferPkts int
	// MaxNackRetries is the per-seq NACK budget before giving up.
	MaxNackRetries int
	// NackMinBackoff floors the re-NACK backoff; the effective backoff
	// is max(NackMinBackoff, last RTT estimate) — no re-NACK before an
	// answer could possibly have arrived.
	NackMinBackoff time.Duration
	// NackTick is the recovery ticker cadence (NACK emission, deadline
	// concession).
	NackTick time.Duration
	// PlayoutMin/PlayoutMax clamp the adaptive playout deadline: how
	// long the jitter buffer waits for a missing seq before conceding.
	PlayoutMin, PlayoutMax time.Duration
	// PlayoutJitterMult scales the observed jitter EWMA into the playout
	// deadline: deadline = clamp(mult*jitter + RTT, min, max).
	PlayoutJitterMult float64
	// TWCCInterval is the transport-wide CC report cadence; 0 disables
	// TWCC generation.
	TWCCInterval time.Duration
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.RTXBufferPkts == 0 {
		c.RTXBufferPkts = 512
	}
	if c.JitterBufferPkts == 0 {
		c.JitterBufferPkts = 256
	}
	if c.MaxNackRetries == 0 {
		c.MaxNackRetries = 3
	}
	if c.NackMinBackoff == 0 {
		c.NackMinBackoff = 20 * time.Millisecond
	}
	if c.NackTick == 0 {
		c.NackTick = 20 * time.Millisecond
	}
	if c.PlayoutMin == 0 {
		c.PlayoutMin = 60 * time.Millisecond
	}
	if c.PlayoutMax == 0 {
		c.PlayoutMax = 400 * time.Millisecond
	}
	if c.PlayoutJitterMult == 0 {
		c.PlayoutJitterMult = 4
	}
	if c.TWCCInterval == 0 {
		c.TWCCInterval = 100 * time.Millisecond
	}
	return c
}

// jbSlot states.
const (
	jbEmpty uint8 = iota
	jbFilled
	jbConceded
)

type jbSlot struct {
	state     uint8
	seq       uint16
	info      media.PacketInfo
	arrivedAt time.Duration
}

// jitterBuffer reorders one origin's per-leg sequence space in front of
// its media.Receiver. In-order packets pass straight through; gaps are
// buffered, NACKed, and either healed (RTX or late arrival within the
// playout window) or conceded. Conceded slots swallow late stragglers so
// the receiver's gap accounting — and therefore FreezeTime — charges
// each lost packet exactly once.
type jitterBuffer struct {
	cfg   *RecoveryConfig
	slots []jbSlot
	q     *rtp.NackQueue

	started bool
	nextSeq uint16 // next seq owed to the receiver
	highest uint16

	// RFC 3550 §A.8 interarrival jitter estimate over transit times.
	jitter      time.Duration
	lastTransit time.Duration
	haveTransit bool

	// Stats (getStats + feedback discounting).
	nackSent     uint64        // NACKs emitted, counted per seq per retry
	rtxRecv      uint64        // retransmissions accepted
	lateDropped  uint64        // post-concession stragglers dropped
	conceded     uint64        // seqs conceded (deadline, give-up, reset)
	jbDelayTotal time.Duration // cumulative buffered-residency time
	// Per-feedback-interval RTX accounting, drained by feedbackTick so
	// CC sees recovered packets as the losses they were.
	intRTXPkts  int
	intRTXBytes int

	nackScratch []uint16 // seqs to NACK, rebuilt each tick
}

func newJitterBuffer(cfg *RecoveryConfig) *jitterBuffer {
	return &jitterBuffer{
		cfg:   cfg,
		slots: make([]jbSlot, cfg.JitterBufferPkts),
		q:     rtp.NewNackQueue(cfg.MaxNackRetries),
	}
}

func (b *jitterBuffer) slot(seq uint16) *jbSlot { return &b.slots[int(seq)%len(b.slots)] }

// observeJitter folds one arrival's transit time into the jitter EWMA.
func (b *jitterBuffer) observeJitter(now time.Duration, sentAt time.Duration) {
	transit := now - sentAt
	if b.haveTransit {
		d := transit - b.lastTransit
		if d < 0 {
			d = -d
		}
		b.jitter += (d - b.jitter) / 16
	}
	b.lastTransit = transit
	b.haveTransit = true
}

// playoutDelay is the adaptive deadline for a newly detected gap.
func (b *jitterBuffer) playoutDelay(rtt time.Duration) time.Duration {
	d := time.Duration(b.cfg.PlayoutJitterMult*float64(b.jitter)) + rtt
	if d < b.cfg.PlayoutMin {
		d = b.cfg.PlayoutMin
	}
	if d > b.cfg.PlayoutMax {
		d = b.cfg.PlayoutMax
	}
	return d
}

// onPacket feeds one arrival through the buffer, delivering whatever
// becomes in-order to deliver(). Returns false when the packet was
// dropped (late straggler past concession).
func (b *jitterBuffer) onPacket(now time.Duration, seq uint16, rtx bool, wireBytes int,
	info media.PacketInfo, rtt time.Duration, deliver func(media.PacketInfo)) bool {

	b.observeJitter(now, info.SentAt)
	if rtx {
		b.rtxRecv++
		b.intRTXPkts++
		b.intRTXBytes += wireBytes
	}
	if !b.started {
		b.started = true
		b.nextSeq = seq + 1
		b.highest = seq
		b.q.Observe(seq, now, 0)
		deliver(info)
		return true
	}
	d := rtp.SeqDiff(b.nextSeq, seq)
	switch {
	case d < 0:
		// Before the window: already delivered or conceded. Dropping
		// (rather than delivering) is the freeze-accounting fix — the
		// receiver charged this seq as lost once and must not see it.
		b.lateDropped++
		return false
	case d == 0:
		b.q.Observe(seq, now, 0) // advances the tracker; no gap possible here
		if rtp.SeqLess(b.highest, seq) {
			b.highest = seq
		}
		deliver(info)
		b.nextSeq++
		b.flush(now, deliver)
		return true
	case d >= len(b.slots):
		// Catastrophic gap (partition): stop chasing, deliver what we
		// have in order, concede the rest, restart at seq.
		b.reset(now, deliver)
		b.q.Reset(seq)
		b.nextSeq = seq + 1
		b.highest = seq
		deliver(info)
		return true
	}
	// Out-of-order within the window: track new gaps, buffer.
	if rtp.SeqLess(b.highest, seq) {
		deadline := now + b.playoutDelay(rtt)
		b.q.Observe(seq, now, deadline)
		b.highest = seq
	} else {
		b.q.Remove(seq)
	}
	s := b.slot(seq)
	if s.state == jbConceded && s.seq == seq {
		// Conceded but nextSeq hasn't passed it yet: a straggler that
		// lost its race with the playout deadline. Same single-count
		// rule as the d < 0 path.
		b.lateDropped++
		return false
	}
	if s.state == jbFilled && s.seq == seq {
		return true // network duplicate of a buffered packet
	}
	*s = jbSlot{state: jbFilled, seq: seq, info: info, arrivedAt: now}
	return true
}

// flush delivers the contiguous run of filled/conceded slots at nextSeq.
func (b *jitterBuffer) flush(now time.Duration, deliver func(media.PacketInfo)) {
	for b.nextSeq != b.highest+1 {
		s := b.slot(b.nextSeq)
		if s.seq != b.nextSeq || s.state == jbEmpty {
			return
		}
		if s.state == jbFilled {
			b.jbDelayTotal += now - s.arrivedAt
			deliver(s.info)
		}
		*s = jbSlot{}
		b.nextSeq++
	}
}

// reset delivers every buffered packet in seq order and concedes the
// holes — the catastrophic-gap path.
func (b *jitterBuffer) reset(now time.Duration, deliver func(media.PacketInfo)) {
	for b.nextSeq != b.highest+1 {
		s := b.slot(b.nextSeq)
		if s.seq == b.nextSeq && s.state == jbFilled {
			b.jbDelayTotal += now - s.arrivedAt
			deliver(s.info)
		} else if s.seq != b.nextSeq || s.state != jbConceded {
			b.conceded++
		}
		if s.seq == b.nextSeq {
			*s = jbSlot{}
		}
		b.nextSeq++
	}
}

// tick runs the NACK retry machine and concedes expired seqs: nack
// fires per seq to request, giveUp per seq whose retry budget ran out,
// and conceded once with the number of seqs given up on this tick.
func (b *jitterBuffer) tick(now, backoff time.Duration, deliver func(media.PacketInfo),
	nack, giveUp func(seq uint16), conceded func(n int)) {

	if !b.started || b.q.Len() == 0 {
		return
	}
	n := 0
	b.q.Tick(now, backoff,
		func(seq uint16) {
			b.nackSent++
			nack(seq)
		},
		func(seq uint16, gu bool) {
			s := b.slot(seq)
			if s.state == jbEmpty {
				*s = jbSlot{state: jbConceded, seq: seq}
			}
			b.conceded++
			n++
			if gu {
				giveUp(seq)
			}
		})
	if n > 0 {
		b.flush(now, deliver)
		conceded(n)
	}
}

// takeInterval drains the per-feedback-interval RTX counters.
func (b *jitterBuffer) takeInterval() (pkts, bytes int) {
	pkts, bytes = b.intRTXPkts, b.intRTXBytes
	b.intRTXPkts, b.intRTXBytes = 0, 0
	return pkts, bytes
}

// clientRecovery is the per-client recovery state: jitter buffers dense
// by origin ID, the TWCC arrival recorder for the home-SFU transport,
// and the tick bookkeeping.
type clientRecovery struct {
	cfg  RecoveryConfig
	jbs  []*jitterBuffer // dense by origin registry ID
	live []int32         // origin IDs with a buffer, creation order

	twcc *rtp.TWCCRecorder // nil when TWCC is off
}

func newClientRecovery(cfg RecoveryConfig, idCap int, twcc bool) *clientRecovery {
	r := &clientRecovery{cfg: cfg, jbs: make([]*jitterBuffer, idCap)}
	if twcc && cfg.TWCCInterval > 0 {
		r.twcc = rtp.NewTWCCRecorder(2048)
	}
	return r
}

func (r *clientRecovery) grow(id int32) {
	for int(id) >= len(r.jbs) {
		r.jbs = append(r.jbs, nil)
	}
}

func (r *clientRecovery) jbFor(id int32) *jitterBuffer {
	r.grow(id)
	if b := r.jbs[id]; b != nil {
		return b
	}
	b := newJitterBuffer(&r.cfg)
	r.jbs[id] = b
	r.live = append(r.live, id)
	return b
}

// peek returns the buffer for an origin without creating one.
func (r *clientRecovery) peek(id int32) *jitterBuffer {
	if int(id) < len(r.jbs) {
		return r.jbs[id]
	}
	return nil
}

// drop discards the buffer for an origin that left the call. Its ID may
// be recycled for a different participant; the stale seq state must not
// leak onto the newcomer.
func (r *clientRecovery) drop(id int32) {
	if int(id) < len(r.jbs) && r.jbs[id] != nil {
		r.jbs[id] = nil
		for i, v := range r.live {
			if v == id {
				r.live = append(r.live[:i], r.live[i+1:]...)
				break
			}
		}
	}
}

// clear discards every buffer (the client left the call).
func (r *clientRecovery) clear() {
	for _, id := range r.live {
		r.jbs[id] = nil
	}
	r.live = r.live[:0]
}

// pendingNacks sums the NACK queue depths (harness invariant: zero
// after a drained run flushes).
func (r *clientRecovery) pendingNacks() int {
	n := 0
	for _, id := range r.live {
		n += r.jbs[id].q.Len()
	}
	return n
}

// flushAll concedes every pending gap and delivers the stragglers —
// called at stop so drained runs end with empty NACK queues and fully
// delivered buffers.
func (r *clientRecovery) flushAll(now time.Duration, deliverFor func(id int32) func(media.PacketInfo)) {
	for _, id := range r.live {
		b := r.jbs[id]
		deliver := deliverFor(id)
		b.tick(now+b.cfg.PlayoutMax+time.Hour, time.Hour, deliver,
			func(uint16) {}, func(uint16) {}, func(int) {})
		b.reset(now, deliver)
	}
}

// serverRecovery is the per-server recovery state: NACK/RTX counters
// (per-origin for getStats) plus clone conservation accounting checked
// by the fuzz harness. The RTX buffers themselves live on each leg's
// fwdState; the TWCC send histories live on each leg.
type serverRecovery struct {
	cfg RecoveryConfig

	clonesMade  uint64
	clonesFreed uint64

	nackRecv  []uint64 // by origin ID: NACKed seqs received
	rtxSent   []uint64 // by origin ID: retransmissions answered
	nackTotal uint64
	rtxTotal  uint64
}

func newServerRecovery(cfg RecoveryConfig, idCap int) *serverRecovery {
	return &serverRecovery{
		cfg:      cfg,
		nackRecv: make([]uint64, idCap),
		rtxSent:  make([]uint64, idCap),
	}
}

func (r *serverRecovery) grow(id int32) {
	for int(id) >= len(r.nackRecv) {
		r.nackRecv = append(r.nackRecv, 0)
		r.rtxSent = append(r.rtxSent, 0)
	}
}

// clonesLive is the number of RTX payload clones currently held in
// buffers (harness invariant: zero after DrainRecovery).
func (r *serverRecovery) clonesLive() uint64 { return r.clonesMade - r.clonesFreed }

// RecoveryReceiverStats is one origin's receiver-side recovery counters,
// surfaced into inbound-rtp getStats.
type RecoveryReceiverStats struct {
	NackCount        uint64
	RTXReceived      uint64
	JitterBufferTime time.Duration
	Conceded         uint64
	LateDropped      uint64
}

// recoveryReceiverStats reads one origin's counters (zero value if the
// client has no buffer for it).
func (r *clientRecovery) recoveryReceiverStats(id int32) RecoveryReceiverStats {
	if r == nil || int(id) >= len(r.jbs) || r.jbs[id] == nil {
		return RecoveryReceiverStats{}
	}
	b := r.jbs[id]
	return RecoveryReceiverStats{
		NackCount:        b.nackSent,
		RTXReceived:      b.rtxRecv,
		JitterBufferTime: b.jbDelayTotal,
		Conceded:         b.conceded,
		LateDropped:      b.lateDropped,
	}
}

// tracerRecovery is a tiny helper so call sites stay one line under the
// nil-guard convention.
func tracerRecovery(tr *obs.Tracer, kind obs.EventKind, now time.Duration, client, origin string, n int) {
	if tr != nil {
		tr.Recovery(kind, now, client, origin, n)
	}
}
