package vca

import (
	"math/rand"
	"sort"
	"time"

	"vcalab/internal/cc"
	"vcalab/internal/codec"
	"vcalab/internal/media"
	"vcalab/internal/netem"
	"vcalab/internal/obs"
	"vcalab/internal/rtp"
	"vcalab/internal/sim"
	"vcalab/internal/stats"
	"vcalab/internal/webrtcstats"
)

// Client is one VCA participant: a media sender (source → encoder →
// packetizer → host) plus a media receiver per remote participant, with
// RTCP-style feedback loops at 100 ms cadence. Receive-side state is
// index-addressed by the call registry's dense participant IDs; the 10 Hz
// feedback and 1 Hz stats ticks iterate an explicit order list that
// preserves the sorted-name order of the string-keyed implementation, so
// aggregate statistics stay byte-identical.
type Client struct {
	Name string

	eng       *sim.Engine
	prof      *Profile
	host      *netem.Host
	server    string // server host name
	reg       *registry
	id        int32 // own registry ID (refreshed on rejoin)
	region    int   // home region index (stable across churn)
	rng       *rand.Rand
	startedAt time.Duration

	// --- sender ---
	ccUp   cc.Controller
	single *codec.Encoder
	// frameScratch backs the single-encoder frame list in videoTick so
	// the 30 Hz tick never allocates a one-element slice.
	frameScratch [1]*codec.Frame
	simul        *codec.Simulcast
	svc          *codec.SVC
	tierBps      float64 // layout-imposed video cap
	lowAlloc     float64 // Meet SFU low-copy allocation (0 = default)
	stallUntil   time.Duration
	seq          uint16
	padOwed      float64
	lastPad      time.Duration

	// --- receiver ---
	recv []*media.Receiver // origin ID -> receiver (nil until first packet)
	// recvOrder lists the IDs of live receivers in sorted-name order,
	// maintained on insert so the 10 Hz feedback and 1 Hz stats ticks
	// iterate deterministically and allocation-free, in the exact order
	// the string-keyed implementation used.
	recvOrder []int32

	// --- hot-path caches ---
	pool *mpPool // shared per-call media packet free list
	// flows caches the per-stream accounting labels by rate key; flowRtcp
	// is the feedback label. Building these per packet would allocate.
	flows    [rkSVC + 1]string
	flowRtcp string

	// strayRecv backs Receiver() calls for names outside the call's
	// registry (misspellings, probes): read-style lookups must never
	// mutate the registry — interning a stranger could steal a freed ID
	// out from under a later Rejoin. Cold path only.
	strayRecv map[string]*media.Receiver

	// rec, when non-nil, is the loss-recovery state (recovery.go):
	// per-origin jitter buffers, NACK scheduling, TWCC recording. Nil
	// unless CallOptions.Recovery — the recovery-off packet path is
	// exactly the pre-recovery one. homeSrv points at the home SFU for
	// read-only stats (the SFU answers NACKs on this client's behalf,
	// so the outbound-rtp recovery counters live there).
	rec     *clientRecovery
	homeSrv *Server

	// --- instrumentation ---
	UpMeter   *stats.Meter // bytes this client put on the wire
	DownMeter *stats.Meter // bytes delivered to this client
	Recorder  *webrtcstats.Recorder
	// FIRsForMyVideo counts FIR messages received for this client's
	// outbound video (the paper's Fig 3b metric).
	FIRsForMyVideo int
	// tracer, when set (Call.SetTracer), records uplink CC decisions.
	tracer *obs.Tracer
	// lastRTT retains the RTT the uplink controller last saw, for the
	// metrics sampler and candidate-pair snapshots.
	lastRTT time.Duration
	// latT/latV sample end-to-end frame latency: for every video
	// frame-end packet, the virtual arrival time and the delay since the
	// origin client stamped it. OriginSentAt survives SFU forwarding (and
	// cascading), so the sample spans the whole origin→receiver path.
	latT []time.Duration
	latV []time.Duration

	tickers []*sim.Ticker
	running bool
}

func newClient(eng *sim.Engine, prof *Profile, name string, host *netem.Host, reg *registry, server string, region int, pool *mpPool, seed int64) *Client {
	c := &Client{
		Name:      name,
		eng:       eng,
		prof:      prof,
		host:      host,
		server:    server,
		reg:       reg,
		id:        reg.intern(name, false),
		region:    region,
		rng:       rand.New(rand.NewSource(seed)),
		recv:      make([]*media.Receiver, reg.cap()),
		pool:      pool,
		flowRtcp:  prof.Name + "/" + name + "/rtcp",
		UpMeter:   stats.NewMeter(time.Second),
		DownMeter: stats.NewMeter(time.Second),
		Recorder:  webrtcstats.NewRecorder(),
	}
	src := codec.NewSource(c.rng)
	keyInt := prof.KeyInterval
	if keyInt == 0 {
		keyInt = 10 * time.Second
	}
	switch prof.MediaMode {
	case ModeSimulcast:
		c.simul = codec.NewSimulcast(prof.LowLadder, prof.Ladder, prof.SimLowCapBps, prof.SimMinHighBps, src, c.rng)
		c.simul.Low.KeyInterval = keyInt
		c.simul.High.KeyInterval = keyInt
	case ModeSVC:
		c.svc = codec.NewSVC(prof.Ladder, prof.SVCSplit, src, c.rng)
		c.svc.SetKeyInterval(keyInt)
	default:
		c.single = codec.NewEncoder("video", prof.Ladder, src, c.rng)
		c.single.KeyInterval = keyInt
	}
	host.HandleFunc(PortMedia, c.onMedia)
	host.HandleFunc(PortFeedback, c.onFeedback)
	host.HandleFunc(PortSignal, c.onSignal)
	return c
}

// enableRecovery attaches loss-recovery state (called once at call
// construction when CallOptions.Recovery is set). TWCC is only
// generated when the home SFU runs per-leg controllers that could
// consume it (pure relays have none).
func (c *Client) enableRecovery(cfg RecoveryConfig) {
	c.rec = newClientRecovery(cfg, len(c.recv), c.prof.NewServerCC != nil)
}

// SetTierBps sets the layout-imposed cap on this client's video target
// (§6: tile size determines the requested resolution).
func (c *Client) SetTierBps(bps float64) { c.tierBps = bps }

// TierBps returns the current layout cap.
func (c *Client) TierBps() float64 { return c.tierBps }

// CC exposes the uplink congestion controller (for tests).
func (c *Client) CC() cc.Controller { return c.ccUp }

// Receiver returns the media receiver tracking origin's stream, creating
// it on first use. Experiments and tests address receivers by name; the
// packet path uses receiverByID directly. Names outside the call get a
// stable detached receiver rather than a registry entry.
func (c *Client) Receiver(origin string) *media.Receiver {
	if id := c.reg.id(origin); id != noID {
		return c.receiverByID(id)
	}
	if c.strayRecv == nil {
		c.strayRecv = map[string]*media.Receiver{}
	}
	r, ok := c.strayRecv[origin]
	if !ok {
		r = media.NewReceiver()
		c.strayRecv[origin] = r
	}
	return r
}

// receiverByID returns (creating on first use) the receiver slot for one
// origin ID. New receivers enter recvOrder at their name's sorted position.
func (c *Client) receiverByID(origin int32) *media.Receiver {
	for int(origin) >= len(c.recv) {
		c.recv = append(c.recv, nil)
	}
	r := c.recv[origin]
	if r == nil {
		r = media.NewReceiver()
		name := c.reg.name(origin)
		r.OnFIR = func(now time.Duration) {
			c.sendSignal(&FIRMsg{From: c.Name, Origin: name})
		}
		c.recv[origin] = r
		i := sort.Search(len(c.recvOrder), func(i int) bool {
			return c.reg.name(c.recvOrder[i]) >= name
		})
		c.recvOrder = append(c.recvOrder, 0)
		copy(c.recvOrder[i+1:], c.recvOrder[i:])
		c.recvOrder[i] = origin
	}
	return r
}

// dropOrigin releases the receiver slot for a departed participant, so a
// recycled ID can never alias its accumulated state.
func (c *Client) dropOrigin(origin int32) {
	if int(origin) >= len(c.recv) || c.recv[origin] == nil {
		return
	}
	c.recv[origin] = nil
	for i, id := range c.recvOrder {
		if id == origin {
			c.recvOrder = append(c.recvOrder[:i], c.recvOrder[i+1:]...)
			break
		}
	}
	if c.rec != nil {
		c.rec.drop(origin)
	}
}

// clearRecv drops every receiver (the client itself is leaving the call).
func (c *Client) clearRecv() {
	for i := range c.recv {
		c.recv[i] = nil
	}
	c.recvOrder = c.recvOrder[:0]
	if c.rec != nil {
		c.rec.clear()
	}
}

// start begins media flow and feedback/stat tickers.
func (c *Client) start(nominalVideoBps float64) {
	c.running = true
	c.startedAt = c.eng.Now()
	c.ccUp = c.prof.NewClientCC(nominalVideoBps)

	// Video capture tick (30 Hz).
	c.tickers = append(c.tickers, c.eng.EveryHandler(time.Second/30, sim.HandlerFunc(c.videoTick)))
	// Audio: 50 packets/s of 100 B payload = 40 kbps.
	c.tickers = append(c.tickers, c.eng.EveryHandler(time.Second/50, sim.HandlerFunc(c.audioTick)))
	// Padding / probing budget (20 ms granularity).
	c.tickers = append(c.tickers, c.eng.EveryHandler(20*time.Millisecond, sim.HandlerFunc(c.padTick)))
	// Receiver feedback at 100 ms.
	c.tickers = append(c.tickers, c.eng.EveryHandler(100*time.Millisecond, sim.HandlerFunc(c.feedbackTick)))
	// WebRTC-stats sampling at 1 s (§3.2: per-second granularity).
	c.tickers = append(c.tickers, c.eng.EveryHandler(time.Second, sim.HandlerFunc(c.statsTick)))
	// Loss recovery (recovery on only): NACK/concession tick, plus the
	// TWCC report tick where the SFU has controllers to feed.
	if c.rec != nil {
		c.tickers = append(c.tickers, c.eng.EveryHandler(c.rec.cfg.NackTick, sim.HandlerFunc(c.recoveryTick)))
		if c.rec.twcc != nil {
			c.tickers = append(c.tickers, c.eng.EveryHandler(c.rec.cfg.TWCCInterval, sim.HandlerFunc(c.twccTick)))
		}
	}
}

// stop halts all activity (call teardown).
func (c *Client) stop() {
	if c.rec != nil {
		// Deliver buffered stragglers, concede every pending gap: drained
		// runs must end with empty NACK queues, and a rejoin must not
		// inherit stale seq state.
		now := c.eng.Now()
		c.rec.flushAll(now, func(id int32) func(media.PacketInfo) {
			r := c.receiverByID(id)
			return func(info media.PacketInfo) { r.OnPacket(now, info) }
		})
		if c.rec.twcc != nil {
			c.rec.twcc = rtp.NewTWCCRecorder(2048)
		}
	}
	c.running = false
	for _, t := range c.tickers {
		t.Stop()
	}
	c.tickers = nil
}

// videoTarget computes the current encoder budget.
func (c *Client) videoTarget() float64 {
	t := c.ccUp.TargetBps() - c.prof.AudioBps
	if c.tierBps > 0 && t > c.tierBps {
		t = c.tierBps
	}
	if t < 30_000 {
		t = 30_000
	}
	return t
}

//vca:hotpath 30 Hz per-client encode loop
func (c *Client) videoTick(now time.Duration) {
	if !c.running {
		return
	}
	// Random encoder pipeline stalls (Teams-Chrome quirk, §3.2).
	if now < c.stallUntil {
		return
	}
	if c.prof.StallEvery > 0 {
		tickP := (time.Second / 30).Seconds() / c.prof.StallEvery.Seconds()
		if c.rng.Float64() < tickP {
			c.stallUntil = now + c.prof.StallDur
			return
		}
	}
	target := c.videoTarget()
	var frames []*codec.Frame
	switch c.prof.MediaMode {
	case ModeSimulcast:
		if c.lowAlloc > 0 {
			// Meet SFU asked for a reduced low copy (receiver starved).
			c.simul.Low.SetTarget(c.lowAlloc)
			c.simul.High.SetTarget(max(0, target-c.lowAlloc))
			if target-c.lowAlloc < c.prof.SimMinHighBps {
				c.simul.High.SetTarget(0)
			}
		} else {
			c.simul.SetTarget(target)
		}
		frames = c.simul.Tick(now)
	case ModeSVC:
		c.svc.SetTarget(target)
		frames = c.svc.Tick(now)
	default:
		c.single.SetTarget(target)
		if f := c.single.Tick(now); f != nil {
			c.frameScratch[0] = f
			frames = c.frameScratch[:1]
		}
	}
	for _, f := range frames {
		c.sendFrame(f)
	}
	c.frameScratch[0] = nil
}

// sendFrame packetizes one encoded frame into RTP-sized packets.
//
//vca:hotpath packetization inner loop
func (c *Client) sendFrame(f *codec.Frame) {
	rk := streamRK(f.StreamID)
	remaining := f.Bytes
	for remaining > 0 {
		chunk := remaining
		if chunk > maxPayload {
			chunk = maxPayload
		}
		remaining -= chunk
		last := remaining == 0
		mp := c.pool.get()
		mp.Origin = c.Name
		mp.OriginID = c.id
		mp.StreamID = f.StreamID
		mp.RK = rk
		mp.Layer = f.Layer
		mp.SSRC = 1
		mp.Seq = c.seq
		mp.FrameSeq = f.FrameSeq
		mp.LayerEnd = last
		mp.FrameEnd = last && f.Layer == c.topLayer()
		mp.Keyframe = f.Keyframe
		if mp.LayerEnd {
			mp.Params = f.Params
			mp.HasParams = true
		}
		c.seq++
		c.send(mp, chunk+wireOverhead)
	}
}

// topLayer is the highest SVC layer index (frame-end marker placement).
func (c *Client) topLayer() int {
	if c.prof.MediaMode == ModeSVC {
		return len(c.prof.SVCSplit) - 1
	}
	return 0
}

//vca:hotpath 50 Hz per-client audio loop
func (c *Client) audioTick(time.Duration) {
	if !c.running {
		return
	}
	mp := c.pool.get()
	mp.Origin, mp.OriginID = c.Name, c.id
	mp.StreamID, mp.RK = "audio", rkAudio
	mp.SSRC, mp.Seq, mp.Audio = 2, c.seq, true
	c.seq++
	c.send(mp, 100+wireOverhead)
}

// padTick emits FEC/probe padding at the controller's requested rate
// (Zoom's probe bursts, GCC recovery probes).
//
//vca:hotpath padding/probe emission loop
func (c *Client) padTick(now time.Duration) {
	if !c.running || c.ccUp == nil {
		return
	}
	dt := (now - c.lastPad).Seconds()
	if c.lastPad == 0 {
		dt = 0.02
	}
	c.lastPad = now
	c.padOwed += c.ccUp.PadRateBps(now) / 8 * dt
	for c.padOwed >= maxPayload {
		c.padOwed -= maxPayload
		mp := c.pool.get()
		mp.Origin, mp.OriginID = c.Name, c.id
		mp.StreamID, mp.RK = "pad", rkPad
		mp.SSRC, mp.Seq, mp.Padding = 1, c.seq, true
		c.seq++
		c.send(mp, maxPayload+wireOverhead)
	}
}

// flowFor returns the cached accounting label for one of this client's
// streams, index-addressed by rate key.
func (c *Client) flowFor(rk uint8, stream string) string {
	if c.flows[rk] == "" {
		c.flows[rk] = c.prof.Name + "/" + c.Name + "/" + stream
	}
	return c.flows[rk]
}

//vca:hotpath per-packet uplink path
func (c *Client) send(mp *MediaPacket, wireBytes int) {
	now := c.eng.Now()
	mp.OriginSentAt = now
	c.UpMeter.AddBytes(now, wireBytes)
	pkt := c.host.NewPacket()
	pkt.Size = wireBytes
	pkt.From = netem.Addr{Host: c.Name, Port: PortMedia}
	pkt.To = netem.Addr{Host: c.server, Port: PortMedia}
	pkt.Flow = c.flowFor(mp.RK, mp.StreamID)
	pkt.Payload = mp
	c.host.Send(pkt)
}

func (c *Client) sendSignal(payload any) {
	c.host.Send(&netem.Packet{
		Size:    firWire,
		From:    netem.Addr{Host: c.Name, Port: PortSignal},
		To:      netem.Addr{Host: c.server, Port: PortSignal},
		Flow:    c.prof.Name + "/" + c.Name + "/signal",
		Payload: payload,
	})
}

// onMedia handles a forwarded media packet from the SFU, dispatching to
// the receiver slot by the packet's stamped origin ID. The packet's
// payload is consumed here: it goes back to the call's media pool.
//
//vca:hotpath per-packet downlink receive path
func (c *Client) onMedia(pkt *netem.Packet) {
	mp, ok := pkt.Payload.(*MediaPacket)
	if !ok {
		return
	}
	if !c.running {
		releaseMedia(mp)
		return
	}
	now := c.eng.Now()
	c.DownMeter.AddBytes(now, pkt.Size)
	if !mp.Padding && !mp.Audio && mp.FrameEnd {
		c.latT = append(c.latT, now)
		c.latV = append(c.latV, now-mp.OriginSentAt)
	}
	sentAt := pkt.SentAt
	if mp.E2E {
		// Pass-through relay (Teams): the delay signal spans the whole
		// path, uplink queueing included (abs-send-time semantics).
		sentAt = mp.OriginSentAt
	}
	if c.rec != nil {
		if c.rec.twcc != nil && mp.TWSeq != 0 {
			c.rec.twcc.Record(mp.TWSeq, int64(now/time.Microsecond))
		}
		// Participant media goes through the jitter buffer; SFU-origin
		// probe padding (constant seq) bypasses it.
		if c.reg.live(mp.OriginID) && !c.reg.isServer(mp.OriginID) {
			c.recoveryOnMedia(now, mp, pkt.Size, sentAt)
			releaseMedia(mp)
			return
		}
	}
	if c.reg.live(mp.OriginID) {
		c.receiverByID(mp.OriginID).OnPacket(now, mp.Info(pkt.Size, sentAt))
	}
	releaseMedia(mp)
}

// recoveryOnMedia routes one participant-media arrival through the
// origin's jitter buffer, which decides what (and when) the media
// receiver sees.
func (c *Client) recoveryOnMedia(now time.Duration, mp *MediaPacket, wireBytes int, sentAt time.Duration) {
	b := c.rec.jbFor(mp.OriginID)
	r := c.receiverByID(mp.OriginID)
	ok := b.onPacket(now, mp.Seq, mp.RTX, wireBytes, mp.Info(wireBytes, sentAt), c.lastRTT,
		func(info media.PacketInfo) { r.OnPacket(now, info) })
	if c.tracer != nil {
		if !ok {
			c.tracer.Recovery(obs.EvJBLate, now, c.Name, mp.Origin, int(mp.Seq))
		} else if mp.RTX {
			c.tracer.Recovery(obs.EvRTXDeliver, now, c.Name, mp.Origin, int(mp.Seq))
		}
	}
}

// recoveryTick runs each origin's NACK retry machine: emit due NACKs
// (bounded retries, RTT-derived backoff) and concede seqs past their
// playout deadline or retry budget.
func (c *Client) recoveryTick(now time.Duration) {
	if !c.running || c.rec == nil {
		return
	}
	backoff := c.rec.cfg.NackMinBackoff
	if c.lastRTT > backoff {
		backoff = c.lastRTT
	}
	for _, id := range c.rec.live {
		b := c.rec.jbs[id]
		if b.q.Len() == 0 {
			continue
		}
		r := c.receiverByID(id)
		origin := c.reg.name(id)
		seqs := b.nackScratch[:0]
		b.tick(now, backoff,
			func(info media.PacketInfo) { r.OnPacket(now, info) },
			func(seq uint16) {
				seqs = append(seqs, seq)
				if c.tracer != nil {
					c.tracer.Recovery(obs.EvNackSent, now, c.Name, origin, int(seq))
				}
			},
			func(seq uint16) {
				if c.tracer != nil {
					c.tracer.Recovery(obs.EvNackGiveUp, now, c.Name, origin, int(seq))
				}
			},
			func(n int) {
				if c.tracer != nil {
					c.tracer.Recovery(obs.EvJBConcede, now, c.Name, origin, n)
				}
			})
		b.nackScratch = seqs
		if len(seqs) > 0 {
			c.sendNack(id, seqs)
		}
	}
}

// sendNack requests retransmission of missing seqs in one origin's
// per-leg sequence space.
func (c *Client) sendNack(origin int32, seqs []uint16) {
	pairs := rtp.BuildNackPairs(seqs)
	pkt := c.host.NewPacket()
	pkt.Size = nackWireBase + 4*len(pairs)
	pkt.From = netem.Addr{Host: c.Name, Port: PortFeedback}
	pkt.To = netem.Addr{Host: c.server, Port: PortFeedback}
	pkt.Flow = c.flowRtcp
	pkt.Payload = &NackMsg{From: c.Name, FromID: c.id, Origin: origin, Pairs: pairs}
	c.host.Send(pkt)
}

// twccTick flushes the transport-wide arrival record into one report.
//
//vca:hotpath transport-wide feedback tick
func (c *Client) twccTick(now time.Duration) {
	if !c.running || c.rec == nil || c.rec.twcc == nil {
		return
	}
	rep, ok := c.rec.twcc.BuildReport()
	if !ok {
		return
	}
	pkt := c.host.NewPacket()
	pkt.Size = twccWireBase + 4*len(rep.DeltaUs)
	pkt.From = netem.Addr{Host: c.Name, Port: PortFeedback}
	pkt.To = netem.Addr{Host: c.server, Port: PortFeedback}
	pkt.Flow = c.flowRtcp
	pkt.Payload = &TWCCMsg{From: c.Name, FromID: c.id, Report: rep} //vcalint:ignore hotpath deliberate 10 Hz allocation: TWCC reports are rare relative to packets
	c.host.Send(pkt)
}

// onFeedback handles receiver reports about this client's uplink.
func (c *Client) onFeedback(pkt *netem.Packet) {
	if !c.running || c.ccUp == nil {
		return
	}
	fb, ok := pkt.Payload.(*FeedbackMsg)
	if !ok {
		return
	}
	st := fb.Stats
	rtt := 2*st.QueueDelay + 40*time.Millisecond
	c.lastRTT = rtt
	var oldBps float64
	if c.tracer != nil {
		oldBps = c.ccUp.TargetBps()
	}
	c.ccUp.OnFeedback(cc.Feedback{
		Now:            c.eng.Now(),
		Interval:       st.Interval,
		RTT:            rtt,
		LossFraction:   st.LossFraction,
		ReceiveRateBps: st.RateBps,
		QueueDelay:     st.QueueDelay,
	})
	if c.tracer != nil {
		if newBps := c.ccUp.TargetBps(); newBps != oldBps {
			c.tracer.CC(c.eng.Now(), c.Name, "",
				ccReason(st.LossFraction, st.QueueDelay, oldBps, newBps), oldBps, newBps)
		}
	}
}

// onSignal handles FIR and allocation messages arriving from the server.
func (c *Client) onSignal(pkt *netem.Packet) {
	if !c.running {
		return
	}
	switch m := pkt.Payload.(type) {
	case *FIRMsg:
		c.FIRsForMyVideo++
		switch c.prof.MediaMode {
		case ModeSimulcast:
			c.simul.Low.RequestKeyframe()
			c.simul.High.RequestKeyframe()
		case ModeSVC:
			c.svc.RequestKeyframe()
		default:
			c.single.RequestKeyframe()
		}
	case *AllocMsg:
		c.lowAlloc = m.LowBps
	}
}

// feedbackTick aggregates all receive legs into one report to the server.
//
//vca:hotpath receiver report tick
func (c *Client) feedbackTick(now time.Duration) {
	if !c.running {
		return
	}
	var agg media.IntervalStats
	var expectedSum int
	var lossWeighted float64
	for _, id := range c.recvOrder {
		r := c.recv[id]
		st := r.Take(now)
		if c.rec != nil {
			// Discount recovered retransmissions: CC must still see the
			// original losses (RTX rides a separate budget in real VCAs),
			// or recovery would mask congestion from the controllers.
			if b := c.rec.peek(id); b != nil {
				rtxPkts, rtxBytes := b.takeInterval()
				if rtxPkts > 0 && st.Expected > 0 {
					if st.Interval > 0 {
						st.RateBps -= float64(rtxBytes) * 8 / st.Interval.Seconds()
					}
					lost := st.LossFraction*float64(st.Expected) + float64(rtxPkts)
					st.LossFraction = min(1, lost/float64(st.Expected))
				}
			}
		}
		agg.RateBps += st.RateBps
		expectedSum += st.Expected
		lossWeighted += st.LossFraction * float64(st.Expected)
		if st.QueueDelay > agg.QueueDelay {
			agg.QueueDelay = st.QueueDelay
		}
		agg.Received += st.Received
		agg.Interval = st.Interval
	}
	agg.Expected = expectedSum
	if expectedSum > 0 {
		agg.LossFraction = lossWeighted / float64(expectedSum)
	}
	if agg.Interval == 0 {
		agg.Interval = 100 * time.Millisecond
	}
	pkt := c.host.NewPacket()
	pkt.Size = feedbackWire
	pkt.From = netem.Addr{Host: c.Name, Port: PortFeedback}
	pkt.To = netem.Addr{Host: c.server, Port: PortFeedback}
	pkt.Flow = c.flowRtcp
	pkt.Payload = &FeedbackMsg{From: c.Name, FromID: c.id, Stats: agg} //vcalint:ignore hotpath deliberate allocation: receiver reports fire once per feedback interval, not per packet
	c.host.Send(pkt)
}

// statsTick samples the WebRTC-stats emulation (1 Hz, §3.2).
func (c *Client) statsTick(now time.Duration) {
	if !c.running {
		return
	}
	s := webrtcstats.Sample{T: now - c.startedAt}
	// Outbound: the main video stream's current parameters.
	switch c.prof.MediaMode {
	case ModeSimulcast:
		if c.simul.High.Target() > 0 {
			s.Out = c.simul.High.Params()
		} else {
			s.Out = c.simul.Low.Params()
		}
	case ModeSVC:
		s.Out = c.svc.Params()
	default:
		s.Out = c.single.Params()
	}
	s.OutTargetBps = c.videoTarget()
	s.FIRCount = c.FIRsForMyVideo
	// Inbound: aggregate over origins (2-party calls have exactly one).
	// Pick the params of the busiest video stream deterministically —
	// padding-only receivers (server probes) carry no params.
	var frames, bestFrames int
	var freeze time.Duration
	for _, id := range c.recvOrder {
		r := c.recv[id]
		if r.DisplayedFrames() >= bestFrames && r.LastParams.Width > 0 {
			bestFrames = r.DisplayedFrames()
			s.In = r.LastParams
		}
		frames += r.DisplayedFrames()
		freeze += r.FreezeTime()
	}
	s.InFramesTotal = frames
	s.FreezeTime = freeze
	c.Recorder.Add(s)
}

// Host exposes the client's network host (for instrumentation).
func (c *Client) Host() *netem.Host { return c.host }

// Origins returns the sorted names of every remote participant this
// client has received media from. SFUs are excluded: their probe padding
// creates a rate-only receiver, not a participant.
func (c *Client) Origins() []string {
	names := make([]string, 0, len(c.recvOrder))
	for _, id := range c.recvOrder {
		if !c.reg.isServer(id) {
			names = append(names, c.reg.name(id))
		}
	}
	return names // recvOrder is name-sorted already
}

// FrameLatencies returns the end-to-end frame latencies sampled at or
// after from (origin capture to receiver arrival, across every hop).
func (c *Client) FrameLatencies(from time.Duration) []time.Duration {
	i := sort.Search(len(c.latT), func(i int) bool { return c.latT[i] >= from })
	return c.latV[i:]
}
