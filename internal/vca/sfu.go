package vca

import (
	"time"

	"vcalab/internal/cc"
	"vcalab/internal/media"
	"vcalab/internal/netem"
	"vcalab/internal/obs"
	"vcalab/internal/rtp"
	"vcalab/internal/sim"
)

// Server is the VCA's relay/SFU. Its behaviour is what differentiates the
// three VCAs' downlink dynamics (§4.2):
//
//   - Meet: per-receiver congestion control selects one of the sender's two
//     simulcast copies, with temporal thinning between them, and can ask the
//     sender to shrink its low copy when a receiver is starved.
//   - Zoom: per-receiver congestion control forwards an SVC layer subset
//     and adds server-generated FEC (§3.1).
//   - Teams: a pure relay — every displayed stream is forwarded and the
//     receiver's RTCP is relayed to the senders, making congestion control
//     end-to-end (and slow, Fig 5b/Fig 6).
//
// In a cascaded call (NewCascadedCall) a Server additionally holds relay
// legs toward peer SFUs: each local origin's media is forwarded once per
// peer over the inter-region link, and the peer re-forwards it to its own
// local receivers. A relay leg is driven by exactly the same leg/fwdState
// machinery as a receiver leg; for Meet/Zoom it terminates congestion
// control per hop (the downstream SFU reports back like a receiver would),
// while for Teams it is a pure pass-through and RTCP stays end-to-end.
//
// Every per-participant table is a dense slice indexed by the call
// registry's IDs (see registry.go); the forward/feedback/stats ticks never
// hash a string. Iteration happens through explicit ID order lists
// (clients, legOrder, per-origin fan-outs) that preserve the exact order
// the string-keyed implementation used, so packet emission — and therefore
// experiment output — is byte-identical.
type Server struct {
	Name string

	eng  *sim.Engine
	prof *Profile
	host *netem.Host
	reg  *registry
	id   int32 // own registry ID

	clients []int32 // locally homed participant IDs, join order
	// displayed maps a receiver ID to the origin IDs it displays (layout
	// order). The receiver may be a peer SFU (the relay subscription).
	displayed [][]int32
	n         int // total participants across all regions
	// passthrough marks a pure relay that forwards packets untouched
	// (Teams in a 2-party call, §4.2): original sequence numbers and
	// origin timestamps survive, so uplink loss and queueing remain
	// visible to the far receiver's end-to-end congestion control.
	passthrough bool

	upRecv []*media.Receiver // origin ID -> uplink stats (nil: not local)
	legs   []*leg            // receiver ID -> forwarding state (nil: no leg)
	// legOrder fixes the iteration order over legs (local clients first,
	// then relay peers) so ticks emit packets deterministically even when
	// several legs share one shaped link (the cascade's inter-region hop).
	legOrder []int32
	// rates[origin][rateKey] tracks per-stream arrival rates; a nil row
	// means the origin is unknown here (e.g. relay probe padding).
	rates [][]rateEst

	// --- cascade state (all empty in a single-SFU call) ---
	relayPeers []int32 // downstream peer SFUs this server relays to
	peers      []int32 // upstream peer SFUs this server receives from
	peerSet    []bool  // ID -> is an upstream peer
	remote     []int32 // origin ID -> upstream peer SFU ID (noID: not remote)
	// relayRecv accounts arrivals per upstream peer so the per-hop
	// feedback loop (Meet/Zoom) can report loss/delay on the relay link.
	relayRecv []*media.Receiver

	// --- hot-path caches ---
	// fanVideo/fanAudio precompute, per origin ID, the legs a packet fans
	// out to (local receiver legs in join order, then relay legs), derived
	// from the displayed sets: the per-packet path walks a slice instead
	// of testing membership per receiver. Rebuilt lazily after any layout
	// or churn change.
	fanVideo [][]*leg
	fanAudio [][]*leg
	fanDirty bool

	pool *mpPool // shared per-call media packet free list
	// Precomputed accounting labels for the fixed-cadence feedback and
	// signalling flows.
	flowRtcpUp, flowRtcpHop, flowRtcpRelay string
	flowFir, flowAlloc                     string

	// rec, when non-nil, is the loss-recovery state (recovery.go): clone
	// conservation accounting and per-origin NACK/RTX counters. Nil
	// unless CallOptions.Recovery — the recovery-off packet path is
	// exactly the pre-recovery one. The RTX buffers themselves hang off
	// each receiver leg's fwdState; TWCC send history off each leg.
	rec *serverRecovery

	tickers []*sim.Ticker
	running bool

	// tracer, when set (Call.SetTracer), records per-leg CC decisions
	// and forwarding switches; fwdSwitches counts the latter
	// unconditionally (cheap, allocation-free).
	tracer      *obs.Tracer
	fwdSwitches uint64
}

// leg is the server's state toward one receiver — a local client, or a peer
// SFU when relay is set.
type leg struct {
	receiver int32
	recvName string // cached for netem addressing
	relay    bool
	ctrl     cc.Controller // nil for Teams (pure relay)
	seq      uint16        // relay legs: one sequence space across origins
	fwd      []*fwdState   // origin ID -> forwarding state
	fwdBytes uint64        // cumulative media bytes sent down this leg
	padOwed  float64
	lastPad  time.Duration
	// flows caches accounting labels per (origin ID, rate key): building
	// the label per forwarded packet would allocate on the hottest path.
	flows [][]string

	// --- loss recovery (nil / zero unless CallOptions.Recovery) ---
	// twSeq is the transport-wide sequence counter for this downlink:
	// every packet of the leg (media, FEC, probe padding) gets the next
	// value in send(), feeding the receiver's TWCC arrival reports. The
	// counter skips 0 so TWSeq==0 always means "unstamped". twHist maps
	// a TWSeq back to its send time and size when the report returns;
	// twccFilter turns report + history into cc.Feedback for ctrl.
	twSeq      uint16
	twHist     *rtp.SentHistory
	twccFilter cc.TWCCFilter
}

// fwdState is the per-(receiver, origin) forwarding state: rewritten
// sequence space, frame renumbering, stream/layer selection and thinning.
type fwdState struct {
	seq        uint16
	frameOut   int
	curInFrame int
	curKeep    bool
	selRK      uint8   // Meet: rate key of the selected simulcast copy
	maxLayer   int     // Zoom: highest forwarded SVC layer
	thinFactor float64 // fraction of frames forwarded
	thinAcc    float64
	needKey    bool // mark next forwarded frame as a keyframe (stream switch)
	fecOwed    float64
	// rtx, when recovery is on, buffers a pooled clone of every packet
	// emitted in this (receiver, origin) sequence space so NACKs can be
	// answered. Lazily created on first emission; relay legs never get
	// one (recovery is last-mile: each region's SFU re-answers locally).
	rtx *rtp.RTXBuffer
}

// newFwdState is the construction-time forwarding state: the maxLayer
// sentinel (1 << 10) and high-copy selection deliberately forward
// everything until the first control tick has measured arrival rates —
// receiver estimates start optimistic, and the first 100 ms of a call
// carry the keyframes every receiver needs.
func newFwdState() *fwdState {
	return &fwdState{curInFrame: -1, selRK: rkSimHigh, maxLayer: 1 << 10, thinFactor: 1}
}

// newFwd builds forwarding state for one (receiver, origin) pair. In a
// running call the construction sentinel would be stale — it blasts every
// SVC layer (or the high simulcast copy) at receivers whose estimate may
// not sustain even the base layer — so mid-call subscriptions (join,
// rejoin, cascade re-attach) start conservatively at the base layer / low
// copy and upgrade once the origin's arrival rates are measured, the way
// production SFU forwarders admit a new subscriber.
func (s *Server) newFwd() *fwdState {
	fs := newFwdState()
	if s.running {
		fs.maxLayer = 0
		fs.selRK = rkSimLow
	}
	return fs
}

type rateEst struct {
	bytes int
	rate  float64 // bps, EWMA
}

// newServer builds the SFU on the given host. clients are the locally homed
// participant IDs; total is the call-wide participant count (equal to
// len(clients) in a single-SFU call). The registry must already hold every
// participant and SFU of the call, so all tables size to their final
// density here.
func newServer(eng *sim.Engine, prof *Profile, host *netem.Host, reg *registry, clients []int32, pool *mpPool, total int) *Server {
	n := reg.cap()
	s := &Server{
		Name:      host.Name,
		eng:       eng,
		prof:      prof,
		host:      host,
		reg:       reg,
		id:        reg.intern(host.Name, true),
		displayed: make([][]int32, n),
		n:         total,
		upRecv:    make([]*media.Receiver, n),
		legs:      make([]*leg, n),
		rates:     make([][]rateEst, n),
		peerSet:   make([]bool, n),
		remote:    make([]int32, n),
		relayRecv: make([]*media.Receiver, n),
		fanVideo:  make([][]*leg, n),
		fanAudio:  make([][]*leg, n),
		fanDirty:  true,

		pool:          pool,
		flowRtcpUp:    prof.Name + "/sfu/rtcp-up",
		flowRtcpHop:   prof.Name + "/relay/rtcp-hop",
		flowRtcpRelay: prof.Name + "/sfu/rtcp-relay",
		flowFir:       prof.Name + "/sfu/fir",
		flowAlloc:     prof.Name + "/sfu/alloc",
	}
	for i := range s.remote {
		s.remote[i] = noID
	}
	s.passthrough = prof.NewServerCC == nil && total == 2
	for _, c := range clients {
		s.clients = append(s.clients, c)
		s.upRecv[c] = media.NewReceiver()
		s.rates[c] = []rateEst{}
		l := s.newLeg(c, false)
		s.legs[c] = l
		for _, o := range clients {
			if o != c {
				l.fwd[o] = newFwdState()
			}
		}
	}
	s.rebuildLegOrder()
	host.HandleFunc(PortMedia, s.onMedia)
	host.HandleFunc(PortFeedback, s.onFeedback)
	host.HandleFunc(PortSignal, s.onSignal)
	return s
}

func (s *Server) newLeg(receiver int32, relay bool) *leg {
	l := &leg{
		receiver: receiver,
		recvName: s.reg.name(receiver),
		relay:    relay,
		fwd:      make([]*fwdState, s.reg.cap()),
		flows:    make([][]string, s.reg.cap()),
	}
	if s.prof.NewServerCC != nil {
		l.ctrl = s.prof.NewServerCC()
	}
	return l
}

// enableRecovery attaches loss-recovery state (called once at call
// construction when CallOptions.Recovery is set, before start). RTX
// buffers and TWCC histories are created lazily on each leg's first
// emission, so mid-call churn needs no special casing here.
func (s *Server) enableRecovery(cfg RecoveryConfig) {
	s.rec = newServerRecovery(cfg, s.reg.cap())
}

// rtxStore clones an outgoing packet into its (receiver, origin) RTX
// buffer so a NACK for its seq can be answered. Relay legs are skipped:
// recovery is last-mile, the downstream SFU re-buffers in its own
// rewritten sequence space. Evicted clones return to the pool, with the
// made/freed counters keeping the conservation invariant checkable.
func (s *Server) rtxStore(l *leg, fs *fwdState, out *MediaPacket, size int) {
	if s.rec == nil || l.relay {
		return
	}
	if fs.rtx == nil {
		fs.rtx = rtp.NewRTXBuffer(s.rec.cfg.RTXBufferPkts)
	}
	clone := s.pool.copyOf(out)
	s.rec.clonesMade++
	if ev := fs.rtx.Put(out.Seq, clone, size, int64(s.eng.Now()/time.Microsecond)); ev != nil {
		releaseMedia(ev.(*MediaPacket))
		s.rec.clonesFreed++
	}
}

// drainFwd releases every RTX clone one forwarding state holds. Every
// teardown path that nils a fwdState must come through here (or
// drainLeg), or clones leak out of the pool conservation accounting.
func (s *Server) drainFwd(fs *fwdState) {
	if fs == nil || fs.rtx == nil {
		return
	}
	fs.rtx.Drain(func(p any) {
		releaseMedia(p.(*MediaPacket))
		s.rec.clonesFreed++
	})
}

// drainLeg drains every fwdState of one leg (the leg is going away).
func (s *Server) drainLeg(l *leg) {
	if l == nil || s.rec == nil {
		return
	}
	for _, fs := range l.fwd {
		s.drainFwd(fs)
	}
}

// drainRecovery releases every RTX clone on every leg (call teardown).
func (s *Server) drainRecovery() {
	if s.rec == nil {
		return
	}
	for _, rid := range s.legOrder {
		s.drainLeg(s.legs[rid])
	}
}

func (s *Server) rebuildLegOrder() {
	s.legOrder = s.legOrder[:0]
	s.legOrder = append(s.legOrder, s.clients...)
	s.legOrder = append(s.legOrder, s.relayPeers...)
	s.fanDirty = true
}

// rebuildFans recomputes the per-origin fan-out leg lists from the current
// displayed sets, preserving the emission order of the string-keyed
// implementation: local receivers in join order, then relay peers. Video
// fans out to receivers displaying the origin; audio to everyone. Remote
// origins never fan to relay legs — in a full mesh each origin's media
// crosses each inter-region link exactly once.
func (s *Server) rebuildFans() {
	s.fanDirty = false
	for o := range s.fanVideo {
		video, audio := s.fanVideo[o][:0], s.fanAudio[o][:0]
		oid := int32(o)
		local := s.upRecv[oid] != nil
		if !local && s.remote[oid] == noID {
			s.fanVideo[o], s.fanAudio[o] = video, audio
			continue
		}
		for _, rid := range s.clients {
			if rid == oid {
				continue
			}
			l := s.legs[rid]
			audio = append(audio, l)
			if s.displays(rid, oid) {
				video = append(video, l)
			}
		}
		if local {
			for _, peer := range s.relayPeers {
				l := s.legs[peer]
				audio = append(audio, l)
				if s.displays(peer, oid) {
					video = append(video, l)
				}
			}
		}
		s.fanVideo[o], s.fanAudio[o] = video, audio
	}
}

// addRelayLeg creates the forwarding leg toward a peer SFU, carrying the
// given locally homed origins. For Meet/Zoom the leg gets its own
// congestion controller (per-hop termination); for Teams it stays a pure
// pass-through.
func (s *Server) addRelayLeg(peer int32, origins []int32) {
	l := s.newLeg(peer, true)
	for _, o := range origins {
		l.fwd[o] = newFwdState()
	}
	s.legs[peer] = l
	s.relayPeers = append(s.relayPeers, peer)
	s.rebuildLegOrder()
}

// addRemoteOrigins registers origins homed on an upstream peer SFU: their
// media arrives over the relay link and is re-forwarded to local receivers
// only.
func (s *Server) addRemoteOrigins(peer int32, origins []int32) {
	if !s.peerSet[peer] {
		s.peerSet[peer] = true
		s.peers = append(s.peers, peer)
		if s.prof.NewServerCC != nil {
			s.relayRecv[peer] = media.NewReceiver()
		}
	}
	for _, o := range origins {
		s.addRemoteOrigin(peer, o)
	}
}

// addRemoteOrigin registers one remote origin (rejoin path).
func (s *Server) addRemoteOrigin(peer, origin int32) {
	if !s.peerSet[peer] {
		s.addRemoteOrigins(peer, nil)
	}
	s.remote[origin] = peer
	if s.rates[origin] == nil {
		s.rates[origin] = []rateEst{}
	}
	for _, c := range s.clients {
		if l := s.legs[c]; l.fwd[origin] == nil {
			l.fwd[origin] = s.newFwd()
		}
	}
	s.fanDirty = true
}

// removeRemoteOrigin drops all per-origin state for a remote origin that
// left the call, so cascade churn does not leak rate estimators or
// forwarding state.
func (s *Server) removeRemoteOrigin(origin int32) {
	s.remote[origin] = noID
	s.rates[origin] = nil
	for _, rid := range s.legOrder {
		if l := s.legs[rid]; l != nil {
			s.drainFwd(l.fwd[origin])
			l.fwd[origin] = nil
			l.flows[origin] = nil
		}
	}
	s.fanDirty = true
}

// removeClient drops all per-client state when a local participant leaves
// mid-call: its uplink receiver, rate estimators, receiver leg, and every
// other leg's forwarding state toward or from it.
func (s *Server) removeClient(id int32) {
	for i, c := range s.clients {
		if c == id {
			s.clients = append(s.clients[:i], s.clients[i+1:]...)
			break
		}
	}
	s.upRecv[id] = nil
	s.rates[id] = nil
	s.drainLeg(s.legs[id])
	s.legs[id] = nil
	s.displayed[id] = nil
	for _, rid := range s.legOrder {
		if l := s.legs[rid]; l != nil {
			s.drainFwd(l.fwd[id])
			l.fwd[id] = nil
			l.flows[id] = nil
		}
	}
	s.rebuildLegOrder()
}

// addClient re-attaches a local participant (rejoin path): fresh uplink
// receiver, rate row and receiver leg, plus forwarding state in every
// existing leg (local receivers and relay peers alike).
func (s *Server) addClient(id int32) {
	s.clients = append(s.clients, id)
	s.upRecv[id] = media.NewReceiver()
	s.rates[id] = []rateEst{}
	l := s.newLeg(id, false)
	for _, o := range s.clients {
		if o != id {
			l.fwd[o] = s.newFwd()
		}
	}
	for o := range s.remote {
		if s.remote[o] != noID {
			l.fwd[o] = s.newFwd()
		}
	}
	s.legs[id] = l
	for _, other := range s.legOrder {
		if other == id {
			continue
		}
		if ol := s.legs[other]; ol != nil && ol.fwd[id] == nil {
			ol.fwd[id] = s.newFwd()
		}
	}
	s.rebuildLegOrder()
}

// resetSlot defensively clears every table entry a recycled ID indexes, so
// a reused ID can never inherit a departed participant's state.
func (s *Server) resetSlot(id int32) {
	if int(id) >= len(s.legs) {
		return
	}
	s.upRecv[id] = nil
	s.rates[id] = nil
	s.drainLeg(s.legs[id])
	s.legs[id] = nil
	s.displayed[id] = nil
	s.remote[id] = noID
	for _, rid := range s.legOrder {
		if l := s.legs[rid]; l != nil {
			s.drainFwd(l.fwd[id])
			l.fwd[id] = nil
			l.flows[id] = nil
		}
	}
	s.fanDirty = true
}

// setTotal updates the call-wide participant count after churn (layout
// factors like Teams' ForwardFactor depend on it).
func (s *Server) setTotal(n int) { s.n = n }

// setDisplayedIDs installs a receiver's displayed origin set (layout) by
// registry ID — the call-internal fast path.
func (s *Server) setDisplayedIDs(receiver int32, origins []int32) {
	s.displayed[receiver] = origins
	s.fanDirty = true
}

// SetDisplayed configures which origins each receiver displays (layout).
// The receiver may be a peer SFU, in which case the set is the union of
// what that region's receivers display — the relay subscription.
func (s *Server) SetDisplayed(receiver string, origins []string) {
	rid := s.reg.id(receiver)
	if rid == noID {
		return
	}
	ids := make([]int32, 0, len(origins))
	for _, o := range origins {
		if oid := s.reg.id(o); oid != noID {
			ids = append(ids, oid)
		}
	}
	s.setDisplayedIDs(rid, ids)
}

// Displayed returns the current displayed set for one receiver as names
// (the reporting boundary).
func (s *Server) Displayed(receiver string) []string {
	rid := s.reg.id(receiver)
	if rid == noID {
		return nil
	}
	var out []string
	for _, oid := range s.displayed[rid] {
		out = append(out, s.reg.name(oid))
	}
	return out
}

// Leg exposes a receiver (or relay) leg's controller (for tests).
func (s *Server) Leg(receiver string) cc.Controller {
	rid := s.reg.id(receiver)
	if rid == noID {
		return nil
	}
	if l := s.legs[rid]; l != nil {
		return l.ctrl
	}
	return nil
}

func (s *Server) start() {
	s.running = true
	s.tickers = append(s.tickers, s.eng.EveryHandler(100*time.Millisecond, sim.HandlerFunc(s.controlTick)))
	s.tickers = append(s.tickers, s.eng.EveryHandler(20*time.Millisecond, sim.HandlerFunc(s.padTick)))
	if s.prof.Kind == KindMeet {
		s.tickers = append(s.tickers, s.eng.EveryHandler(500*time.Millisecond, sim.HandlerFunc(s.allocTick)))
	}
}

func (s *Server) stop() {
	s.running = false
	for _, t := range s.tickers {
		t.Stop()
	}
	s.tickers = nil
}

// sourcePeer identifies the upstream peer a packet was relayed by, or noID
// for local uplink traffic. Relay probe padding carries the peer's own ID
// as origin; relayed media and FEC carry the original client's.
func (s *Server) sourcePeer(origin int32) int32 {
	if p := s.remote[origin]; p != noID {
		return p
	}
	if s.peerSet[origin] {
		return origin
	}
	return noID
}

// onMedia receives an uplink or relayed packet and forwards it along the
// origin's precomputed fan-out — no string is hashed anywhere on this
// path. The inbound payload is consumed here: every forwarded copy is a
// fresh pooled packet, so the original returns to the pool on exit.
//
//vca:hotpath per-packet SFU ingress
func (s *Server) onMedia(pkt *netem.Packet) {
	mp, ok := pkt.Payload.(*MediaPacket)
	if !ok {
		return
	}
	defer releaseMedia(mp)
	if !s.running {
		return
	}
	origin := mp.OriginID
	if origin < 0 || int(origin) >= len(s.upRecv) {
		return // stranger to this call
	}
	// Arrival accounting. The server does not decode, so every packet is
	// treated as opaque payload: local uplinks feed the origin's feedback
	// loop, relay arrivals feed the per-hop loop back to the upstream SFU.
	if r := s.upRecv[origin]; r != nil {
		info := mp.Info(pkt.Size, pkt.SentAt)
		info.Padding = true
		r.OnPacket(s.eng.Now(), info)
	} else if peer := s.sourcePeer(origin); peer != noID {
		if r := s.relayRecv[peer]; r != nil {
			info := mp.Info(pkt.Size, pkt.SentAt)
			info.Padding = true
			r.OnPacket(s.eng.Now(), info)
		}
	}
	// Track per-stream arrival rates for selection decisions.
	s.trackRate(mp, pkt.Size)

	if mp.Padding {
		return // probe padding and relay FEC terminate at each hop
	}
	if s.fanDirty {
		s.rebuildFans()
	}
	fan := s.fanVideo[origin]
	if mp.Audio {
		fan = s.fanAudio[origin]
	}
	for _, l := range fan {
		s.forward(l, mp, pkt.Size)
	}
}

func (s *Server) displays(receiver, origin int32) bool {
	for _, o := range s.displayed[receiver] {
		if o == origin {
			return true
		}
	}
	return false
}

//vca:hotpath per-packet rate accounting
func (s *Server) trackRate(mp *MediaPacket, size int) {
	row := s.rates[mp.OriginID]
	if row == nil {
		return // e.g. relay probe padding carrying the peer SFU's ID
	}
	k := mp.rateKey()
	for len(row) <= k {
		row = append(row, rateEst{})
	}
	row[k].bytes += size
	s.rates[mp.OriginID] = row
}

// forward applies per-VCA selection and relays the packet.
//
//vca:hotpath per-packet per-leg forwarding decision
func (s *Server) forward(l *leg, mp *MediaPacket, size int) {
	fs := l.fwd[mp.OriginID]
	if fs == nil {
		return
	}
	if s.passthrough || (l.relay && l.ctrl == nil) {
		// Pure relay hop (Teams): original sequence numbers and origin
		// timestamps survive, keeping congestion control end-to-end even
		// across a cascade of SFUs.
		out := s.pool.copyOf(mp)
		out.E2E = true
		s.rtxStore(l, fs, out, size)
		s.send(l, out, size)
		return
	}
	if mp.Audio {
		s.emit(l, fs, mp, size, false)
		return
	}
	// Meet: the two simulcast copies have independent frame numbering, so
	// the unselected copy is filtered before any frame-gating state.
	if s.prof.Kind == KindMeet && mp.RK != fs.selRK {
		return
	}

	// Frame-boundary decision: all packets of a frame share its fate.
	if mp.FrameSeq != fs.curInFrame {
		fs.curInFrame = mp.FrameSeq
		fs.curKeep = s.keepFrame(fs, mp)
		if fs.curKeep {
			fs.frameOut++
		}
	}
	if !fs.curKeep {
		return
	}
	if s.prof.Kind == KindZoom && mp.Layer > fs.maxLayer {
		return
	}
	s.emit(l, fs, mp, size, true)
}

// keepFrame decides whether a new frame survives temporal thinning.
//
//vca:hotpath per-packet layer filter
func (s *Server) keepFrame(fs *fwdState, mp *MediaPacket) bool {
	if mp.Keyframe {
		fs.thinAcc = 0
		return true
	}
	fs.thinAcc += fs.thinFactor
	if fs.thinAcc >= 1 {
		fs.thinAcc -= 1
		return true
	}
	return false
}

// emit rewrites sequence/frame numbers and sends the packet to the leg's
// receiver, generating FEC overhead where the profile says so. Relay legs
// share one sequence space across origins so the downstream SFU can run
// loss accounting for the whole hop.
//
//vca:hotpath per-packet egress copy
func (s *Server) emit(l *leg, fs *fwdState, mp *MediaPacket, size int, isVideo bool) {
	out := s.pool.copyOf(mp)
	out.Seq = l.nextSeq(fs)
	if isVideo {
		out.FrameSeq = fs.frameOut
		if fs.needKey {
			out.Keyframe = true
			fs.needKey = false
		}
		// Rewrite the frame-end marker for layer-stripped streams.
		if s.prof.Kind == KindZoom {
			out.FrameEnd = mp.LayerEnd && (mp.Layer == fs.maxLayer || mp.FrameEnd)
		}
	}
	s.rtxStore(l, fs, out, size)
	s.send(l, out, size)

	if isVideo && s.prof.ServerFECOverhead > 0 {
		fs.fecOwed += float64(size) * s.prof.ServerFECOverhead
		for fs.fecOwed >= 600 {
			n := int(fs.fecOwed)
			if n > maxPayload {
				n = maxPayload
			}
			fs.fecOwed -= float64(n)
			fec := s.pool.get()
			fec.Origin, fec.OriginID = mp.Origin, mp.OriginID
			fec.StreamID, fec.RK = "fec", rkFEC
			fec.Seq, fec.Padding = l.nextSeq(fs), true
			s.rtxStore(l, fs, fec, n+wireOverhead)
			s.send(l, fec, n+wireOverhead)
		}
	}
}

// nextSeq allocates the next sequence number on this leg: per-origin for
// receiver legs, per-leg for relay legs.
func (l *leg) nextSeq(fs *fwdState) uint16 {
	if l.relay {
		seq := l.seq
		l.seq++
		return seq
	}
	seq := fs.seq
	fs.seq++
	return seq
}

// flowFor returns the leg's cached accounting label for the packet's
// (origin, stream), index-addressed by (origin ID, rate key).
func (s *Server) flowFor(l *leg, mp *MediaPacket) string {
	row := l.flows[mp.OriginID]
	k := mp.rateKey()
	for len(row) <= k {
		row = append(row, "")
	}
	if row[k] == "" {
		kind := "sfu"
		if l.relay {
			kind = "relay"
		}
		row[k] = s.prof.Name + "/" + kind + "/" + mp.Origin + "/" + mp.StreamID
	}
	l.flows[mp.OriginID] = row
	return row[k]
}

//vca:hotpath per-packet egress to netem
func (s *Server) send(l *leg, mp *MediaPacket, size int) {
	if s.rec != nil && !l.relay && l.ctrl != nil {
		// Transport-wide sequencing for TWCC: every packet on a
		// TWCC-capable downlink (media, FEC, probe padding, RTX) gets the
		// next number; the counter skips 0 ("unstamped"). The history
		// resolves the seq back to send time/size when the report returns.
		l.twSeq++
		if l.twSeq == 0 {
			l.twSeq++
		}
		mp.TWSeq = l.twSeq
		if l.twHist == nil {
			l.twHist = rtp.NewSentHistory(2048)
		}
		l.twHist.Record(l.twSeq, int64(s.eng.Now()/time.Microsecond), size)
	}
	l.fwdBytes += uint64(size)
	pkt := s.host.NewPacket()
	pkt.Size = size
	pkt.From = netem.Addr{Host: s.Name, Port: PortMedia}
	pkt.To = netem.Addr{Host: l.recvName, Port: PortMedia}
	pkt.Flow = s.flowFor(l, mp)
	pkt.Payload = mp
	s.host.Send(pkt)
}

// onFeedback handles a receiver's (or downstream peer SFU's) aggregate
// report.
func (s *Server) onFeedback(pkt *netem.Packet) {
	if !s.running {
		return
	}
	switch m := pkt.Payload.(type) {
	case *NackMsg:
		s.onNack(m)
		return
	case *TWCCMsg:
		s.onTWCC(m)
		return
	}
	fb, ok := pkt.Payload.(*FeedbackMsg)
	if !ok {
		return
	}
	if fb.FromID < 0 || int(fb.FromID) >= len(s.legs) {
		return
	}
	l := s.legs[fb.FromID]
	if l == nil {
		return
	}
	if l.ctrl != nil {
		if s.rec != nil && !l.relay {
			// TWCC drives this leg's controller when recovery is on: the
			// per-packet arrival report sees the original losses (an RTX
			// rides a fresh transport seq, so a recovered packet does not
			// erase the hole it healed), making the aggregate report
			// redundant — and double-feeding would double the controller's
			// update cadence.
			return
		}
		st := fb.Stats
		var oldBps float64
		if s.tracer != nil {
			oldBps = l.ctrl.TargetBps()
		}
		l.ctrl.OnFeedback(cc.Feedback{
			Now:            s.eng.Now(),
			Interval:       st.Interval,
			RTT:            2*st.QueueDelay + 40*time.Millisecond,
			LossFraction:   st.LossFraction,
			ReceiveRateBps: st.RateBps,
			QueueDelay:     st.QueueDelay,
		})
		if s.tracer != nil {
			if newBps := l.ctrl.TargetBps(); newBps != oldBps {
				s.tracer.CC(s.eng.Now(), l.recvName, s.Name,
					ccReason(st.LossFraction, st.QueueDelay, oldBps, newBps), oldBps, newBps)
			}
		}
		return
	}
	// Teams: relay the report end-to-end to every origin the receiver
	// displays — the far sender does the congestion control (§4.2). In a
	// cascade this reaches remote origins across the inter-region link,
	// keeping the loop end-to-end. The FeedbackMsg itself is shared
	// across the relayed packets, so it is deliberately not pooled.
	for _, origin := range s.displayed[fb.FromID] {
		pkt := s.host.NewPacket()
		pkt.Size = feedbackWire
		pkt.From = netem.Addr{Host: s.Name, Port: PortFeedback}
		pkt.To = netem.Addr{Host: s.reg.name(origin), Port: PortFeedback}
		pkt.Flow = s.flowRtcpRelay
		pkt.Payload = fb
		s.host.Send(pkt)
	}
}

// onNack answers a receiver's retransmission request from the
// (receiver, origin) RTX buffer. Every answered seq is re-sent through
// the normal leg path — shaped, droppable, TWCC-stamped — as a fresh
// pooled copy marked RTX; the buffered clone stays put so a re-NACK can
// be answered again. Seqs already evicted are silently unanswerable:
// the receiver's retry budget bounds how long it keeps asking.
func (s *Server) onNack(m *NackMsg) {
	if s.rec == nil || m.FromID < 0 || int(m.FromID) >= len(s.legs) {
		return
	}
	l := s.legs[m.FromID]
	if l == nil || l.relay || m.Origin < 0 || int(m.Origin) >= len(l.fwd) {
		return
	}
	fs := l.fwd[m.Origin]
	if fs == nil || fs.rtx == nil {
		return
	}
	s.rec.grow(m.Origin)
	requested, answered := 0, 0
	for _, p := range m.Pairs {
		seq := p.PacketID
		for i := 0; i <= 16; i++ {
			if i > 0 {
				if p.Bitmask&(1<<(i-1)) == 0 {
					continue
				}
				seq = p.PacketID + uint16(i)
			}
			requested++
			if payload, size, _, ok := fs.rtx.Get(seq); ok {
				out := s.pool.copyOf(payload.(*MediaPacket))
				out.RTX = true
				s.send(l, out, size)
				answered++
			}
		}
	}
	s.rec.nackRecv[m.Origin] += uint64(requested)
	s.rec.nackTotal += uint64(requested)
	s.rec.rtxSent[m.Origin] += uint64(answered)
	s.rec.rtxTotal += uint64(answered)
	if s.tracer != nil && answered > 0 {
		s.tracer.Recovery(obs.EvNackAnswer, s.eng.Now(), l.recvName, s.reg.name(m.Origin), answered)
	}
}

// onTWCC folds a receiver's transport-wide arrival report into the
// leg's controller. The filter reconstructs per-packet one-way delay
// against the leg's send history; RTT follows the repo's synthetic
// convention (2×queue delay + 40 ms base).
func (s *Server) onTWCC(m *TWCCMsg) {
	if s.rec == nil || m.FromID < 0 || int(m.FromID) >= len(s.legs) {
		return
	}
	l := s.legs[m.FromID]
	if l == nil || l.ctrl == nil || l.twHist == nil {
		return
	}
	fb, ok := l.twccFilter.Process(s.eng.Now(), 0, &m.Report, l.twHist.Lookup)
	if !ok {
		return
	}
	fb.RTT = 2*fb.QueueDelay + 40*time.Millisecond
	var oldBps float64
	if s.tracer != nil {
		oldBps = l.ctrl.TargetBps()
	}
	l.ctrl.OnFeedback(fb)
	if s.tracer != nil {
		if newBps := l.ctrl.TargetBps(); newBps != oldBps {
			s.tracer.CC(s.eng.Now(), l.recvName, s.Name,
				ccReason(fb.LossFraction, fb.QueueDelay, oldBps, newBps), oldBps, newBps)
		}
	}
}

// onSignal relays FIRs to the origin sender.
func (s *Server) onSignal(pkt *netem.Packet) {
	if !s.running {
		return
	}
	fir, ok := pkt.Payload.(*FIRMsg)
	if !ok {
		return
	}
	out := s.host.NewPacket()
	out.Size = firWire
	out.From = netem.Addr{Host: s.Name, Port: PortSignal}
	out.To = netem.Addr{Host: fir.Origin, Port: PortSignal}
	out.Flow = s.flowFir
	out.Payload = fir
	s.host.Send(out)
}

// controlTick runs every 100 ms: refresh rate estimates, send uplink and
// relay-hop feedback, and update every leg's selection state.
func (s *Server) controlTick(now time.Duration) {
	if !s.running {
		return
	}
	// Rate estimator EWMA update (order-free: entries are independent).
	for i := range s.rates {
		row := s.rates[i]
		for j := range row {
			inst := float64(row[j].bytes) * 8 / 0.1
			row[j].rate = 0.5*row[j].rate + 0.5*inst
			row[j].bytes = 0
		}
	}
	// Uplink feedback toward each sender — only when the server owns the
	// downlink congestion control (Meet/Zoom). Teams relies on e2e RTCP.
	if s.prof.NewServerCC != nil {
		for _, origin := range s.clients {
			r := s.upRecv[origin]
			st := r.Take(now)
			if st.Interval == 0 {
				st.Interval = 100 * time.Millisecond
			}
			pkt := s.host.NewPacket()
			pkt.Size = feedbackWire
			pkt.From = netem.Addr{Host: s.Name, Port: PortFeedback}
			pkt.To = netem.Addr{Host: s.reg.name(origin), Port: PortFeedback}
			pkt.Flow = s.flowRtcpUp
			pkt.Payload = &FeedbackMsg{From: s.Name, FromID: s.id, Stats: st}
			s.host.Send(pkt)
		}
		// Per-hop feedback to each upstream peer SFU: the downstream end
		// of a relay leg reports exactly like a receiver would, so the
		// peer's relay controller sees loss and queueing on the
		// inter-region link.
		for _, peer := range s.peers {
			r := s.relayRecv[peer]
			if r == nil {
				continue
			}
			st := r.Take(now)
			if st.Interval == 0 {
				st.Interval = 100 * time.Millisecond
			}
			pkt := s.host.NewPacket()
			pkt.Size = feedbackWire
			pkt.From = netem.Addr{Host: s.Name, Port: PortFeedback}
			pkt.To = netem.Addr{Host: s.reg.name(peer), Port: PortFeedback}
			pkt.Flow = s.flowRtcpHop
			pkt.Payload = &FeedbackMsg{From: s.Name, FromID: s.id, Stats: st}
			s.host.Send(pkt)
		}
	}
	// Selection per leg, local receivers first, then relay legs.
	for _, receiver := range s.legOrder {
		s.updateSelection(s.legs[receiver])
	}
}

// refreshSelection recomputes every leg's selection state immediately, in
// controlTick's leg order. The call invokes it after mid-call churn or a
// layout reshape: forwarding state created mid-call starts from the
// build-time "forward everything" sentinel (maxLayer 1<<10, high simulcast
// copy), and letting that sentinel live until the next 100 ms control tick
// forwarded every SVC layer to receivers whose estimate could not even
// sustain the base layer. No-op before the server starts, so call
// construction keeps its deliberate first-tick sentinel behaviour.
func (s *Server) refreshSelection() {
	if !s.running {
		return
	}
	for _, receiver := range s.legOrder {
		s.updateSelection(s.legs[receiver])
	}
}

// updateSelection recomputes stream/layer/thinning choices for one leg.
func (s *Server) updateSelection(l *leg) {
	if l.relay && l.ctrl == nil {
		return // Teams relay legs are pass-through; nothing to select
	}
	displayed := s.displayed[l.receiver]
	numVideo := len(displayed)
	if numVideo == 0 {
		return
	}
	var est float64
	if l.ctrl != nil {
		est = l.ctrl.TargetBps()
	}
	for _, origin := range displayed {
		fs := l.fwd[origin]
		if fs == nil {
			continue
		}
		share := 0.0
		if l.ctrl != nil {
			share = (est - s.prof.AudioBps*float64(numVideo)) / float64(numVideo)
		}
		switch s.prof.Kind {
		case KindMeet:
			highRate := s.rate(origin, int(rkSimHigh))
			lowRate := s.rate(origin, int(rkSimLow))
			prev := fs.selRK
			switch {
			case highRate < 30_000:
				// The high copy is not actually flowing (the sender
				// disabled it); selecting it would forward nothing.
				fs.selRK = rkSimLow
				fs.thinFactor = 1
			case share >= s.prof.ThinZoneHigh*highRate:
				fs.selRK = rkSimHigh
				fs.thinFactor = 1
			case share >= s.prof.ThinZoneLow*highRate:
				// Temporal-thinning zone (§3.2: FPS-first downlink
				// adaptation): keep the high copy, drop frames.
				fs.selRK = rkSimHigh
				fs.thinFactor = share / highRate
			default:
				fs.selRK = rkSimLow
				fs.thinFactor = 1
				if lowRate > 0 && share < 0.9*lowRate {
					// Even the low copy exceeds the estimate; thin it
					// rather than starve (keeps Fig 1b's 39-70%
					// utilization floor behaviour).
					fs.thinFactor = max(0.4, share/lowRate)
				}
				if s.remote[origin] != noID && lowRate < 30_000 && highRate >= 30_000 {
					// Cascade: the upstream relay narrowed the simulcast
					// to the high copy only, so thin that instead of
					// switching to a copy that never arrives.
					fs.selRK = rkSimHigh
					fs.thinFactor = max(0.35, share/highRate)
				}
			}
			if fs.selRK != prev {
				fs.needKey = true
				s.fwdSwitches++
				if s.tracer != nil {
					s.tracer.Switch(s.eng.Now(), l.recvName, s.reg.name(origin),
						"sim-copy", int(prev), int(fs.selRK))
				}
			}
		case KindZoom:
			base := s.rate(origin, int(rkSVC))
			if base <= 0 {
				// No measured arrivals for this origin yet — its rate row
				// is fresh (call construction, or a mid-call (re)join).
				// Keep the current selection rather than promoting
				// unmeasured layers on credit: at construction that is
				// the optimistic forward-everything sentinel; for a
				// subscription created in a running call it is the
				// conservative base-only default (see newFwd). The old
				// walk advanced past zero-rate layers for free here, so
				// a rejoined origin was forwarded at every layer even to
				// a receiver whose estimate sat below the base layer.
				fs.thinFactor = 1
				continue
			}
			// Select the highest layer whose cumulative (FEC-inclusive)
			// arrival rate fits the receiver's share, floored at the base
			// layer. A not-yet-measured upper layer (zero rate) adds
			// nothing to cum, so the walk stays optimistic about layers
			// it has no evidence against — bounded to one 100 ms tick,
			// and never past a share the measured layers already exceed.
			var cum float64
			sel := 0
			for layer := 0; layer < len(s.prof.SVCSplit); layer++ {
				cum += s.rate(origin, int(rkSVC)+layer) * (1 + s.prof.ServerFECOverhead)
				if layer > 0 && cum <= share {
					sel = layer
				}
			}
			if prev := fs.maxLayer; sel != prev {
				s.fwdSwitches++
				if s.tracer != nil {
					s.tracer.Switch(s.eng.Now(), l.recvName, s.reg.name(origin),
						"svc-layer", prev, sel)
				}
			}
			fs.maxLayer = sel
			fs.thinFactor = 1
			// Base layer still above the estimate: thin temporally.
			if fecBase := base * (1 + s.prof.ServerFECOverhead); sel == 0 && share < fecBase {
				fs.thinFactor = max(0.35, share/fecBase)
			}
		case KindTeams:
			fs.thinFactor = s.prof.ForwardFactor(s.n)
		}
	}
}

func (s *Server) rate(origin int32, key int) float64 {
	if row := s.rates[origin]; key < len(row) {
		return row[key].rate
	}
	return 0
}

// padTick emits server-side probe padding per leg (GCC recovery probes on
// the Meet/Zoom downlink, Fig 5b's fast recovery). Relay legs probe their
// inter-region hop the same way.
func (s *Server) padTick(now time.Duration) {
	if !s.running {
		return
	}
	for _, receiver := range s.legOrder {
		l := s.legs[receiver]
		if l.ctrl == nil {
			continue
		}
		dt := (now - l.lastPad).Seconds()
		if l.lastPad == 0 {
			dt = 0.02
		}
		l.lastPad = now
		l.padOwed += l.ctrl.PadRateBps(now) / 8 * dt
		for l.padOwed >= maxPayload {
			l.padOwed -= maxPayload
			mp := s.pool.get()
			mp.Origin, mp.OriginID = s.Name, s.id
			mp.StreamID, mp.RK, mp.Padding = "pad", rkPad, true
			s.send(l, mp, maxPayload+wireOverhead)
		}
	}
}

// allocTick (Meet only): ask senders to shrink their low simulcast copy
// when some receiver cannot even sustain it (§3.1 downlink floor). Only
// local receivers are consulted; remote starvation is absorbed by the
// relay leg's own selection.
func (s *Server) allocTick(time.Duration) {
	if !s.running {
		return
	}
	for _, origin := range s.clients {
		// Find the minimum share across receivers displaying this origin.
		minShare := -1.0
		for _, receiver := range s.clients {
			if receiver == origin || !s.displays(receiver, origin) {
				continue
			}
			l := s.legs[receiver]
			if l.ctrl == nil {
				continue
			}
			numVideo := len(s.displayed[receiver])
			if numVideo == 0 {
				continue
			}
			share := (l.ctrl.TargetBps() - s.prof.AudioBps*float64(numVideo)) / float64(numVideo)
			if minShare < 0 || share < minShare {
				minShare = share
			}
		}
		if minShare < 0 {
			continue
		}
		var alloc float64
		if minShare < 0.9*s.prof.SimLowCapBps {
			alloc = minShare * 0.9
			if alloc < 100_000 {
				alloc = 100_000
			}
		}
		pkt := s.host.NewPacket()
		pkt.Size = allocWire
		pkt.From = netem.Addr{Host: s.Name, Port: PortSignal}
		pkt.To = netem.Addr{Host: s.reg.name(origin), Port: PortSignal}
		pkt.Flow = s.flowAlloc
		pkt.Payload = &AllocMsg{LowBps: alloc}
		s.host.Send(pkt)
	}
}
