package vca

// Observability surface for the VCA layer: tracer plumbing, the reason
// codes attached to CC trace events, and the read-only accessors and
// getStats snapshots the metrics sampler polls. Everything here is
// passive — nothing mutates client, server, or call state, and nothing
// draws from a sim RNG — so attaching a tracer or sampling stats cannot
// change experiment output.

import (
	"time"

	"vcalab/internal/codec"
	"vcalab/internal/obs"
	"vcalab/internal/webrtcstats"
)

// SetTracer attaches (or, with nil, detaches) an event tracer to every
// client and server in the call. CC decisions, forwarding switches, and
// churn are recorded; packet-level events come from the links
// themselves (netem.Link.SetTracer).
func (c *Call) SetTracer(t *obs.Tracer) {
	c.tracer = t
	for _, cl := range c.Clients {
		cl.tracer = t
	}
	for _, s := range c.Servers {
		s.tracer = t
	}
}

// SetRegionTracer attaches a tracer to one region's clients and SFU only
// — the sharded-run form, where each shard records into its own tracer
// and the per-shard rings are merged deterministically afterwards
// (obs.Merge). Churn events stay on the call-level tracer (SetChurnTracer),
// since churn executes on the control engine.
func (c *Call) SetRegionTracer(region int, t *obs.Tracer) {
	for _, cl := range c.Clients {
		if cl.region == region {
			cl.tracer = t
		}
	}
	c.Servers[region].tracer = t
}

// SetChurnTracer attaches only the call-level churn tracer, leaving
// client and server tracers untouched.
func (c *Call) SetChurnTracer(t *obs.Tracer) { c.tracer = t }

// ccReason derives the reason code recorded with a CC trace event from
// the feedback that triggered the change. The thresholds match the
// loss/delay sensitivities of the paper's VCAs closely enough to label
// why a controller moved; they are descriptive, not part of control.
func ccReason(lossFraction float64, queueDelay time.Duration, oldBps, newBps float64) string {
	switch {
	case newBps < oldBps && lossFraction > 0.02:
		return "backoff-loss"
	case newBps < oldBps && queueDelay > 10*time.Millisecond:
		return "backoff-delay"
	case newBps < oldBps:
		return "backoff"
	case newBps > oldBps:
		return "increase"
	default:
		return "hold"
	}
}

// LastRTT returns the round-trip estimate the uplink controller last
// saw (zero before any feedback arrives).
func (c *Client) LastRTT() time.Duration { return c.lastRTT }

// StatsReport builds a getStats-style snapshot of this client at now.
// Strictly read-only: unlike the 1 Hz Recorder path it never calls
// Receiver.Take, so sampling at any cadence leaves interval state — and
// therefore experiment output — untouched.
func (c *Client) StatsReport(now time.Duration) webrtcstats.Report {
	tus := now.Microseconds()
	var r webrtcstats.Report

	var out = webrtcstats.OutboundRTP{
		TUs: tus, Type: "outbound-rtp", Client: c.Name,
		TargetBitrate: c.videoTarget(),
		FIRCount:      c.FIRsForMyVideo,
		BytesSent:     uint64(c.UpMeter.TotalBytes()),
	}
	p := c.currentEncodeParams()
	out.FPS, out.FrameWidth, out.FrameHeight, out.QP = p.FPS, p.Width, p.Height, p.QP
	if c.rec != nil && c.homeSrv != nil {
		out.NackCount, out.RetransmittedPacketsSent = c.homeSrv.recoverySenderStats(c.id)
	}
	r.Outbound = out

	for _, id := range c.recvOrder {
		recv := c.recv[id]
		lp := recv.LastParams
		in := webrtcstats.InboundRTP{
			TUs: tus, Type: "inbound-rtp", Client: c.Name,
			Origin:         c.reg.name(id),
			FramesDecoded:  recv.DisplayedFrames(),
			FPS:            lp.FPS,
			FrameWidth:     lp.Width,
			FrameHeight:    lp.Height,
			FreezeCount:    recv.FreezeCount(),
			TotalFreezesMs: float64(recv.FreezeTime()) / float64(time.Millisecond),
			BytesReceived:  uint64(recv.TotalBytes),
		}
		if c.rec != nil {
			rs := c.rec.recoveryReceiverStats(id)
			in.NackCount = rs.NackCount
			in.RetransmittedPacketsReceived = rs.RTXReceived
			in.JitterBufferDelay = rs.JitterBufferTime.Seconds()
		}
		r.Inbound = append(r.Inbound, in)
	}

	var target float64
	if c.ccUp != nil {
		target = c.ccUp.TargetBps()
	}
	r.Pair = webrtcstats.CandidatePair{
		TUs: tus, Type: "candidate-pair", Client: c.Name,
		RTTSeconds:   c.lastRTT.Seconds(),
		AvailableOut: target,
		BytesSent:    uint64(c.UpMeter.TotalBytes()),
		BytesRecv:    uint64(c.DownMeter.TotalBytes()),
	}
	return r
}

// currentEncodeParams returns the active outbound encoder's parameters,
// picking the live simulcast copy the same way statsTick does.
func (c *Client) currentEncodeParams() codec.EncodeParams {
	switch c.prof.MediaMode {
	case ModeSimulcast:
		if c.simul.High.Target() > 0 {
			return c.simul.High.Params()
		}
		return c.simul.Low.Params()
	case ModeSVC:
		return c.svc.Params()
	default:
		return c.single.Params()
	}
}

// LegNames returns the names of the server's current forwarding legs
// (local receivers, then relay peers) in deterministic leg order.
func (s *Server) LegNames() []string {
	out := make([]string, 0, len(s.legOrder))
	for _, id := range s.legOrder {
		if l := s.legs[id]; l != nil {
			out = append(out, l.recvName)
		}
	}
	return out
}

// LegFwdBytes returns the cumulative media bytes the server has sent
// toward the named receiver's leg (0 for an unknown leg). The counter
// lives on the leg, so it resets if churn tears the leg down and a
// Rejoin recreates it.
func (s *Server) LegFwdBytes(receiver string) uint64 {
	id := s.reg.id(receiver)
	if id == noID || int(id) >= len(s.legs) || s.legs[id] == nil {
		return 0
	}
	return s.legs[id].fwdBytes
}

// FwdSwitches reports how many forwarding-selection changes (simulcast
// copy flips, SVC layer moves) this server has made since creation.
func (s *Server) FwdSwitches() uint64 { return s.fwdSwitches }

// recoverySenderStats reads one origin's sender-side recovery counters
// at this SFU: NACKed seqs received for its media and retransmissions
// answered. Zero with recovery off or for an unknown origin.
func (s *Server) recoverySenderStats(id int32) (nacks, rtx uint64) {
	if s.rec == nil || id < 0 || int(id) >= len(s.rec.nackRecv) {
		return 0, 0
	}
	return s.rec.nackRecv[id], s.rec.rtxSent[id]
}

// NackRTXTotals reports the call-wide NACKed-seq and answered-RTX
// counters summed over every SFU (harness invariant surface).
func (c *Call) NackRTXTotals() (nacks, rtx uint64) {
	for _, s := range c.Servers {
		if s.rec != nil {
			nacks += s.rec.nackTotal
			rtx += s.rec.rtxTotal
		}
	}
	return nacks, rtx
}
