package vca

import (
	"testing"
	"time"

	"vcalab/internal/media"
	"vcalab/internal/netem"
	"vcalab/internal/sim"
)

// twoPartyRecovery builds the standard 2-party call with recovery
// toggled, so on/off runs share topology and seed.
func twoPartyRecovery(eng *sim.Engine, prof *Profile, upBps, downBps float64, recovery bool) (*Call, *lab) {
	l := newLab(eng, upBps, downBps)
	c1 := l.clientHost("c1")
	c2 := l.remoteHost("c2", 5*time.Millisecond)
	sfu := l.remoteHost("sfu", 15*time.Millisecond)
	call := NewCall(eng, prof, sfu, []*netem.Host{c1, c2}, CallOptions{Seed: 42, Recovery: recovery})
	return call, l
}

// runLossy runs a 2-party call with random downlink loss and returns
// C1's freeze time toward c2 plus the stopped call for inspection.
func runLossy(prof *Profile, lossPct float64, recovery bool) (time.Duration, *Call) {
	eng := sim.New(7)
	call, l := twoPartyRecovery(eng, prof, 0, 0, recovery)
	l.down.SetImpairment(lossPct/100, 0)
	call.Start()
	eng.RunUntil(60 * time.Second)
	call.Stop()
	return call.C1().Receiver("c2").FreezeTime(), call
}

func TestRecoveryReducesFreezeUnderLoss(t *testing.T) {
	for _, prof := range []*Profile{Meet(), Teams()} {
		off, _ := runLossy(prof, 3, false)
		on, call := runLossy(prof, 3, true)
		if on >= off {
			t.Errorf("%s: recovery-on freeze %v, want < recovery-off %v", prof.Name, on, off)
		}
		nacks, rtx := call.NackRTXTotals()
		if nacks == 0 || rtx == 0 {
			t.Errorf("%s: recovery loop idle under 3%% loss: nacks=%d rtx=%d", prof.Name, nacks, rtx)
		}
		if nacks < rtx {
			t.Errorf("%s: answered more RTX (%d) than seqs NACKed (%d)", prof.Name, rtx, nacks)
		}
		rs := call.C1().rec.recoveryReceiverStats(call.Clients[1].id)
		if rs.RTXReceived == 0 {
			t.Errorf("%s: c1 received no retransmissions", prof.Name)
		}
		// Conservation: stop flushed the queues; drain frees every clone.
		if n := call.PendingNacks(); n != 0 {
			t.Errorf("%s: %d NACKs pending after Stop", prof.Name, n)
		}
		call.DrainRecovery()
		if n := call.RTXClonesLive(); n != 0 {
			t.Errorf("%s: %d RTX clones leaked after DrainRecovery", prof.Name, n)
		}
	}
}

func TestRecoveryLossless(t *testing.T) {
	// No loss: the NACK machinery must stay quiet and the call healthy.
	eng := sim.New(11)
	call, _ := twoPartyRecovery(eng, Meet(), 0, 0, true)
	call.Start()
	eng.RunUntil(30 * time.Second)
	call.Stop()
	nacks, rtx := call.NackRTXTotals()
	if nacks != 0 || rtx != 0 {
		t.Errorf("lossless run sent NACKs: nacks=%d rtx=%d", nacks, rtx)
	}
	if down := call.C1().DownMeter.MeanRateMbps(15*time.Second, 30*time.Second); down < 0.3 {
		t.Errorf("recovery-on lossless downlink dead: %.2f Mbps (TWCC not driving CC?)", down)
	}
	call.DrainRecovery()
	if n := call.RTXClonesLive(); n != 0 {
		t.Errorf("%d RTX clones leaked", n)
	}
}

func TestRecoveryChurnConservation(t *testing.T) {
	// Leave/rejoin under loss must drain every per-leg RTX buffer it
	// tears down and never leak jitter-buffer state onto recycled IDs.
	eng := sim.New(13)
	l := newLab(eng, 0, 0)
	hosts := []*netem.Host{l.clientHost("c1"), l.remoteHost("c2", 5*time.Millisecond), l.remoteHost("c3", 8*time.Millisecond)}
	sfu := l.remoteHost("sfu", 15*time.Millisecond)
	call := NewCall(eng, Meet(), sfu, hosts, CallOptions{Seed: 9, Recovery: true})
	l.down.SetImpairment(0.04, 0)
	call.Start()
	eng.RunUntil(10 * time.Second)
	call.Leave("c2")
	eng.RunUntil(20 * time.Second)
	call.Rejoin("c2")
	eng.RunUntil(30 * time.Second)
	call.Stop()
	if n := call.PendingNacks(); n != 0 {
		t.Errorf("%d NACKs pending after Stop", n)
	}
	call.DrainRecovery()
	if n := call.RTXClonesLive(); n != 0 {
		t.Errorf("%d RTX clones leaked across churn", n)
	}
}

func TestRecoveryDeterministic(t *testing.T) {
	// Same seed, same topology: the recovery loop must reproduce its
	// counters and freeze accounting exactly.
	type digest struct {
		freeze     time.Duration
		nacks, rtx uint64
	}
	run := func() digest {
		freeze, call := runLossy(Meet(), 5, true)
		n, r := call.NackRTXTotals()
		return digest{freeze, n, r}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("recovery run not deterministic: %+v vs %+v", a, b)
	}
	if a.nacks == 0 {
		t.Errorf("no NACKs at 5%% loss")
	}
}

// TestJitterBufferSingleCharge is the freeze-accounting asymmetry
// regression test: a seq conceded past its playout deadline is charged
// as lost exactly once — a late straggler (or late RTX) arriving after
// concession must be swallowed by the buffer, never delivered to the
// media receiver as a second copy of the same seq.
func TestJitterBufferSingleCharge(t *testing.T) {
	cfg := RecoveryConfig{}.withDefaults()
	b := newJitterBuffer(&cfg)
	var delivered []uint16
	deliver := func(info media.PacketInfo) { delivered = append(delivered, info.Seq) }
	info := func(seq uint16, at time.Duration) media.PacketInfo {
		return media.PacketInfo{Seq: seq, SentAt: at}
	}
	now := time.Second
	step := 10 * time.Millisecond
	// In-order warmup, then a gap at seq 2.
	b.onPacket(now, 0, false, 100, info(0, now-step), 40*time.Millisecond, deliver)
	b.onPacket(now+step, 1, false, 100, info(1, now), 40*time.Millisecond, deliver)
	b.onPacket(now+2*step, 3, false, 100, info(3, now+step), 40*time.Millisecond, deliver)
	if b.q.Len() != 1 {
		t.Fatalf("gap not tracked: queue len %d, want 1", b.q.Len())
	}
	// Tick far past the playout deadline: seq 2 is conceded and the
	// buffered seq 3 flushes through.
	var gaveUp, conceded int
	b.tick(now+cfg.PlayoutMax+time.Second, 20*time.Millisecond, deliver,
		func(uint16) {}, func(uint16) { gaveUp++ }, func(n int) { conceded += n })
	if conceded != 1 {
		t.Fatalf("conceded %d seqs, want 1", conceded)
	}
	want := []uint16{0, 1, 3}
	if len(delivered) != len(want) {
		t.Fatalf("delivered %v, want %v", delivered, want)
	}
	for i := range want {
		if delivered[i] != want[i] {
			t.Fatalf("delivered %v, want %v", delivered, want)
		}
	}
	// The straggler: seq 2 finally arrives. It must be dropped, not
	// delivered — its loss was already charged at concession.
	late := now + cfg.PlayoutMax + 2*time.Second
	if ok := b.onPacket(late, 2, true, 100, info(2, now+step), 40*time.Millisecond, deliver); ok {
		t.Errorf("late straggler for conceded seq 2 was accepted")
	}
	if len(delivered) != len(want) {
		t.Errorf("straggler reached the receiver: delivered %v", delivered)
	}
	if b.lateDropped != 1 {
		t.Errorf("lateDropped = %d, want 1", b.lateDropped)
	}
	// Delivery resumes cleanly after the drop.
	if ok := b.onPacket(late+step, 4, false, 100, info(4, late), 40*time.Millisecond, deliver); !ok {
		t.Errorf("in-order seq 4 rejected after straggler drop")
	}
	if delivered[len(delivered)-1] != 4 {
		t.Errorf("seq 4 not delivered: %v", delivered)
	}
}

// TestJitterBufferCatastrophicGap pins the partition semantics: a gap
// wider than the buffer delivers what is buffered, concedes the holes,
// and re-bases — it must not NACK thousands of seqs.
func TestJitterBufferCatastrophicGap(t *testing.T) {
	cfg := RecoveryConfig{JitterBufferPkts: 16}.withDefaults()
	b := newJitterBuffer(&cfg)
	var delivered []uint16
	deliver := func(info media.PacketInfo) { delivered = append(delivered, info.Seq) }
	now := time.Second
	rtt := 40 * time.Millisecond
	b.onPacket(now, 10, false, 100, media.PacketInfo{Seq: 10, SentAt: now}, rtt, deliver)
	b.onPacket(now, 12, false, 100, media.PacketInfo{Seq: 12, SentAt: now}, rtt, deliver) // gap at 11
	b.onPacket(now, 1000, false, 100, media.PacketInfo{Seq: 1000, SentAt: now}, rtt, deliver)
	if b.q.Len() != 0 {
		t.Errorf("queue not reset after catastrophic gap: len %d", b.q.Len())
	}
	want := []uint16{10, 12, 1000}
	if len(delivered) != len(want) {
		t.Fatalf("delivered %v, want %v", delivered, want)
	}
	for i := range want {
		if delivered[i] != want[i] {
			t.Fatalf("delivered %v, want %v", delivered, want)
		}
	}
	// In-order flow continues from the new base.
	b.onPacket(now, 1001, false, 100, media.PacketInfo{Seq: 1001, SentAt: now}, rtt, deliver)
	if delivered[len(delivered)-1] != 1001 {
		t.Errorf("post-reset in-order packet not delivered: %v", delivered)
	}
}
