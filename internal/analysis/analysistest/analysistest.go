// Package analysistest is a miniature of
// golang.org/x/tools/go/analysis/analysistest: it loads a GOPATH-style
// testdata/src tree, runs one analyzer over named packages, and
// matches the diagnostics against `// want "regexp"` comments placed
// on the offending lines. Unmatched diagnostics and unsatisfied wants
// both fail the test.
//
// Directives (`//vcalint:ignore`) are honored exactly as in
// production — RunPackage applies them before the comparison — so
// testdata can assert both that violations are caught and that
// suppressed ones stay silent.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"vcalab/internal/analysis"
)

// want is one expectation: a regexp that some diagnostic on the same
// file/line must match.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads each pkgpath from testdata/src/<pkgpath>, applies the
// analyzer, and compares diagnostics to want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	for _, pkgpath := range pkgpaths {
		loader := analysis.NewLoader("", src)
		pkg, err := loader.LoadPackage(pkgpath, filepath.Join(src, filepath.FromSlash(pkgpath)))
		if err != nil {
			t.Fatalf("loading %s: %v", pkgpath, err)
		}
		diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
		}
		wants := collectWants(t, pkg)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !consume(wants, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Analyzer)
			}
		}
		for _, w := range wants {
			if !w.hit {
				t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
			}
		}
	}
}

func consume(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants scans every comment for `want "re"` clauses. Multiple
// quoted regexps may follow one want.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					// Allow wants embedded after other comment text, so a
					// directive under test can carry its own expectation:
					// //vcalint:ignore bogus reason // want `unknown analyzer`
					j := strings.Index(text, "// want ")
					if j < 0 {
						continue
					}
					text = strings.TrimSpace(text[j+len("// "):])
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parseWants(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				for _, re := range res {
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parseWants splits `"re1" "re2"` (double- or back-quoted) clauses.
func parseWants(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted regexp, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated regexp in %q", s)
		}
		lit := s[:end+2]
		var raw string
		if quote == '"' {
			var err error
			raw, err = strconv.Unquote(lit)
			if err != nil {
				return nil, err
			}
		} else {
			raw = lit[1 : len(lit)-1]
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}
