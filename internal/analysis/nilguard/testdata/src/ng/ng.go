// Package ng exercises the nilguard analyzer: every Tracer producer
// call must sit under an inline nil-check of its own receiver;
// Registry producers need the guard only on struct fields.
package ng

import "obs"

type node struct {
	on     bool
	tracer *obs.Tracer
	reg    *obs.Registry
}

// ---- violations ----

func (n *node) unguarded(seq int) {
	n.tracer.Packet("rx", seq) // want `obs.Tracer.Packet call without an inline nil-guard`
}

// Guarding a *different* field does not prove this receiver non-nil.
func (n *node) wrongGuard(bps float64) {
	if n.reg != nil {
		n.tracer.CC("up", bps) // want `obs.Tracer.CC call without an inline nil-guard`
	}
}

// The check must prove the call's arm: == nil proves the *else* arm.
func (n *node) invertedGuard(from, to string) {
	if n.tracer == nil {
		n.tracer.Switch(from, to) // want `obs.Tracer.Switch call without an inline nil-guard`
	}
}

func (n *node) regField() float64 {
	return n.reg.Gauge("depth") // want `obs.Registry.Gauge call on a struct field without a nil-guard`
}

// ---- legal patterns ----

// The canonical inline guard.
func (n *node) guarded(seq int) {
	if n.tracer != nil {
		n.tracer.Packet("rx", seq)
	}
}

// The binding form: if tr := s.tracer; tr != nil { tr.X(...) }.
func (n *node) guardedBinding(bps float64) {
	if tr := n.tracer; tr != nil {
		tr.CC("up", bps)
	}
}

// Guard as one conjunct of a compound condition.
func (n *node) guardedCompound(seq int) {
	if n.on && n.tracer != nil {
		n.tracer.Packet("rx", seq)
	}
}

// == nil with the call on the else arm.
func (n *node) guardedElseArm(from, to string) {
	if n.tracer == nil {
		return
	} else {
		n.tracer.Switch(from, to)
	}
}

// A local constructed in-function is provably non-nil.
func localTracer(seq int) {
	tr := obs.NewTracer()
	tr.Packet("rx", seq)
}

// Registry locals and parameters are constructed-by-definition.
func regParam(r *obs.Registry) float64 {
	return r.Gauge("depth")
}

func (n *node) regFieldGuarded() float64 {
	if n.reg != nil {
		return n.reg.Histogram("owd")
	}
	return 0
}
