// Package obs is a shim of vcalab/internal/obs for the nilguard
// testdata: the analyzer matches producer types by package *name*, so
// this stand-in exercises exactly the production rules.
package obs

type Tracer struct{ on bool }

func NewTracer() *Tracer { return &Tracer{on: true} }

func (t *Tracer) Packet(ev string, seq int)   {}
func (t *Tracer) CC(flow string, bps float64) {}
func (t *Tracer) Switch(from, to string)      {}

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Gauge(name string) float64     { return 0 }
func (r *Registry) Histogram(name string) float64 { return 0 }
