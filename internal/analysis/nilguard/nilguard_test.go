package nilguard_test

import (
	"testing"

	"vcalab/internal/analysis/analysistest"
	"vcalab/internal/analysis/nilguard"
)

func TestNilGuard(t *testing.T) {
	analysistest.Run(t, "testdata", nilguard.Analyzer, "ng")
}
