// Package nilguard implements the vcalint analyzer that keeps
// observability zero-cost when disabled: a nil *obs.Tracer is a valid
// no-op tracer, but reaching the method call still evaluates every
// argument — string conversions, float math — on the hottest paths.
// The established idiom therefore guards each producer call site
// inline:
//
//	if s.tracer != nil {
//	    s.tracer.Packet(...)
//	}
//
// The analyzer flags any Tracer producer call (Packet, CC, Switch,
// Scenario, Recovery, Churn) whose receiver is not (a) under such a
// nil-check — `x != nil` in an enclosing if condition (or `x == nil`
// with the call on the else arm), including the `if tr := s.tracer;
// tr != nil` binding form — or (b) provably non-nil because the
// receiver is a local assigned from obs.NewTracer in the same
// function.
//
// Registry producers (Gauge, Histogram, Sample) follow a weaker rule
// by design: a Registry is only ever constructed when metrics are on
// (there is no nil-registry-flows-through idiom), so only calls on
// struct *fields* of type *obs.Registry need a guard; locals and
// parameters are assumed live. See DESIGN.md §14.
package nilguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"vcalab/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nilguard",
	Doc: "flags obs.Tracer/Registry producer calls whose receiver is not " +
		"nil-guarded, so disabled tracing never evaluates arguments",
	Run: run,
}

var tracerProducers = map[string]bool{
	"Packet": true, "CC": true, "Switch": true,
	"Scenario": true, "Recovery": true, "Churn": true,
}

var registryProducers = map[string]bool{
	"Gauge": true, "Histogram": true, "Sample": true,
}

// obsType reports whether t is (a pointer to) a named type from a
// package named "obs" with the given type name. Matching by package
// name rather than full path keeps the analyzer testable against a
// testdata shim while still matching vcalab/internal/obs.
func obsType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "obs" {
		return nil // the tracer's own internals may touch t freely
	}
	for _, file := range pass.Files {
		analysis.WalkParents(file, func(n ast.Node, parents []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvT := typeOf(pass.TypesInfo, sel.X)
			if recvT == nil {
				return true
			}
			switch {
			case obsType(recvT, "Tracer") && tracerProducers[sel.Sel.Name]:
				if !guarded(pass, sel.X, parents) && !localNonNilTracer(pass, sel.X, parents) {
					pass.Reportf(call.Pos(),
						"obs.Tracer.%s call without an inline nil-guard: arguments are evaluated even when tracing is off", sel.Sel.Name)
				}
			case obsType(recvT, "Registry") && registryProducers[sel.Sel.Name]:
				if isFieldAccess(pass, sel.X) && !guarded(pass, sel.X, parents) {
					pass.Reportf(call.Pos(),
						"obs.Registry.%s call on a struct field without a nil-guard", sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isFieldAccess reports whether e reads a struct field (x.f).
func isFieldAccess(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

// guarded walks the ancestor chain looking for an if whose condition
// nil-checks the same receiver expression, with the call on the arm
// the check proves non-nil.
func guarded(pass *analysis.Pass, recv ast.Expr, parents []ast.Node) bool {
	key := exprKey(pass.TypesInfo, recv)
	if key == "" {
		return false
	}
	for i := len(parents) - 1; i >= 0; i-- {
		ifStmt, ok := parents[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		// Which arm holds the call? The next node down the stack (or
		// the call itself) is either the body or the else.
		var below ast.Node
		if i+1 < len(parents) {
			below = parents[i+1]
		}
		onThen := below == ifStmt.Body
		onElse := below == ifStmt.Else
		if !onThen && !onElse {
			continue // init/cond position
		}
		if condProves(pass.TypesInfo, ifStmt.Cond, key, onThen) {
			return true
		}
	}
	return false
}

// condProves reports whether cond proves key non-nil on the chosen
// arm: `key != nil` (possibly under &&) for the then-arm, `key == nil`
// (possibly under ||) for the else-arm.
func condProves(info *types.Info, cond ast.Expr, key string, thenArm bool) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condProves(info, c.X, key, thenArm)
	case *ast.BinaryExpr:
		switch {
		case thenArm && c.Op == token.LAND:
			return condProves(info, c.X, key, true) || condProves(info, c.Y, key, true)
		case !thenArm && c.Op == token.LOR:
			return condProves(info, c.X, key, false) || condProves(info, c.Y, key, false)
		case thenArm && c.Op == token.NEQ, !thenArm && c.Op == token.EQL:
			x, y := c.X, c.Y
			if isNil(info, y) {
				return exprKey(info, x) == key
			}
			if isNil(info, x) {
				return exprKey(info, y) == key
			}
		}
	}
	return false
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// exprKey canonicalizes a receiver expression to an identity string:
// the object ID for a plain ident, a dotted object/field path for a
// selector chain. Anything else (calls, index expressions) yields ""
// and is treated as unguardable.
func exprKey(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj.Id()
		}
		if obj := info.Defs[e]; obj != nil {
			return obj.Id()
		}
	case *ast.SelectorExpr:
		base := exprKey(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(info, e.X)
	}
	return ""
}

// localNonNilTracer reports whether recv is a local variable that was
// assigned obs.NewTracer(...) somewhere in the enclosing function —
// provably non-nil without a guard.
func localNonNilTracer(pass *analysis.Pass, recv ast.Expr, parents []ast.Node) bool {
	id, ok := recv.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	// Find the enclosing function body.
	var body *ast.BlockStmt
	for i := len(parents) - 1; i >= 0; i-- {
		switch f := parents[i].(type) {
		case *ast.FuncDecl:
			body = f.Body
		case *ast.FuncLit:
			body = f.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for i, l := range as.Lhs {
			lid, ok := l.(*ast.Ident)
			if !ok || i >= len(as.Rhs) || len(as.Lhs) != len(as.Rhs) {
				continue
			}
			lobj := pass.TypesInfo.Defs[lid]
			if lobj == nil {
				lobj = pass.TypesInfo.Uses[lid]
			}
			if lobj != obj {
				continue
			}
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
				if s, ok := call.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "NewTracer" {
					found = true
				}
				if f, ok := call.Fun.(*ast.Ident); ok && f.Name == "NewTracer" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
