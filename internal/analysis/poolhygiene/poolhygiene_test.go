package poolhygiene_test

import (
	"testing"

	"vcalab/internal/analysis/analysistest"
	"vcalab/internal/analysis/poolhygiene"
)

func TestPoolHygiene(t *testing.T) {
	analysistest.Run(t, "testdata", poolhygiene.Analyzer, "pool")
}
