// Package pool exercises the poolhygiene analyzer against a miniature
// of the repo's pooled-object shapes: a Get method on a *Pool-suffixed
// receiver hands out ownership; Release (and the put helper) give it
// back; a Mailbox stands in for the ownership-transferring sinks
// (Host.Send, shard mailboxes, rtxStore).
package pool

type Buf struct {
	pool *bufPool
	n    int
}

type bufPool struct{ free []*Buf }

func (p *bufPool) Get() *Buf {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return &Buf{pool: p}
}

func (p *bufPool) put(b *Buf) { p.free = append(p.free, b) }

func (b *Buf) Release() { b.pool.put(b) }

// Mailbox models a sink that takes over the release duty.
type Mailbox struct{ q []*Buf }

func (m *Mailbox) Post(b *Buf) { m.q = append(m.q, b) }

// ---- violations ----

// Straight-line leak: acquired, read, never released.
func leak(p *bufPool) int {
	b := p.Get() // want `pooled value "b" acquired here is neither released nor ownership-transferred`
	return b.n
}

// Leak on one early-return path only.
func leakOnEarlyReturn(p *bufPool, drop bool) {
	b := p.Get() // want `neither released nor ownership-transferred on a path reaching this return`
	if drop {
		return
	}
	b.Release()
}

func useAfterRelease(p *bufPool) int {
	b := p.Get()
	b.Release()
	return b.n // want `use of pooled value "b" after it was released`
}

func doubleRelease(p *bufPool) {
	b := p.Get()
	b.Release()
	b.Release() // want `released twice on this path`
}

func deferThenExplicit(p *bufPool) {
	b := p.Get()
	defer b.Release()
	b.Release() // want `also released by a defer`
}

// A value acquired inside a loop body must die inside it: the next
// iteration rebinds b and the previous packet is gone.
func leakEachIteration(p *bufPool, n int) {
	total := 0
	for i := 0; i < n; i++ {
		b := p.Get() // want `the end of the loop body`
		total += b.n
	}
	_ = total
}

func overwriteWhileLive(p *bufPool) {
	b := p.Get() // want `overwritten while still owned`
	b = p.Get()
	b.Release()
}

// ---- legal patterns ----

// Released on every path.
func releaseBothArms(p *bufPool, keep bool) {
	b := p.Get()
	if keep {
		b.Release()
		return
	}
	b.Release()
}

// Ownership transfer: posting to a mailbox hands the release duty on
// (the shard-boundary packet idiom).
func transferViaMailbox(p *bufPool, m *Mailbox) {
	b := p.Get()
	m.Post(b)
}

// Deferred release with reads in between (the SFU onMedia idiom).
func deferRelease(p *bufPool) int {
	b := p.Get()
	defer b.Release()
	return b.n
}

// Returning the value transfers ownership to the caller.
func handOut(p *bufPool) *Buf {
	return p.Get()
}

// Acquire-release inside a loop body is fine.
func perIteration(p *bufPool, n int) {
	for i := 0; i < n; i++ {
		b := p.Get()
		b.Release()
	}
}
