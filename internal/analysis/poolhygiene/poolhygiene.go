// Package poolhygiene implements the vcalint analyzer that tracks
// pooled objects — netem packets (PacketPool.Get / Host.NewPacket),
// vca media packets (mpPool.get / copyOf), sim's pooled events
// (Engine.alloc) — from acquisition to one of the three legal fates:
//
//   - released: Release / ReleasePayload / discard / put / recycle /
//     releaseMedia, directly or via defer;
//   - transferred: passed to another call (the callee now owes the
//     release — Host.Send, Mailbox.Post, rtxStore...), stored into a
//     field / slice / map / channel, returned, or captured;
//   - or it leaks, which is the finding: a path reaches a return (or
//     the loop iteration ends, for values acquired inside the loop)
//     with the value still owned and live.
//
// Use-after-release is the second finding: any read of a variable
// after the path released it.
//
// The walk is a linear abstract interpretation over the function body
// (the syntactic CFG): if/else branches are interpreted separately
// and merged pessimistically toward "released" so a value released on
// either arm is never re-reported (under-approximation: a leak on
// exactly one arm of a merge can be missed; every straight-line and
// early-return leak is caught). Passing a pooled value to ANY call is
// assumed to transfer ownership (over-approximation: a callee that
// merely inspects hides a later leak). Both directions keep the
// analyzer false-positive-free on the established ownership idioms —
// pooled-packet transfer through mailboxes, payload hand-off via
// Host.Send — see DESIGN.md §14.
package poolhygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vcalab/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolhygiene",
	Doc: "flags pooled packets/events that leak on a terminal path " +
		"(neither released nor ownership-transferred) and uses after release",
	Run: run,
}

// acquisition reports whether call hands out a pooled object: a
// Get/get/copyOf method on a *...Pool receiver, Host.NewPacket, or
// the sim engine's event alloc.
func isAcquire(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := typeName(sig.Recv().Type())
	switch fn.Name() {
	case "Get", "get", "copyOf":
		return strings.HasSuffix(recv, "Pool")
	case "NewPacket":
		return true
	case "alloc":
		return recv == "Engine"
	}
	return false
}

// release method / function names. put and recycle release their
// argument; the rest release their receiver.
var releaseMethods = map[string]bool{
	"Release": true, "ReleasePayload": true, "discard": true,
}
var releaseArgFuncs = map[string]bool{
	"put": true, "recycle": true, "releaseMedia": true,
}

func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

type status uint8

const (
	stLive status = iota
	stReleased
	// stDeferred: a `defer` will release the value on every exit
	// path. Uses stay legal (the release has not happened yet);
	// leak checks are satisfied; an additional explicit release is a
	// double-release.
	stDeferred
)

type state map[*types.Var]status

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// merge folds branch-end state b into s pessimistically: disagreement
// becomes released so neither arm's outcome is double-reported.
func (s state) merge(b state) {
	for v, st := range s {
		if bst, ok := b[v]; !ok || bst != st {
			s[v] = stReleased
		}
	}
	for v := range b {
		if _, ok := s[v]; !ok {
			s[v] = stReleased
		}
	}
}

type checker struct {
	pass *analysis.Pass
	// acquiredAt remembers where each tracked var came from, for the
	// leak message.
	acquiredAt map[*types.Var]token.Pos
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, acquiredAt: map[*types.Var]token.Pos{}}
			st := state{}
			term := c.walkBlock(fd.Body, st)
			if !term {
				c.leakCheck(st, "end of function")
			}
		}
	}
	return nil
}

// leakCheck reports every var still live in st.
func (c *checker) leakCheck(st state, where string) {
	for v, s := range st {
		if s == stLive {
			c.pass.Reportf(c.acquiredAt[v],
				"pooled value %q acquired here is neither released nor ownership-transferred on a path reaching %s", v.Name(), where)
			st[v] = stReleased // one report per acquisition
		}
	}
}

// walkBlock interprets stmts in order; reports true if every path
// through the block terminates (returns, panics, branches away).
func (c *checker) walkBlock(b *ast.BlockStmt, st state) bool {
	for _, s := range b.List {
		if c.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt, st state) (terminated bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.walkAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					c.evalExpr(val, st)
					if i < len(vs.Names) {
						c.bind(vs.Names[i], val, st)
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if c.handleCall(call, st) {
				return false
			}
			if isPanic(call) {
				c.evalExpr(call, st)
				return true
			}
		}
		c.evalExpr(s.X, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if v := c.varOf(r); v != nil {
				if st[v] == stReleased {
					c.useAfterRelease(v, r.Pos(), st)
				} else {
					delete(st, v) // returning transfers ownership
				}
				continue
			}
			c.evalExpr(r, st)
		}
		c.leakCheck(st, "this return")
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		c.evalExpr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := c.walkBlock(s.Body, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.walkStmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replace(st, elseSt)
		case elseTerm:
			replace(st, thenSt)
		default:
			thenSt.merge(elseSt)
			replace(st, thenSt)
		}
	case *ast.BlockStmt:
		return c.walkBlock(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			c.evalExpr(s.Cond, st)
		}
		c.walkLoopBody(s.Body, st)
	case *ast.RangeStmt:
		c.evalExpr(s.X, st)
		c.walkLoopBody(s.Body, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		c.walkSwitch(s, st)
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok {
				sub := st.clone()
				for _, cs := range comm.Body {
					if c.walkStmt(cs, sub) {
						break
					}
				}
				st.merge(sub)
			}
		}
	case *ast.DeferStmt:
		c.handleDefer(s.Call, st)
	case *ast.GoStmt:
		c.evalExpr(s.Call, st)
	case *ast.SendStmt:
		c.evalExpr(s.Chan, st)
		c.evalExpr(s.Value, st) // sending transfers
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave the linear path; treat as
		// terminated so the surrounding merge keeps the other arm.
		return true
	case *ast.IncDecStmt:
		c.evalExpr(s.X, st)
	}
	return false
}

// replace overwrites dst's contents with src's.
func replace(dst, src state) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// walkLoopBody interprets a loop body once on a cloned state. Values
// acquired inside the body must die inside it: the next iteration
// rebinds them.
func (c *checker) walkLoopBody(body *ast.BlockStmt, st state) {
	before := st.clone()
	sub := st.clone()
	if !c.walkBlock(body, sub) {
		var fresh state
		for v, s := range sub {
			if _, existed := before[v]; !existed && s == stLive {
				if fresh == nil {
					fresh = state{}
				}
				fresh[v] = s
			}
		}
		c.leakCheck(fresh, "the end of the loop body")
		for v := range fresh {
			sub[v] = stReleased
		}
	}
	st.merge(sub)
}

func (c *checker) walkSwitch(s ast.Stmt, st state) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			c.evalExpr(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		body = s.Body
	}
	agg := st.clone()
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		sub := st.clone()
		for _, cs := range cc.Body {
			if c.walkStmt(cs, sub) {
				break
			}
		}
		agg.merge(sub)
	}
	replace(st, agg)
}

func (c *checker) walkAssign(s *ast.AssignStmt, st state) {
	// Evaluate RHS first (uses), then bind LHS.
	for _, r := range s.Rhs {
		c.evalExpr(r, st)
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				c.bind(id, s.Rhs[i], st)
			} else {
				c.evalExpr(l, st)
			}
		}
		return
	}
	for _, l := range s.Lhs {
		if _, ok := l.(*ast.Ident); !ok {
			c.evalExpr(l, st)
		}
	}
}

// bind connects an acquisition's result to the variable it lands in,
// and re-binding a still-live variable is itself a leak.
func (c *checker) bind(id *ast.Ident, rhs ast.Expr, st state) {
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if prev, tracked := st[v]; tracked && prev == stLive {
		c.pass.Reportf(c.acquiredAt[v],
			"pooled value %q acquired here is overwritten while still owned (leak)", v.Name())
	}
	if call, ok := stripParens(rhs).(*ast.CallExpr); ok && isAcquire(c.pass, call) {
		st[v] = stLive
		c.acquiredAt[v] = call.Pos()
		return
	}
	delete(st, v)
}

// handleCall applies release semantics; reports true if the call was
// a release (so the caller skips generic transfer evaluation).
func (c *checker) handleCall(call *ast.CallExpr, st state) bool {
	name := ""
	var recv ast.Expr
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = f.Sel.Name
		recv = f.X
	case *ast.Ident:
		name = f.Name
	default:
		return false
	}
	if releaseMethods[name] && recv != nil {
		if v := c.varOf(recv); v != nil {
			c.release(v, recv.Pos(), st)
			return true
		}
		return false
	}
	if releaseArgFuncs[name] && len(call.Args) == 1 {
		if v := c.varOf(call.Args[0]); v != nil {
			c.release(v, call.Args[0].Pos(), st)
			return true
		}
	}
	return false
}

func (c *checker) release(v *types.Var, pos token.Pos, st state) {
	if prev, tracked := st[v]; tracked && prev != stLive {
		if prev == stDeferred {
			c.pass.Reportf(pos, "%q is also released by a defer: this release double-releases it", v.Name())
		} else {
			c.pass.Reportf(pos, "%q is released twice on this path", v.Name())
		}
		return
	}
	st[v] = stReleased
}

// handleDefer treats a deferred release as satisfying every exit
// path, without making intervening uses illegal: the release only
// actually runs at function exit.
func (c *checker) handleDefer(call *ast.CallExpr, st state) {
	if v := releaseTarget(c.pass, call); v != nil {
		if prev, tracked := st[v]; tracked && prev == stReleased {
			c.pass.Reportf(call.Pos(), "%q already released on this path; the deferred release will double-release it", v.Name())
		}
		st[v] = stDeferred
		return
	}
	// defer func() { ... v.Release() ... }(): scan the closure.
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if v := releaseTarget(c.pass, inner); v != nil {
					st[v] = stDeferred
				}
			}
			return true
		})
		return
	}
	c.evalExpr(call, st)
}

// releaseTarget returns the variable a call releases, or nil.
func releaseTarget(pass *analysis.Pass, call *ast.CallExpr) *types.Var {
	name := ""
	var recv ast.Expr
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = f.Sel.Name
		recv = f.X
	case *ast.Ident:
		name = f.Name
	default:
		return nil
	}
	c := &checker{pass: pass}
	if releaseMethods[name] && recv != nil {
		return c.varOf(recv)
	}
	if releaseArgFuncs[name] && len(call.Args) == 1 {
		return c.varOf(call.Args[0])
	}
	return nil
}

// evalExpr scans an expression for uses of tracked variables:
// released → use-after-release; live var consumed by a call, closure,
// or composite literal → ownership transfer.
func (c *checker) evalExpr(e ast.Expr, st state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if c.handleCall(n, st) {
				return false
			}
			if isAcquire(c.pass, n) {
				// Un-bound acquisition (argument position, etc.):
				// ownership goes wherever the expression goes.
				return true
			}
			// Every argument that is a tracked live var transfers.
			for _, a := range n.Args {
				if v := c.varOf(a); v != nil {
					if st[v] == stReleased {
						c.useAfterRelease(v, a.Pos(), st)
					} else if _, ok := st[v]; ok {
						delete(st, v)
					}
				} else {
					c.evalExpr(a, st)
				}
			}
			// The callee expression itself (receiver reads are fine,
			// but flag reads of released receivers).
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				c.checkReleasedUse(sel.X, st)
			}
			return false
		case *ast.FuncLit:
			// Capture transfers every tracked var referenced inside.
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if v := c.varOf(id); v != nil {
						delete(st, v)
					}
				}
				return true
			})
			return false
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if v := c.varOf(val); v != nil {
					if st[v] == stReleased {
						c.useAfterRelease(v, val.Pos(), st)
					} else {
						delete(st, v) // stored: transferred
					}
				} else {
					c.evalExpr(val, st)
				}
			}
			return false
		case *ast.Ident:
			c.checkReleasedUse(n, st)
		}
		return true
	})
}

func (c *checker) checkReleasedUse(e ast.Expr, st state) {
	if v := c.varOf(e); v != nil && st[v] == stReleased {
		c.useAfterRelease(v, e.Pos(), st)
	}
}

func (c *checker) useAfterRelease(v *types.Var, pos token.Pos, st state) {
	c.pass.Reportf(pos, "use of pooled value %q after it was released", v.Name())
	delete(st, v) // one report per release point
}

func (c *checker) varOf(e ast.Expr) *types.Var {
	id, ok := stripParens(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	return v
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
