package analysis

import "go/ast"

// WalkParents traverses root in source order invoking fn with each
// node and the stack of its ancestors (outermost first, root's parent
// absent). Returning false prunes the subtree.
func WalkParents(root ast.Node, fn func(n ast.Node, parents []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		// Inspect only delivers the closing nil when we descend, so the
		// stack is pushed (and later popped) only for kept subtrees.
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
