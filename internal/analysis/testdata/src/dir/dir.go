// Package dir exercises the //vcalint:ignore directive machinery,
// using the hotpath analyzer as the finding source: same-line and
// line-above suppression, the mandatory reason, and the unknown-name
// check.
package dir

import "fmt"

//vca:hotpath suppressed on the same line
func suppressedSameLine() string {
	return fmt.Sprintf("x") //vcalint:ignore hotpath one-shot formatting in a stats flush, off the packet path
}

//vca:hotpath suppressed from the line above
func suppressedLineAbove() string {
	//vcalint:ignore hotpath one-shot formatting in a stats flush
	return fmt.Sprintf("y")
}

//vca:hotpath a directive two lines away does not reach
func notSuppressed() string {
	//vcalint:ignore hotpath too far away to bind to the finding

	return fmt.Sprintf("z") // want `fmt.Sprintf in hot path`
}

// A typo'd analyzer name would silently suppress nothing forever, so
// it is itself a finding.
//
//vcalint:ignore bogus latency experiment // want `directive names unknown analyzer "bogus"`
var a = 1

// So is a suppression without a recorded justification.
//
//vcalint:ignore hotpath // want `malformed directive: missing reason`
var b = 2
