//vcalint:file-ignore hotpath bench-harness file: formatting is the output, not overhead

package dir

import "fmt"

//vca:hotpath the file-ignore above silences the whole file
func fileWideSuppressed() string {
	return fmt.Sprintf("w")
}
