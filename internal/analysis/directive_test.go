package analysis_test

import (
	"testing"

	"vcalab/internal/analysis/analysistest"
	"vcalab/internal/analysis/hotpath"
)

// TestDirectives drives the suppression machinery end to end through
// testdata/src/dir: line and file-wide ignores silence real findings,
// while malformed and unknown-name directives surface as "vcalint"
// findings of their own.
func TestDirectives(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "dir")
}
