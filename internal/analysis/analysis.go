// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: just enough Analyzer /
// Pass / Diagnostic surface for vcalab's custom vet suite (cmd/vcalint)
// to run both standalone and under `go vet -vettool=`, without pulling
// an external module into the build (the toolchain image is offline).
//
// The shape deliberately mirrors x/tools so the analyzers in the
// subpackages (determinism, poolhygiene, hotpath, nilguard) could be
// ported to the real framework by swapping imports. What is omitted —
// facts, modular analysis across packages, requires-graphs — is not
// needed: all four analyzers are strictly intra-package.
//
// See DESIGN.md §14 for the invariants the suite enforces and the
// approximations each analyzer makes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //vcalint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by `vcalint help`.
	Doc string
	// Run executes the check against one package. It reports findings
	// via pass.Reportf and returns a hard error only when the analysis
	// itself cannot proceed (never for findings).
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos. Duplicate (pos, message) pairs
// are collapsed so branch-replaying analyzers can report freely.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	for _, prev := range *p.diags {
		if prev.Pos == d.Pos && prev.Message == d.Message && prev.Analyzer == d.Analyzer {
			return
		}
	}
	*p.diags = append(*p.diags, d)
}

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package bundles the inputs shared by every analyzer run on one
// type-checked package.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the import path as the build system names it; test
	// variants carry a " [...]" suffix which BasePath strips.
	Path string
}

// BasePath returns the import path with any test-variant suffix
// ("pkg [pkg.test]") removed.
func (p *Package) BasePath() string {
	if i := strings.IndexByte(p.Path, ' '); i >= 0 {
		return p.Path[:i]
	}
	return p.Path
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// RunPackage applies each analyzer to pkg, then filters the findings
// through the //vcalint:ignore directives found in the package's files
// (see directive.go). Malformed directives surface as diagnostics of
// the pseudo-analyzer "vcalint". Diagnostics in _test.go files are
// dropped: the invariants govern shipped code, tests exercise them
// dynamically.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	diags = applyDirectives(pkg, diags, known)

	// Drop test-file findings and sort for stable output.
	out := diags[:0]
	for _, d := range diags {
		f := pkg.Fset.File(d.Pos)
		if f != nil && strings.HasSuffix(f.Name(), "_test.go") {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}
