package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// Suppression directives.
//
//	//vcalint:ignore <analyzer>[,<analyzer>...] <reason>
//	//vcalint:file-ignore <analyzer>[,<analyzer>...] <reason>
//
// A line directive suppresses matching diagnostics on its own line or,
// when the comment stands alone, on the line directly below it. A
// file-ignore suppresses the named analyzers for the whole file. The
// reason is mandatory — a suppression without a recorded justification
// is itself a finding — and so is a real analyzer name: a typo'd name
// would otherwise silently suppress nothing forever.
const (
	ignorePrefix     = "vcalint:ignore"
	fileIgnorePrefix = "vcalint:file-ignore"
)

type directive struct {
	pos       token.Pos
	line      int  // line the comment sits on
	fileWide  bool // file-ignore
	analyzers []string
	reason    string
	malformed string // non-empty: why the directive is invalid
}

// parseDirective interprets one comment's text (without the `//`).
func parseDirective(text string, pos token.Pos, line int) (directive, bool) {
	text = strings.TrimSpace(text)
	var rest string
	d := directive{pos: pos, line: line}
	switch {
	case strings.HasPrefix(text, fileIgnorePrefix):
		d.fileWide = true
		rest = strings.TrimPrefix(text, fileIgnorePrefix)
	case strings.HasPrefix(text, ignorePrefix):
		rest = strings.TrimPrefix(text, ignorePrefix)
	default:
		return d, false
	}
	// A comment embedded after the directive (`//vcalint:ignore x y // note`)
	// is not part of the reason.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		d.malformed = "missing analyzer name and reason"
		return d, true
	}
	d.analyzers = strings.Split(fields[0], ",")
	d.reason = strings.Join(fields[1:], " ")
	if d.reason == "" {
		d.malformed = "missing reason (format: //vcalint:ignore <analyzer> <reason>)"
	}
	return d, true
}

// applyDirectives filters diags through the directives in pkg's files
// and appends one "vcalint" diagnostic per malformed or unknown-name
// directive.
func applyDirectives(pkg *Package, diags []Diagnostic, known map[string]bool) []Diagnostic {
	var dirs []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				d, ok := parseDirective(text, c.Pos(), pkg.Fset.Position(c.Pos()).Line)
				if !ok {
					continue
				}
				dirs = append(dirs, d)
			}
		}
	}

	var out []Diagnostic
	for _, d := range dirs {
		if d.malformed != "" {
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "vcalint",
				Message: "malformed directive: " + d.malformed})
			continue
		}
		for _, name := range d.analyzers {
			if !known[name] {
				out = append(out, Diagnostic{Pos: d.pos, Analyzer: "vcalint",
					Message: fmt.Sprintf("directive names unknown analyzer %q", name)})
			}
		}
	}

	for _, diag := range diags {
		pos := pkg.Fset.Position(diag.Pos)
		if !suppressed(diag, pos.Filename, pos.Line, pkg, dirs) {
			out = append(out, diag)
		}
	}
	return out
}

func suppressed(diag Diagnostic, file string, line int, pkg *Package, dirs []directive) bool {
	for _, d := range dirs {
		if d.malformed != "" {
			continue
		}
		dpos := pkg.Fset.Position(d.pos)
		if dpos.Filename != file {
			continue
		}
		match := false
		for _, name := range d.analyzers {
			if name == diag.Analyzer {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		if d.fileWide {
			return true
		}
		if d.line == line || d.line == line-1 {
			return true
		}
	}
	return false
}
