// Package hotpath implements the vcalint analyzer that keeps the
// //vca:hotpath-annotated functions — the per-tick media loops, the
// SFU forward/feedback paths, the shard barrier — within the
// ≤0.1 allocs/event budget the engine bench gates dynamically.
//
// Inside an annotated function the analyzer flags every construct the
// zero-alloc rewrite (DESIGN.md §7) banned because it allocates per
// call:
//
//   - function literals (closure environments escape);
//   - slice, map and pointer composite literals, make, and new
//     (struct *value* literals are fine: they stay on the stack);
//   - fmt calls and string concatenation;
//   - implicit interface conversions that box a non-pointer concrete
//     value (assignments, call arguments, returns). Converting a
//     pointer into an interface stores the pointer in the iface word
//     and does not allocate, so pointers are exempt.
//
// The check is not transitive: callees are not entered, so a helper
// that allocates must carry its own annotation to be checked. append
// is deliberately legal — the hot loops append into per-call scratch
// slices that amortize to zero. Both approximations are documented in
// DESIGN.md §14.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vcalab/internal/analysis"
)

// Marker is the annotation that opts a function into the check.
const Marker = "vca:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flags allocating constructs (closures, boxing, fmt/string concat, " +
		"slice/map literals, make/new) inside //vca:hotpath functions",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), Marker) {
			return true
		}
	}
	return false
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var results *types.Tuple
	if sig, ok := info.Defs[fd.Name].Type().(*types.Signature); ok {
		results = sig.Results()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in hot path: the closure environment allocates")
			return false // its body is cold by definition
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "slice/map composite literal in hot path allocates every call")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "pointer composite literal in hot path allocates every call")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.Types[n.X].Type) {
				pass.Reportf(n.Pos(), "string concatenation in hot path allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.Types[n.Lhs[0]].Type) {
				pass.Reportf(n.Pos(), "string concatenation in hot path allocates")
			}
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				for i := range n.Lhs {
					if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
						checkBox(pass, typeOf(info, n.Lhs[i]), n.Rhs[i], "assignment")
					}
				}
			}
		case *ast.ReturnStmt:
			if results != nil && len(n.Results) == results.Len() {
				for i, r := range n.Results {
					checkBox(pass, results.At(i).Type(), r, "return")
				}
			}
		}
		return true
	})
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Explicit conversion to an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkBox(pass, tv.Type, call.Args[0], "conversion")
		}
		return
	}
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isB := info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make in hot path allocates every call")
			case "new":
				pass.Reportf(call.Pos(), "new in hot path allocates every call")
			}
			return
		}
	}
	// fmt.* anything.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s in hot path allocates (formatting boxes its operands)", fn.Name())
			return
		}
	}
	// Implicit boxing at argument positions.
	sigT, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := sigT.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // passing an existing slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBox(pass, pt, arg, "argument")
	}
}

// checkBox reports when assigning expr to a destination of type dst
// boxes a non-pointer concrete value into an interface.
func checkBox(pass *analysis.Pass, dst types.Type, expr ast.Expr, where string) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if tv.IsNil() {
		return
	}
	switch src.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return // iface→iface rewraps, pointers ride in the iface word
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	pass.Reportf(expr.Pos(), "%s implicitly converts %s to interface %s: boxing allocates in hot path",
		where, src.String(), dst.String())
}
