package hotpath_test

import (
	"testing"

	"vcalab/internal/analysis/analysistest"
	"vcalab/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "hot")
}
