// Package hot exercises the hotpath analyzer: every per-call
// allocation inside a //vca:hotpath function is a finding, while the
// zero-alloc idioms (scratch append, struct values, pointers into
// interfaces) stay legal. Unannotated functions are never entered.
package hot

import "fmt"

type box interface{}

type stats struct{ n, sum int }

type proc struct {
	scratch []int
	name    string
}

func consume(v box) { _ = v }

var global stats

//vca:hotpath per-event path: every construct below allocates
func (p *proc) violations(ifc box) string {
	f := func() {} // want `function literal in hot path`
	f()
	s := []int{1, 2, 3}                          // want `slice/map composite literal in hot path`
	m := make(map[int]int)                       // want `make in hot path allocates`
	st := &stats{}                               // want `pointer composite literal in hot path`
	msg := fmt.Sprintf("%d", len(s)+len(m)+st.n) // want `fmt.Sprintf in hot path allocates`
	msg += p.name                                // want `string concatenation in hot path allocates`
	ifc = st.n                                   // want `assignment implicitly converts int to interface`
	consume(ifc)
	return msg
}

//vca:hotpath boxing at a call argument
func (p *proc) badArg(n int) {
	consume(n) // want `argument implicitly converts int to interface`
}

//vca:hotpath boxing at a return
func badReturn(n int) box {
	return n // want `return implicitly converts int to interface`
}

// ---- legal patterns ----

//vca:hotpath append into persistent scratch amortizes to zero
func (p *proc) legalScratch(vals []int) int {
	p.scratch = p.scratch[:0]
	for _, v := range vals {
		p.scratch = append(p.scratch, v)
	}
	return len(p.scratch)
}

//vca:hotpath struct values stay on the stack
func legalStructValue(n int) int {
	st := stats{n: n, sum: n * n}
	return st.sum
}

//vca:hotpath pointers ride in the interface word without boxing
func legalPointerIface() box {
	return &global
}

// Unannotated functions may allocate freely: the check is opt-in and
// not transitive.
func coldAlloc(n int) []int {
	return []int{n, n + 1}
}
