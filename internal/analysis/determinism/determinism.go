// Package determinism implements the vcalint analyzer that rejects
// sources of run-to-run nondeterminism inside the packages whose
// output must be byte-identical at any -parallel × -shards setting.
//
// Flagged in deterministic packages:
//
//   - `range` over a map whose body has observable effects (any call
//     that is not a conversion or a pure builtin, a channel send, a
//     `go`/`defer`, or an `append`/`copy`): Go randomizes map
//     iteration order, so effects ordered by it diverge between runs.
//     Effect-free bodies — commutative accumulation, max-tracking,
//     `delete` — are legal and stay unflagged.
//   - time.Now / time.Since: simulation time is engine time; wall
//     clock in a deterministic package leaks host speed into results.
//   - Draws from math/rand's global source (rand.Intn, rand.Float64,
//     rand.Shuffle, ...): the global source is shared across
//     goroutines and seeded once per process, so any draw depends on
//     every other draw in the run. Constructors (rand.New,
//     rand.NewSource, rand.NewZipf) and methods on a seeded
//     *rand.Rand stay legal.
//   - select statements: runtime-random case choice.
//   - `go` statements outside the blessed shard-runtime files: all
//     other deterministic code must be single-threaded per engine.
//
// The analyzer over-approximates effectfulness (an unknown call might
// be pure) and under-approximates nondeterminism (it cannot see map
// iteration laundered through a helper); both directions are safe —
// see DESIGN.md §14.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"vcalab/internal/analysis"
)

// Packages lists the import-path prefixes whose packages must be
// deterministic. Tests may append to it.
var Packages = []string{
	"vcalab/internal/sim",
	"vcalab/internal/vca",
	"vcalab/internal/netem",
	"vcalab/internal/cascade",
	"vcalab/internal/scenario",
	"vcalab/internal/experiment",
	"vcalab/internal/rtp",
	"vcalab/internal/cc",
}

// BlessedGoFiles names the files allowed to contain `go` statements,
// per deterministic package: the shard workers are the one place
// goroutines exist, synchronized by the conservative barrier protocol.
var BlessedGoFiles = map[string][]string{
	"vcalab/internal/sim": {"shard.go"},
}

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flags wall-clock reads, global RNG draws, selects, stray goroutines, " +
		"and effectful map iteration in packages that must replay byte-identically",
	Run: run,
}

func covered(path string) bool {
	for _, p := range Packages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	pkgPath := pass.Pkg.Path()
	if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
		pkgPath = pkgPath[:i] // test variant "pkg [pkg.test]"
	}
	if !covered(pkgPath) {
		return nil
	}
	blessed := map[string]bool{}
	for _, f := range BlessedGoFiles[pkgPath] {
		blessed[f] = true
	}
	for _, file := range pass.Files {
		base := filepath.Base(pass.Fset.File(file.Pos()).Name())
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in deterministic package: case choice is runtime-random")
			case *ast.GoStmt:
				if !blessed[base] {
					pass.Reportf(n.Pos(), "go statement outside the blessed shard files: deterministic code is single-threaded per engine")
				}
			}
			return true
		})
	}
	return nil
}

// checkSelector flags time.Now/time.Since and global math/rand draws.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
			pass.Reportf(sel.Pos(), "time.%s in deterministic package: use the engine clock (Engine.Now)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			// constructors of private, seedable sources
		default:
			pass.Reportf(sel.Pos(), "rand.%s draws from the process-global RNG: use a seeded *rand.Rand (e.g. Engine.Rand)", fn.Name())
		}
	}
}

// checkMapRange flags map iteration whose body has observable effects.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if effect, what := firstEffect(pass, rng.Body); effect != token.NoPos {
		pass.Reportf(rng.Pos(),
			"map iteration order is random and this body has observable effects (%s at line %d): iterate a deterministic order list",
			what, pass.Fset.Position(effect).Line)
	}
}

// pure builtins whose calls never make an iteration order observable.
var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true,
	"delete": true, "real": true, "imag": true, "complex": true,
	"abs": true, "panic": true,
}

// firstEffect returns the position and description of the first
// effectful construct in body, or NoPos.
func firstEffect(pass *analysis.Pass, body *ast.BlockStmt) (token.Pos, string) {
	pos, what := token.NoPos, ""
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					if pureBuiltins[b.Name()] {
						return true
					}
					pos, what = n.Pos(), "call to builtin "+b.Name()
					return false
				}
			}
			pos, what = n.Pos(), "call to "+callName(n)
			return false
		case *ast.SendStmt:
			pos, what = n.Pos(), "channel send"
			return false
		case *ast.GoStmt:
			pos, what = n.Pos(), "go statement"
			return false
		case *ast.DeferStmt:
			pos, what = n.Pos(), "defer"
			return false
		}
		return true
	})
	return pos, what
}

func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return "function value"
}
