// Package free is NOT registered as deterministic: nothing here may
// be flagged even though every construct would be a violation inside
// the covered packages.
package free

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration { return time.Since(time.Now()) }

func globalRand() int { return rand.Intn(6) }

func spawn(f func()) { go f() }
