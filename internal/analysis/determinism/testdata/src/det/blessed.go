package det

// The test blesses this file for goroutine launches (the shard-worker
// pattern), so the go statement below must stay unflagged.
func blessedWorker(done chan struct{}) {
	go func(ch chan struct{}) {
		close(ch)
	}(done)
}
