// Package det exercises the determinism analyzer: the test registers
// "det" as a deterministic package and "blessed.go" as its blessed
// goroutine file.
package det

import (
	"math/rand"
	"time"
)

var table = map[string]int{"a": 1, "b": 2}

func emit(string) {}

// Effectful map range: emit's call order follows randomized iteration.
func badRange() {
	for k := range table { // want `map iteration order is random`
		emit(k)
	}
}

// Effect-free bodies stay legal: commutative accumulation,
// max-tracking, and delete-while-ranging.
func goodRange() int {
	total, mx := 0, 0
	for _, v := range table {
		total += v
		mx = max(mx, v)
	}
	for k, v := range table {
		if v == 0 {
			delete(table, k)
		}
	}
	return total + mx
}

// Slice ranges are ordered; calls inside them are fine.
func goodSliceRange(items []string) {
	for _, it := range items {
		emit(it)
	}
}

func wallClock() time.Duration {
	t0 := time.Now()      // want `time.Now in deterministic package`
	return time.Since(t0) // want `time.Since in deterministic package`
}

func globalRand() int {
	return rand.Intn(6) // want `rand.Intn draws from the process-global RNG`
}

// Seeded private sources are the legal pattern.
func seededRand() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6)
}

func racySelect(a, b chan int) int {
	select { // want `select statement in deterministic package`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func strayGoroutine() {
	go emit("x") // want `go statement outside the blessed shard files`
}
