package determinism_test

import (
	"testing"

	"vcalab/internal/analysis/analysistest"
	"vcalab/internal/analysis/determinism"
)

// TestDeterminism registers the testdata package as deterministic
// (with a blessed goroutine file, mirroring internal/sim/shard.go) and
// checks every want in det/.
func TestDeterminism(t *testing.T) {
	determinism.Packages = append(determinism.Packages, "det")
	determinism.BlessedGoFiles["det"] = []string{"blessed.go"}
	defer func() {
		determinism.Packages = determinism.Packages[:len(determinism.Packages)-1]
		delete(determinism.BlessedGoFiles, "det")
	}()
	analysistest.Run(t, "testdata", determinism.Analyzer, "det")
}

// TestUncoveredPackageSilent: packages outside the deterministic set
// are never flagged, whatever they contain.
func TestUncoveredPackageSilent(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "free")
}
