package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// Unit mode: the `go vet -vettool=` protocol. cmd/go invokes the tool
// once per package on the build graph with a single JSON config file
// argument; dependencies arrive with VetxOnly=true (the driver only
// wants facts, which this suite does not use), the packages named on
// the vet command line arrive with full file lists and export-data
// maps for every import. The tool must write the VetxOutput file (we
// write empty facts), print findings to stderr as file:line:col:
// message, and exit 2 when it found anything.

// UnitConfig mirrors the fields cmd/go writes into vet.cfg that this
// driver consumes (the struct in x/tools/go/analysis/unitchecker).
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitImporter resolves imports through the export-data files cmd/go
// listed in the config, after canonicalizing through ImportMap.
type unitImporter struct {
	cfg *UnitConfig
	gc  types.Importer
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if canon, ok := u.cfg.ImportMap[path]; ok {
		path = canon
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.gc.Import(path)
}

// RunUnit executes one vet.cfg invocation: load, analyze, report.
// It returns the number of diagnostics printed to w.
func RunUnit(cfgPath string, analyzers []*Analyzer, w io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	cfg := &UnitConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// The driver caches facts through VetxOutput; an empty file keeps
	// it satisfied (this suite is fact-free).
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}
	imp := &unitImporter{cfg: cfg}
	imp.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := NewInfo()
	conf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0, nil
		}
		return 0, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	pkg := &Package{Fset: fset, Files: files, Pkg: tpkg, Info: info, Path: cfg.ImportPath}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s: %s [%s]\n", pos, d.Message, d.Analyzer)
	}
	writeVetx()
	return len(diags), nil
}

// IsUnitConfig reports whether arg looks like a cmd/go vet.cfg path.
func IsUnitConfig(arg string) bool {
	return strings.HasSuffix(arg, ".cfg")
}
