package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks packages from source with no toolchain help, so
// the standalone `vcalint ./...` mode works in an offline container.
// Import paths resolve through Roots (longest-prefix match: the module
// path → repo root for real runs, "" → testdata/src for analyzer
// tests); everything else falls back to GOROOT/src. Imported
// dependencies are checked API-only (IgnoreFuncBodies); only the
// package under analysis gets full bodies and a populated types.Info.
type Loader struct {
	Fset *token.FileSet
	// Roots maps an import-path prefix to the directory holding its
	// source tree. A "" key is the catch-all (testdata GOPATH style).
	Roots map[string]string

	imports map[string]*types.Package
}

// NewLoader returns a loader resolving modPath under modRoot.
func NewLoader(modPath, modRoot string) *Loader {
	return &Loader{
		Fset:    token.NewFileSet(),
		Roots:   map[string]string{modPath: modRoot},
		imports: map[string]*types.Package{},
	}
}

func (l *Loader) dirFor(path string) (string, error) {
	best, bestDir := -1, ""
	for prefix, dir := range l.Roots {
		switch {
		case path == prefix:
			if len(prefix) > best {
				best, bestDir = len(prefix), dir
			}
		case prefix == "" || strings.HasPrefix(path, prefix+"/"):
			rel := strings.TrimPrefix(strings.TrimPrefix(path, prefix), "/")
			if len(prefix) > best {
				best, bestDir = len(prefix), filepath.Join(dir, filepath.FromSlash(rel))
			}
		}
	}
	if best >= 0 {
		if st, err := os.Stat(bestDir); err == nil && st.IsDir() {
			return bestDir, nil
		}
	}
	d := filepath.Join(build.Default.GOROOT, "src", filepath.FromSlash(path))
	if st, err := os.Stat(d); err == nil && st.IsDir() {
		return d, nil
	}
	return "", fmt.Errorf("cannot resolve import %q to a directory", path)
}

// Import implements types.Importer for dependency resolution.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.imports[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return p, nil
	}
	l.imports[path] = nil // cycle guard
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		// Imported stdlib internals may use compiler intrinsics the
		// pure type-checker dislikes; their exported API still loads.
		Error: func(error) {},
	}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if pkg == nil {
		return nil, err
	}
	l.imports[path] = pkg
	return pkg, nil
}

// parseDir parses the build-constraint-selected .go files of dir.
func (l *Loader) parseDir(dir string, includeTests bool) ([]*ast.File, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, fmt.Errorf("no Go files in %s", dir)
		}
		return nil, err
	}
	names := append([]string{}, bp.GoFiles...)
	if includeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadPackage fully type-checks the package in dir under importPath.
func (l *Loader) LoadPackage(importPath, dir string) (*Package, error) {
	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	info := NewInfo()
	conf := types.Config{Importer: l, FakeImportC: true}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{Fset: l.Fset, Files: files, Pkg: pkg, Info: info, Path: importPath}, nil
}

// FindPackages expands command-line patterns relative to root into
// (importPath, dir) pairs. Supported: "./..." (whole tree), "./x/..."
// (subtree), and plain relative directories. testdata and hidden
// directories are skipped, as are directories with no non-test Go
// files.
func FindPackages(root, modPath string, patterns []string) (paths, dirs []string, err error) {
	seen := map[string]bool{}
	addTree := func(base string) error {
		return filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if p != base && (strings.HasPrefix(name, ".") || name == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
				return nil
			}
			dir := filepath.Dir(p)
			if seen[dir] {
				return nil
			}
			seen[dir] = true
			return nil
		})
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := addTree(root); err != nil {
				return nil, nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			if err := addTree(base); err != nil {
				return nil, nil, err
			}
		default:
			dir := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			if st, err := os.Stat(dir); err != nil || !st.IsDir() {
				return nil, nil, fmt.Errorf("pattern %q: not a directory under %s", pat, root)
			}
			seen[dir] = true
		}
	}
	for dir := range seen {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, nil, err
		}
		ipath := modPath
		if rel != "." {
			ipath = modPath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ipath)
	}
	return paths, dirs, nil
}
