package runner

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, par := range []int{0, 1, 3, 8, 100} {
		r := New(par)
		out := Map(r, 50, func(i int) int { return i * i })
		if len(out) != 50 {
			t.Fatalf("par=%d: got %d results, want 50", par, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("par=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndNil(t *testing.T) {
	if out := Map(New(4), 0, func(i int) int { return i }); out != nil {
		t.Errorf("n=0 returned %v, want nil", out)
	}
	out := Map[int](nil, 3, func(i int) int { return i + 1 })
	if len(out) != 3 || out[2] != 3 {
		t.Errorf("nil runner: %v", out)
	}
}

func TestMapActuallyParallel(t *testing.T) {
	// All 4 trials rendezvous at a barrier: this only completes if 4
	// workers hold trials in flight simultaneously. A timeout (instead
	// of a deadlock) marks the failure.
	var arrived atomic.Int32
	var timedOut atomic.Bool
	all := make(chan struct{})
	Map(New(4), 4, func(i int) int {
		if arrived.Add(1) == 4 {
			close(all)
		}
		select {
		case <-all:
		case <-time.After(10 * time.Second):
			timedOut.Store(true)
		}
		return i
	})
	if timedOut.Load() {
		t.Errorf("only %d of 4 trials were in flight together with 4 workers", arrived.Load())
	}
}

func TestProgressCountsEveryTrial(t *testing.T) {
	for _, par := range []int{1, 8} {
		var calls atomic.Int32
		last := atomic.Int32{}
		r := New(par)
		r.OnProgress = func(done, total int) {
			calls.Add(1)
			if total != 20 {
				t.Errorf("par=%d: total = %d, want 20", par, total)
			}
			last.Store(int32(done))
		}
		Map(r, 20, func(i int) int { return i })
		if calls.Load() != 20 {
			t.Errorf("par=%d: OnProgress called %d times, want 20", par, calls.Load())
		}
		if last.Load() != 20 {
			t.Errorf("par=%d: final done = %d, want 20", par, last.Load())
		}
	}
}

func TestSeedDeterministicAndDecorrelated(t *testing.T) {
	if Seed(42, 7) != Seed(42, 7) {
		t.Error("Seed is not deterministic")
	}
	seen := map[int64]bool{}
	for trial := 0; trial < 1000; trial++ {
		s := Seed(1, trial)
		if seen[s] {
			t.Fatalf("Seed collision at trial %d", trial)
		}
		seen[s] = true
	}
	if Seed(1, 0) == Seed(2, 0) {
		t.Error("Seed ignores base")
	}
}

func TestWorkersClamping(t *testing.T) {
	if got := New(8).workers(3); got != 3 {
		t.Errorf("workers(3) with parallelism 8 = %d, want 3", got)
	}
	if got := New(-5).workers(1000); got < 1 {
		t.Errorf("workers = %d, want >= 1", got)
	}
	if got := New(1).workers(1000); got != 1 {
		t.Errorf("workers = %d, want 1", got)
	}
}
