// Determinism proof for the parallel sweep engine: the experiment runners
// executed through an 8-worker pool must produce results byte-identical to
// a sequential (parallelism 1) run for equal seeds. This is the contract
// that lets vcabench default to all cores without changing any paper
// artifact. It lives in an external test package so it can drive the real
// experiment harness on top of the runner under test.
package runner_test

import (
	"reflect"
	"testing"
	"time"

	"vcalab/internal/experiment"
	"vcalab/internal/runner"
	"vcalab/internal/vca"
)

func staticSweep(parallel int) []experiment.StaticResult {
	return experiment.RunStatic(experiment.StaticConfig{
		Profile:  vca.Meet(),
		Dir:      experiment.Uplink,
		CapsMbps: []float64{0.5, 1, 2},
		Reps:     2,
		Dur:      60 * time.Second,
		Warmup:   20 * time.Second,
		Seed:     1,
		Parallel: parallel,
	})
}

func TestStaticParallelMatchesSequential(t *testing.T) {
	seq := staticSweep(1)
	par := staticSweep(8)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("StaticResult slices differ between parallelism 1 and 8:\nseq: %+v\npar: %+v", seq, par)
	}
}

func disruptionRun(parallel int) experiment.DisruptionResult {
	return experiment.RunDisruption(experiment.DisruptionConfig{
		Profile:   vca.Zoom(),
		Dir:       experiment.Uplink,
		LevelMbps: 0.5,
		Reps:      4,
		Seed:      3,
		CallDur:   150 * time.Second,
		Parallel:  parallel,
	})
}

func TestDisruptionParallelMatchesSequential(t *testing.T) {
	seq := disruptionRun(1)
	par := disruptionRun(8)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("DisruptionResult differs between parallelism 1 and 8:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestImpairmentParallelMatchesSequential(t *testing.T) {
	run := func(parallel int) []experiment.ImpairmentResult {
		return experiment.RunImpairment(experiment.ImpairmentConfig{
			Profile:  vca.Teams(),
			LossPcts: []float64{0, 2},
			Jitter:   10 * time.Millisecond,
			Reps:     2,
			Dur:      50 * time.Second,
			Warmup:   20 * time.Second,
			Seed:     5,
			Parallel: parallel,
		})
	}
	if seq, par := run(1), run(8); !reflect.DeepEqual(seq, par) {
		t.Errorf("ImpairmentResult differs between parallelism 1 and 8:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestRunTracesMatchesRunTrace(t *testing.T) {
	trace := experiment.BandwidthTrace{
		{At: 0, UpBps: 2e6, DownBps: 2e6},
		{At: 30 * time.Second, UpBps: 0.6e6, DownBps: 0.6e6},
	}
	profs := []*vca.Profile{vca.Meet(), vca.Zoom()}
	batch := experiment.RunTraces(profs, trace, 60*time.Second, 9, 8)
	if len(batch) != 2 {
		t.Fatalf("got %d results, want 2", len(batch))
	}
	for i, p := range profs {
		if batch[i].Profile != p.Name {
			t.Errorf("result %d is %q, want input order (%q)", i, batch[i].Profile, p.Name)
		}
		solo := experiment.RunTrace(p, trace, 60*time.Second, runner.Seed(9, i))
		if !reflect.DeepEqual(batch[i], solo) {
			t.Errorf("RunTraces[%d] differs from the equivalent RunTrace", i)
		}
	}
}
