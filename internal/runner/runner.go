// Package runner is the parallel sweep engine behind the experiment
// harness. The paper's sweeps are hundreds of independent trials — 5
// profiles × 2 directions × 13 caps × 5 repetitions for §3 alone — and
// each trial runs on its own single-threaded sim.Engine, so they
// parallelize perfectly. Runner fans trials out across a fixed pool of
// worker goroutines and collects results in stable input order, which
// makes parallel output byte-identical to a sequential run: every trial
// is seeded only by (base seed, trial index), and all aggregation happens
// over the ordered result slice after the pool drains.
package runner

import (
	"runtime"
	"sync"
)

// Runner executes independent trials across a worker pool. The zero value
// is ready to use and runs with GOMAXPROCS workers.
type Runner struct {
	// Parallelism is the number of worker goroutines; <= 0 means
	// runtime.GOMAXPROCS(0). 1 runs trials inline on the calling
	// goroutine.
	Parallelism int

	// OnProgress, when non-nil, is called after each trial completes
	// with the count finished so far and the total. Calls are
	// serialized, but arrive in completion order, not input order.
	OnProgress func(done, total int)
}

// New returns a Runner with the given parallelism (<= 0 = GOMAXPROCS).
func New(parallelism int) *Runner { return &Runner{Parallelism: parallelism} }

// workers resolves the effective pool size for n trials.
func (r *Runner) workers(n int) int {
	p := r.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Map runs fn(i) for every i in [0, n) and returns the n results in input
// order. fn must be safe to call from multiple goroutines; each call
// should build its own sim.Engine (engines are single-threaded by
// design). A nil Runner runs sequentially.
func Map[T any](r *Runner, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if r == nil {
		r = &Runner{Parallelism: 1}
	}
	out := make([]T, n)
	if r.workers(n) == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
			if r.OnProgress != nil {
				r.OnProgress(i+1, n)
			}
		}
		return out
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	idx := make(chan int)
	for w := 0; w < r.workers(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i)
				if r.OnProgress != nil {
					mu.Lock()
					done++
					r.OnProgress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Seed derives a per-trial seed from a base seed and trial index with a
// splitmix64 finalizer, so trials are decorrelated yet fully determined
// by (base, trial) — independent of worker count and completion order.
func Seed(base int64, trial int) int64 {
	z := uint64(base) + uint64(trial+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
