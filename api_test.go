package vcalab_test

import (
	"testing"
	"time"

	"vcalab"
)

// These tests exercise the public facade exactly the way the README and
// examples do, guarding the exported API surface.

func TestFacadeQuickstart(t *testing.T) {
	eng := vcalab.NewEngine(42)
	lab := vcalab.NewLab(eng, 1e6, 1e6)
	c1 := lab.ClientHost("c1")
	c2 := lab.RemoteHost("c2", vcalab.RemoteDelay)
	sfu := lab.RemoteHost("sfu", vcalab.SFUDelay)
	call := vcalab.NewCall(eng, vcalab.Zoom(), sfu,
		[]*vcalab.Host{c1, c2}, vcalab.CallOptions{Seed: 42})
	call.Start()
	eng.RunUntil(60 * time.Second)
	call.Stop()
	up := call.C1().UpMeter.MeanRateMbps(20*time.Second, 60*time.Second)
	if up < 0.4 || up > 1.1 {
		t.Errorf("quickstart upstream = %.2f Mbps, want ~0.8 on a 1 Mbps link", up)
	}
}

func TestFacadeProfilesComplete(t *testing.T) {
	ps := vcalab.Profiles()
	for _, name := range []string{"meet", "zoom", "teams", "teams-chrome", "zoom-chrome"} {
		if ps[name] == nil {
			t.Errorf("missing profile %q", name)
		}
	}
	if len(ps) != 5 {
		t.Errorf("got %d profiles, want 5", len(ps))
	}
}

func TestFacadeExperimentRunners(t *testing.T) {
	// Tiny versions of each runner, verifying the exported plumbing.
	rs := vcalab.RunStatic(vcalab.StaticConfig{
		Profile: vcalab.Meet(), Dir: vcalab.Uplink, CapsMbps: []float64{2},
		Reps: 1, Dur: 50 * time.Second, Warmup: 20 * time.Second, Seed: 1,
	})
	if len(rs) != 1 || rs[0].MedianMbps.Mean <= 0 {
		t.Errorf("RunStatic broken: %+v", rs)
	}
	m := vcalab.RunModality(vcalab.ModalityConfig{
		Profile: vcalab.Teams(), N: 3, Mode: vcalab.Speaker, Reps: 1,
		Dur: 40 * time.Second, Warmup: 15 * time.Second, Seed: 1,
	})
	if m.UpMbps.Mean <= 0 {
		t.Errorf("RunModality broken: %+v", m)
	}
}

func TestFacadeStatsHelpers(t *testing.T) {
	if vcalab.Median([]float64{1, 2, 3}) != 2 {
		t.Error("Median broken")
	}
	if vcalab.Share(3, 1) != 0.75 {
		t.Error("Share broken")
	}
	s := vcalab.Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 {
		t.Errorf("Summarize broken: %+v", s)
	}
	if len(vcalab.PaperCaps()) != 16 || len(vcalab.PaperDisruptionLevels()) != 4 ||
		len(vcalab.PaperCompetitionLinks()) != 6 {
		t.Error("paper grids broken")
	}
}
